package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the segment scanner and
// replayer as a single segment file. Invariants: never panic, never
// allocate from a corrupt length prefix beyond what the file holds,
// and every record handed to Replay is CRC-intact with keys in
// non-decreasing order.
func FuzzWALReplay(f *testing.F) {
	// Seed: a well-formed segment with three records, plus truncations
	// and bit flips of it.
	build := func() []byte {
		var seg []byte
		var hdr [headerSize]byte
		copy(hdr[0:4], segMagic)
		binary.LittleEndian.PutUint32(hdr[4:8], segFormat)
		binary.LittleEndian.PutUint64(hdr[8:16], 1)
		seg = append(seg, hdr[:]...)
		for i := 1; i <= 3; i++ {
			payload := []byte(fmt.Sprintf("payload-%d", i))
			var fr [frameSize]byte
			binary.LittleEndian.PutUint32(fr[0:4], uint32(len(payload)))
			binary.LittleEndian.PutUint64(fr[8:16], uint64(i))
			crc := checksum(fr[8:16], payload)
			binary.LittleEndian.PutUint32(fr[4:8], crc)
			seg = append(seg, fr[:]...)
			seg = append(seg, payload...)
		}
		return seg
	}
	seg := build()
	f.Add(seg)
	for _, cut := range []int{0, 3, headerSize, headerSize + 7, len(seg) - 1, len(seg) - 9} {
		if cut >= 0 && cut <= len(seg) {
			f.Add(seg[:cut])
		}
	}
	for _, pos := range []int{0, 5, headerSize, headerSize + 1, headerSize + 4, len(seg) - 2} {
		flipped := append([]byte(nil), seg...)
		flipped[pos] ^= 0x40
		f.Add(flipped)
	}
	// A huge length prefix with a tiny file: must not over-allocate.
	huge := append([]byte(nil), seg[:headerSize]...)
	var fr [frameSize]byte
	binary.LittleEndian.PutUint32(fr[0:4], 0xfffffff0)
	huge = append(huge, fr[:]...)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := NewMemFS()
		fs.WriteFile("wal/"+segName(0), data)
		l, err := Open(Options{Dir: "wal", FS: fs, MaxRecord: 1 << 20})
		if err != nil {
			return
		}
		defer l.Close()
		var last uint64
		var n int64
		err = l.Replay(func(key uint64, payload []byte) error {
			if key < last {
				t.Fatalf("keys decreased: %d after %d", key, last)
			}
			last = key
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("Replay of scanned records failed: %v", err)
		}
		if st := l.Stats(); st.Replayed != n {
			t.Fatalf("Stats.Replayed = %d, replayed %d", st.Replayed, n)
		}
	})
}

func checksum(key, payload []byte) uint32 {
	crc := crc32.Checksum(key, castagnoli)
	return crc32.Update(crc, castagnoli, payload)
}
