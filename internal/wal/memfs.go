package wal

import (
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS for crash-recovery tests. Every file tracks
// a durable watermark — the length that was covered by the last Sync —
// so Crash can simulate losing any suffix of the unsynced bytes.
// Metadata operations (create, rename, remove) are modeled as
// immediately durable; the byte-level tear is what the WAL's framing
// has to survive.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memData
}

type memData struct {
	data    []byte
	durable int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memData)}
}

// Crash returns a copy of the filesystem as a crash could leave it:
// each file keeps its durable prefix plus a random (rng-chosen) prefix
// of its unsynced suffix.
func (m *MemFS) Crash(rng *rand.Rand) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := NewMemFS()
	for name, f := range m.files {
		keep := f.durable
		if extra := len(f.data) - f.durable; extra > 0 {
			keep += rng.Intn(extra + 1)
		}
		out.files[name] = &memData{data: append([]byte(nil), f.data[:keep]...), durable: keep}
	}
	return out
}

// Bytes returns a copy of the file's current contents (for tests).
func (m *MemFS) Bytes(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(name)]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// WriteFile replaces the file's contents, fully durable (for seeding
// corrupt inputs in tests).
func (m *MemFS) WriteFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path.Clean(name)] = &memData{data: append([]byte(nil), data...), durable: len(data)}
}

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memData{}
	m.files[path.Clean(name)] = f
	return &memFile{fs: m, d: f}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(name)]
	if !ok {
		return nil, fmt.Errorf("open %s: %w", name, fs.ErrNotExist)
	}
	return &memFile{fs: m, d: f, reading: true}, nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = path.Clean(name)
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("remove %s: %w", name, fs.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(name)]
	if !ok {
		return fmt.Errorf("truncate %s: %w", name, fs.ErrNotExist)
	}
	if size < int64(len(f.data)) {
		f.data = f.data[:size]
		if f.durable > int(size) {
			f.durable = int(size)
		}
	}
	return nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("rename %s: %w", oldname, fs.ErrNotExist)
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := path.Clean(dir) + "/"
	var names []string
	for name := range m.files {
		if rest := strings.TrimPrefix(name, prefix); rest != name && !strings.Contains(rest, "/") {
			names = append(names, rest)
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Size(name string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path.Clean(name)]
	if !ok {
		return 0, fmt.Errorf("stat %s: %w", name, fs.ErrNotExist)
	}
	return int64(len(f.data)), nil
}

func (m *MemFS) MkdirAll(string) error { return nil }

func (m *MemFS) SyncDir(string) error { return nil }

type memFile struct {
	fs      *MemFS
	d       *memData
	reading bool
	off     int
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.reading {
		return 0, fmt.Errorf("write on read-only file: %w", fs.ErrInvalid)
	}
	f.d.data = append(f.d.data, p...)
	return len(p), nil
}

func (f *memFile) Read(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.off >= len(f.d.data) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[f.off:])
	f.off += n
	return n, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.d.durable = len(f.d.data)
	return nil
}

func (f *memFile) Close() error { return nil }
