package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS abstracts the filesystem the log (and the checkpoint writer above
// it) goes through, so tests can substitute an in-memory implementation
// with crash simulation (MemFS) or a fault-injecting wrapper (FaultFS).
// The default is the real OS filesystem (OSFS).
type FS interface {
	// Create opens name for writing, truncating any existing file.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	Remove(name string) error
	// Truncate cuts name down to size bytes (recovery drops torn tails
	// in place so a later scan never re-reads them).
	Truncate(name string, size int64) error
	Rename(oldname, newname string) error
	// ReadDir lists the base names of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	Size(name string) (int64, error)
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory so created/renamed/removed entries
	// survive a crash.
	SyncDir(dir string) error
}

// File is one open log file. Files opened with Create are written and
// synced; files opened with Open are read. Write must return a non-nil
// error whenever fewer than len(p) bytes were persisted.
type File interface {
	io.Writer
	io.Reader
	Sync() error
	Close() error
}

// OSFS returns the real filesystem.
func OSFS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
