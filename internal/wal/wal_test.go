package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func appendRecords(t *testing.T, l *Log, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		lsn, err := l.Append(uint64(i), []byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		if err := l.Sync(lsn); err != nil {
			t.Fatalf("Sync(%d): %v", lsn, err)
		}
	}
}

func replayKeys(t *testing.T, l *Log) []uint64 {
	t.Helper()
	var keys []uint64
	err := l.Replay(func(key uint64, payload []byte) error {
		want := fmt.Sprintf("record-%d", key)
		if string(payload) != want {
			return fmt.Errorf("key %d: payload %q, want %q", key, payload, want)
		}
		keys = append(keys, key)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return keys
}

func TestWALRoundTrip(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 0, 100)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	keys := replayKeys(t, l2)
	if len(keys) != 100 {
		t.Fatalf("replayed %d records, want 100", len(keys))
	}
	for i, k := range keys {
		if k != uint64(i) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
	if st := l2.Stats(); st.Replayed != 100 || st.TornBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestWALSegmentRollAndTruncateBefore(t *testing.T) {
	fs := NewMemFS()
	// Tiny segments force rolls every couple of records.
	l, err := Open(Options{Dir: "wal", FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 0, 20)
	st := l.Stats()
	if st.Segments < 5 {
		t.Fatalf("expected several segments, got %d", st.Segments)
	}
	if err := l.TruncateBefore(10); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got >= st.Segments {
		t.Fatalf("TruncateBefore removed nothing: %d -> %d segments", st.Segments, got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(Options{Dir: "wal", FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	keys := replayKeys(t, l2)
	if len(keys) == 0 || keys[len(keys)-1] != 19 {
		t.Fatalf("replay after truncation lost the tail: %v", keys)
	}
	// Records > 10 must all survive (whole-segment truncation only
	// removes fully-covered segments).
	seen := map[uint64]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	for k := uint64(11); k < 20; k++ {
		if !seen[k] {
			t.Fatalf("record %d lost by TruncateBefore(10)", k)
		}
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 0, 10)
	l.Close()

	// Tear the tail mid-frame at every possible byte offset of the last
	// record's frame.
	name := filepath.Join("wal", segName(0))
	full, ok := fs.Bytes(name)
	if !ok {
		t.Fatal("segment missing")
	}
	for cut := len(full) - 1; cut > len(full)-24; cut-- {
		fs2 := NewMemFS()
		fs2.WriteFile(name, full[:cut])
		l2, err := Open(Options{Dir: "wal", FS: fs2})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		keys := replayKeys(t, l2)
		if len(keys) != 9 {
			t.Fatalf("cut %d: replayed %d records, want 9", cut, len(keys))
		}
		if st := l2.Stats(); st.TornBytes == 0 {
			t.Fatalf("cut %d: torn bytes not counted", cut)
		}
		l2.Close()
	}
}

func TestWALBitFlipCutsAtCorruptRecord(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 0, 10)
	l.Close()

	name := filepath.Join("wal", segName(0))
	full, _ := fs.Bytes(name)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		data := append([]byte(nil), full...)
		pos := headerSize + rng.Intn(len(data)-headerSize)
		data[pos] ^= 1 << rng.Intn(8)
		fs2 := NewMemFS()
		fs2.WriteFile(name, data)
		l2, err := Open(Options{Dir: "wal", FS: fs2})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var keys []uint64
		if err := l2.Replay(func(key uint64, _ []byte) error {
			keys = append(keys, key)
			return nil
		}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Everything before the corrupt record must survive, in order.
		for i, k := range keys {
			if k != uint64(i) {
				t.Fatalf("trial %d: keys[%d] = %d", trial, i, k)
			}
		}
		if len(keys) == 10 {
			t.Fatalf("trial %d: corruption at byte %d went undetected", trial, pos)
		}
		l2.Close()
	}
}

func TestWALTearInOldSegmentDropsLaterSegments(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 0, 10)
	if l.Stats().Segments < 3 {
		t.Fatal("need at least 3 segments")
	}
	l.Close()

	// Corrupt the middle of segment 1: recovery must keep segment 0's
	// records, cut segment 1 at the tear, and discard everything later.
	name := filepath.Join("wal", segName(1))
	data, ok := fs.Bytes(name)
	if !ok {
		t.Fatal("segment 1 missing")
	}
	data[headerSize+4] ^= 0xff
	fs.WriteFile(name, data)

	l2, err := Open(Options{Dir: "wal", FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	keys := replayKeys(t, l2)
	if len(keys) == 0 || len(keys) >= 10 {
		t.Fatalf("replayed %d records", len(keys))
	}
	for i, k := range keys {
		if k != uint64(i) {
			t.Fatalf("keys[%d] = %d (gap after tear)", i, k)
		}
	}
	// New appends go to a fresh segment and recover cleanly.
	next := keys[len(keys)-1] + 1
	appendRecords(t, l2, int(next), int(next)+5)
	l2.Close()
	l3, err := Open(Options{Dir: "wal", FS: fs, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	keys = replayKeys(t, l3)
	for i, k := range keys {
		if k != uint64(i) {
			t.Fatalf("after reappend: keys[%d] = %d", i, k)
		}
	}
	if keys[len(keys)-1] != next+4 {
		t.Fatalf("lost reappended records: %v", keys)
	}
}

func TestWALShortWriteWedgesLog(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, err := Open(Options{Dir: "wal", FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	appendRecords(t, l, 0, 3)
	ffs.FailNextWrite(5)
	if _, err := l.Append(3, []byte("record-3")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append after short write: %v", err)
	}
	// Wedged: the original error latches.
	if _, err := l.Append(4, []byte("record-4")); !errors.Is(err, ErrInjected) {
		t.Fatalf("wedged Append: %v", err)
	}
	l.Close()
	// The torn frame from the short write is truncated on recovery.
	l2, err := Open(Options{Dir: "wal", FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if keys := replayKeys(t, l2); len(keys) != 3 {
		t.Fatalf("replayed %d records, want 3", len(keys))
	}
}

func TestWALFsyncErrorFailsSyncAndWedges(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem)
	l, err := Open(Options{Dir: "wal", FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(1, []byte("record-1"))
	if err != nil {
		t.Fatal(err)
	}
	ffs.FailSyncs(true)
	if err := l.Sync(lsn); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync: %v", err)
	}
	if _, err := l.Append(2, []byte("record-2")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Append after fsync failure: %v", err)
	}
	l.Close()
}

func TestWALConcurrentAppendSync(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				lsn, err := l.Append(uint64(i), []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errc <- err
					return
				}
				if err := l.Sync(lsn); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Appended != writers*per {
		t.Fatalf("appended %d, want %d", st.Appended, writers*per)
	}
	l.Close()

	l2, err := Open(Options{Dir: "wal", FS: fs, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	n := 0
	if err := l2.Replay(func(uint64, []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers*per {
		t.Fatalf("recovered %d records, want %d", n, writers*per)
	}
}

func TestWALKeysClampedNonDecreasing(t *testing.T) {
	fs := NewMemFS()
	l, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{5, 3, 9, 1} {
		if _, err := l.Append(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	l2, err := Open(Options{Dir: "wal", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var keys []uint64
	l2.Replay(func(key uint64, _ []byte) error { keys = append(keys, key); return nil })
	want := []uint64{5, 5, 9, 9}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestWALCrashLosesOnlyUnsyncedSuffix(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		mem := NewMemFS()
		l, err := Open(Options{Dir: "wal", FS: mem, SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		synced := -1
		for i := 0; i < 30; i++ {
			lsn, err := l.Append(uint64(i), []byte(fmt.Sprintf("record-%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 {
				if err := l.Sync(lsn); err != nil {
					t.Fatal(err)
				}
				synced = i
			}
		}
		// No Close: simulate the process dying with unsynced bytes.
		crashed := mem.Crash(rng)
		l2, err := Open(Options{Dir: "wal", FS: crashed})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		keys := replayKeys(t, l2)
		for i, k := range keys {
			if k != uint64(i) {
				t.Fatalf("trial %d: keys[%d] = %d (gap)", trial, i, k)
			}
		}
		if len(keys)-1 < synced {
			t.Fatalf("trial %d: synced through %d but recovered only %d records", trial, synced, len(keys))
		}
		l2.Close()
	}
}
