package wal

import (
	"errors"
	"sync"
)

// ErrInjected marks every failure produced by a FaultFS: crash-point
// write cuts, forced fsync errors, and forced short writes.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps an FS with deterministic fault injection:
//
//   - SetWriteBudget(n) kills the process at an arbitrary byte offset —
//     the write that crosses the budget persists only its first
//     remaining bytes and fails, and every later write, sync, create
//     and rename fails too (the process is "dead"; recover from the
//     underlying FS).
//   - FailSyncs makes every Sync fail while leaving writes intact
//     (a disk that accepts data but cannot flush).
//   - FailNextWrite(n) makes the next write persist only its first n
//     bytes and return an error (a short write).
//
// Reads are never failed, so recovery can run against the same FS.
type FaultFS struct {
	inner FS

	mu        sync.Mutex
	budget    int64 // <0: unlimited
	killed    bool
	failSyncs bool
	shortNext int // -1: off
	written   int64
}

// NewFaultFS wraps inner with no faults armed.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, budget: -1, shortNext: -1}
}

// SetWriteBudget arms a crash after n more written bytes.
func (f *FaultFS) SetWriteBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
}

// FailSyncs toggles forced fsync failures.
func (f *FaultFS) FailSyncs(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failSyncs = on
}

// FailNextWrite cuts the next write to n bytes.
func (f *FaultFS) FailNextWrite(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.shortNext = n
}

// Written reports the total bytes written through this FS (used by the
// crash harness to size its kill-point range).
func (f *FaultFS) Written() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.written
}

// Killed reports whether the write budget has been exhausted.
func (f *FaultFS) Killed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

// admit decides how many of n bytes a write may persist. It returns the
// allowed count and whether the remainder must fail.
func (f *FaultFS) admit(n int) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.killed {
		return 0, true
	}
	allowed := n
	fail := false
	if f.shortNext >= 0 {
		if f.shortNext < allowed {
			allowed = f.shortNext
		}
		f.shortNext = -1
		fail = true
	}
	if f.budget >= 0 && f.budget < int64(allowed) {
		allowed = int(f.budget)
		fail = true
		f.killed = true
	}
	if f.budget >= 0 {
		f.budget -= int64(allowed)
	}
	f.written += int64(allowed)
	return allowed, fail
}

func (f *FaultFS) dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed
}

func (f *FaultFS) syncFails() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.killed || f.failSyncs
}

func (f *FaultFS) Create(name string) (File, error) {
	if f.dead() {
		return nil, ErrInjected
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Open(name string) (File, error) { return f.inner.Open(name) }

func (f *FaultFS) Remove(name string) error {
	if f.dead() {
		return ErrInjected
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if f.dead() {
		return ErrInjected
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) Rename(oldname, newname string) error {
	if f.dead() {
		return ErrInjected
	}
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

func (f *FaultFS) Size(name string) (int64, error) { return f.inner.Size(name) }

func (f *FaultFS) MkdirAll(dir string) error {
	if f.dead() {
		return ErrInjected
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) SyncDir(dir string) error {
	if f.syncFails() {
		return ErrInjected
	}
	return f.inner.SyncDir(dir)
}

type faultFile struct {
	fs    *FaultFS
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	allowed, fail := f.fs.admit(len(p))
	n := 0
	if allowed > 0 {
		var err error
		n, err = f.inner.Write(p[:allowed])
		if err != nil {
			return n, err
		}
	}
	if fail {
		return n, ErrInjected
	}
	return n, nil
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *faultFile) Sync() error {
	if f.fs.syncFails() {
		return ErrInjected
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }
