// Package wal implements a segmented append-only write-ahead log with
// CRC32C-framed records, group commit under a configurable fsync
// policy, and crash recovery that replays every intact record and
// truncates a torn tail in place.
//
// A log is a directory of segment files named wal-<seq>.seg. Each
// segment starts with a 16-byte header (magic "wseg", format version,
// first record key) followed by frames:
//
//	u32 payload length | u32 crc32c(key ‖ payload) | u64 key | payload
//
// all little-endian. Keys are caller-supplied logical positions (the
// database uses data versions); Append clamps them non-decreasing so a
// segment's last key bounds everything in it and whole segments can be
// dropped once a checkpoint covers their key range (TruncateBefore).
//
// Recovery never writes into an old segment: Open scans every segment,
// truncates the first torn or corrupt frame and discards any later
// segments (a tear in a non-final segment means everything after it is
// from a lost write window), and the next Append starts a fresh
// segment. Write and fsync errors wedge the log permanently — callers
// see the first error on every subsequent Append/Sync and must treat
// the stream as stopped.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

const (
	segMagic   = "wseg"
	segFormat  = 1
	headerSize = 16 // magic(4) + u32 format + u64 first key
	frameSize  = 16 // u32 length + u32 crc + u64 key

	defaultSegmentBytes = 16 << 20
	defaultMaxRecord    = 16 << 20
	defaultInterval     = 100 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append and Sync after Close.
var ErrClosed = errors.New("wal: log closed")

// Policy selects when appended records reach stable storage.
type Policy int

const (
	// SyncAlways fsyncs before Sync returns: an acknowledged record
	// survives any crash.
	SyncAlways Policy = iota
	// SyncInterval fsyncs on a background ticker: a crash loses at most
	// the last interval's records.
	SyncInterval
	// SyncNever leaves flushing to the OS: fastest, no durability bound.
	SyncNever
)

// Options configures Open.
type Options struct {
	Dir          string
	Policy       Policy
	Interval     time.Duration // SyncInterval period (default 100ms)
	SegmentBytes int64         // roll threshold (default 16 MiB)
	MaxRecord    int           // per-record payload cap (default 16 MiB)
	FS           FS            // default OSFS()
}

// Stats is a point-in-time counter snapshot.
type Stats struct {
	Appended      int64 // records appended this process
	AppendedBytes int64
	Fsyncs        int64
	Replayed      int64 // records recovered at Open
	TornBytes     int64 // bytes truncated or discarded at Open
	Segments      int
	SizeBytes     int64
}

type segMeta struct {
	name     string
	firstKey uint64
	lastKey  uint64
	size     int64 // valid bytes (header + intact frames)
	records  int64
}

// Log is a write-ahead log open on a directory. All methods are safe
// for concurrent use.
type Log struct {
	opts Options
	fs   FS

	mu        sync.Mutex
	segs      []*segMeta // oldest first; the last one is open iff cur != nil
	cur       File
	seq       uint64
	lastKey   uint64
	appendLSN uint64 // records appended this process
	wedged    error
	closed    bool

	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncedLSN uint64
	syncing   bool
	syncErr   error

	stop chan struct{}
	done chan struct{}

	appended      atomic.Int64
	appendedBytes atomic.Int64
	fsyncs        atomic.Int64
	replayed      atomic.Int64
	tornBytes     atomic.Int64
}

func segName(seq uint64) string { return fmt.Sprintf("wal-%016x.seg", seq) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
	if len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open opens (creating if needed) the log in opts.Dir, validating every
// existing segment and truncating torn tails. Recovered records are
// readable through Replay until the first Append.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if opts.FS == nil {
		opts.FS = OSFS()
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.MaxRecord <= 0 {
		opts.MaxRecord = defaultMaxRecord
	}
	if opts.Interval <= 0 {
		opts.Interval = defaultInterval
	}
	l := &Log{opts: opts, fs: opts.FS}
	l.syncCond = sync.NewCond(&l.syncMu)
	if err := l.fs.MkdirAll(opts.Dir); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := l.recover(); err != nil {
		return nil, err
	}
	if opts.Policy == SyncInterval {
		l.stop = make(chan struct{})
		l.done = make(chan struct{})
		go l.tick()
	}
	return l, nil
}

// recover scans the directory's segments in sequence order, keeping
// every intact frame and cutting at the first torn one. A tear in a
// non-final segment invalidates all later segments (rolling fsyncs the
// old segment before the new one is created, so intact data never
// follows a tear), and they are removed.
func (l *Log) recover() error {
	names, err := l.fs.ReadDir(l.opts.Dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var segNames []string
	var nextSeq uint64
	for _, name := range names {
		if seq, ok := parseSegName(name); ok {
			segNames = append(segNames, name)
			if seq+1 > nextSeq {
				nextSeq = seq + 1
			}
		}
	}
	for i, name := range segNames {
		meta, torn, err := l.scanSegment(name)
		if err != nil {
			return err
		}
		if meta != nil {
			l.segs = append(l.segs, meta)
			l.lastKey = meta.lastKey
			l.replayed.Add(meta.records)
		}
		if torn {
			for _, later := range segNames[i+1:] {
				path := filepath.Join(l.opts.Dir, later)
				if sz, err := l.fs.Size(path); err == nil {
					l.tornBytes.Add(sz)
				}
				if err := l.fs.Remove(path); err != nil {
					return fmt.Errorf("wal: removing segment after torn tail: %w", err)
				}
			}
			break
		}
	}
	l.seq = nextSeq
	return nil
}

// scanSegment validates one segment. It returns the segment's metadata
// (nil when the whole file is garbage and was removed), whether the
// scan hit a torn tail, and any I/O error. Torn bytes are truncated
// away in place so a later scan sees a clean segment.
func (l *Log) scanSegment(name string) (*segMeta, bool, error) {
	path := filepath.Join(l.opts.Dir, name)
	size, err := l.fs.Size(path)
	if err != nil {
		return nil, false, fmt.Errorf("wal: %w", err)
	}
	f, err := l.fs.Open(path)
	if err != nil {
		return nil, false, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()

	var hdr [headerSize]byte
	if size < headerSize || readFull(f, hdr[:]) != nil ||
		string(hdr[0:4]) != segMagic ||
		binary.LittleEndian.Uint32(hdr[4:8]) != segFormat {
		// Torn segment creation: no intact header, so no intact records.
		l.tornBytes.Add(size)
		if err := l.fs.Remove(path); err != nil {
			return nil, true, fmt.Errorf("wal: removing torn segment: %w", err)
		}
		return nil, true, nil
	}
	meta := &segMeta{
		name:     name,
		firstKey: binary.LittleEndian.Uint64(hdr[8:16]),
		size:     headerSize,
	}
	meta.lastKey = meta.firstKey

	var frame [frameSize]byte
	payload := make([]byte, 0, 4096)
	off := int64(headerSize)
	torn := false
	for {
		if size-off < frameSize {
			torn = size-off > 0
			break
		}
		if err := readFull(f, frame[:]); err != nil {
			return nil, false, fmt.Errorf("wal: reading %s: %w", name, err)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		crc := binary.LittleEndian.Uint32(frame[4:8])
		key := binary.LittleEndian.Uint64(frame[8:16])
		// Validate the length against what the file can actually hold
		// before allocating anything: a corrupt prefix must not cause a
		// huge allocation or a partial-frame parse.
		if int64(length) > int64(l.opts.MaxRecord) || int64(length) > size-off-frameSize {
			torn = true
			break
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if err := readFull(f, payload); err != nil {
			return nil, false, fmt.Errorf("wal: reading %s: %w", name, err)
		}
		got := crc32.Checksum(frame[8:16], castagnoli)
		got = crc32.Update(got, castagnoli, payload)
		if got != crc {
			torn = true
			break
		}
		off += frameSize + int64(length)
		meta.records++
		meta.lastKey = key
	}
	if torn {
		l.tornBytes.Add(size - off)
		if err := l.fs.Truncate(path, off); err != nil {
			return nil, false, fmt.Errorf("wal: truncating torn tail of %s: %w", name, err)
		}
	}
	meta.size = off
	if meta.records == 0 && !torn && off == headerSize && size == headerSize {
		// Header-only segment from a crash between roll and first
		// append: harmless, keep it (its key range is empty).
	}
	return meta, torn, nil
}

func readFull(f File, p []byte) error {
	for len(p) > 0 {
		n, err := f.Read(p)
		p = p[n:]
		if err != nil {
			if len(p) == 0 {
				return nil
			}
			return err
		}
	}
	return nil
}

// Replay streams every recovered record, in log order, to fn. It must
// be called before the first Append. A non-nil error from fn stops the
// replay and is returned.
func (l *Log) Replay(fn func(key uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.appendLSN != 0 {
		l.mu.Unlock()
		return errors.New("wal: Replay after Append")
	}
	segs := make([]*segMeta, len(l.segs))
	copy(segs, l.segs)
	l.mu.Unlock()

	var frame [frameSize]byte
	for _, meta := range segs {
		path := filepath.Join(l.opts.Dir, meta.name)
		f, err := l.fs.Open(path)
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		err = func() error {
			defer f.Close()
			var hdr [headerSize]byte
			if err := readFull(f, hdr[:]); err != nil {
				return fmt.Errorf("wal: reading %s: %w", meta.name, err)
			}
			for i := int64(0); i < meta.records; i++ {
				if err := readFull(f, frame[:]); err != nil {
					return fmt.Errorf("wal: reading %s: %w", meta.name, err)
				}
				length := binary.LittleEndian.Uint32(frame[0:4])
				key := binary.LittleEndian.Uint64(frame[8:16])
				payload := make([]byte, length)
				if err := readFull(f, payload); err != nil {
					return fmt.Errorf("wal: reading %s: %w", meta.name, err)
				}
				if err := fn(key, payload); err != nil {
					return err
				}
			}
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}

// Append writes one record and returns its LSN (a process-local
// sequence number for Sync). The key is clamped non-decreasing. The
// record is buffered in the OS; durability is governed by the fsync
// policy and Sync.
func (l *Log) Append(key uint64, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.wedged != nil {
		return 0, l.wedged
	}
	if len(payload) > l.opts.MaxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord %d", len(payload), l.opts.MaxRecord)
	}
	if key < l.lastKey {
		key = l.lastKey
	}
	if l.cur == nil || l.curMeta().size >= l.opts.SegmentBytes {
		if err := l.roll(key); err != nil {
			l.wedged = err
			return 0, err
		}
	}
	frame := make([]byte, frameSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:16], key)
	copy(frame[frameSize:], payload)
	crc := crc32.Checksum(frame[8:16], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(frame[4:8], crc)

	meta := l.curMeta()
	n, err := l.cur.Write(frame)
	meta.size += int64(n)
	if err == nil && n < len(frame) {
		err = errors.New("short write")
	}
	if err != nil {
		l.wedged = fmt.Errorf("wal: append: %w", err)
		return 0, l.wedged
	}
	meta.records++
	meta.lastKey = key
	l.lastKey = key
	l.appendLSN++
	l.appended.Add(1)
	l.appendedBytes.Add(int64(len(frame)))
	return l.appendLSN, nil
}

func (l *Log) curMeta() *segMeta { return l.segs[len(l.segs)-1] }

// roll closes the current segment (fsyncing it so recovery's
// tear-invalidates-later-segments rule is sound) and opens a fresh one.
// Called with l.mu held.
func (l *Log) roll(firstKey uint64) error {
	if l.cur != nil {
		l.fsyncs.Add(1)
		if err := l.cur.Sync(); err != nil {
			return fmt.Errorf("wal: sync on roll: %w", err)
		}
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("wal: close on roll: %w", err)
		}
		l.cur = nil
	}
	name := segName(l.seq)
	f, err := l.fs.Create(filepath.Join(l.opts.Dir, name))
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	var hdr [headerSize]byte
	copy(hdr[0:4], segMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], segFormat)
	binary.LittleEndian.PutUint64(hdr[8:16], firstKey)
	n, err := f.Write(hdr[:])
	if err == nil && n < len(hdr) {
		err = errors.New("short write")
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: syncing dir: %w", err)
	}
	l.cur = f
	l.seq++
	l.segs = append(l.segs, &segMeta{name: name, firstKey: firstKey, lastKey: firstKey, size: headerSize})
	return nil
}

// Sync blocks until every record appended at or before lsn is durable,
// fsyncing if needed. Concurrent callers group-commit: one becomes the
// leader and fsyncs up to the log's current tail on everyone's behalf.
func (l *Log) Sync(lsn uint64) error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	for l.syncedLSN < lsn {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.syncing {
			l.syncCond.Wait()
			continue
		}
		l.syncing = true
		l.syncMu.Unlock()
		target, err := l.syncNow()
		l.syncMu.Lock()
		l.syncing = false
		if err != nil {
			if l.syncErr == nil {
				l.syncErr = err
			}
		} else if target > l.syncedLSN {
			l.syncedLSN = target
		}
		l.syncCond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// syncNow fsyncs the open segment and reports the LSN it covers.
func (l *Log) syncNow() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.appendLSN
	if l.cur == nil {
		return target, nil
	}
	l.fsyncs.Add(1)
	if err := l.cur.Sync(); err != nil {
		err = fmt.Errorf("wal: fsync: %w", err)
		l.wedged = err
		return 0, err
	}
	return target, nil
}

// LastLSN returns the LSN of the most recently appended record.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLSN
}

func (l *Log) tick() {
	defer close(l.done)
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			//lint:ignore walerr sync failures latch in syncErr/wedged and surface on the next Append; tick has no caller to report to
			l.Sync(l.LastLSN())
		}
	}
}

// TruncateBefore removes closed segments whose entire key range is
// covered by a checkpoint at key (every record key ≤ key). The open
// segment is never removed.
func (l *Log) TruncateBefore(key uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.segs[:0]
	var firstErr error
	for i, s := range l.segs {
		open := l.cur != nil && i == len(l.segs)-1
		if !open && s.lastKey <= key {
			if err := l.fs.Remove(filepath.Join(l.opts.Dir, s.name)); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("wal: truncate: %w", err)
				}
				kept = append(kept, s)
			}
			continue
		}
		kept = append(kept, s)
	}
	removed := len(l.segs) != len(kept)
	l.segs = kept
	if removed {
		if err := l.fs.SyncDir(l.opts.Dir); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return firstErr
}

// Stats returns a counter snapshot.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	segs := len(l.segs)
	var size int64
	for _, s := range l.segs {
		size += s.size
	}
	l.mu.Unlock()
	return Stats{
		Appended:      l.appended.Load(),
		AppendedBytes: l.appendedBytes.Load(),
		Fsyncs:        l.fsyncs.Load(),
		Replayed:      l.replayed.Load(),
		TornBytes:     l.tornBytes.Load(),
		Segments:      segs,
		SizeBytes:     size,
	}
}

// Err returns the latched wedge error, if any: once an append or sync
// hits an I/O failure the log refuses further writes and this reports
// why. A nil result means the log is healthy (readiness probes key off
// this).
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.wedged
}

// Close flushes, fsyncs and closes the log. Later Appends fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.done
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.cur != nil && l.wedged == nil {
		l.fsyncs.Add(1)
		err = l.cur.Sync()
	}
	if l.cur != nil {
		if cerr := l.cur.Close(); err == nil {
			err = cerr
		}
		l.cur = nil
	}
	return err
}
