package triples

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Load reads a whitespace-separated triple file into the builder: one
// "subject predicate object" triple per line. Tokens may be bare words or
// IRIs in angle brackets; '#' starts a comment; a trailing '.' (N-Triples
// style) is tolerated. Blank lines are skipped.
func Load(r io.Reader, b *Builder) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		line = strings.TrimSuffix(line, " .")
		line = strings.TrimSuffix(line, ".")
		if line == "" {
			continue
		}
		toks, err := tokens(line)
		if err != nil {
			return fmt.Errorf("triples: line %d: %v", lineNo, err)
		}
		if len(toks) != 3 {
			return fmt.Errorf("triples: line %d: want 3 fields, got %d", lineNo, len(toks))
		}
		b.Add(toks[0], toks[1], toks[2])
	}
	return sc.Err()
}

// tokens splits a line into bare words and <...>-wrapped IRIs.
func tokens(line string) ([]string, error) {
	var out []string
	i := 0
	for i < len(line) {
		switch {
		case line[i] == ' ' || line[i] == '\t':
			i++
		case line[i] == '<':
			end := strings.IndexByte(line[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("unterminated '<'")
			}
			out = append(out, line[i+1:i+end])
			i += end + 1
		default:
			start := i
			for i < len(line) && line[i] != ' ' && line[i] != '\t' {
				i++
			}
			out = append(out, line[start:i])
		}
	}
	return out, nil
}

// Dump writes the original (non-inverse) triples of g in the format Load
// reads.
func Dump(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for _, t := range g.Triples {
		if t.P >= g.NumPreds {
			continue // skip completion edges
		}
		if _, err := fmt.Fprintf(bw, "%s %s %s\n",
			g.Nodes.Name(t.S), g.Preds.Name(t.P), g.Nodes.Name(t.O)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
