package triples

import "ringrpq/internal/serial"

// Encode writes the dictionary's names in id order.
func (d *Dict) Encode(w *serial.Writer) {
	w.Magic("dic1")
	names := d.NamesView()
	w.Int(len(names))
	for _, n := range names {
		w.String(n)
	}
}

// DecodeDict reads a dictionary written by Encode.
func DecodeDict(r *serial.Reader) *Dict {
	r.Magic("dic1")
	n := r.Int()
	d := NewDict()
	for i := 0; i < n; i++ {
		name := r.String()
		if r.Err() != nil {
			return nil
		}
		d.Intern(name)
	}
	return d
}

// EncodeMeta writes the graph's dictionaries and predicate count; the
// triple list itself is not stored (the ring reconstructs triples when
// needed), so a decoded graph serves only name/id resolution.
func (g *Graph) EncodeMeta(w *serial.Writer) {
	w.Magic("gra1")
	g.Nodes.Encode(w)
	g.Preds.Encode(w)
	w.Uvarint(uint64(g.NumPreds))
}

// DecodeMeta reads graph metadata written by EncodeMeta. The returned
// graph has no triple list.
func DecodeMeta(r *serial.Reader) *Graph {
	r.Magic("gra1")
	g := &Graph{}
	g.Nodes = DecodeDict(r)
	g.Preds = DecodeDict(r)
	g.NumPreds = uint32(r.Uvarint())
	if r.Err() != nil {
		return nil
	}
	return g
}
