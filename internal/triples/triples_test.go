package triples

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// metroBuilder encodes the Santiago transport graph of Fig. 1.
func metroBuilder() *Builder {
	b := NewBuilder()
	// Metro lines are bidirectional: both directions present as in §5's
	// completion example (Fig. 3 adds ^bus only; l1, l2 and l5 already
	// appear in both directions).
	add := func(s, p, o string) { b.Add(s, p, o); b.Add(o, p, s) }
	add("Baquedano", "l1", "UCh")
	add("UCh", "l1", "LosHeroes")
	add("LosHeroes", "l2", "SantaAna")
	add("SantaAna", "l5", "BellasArtes")
	add("BellasArtes", "l5", "Baquedano")
	b.Add("SantaAna", "bus", "UCh")
	b.Add("SantaAna", "bus", "BellasArtes")
	return b
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Intern("alpha")
	bID := d.Intern("beta")
	if a == bID {
		t.Fatal("distinct names share an id")
	}
	if again := d.Intern("alpha"); again != a {
		t.Fatal("re-interning changes id")
	}
	if d.Name(a) != "alpha" || d.Name(bID) != "beta" {
		t.Fatal("Name round trip broken")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup invents entries")
	}
	if d.Len() != 2 {
		t.Fatalf("Len=%d", d.Len())
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder()
	b.Add("x", "p", "y")
	b.Add("x", "p", "y")
	g := b.Build()
	if g.Len() != 2 { // one edge + its inverse
		t.Fatalf("Len=%d, want 2", g.Len())
	}
}

func TestCompletion(t *testing.T) {
	g := metroBuilder().Build()
	if g.NumPreds != 4 {
		t.Fatalf("NumPreds=%d, want 4 (l1,l2,l5,bus)", g.NumPreds)
	}
	if g.NumCompletedPreds() != 8 {
		t.Fatalf("completed preds=%d", g.NumCompletedPreds())
	}
	// 12 original (10 bidirectional metro + 2 bus) doubled by completion.
	if g.Len() != 24 {
		t.Fatalf("Len=%d, want 24", g.Len())
	}
	// Every edge must have its inverse present.
	set := map[Triple]bool{}
	for _, tr := range g.Triples {
		set[tr] = true
	}
	for _, tr := range g.Triples {
		inv := Triple{tr.O, g.Inverse(tr.P), tr.S}
		if !set[inv] {
			t.Fatalf("missing inverse of %v", g.String(tr))
		}
	}
	// Triples must be sorted by (s,p,o).
	if !sort.SliceIsSorted(g.Triples, func(i, j int) bool { return less(g.Triples[i], g.Triples[j]) }) {
		t.Fatal("triples not sorted")
	}
}

func TestInverseInvolution(t *testing.T) {
	g := metroBuilder().Build()
	for p := uint32(0); p < g.NumCompletedPreds(); p++ {
		if g.Inverse(g.Inverse(p)) != p {
			t.Fatalf("Inverse not an involution at %d", p)
		}
	}
}

func TestPredID(t *testing.T) {
	g := metroBuilder().Build()
	fwd, ok := g.PredID("bus", false)
	if !ok {
		t.Fatal("bus not found")
	}
	inv, ok := g.PredID("bus", true)
	if !ok || inv != fwd+g.NumPreds {
		t.Fatalf("PredID(^bus)=%d, want %d", inv, fwd+g.NumPreds)
	}
	if _, ok := g.PredID("train", false); ok {
		t.Fatal("unknown predicate resolved")
	}
	if got := g.PredName(inv); got != "^bus" {
		t.Fatalf("PredName=%q", got)
	}
}

func TestLoadDumpRoundTrip(t *testing.T) {
	src := `
# Santiago fragment
Baquedano l1 UCh .
UCh l1 LosHeroes
<http://ex.org/SantaAna> <http://ex.org/bus> UCh
`
	b := NewBuilder()
	if err := Load(strings.NewReader(src), b); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if g.Len() != 6 {
		t.Fatalf("Len=%d, want 6", g.Len())
	}
	if _, ok := g.Nodes.Lookup("http://ex.org/SantaAna"); !ok {
		t.Fatal("IRI node not interned")
	}

	var buf bytes.Buffer
	if err := Dump(&buf, g); err != nil {
		t.Fatal(err)
	}
	b2 := NewBuilder()
	if err := Load(&buf, b2); err != nil {
		t.Fatal(err)
	}
	if g2 := b2.Build(); g2.Len() != g.Len() {
		t.Fatalf("round trip Len=%d, want %d", g2.Len(), g.Len())
	}
}

func TestLoadErrors(t *testing.T) {
	for _, src := range []string{"a b", "a b c d", "<unterminated b c"} {
		b := NewBuilder()
		if err := Load(strings.NewReader(src), b); err == nil {
			t.Errorf("Load(%q) succeeded, want error", src)
		}
	}
}

func TestAddIDs(t *testing.T) {
	b := NewBuilder()
	s := b.Nodes().Intern("s")
	p := b.Preds().Intern("p")
	o := b.Nodes().Intern("o")
	b.AddIDs(s, p, o)
	b.AddIDs(s, p, o)
	g := b.Build()
	if g.Len() != 2 {
		t.Fatalf("Len=%d, want 2", g.Len())
	}
}
