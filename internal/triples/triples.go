// Package triples provides the dictionary-encoded labeled graph underlying
// the ring (paper §3.1 and §5 "Index construction"): triples (s,p,o) over
// integer ids, with the graph completion G↔ that materialises a reverse
// edge with inverse label p̂ = p + |P| for every edge labeled p.
package triples

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Triple is a dictionary-encoded edge s --p--> o.
type Triple struct {
	S, P, O uint32
}

// Dict maps strings to dense ids in insertion order. It is append-only
// and safe for one writer interning concurrently with any number of
// readers: Name and NamesView are lock-free against an atomically
// published slice header (ids never disappear or change), while
// Lookup/Intern synchronise on an internal mutex. This is what lets
// live updates intern new node names while queries pinned to an older
// snapshot keep resolving theirs.
type Dict struct {
	mu    sync.RWMutex
	names atomic.Pointer[[]string]
	ids   map[string]uint32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	d := &Dict{ids: make(map[string]uint32)}
	d.names.Store(new([]string))
	return d
}

// Intern returns the id of name, assigning the next id on first sight.
func (d *Dict) Intern(name string) uint32 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[name]; ok {
		return id
	}
	cur := *d.names.Load()
	id := uint32(len(cur))
	// Appending may write one slot past the published length into a
	// shared backing array; readers only index below their header's
	// length, so the new header is published atomically afterwards.
	next := append(cur, name)
	d.names.Store(&next)
	d.ids[name] = id
	return id
}

// Lookup returns the id of name if present.
func (d *Dict) Lookup(name string) (uint32, bool) {
	d.mu.RLock()
	id, ok := d.ids[name]
	d.mu.RUnlock()
	return id, ok
}

// Name returns the string for id.
func (d *Dict) Name(id uint32) string { return (*d.names.Load())[id] }

// Len reports the number of interned strings.
func (d *Dict) Len() int { return len(*d.names.Load()) }

// NamesView returns the current names in id order. The slice is an
// immutable snapshot: later Interns never mutate entries below its
// length.
func (d *Dict) NamesView() []string {
	v := *d.names.Load()
	return v[:len(v):len(v)]
}

// SizeBytes estimates the dictionary footprint.
func (d *Dict) SizeBytes() int {
	sz := 0
	for _, n := range d.NamesView() {
		sz += len(n) + 16 + // names slice entry
			len(n) + 24 // map key and value, approximate
	}
	return sz + 48
}

// Builder accumulates string triples and freezes them into a Graph.
type Builder struct {
	nodes *Dict
	preds *Dict
	ts    []Triple
	seen  map[Triple]bool
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder {
	return &Builder{
		nodes: NewDict(),
		preds: NewDict(),
		seen:  make(map[Triple]bool),
	}
}

// Add inserts the triple (s, p, o); duplicates are ignored (graphs are
// edge sets).
func (b *Builder) Add(s, p, o string) {
	t := Triple{b.nodes.Intern(s), b.preds.Intern(p), b.nodes.Intern(o)}
	if !b.seen[t] {
		b.seen[t] = true
		b.ts = append(b.ts, t)
	}
}

// AddIDs inserts a pre-encoded triple; callers must intern consistently.
func (b *Builder) AddIDs(s, p, o uint32) {
	t := Triple{s, p, o}
	if !b.seen[t] {
		b.seen[t] = true
		b.ts = append(b.ts, t)
	}
}

// Nodes exposes the node dictionary (shared with the built graph).
func (b *Builder) Nodes() *Dict { return b.nodes }

// Preds exposes the predicate dictionary (shared with the built graph).
func (b *Builder) Preds() *Dict { return b.preds }

// Build completes the graph: for every triple (s,p,o) the inverse
// (o, p+|P|, s) is added, doubling edges and predicates (§5). The builder
// must not be used afterwards.
func (b *Builder) Build() *Graph {
	np := uint32(b.preds.Len())
	g := &Graph{
		Nodes:    b.nodes,
		Preds:    b.preds,
		NumPreds: np,
		Triples:  make([]Triple, 0, 2*len(b.ts)),
	}
	for _, t := range b.ts {
		g.Triples = append(g.Triples, t, Triple{t.O, t.P + np, t.S})
	}
	sort.Slice(g.Triples, func(i, j int) bool { return less(g.Triples[i], g.Triples[j]) })
	return g
}

func less(a, b Triple) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	if a.P != b.P {
		return a.P < b.P
	}
	return a.O < b.O
}

// Graph is a completed, dictionary-encoded graph G↔.
type Graph struct {
	// Triples lists the 2n completed edges sorted by (s,p,o).
	Triples []Triple
	// Nodes maps node names; ids in [0, NumNodes()).
	Nodes *Dict
	// Preds maps original predicate names; completed predicate ids are
	// [0, 2·NumPreds) where id+NumPreds is the inverse of id.
	Preds *Dict
	// NumPreds is the original predicate count |P|.
	NumPreds uint32
}

// NumNodes reports |V|.
func (g *Graph) NumNodes() int { return g.Nodes.Len() }

// NumCompletedPreds reports |Σ↔| = 2|P|.
func (g *Graph) NumCompletedPreds() uint32 { return 2 * g.NumPreds }

// Len reports the number of completed edges (2n).
func (g *Graph) Len() int { return len(g.Triples) }

// Inverse maps a completed predicate id to its inverse.
func (g *Graph) Inverse(p uint32) uint32 {
	if p < g.NumPreds {
		return p + g.NumPreds
	}
	return p - g.NumPreds
}

// PredID resolves a (name, inverse) predicate occurrence to its completed
// id.
func (g *Graph) PredID(name string, inverse bool) (uint32, bool) {
	id, ok := g.Preds.Lookup(name)
	if !ok {
		return 0, false
	}
	if inverse {
		id += g.NumPreds
	}
	return id, true
}

// PredName renders a completed predicate id, prefixing inverses with '^'.
func (g *Graph) PredName(p uint32) string {
	if p >= g.NumPreds {
		return "^" + g.Preds.Name(p-g.NumPreds)
	}
	return g.Preds.Name(p)
}

// String renders a triple for debugging.
func (g *Graph) String(t Triple) string {
	return fmt.Sprintf("%s -%s-> %s", g.Nodes.Name(t.S), g.PredName(t.P), g.Nodes.Name(t.O))
}
