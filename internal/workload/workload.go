// Package workload generates RPQ query logs with the pattern mix of the
// paper's Table 1: the 20 most popular RPQ patterns among the 1,952
// hard (timed-out) queries of the Wikidata query logs, with their
// observed frequencies. Patterns follow the paper's notation — node
// constness (c/v) around the operator skeleton of the expression — and
// generated queries instantiate predicates frequency-weighted from the
// graph and constants from satisfiable endpoints.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"ringrpq/internal/pathexpr"
	"ringrpq/internal/triples"
)

// PatternFreq is one row of Table 1.
type PatternFreq struct {
	// Pattern is the paper's notation, e.g. "v /* c".
	Pattern string
	// Count is the number of log queries with this pattern.
	Count int
	// Template is the expression skeleton with predicate placeholders
	// $1..$9.
	Template string
}

// Table1 reproduces the paper's Table 1 (the 20 most popular RPQ
// patterns in the Wikidata timeout log), with expression templates that
// realise each operator skeleton.
var Table1 = []PatternFreq{
	{"v /* c", 537, "$1/$2*"},
	{"v * c", 433, "$1*"},
	{"v + c", 109, "$1+"},
	{"c * v", 99, "$1*"},
	{"c /* v", 95, "$1/$2*"},
	{"v / c", 54, "$1/$2"},
	{"v */* c", 44, "$1*/$2*"},
	{"v / v", 41, "$1/$2"},
	{"v |* c", 36, "($1|$2)*"},
	{"v | v", 31, "$1|$2"},
	{"v */*/*/*/* c", 28, "$1*/$2*/$3*/$4*/$5*"},
	{"v ^ v", 26, "^$1"},
	{"v /* v", 25, "$1/$2*"},
	{"v * v", 25, "$1*"},
	{"v /? c", 22, "$1/$2?"},
	{"v + v", 17, "$1+"},
	{"v /+ c", 12, "$1/$2+"},
	{"v || v", 10, "$1|$2|$3"},
	{"v | c", 10, "$1|$2"},
	{"v /^ v", 7, "$1/^$2"},
}

// Total1 is the number of queries Table 1 covers.
func Total1() int {
	total := 0
	for _, p := range Table1 {
		total += p.Count
	}
	return total
}

// Query is one generated benchmark query.
type Query struct {
	// Subject and Object are node names, or "" for variables.
	Subject, Object string
	// Expr is the parsed expression.
	Expr pathexpr.Node
	// Pattern is the Table 1 pattern this query instantiates.
	Pattern string
}

// ConstToVar reports whether the query fixes at least one endpoint
// (the paper's "c-to-v" class; 84.7% of its log).
func (q Query) ConstToVar() bool { return q.Subject != "" || q.Object != "" }

// String renders the query in (s, E, o) form.
func (q Query) String() string {
	s, o := q.Subject, q.Object
	if s == "" {
		s = "?x"
	}
	if o == "" {
		o = "?y"
	}
	return fmt.Sprintf("(%s, %s, %s)", s, pathexpr.String(q.Expr), o)
}

// Config controls generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Total is the number of queries to generate, distributed across the
	// Table 1 patterns proportionally to their counts (default: Total1()).
	Total int
}

// Generate instantiates a query log over g.
func Generate(g *triples.Graph, cfg Config) []Query {
	if cfg.Total == 0 {
		cfg.Total = Total1()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := &generator{g: g, rng: rng}
	total1 := Total1()
	var out []Query
	for _, pf := range Table1 {
		n := pf.Count * cfg.Total / total1
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			out = append(out, gen.instantiate(pf))
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	if len(out) > cfg.Total {
		out = out[:cfg.Total]
	}
	return out
}

type generator struct {
	g   *triples.Graph
	rng *rand.Rand
}

// randomEdge samples a completed edge uniformly, which weights predicates
// and endpoints by their frequency — mirroring how real logs mention
// popular predicates most.
func (gen *generator) randomEdge() triples.Triple {
	return gen.g.Triples[gen.rng.Intn(len(gen.g.Triples))]
}

// predOccurrence samples a base predicate frequency-weighted (an edge
// drawn on an inverse predicate is flipped to its base form so the
// operator skeleton of the template is preserved).
func (gen *generator) predOccurrence() (string, triples.Triple) {
	t := gen.randomEdge()
	if t.P >= gen.g.NumPreds {
		t = triples.Triple{S: t.O, P: t.P - gen.g.NumPreds, O: t.S}
	}
	return gen.g.Preds.Name(t.P), t
}

func (gen *generator) instantiate(pf PatternFreq) Query {
	expr := pf.Template
	var firstEdge, lastEdge triples.Triple
	for i := 1; i <= 9; i++ {
		ph := fmt.Sprintf("$%d", i)
		if !strings.Contains(expr, ph) {
			break
		}
		name, edge := gen.predOccurrence()
		if i == 1 {
			firstEdge = edge
		}
		lastEdge = edge
		expr = strings.Replace(expr, ph, name, 1)
	}
	node := pathexpr.MustParse(expr)

	q := Query{Expr: node, Pattern: pf.Pattern}
	fields := strings.Fields(pf.Pattern)
	if fields[0] == "c" {
		// Subject constant: pick a node with an outgoing first-predicate
		// edge so the query is satisfiable at least one step.
		q.Subject = gen.g.Nodes.Name(firstEdge.S)
	}
	if fields[len(fields)-1] == "c" {
		q.Object = gen.g.Nodes.Name(lastEdge.O)
	}
	return q
}

// Classify returns the Table 1 pattern string of a query.
func Classify(q Query) string {
	return pathexpr.Pattern(q.Subject != "", q.Expr, q.Object != "")
}

// CountPatterns tallies the pattern mix of a log, for regenerating
// Table 1.
func CountPatterns(qs []Query) map[string]int {
	out := map[string]int{}
	for _, q := range qs {
		out[Classify(q)]++
	}
	return out
}
