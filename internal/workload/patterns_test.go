package workload_test

import (
	"testing"

	"ringrpq/internal/datagen"
	"ringrpq/internal/query"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
	"ringrpq/internal/workload"
)

func ringOf(g *triples.Graph) *ring.Ring { return ring.New(g, ring.WaveletMatrix) }

func TestGeneratePatterns(t *testing.T) {
	g := datagen.Generate(datagen.Config{Seed: 7, Nodes: 200, Edges: 900, Preds: 12})
	qs := workload.GeneratePatterns(g, workload.PatternConfig{Seed: 11, Total: 90})
	if len(qs) != 90 {
		t.Fatalf("generated %d patterns, want 90", len(qs))
	}
	classes := map[string]int{}
	rpq := 0
	for _, pq := range qs {
		q, err := query.Parse(pq.Text)
		if err != nil {
			t.Fatalf("generated pattern does not parse: %q: %v", pq.Text, err)
		}
		classes[pq.Class]++
		hasPathClause := false
		for _, c := range q.Clauses {
			if !c.IsTriple() {
				hasPathClause = true
			}
		}
		if pq.HasRPQ != hasPathClause {
			t.Fatalf("HasRPQ=%v but pattern %q path-clause presence is %v", pq.HasRPQ, pq.Text, hasPathClause)
		}
		if pq.HasRPQ {
			rpq++
		}
	}
	for _, class := range []string{"star", "path", "hybrid"} {
		if classes[class] == 0 {
			t.Fatalf("class %s absent: %v", class, classes)
		}
	}
	if rpq < 30 {
		t.Fatalf("only %d/%d patterns carry an RPQ clause", rpq, len(qs))
	}

	// Determinism: the same seed reproduces the log.
	again := workload.GeneratePatterns(g, workload.PatternConfig{Seed: 11, Total: 90})
	for i := range qs {
		if qs[i] != again[i] {
			t.Fatalf("generation not deterministic at %d: %q vs %q", i, qs[i].Text, again[i].Text)
		}
	}
}

func TestGeneratePatternsSatisfiable(t *testing.T) {
	// On a well-connected graph, a decent share of generated patterns
	// should actually have solutions (anchoring on real edges/walks).
	g := datagen.Generate(datagen.Config{Seed: 3, Nodes: 60, Edges: 400, Preds: 5})
	qs := workload.GeneratePatterns(g, workload.PatternConfig{Seed: 5, Total: 30})
	x := query.NewExec(g, ringOf(g), nil)
	nonEmpty := 0
	for _, pq := range qs {
		n := 0
		err := x.Run(query.MustParse(pq.Text), query.Options{Limit: 1}, func(query.Binding) bool {
			n++
			return true
		})
		if err != nil {
			t.Fatalf("%q: %v", pq.Text, err)
		}
		if n > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < len(qs)/3 {
		t.Fatalf("only %d/%d generated patterns are satisfiable", nonEmpty, len(qs))
	}
}
