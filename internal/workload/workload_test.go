package workload

import (
	"strings"
	"testing"

	"ringrpq/internal/datagen"
	"ringrpq/internal/pathexpr"
)

func TestTable1Shape(t *testing.T) {
	if len(Table1) != 20 {
		t.Fatalf("Table 1 has %d patterns, want 20", len(Table1))
	}
	if Total1() != 1661 {
		t.Fatalf("Total1=%d, want 1661 (sum of the paper's counts)", Total1())
	}
	// The table must be ordered by decreasing popularity, as in the paper.
	for i := 1; i < len(Table1); i++ {
		if Table1[i].Count > Table1[i-1].Count {
			t.Fatalf("Table 1 not sorted at %d", i)
		}
	}
	// Each template must classify back to its own pattern.
	for _, pf := range Table1 {
		expr := pf.Template
		for i := 1; i <= 9; i++ {
			expr = strings.ReplaceAll(expr, "$"+string(rune('0'+i)), "p")
		}
		node := pathexpr.MustParse(expr)
		fields := strings.Fields(pf.Pattern)
		got := pathexpr.Pattern(fields[0] == "c", node, fields[len(fields)-1] == "c")
		if got != pf.Pattern {
			t.Errorf("template %q classifies as %q, want %q", pf.Template, got, pf.Pattern)
		}
	}
}

func TestGenerateMix(t *testing.T) {
	g := datagen.Generate(datagen.Config{Seed: 2, Nodes: 1000, Edges: 5000, Preds: 20})
	qs := Generate(g, Config{Seed: 5, Total: 400})
	if len(qs) == 0 || len(qs) > 400 {
		t.Fatalf("generated %d queries", len(qs))
	}
	counts := CountPatterns(qs)
	// The dominant pattern must be the table's most popular one.
	if counts["v /* c"] < counts["v /^ v"] {
		t.Fatalf("mix not proportional: %v", counts)
	}
	// Every query must classify to a Table 1 pattern.
	known := map[string]bool{}
	for _, pf := range Table1 {
		known[pf.Pattern] = true
	}
	for p, n := range counts {
		if !known[p] {
			t.Fatalf("generated %d queries of unknown pattern %q", n, p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := datagen.Generate(datagen.Config{Seed: 2, Nodes: 500, Edges: 2000, Preds: 10})
	a := Generate(g, Config{Seed: 9, Total: 100})
	b := Generate(g, Config{Seed: 9, Total: 100})
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("query %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

func TestConstantsExistInGraph(t *testing.T) {
	g := datagen.Generate(datagen.Config{Seed: 2, Nodes: 500, Edges: 2000, Preds: 10})
	for _, q := range Generate(g, Config{Seed: 1, Total: 200}) {
		if q.Subject != "" {
			if _, ok := g.Nodes.Lookup(q.Subject); !ok {
				t.Fatalf("subject %q not in graph", q.Subject)
			}
		}
		if q.Object != "" {
			if _, ok := g.Nodes.Lookup(q.Object); !ok {
				t.Fatalf("object %q not in graph", q.Object)
			}
		}
		for _, sym := range pathexpr.Predicates(q.Expr) {
			if _, ok := g.PredID(sym.Name, sym.Inverse); !ok {
				t.Fatalf("predicate %v not in graph", sym)
			}
		}
	}
}

func TestConstToVar(t *testing.T) {
	q := Query{Subject: "Q1", Expr: pathexpr.MustParse("p*")}
	if !q.ConstToVar() {
		t.Fatal("subject-bound query must be c-to-v")
	}
	q2 := Query{Expr: pathexpr.MustParse("p*")}
	if q2.ConstToVar() {
		t.Fatal("fully variable query must not be c-to-v")
	}
	if got := q2.String(); got != "(?x, p*, ?y)" {
		t.Fatalf("String=%q", got)
	}
}

func TestGenerateMixed(t *testing.T) {
	g := datagen.Generate(datagen.Config{Seed: 5, Nodes: 500, Edges: 2500, Preds: 12})
	ops := GenerateMixed(g, MixedConfig{Seed: 3, Total: 100, WriteRatio: 0.3})
	if len(ops) != 100 {
		t.Fatalf("got %d ops, want 100", len(ops))
	}
	reads, writes, adds, dels, freshNodes := 0, 0, 0, 0, 0
	for _, op := range ops {
		if op.IsUpdate() {
			writes++
			adds += len(op.Adds)
			dels += len(op.Dels)
			for _, a := range op.Adds {
				if _, ok := g.Preds.Lookup(a.P); !ok {
					t.Fatalf("add uses unknown predicate %q", a.P)
				}
				if _, ok := g.Nodes.Lookup(a.O); !ok {
					freshNodes++
				}
			}
			for _, d := range op.Dels {
				if _, ok := g.Preds.Lookup(d.P); !ok {
					t.Fatalf("del uses unknown predicate %q", d.P)
				}
			}
		} else {
			reads++
		}
	}
	if writes != 30 || reads != 70 {
		t.Fatalf("mix: %d writes, %d reads", writes, reads)
	}
	if adds == 0 || dels == 0 || freshNodes == 0 {
		t.Fatalf("batches should mix adds (%d), dels (%d) and fresh nodes (%d)", adds, dels, freshNodes)
	}
	// Deterministic for a fixed seed.
	again := GenerateMixed(g, MixedConfig{Seed: 3, Total: 100, WriteRatio: 0.3})
	for i := range ops {
		if ops[i].IsUpdate() != again[i].IsUpdate() {
			t.Fatalf("generation is not deterministic at op %d", i)
		}
	}
}
