package workload

import (
	"fmt"
	"math/rand"

	"ringrpq/internal/triples"
)

// This file generates interleaved read/write workloads for the
// live-update benchmarks: a stream of operations mixing Table 1
// queries with update batches (edge adds weighted towards existing
// predicates/nodes like real feeds, plus deletes of existing edges).

// UpdateTriple is one string-form update edge.
type UpdateTriple struct {
	S, P, O string
}

// MixedOp is one operation of an interleaved workload: exactly one of
// Query (a read) or Adds/Dels (an update batch) is populated.
type MixedOp struct {
	Query      *Query
	Adds, Dels []UpdateTriple
}

// IsUpdate reports whether the op is an update batch.
func (op MixedOp) IsUpdate() bool { return op.Query == nil }

// MixedConfig controls GenerateMixed.
type MixedConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Total is the number of operations (default 400).
	Total int
	// WriteRatio is the fraction of update ops (default 0.2).
	WriteRatio float64
	// BatchSize is the number of edges per update batch (default 16).
	BatchSize int
	// DeleteFrac is the fraction of update edges that are deletes of
	// existing graph edges (default 0.2).
	DeleteFrac float64
	// FreshNodeFrac is the fraction of added edges that mint a new
	// node name (default 0.1), exercising dictionary growth.
	FreshNodeFrac float64
}

func (c MixedConfig) withDefaults() MixedConfig {
	if c.Total == 0 {
		c.Total = 400
	}
	if c.WriteRatio == 0 {
		c.WriteRatio = 0.2
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.DeleteFrac == 0 {
		c.DeleteFrac = 0.2
	}
	if c.FreshNodeFrac == 0 {
		c.FreshNodeFrac = 0.1
	}
	return c
}

// GenerateMixed builds an interleaved read/write stream over g. Reads
// follow the Table 1 pattern mix; update batches add edges between
// frequency-weighted existing nodes (occasionally minting new nodes)
// under existing predicates, and delete sampled existing edges.
func GenerateMixed(g *triples.Graph, cfg MixedConfig) []MixedOp {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	writes := int(float64(cfg.Total) * cfg.WriteRatio)
	reads := cfg.Total - writes

	qs := Generate(g, Config{Seed: cfg.Seed + 1, Total: reads})
	// Table 1 rounding can undershoot; top the reads up by cycling so
	// the op count is exact.
	for i := 0; len(qs) < reads && len(qs) > 0; i++ {
		qs = append(qs, qs[i%len(qs)])
	}
	gen := &generator{g: g, rng: rng}
	fresh := 0

	ops := make([]MixedOp, 0, cfg.Total)
	for _, q := range qs {
		q := q
		ops = append(ops, MixedOp{Query: &q})
	}
	for i := 0; i < writes; i++ {
		var op MixedOp
		for j := 0; j < cfg.BatchSize; j++ {
			if rng.Float64() < cfg.DeleteFrac {
				t := gen.randomEdge()
				if t.P >= g.NumPreds {
					t = triples.Triple{S: t.O, P: t.P - g.NumPreds, O: t.S}
				}
				op.Dels = append(op.Dels, UpdateTriple{
					S: g.Nodes.Name(t.S), P: g.Preds.Name(t.P), O: g.Nodes.Name(t.O)})
				continue
			}
			pName, edge := gen.predOccurrence()
			sName := g.Nodes.Name(edge.S)
			oName := g.Nodes.Name(uint32(rng.Intn(g.NumNodes())))
			if rng.Float64() < cfg.FreshNodeFrac {
				fresh++
				oName = fmt.Sprintf("fresh-%d-%d", cfg.Seed, fresh)
			}
			op.Adds = append(op.Adds, UpdateTriple{S: sName, P: pName, O: oName})
		}
		ops = append(ops, op)
	}
	rng.Shuffle(len(ops), func(i, j int) { ops[i], ops[j] = ops[j], ops[i] })
	return ops
}
