package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"ringrpq/internal/triples"
)

// This file generates graph-pattern workloads for the §6 query
// subsystem (internal/query): star, path and hybrid joins, optionally
// carrying an RPQ clause, with predicates frequency-weighted exactly
// like the Table 1 RPQ generator (sampling completed edges uniformly
// weights popular predicates most). Patterns are anchored on real edges
// and walks so every generated query is satisfiable for at least its
// first step.

// PatternQuery is one generated graph-pattern query.
type PatternQuery struct {
	// Text is the pattern source, parseable by internal/query.
	Text string
	// Class is the join shape: "star", "path" or "hybrid".
	Class string
	// HasRPQ reports whether the pattern carries a non-trivial path
	// clause next to its triple patterns.
	HasRPQ bool
}

// String returns the pattern text.
func (p PatternQuery) String() string { return p.Text }

// PatternConfig controls graph-pattern generation.
type PatternConfig struct {
	// Seed makes generation deterministic.
	Seed int64
	// Total is the number of patterns to generate (default 100),
	// spread evenly across the three classes.
	Total int
	// RPQFraction is the fraction of star and path patterns that carry
	// an RPQ clause (default 0.5). Hybrid patterns always carry one.
	RPQFraction float64
}

// rpqTemplates are the path-clause skeletons, instantiated with
// frequency-weighted predicates ($1, $2).
var rpqTemplates = []string{
	"$1*",
	"$1+",
	"$1/$2*",
	"($1|$2)+",
	"$1/$2",
	"$1?/$2",
}

// GeneratePatterns instantiates a graph-pattern log over g.
func GeneratePatterns(g *triples.Graph, cfg PatternConfig) []PatternQuery {
	if cfg.Total == 0 {
		cfg.Total = 100
	}
	if cfg.RPQFraction == 0 {
		cfg.RPQFraction = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := &patternGen{g: g, rng: rng, adj: map[uint32][]triples.Triple{}}
	for _, t := range g.Triples {
		gen.adj[t.S] = append(gen.adj[t.S], t)
	}
	out := make([]PatternQuery, 0, cfg.Total)
	for i := 0; i < cfg.Total; i++ {
		switch i % 3 {
		case 0:
			out = append(out, gen.star(rng.Float64() < cfg.RPQFraction))
		case 1:
			out = append(out, gen.path(rng.Float64() < cfg.RPQFraction))
		default:
			out = append(out, gen.hybrid())
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

type patternGen struct {
	g   *triples.Graph
	rng *rand.Rand
	adj map[uint32][]triples.Triple
}

// edge samples a completed edge uniformly (frequency-weighting
// predicates like the Table 1 generator).
func (gen *patternGen) edge() triples.Triple {
	return gen.g.Triples[gen.rng.Intn(len(gen.g.Triples))]
}

// predToken renders a completed predicate id as a pattern token
// (inverses as ^p, non-identifier names bracketed).
func (gen *patternGen) predToken(p uint32) string {
	inv := ""
	base := p
	if p >= gen.g.NumPreds {
		inv = "^"
		base = p - gen.g.NumPreds
	}
	return inv + predNameToken(gen.g.Preds.Name(base))
}

// basePredToken samples a frequency-weighted base predicate token for
// RPQ templates.
func (gen *patternGen) basePredToken() string {
	t := gen.edge()
	base := t.P
	if base >= gen.g.NumPreds {
		base -= gen.g.NumPreds
	}
	return predNameToken(gen.g.Preds.Name(base))
}

// nodeToken renders a node constant.
func (gen *patternGen) nodeToken(v uint32) string {
	return constToken(gen.g.Nodes.Name(v))
}

// star builds 2–4 clauses sharing the subject variable ?x, anchored on
// a node with enough distinct out-edges in the completed graph.
func (gen *patternGen) star(withRPQ bool) PatternQuery {
	t := gen.edge()
	center := t.S
	edges := gen.adj[center]
	n := 2 + gen.rng.Intn(3)
	if n > len(edges) {
		n = len(edges)
	}
	var clauses []string
	perm := gen.rng.Perm(len(edges))
	for i := 0; i < n; i++ {
		e := edges[perm[i]]
		obj := fmt.Sprintf("?y%d", i)
		if gen.rng.Intn(3) == 0 {
			obj = gen.nodeToken(e.O)
		}
		clauses = append(clauses, fmt.Sprintf("?x %s %s", gen.predToken(e.P), obj))
	}
	hasRPQ := false
	if withRPQ {
		clauses = append(clauses, gen.rpqClause("?x", "?r"))
		hasRPQ = true
	}
	return PatternQuery{Text: strings.Join(clauses, " . "), Class: "star", HasRPQ: hasRPQ}
}

// path builds a chain ?x0 -p1-> ?x1 -p2-> ... along a real walk.
func (gen *patternGen) path(withRPQ bool) PatternQuery {
	t := gen.edge()
	want := 2 + gen.rng.Intn(3)
	var walk []triples.Triple
	cur := t
	for len(walk) < want {
		walk = append(walk, cur)
		next := gen.adj[cur.O]
		if len(next) == 0 {
			break
		}
		cur = next[gen.rng.Intn(len(next))]
	}
	var clauses []string
	for i, e := range walk {
		subj := fmt.Sprintf("?x%d", i)
		if i == 0 && gen.rng.Intn(4) == 0 {
			subj = gen.nodeToken(e.S)
		}
		obj := fmt.Sprintf("?x%d", i+1)
		if i == len(walk)-1 && gen.rng.Intn(3) == 0 {
			obj = gen.nodeToken(e.O)
		}
		clauses = append(clauses, fmt.Sprintf("%s %s %s", subj, gen.predToken(e.P), obj))
	}
	hasRPQ := false
	if withRPQ {
		clauses = append(clauses, gen.rpqClause(anchorVar(clauses), "?r"))
		hasRPQ = true
	}
	return PatternQuery{Text: strings.Join(clauses, " . "), Class: "path", HasRPQ: hasRPQ}
}

// anchorVar picks a variable already present in the clauses to attach
// an RPQ clause to, keeping the pattern connected; a fresh variable is
// the (rare) fallback when every endpoint is constant.
func anchorVar(clauses []string) string {
	for _, c := range clauses {
		for _, tok := range strings.Fields(c) {
			if strings.HasPrefix(tok, "?") {
				return tok
			}
		}
	}
	return "?r0"
}

// hybrid glues a short star onto a short path and always adds an RPQ
// clause between two of its variables.
func (gen *patternGen) hybrid() PatternQuery {
	p := gen.path(false)
	star := gen.star(false)
	// Rename the star's center onto one of the path's variables so the
	// shapes join, keeping the star's branch variables distinct.
	anchor := anchorVar(strings.Split(p.Text, " . "))
	starText := strings.ReplaceAll(star.Text, "?x ", anchor+" ")
	starText = strings.ReplaceAll(starText, "?y", "?s")
	clauses := p.Text + " . " + starText + " . " + gen.rpqClause(anchor, "?r")
	return PatternQuery{Text: clauses, Class: "hybrid", HasRPQ: true}
}

// rpqClause instantiates a template between the given endpoints; a
// fresh variable object keeps the clause satisfiable wherever the
// subject binds.
func (gen *patternGen) rpqClause(subj, obj string) string {
	tmpl := rpqTemplates[gen.rng.Intn(len(rpqTemplates))]
	expr := strings.Replace(tmpl, "$1", gen.basePredToken(), 1)
	expr = strings.Replace(expr, "$2", gen.basePredToken(), 1)
	return fmt.Sprintf("%s %s %s", subj, expr, obj)
}

// predNameToken renders a predicate name in path-expression syntax.
func predNameToken(name string) string {
	if identLike(name) {
		return name
	}
	return "<" + name + ">"
}

// constToken renders a node constant in pattern syntax.
func constToken(name string) string {
	if name == "" || name == "." || name == "{" || name == "}" ||
		name[0] == '?' || name[0] == '<' || strings.ContainsAny(name, "<> \t\n") ||
		strings.EqualFold(name, "select") || strings.EqualFold(name, "where") {
		return "<" + name + ">"
	}
	return name
}

// identLike mirrors pathexpr's bare-identifier rule.
func identLike(name string) bool {
	if name == "" || name[0] == '-' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			c >= '0' && c <= '9' || c == '_' || c == ':' || c == '.' || c == '-') {
			return false
		}
	}
	return true
}
