package harness

import (
	"context"
	"errors"
	"time"

	"ringrpq/internal/baseline/alp"
	"ringrpq/internal/baseline/bfs"
	"ringrpq/internal/baseline/relational"
	"ringrpq/internal/core"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
	"ringrpq/internal/workload"
)

// resolve maps a query's endpoint names to ids; ok=false means a
// constant does not occur in the graph (empty result, matching the
// paper's filtering of queries over absent constants).
func resolve(g *triples.Graph, q workload.Query) (s, o int64, ok bool) {
	s, o = core.Variable, core.Variable
	if q.Subject != "" {
		id, found := g.Nodes.Lookup(q.Subject)
		if !found {
			return 0, 0, false
		}
		s = int64(id)
	}
	if q.Object != "" {
		id, found := g.Nodes.Lookup(q.Object)
		if !found {
			return 0, 0, false
		}
		o = int64(id)
	}
	return s, o, true
}

// Ring is the paper's system: the core engine over the ring index.
type Ring struct {
	g      *triples.Graph
	r      *ring.Ring
	engine *core.Engine
	name   string
}

// NewRing builds the ring system; the layout selects wavelet matrix
// (paper default) or wavelet tree.
func NewRing(g *triples.Graph, layout ring.Layout) *Ring {
	name := "Ring"
	if layout == ring.WaveletTree {
		name = "Ring(WT)"
	}
	r := ring.New(g, layout)
	return &Ring{
		g:      g,
		r:      r,
		engine: core.NewEngine(r, func(s pathexpr.Sym) (uint32, bool) { return g.PredID(s.Name, s.Inverse) }),
		name:   name,
	}
}

// Name implements System.
func (s *Ring) Name() string { return s.name }

// SizeBytes implements System with the paper's accounting: the RPQ
// engine needs L_s, L_p and the C arrays only.
func (s *Ring) SizeBytes() int { return s.r.QuerySizeBytes() }

// Engine exposes the underlying engine (for ablation benchmarks).
func (s *Ring) Engine() *core.Engine { return s.engine }

// Graph exposes the underlying graph (for the service-pool benchmark).
func (s *Ring) Graph() *triples.Graph { return s.g }

// Ring exposes the underlying ring index (for the service-pool
// benchmark).
func (s *Ring) Ring() *ring.Ring { return s.r }

// Run implements System.
func (s *Ring) Run(q workload.Query, limit int, timeout time.Duration) (int, bool, error) {
	sid, oid, ok := resolve(s.g, q)
	if !ok {
		return 0, false, nil
	}
	n := 0
	_, err := s.engine.Eval(
		context.Background(),
		core.Query{Subject: sid, Expr: q.Expr, Object: oid},
		core.Options{Limit: limit, Timeout: timeout},
		func(uint32, uint32) bool { n++; return true })
	if errors.Is(err, core.ErrTimeout) {
		return n, true, nil
	}
	return n, false, err
}

// BFS is the navigational baseline (adjacency lists + Thompson NFA).
type BFS struct {
	g  *triples.Graph
	ix *bfs.Index
}

// NewBFS builds the navigational baseline.
func NewBFS(g *triples.Graph) *BFS { return &BFS{g: g, ix: bfs.New(g)} }

// Name implements System.
func (s *BFS) Name() string { return "NavBFS" }

// SizeBytes implements System.
func (s *BFS) SizeBytes() int { return s.ix.SizeBytes() }

// Run implements System.
func (s *BFS) Run(q workload.Query, limit int, timeout time.Duration) (int, bool, error) {
	sid, oid, ok := resolve(s.g, q)
	if !ok {
		return 0, false, nil
	}
	n := 0
	err := s.ix.Eval(sid, q.Expr, oid, bfs.Options{Limit: limit, Timeout: timeout},
		func(uint32, uint32) bool { n++; return true })
	if errors.Is(err, bfs.ErrTimeout) {
		return n, true, nil
	}
	return n, false, err
}

// ALP is the SPARQL-spec baseline (Jena-style).
type ALP struct {
	g  *triples.Graph
	ix *alp.Index
}

// NewALP builds the SPARQL-spec baseline.
func NewALP(g *triples.Graph) *ALP { return &ALP{g: g, ix: alp.New(g)} }

// Name implements System.
func (s *ALP) Name() string { return "ALP" }

// SizeBytes implements System.
func (s *ALP) SizeBytes() int { return s.ix.SizeBytes() }

// Run implements System.
func (s *ALP) Run(q workload.Query, limit int, timeout time.Duration) (int, bool, error) {
	sid, oid, ok := resolve(s.g, q)
	if !ok {
		return 0, false, nil
	}
	n := 0
	err := s.ix.Eval(sid, q.Expr, oid, alp.Options{Limit: limit, Timeout: timeout},
		func(uint32, uint32) bool { n++; return true })
	if errors.Is(err, alp.ErrTimeout) {
		return n, true, nil
	}
	return n, false, err
}

// Relational is the transitive-closure-over-joins baseline
// (Virtuoso-style).
type Relational struct {
	g  *triples.Graph
	ix *relational.Index
}

// NewRelational builds the relational baseline.
func NewRelational(g *triples.Graph) *Relational {
	return &Relational{g: g, ix: relational.New(g)}
}

// Name implements System.
func (s *Relational) Name() string { return "Relational" }

// SizeBytes implements System.
func (s *Relational) SizeBytes() int { return s.ix.SizeBytes() }

// Run implements System.
func (s *Relational) Run(q workload.Query, limit int, timeout time.Duration) (int, bool, error) {
	sid, oid, ok := resolve(s.g, q)
	if !ok {
		return 0, false, nil
	}
	n := 0
	err := s.ix.Eval(sid, q.Expr, oid, relational.Options{Limit: limit, Timeout: timeout},
		func(uint32, uint32) bool { n++; return true })
	if errors.Is(err, relational.ErrTimeout) {
		return n, true, nil
	}
	return n, false, err
}
