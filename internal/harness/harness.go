// Package harness runs the paper's benchmark protocol (§5) over the
// competing systems: every query of the log is evaluated with a timeout
// and a result cap under set semantics, per-query wall-clock times are
// recorded, and the aggregations of Table 2 (space, average, median,
// timeouts, c-to-v / v-to-v splits) and Fig. 8 (per-pattern quantile
// distributions) are rendered as text tables.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ringrpq/internal/workload"
)

// System is one competitor: an index over a fixed graph that can
// evaluate log queries.
type System interface {
	// Name labels the system in reports.
	Name() string
	// SizeBytes reports the index footprint.
	SizeBytes() int
	// Run evaluates q, returning the result count and whether the
	// timeout fired.
	Run(q workload.Query, limit int, timeout time.Duration) (results int, timedOut bool, err error)
}

// QueryResult is one (system, query) measurement.
type QueryResult struct {
	Pattern    string
	ConstToVar bool
	Duration   time.Duration
	Results    int
	TimedOut   bool
}

// Report holds one system's measurements over a log.
type Report struct {
	System    string
	SizeBytes int
	Results   []QueryResult
}

// Run evaluates the whole log on one system. Timed-out queries are
// recorded with the full timeout as their duration, following the
// paper's accounting.
func Run(sys System, qs []workload.Query, limit int, timeout time.Duration) (Report, error) {
	rep := Report{System: sys.Name(), SizeBytes: sys.SizeBytes()}
	for _, q := range qs {
		start := time.Now()
		n, timedOut, err := sys.Run(q, limit, timeout)
		if err != nil {
			return rep, fmt.Errorf("harness: %s on %s: %w", sys.Name(), q, err)
		}
		d := time.Since(start)
		if timedOut {
			d = timeout
		}
		rep.Results = append(rep.Results, QueryResult{
			Pattern:    workload.Classify(q),
			ConstToVar: q.ConstToVar(),
			Duration:   d,
			Results:    n,
			TimedOut:   timedOut,
		})
	}
	return rep, nil
}

// durations extracts the (sorted) durations matching the filter.
func durations(rep Report, filter func(QueryResult) bool) []time.Duration {
	var out []time.Duration
	for _, r := range rep.Results {
		if filter == nil || filter(r) {
			out = append(out, r.Duration)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func mean(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range ds {
		total += d
	}
	return total / time.Duration(len(ds))
}

// quantile returns the q-quantile (0..1) of sorted durations by linear
// interpolation.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

func timeouts(rep Report) int {
	n := 0
	for _, r := range rep.Results {
		if r.TimedOut {
			n++
		}
	}
	return n
}

// RenderTable1 prints the pattern mix of a log in the paper's Table 1
// layout.
func RenderTable1(qs []workload.Query) string {
	counts := workload.CountPatterns(qs)
	type row struct {
		pattern string
		count   int
	}
	rows := make([]row, 0, len(counts))
	for p, c := range counts {
		rows = append(rows, row{p, c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].count != rows[j].count {
			return rows[i].count > rows[j].count
		}
		return rows[i].pattern < rows[j].pattern
	})
	var sb strings.Builder
	sb.WriteString("Table 1: RPQ patterns in the generated query log\n")
	sb.WriteString(fmt.Sprintf("%-20s %8s\n", "pattern", "#"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-20s %8d\n", r.pattern, r.count))
	}
	return sb.String()
}

// RenderTable2 prints index space and query-time statistics in the
// paper's Table 2 layout; edges is the completed edge count for the
// bytes/edge normalisation.
func RenderTable2(reports []Report, edges int) string {
	var sb strings.Builder
	sb.WriteString("Table 2: index space (bytes per edge) and query time statistics (seconds)\n")
	sb.WriteString(fmt.Sprintf("%-18s", ""))
	for _, rep := range reports {
		sb.WriteString(fmt.Sprintf("%14s", rep.System))
	}
	sb.WriteString("\n")

	writeRow := func(label string, val func(Report) string) {
		sb.WriteString(fmt.Sprintf("%-18s", label))
		for _, rep := range reports {
			sb.WriteString(fmt.Sprintf("%14s", val(rep)))
		}
		sb.WriteString("\n")
	}
	secs := func(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }
	c2v := func(r QueryResult) bool { return r.ConstToVar }
	v2v := func(r QueryResult) bool { return !r.ConstToVar }

	writeRow("Space (B/edge)", func(r Report) string {
		return fmt.Sprintf("%.2f", float64(r.SizeBytes)/float64(edges))
	})
	writeRow("Average", func(r Report) string { return secs(mean(durations(r, nil))) })
	writeRow("Median", func(r Report) string { return secs(quantile(durations(r, nil), 0.5)) })
	writeRow("Timeouts", func(r Report) string { return fmt.Sprintf("%d", timeouts(r)) })
	writeRow("Average c-to-v", func(r Report) string { return secs(mean(durations(r, c2v))) })
	writeRow("Median c-to-v", func(r Report) string { return secs(quantile(durations(r, c2v), 0.5)) })
	writeRow("Average v-to-v", func(r Report) string { return secs(mean(durations(r, v2v))) })
	writeRow("Median v-to-v", func(r Report) string { return secs(quantile(durations(r, v2v), 0.5)) })
	return sb.String()
}

// RenderFig8 prints, per pattern and system, the five-number summary
// that Fig. 8 draws as boxplots.
func RenderFig8(reports []Report) string {
	patterns := map[string]bool{}
	for _, rep := range reports {
		for _, r := range rep.Results {
			patterns[r.Pattern] = true
		}
	}
	ordered := make([]string, 0, len(patterns))
	// Keep the paper's Table 1 order where applicable.
	for _, pf := range workload.Table1 {
		if patterns[pf.Pattern] {
			ordered = append(ordered, pf.Pattern)
			delete(patterns, pf.Pattern)
		}
	}
	var rest []string
	for p := range patterns {
		rest = append(rest, p)
	}
	sort.Strings(rest)
	ordered = append(ordered, rest...)

	var sb strings.Builder
	sb.WriteString("Fig. 8: query time distributions per pattern (seconds: min/q1/median/q3/max)\n")
	for _, pat := range ordered {
		sb.WriteString(fmt.Sprintf("pattern %q\n", pat))
		for _, rep := range reports {
			ds := durations(rep, func(r QueryResult) bool { return r.Pattern == pat })
			if len(ds) == 0 {
				continue
			}
			sb.WriteString(fmt.Sprintf("  %-12s n=%-5d %.4f / %.4f / %.4f / %.4f / %.4f\n",
				rep.System, len(ds),
				quantile(ds, 0).Seconds(), quantile(ds, 0.25).Seconds(),
				quantile(ds, 0.5).Seconds(), quantile(ds, 0.75).Seconds(),
				quantile(ds, 1).Seconds()))
		}
	}
	return sb.String()
}

// Speedup reports how much faster a is than b on average (the paper's
// "1.67 times faster than Blazegraph" style of claim).
func Speedup(a, b Report) float64 {
	ma := mean(durations(a, nil))
	mb := mean(durations(b, nil))
	if ma == 0 {
		return 0
	}
	return float64(mb) / float64(ma)
}
