package harness

import (
	"strings"
	"testing"
	"time"

	"ringrpq/internal/datagen"
	"ringrpq/internal/ring"
	"ringrpq/internal/workload"
)

func testSetup(t *testing.T) ( //nolint:unparam
	*Ring, *BFS, *ALP, *Relational, []workload.Query, int) {
	t.Helper()
	g := datagen.Generate(datagen.Config{Seed: 4, Nodes: 300, Edges: 1200, Preds: 12})
	qs := workload.Generate(g, workload.Config{Seed: 6, Total: 60})
	return NewRing(g, ring.WaveletMatrix), NewBFS(g), NewALP(g), NewRelational(g), qs, g.Len()
}

// All four systems must return identical result counts on every query —
// the benchmark is meaningless otherwise.
func TestSystemsAgreeOnCounts(t *testing.T) {
	rg, nb, ja, vr, qs, _ := testSetup(t)
	for _, q := range qs {
		base, timedOut, err := rg.Run(q, 0, 0)
		if err != nil || timedOut {
			t.Fatalf("ring on %s: n=%d timeout=%v err=%v", q, base, timedOut, err)
		}
		for _, sys := range []System{nb, ja, vr} {
			n, timedOut, err := sys.Run(q, 0, 30*time.Second)
			if err != nil {
				t.Fatalf("%s on %s: %v", sys.Name(), q, err)
			}
			if timedOut {
				t.Fatalf("%s timed out on %s", sys.Name(), q)
			}
			if n != base {
				t.Fatalf("%s on %s: %d results, ring says %d", sys.Name(), q, n, base)
			}
		}
	}
}

func TestRunAndRender(t *testing.T) {
	rg, nb, _, _, qs, edges := testSetup(t)
	qs = qs[:20]
	var reports []Report
	for _, sys := range []System{rg, nb} {
		rep, err := Run(sys, qs, 1000, 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Results) != len(qs) {
			t.Fatalf("%s: %d results, want %d", sys.Name(), len(rep.Results), len(qs))
		}
		reports = append(reports, rep)
	}

	t2 := RenderTable2(reports, edges)
	for _, want := range []string{"Space (B/edge)", "Average", "Median", "Timeouts", "Ring", "NavBFS"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, t2)
		}
	}
	f8 := RenderFig8(reports)
	if !strings.Contains(f8, "pattern") || !strings.Contains(f8, "Ring") {
		t.Fatalf("Fig 8 malformed:\n%s", f8)
	}
	t1 := RenderTable1(qs)
	if !strings.Contains(t1, "v /* c") {
		t.Fatalf("Table 1 missing dominant pattern:\n%s", t1)
	}
	if Speedup(reports[0], reports[1]) <= 0 {
		t.Fatal("Speedup must be positive")
	}
}

// The ring index must be substantially smaller than the adjacency
// baseline — the paper's headline space claim (3–5x).
func TestSpaceShape(t *testing.T) {
	rg, nb, ja, _, _, edges := testSetup(t)
	ringBytes := float64(rg.SizeBytes()) / float64(edges)
	bfsBytes := float64(nb.SizeBytes()) / float64(edges)
	alpBytes := float64(ja.SizeBytes()) / float64(edges)
	if ringBytes >= bfsBytes {
		t.Fatalf("ring (%.1f B/e) not smaller than adjacency (%.1f B/e)", ringBytes, bfsBytes)
	}
	if ringBytes >= alpBytes {
		t.Fatalf("ring (%.1f B/e) not smaller than triple-table (%.1f B/e)", ringBytes, alpBytes)
	}
}

func TestQuantile(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5}
	if quantile(ds, 0) != 1 || quantile(ds, 1) != 5 || quantile(ds, 0.5) != 3 {
		t.Fatal("quantile endpoints wrong")
	}
	if quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile not zero")
	}
	if mean(nil) != 0 {
		t.Fatal("empty mean not zero")
	}
}

func TestTimeoutAccounting(t *testing.T) {
	g := datagen.Generate(datagen.Config{Seed: 4, Nodes: 2000, Edges: 14000, Preds: 6})
	sys := NewALP(g) // the spec-faithful evaluator is the slowest
	qs := []workload.Query{{
		Expr:    workload.Generate(g, workload.Config{Seed: 1, Total: 1})[0].Expr,
		Pattern: "v * v",
	}}
	// Force a star pattern over both variables with a tiny timeout.
	qs[0].Subject, qs[0].Object = "", ""
	rep, err := Run(sys, qs, 0, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Results[0].TimedOut {
		t.Skip("query finished within a microsecond; timing too coarse here")
	}
	if rep.Results[0].Duration != time.Microsecond {
		t.Fatalf("timed-out duration=%v, want the timeout value", rep.Results[0].Duration)
	}
}
