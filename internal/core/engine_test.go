package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ringrpq/internal/enginetest"
	"ringrpq/internal/glushkov"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
)

func newEngine(g *triples.Graph, layout ring.Layout) *Engine {
	r := ring.New(g, layout)
	return NewEngine(r, func(s pathexpr.Sym) (uint32, bool) {
		return g.PredID(s.Name, s.Inverse)
	})
}

func collect(t *testing.T, e *Engine, q Query, opts Options) []enginetest.Pair {
	t.Helper()
	var out []enginetest.Pair
	_, err := e.Eval(context.Background(), q, opts, func(s, o uint32) bool {
		out = append(out, enginetest.Pair{S: s, O: o})
		return true
	})
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	return out
}

func mustID(t *testing.T, g *triples.Graph, name string) int64 {
	t.Helper()
	id, ok := g.Nodes.Lookup(name)
	if !ok {
		t.Fatalf("node %q missing", name)
	}
	return int64(id)
}

func checkAgainstOracle(t *testing.T, g *triples.Graph, e *Engine, s int64, expr string, o int64, opts Options) {
	t.Helper()
	node := pathexpr.MustParse(expr)
	want := enginetest.SortPairs(enginetest.Oracle(g, s, node, o))
	// Every case runs three ways — the hotness default, the compiled
	// stepper forced on, and the interpreter forced on — so the
	// compilation tier is differentially checked against the oracle on
	// the whole random-query corpus.
	variants := [...]struct {
		name string
		opts Options
	}{
		{"default", opts},
		{"compiled", withCompiled(opts)},
		{"interpreted", withInterpreted(opts)},
	}
	for _, v := range variants {
		got := enginetest.SortPairs(collect(t, e, Query{Subject: s, Expr: node, Object: o}, v.opts))
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("(%d, %s, %d) %s: got %v, want %v", s, expr, o, v.name, got, want)
		}
	}
}

func withCompiled(opts Options) Options {
	opts.CompileEager, opts.DisableCompiled = true, false
	return opts
}

func withInterpreted(opts Options) Options {
	opts.CompileEager, opts.DisableCompiled = false, true
	return opts
}

// The paper's running example (§4, Figs. 5–6): the backward traversal of
// ^bus/l5+ from Baq reports SA and UCh — the nodes reachable from
// Baquedano "by following line 5 and then taking the bus once".
func TestPaperRunningExample(t *testing.T) {
	g := enginetest.Metro()
	for _, layout := range []ring.Layout{ring.WaveletMatrix, ring.WaveletTree} {
		e := newEngine(g, layout)
		baq := mustID(t, g, "Baq")
		got := collect(t, e, Query{
			Subject: Variable,
			Expr:    pathexpr.MustParse("^bus/l5+"),
			Object:  baq,
		}, Options{})
		names := map[string]bool{}
		for _, p := range got {
			names[g.Nodes.Name(p.S)] = true
			if p.O != uint32(baq) {
				t.Fatalf("object of %v is not Baq", p)
			}
		}
		if !names["SA"] || !names["UCh"] || len(names) != 2 {
			t.Fatalf("layout %v: sources=%v, want {SA, UCh}", layout, names)
		}
	}
}

// The forward form of the same example: (Baq, l5+/bus, y) must bind y to
// exactly SA and UCh.
func TestPaperExampleForwardForm(t *testing.T) {
	g := enginetest.Metro()
	e := newEngine(g, ring.WaveletMatrix)
	baq := mustID(t, g, "Baq")
	got := collect(t, e, Query{
		Subject: baq,
		Expr:    pathexpr.MustParse("l5+/bus"),
		Object:  Variable,
	}, Options{})
	names := map[string]bool{}
	for _, p := range got {
		names[g.Nodes.Name(p.O)] = true
	}
	if !names["SA"] || !names["UCh"] || len(names) != 2 {
		t.Fatalf("targets=%v, want {SA, UCh}", names)
	}
}

// (Baq, l5+/bus, y) from the §4 example: everything reachable from
// Baquedano by line 5 then one bus.
func TestPaperForwardExample(t *testing.T) {
	g := enginetest.Metro()
	e := newEngine(g, ring.WaveletMatrix)
	baq := mustID(t, g, "Baq")
	checkAgainstOracle(t, g, e, baq, "l5+/bus", Variable, Options{})
}

func TestMetroAllModesAgainstOracle(t *testing.T) {
	g := enginetest.Metro()
	exprs := []string{
		"l1", "^l1", "bus", "^bus", "l5+/^bus", "(l1|l2|l5)+", "l1*",
		"l1/l2", "bus|l5", "l1?/l2", "(l1/l2)+", "^bus/l5*", "l1+|bus",
	}
	sa := mustID(t, g, "SA")
	baq := mustID(t, g, "Baq")
	for _, layout := range []ring.Layout{ring.WaveletMatrix, ring.WaveletTree} {
		e := newEngine(g, layout)
		for _, expr := range exprs {
			for _, ends := range [][2]int64{
				{Variable, Variable}, {sa, Variable}, {Variable, baq}, {sa, baq}, {baq, baq},
			} {
				checkAgainstOracle(t, g, e, ends[0], expr, ends[1], Options{})
			}
		}
	}
}

// The main integration property test: on random graphs and random
// expressions, the ring engine must agree exactly with the relational
// oracle for every endpoint combination.
func TestRandomAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nv, np := 8+rng.Intn(15), 2+rng.Intn(3)
		g := enginetest.RandomGraph(seed, nv, np, 25+rng.Intn(60))
		e := newEngine(g, ring.WaveletMatrix)
		for trial := 0; trial < 6; trial++ {
			expr := enginetest.RandomExpr(rng, np, 3)
			s := int64(rng.Intn(g.NumNodes()))
			o := int64(rng.Intn(g.NumNodes()))
			node := pathexpr.String(expr)
			checkAgainstOracle(t, g, e, Variable, node, Variable, Options{})
			checkAgainstOracle(t, g, e, s, node, Variable, Options{})
			checkAgainstOracle(t, g, e, Variable, node, o, Options{})
			checkAgainstOracle(t, g, e, s, node, o, Options{})
		}
	}
}

// Fast paths must agree with the generic algorithm.
func TestFastPathsMatchGeneric(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		g := enginetest.RandomGraph(seed, 15, 3, 60)
		e := newEngine(g, ring.WaveletMatrix)
		for _, expr := range []string{"pa", "^pb", "pa/pb", "pa/^pa", "pa|pb", "pa|pb|pc", "^pa|pb"} {
			node := pathexpr.MustParse(expr)
			q := Query{Subject: Variable, Expr: node, Object: Variable}
			fast := enginetest.SortPairs(collect(t, e, q, Options{}))
			slow := enginetest.SortPairs(collect(t, e, q, Options{DisableFastPaths: true}))
			if !reflect.DeepEqual(fast, slow) {
				t.Fatalf("seed %d %s: fast=%v generic=%v", seed, expr, fast, slow)
			}
		}
	}
}

// Disabling the wavelet-node visited marks must not change results.
func TestNodeMarksAblationAgrees(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		g := enginetest.RandomGraph(seed, 12, 3, 50)
		e := newEngine(g, ring.WaveletMatrix)
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 5; trial++ {
			expr := enginetest.RandomExpr(rng, 3, 3)
			q := Query{Subject: Variable, Expr: expr, Object: Variable}
			a := enginetest.SortPairs(collect(t, e, q, Options{DisableFastPaths: true}))
			b := enginetest.SortPairs(collect(t, e, q, Options{DisableFastPaths: true, DisableNodeMarks: true}))
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("seed %d %s: marks=%v nomarks=%v", seed, pathexpr.String(expr), a, b)
			}
		}
	}
}

// The multiword fallback (m > 63) must agree with the oracle.
func TestWideFallback(t *testing.T) {
	g := enginetest.RandomGraph(3, 10, 2, 40)
	// Build a 64+-position expression equivalent to pa{64+} | pa/pb:
	// (pa?)^70 / (pa/pb)? has 72 positions and stays checkable.
	expr := "pa?"
	for i := 0; i < 69; i++ {
		expr += "/pa?"
	}
	node := pathexpr.MustParse(expr)
	a := glushkov.Build(node, func(s pathexpr.Sym) (uint32, bool) { return g.PredID(s.Name, s.Inverse) })
	if a.M <= glushkov.MaxEngineStates {
		t.Fatalf("expression too small to exercise the fallback: m=%d", a.M)
	}
	e := newEngine(g, ring.WaveletMatrix)
	s := int64(2)
	checkAgainstOracle(t, g, e, s, expr, Variable, Options{})
	checkAgainstOracle(t, g, e, Variable, expr, int64(1), Options{})
	checkAgainstOracle(t, g, e, Variable, expr, Variable, Options{})
}

func TestLimit(t *testing.T) {
	g := enginetest.RandomGraph(5, 20, 2, 100)
	e := newEngine(g, ring.WaveletMatrix)
	q := Query{Subject: Variable, Expr: pathexpr.MustParse("pa*"), Object: Variable}
	var count int
	stats, err := e.Eval(context.Background(), q, Options{Limit: 7}, func(s, o uint32) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 7 || stats.Results != 7 {
		t.Fatalf("limit: emitted %d (stats %d), want 7", count, stats.Results)
	}
}

func TestEmitFalseStops(t *testing.T) {
	g := enginetest.RandomGraph(5, 20, 2, 100)
	e := newEngine(g, ring.WaveletMatrix)
	q := Query{Subject: Variable, Expr: pathexpr.MustParse("pa|pb"), Object: Variable}
	count := 0
	if _, err := e.Eval(context.Background(), q, Options{}, func(s, o uint32) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("emit=false did not stop: %d emissions", count)
	}
}

func TestTimeout(t *testing.T) {
	// A large-ish dense graph with a star query; 1ns must trip the check.
	g := enginetest.RandomGraph(9, 200, 2, 4000)
	e := newEngine(g, ring.WaveletMatrix)
	q := Query{Subject: Variable, Expr: pathexpr.MustParse("(pa|pb)*"), Object: Variable}
	_, err := e.Eval(context.Background(), q, Options{Timeout: 1}, func(s, o uint32) bool { return true })
	if err != ErrTimeout {
		t.Fatalf("err=%v, want ErrTimeout", err)
	}
}

// On a dense graph a single BFS level covers thousands of leaf
// expansions, so the deadline must be probed inside the part-1/part-2
// inner loops — per leaf, not only per frontier entry — in every
// traversal mode and stepping tier. A 1ns budget must come back in
// bounded time with ErrTimeout, never run a huge level to completion.
func TestTimeoutProbedInInnerLoops(t *testing.T) {
	g := enginetest.RandomGraph(9, 400, 2, 12000)
	// Non-nullable closure: the traversal reaches the leaf loops instead
	// of timing out in the nullable self-pair prefix; fast paths off so
	// the generic product-graph machinery runs.
	q := Query{Subject: Variable, Expr: pathexpr.MustParse("(pa|pb)+"), Object: Variable}
	modes := []struct {
		name string
		opts Options
	}{
		{"batched", Options{Timeout: time.Nanosecond, DisableFastPaths: true}},
		{"unbatched", Options{Timeout: time.Nanosecond, DisableFastPaths: true, DisableBatching: true}},
		{"dfs", Options{Timeout: time.Nanosecond, DisableFastPaths: true, DFS: true}},
		{"compiled", Options{Timeout: time.Nanosecond, DisableFastPaths: true, CompileEager: true}},
		{"interpreted", Options{Timeout: time.Nanosecond, DisableFastPaths: true, DisableCompiled: true}},
	}
	e := newEngine(g, ring.WaveletMatrix)
	set := ring.NewShardSet(g, 3, nil, ring.WaveletMatrix)
	sharded := NewShardedEngine(set, func(s pathexpr.Sym) (uint32, bool) {
		return g.PredID(s.Name, s.Inverse)
	})
	for _, m := range modes {
		for _, run := range []struct {
			name string
			eval func() error
		}{
			{"engine/" + m.name, func() error {
				_, err := e.Eval(context.Background(), q, m.opts, func(s, o uint32) bool { return true })
				return err
			}},
			{"sharded/" + m.name, func() error {
				_, err := sharded.Eval(context.Background(), q, m.opts, func(s, o uint32) bool { return true })
				return err
			}},
		} {
			start := time.Now()
			err := run.eval()
			elapsed := time.Since(start)
			if err != ErrTimeout {
				t.Fatalf("%s: err=%v, want ErrTimeout", run.name, err)
			}
			if elapsed > 5*time.Second {
				t.Fatalf("%s: 1ns deadline took %v", run.name, elapsed)
			}
		}
	}
}

// The nullable v→v self-pair prefix is O(|V|) before any traversal; an
// already-expired deadline must interrupt it instead of emitting every
// node first (fast paths disabled so the generic prefix loop runs).
func TestTimeoutInterruptsNullablePrefix(t *testing.T) {
	g := enginetest.RandomGraph(9, 3000, 2, 3000)
	e := newEngine(g, ring.WaveletMatrix)
	q := Query{Subject: Variable, Expr: pathexpr.MustParse("pa*"), Object: Variable}
	emitted := 0
	_, err := e.Eval(context.Background(), q, Options{Timeout: time.Nanosecond, DisableFastPaths: true},
		func(s, o uint32) bool { emitted++; return true })
	if err != ErrTimeout {
		t.Fatalf("err=%v, want ErrTimeout", err)
	}
	if emitted >= g.NumNodes() {
		t.Fatalf("emitted %d self-pairs before the deadline check (|V|=%d)", emitted, g.NumNodes())
	}
}

// Results are pairwise distinct (set semantics).
func TestSetSemantics(t *testing.T) {
	for seed := int64(30); seed < 36; seed++ {
		g := enginetest.RandomGraph(seed, 12, 3, 60)
		e := newEngine(g, ring.WaveletMatrix)
		rng := rand.New(rand.NewSource(seed))
		expr := enginetest.RandomExpr(rng, 3, 3)
		seen := map[enginetest.Pair]bool{}
		_, err := e.Eval(context.Background(), Query{Subject: Variable, Expr: expr, Object: Variable}, Options{},
			func(s, o uint32) bool {
				p := enginetest.Pair{S: s, O: o}
				if seen[p] {
					t.Fatalf("duplicate pair %v for %s", p, pathexpr.String(expr))
				}
				seen[p] = true
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Unknown constants or predicates yield empty results, not errors.
func TestUnknownEntities(t *testing.T) {
	g := enginetest.Metro()
	e := newEngine(g, ring.WaveletMatrix)
	got := collect(t, e, Query{
		Subject: Variable,
		Expr:    pathexpr.MustParse("teleport+"),
		Object:  mustID(t, g, "SA"),
	}, Options{})
	if len(got) != 0 {
		t.Fatalf("unknown predicate produced %v", got)
	}
	got = collect(t, e, Query{
		Subject: Variable,
		Expr:    pathexpr.MustParse("l1"),
		Object:  int64(g.NumNodes()) + 5,
	}, Options{})
	if len(got) != 0 {
		t.Fatalf("out-of-range object produced %v", got)
	}
}

// Theorem 4.1: the traversal work is bounded by the induced product
// subgraph — ProductNodes can never exceed |V|·(m+1), and on a path
// query over a chain graph it must stay linear in the chain length, not
// quadratic.
func TestWorkBoundedByProductSubgraph(t *testing.T) {
	b := triples.NewBuilder()
	const n = 60
	for i := 0; i < n; i++ {
		b.Add(nodeName(i), "p", nodeName(i+1))
	}
	g := b.Build()
	e := newEngine(g, ring.WaveletMatrix)
	tail := mustID(t, g, nodeName(n))
	stats, err := e.Eval(context.Background(), Query{
		Subject: Variable,
		Expr:    pathexpr.MustParse("p+"),
		Object:  tail,
	}, Options{}, func(s, o uint32) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Results != n {
		t.Fatalf("chain results=%d, want %d", stats.Results, n)
	}
	// p+ has 1 position → product graph has ≤ 2(n+1) nodes; the chain
	// induces exactly one (node, state) visit per node.
	if stats.ProductNodes > 2*(n+1) {
		t.Fatalf("ProductNodes=%d exceeds product graph bound %d", stats.ProductNodes, 2*(n+1))
	}
	if stats.ProductEdges > 4*n {
		t.Fatalf("ProductEdges=%d not linear in chain length", stats.ProductEdges)
	}
}

func nodeName(i int) string {
	return "v" + string(rune('A'+i%26)) + string(rune('a'+i/26))
}

// The engine must be reusable across queries (working arrays reset).
func TestEngineReuse(t *testing.T) {
	g := enginetest.Metro()
	e := newEngine(g, ring.WaveletMatrix)
	for i := 0; i < 10; i++ {
		checkAgainstOracle(t, g, e, Variable, "(l1|l2|l5)+", Variable, Options{})
		checkAgainstOracle(t, g, e, mustID(t, g, "Baq"), "l5+/bus", Variable, Options{})
	}
}

func TestWorkingSizeBytes(t *testing.T) {
	g := enginetest.Metro()
	e := newEngine(g, ring.WaveletMatrix)
	if e.WorkingSizeBytes() <= 0 {
		t.Fatal("WorkingSizeBytes must be positive")
	}
}

func BenchmarkVVQueries(b *testing.B) {
	g := enginetest.RandomGraph(42, 2000, 8, 8000)
	e := newEngine(g, ring.WaveletMatrix)
	exprs := []pathexpr.Node{
		pathexpr.MustParse("pa*"),
		pathexpr.MustParse("pa/pb*"),
		pathexpr.MustParse("(pa|pb)+"),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{Subject: Variable, Expr: exprs[i%len(exprs)], Object: Variable}
		e.Eval(context.Background(), q, Options{}, func(s, o uint32) bool { return true })
	}
}

func BenchmarkCVQueries(b *testing.B) {
	g := enginetest.RandomGraph(42, 2000, 8, 8000)
	e := newEngine(g, ring.WaveletMatrix)
	expr := pathexpr.MustParse("pa/pb*")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Query{Subject: Variable, Expr: expr, Object: int64(i % 2000)}
		e.Eval(context.Background(), q, Options{}, func(s, o uint32) bool { return true })
	}
}

// Negated property sets (§6) must agree with the oracle on every
// endpoint combination and across engines.
func TestNegatedPropertySets(t *testing.T) {
	g := enginetest.Metro()
	sa := mustID(t, g, "SA")
	baq := mustID(t, g, "Baq")
	for _, layout := range []ring.Layout{ring.WaveletMatrix, ring.WaveletTree} {
		e := newEngine(g, layout)
		for _, expr := range []string{
			"!bus", "!(l1|l2)", "!^bus", "!(l1|l2|l5|bus)", "!bus+",
			"!(l1|bus)*", "l1/!(l2)", "!(bus|^bus)", "!nothing",
		} {
			for _, ends := range [][2]int64{
				{Variable, Variable}, {sa, Variable}, {Variable, baq}, {sa, baq},
			} {
				checkAgainstOracle(t, g, e, ends[0], expr, ends[1], Options{})
			}
		}
	}
}

// Random graphs with negated sets, against the oracle.
func TestNegatedSetsRandom(t *testing.T) {
	for seed := int64(50); seed < 55; seed++ {
		g := enginetest.RandomGraph(seed, 12, 3, 50)
		e := newEngine(g, ring.WaveletMatrix)
		for _, expr := range []string{
			"!pa", "!pa/pb", "(!pa)+", "!(pa|pb)*", "!^pb", "pa|!pb",
		} {
			checkAgainstOracle(t, g, e, Variable, expr, Variable, Options{})
			checkAgainstOracle(t, g, e, 3, expr, Variable, Options{})
			checkAgainstOracle(t, g, e, Variable, expr, 5, Options{})
		}
	}
}

// Stats must be internally consistent and populated.
func TestStatsPopulated(t *testing.T) {
	g := enginetest.Metro()
	e := newEngine(g, ring.WaveletMatrix)
	stats, err := e.Eval(context.Background(), Query{
		Subject: Variable,
		Expr:    pathexpr.MustParse("(l1|l2|l5)+"),
		Object:  mustID(t, g, "SA"),
	}, Options{}, func(s, o uint32) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Results == 0 || stats.ProductNodes == 0 || stats.ProductEdges == 0 || stats.WaveletVisits == 0 {
		t.Fatalf("stats not populated: %+v", stats)
	}
	if stats.WaveletVisits < stats.ProductEdges {
		t.Fatalf("wavelet visits (%d) below product edges (%d)", stats.WaveletVisits, stats.ProductEdges)
	}
}

// A query against an isolated section of the graph touches work
// proportional to that section only, not the whole graph (the locality
// Theorem 4.1 promises).
func TestLocality(t *testing.T) {
	b := triples.NewBuilder()
	// A tiny island plus a large unrelated component.
	b.Add("i1", "p", "i2")
	b.Add("i2", "p", "i3")
	for i := 0; i < 500; i++ {
		b.Add(nodeName(i), "q", nodeName(i+1))
	}
	g := b.Build()
	e := newEngine(g, ring.WaveletMatrix)
	i3 := mustID(t, g, "i3")
	stats, err := e.Eval(context.Background(), Query{
		Subject: Variable,
		Expr:    pathexpr.MustParse("p+"),
		Object:  i3,
	}, Options{}, func(s, o uint32) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Results != 2 {
		t.Fatalf("island p+ results=%d, want 2", stats.Results)
	}
	if stats.ProductNodes > 10 {
		t.Fatalf("ProductNodes=%d — traversal leaked into the big component", stats.ProductNodes)
	}
}

// DFS traversal order must produce exactly the BFS result set.
func TestDFSMatchesBFS(t *testing.T) {
	for seed := int64(60); seed < 66; seed++ {
		g := enginetest.RandomGraph(seed, 14, 3, 60)
		e := newEngine(g, ring.WaveletMatrix)
		rng := rand.New(rand.NewSource(seed))
		for trial := 0; trial < 4; trial++ {
			expr := enginetest.RandomExpr(rng, 3, 3)
			for _, ends := range [][2]int64{{Variable, Variable}, {2, Variable}, {Variable, 3}} {
				q := Query{Subject: ends[0], Expr: expr, Object: ends[1]}
				a := enginetest.SortPairs(collect(t, e, q, Options{DisableFastPaths: true}))
				b := enginetest.SortPairs(collect(t, e, q, Options{DisableFastPaths: true, DFS: true}))
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("seed %d %s: BFS=%v DFS=%v", seed, pathexpr.String(expr), a, b)
				}
			}
		}
	}
}

// Fig. 6 traces the BFS evaluation of ^bus/l5+ from Baq, reporting SA
// and UCh and nothing else; each exactly once. (In our reconstruction of
// the bus edges both are discovered at BFS depth two, so no relative
// order is asserted.)
func TestPaperFig6BFSOrder(t *testing.T) {
	g := enginetest.Metro()
	e := newEngine(g, ring.WaveletMatrix)
	var order []string
	_, err := e.Eval(context.Background(), Query{
		Subject: Variable,
		Expr:    pathexpr.MustParse("^bus/l5+"),
		Object:  mustID(t, g, "Baq"),
	}, Options{}, func(s, o uint32) bool {
		order = append(order, g.Nodes.Name(s))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 {
		t.Fatalf("reported %v, want exactly SA and UCh once each", order)
	}
	set := map[string]bool{order[0]: true, order[1]: true}
	if !set["SA"] || !set["UCh"] {
		t.Fatalf("reported %v, want {SA, UCh}", order)
	}
}
