package core

import (
	"errors"

	"ringrpq/internal/glushkov"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/wavelet"
)

// The multiword fallback evaluates queries whose expressions have more
// than 63 positions, using glushkov.Wide masks. It keeps the same
// three-part backward traversal but tracks visited states in a hash map
// of multiword masks and skips the per-wavelet-node filtering (the masks
// no longer fit the flat uint64 arrays); the paper's general case pays
// the same O(m/w) factor. Such expressions are vanishingly rare in real
// logs — the Wikidata log's queries have fewer than 16 predicates (§5).

type wideState struct {
	eng     *glushkov.Wide
	visited map[uint32]glushkov.Mask
	queue   []uint32
	states  []glushkov.Mask
}

func (e *Engine) newWideState(expr pathexpr.Node) *wideState {
	a := e.compile(expr).a
	return &wideState{
		eng:     glushkov.NewWideFor(a, e.r.NumPreds),
		visited: make(map[uint32]glushkov.Mask),
	}
}

// enqueue records that node was reached with states d, returning the
// still-unvisited subset (nil when nothing is new).
func (w *wideState) enqueue(node uint32, d glushkov.Mask) glushkov.Mask {
	seen, ok := w.visited[node]
	if !ok {
		seen = d.Clone()
		w.visited[node] = seen
		w.queue = append(w.queue, node)
		w.states = append(w.states, seen.Clone())
		return seen
	}
	fresh := d.Clone()
	fresh.AndNot(seen)
	if !fresh.Any() {
		return nil
	}
	seen.Or(fresh)
	w.queue = append(w.queue, node)
	w.states = append(w.states, fresh)
	return fresh
}

func (e *Engine) wideEvalToConst(expr pathexpr.Node, o uint32, swap bool) error {
	emit := func(r uint32) bool {
		if swap {
			return e.emit(o, r)
		}
		return e.emit(r, o)
	}
	if int(o) >= e.r.NumNodes {
		return nil
	}
	w := e.newWideState(expr)
	if w.eng.A.Nullable {
		if !emit(o) {
			return errLimit
		}
	}
	w.visited[o] = w.eng.F.Clone()
	w.queue = append(w.queue, o)
	w.states = append(w.states, w.eng.F.Clone())
	return e.wideBFS(w, emit)
}

func (e *Engine) wideRunToConst(expr pathexpr.Node, o uint32, emit EmitFunc) error {
	w := e.newWideState(expr)
	w.visited[o] = w.eng.F.Clone()
	w.queue = append(w.queue, o)
	w.states = append(w.states, w.eng.F.Clone())
	return e.wideBFS(w, func(r uint32) bool { return emit(r, 0) })
}

func (e *Engine) wideEvalBothConst(expr pathexpr.Node, s, o uint32) error {
	if int(o) >= e.r.NumNodes || int(s) >= e.r.NumNodes {
		return nil
	}
	w := e.newWideState(expr)
	if w.eng.A.Nullable && s == o {
		e.emit(s, o)
		return nil
	}
	w.visited[o] = w.eng.F.Clone()
	w.queue = append(w.queue, o)
	w.states = append(w.states, w.eng.F.Clone())
	found := false
	err := e.wideBFS(w, func(r uint32) bool {
		if r == s {
			found = true
			e.emit(s, o)
			return false
		}
		return true
	})
	if found && errors.Is(err, errLimit) {
		err = nil
	}
	return err
}

func (e *Engine) wideFullRangeSources(expr pathexpr.Node, emit EmitFunc) error {
	w := e.newWideState(expr)
	base := w.eng.F.Clone()
	if base.Test(0) {
		base[0] &^= 1 // keep the initial state reportable
	}
	// Pre-visiting every node with base is impractical for multiword
	// masks; instead fold base into the step's dedup check.
	if err := e.wideStep(w, 0, e.r.N, w.eng.F, base, func(r uint32) bool { return emit(r, 0) }); err != nil {
		return err
	}
	return e.wideBFSBase(w, base, func(r uint32) bool { return emit(r, 0) })
}

func (e *Engine) wideBFS(w *wideState, emit func(uint32) bool) error {
	return e.wideBFSBase(w, nil, emit)
}

func (e *Engine) wideBFSBase(w *wideState, base glushkov.Mask, emit func(uint32) bool) error {
	for head := 0; head < len(w.queue); head++ {
		node, d := w.queue[head], w.states[head]
		b, end := e.r.ObjectRange(node)
		if err := e.wideStep(w, b, end, d, base, emit); err != nil {
			return err
		}
	}
	return nil
}

// wideStep runs wideStepOn over the engine's single ring.
func (e *Engine) wideStep(w *wideState, b, end int, d, base glushkov.Mask, emit func(uint32) bool) error {
	if err := e.checkDeadline(); err != nil {
		return err
	}
	return wideStepOn(e.r, w, b, end, d, base, &e.stats, emit)
}

// wideStepOn is the multiword analogue of step+part2 over one ring
// (the single engine's, or one shard of the sharded engine — the
// wideState, and hence the visited map, may span several rings):
// part 1 enumerates all distinct predicates of the range (no B[v]
// pruning) and filters by B[p]; part 2 enumerates distinct subjects and
// dedups against the visited map.
func wideStepOn(r *ring.Ring, w *wideState, b, end int, d, base glushkov.Mask, stats *Stats, emit func(uint32) bool) error {
	d2 := w.eng.NewMask()
	var failure error
	wavelet.RangeDistinct(r.Lp, b, end, func(p uint32, rb, re int) {
		if failure != nil {
			return
		}
		stats.WaveletVisits++
		bp := w.eng.BFor(p)
		if bp == nil || !d.Intersects(bp) {
			return
		}
		stats.ProductEdges++
		w.eng.StepRevInto(d2, d, p)
		if !d2.Any() {
			return
		}
		lsB, lsE := r.Cp[p]+rb, r.Cp[p]+re
		wavelet.RangeDistinct(r.Ls, lsB, lsE, func(s uint32, _, _ int) {
			if failure != nil {
				return
			}
			stats.WaveletVisits++
			cand := d2.Clone()
			if base != nil {
				cand.AndNot(base)
			}
			fresh := w.enqueue(s, cand)
			if fresh == nil {
				return
			}
			stats.ProductNodes++
			if fresh.Test(0) && !emit(s) {
				failure = errLimit
			}
		})
	})
	return failure
}
