package core

// pairSet is a reusable membership set over (s, o) result pairs, used
// by the §5 fast paths in place of a per-query map[uint64]bool (the
// paper's hash table). Bits live in fixed 4096-pair pages addressed by
// the high bits of the packed key; pages are allocated on first touch,
// retained across queries, and invalidated in O(1) by an epoch bump —
// a page is lazily re-zeroed the first time a new epoch touches it. In
// steady state a fast-path query allocates nothing.
type pairSet struct {
	pages map[uint64]*pairPage
	epoch uint32

	// One-entry lookup cache: fastSingle and fastConcat2 probe pairs
	// with a fixed subject and ascending objects, so consecutive keys
	// almost always share a page.
	lastID uint64
	last   *pairPage
}

const (
	// pairPageBits sets the page size: 2^12 = 4096 pairs (512 bytes).
	pairPageBits  = 12
	pairPageWords = 1 << pairPageBits / 64

	// maxPairPages bounds the retained page directory (32 MiB of bits);
	// an engine that ever exceeds it drops the directory on reset.
	maxPairPages = 1 << 16
)

type pairPage struct {
	epoch uint32
	bits  [pairPageWords]uint64
}

// add inserts (s, o) and reports whether it was absent. The steady
// state (page-cache or directory hit) allocates nothing; first-touch
// page allocation lives in the cold lookupPage helper.
//
//ringrpq:noalloc
func (ps *pairSet) add(s, o uint32) bool {
	key := uint64(s)<<32 | uint64(o)
	id := key >> pairPageBits
	pg := ps.last
	if pg == nil || ps.lastID != id {
		pg = ps.lookupPage(id)
	}
	if pg.epoch != ps.epoch {
		pg.epoch = ps.epoch
		pg.bits = [pairPageWords]uint64{}
	}
	off := key & (1<<pairPageBits - 1)
	w, bit := off/64, uint(off%64)
	if pg.bits[w]&(1<<bit) != 0 {
		return false
	}
	pg.bits[w] |= 1 << bit
	return true
}

// lookupPage returns the page holding id, allocating the directory
// and the page on first touch, and primes the one-entry cache.
func (ps *pairSet) lookupPage(id uint64) *pairPage {
	if ps.pages == nil {
		ps.pages = make(map[uint64]*pairPage)
	}
	pg := ps.pages[id]
	if pg == nil {
		pg = &pairPage{epoch: ps.epoch}
		ps.pages[id] = pg
	}
	ps.last, ps.lastID = pg, id
	return pg
}

// reset invalidates every page in O(1). On epoch wraparound (or an
// oversized directory) the pages are dropped instead, so stale epochs
// can never collide with live ones.
//
//ringrpq:noalloc
func (ps *pairSet) reset() {
	ps.last, ps.lastID = nil, 0
	ps.epoch++
	if ps.epoch == 0 || len(ps.pages) > maxPairPages {
		ps.pages = nil
		ps.epoch = 1
	}
}

// PairSet is the exported face of pairSet for engines outside this
// package (the overlay union engine's §5-style fast paths): an
// epoch-reset paged bitset deduplicating (s, o) result pairs with zero
// steady-state allocation.
type PairSet struct{ ps pairSet }

// Add inserts (s, o) and reports whether it was absent.
//
//ringrpq:noalloc
func (p *PairSet) Add(s, o uint32) bool { return p.ps.add(s, o) }

// Reset forgets all pairs in O(1).
//
//ringrpq:noalloc
func (p *PairSet) Reset() { p.ps.reset() }
