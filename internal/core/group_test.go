package core

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ringrpq/internal/enginetest"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
)

// TestGroupedMatchesSolo is the shared-traversal differential test:
// random mixed-shape query batches evaluated through EvalGroup must
// produce, member by member, exactly the solo Eval result sets — which
// checkAgainstOracle already ties to the relational oracle. Shapes the
// group cannot share (both-variable, both-const) ride along to cover
// the solo fallback inside EvalGroup.
func TestGroupedMatchesSolo(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nv, np := 8+rng.Intn(15), 2+rng.Intn(3)
		g := enginetest.RandomGraph(seed, nv, np, 25+rng.Intn(60))
		e := newEngine(g, ring.WaveletMatrix)

		for round := 0; round < 4; round++ {
			// A batch of 2–8 members with random shapes; several members
			// often share an expression, exercising the shared memo.
			k := 2 + rng.Intn(7)
			gqs := make([]*GroupQuery, k)
			results := make([][]enginetest.Pair, k)
			for i := 0; i < k; i++ {
				expr := enginetest.RandomExpr(rng, np, 1+rng.Intn(3))
				q := Query{Subject: Variable, Expr: expr, Object: Variable}
				switch rng.Intn(5) {
				case 0, 1: // const object: the groupable fast lane
					q.Object = int64(rng.Intn(nv))
				case 2: // const subject: groupable via inversion
					q.Subject = int64(rng.Intn(nv))
				case 3: // both const: solo fallback
					q.Subject, q.Object = int64(rng.Intn(nv)), int64(rng.Intn(nv))
				}
				i := i
				gqs[i] = &GroupQuery{
					Query: q,
					Emit: func(s, o uint32) bool {
						results[i] = append(results[i], enginetest.Pair{S: s, O: o})
						return true
					},
				}
			}
			e.EvalGroup(gqs)
			for i, gq := range gqs {
				if gq.Err != nil {
					t.Fatalf("seed %d member %d (%s): %v", seed, i, pathexpr.String(gq.Query.Expr), gq.Err)
				}
				got := enginetest.SortPairs(results[i])
				want := enginetest.SortPairs(collect(t, e, gq.Query, Options{}))
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d member %d (%d, %s, %d): grouped=%v solo=%v",
						seed, i, gq.Query.Subject, pathexpr.String(gq.Query.Expr), gq.Query.Object, got, want)
				}
				if gq.Stats.Results != len(got) {
					t.Fatalf("seed %d member %d: Stats.Results=%d, emitted %d",
						seed, i, gq.Stats.Results, len(got))
				}
			}
		}
	}
}

// Per-member limits must hold inside a shared traversal, and a
// limit-stopped member must not disturb its peers.
func TestGroupedLimits(t *testing.T) {
	g := enginetest.RandomGraph(5, 20, 2, 100)
	e := newEngine(g, ring.WaveletMatrix)
	expr := pathexpr.MustParse("(pa|pb)*")
	// Find an object with plenty of sources.
	var full []enginetest.Pair
	obj := int64(0)
	for o := int64(0); o < 20; o++ {
		got := collect(t, e, Query{Subject: Variable, Expr: expr, Object: o}, Options{})
		if len(got) > len(full) {
			full, obj = got, o
		}
	}
	if len(full) < 3 {
		t.Skip("graph too sparse for a limit test")
	}
	var limited, unlimited []enginetest.Pair
	gqs := []*GroupQuery{
		{
			Query: Query{Subject: Variable, Expr: expr, Object: obj},
			Opts:  Options{Limit: 2},
			Emit: func(s, o uint32) bool {
				limited = append(limited, enginetest.Pair{S: s, O: o})
				return true
			},
		},
		{
			Query: Query{Subject: Variable, Expr: expr, Object: obj},
			Emit: func(s, o uint32) bool {
				unlimited = append(unlimited, enginetest.Pair{S: s, O: o})
				return true
			},
		},
	}
	e.EvalGroup(gqs)
	if gqs[0].Err != nil || gqs[1].Err != nil {
		t.Fatalf("errs: %v, %v", gqs[0].Err, gqs[1].Err)
	}
	if len(limited) != 2 {
		t.Fatalf("limited member emitted %d, want 2", len(limited))
	}
	if !reflect.DeepEqual(enginetest.SortPairs(unlimited), enginetest.SortPairs(full)) {
		t.Fatalf("unlimited member disturbed: got %v, want %v", unlimited, full)
	}
}

// A member with an already-hopeless deadline must time out without
// dragging down members that have time (or no deadline at all).
func TestGroupedTimeoutIsolation(t *testing.T) {
	g := enginetest.RandomGraph(9, 200, 2, 4000)
	e := newEngine(g, ring.WaveletMatrix)
	expr := pathexpr.MustParse("(pa|pb)*")
	var okPairs []enginetest.Pair
	gqs := []*GroupQuery{
		{
			Query: Query{Subject: Variable, Expr: expr, Object: 0},
			Opts:  Options{Timeout: time.Nanosecond},
			Emit:  func(s, o uint32) bool { return true },
		},
		{
			Query: Query{Subject: Variable, Expr: expr, Object: 1},
			Emit: func(s, o uint32) bool {
				okPairs = append(okPairs, enginetest.Pair{S: s, O: o})
				return true
			},
		},
	}
	start := time.Now()
	e.EvalGroup(gqs)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("group took %v, deadline not honoured", elapsed)
	}
	if gqs[0].Err != ErrTimeout {
		t.Fatalf("member 0 err=%v, want ErrTimeout", gqs[0].Err)
	}
	if gqs[1].Err != nil {
		t.Fatalf("member 1 err=%v, want nil", gqs[1].Err)
	}
	want := enginetest.SortPairs(collect(t, e,
		Query{Subject: Variable, Expr: expr, Object: 1}, Options{}))
	if !reflect.DeepEqual(enginetest.SortPairs(okPairs), want) {
		t.Fatalf("surviving member results diverged")
	}
}
