package core

import (
	"cmp"
	"context"
	"errors"
	"slices"
	"time"

	"ringrpq/internal/glushkov"
	"ringrpq/internal/lazy"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/wavelet"
)

// Cross-query shared traversal: concurrent queries over the same ring
// version spend most of their time in the same place — the top levels of
// the L_p and L_s wavelet trees, whose nodes every root-to-leaf descent
// crosses. The frontier-batched traversal (batch.go) already amortises
// those levels across one query's frontier; EvalGroup lifts the same
// idea one level up and amortises them across queries. Each member's
// frontier level becomes tagged range items (wavelet.RangeMask.Tag holds
// the member index, keeping items from coalescing across queries), all
// members' items merge into one sorted list, and the whole group's level
// runs as a single multi-range descent per wavelet tree. Pruning stays
// exact and per member: part-1 items consult the owning member's
// compiled B[v] array, part-2 items the owning member's D[v] marks, so
// every member visits exactly the product subgraph it would have visited
// alone — only the shared top-of-tree node traversals are paid once
// instead of K times.
//
// Members must be groupable: a single fixed endpoint (the (s,E,y) shape
// is normalised to (x,Ê,s) exactly as in dispatch), a ≤64-state
// automaton, and the default marked/batched/compiled configuration.
// Everything else — both-variable, both-const, wide, DFS, unbatched,
// mark-less or interpreter-forced evaluations — falls back to a solo
// Eval within the same call, so callers can hand over any mix.
//
// Accounting: ProductNodes, ProductEdges and Results are exact per
// member. WaveletVisits is only partially attributable — internal nodes
// are genuinely shared — so grouped evaluations count leaf visits per
// member and do not charge anyone for the shared internal nodes.

// GroupQuery is one member of an EvalGroup call: a query plus its
// options and emit callback, with the per-member outcome filled in on
// return.
type GroupQuery struct {
	Query Query
	Opts  Options
	Emit  EmitFunc

	// Stats and Err are the member's evaluation outcome, exactly as the
	// corresponding Eval would have returned them.
	Stats Stats
	Err   error
}

// groupMember is the in-flight state of one groupable query.
type groupMember struct {
	gq *GroupQuery

	o              uint32 // the fixed endpoint, traversal start
	swap           bool   // (s,E,y) members report (o, r) instead of (r, o)
	eng            *glushkovEngine
	negFwd, negInv uint64

	dNode    *lazy.MaskArray
	queue    []queueItem
	deadline time.Time
	limit    int

	done bool
	err  error
}

// glushkovEngine bundles the member's compiled stepping state. (A named
// struct keeps groupMember readable; all fields come from one
// compiledAutomaton.)
type glushkovEngine struct {
	init, final uint64
	nullable    bool
	st          glushkov.Stepper
	bArr        []uint64
}

// EvalGroup evaluates qs cooperatively: groupable members run lockstep
// level-synchronous BFS with one shared multi-range wavelet descent per
// level and tree, the rest run solo Eval calls within this invocation.
// Each member's Stats and Err are filled in before EvalGroup returns.
// Like Eval, EvalGroup must not run concurrently on one Engine.
func (e *Engine) EvalGroup(qs []*GroupQuery) {
	// Group members compile eagerly: sharing a descent requires the
	// precomputed B[v] arrays, and a query worth grouping is worth
	// compiling.
	e.eager = true
	e.noCompile = false

	var members []*groupMember
	for _, gq := range qs {
		if m, ok := e.groupable(gq); ok {
			members = append(members, m)
		} else {
			gq.Stats, gq.Err = e.Eval(context.Background(), gq.Query, gq.Opts, gq.Emit)
		}
	}
	switch len(members) {
	case 0:
		return
	case 1:
		// A group of one gains nothing; run the plain evaluation.
		gq := members[0].gq
		gq.Stats, gq.Err = e.Eval(context.Background(), gq.Query, gq.Opts, gq.Emit)
		return
	}
	g := &TraversalGroup{e: e, members: members}
	g.run()
}

// TraversalGroup is the in-flight state of one shared traversal: the
// engine whose ring and scratch buffers it borrows plus the lockstep
// members. It extends wavelet.TraverseMany one level up — TraverseMany
// shares a descent across one frontier's ranges; the group shares it
// across whole queries' frontiers.
type TraversalGroup struct {
	e       *Engine
	members []*groupMember
}

// groupable decides whether gq can join the shared traversal and, if
// so, builds its member state (compiling the expression eagerly).
func (e *Engine) groupable(gq *GroupQuery) (*groupMember, bool) {
	opts := gq.Opts
	if opts.DFS || opts.DisableBatching || opts.DisableNodeMarks || opts.DisableCompiled {
		return nil, false
	}
	q := gq.Query
	var expr pathexpr.Node
	var o uint32
	var swap bool
	switch {
	case q.Object != Variable && q.Subject == Variable:
		expr, o = q.Expr, uint32(q.Object)
	case q.Subject != Variable && q.Object == Variable:
		// (s, E, y) ≡ (y, Ê, s), §4.4.
		expr, o, swap = pathexpr.InverseOf(q.Expr), uint32(q.Subject), true
	default:
		// Both-variable and both-const shapes keep their special
		// orchestration (fast paths, two-phase, early stop).
		return nil, false
	}
	ca := e.compile(expr)
	if ca.eng == nil || ca.st == nil {
		return nil, false // wide automaton: interpreter-only
	}
	negFwd, negInv := ca.eng.NegClassBits()
	m := &groupMember{
		gq:   gq,
		o:    o,
		swap: swap,
		eng: &glushkovEngine{
			init:     ca.eng.Init,
			final:    ca.eng.F,
			nullable: ca.eng.A.Nullable,
			st:       ca.st,
			bArr:     ca.bArr,
		},
		negFwd: negFwd,
		negInv: negInv,
		limit:  opts.Limit,
	}
	if opts.Timeout > 0 {
		m.deadline = time.Now().Add(opts.Timeout)
	}
	return m, true
}

// emit reports one result for m, honouring swap and the member's limit.
// It returns false when the member should stop.
func (m *groupMember) emit(r uint32) bool {
	m.gq.Stats.Results++
	a, b := r, m.o
	if m.swap {
		a, b = m.o, r
	}
	if !m.gq.Emit(a, b) {
		return false
	}
	return m.limit == 0 || m.gq.Stats.Results < m.limit
}

// getGroupD pops a pooled L_s mask array (the member's D[v] marks).
func (e *Engine) getGroupD() *lazy.MaskArray {
	if n := len(e.groupD); n > 0 {
		d := e.groupD[n-1]
		e.groupD = e.groupD[:n-1]
		return d
	}
	return lazy.NewMaskArray(e.r.Ls.NumNodes())
}

func (e *Engine) putGroupD(d *lazy.MaskArray) {
	d.Reset()
	e.groupD = append(e.groupD, d)
}

// markSubjectOn is markSubject against an arbitrary mask array (each
// group member owns one).
func markSubjectOn(d *lazy.MaskArray, leaf wavelet.NodeID, states uint64) {
	d.Or(int(leaf), states)
	for id := leaf.Parent(); id >= 1; id = id.Parent() {
		v := d.Get(int(2*id)) & d.Get(int(2*id+1))
		if v == d.Get(int(id)) {
			break
		}
		d.Set(int(id), v)
	}
}

// run drives the lockstep BFS over the live members.
func (g *TraversalGroup) run() {
	e, ms := g.e, g.members
	// Seed each member exactly as evalToConst would.
	for _, m := range ms {
		m.dNode = e.getGroupD()
		for _, id := range e.lsPads {
			m.dNode.Set(int(id), ^uint64(0))
		}
		if int(m.o) >= e.r.NumNodes {
			m.done = true
			continue
		}
		if m.eng.nullable && !m.emit(m.o) {
			m.done = true
			continue
		}
		markSubjectOn(m.dNode, e.r.Ls.LeafID(m.o), m.eng.final)
		m.queue = append(m.queue, queueItem{m.o, m.eng.final})
	}

	// The group deadline probe: one amortised clock read covers every
	// member; members past their own deadline finish with ErrTimeout
	// while the rest keep going. It reports an error only when nobody is
	// left, aborting the remaining descent.
	steps := 0
	probe := func() error {
		steps++
		if steps%64 != 0 {
			return nil
		}
		now := time.Time{}
		live := 0
		for _, m := range ms {
			if m.done {
				continue
			}
			if !m.deadline.IsZero() {
				if now.IsZero() {
					now = time.Now()
				}
				if now.After(m.deadline) {
					m.done = true
					m.err = ErrTimeout
					continue
				}
			}
			live++
		}
		if live == 0 {
			return ErrTimeout
		}
		return nil
	}

	half := e.r.NumPreds / 2
	for {
		// Merge the members' frontiers into one tagged, sorted item list.
		e.lpItems = e.lpItems[:0]
		for tag, m := range ms {
			if m.done || len(m.queue) == 0 {
				continue
			}
			e.appendMemberItems(m, uint32(tag))
		}
		if len(e.lpItems) == 0 {
			break
		}
		slices.SortFunc(e.lpItems, func(a, b wavelet.RangeMask) int { return cmp.Compare(a.B, b.B) })

		// Part 1: one descent of L_p for the whole group's level.
		e.lsItems = e.lsItems[:0]
		var failure error
		e.r.Lp.TraverseMany(e.lpItems, func(node wavelet.NodeID, leaf bool, p uint32, its []wavelet.RangeMask) int {
			if failure != nil {
				return 0
			}
			if !leaf {
				k := 0
				for _, it := range its {
					m := ms[it.Tag]
					if m.done {
						continue
					}
					if it.Mask&m.eng.bArr[node] == 0 {
						if m.negFwd|m.negInv == 0 {
							continue
						}
						lo, hi := e.r.Lp.SymRange(node)
						var cb uint64
						if lo < half {
							cb |= m.negFwd
						}
						if hi > half {
							cb |= m.negInv
						}
						if it.Mask&cb == 0 {
							continue
						}
					}
					its[k] = it
					k++
				}
				return k
			}
			if err := probe(); err != nil {
				failure = err
				return 0
			}
			cp := e.r.Cp[p]
			for _, it := range its {
				m := ms[it.Tag]
				if m.done {
					continue
				}
				m.gq.Stats.WaveletVisits++
				bp := m.eng.st.PredMask(p)
				d := it.Mask & bp
				if d == 0 {
					continue
				}
				m.gq.Stats.ProductEdges++
				d2 := m.eng.st.StepBack(d)
				if d2 == 0 {
					continue
				}
				b, end := cp+it.B, cp+it.E
				if n := len(e.lsItems); n > 0 && e.lsItems[n-1].E == b &&
					e.lsItems[n-1].Mask == d2 && e.lsItems[n-1].Tag == it.Tag {
					e.lsItems[n-1].E = end
					continue
				}
				e.lsItems = append(e.lsItems, wavelet.RangeMask{B: b, E: end, Mask: d2, Tag: it.Tag})
			}
			return 0
		})
		if failure != nil || len(e.lsItems) == 0 {
			if failure != nil {
				break
			}
			continue
		}

		// Part 2: one descent of L_s; D[v] pruning per item against the
		// owning member's marks.
		slices.SortFunc(e.lsItems, func(a, b wavelet.RangeMask) int { return cmp.Compare(a.B, b.B) })
		e.r.Ls.TraverseMany(e.lsItems, func(node wavelet.NodeID, leaf bool, s uint32, its []wavelet.RangeMask) int {
			if failure != nil {
				return 0
			}
			if !leaf {
				k := 0
				for _, it := range its {
					m := ms[it.Tag]
					if m.done || it.Mask&^m.dNode.Get(int(node)) == 0 {
						continue
					}
					its[k] = it
					k++
				}
				return k
			}
			if err := probe(); err != nil {
				failure = err
				return 0
			}
			// Same-member items at one leaf dedup through the marks: the
			// first marks the subject, the rest see it visited.
			for _, it := range its {
				m := ms[it.Tag]
				if m.done {
					continue
				}
				m.gq.Stats.WaveletVisits++
				fresh := it.Mask &^ m.dNode.Get(int(node))
				if fresh == 0 {
					continue
				}
				m.gq.Stats.ProductNodes++
				markSubjectOn(m.dNode, node, it.Mask)
				if fresh&m.eng.init != 0 {
					if !m.emit(s) {
						m.done = true
						continue
					}
					fresh &^= m.eng.init
				}
				if fresh != 0 && e.r.Co[s+1] > e.r.Co[s] {
					m.queue = append(m.queue, queueItem{s, fresh})
				}
			}
			return 0
		})
		if failure != nil {
			break
		}
	}

	for _, m := range ms {
		e.putGroupD(m.dNode)
		m.gq.Err = m.err
		if errors.Is(m.gq.Err, errLimit) {
			m.gq.Err = nil
		}
	}
	e.lpItems = e.lpItems[:0]
	e.lsItems = e.lsItems[:0]
}

// appendMemberItems drains m's frontier into e.lpItems as sorted
// disjoint L_p ranges tagged with the member index (frontierItems, per
// member).
func (e *Engine) appendMemberItems(m *groupMember, tag uint32) {
	slices.SortFunc(m.queue, func(a, b queueItem) int { return cmp.Compare(a.node, b.node) })
	q := m.queue[:0]
	for _, it := range m.queue {
		if n := len(q); n > 0 && q[n-1].node == it.node {
			q[n-1].d |= it.d
			continue
		}
		q = append(q, it)
	}
	for _, it := range q {
		b, end := e.r.ObjectRange(it.node)
		if b >= end {
			continue
		}
		if n := len(e.lpItems); n > 0 && e.lpItems[n-1].E == b &&
			e.lpItems[n-1].Mask == it.d && e.lpItems[n-1].Tag == tag {
			e.lpItems[n-1].E = end
			continue
		}
		e.lpItems = append(e.lpItems, wavelet.RangeMask{B: b, E: end, Mask: it.d, Tag: tag})
	}
	m.queue = m.queue[:0]
}
