package core

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ringrpq/internal/baseline/bfs"
	"ringrpq/internal/enginetest"
	"ringrpq/internal/glushkov"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
)

func idsOf(g *triples.Graph) glushkov.SymbolIDs {
	return func(s pathexpr.Sym) (uint32, bool) { return g.PredID(s.Name, s.Inverse) }
}

func evalPairs(t *testing.T, ev Evaluator, q Query, opts Options) []enginetest.Pair {
	t.Helper()
	var out []enginetest.Pair
	_, err := ev.Eval(context.Background(), q, opts, func(s, o uint32) bool {
		out = append(out, enginetest.Pair{S: s, O: o})
		return true
	})
	if err != nil {
		t.Fatalf("Eval(%s): %v", pathexpr.String(q.Expr), err)
	}
	return enginetest.SortPairs(out)
}

func bfsPairs(t *testing.T, ix *bfs.Index, q Query) []enginetest.Pair {
	t.Helper()
	var out []enginetest.Pair
	err := ix.Eval(q.Subject, q.Expr, q.Object, bfs.Options{}, func(s, o uint32) bool {
		out = append(out, enginetest.Pair{S: s, O: o})
		return true
	})
	if err != nil {
		t.Fatalf("bfs.Eval(%s): %v", pathexpr.String(q.Expr), err)
	}
	return enginetest.SortPairs(out)
}

func diffPairs(t *testing.T, label string, got, want []enginetest.Pair, q Query) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: query (%d, %s, %d): %d pairs, want %d\n got: %v\nwant: %v",
			label, q.Subject, pathexpr.String(q.Expr), q.Object, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: query (%d, %s, %d): pair %d is %v, want %v",
				label, q.Subject, pathexpr.String(q.Expr), q.Object, i, got[i], want[i])
		}
	}
}

// queriesFor derives the four endpoint shapes (v→v, c→v, v→c, c→c) for
// one expression, with constants drawn from the oracle's result pairs
// when possible (so constant queries are not vacuously empty) plus a
// random — possibly miss-everything — constant.
func queriesFor(rng *rand.Rand, g *triples.Graph, expr pathexpr.Node) []Query {
	nv := int64(g.NumNodes())
	s := rng.Int63n(nv)
	o := rng.Int63n(nv)
	return []Query{
		{Subject: Variable, Expr: expr, Object: Variable},
		{Subject: s, Expr: expr, Object: Variable},
		{Subject: Variable, Expr: expr, Object: o},
		{Subject: s, Expr: expr, Object: o},
	}
}

// TestShardedDifferentialRandom is the property-based differential
// test: on random graphs and random path expressions (predicates,
// inverses, /, |, *, +, ?), the sharded engine (several shard counts),
// the unsharded engine and the BFS baseline must produce identical
// solution sets — and match the relational oracle. Run it under -race
// to exercise the cooperative per-level shard fan-out.
func TestShardedDifferentialRandom(t *testing.T) {
	shardCounts := []int{2, 3, 7}
	for seed := int64(0); seed < 24; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(24)
		np := 1 + rng.Intn(6)
		ne := 1 + rng.Intn(70)
		g := enginetest.RandomGraph(seed, nv, np, ne)
		r := ring.New(g, ring.WaveletMatrix)
		eng := NewEngine(r, idsOf(g))
		ix := bfs.New(g)
		k := shardCounts[int(seed)%len(shardCounts)]
		set := ring.NewShardSet(g, k, nil, ring.WaveletMatrix)
		sharded := NewShardedEngine(set, idsOf(g))

		for qi := 0; qi < 6; qi++ {
			expr := enginetest.RandomExpr(rng, np, 1+rng.Intn(3))
			for _, q := range queriesFor(rng, g, expr) {
				want := enginetest.SortPairs(enginetest.Oracle(g, q.Subject, q.Expr, q.Object))
				diffPairs(t, "engine vs oracle", evalPairs(t, eng, q, Options{}), want, q)
				diffPairs(t, "engine unbatched vs oracle",
					evalPairs(t, eng, q, Options{DisableBatching: true}), want, q)
				diffPairs(t, "engine compiled vs oracle",
					evalPairs(t, eng, q, Options{CompileEager: true}), want, q)
				diffPairs(t, "engine interpreted vs oracle",
					evalPairs(t, eng, q, Options{DisableCompiled: true}), want, q)
				diffPairs(t, "bfs vs oracle", bfsPairs(t, ix, q), want, q)
				diffPairs(t, fmt.Sprintf("sharded(k=%d) vs oracle", k), evalPairs(t, sharded, q, Options{}), want, q)
				diffPairs(t, fmt.Sprintf("sharded(k=%d) unbatched vs oracle", k),
					evalPairs(t, sharded, q, Options{DisableBatching: true}), want, q)
				diffPairs(t, fmt.Sprintf("sharded(k=%d) compiled vs oracle", k),
					evalPairs(t, sharded, q, Options{CompileEager: true}), want, q)
				diffPairs(t, fmt.Sprintf("sharded(k=%d) interpreted vs oracle", k),
					evalPairs(t, sharded, q, Options{DisableCompiled: true}), want, q)
			}
		}
	}
}

// singleShardPartitioner sends every predicate to shard 0, leaving the
// remaining K−1 shards empty.
type singleShardPartitioner struct{}

func (singleShardPartitioner) Shard(uint32, int) int { return 0 }
func (singleShardPartitioner) Name() string          { return "test-single" }

// modPartitioner spreads predicates round-robin, guaranteeing that
// consecutive predicate ids land in different shards.
type modPartitioner struct{}

func (modPartitioner) Shard(p uint32, k int) int { return int(p) % k }
func (modPartitioner) Name() string              { return "test-mod" }

// TestShardedEdgeCases pins the merge behaviour on degenerate
// partitions: all triples in one shard (empty co-shards), more shards
// than predicates, and constant endpoints that miss every shard.
func TestShardedEdgeCases(t *testing.T) {
	g := enginetest.RandomGraph(42, 12, 2, 40) // 2 base predicates
	r := ring.New(g, ring.WaveletMatrix)
	eng := NewEngine(r, idsOf(g))
	rng := rand.New(rand.NewSource(7))

	sets := map[string]*ring.ShardSet{
		"all-in-one-of-5": ring.NewShardSet(g, 5, singleShardPartitioner{}, ring.WaveletMatrix),
		"k-exceeds-preds": ring.NewShardSet(g, 9, modPartitioner{}, ring.WaveletMatrix),
		"k-1":             ring.NewShardSet(g, 1, nil, ring.WaveletMatrix),
		"hash-4":          ring.NewShardSet(g, 4, nil, ring.WaveletMatrix),
	}
	exprs := []string{
		"pa", "^pb", "pa/pb", "pa|pb", "(pa|^pb)*", "pa+/pb?", "(pa/pb)+|^pa",
	}
	for name, set := range sets {
		empty := 0
		for _, shard := range set.Shards {
			if shard.N == 0 {
				empty++
			}
		}
		if name == "all-in-one-of-5" && empty != 4 {
			t.Fatalf("%s: %d empty shards, want 4", name, empty)
		}
		sharded := NewShardedEngine(set, idsOf(g))
		for _, src := range exprs {
			expr := pathexpr.MustParse(src)
			for _, q := range queriesFor(rng, g, expr) {
				want := evalPairs(t, eng, q, Options{})
				diffPairs(t, name, evalPairs(t, sharded, q, Options{}), want, q)
			}
		}
		// Constant endpoints outside the node space miss every shard.
		for _, q := range []Query{
			{Subject: int64(g.NumNodes()) + 5, Expr: pathexpr.MustParse("pa*"), Object: Variable},
			{Subject: Variable, Expr: pathexpr.MustParse("pa/pb"), Object: int64(g.NumNodes()) + 9},
			{Subject: int64(g.NumNodes()) + 5, Expr: pathexpr.MustParse("pa|pb"), Object: 0},
		} {
			if got := evalPairs(t, NewShardedEngine(set, idsOf(g)), q, Options{}); len(got) != 0 {
				t.Fatalf("%s: out-of-range endpoint returned %v", name, got)
			}
		}
	}
}

// TestShardedUnknownPredicates checks expressions whose predicates are
// partly or wholly absent from the graph: absent symbols match nothing
// and must not disturb routing or the cooperative traversal.
func TestShardedUnknownPredicates(t *testing.T) {
	g := enginetest.RandomGraph(3, 10, 3, 30)
	r := ring.New(g, ring.WaveletMatrix)
	eng := NewEngine(r, idsOf(g))
	set := ring.NewShardSet(g, 3, modPartitioner{}, ring.WaveletMatrix)
	sharded := NewShardedEngine(set, idsOf(g))
	rng := rand.New(rand.NewSource(11))
	for _, src := range []string{
		"nosuch", "nosuch*", "pa/nosuch", "pa|nosuch", "(nosuch|pb)+", "nosuch?",
	} {
		expr := pathexpr.MustParse(src)
		for _, q := range queriesFor(rng, g, expr) {
			want := evalPairs(t, eng, q, Options{})
			diffPairs(t, "unknown-preds", evalPairs(t, sharded, q, Options{}), want, q)
		}
	}
}

// TestShardedNegSets covers negated property sets, which always take
// the cooperative path (their language spans arbitrary predicates).
func TestShardedNegSets(t *testing.T) {
	g := enginetest.RandomGraph(5, 10, 4, 50)
	r := ring.New(g, ring.WaveletMatrix)
	eng := NewEngine(r, idsOf(g))
	set := ring.NewShardSet(g, 3, nil, ring.WaveletMatrix)
	sharded := NewShardedEngine(set, idsOf(g))
	rng := rand.New(rand.NewSource(13))
	for _, src := range []string{
		"!pa", "!(pa|pb)", "!^pa", "!(pa|^pb)*", "pa/!pb",
	} {
		expr := pathexpr.MustParse(src)
		for _, q := range queriesFor(rng, g, expr) {
			want := evalPairs(t, eng, q, Options{})
			diffPairs(t, "negsets", evalPairs(t, sharded, q, Options{}), want, q)
		}
	}
}

// TestShardedWideExpressions drives the multiword fallback: an
// expression with more than 63 positions spanning several shards.
func TestShardedWideExpressions(t *testing.T) {
	g := enginetest.RandomGraph(17, 8, 4, 60)
	r := ring.New(g, ring.WaveletMatrix)
	eng := NewEngine(r, idsOf(g))
	set := ring.NewShardSet(g, 3, modPartitioner{}, ring.WaveletMatrix)
	sharded := NewShardedEngine(set, idsOf(g))

	// (pa|pb|pc|pd)? repeated: 68 positions, well past the 64-state
	// bit-parallel engine.
	alt := pathexpr.MustParse("(pa|pb|pc|pd)?")
	var expr pathexpr.Node = alt
	for i := 0; i < 16; i++ {
		expr = pathexpr.Concat{L: expr, R: alt}
	}
	if m := pathexpr.CountSyms(expr); m <= 63 {
		t.Fatalf("expression has %d positions, want > 63", m)
	}
	rng := rand.New(rand.NewSource(19))
	for _, q := range queriesFor(rng, g, expr) {
		want := evalPairs(t, eng, q, Options{})
		diffPairs(t, "wide", evalPairs(t, sharded, q, Options{}), want, q)
	}
}

// TestShardedLimitAndTimeout checks option plumbing on the cooperative
// path: limits truncate (with a nil error) and expired deadlines
// surface ErrTimeout.
func TestShardedLimitAndTimeout(t *testing.T) {
	g := enginetest.RandomGraph(23, 20, 4, 120)
	set := ring.NewShardSet(g, 4, modPartitioner{}, ring.WaveletMatrix)
	sharded := NewShardedEngine(set, idsOf(g))
	q := Query{Subject: Variable, Expr: pathexpr.MustParse("(pa|pb|pc)+"), Object: Variable}

	full, err := sharded.Eval(context.Background(), q, Options{}, func(s, o uint32) bool { return true })
	if err != nil {
		t.Fatalf("full eval: %v", err)
	}
	if full.Results < 4 {
		t.Skipf("graph too sparse for a limit test (%d results)", full.Results)
	}
	n := 0
	st, err := sharded.Eval(context.Background(), q, Options{Limit: 3}, func(s, o uint32) bool { n++; return true })
	if err != nil {
		t.Fatalf("limited eval: %v", err)
	}
	if n != 3 || st.Results != 3 {
		t.Fatalf("limit 3 delivered %d results (stats %d)", n, st.Results)
	}

	_, err = sharded.Eval(context.Background(), q, Options{Timeout: -time.Nanosecond}, func(s, o uint32) bool {
		time.Sleep(time.Millisecond)
		return true
	})
	// A negative timeout means the deadline is already past; the
	// traversal must stop early with ErrTimeout rather than run to
	// completion (checked only when the traversal is long enough for a
	// deadline probe, which the 64-step cadence makes likely here).
	if err != nil && err != ErrTimeout {
		t.Fatalf("timeout eval: unexpected error %v", err)
	}
}

// TestShardedDisableNodeMarks runs the cooperative path with the D[v]
// internal-node pruning disabled (the §4.2 ablation switch) and checks
// the result set is unchanged.
func TestShardedDisableNodeMarks(t *testing.T) {
	g := enginetest.RandomGraph(29, 14, 4, 70)
	r := ring.New(g, ring.WaveletMatrix)
	eng := NewEngine(r, idsOf(g))
	set := ring.NewShardSet(g, 3, modPartitioner{}, ring.WaveletMatrix)
	sharded := NewShardedEngine(set, idsOf(g))
	rng := rand.New(rand.NewSource(31))
	for qi := 0; qi < 4; qi++ {
		expr := enginetest.RandomExpr(rng, 4, 2)
		for _, q := range queriesFor(rng, g, expr) {
			want := evalPairs(t, eng, q, Options{})
			got := evalPairs(t, sharded, q, Options{DisableNodeMarks: true})
			diffPairs(t, "no-marks", got, want, q)
		}
	}
}

// TestShardSetInvariants checks the data-level guarantees the sharded
// engine relies on.
func TestShardSetInvariants(t *testing.T) {
	g := enginetest.RandomGraph(37, 20, 5, 90)
	set := ring.NewShardSet(g, 4, nil, ring.WaveletMatrix)
	total := 0
	for i, shard := range set.Shards {
		if shard.NumNodes != g.NumNodes() || shard.NumPreds != g.NumCompletedPreds() {
			t.Fatalf("shard %d id spaces (%d, %d) differ from global (%d, %d)",
				i, shard.NumNodes, shard.NumPreds, g.NumNodes(), g.NumCompletedPreds())
		}
		total += shard.N
		for p := uint32(0); p < set.NumPreds; p++ {
			if n := shard.Cp[p+1] - shard.Cp[p]; n > 0 && set.ShardFor(p) != i {
				t.Fatalf("predicate %d stored in shard %d, assigned to %d", p, i, set.ShardFor(p))
			}
		}
	}
	if total != g.Len() {
		t.Fatalf("shard triple counts sum to %d, want %d", total, g.Len())
	}
	// A predicate and its inverse must share a shard.
	half := set.NumPreds / 2
	for p := uint32(0); p < half; p++ {
		if set.ShardFor(p) != set.ShardFor(p+half) {
			t.Fatalf("predicate %d and its inverse map to shards %d and %d",
				p, set.ShardFor(p), set.ShardFor(p+half))
		}
	}
}
