package core

import (
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/wavelet"
)

// tryFastPath handles the variable-to-variable query shapes that §5
// implements "more efficiently using just backward search and the
// extended functionality of wavelet trees": single predicates (v p v,
// v ^p v), two-step concatenations (v p1/p2 v, v p1/^p2 v, …), and
// alternations of such shapes (v | v, v || v). It reports whether the
// shape was recognised and handled.
func (e *Engine) tryFastPath(expr pathexpr.Node) (bool, error) {
	switch x := expr.(type) {
	case pathexpr.Sym:
		e.pairs.reset()
		return true, e.fastSingle(x)
	case pathexpr.Concat:
		l, lok := x.L.(pathexpr.Sym)
		r, rok := x.R.(pathexpr.Sym)
		if lok && rok {
			e.pairs.reset()
			return true, e.fastConcat2(l, r)
		}
	case pathexpr.Alt:
		// A (possibly nested) alternation of single symbols: evaluate
		// each branch and deduplicate pairs, as in §5.
		syms, ok := flattenAlt(expr)
		if ok {
			e.pairs.reset()
			for _, s := range syms {
				if err := e.fastSingle(s); err != nil {
					return true, err
				}
			}
			return true, nil
		}
	}
	return false, nil
}

// flattenAlt collects the leaves of an alternation tree if they are all
// plain symbols.
func flattenAlt(n pathexpr.Node) ([]pathexpr.Sym, bool) {
	switch x := n.(type) {
	case pathexpr.Sym:
		return []pathexpr.Sym{x}, true
	case pathexpr.Alt:
		l, lok := flattenAlt(x.L)
		r, rok := flattenAlt(x.R)
		if lok && rok {
			return append(l, r...), true
		}
	}
	return nil, false
}

// fastSingle evaluates (x, p, y): extract the distinct subjects from
// L_s[C_p[p], C_p[p+1]), then for each subject s backward-step its object
// range by p̂ to list the objects o with (s, p, o) ∈ G (§5). Duplicate
// pairs across branches are suppressed by the engine-owned paged bitset
// e.pairs (the paper uses a hash table for the same purpose), which the
// caller resets before the first branch.
func (e *Engine) fastSingle(sym pathexpr.Sym) error {
	p, ok := e.ids(sym)
	if !ok {
		return nil
	}
	pInv := e.inverse(p)
	pb, pe := e.r.PredRange(p)
	var failure error
	wavelet.RangeDistinct(e.r.Ls, pb, pe, func(s uint32, _, _ int) {
		if failure != nil {
			return
		}
		if err := e.checkDeadline(); err != nil {
			failure = err
			return
		}
		ob, oe := e.r.ObjectRange(s)
		lsB, lsE := e.r.BackwardByPred(ob, oe, pInv)
		wavelet.RangeDistinct(e.r.Ls, lsB, lsE, func(o uint32, _, _ int) {
			if failure != nil {
				return
			}
			if e.pairs.add(s, o) && !e.emit(s, o) {
				failure = errLimit
			}
		})
	})
	return failure
}

// fastConcat2 evaluates (x, p1/p2, y): the middle nodes z are the
// intersection of the targets of p1 (subjects of the p̂1 block of L_s)
// and the sources of p2 (subjects of the p2 block); for each z, one
// backward step lists the sources by p1 and the objects by p̂2 (§5).
func (e *Engine) fastConcat2(s1, s2 pathexpr.Sym) error {
	p1, ok1 := e.ids(s1)
	p2, ok2 := e.ids(s2)
	if !ok1 || !ok2 {
		return nil
	}
	p1Inv, p2Inv := e.inverse(p1), e.inverse(p2)
	b1, e1 := e.r.PredRange(p1Inv)
	b2, e2 := e.r.PredRange(p2)
	var failure error
	e.r.Ls.Intersect(b1, e1, b2, e2, func(z uint32, _, _, _, _ int) {
		if failure != nil {
			return
		}
		if err := e.checkDeadline(); err != nil {
			failure = err
			return
		}
		ob, oe := e.r.ObjectRange(z)
		srcB, srcE := e.r.BackwardByPred(ob, oe, p1)
		dstB, dstE := e.r.BackwardByPred(ob, oe, p2Inv)
		wavelet.RangeDistinct(e.r.Ls, srcB, srcE, func(s uint32, _, _ int) {
			if failure != nil {
				return
			}
			wavelet.RangeDistinct(e.r.Ls, dstB, dstE, func(o uint32, _, _ int) {
				if failure != nil {
					return
				}
				if e.pairs.add(s, o) && !e.emit(s, o) {
					failure = errLimit
				}
			})
		})
	})
	return failure
}

// inverse maps a completed predicate id to its inverse. The completed
// alphabet has an even size 2|P| with p̂ = p ± |P|.
func (e *Engine) inverse(p uint32) uint32 {
	half := e.r.NumPreds / 2
	if p < half {
		return p + half
	}
	return p - half
}
