package core

import (
	"cmp"
	"slices"

	"ringrpq/internal/glushkov"
	"ringrpq/internal/lazy"
	"ringrpq/internal/obs"
	"ringrpq/internal/ring"
	"ringrpq/internal/wavelet"
)

// The frontier-batched traversal: instead of expanding one (node,
// states) frontier entry at a time — each paying its own root-to-leaf
// descent of L_p and L_s — the BFS drains a whole level per iteration.
// The frontier is converted to sorted disjoint L_p ranges (adjacent
// object ranges with equal state masks coalesce), part 1 runs as one
// multi-range wavelet descent that splits the item list at each node,
// the per-predicate L_s ranges it produces are accumulated, sorted and
// coalesced, and part 2 runs as one more multi-range descent. The
// B[v]/D[v] pruning of §4.1–4.2 applies per item at every node, so the
// visited product subgraph — and with it the Theorem 4.1 work bound —
// is exactly the one the item-at-a-time traversal explores; only the
// shared top-of-tree descents are amortised across the frontier.

// batchCutoff is the frontier size below which a level is expanded with
// the classic per-item descent: the batched machinery (sorting, item
// splitting) only pays for itself once several ranges share the top of
// the tree.
const batchCutoff = 4

// bfsBatched drains the worklist level-synchronously; each level costs
// one batched part-1 descent and one batched part-2 descent (or the
// per-item equivalent below the cutoff).
func (e *Engine) bfsBatched(eng *glushkov.Engine, base uint64, emit EmitFunc) error {
	for len(e.queue) > 0 {
		if err := e.checkDeadline(); err != nil {
			return err
		}
		items := e.frontierItems()
		sp, visits0 := -1, 0
		if e.trace != nil {
			visits0 = e.stats.WaveletVisits
			sp = e.trace.Begin(obs.SpanLevel)
		}
		var err error
		if len(items) < batchCutoff {
			for _, it := range items {
				if err = e.step(eng, it.B, it.E, it.Mask, base, emit); err != nil {
					break
				}
			}
		} else {
			err = e.stepMany(eng, items, base, emit)
		}
		e.trace.EndVals(sp, int64(len(items)), int64(e.stats.WaveletVisits-visits0))
		if err != nil {
			return err
		}
	}
	return nil
}

// frontierItems converts (and drains) the queued frontier into sorted
// disjoint L_p range items: object ranges ascend with the node id, so
// sorting by node sorts by range start, and adjacent ranges carrying
// the same state mask merge into one item.
func (e *Engine) frontierItems() []wavelet.RangeMask {
	slices.SortFunc(e.queue, func(a, b queueItem) int { return cmp.Compare(a.node, b.node) })
	// The per-item expansion below the cutoff may rediscover a node
	// within one level; merge duplicates (now adjacent) so each node
	// carries the union of its level's states.
	q := e.queue[:0]
	for _, it := range e.queue {
		if n := len(q); n > 0 && q[n-1].node == it.node {
			q[n-1].d |= it.d
			continue
		}
		q = append(q, it)
	}
	e.lpItems = e.lpItems[:0]
	for _, it := range q {
		b, end := e.r.ObjectRange(it.node)
		if b >= end {
			continue
		}
		if n := len(e.lpItems); n > 0 && e.lpItems[n-1].E == b && e.lpItems[n-1].Mask == it.d {
			e.lpItems[n-1].E = end
			continue
		}
		e.lpItems = append(e.lpItems, wavelet.RangeMask{B: b, E: end, Mask: it.d})
	}
	e.queue = e.queue[:0]
	return e.lpItems
}

// batchOwner bundles the per-owner working state the shared batched
// level expansion operates on. Engine and shardWorker each supply
// their own wavelet-node mask arrays and leaf action (emit + enqueue
// into the next frontier vs record for the cooperative merge), so the
// part-1/part-2 descent logic exists exactly once.
type batchOwner struct {
	r            *ring.Ring
	bNode, dNode *lazy.MaskArray
	stats        *Stats
	noMarks      bool
	// st steps the automaton (the compiled stepper when the expression
	// is hot, else the interpreting engine); bArr, when non-nil, is the
	// precomputed immutable B[v] array replacing bNode.
	st   glushkov.Stepper
	bArr []uint64
	// check is the owner's deadline probe.
	check func() error
	// mark is the owner's markSubject (bottom-up D[v] maintenance).
	mark func(leaf wavelet.NodeID, states uint64)
	// part2Leaf handles one subject carrying unvisited states: all is
	// the union of the state masks that reached the leaf this level,
	// fresh the subset not yet visited there.
	part2Leaf func(s uint32, all, fresh uint64) error
	// leafMask, when non-nil, computes the state mask a part-2 leaf
	// actually receives from its items (default: the OR of the item
	// masks). The overlay union engine drops items whose occurrences of
	// the subject are all tombstoned, making the batched part 2 exact
	// without fragmenting the coalesced ranges.
	leafMask func(s uint32, its []wavelet.RangeMask) uint64
}

// stepManyOn is the batched §4 step over a whole level of one ring:
// part 1 over L_p in one multi-range descent (B[v] pruning per item),
// part 2 over L_s likewise, part 3 via the owner's part2Leaf. The
// lsItems scratch buffer is threaded through and returned for reuse.
func stepManyOn(o *batchOwner, eng *glushkov.Engine, items, lsItems []wavelet.RangeMask, base uint64) ([]wavelet.RangeMask, error) {
	lsItems = lsItems[:0]
	if len(items) == 0 {
		return lsItems, nil
	}
	if o.st == nil {
		o.st = eng
	}
	negFwd, negInv := eng.NegClassBits()
	half := o.r.NumPreds / 2
	var failure error
	o.r.Lp.TraverseMany(items, func(node wavelet.NodeID, leaf bool, p uint32, its []wavelet.RangeMask) int {
		if failure != nil {
			return 0
		}
		o.stats.WaveletVisits++
		if !leaf {
			// Part 1 pruning (Fact 1 via the aggregated B[v]), per item;
			// negated property sets contribute per node direction exactly
			// as on the unbatched path.
			var bmask uint64
			if o.bArr != nil {
				bmask = o.bArr[node]
			} else {
				bmask = o.bNode.Get(int(node))
			}
			cb, haveCB := uint64(0), false
			k := 0
			for _, it := range its {
				if it.Mask&bmask == 0 {
					if negFwd|negInv == 0 {
						continue
					}
					if !haveCB {
						lo, hi := o.r.Lp.SymRange(node)
						if lo < half {
							cb |= negFwd
						}
						if hi > half {
							cb |= negInv
						}
						haveCB = true
					}
					if it.Mask&cb == 0 {
						continue
					}
				}
				its[k] = it
				k++
			}
			return k
		}
		if err := o.check(); err != nil {
			failure = err
			return 0
		}
		// Leaf work is per item, so the visit stat stays comparable with
		// the per-item descent (one visit per frontier item per leaf).
		o.stats.WaveletVisits += len(its) - 1
		bp := o.st.PredMask(p)
		cp := o.r.Cp[p]
		for _, it := range its {
			d := it.Mask & bp
			if d == 0 {
				continue
			}
			o.stats.ProductEdges++
			// The NFA transition is uniform across the item's range
			// (Fact 1); the rank range plus C_p is the L_s source range
			// (Eqs. 4–5).
			d2 := o.st.StepBack(d)
			if d2 == 0 {
				continue
			}
			b, end := cp+it.B, cp+it.E
			if n := len(lsItems); n > 0 && lsItems[n-1].E == b && lsItems[n-1].Mask == d2 {
				lsItems[n-1].E = end
				continue
			}
			lsItems = append(lsItems, wavelet.RangeMask{B: b, E: end, Mask: d2})
		}
		return 0
	})
	if failure != nil {
		return lsItems, failure
	}
	return lsItems, part2ManyOn(o, lsItems, base)
}

// part2ManyOn expands the level's accumulated L_s ranges in one batched
// descent: distinct subjects with unvisited states are marked and
// handed to the owner's leaf action — each subject exactly once per
// level, with the union of the states that reached it (§4.2–4.3).
func part2ManyOn(o *batchOwner, lsItems []wavelet.RangeMask, base uint64) error {
	if len(lsItems) == 0 {
		return nil
	}
	// Leaves of part 1 arrive in bottom-level (bit-reversal) order for
	// the wavelet matrix; restore position order before descending.
	slices.SortFunc(lsItems, func(a, b wavelet.RangeMask) int { return cmp.Compare(a.B, b.B) })
	var failure error
	o.r.Ls.TraverseMany(lsItems, func(node wavelet.NodeID, leaf bool, s uint32, its []wavelet.RangeMask) int {
		if failure != nil {
			return 0
		}
		o.stats.WaveletVisits++
		visited := o.dNode.Get(int(node)) | base
		if !leaf {
			if o.noMarks {
				return len(its)
			}
			// Prune items whose subjects below were all already visited
			// with every state they carry.
			k := 0
			for _, it := range its {
				if it.Mask&^visited != 0 {
					its[k] = it
					k++
				}
			}
			return k
		}
		if err := o.check(); err != nil {
			failure = err
			return 0
		}
		var all uint64
		if o.leafMask != nil {
			all = o.leafMask(s, its)
		} else {
			for _, it := range its {
				all |= it.Mask
			}
		}
		if all == 0 {
			return 0
		}
		fresh := all &^ visited
		if fresh == 0 {
			return 0
		}
		o.mark(node, all)
		if err := o.part2Leaf(s, all, fresh); err != nil {
			failure = err
			return 0
		}
		return 0
	})
	return failure
}

// stepMany runs the shared batched step with the engine's working
// arrays: discovered sources are emitted and continuations enqueued
// into the next frontier.
func (e *Engine) stepMany(eng *glushkov.Engine, items []wavelet.RangeMask, base uint64, emit EmitFunc) error {
	o := batchOwner{
		r:       e.r,
		bNode:   e.bNode,
		dNode:   e.dNode,
		stats:   &e.stats,
		noMarks: e.noMarks,
		st:      e.st,
		bArr:    e.bArr,
		check:   e.checkDeadline,
		mark:    e.markSubject,
		part2Leaf: func(s uint32, all, fresh uint64) error {
			e.stats.ProductNodes++
			if fresh&eng.Init != 0 {
				if !emit(s, 0) {
					return errLimit
				}
				fresh &^= eng.Init // the initial state has no incoming work
			}
			if fresh != 0 && e.r.Co[s+1] > e.r.Co[s] {
				e.queue = append(e.queue, queueItem{s, fresh})
			}
			return nil
		},
	}
	var err error
	e.lsItems, err = stepManyOn(&o, eng, items, e.lsItems, base)
	return err
}

// LevelOwner is the exported face of batchOwner for engines outside
// this package (the overlay union engine): the same per-owner hooks,
// so the frontier-batched §4 level expansion exists exactly once.
type LevelOwner struct {
	R            *ring.Ring
	BNode, DNode *lazy.MaskArray
	Stats        *Stats
	// St steps the automaton (nil = interpret with eng); BArr, when
	// non-nil, is the precomputed immutable B[v] array replacing BNode.
	St   glushkov.Stepper
	BArr []uint64
	// Check is the owner's deadline probe.
	Check func() error
	// Mark is the owner's markSubject; a nil Mark is allowed when the
	// Leaf action does its own (bottom-up D[v] maintenance included).
	Mark func(leaf wavelet.NodeID, states uint64)
	// LeafMask computes the state mask a part-2 leaf receives from its
	// items (nil = OR of the item masks): see batchOwner.leafMask.
	LeafMask func(s uint32, its []wavelet.RangeMask) uint64
	// Leaf handles one discovered subject (see batchOwner.part2Leaf).
	Leaf func(s uint32, all, fresh uint64) error
}

// StepLevelMany runs the batched parts 1–2 over one ring for a whole
// frontier level (sorted disjoint L_p range items). The lsItems
// scratch is threaded through and returned for reuse.
func StepLevelMany(o *LevelOwner, eng *glushkov.Engine, items, lsItems []wavelet.RangeMask, base uint64) ([]wavelet.RangeMask, error) {
	mark := o.Mark
	if mark == nil {
		mark = func(wavelet.NodeID, uint64) {}
	}
	bo := batchOwner{
		r: o.R, bNode: o.BNode, dNode: o.DNode, stats: o.Stats,
		st: o.St, bArr: o.BArr,
		check: o.Check, mark: mark, part2Leaf: o.Leaf, leafMask: o.LeafMask,
	}
	return stepManyOn(&bo, eng, items, lsItems, base)
}
