package core

import (
	"cmp"
	"context"
	"errors"
	"runtime"
	"slices"
	"sync"
	"time"

	"ringrpq/internal/glushkov"
	"ringrpq/internal/lazy"
	"ringrpq/internal/obs"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/wavelet"
)

// Evaluator is the query-evaluation capability shared by the
// single-ring Engine and the ShardedEngine; the public DB selects one
// at build/load time. Eval takes the request context first (the repo's
// ctx-first convention, enforced by rpqlint's ctxfirst analyzer): ctx
// may carry an obs.Trace and a deadline, folded into Options once at
// entry via FoldContext.
type Evaluator interface {
	Eval(ctx context.Context, q Query, opts Options, emit EmitFunc) (Stats, error)
}

// ShardedEngine evaluates 2RPQs over a ring.ShardSet.
//
// Because a matching path may use edges of several shards, the query
// cannot simply be evaluated per shard and the results unioned. Two
// strategies keep evaluation exact:
//
//   - Routing: when every predicate the expression mentions maps to the
//     same shard, every edge of every matching path lives there, and the
//     whole query is delegated to that shard's ordinary Engine (§5 fast
//     paths included). Single-predicate queries — the bulk of real logs —
//     always take this path.
//
//   - Cooperative traversal: otherwise the product-graph BFS of §4 runs
//     level-synchronised across shards. Each level, every shard expands
//     the shared frontier over its own sub-ring concurrently (parts 1–2
//     with per-shard B[v]/D[v] masks); a single-threaded merge then
//     deduplicates discoveries against a global per-node visited mask,
//     emits sources, and forms the next frontier. This explores exactly
//     the product subgraph G'_E of the union graph — the per-shard D
//     marks only prune locally re-discovered subjects, and the global
//     mask decides novelty — so the result set matches the unsharded
//     engine's.
//
// Expressions beyond the 64-state bit-parallel engine fall back to a
// sequential multiword BFS that steps through every shard in turn
// (correct, not parallel; such expressions are vanishingly rare).
//
// Like Engine, a ShardedEngine owns reusable working arrays and must
// not be used concurrently; build one per worker. Within one
// evaluation it fans out across shards with goroutines of its own.
type ShardedEngine struct {
	set *ring.ShardSet
	ids glushkov.SymbolIDs

	// engines holds per-shard delegation engines, created on first
	// route to the shard.
	engines []*Engine
	// workers drive the cooperative traversal, one per shard.
	workers []*shardWorker
	// d is the global visited-state mask per graph node: the merge-side
	// source of truth the per-shard D[v] marks approximate.
	d *lazy.MaskArray

	compiled map[string]*compiledAutomaton
	keyW     pathexpr.KeyWriter

	// parallel enables the per-level shard fan-out goroutines.
	parallel bool

	frontier, next []queueItem

	// per-evaluation state (mirrors Engine)
	stats     Stats
	trace     *obs.Trace
	deadline  time.Time
	steps     int
	emit      EmitFunc
	limit     int
	noMarks   bool
	batch     bool
	eager     bool
	noCompile bool
}

var _ Evaluator = (*ShardedEngine)(nil)
var _ Evaluator = (*Engine)(nil)

// NewShardedEngine builds an evaluation engine over set. The ids
// function resolves predicate occurrences exactly as for NewEngine.
func NewShardedEngine(set *ring.ShardSet, ids glushkov.SymbolIDs) *ShardedEngine {
	e := &ShardedEngine{
		set:      set,
		ids:      ids,
		engines:  make([]*Engine, set.K),
		workers:  make([]*shardWorker, set.K),
		d:        lazy.NewMaskArray(set.NumNodes),
		parallel: set.K > 1 && runtime.GOMAXPROCS(0) > 1,
	}
	for i, r := range set.Shards {
		e.workers[i] = newShardWorker(r)
	}
	return e
}

// WorkingSizeBytes reports the per-query working-array footprint across
// all shards (the sharded analogue of Engine.WorkingSizeBytes).
func (e *ShardedEngine) WorkingSizeBytes() int {
	sz := e.d.SizeBytes()
	for _, w := range e.workers {
		sz += w.bNode.SizeBytes() + w.dNode.SizeBytes()
	}
	return sz
}

// Eval evaluates q with the same contract as Engine.Eval: distinct
// result pairs, ErrTimeout on an exceeded deadline (partial results
// remain valid). Result order is unspecified and generally differs
// from the unsharded engine's; the result set does not. Options.DFS is
// ignored (the cooperative traversal is inherently level-ordered).
func (e *ShardedEngine) Eval(ctx context.Context, q Query, opts Options, emit EmitFunc) (Stats, error) {
	if shard, ok := e.route(q.Expr); ok {
		return e.engineFor(shard).Eval(ctx, q, opts, emit)
	}
	opts = FoldContext(ctx, opts)
	e.stats = Stats{}
	e.steps = 0
	e.limit = opts.Limit
	e.noMarks = opts.DisableNodeMarks
	e.batch = !opts.DisableBatching
	e.eager = opts.CompileEager
	e.noCompile = opts.DisableCompiled
	e.trace = opts.Trace
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
	} else {
		e.deadline = time.Time{}
	}
	e.emit = func(s, o uint32) bool {
		e.stats.Results++
		if !emit(s, o) {
			return false
		}
		return e.limit == 0 || e.stats.Results < e.limit
	}

	sp := e.trace.Begin(obs.SpanTraverse)
	err := e.coopDispatch(q)
	e.trace.EndVals(sp, int64(e.stats.ProductNodes), int64(e.stats.ProductEdges),
		int64(e.stats.WaveletVisits), int64(e.stats.Results))
	if errors.Is(err, errLimit) {
		err = nil
	}
	return e.stats, err
}

// route reports the one shard that holds every edge a path matching
// expr could use, when such a shard exists. Unknown predicates match
// nothing and do not constrain the choice; expressions mentioning no
// known predicate (empty or ε-only languages) evaluate correctly on
// any shard because all shards share the global node space.
func (e *ShardedEngine) route(expr pathexpr.Node) (int, bool) {
	if e.set.K == 1 {
		return 0, true
	}
	if pathexpr.HasNegSets(expr) {
		// A negated property set may read any predicate outside its
		// exclusion list, which spans shards in general.
		return 0, false
	}
	shard := -1
	for _, s := range pathexpr.Predicates(expr) {
		id, ok := e.ids(s)
		if !ok {
			continue
		}
		k := e.set.ShardFor(id)
		if shard == -1 {
			shard = k
			continue
		}
		if shard != k {
			return 0, false
		}
	}
	if shard == -1 {
		shard = 0
	}
	return shard, true
}

// engineFor returns the shard's delegation engine, building it on
// first use.
func (e *ShardedEngine) engineFor(k int) *Engine {
	if e.engines[k] == nil {
		e.engines[k] = NewEngine(e.set.Shards[k], e.ids)
	}
	return e.engines[k]
}

// coopDispatch routes a multi-shard query to the cooperative variants
// of the §4 algorithm (the §5 fast-path shapes mention at most two
// predicates; whenever those share a shard the query was already
// delegated above, so no sharded fast paths are needed for them).
func (e *ShardedEngine) coopDispatch(q Query) error {
	switch {
	case q.Object != Variable && q.Subject == Variable:
		return e.coopToConst(q.Expr, uint32(q.Object), false)
	case q.Subject != Variable && q.Object == Variable:
		return e.coopToConst(pathexpr.InverseOf(q.Expr), uint32(q.Subject), true)
	case q.Subject != Variable && q.Object != Variable:
		return e.coopBothConst(q.Expr, uint32(q.Subject), uint32(q.Object))
	default:
		return e.coopBothVar(q.Expr)
	}
}

// compile memoises Glushkov compilations exactly like Engine.compile,
// including the hotness-triggered stepper tier; the precomputed B[v]
// arrays are per shard (each sub-ring has its own L_p tree).
func (e *ShardedEngine) compile(expr pathexpr.Node) *compiledAutomaton {
	kb := e.keyW.Key(expr)
	c, ok := e.compiled[string(kb)] // no-copy lookup
	if !ok {
		a := glushkov.Build(expr, e.ids)
		eng, err := glushkov.NewEngineFor(a, e.set.NumPreds)
		if err != nil {
			eng = nil // fall back to the multiword path
		}
		c = &compiledAutomaton{a: a, eng: eng}
		if e.compiled == nil || len(e.compiled) >= maxCompiled {
			e.compiled = make(map[string]*compiledAutomaton, 16)
		}
		e.compiled[string(kb)] = c
	}
	c.uses++
	if c.eng != nil && c.st == nil && !e.noCompile && (e.eager || c.uses > compileThreshold) {
		c.st = glushkov.Compile(c.eng, e.set.NumPreds)
		c.bArrs = make([][]uint64, len(e.workers))
		for i, w := range e.workers {
			c.bArrs[i] = BuildBArr(w.r.Lp, c.eng)
		}
	}
	return c
}

// prepareNarrow compiles expr and readies every shard worker (B[v]
// seeding, mark resets). A nil return selects the multiword fallback.
func (e *ShardedEngine) prepareNarrow(expr pathexpr.Node) *glushkov.Engine {
	if e.noCompile {
		// Ablation / oracle mode: route to the multiword fallback.
		return nil
	}
	c := e.compile(expr)
	if c.eng == nil {
		return nil
	}
	e.d.Reset()
	st := c.st
	for i, w := range e.workers {
		var bArr []uint64
		if st != nil {
			bArr = c.bArrs[i]
		}
		w.prepare(c.eng, st, bArr, e.deadline, e.noMarks, e.batch)
	}
	return c.eng
}

// releaseAll folds the workers' traversal statistics into the
// evaluation stats and resets their working arrays in O(1).
func (e *ShardedEngine) releaseAll() {
	for _, w := range e.workers {
		e.stats.ProductEdges += w.stats.ProductEdges
		e.stats.WaveletVisits += w.stats.WaveletVisits
		w.release()
	}
}

// resetVisited clears the visited marks (global and per shard) between
// the per-start traversals of a v→v query, keeping the B[v] seeds.
func (e *ShardedEngine) resetVisited() {
	e.d.Reset()
	for _, w := range e.workers {
		w.dNode.Reset()
		w.markPads()
	}
}

// seed records the traversal origin o as visited with the final states
// and makes it the initial frontier.
func (e *ShardedEngine) seed(eng *glushkov.Engine, o uint32) {
	e.d.Set(int(o), eng.F)
	for _, w := range e.workers {
		w.markSubject(w.r.Ls.LeafID(o), eng.F)
	}
	e.frontier = append(e.frontier[:0], queueItem{o, eng.F})
}

// coopToConst is the cooperative evalToConst: (x, E, o), or the
// (s, E, y) rewriting when swap is set.
func (e *ShardedEngine) coopToConst(expr pathexpr.Node, o uint32, swap bool) error {
	report := func(r uint32) bool {
		if swap {
			return e.emit(o, r)
		}
		return e.emit(r, o)
	}
	eng := e.prepareNarrow(expr)
	if eng == nil {
		return e.wideCoopToConst(expr, o, swap)
	}
	defer e.releaseAll()
	if int(o) >= e.set.NumNodes {
		return nil
	}
	if eng.A.Nullable {
		if !report(o) {
			return errLimit
		}
	}
	e.seed(eng, o)
	return e.runCooperative(eng, 0, report)
}

// coopBothConst is the cooperative evalBothConst: stop at the first
// path between the fixed endpoints.
func (e *ShardedEngine) coopBothConst(expr pathexpr.Node, s, o uint32) error {
	eng := e.prepareNarrow(expr)
	if eng == nil {
		return e.wideCoopBothConst(expr, s, o)
	}
	defer e.releaseAll()
	if int(o) >= e.set.NumNodes || int(s) >= e.set.NumNodes {
		return nil
	}
	if eng.A.Nullable && s == o {
		e.emit(s, o)
		return nil
	}
	found := false
	report := func(got uint32) bool {
		if got == s {
			found = true
			e.emit(s, o)
			return false
		}
		return true
	}
	e.seed(eng, o)
	err := e.runCooperative(eng, 0, report)
	if found && errors.Is(err, errLimit) {
		err = nil
	}
	return err
}

// coopBothVar is the cooperative evalBothVar: a full-range phase
// collects candidate endpoints, then one constrained traversal runs per
// candidate (each of which again fans out across shards).
func (e *ShardedEngine) coopBothVar(expr pathexpr.Node) error {
	a := e.compile(expr).a
	if a.Nullable {
		// As in Engine.evalBothVar, the O(|V|) self-pair prefix must
		// honour the deadline before any traversal work starts.
		for v := 0; v < e.set.NumNodes; v++ {
			if err := e.checkDeadline(); err != nil {
				return err
			}
			if !e.emit(uint32(v), uint32(v)) {
				return errLimit
			}
		}
	}

	fromObjects := e.startFromObjects(a)
	phase1Expr := expr
	if fromObjects {
		phase1Expr = pathexpr.InverseOf(expr)
	}
	var starts []uint32
	collect := func(s uint32) bool {
		starts = append(starts, s)
		return true
	}
	if err := e.coopFullRangeSources(phase1Expr, collect); err != nil {
		return err
	}

	nullable := a.Nullable
	expr2 := expr
	if !fromObjects {
		expr2 = pathexpr.InverseOf(expr)
	}
	report2 := func(s uint32) func(uint32) bool {
		if fromObjects {
			return func(src uint32) bool {
				if nullable && src == s {
					return true // (s,s) already emitted
				}
				return e.emit(src, s)
			}
		}
		return func(o uint32) bool {
			if nullable && o == s {
				return true
			}
			return e.emit(s, o)
		}
	}

	eng2 := e.prepareNarrow(expr2)
	if eng2 == nil {
		for _, s := range starts {
			if err := e.wideCoopRunToConst(expr2, s, report2(s)); err != nil {
				return err
			}
		}
		return nil
	}
	defer e.releaseAll()
	for _, s := range starts {
		e.resetVisited()
		e.seed(eng2, s)
		if err := e.runCooperative(eng2, 0, report2(s)); err != nil {
			return err
		}
	}
	return nil
}

// coopFullRangeSources runs the full-range phase of a v→v query over
// every shard's complete L_p range.
func (e *ShardedEngine) coopFullRangeSources(expr pathexpr.Node, report func(uint32) bool) error {
	eng := e.prepareNarrow(expr)
	if eng == nil {
		return e.wideCoopFullRangeSources(expr, report)
	}
	defer e.releaseAll()
	base := eng.F &^ eng.Init
	e.frontier = e.frontier[:0]
	e.forEachWorker(func(w *shardWorker) {
		if w.r.N > 0 {
			w.runFull(eng, base)
		}
	})
	if err := e.collect(eng, base, report); err != nil {
		return err
	}
	return e.runCooperative(eng, base, report)
}

// startFromObjects mirrors Engine.startFromObjects using the shard
// set's global predicate cardinalities.
func (e *ShardedEngine) startFromObjects(a *glushkov.Automaton) bool {
	count := func(positions []int32) int {
		total := 0
		for _, j := range positions {
			c := a.Syms[j-1]
			if c == glushkov.NoSymbol {
				continue
			}
			total += e.set.PredCount(c)
		}
		return total
	}
	return count(a.Follow[0]) < count(a.Last)
}

// runCooperative drains the frontier level by level: every shard
// expands the whole frontier over its own sub-ring (concurrently when
// enabled), then the single-threaded merge dedups, emits and builds the
// next frontier.
func (e *ShardedEngine) runCooperative(eng *glushkov.Engine, base uint64, report func(uint32) bool) error {
	for len(e.frontier) > 0 {
		if err := e.checkDeadline(); err != nil {
			return err
		}
		sp, visits0 := -1, 0
		if e.trace != nil {
			visits0 = e.shardVisits()
			sp = e.trace.Begin(obs.SpanLevel)
		}
		frontier := e.frontier
		e.forEachWorker(func(w *shardWorker) {
			w.runLevel(eng, frontier, base)
		})
		err := e.collect(eng, base, report)
		e.trace.EndVals(sp, int64(len(frontier)), int64(e.shardVisits()-visits0))
		if err != nil {
			return err
		}
	}
	return nil
}

// shardVisits sums the in-flight per-worker wavelet-visit counters
// (folded into e.stats only at release time), for level-span deltas.
func (e *ShardedEngine) shardVisits() int {
	total := 0
	for _, w := range e.workers {
		total += w.stats.WaveletVisits
	}
	return total
}

// forEachWorker applies f to every shard worker, concurrently when the
// engine runs parallel. f must only touch its worker's private state.
func (e *ShardedEngine) forEachWorker(f func(*shardWorker)) {
	if !e.parallel {
		for _, w := range e.workers {
			f(w)
		}
		return
	}
	var wg sync.WaitGroup
	for _, w := range e.workers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f(w)
		}()
	}
	wg.Wait()
}

// collect merges the shards' level discoveries: globally-new states are
// recorded in the per-node mask, sources are reported once, and
// remaining new states form the next frontier. Running single-threaded
// keeps emission and dedup free of locks.
func (e *ShardedEngine) collect(eng *glushkov.Engine, base uint64, report func(uint32) bool) error {
	for _, w := range e.workers {
		if w.err != nil {
			return w.err
		}
	}
	e.next = e.next[:0]
	var failure error
	for _, w := range e.workers {
		if failure == nil {
			for _, it := range w.found {
				fresh := it.d &^ (e.d.Get(int(it.node)) | base)
				if fresh == 0 {
					continue
				}
				e.d.Or(int(it.node), fresh)
				e.stats.ProductNodes++
				if fresh&eng.Init != 0 {
					if !report(it.node) {
						failure = errLimit
						break
					}
					fresh &^= eng.Init // the initial state has no incoming work
				}
				if fresh != 0 {
					e.next = append(e.next, queueItem{it.node, fresh})
				}
			}
		}
		w.found = w.found[:0]
	}
	e.frontier, e.next = e.next, e.frontier
	return failure
}

func (e *ShardedEngine) checkDeadline() error {
	e.steps++
	if e.deadline.IsZero() || e.steps%64 != 0 {
		return nil
	}
	if time.Now().After(e.deadline) {
		return ErrTimeout
	}
	return nil
}

// shardWorker owns one shard's traversal state: the per-wavelet-node
// B[v] and D[v] masks of §4.1–4.2 over the shard's own sequences, and
// the discovery list handed to the merge after each level. Workers
// never emit or dedup globally — that is the merge's job — so a level
// can run on all shards concurrently without locks.
type shardWorker struct {
	r            *ring.Ring
	bNode, dNode *lazy.MaskArray
	lsPads       []wavelet.NodeID

	// found accumulates this level's (subject, states) discoveries.
	found []queueItem

	// lpItems and lsItems are the worker's private scratch for the
	// frontier-batched descent (each worker batches the shared frontier
	// over its own sub-ring's sequences).
	lpItems, lsItems []wavelet.RangeMask

	stats    Stats
	steps    int
	deadline time.Time
	noMarks  bool
	batch    bool
	err      error

	// st steps the automaton for the current query (compiled stepper or
	// the interpreting engine); bArr, when non-nil, is the shard's
	// precomputed immutable B[v] array replacing bNode.
	st   glushkov.Stepper
	bArr []uint64
}

func newShardWorker(r *ring.Ring) *shardWorker {
	return &shardWorker{
		r:      r,
		bNode:  lazy.NewMaskArray(r.Lp.NumNodes()),
		dNode:  lazy.NewMaskArray(r.Ls.NumNodes()),
		lsPads: r.Ls.PadNodes(),
	}
}

// prepare readies the worker for one query: reset masks and counters,
// install the stepper, and pre-mark padding subtrees. A nil st selects
// the interpreter, seeding the lazy B[v] masks for eng; a non-nil st
// comes with the shard's precomputed bArr, so no seeding is needed.
func (w *shardWorker) prepare(eng *glushkov.Engine, st glushkov.Stepper, bArr []uint64, deadline time.Time, noMarks, batch bool) {
	w.bNode.Reset()
	w.dNode.Reset()
	w.found = w.found[:0]
	w.stats = Stats{}
	w.steps = 0
	w.deadline = deadline
	w.noMarks = noMarks
	w.batch = batch
	w.err = nil
	w.st, w.bArr = st, bArr
	if st == nil {
		w.st = eng
		for c, mask := range eng.B {
			for id := w.r.Lp.LeafID(c); id >= 1; id = id.Parent() {
				w.bNode.Or(int(id), mask)
			}
		}
	}
	w.markPads()
}

func (w *shardWorker) release() {
	w.bNode.Reset()
	w.dNode.Reset()
	w.found = w.found[:0]
}

func (w *shardWorker) markPads() {
	for _, id := range w.lsPads {
		w.dNode.Set(int(id), ^uint64(0))
	}
}

// markSubject mirrors Engine.markSubject on the shard's L_s tree.
func (w *shardWorker) markSubject(leaf wavelet.NodeID, states uint64) {
	w.dNode.Or(int(leaf), states)
	if w.noMarks {
		return
	}
	for id := leaf.Parent(); id >= 1; id = id.Parent() {
		v := w.dNode.Get(int(2*id)) & w.dNode.Get(int(2*id+1))
		if v == w.dNode.Get(int(id)) {
			break
		}
		w.dNode.Set(int(id), v)
	}
}

// runLevel expands the whole frontier over this shard — by default as
// one frontier-batched multi-range descent per part (the frontier is
// shared read-only across workers, so each worker builds its own sorted
// item list over its sub-ring), item at a time when batching is off.
func (w *shardWorker) runLevel(eng *glushkov.Engine, frontier []queueItem, base uint64) {
	if w.err != nil {
		return
	}
	if !w.batch {
		for _, it := range frontier {
			b, end := w.r.ObjectRange(it.node)
			if b == end {
				continue
			}
			if err := w.step(eng, b, end, it.d, base); err != nil {
				w.err = err
				return
			}
		}
		return
	}
	w.lpItems = w.lpItems[:0]
	for _, it := range frontier {
		b, end := w.r.ObjectRange(it.node)
		if b < end {
			w.lpItems = append(w.lpItems, wavelet.RangeMask{B: b, E: end, Mask: it.d})
		}
	}
	if len(w.lpItems) < batchCutoff {
		// Tiny shard-local levels take the cheaper per-item descent.
		for _, it := range w.lpItems {
			if err := w.step(eng, it.B, it.E, it.Mask, base); err != nil {
				w.err = err
				return
			}
		}
		return
	}
	// The merge emits discoveries in found order, not node order; sort so
	// the shard's object ranges ascend (they are disjoint, so this also
	// enables same-mask coalescing inside TraverseMany).
	slices.SortFunc(w.lpItems, func(a, b wavelet.RangeMask) int { return cmp.Compare(a.B, b.B) })
	if err := w.stepMany(eng, w.lpItems, base); err != nil {
		w.err = err
	}
}

// runFull is the level-0 expansion of a v→v query: one step over the
// shard's whole L_p.
func (w *shardWorker) runFull(eng *glushkov.Engine, base uint64) {
	if w.err != nil {
		return
	}
	if w.batch {
		w.lpItems = append(w.lpItems[:0], wavelet.RangeMask{B: 0, E: w.r.N, Mask: eng.F})
		if err := w.stepMany(eng, w.lpItems, base); err != nil {
			w.err = err
		}
		return
	}
	if err := w.step(eng, 0, w.r.N, eng.F, base); err != nil {
		w.err = err
	}
}

// stepMany runs the shared batched step (see batch.go) over the
// shard's sequences, recording each discovery for the merge exactly
// once per level, with the union of its states.
func (w *shardWorker) stepMany(eng *glushkov.Engine, items []wavelet.RangeMask, base uint64) error {
	if err := w.checkDeadline(); err != nil {
		return err
	}
	o := batchOwner{
		r:       w.r,
		bNode:   w.bNode,
		dNode:   w.dNode,
		stats:   &w.stats,
		noMarks: w.noMarks,
		st:      w.st,
		bArr:    w.bArr,
		check:   w.checkDeadline,
		mark:    w.markSubject,
		part2Leaf: func(s uint32, all, fresh uint64) error {
			// The merge counts ProductNodes and decides global novelty;
			// the worker only reports what reached the subject locally.
			w.found = append(w.found, queueItem{s, all})
			return nil
		},
	}
	var err error
	w.lsItems, err = stepManyOn(&o, eng, items, w.lsItems, base)
	return err
}

// step is Engine.step over the shard's sequences, with discoveries
// collected instead of enqueued.
func (w *shardWorker) step(eng *glushkov.Engine, b, end int, d, base uint64) error {
	if err := w.checkDeadline(); err != nil {
		return err
	}
	negFwd, negInv := eng.NegClassBits()
	half := w.r.NumPreds / 2
	var failure error
	w.r.Lp.Traverse(b, end, func(node wavelet.NodeID, leaf bool, p uint32, rb, re int, full bool) bool {
		if failure != nil {
			return false
		}
		w.stats.WaveletVisits++
		if !leaf {
			var bm uint64
			if w.bArr != nil {
				bm = w.bArr[node]
			} else {
				bm = w.bNode.Get(int(node))
			}
			if d&bm != 0 {
				return true
			}
			if negFwd|negInv == 0 {
				return false
			}
			lo, hi := w.r.Lp.SymRange(node)
			var cb uint64
			if lo < half {
				cb |= negFwd
			}
			if hi > half {
				cb |= negInv
			}
			return d&cb != 0
		}
		// Per-expansion deadline probe: a single level can cover many
		// predicate leaves, so the per-step probe alone is not enough.
		if err := w.checkDeadline(); err != nil {
			failure = err
			return false
		}
		bp := w.st.PredMask(p)
		if d&bp == 0 {
			return true
		}
		w.stats.ProductEdges++
		d2 := w.st.StepBack(d & bp)
		if d2 == 0 {
			return true
		}
		if err := w.part2(w.r.Cp[p]+rb, w.r.Cp[p]+re, d2, base); err != nil {
			failure = err
			return false
		}
		return true
	})
	return failure
}

// part2 mirrors Engine.part2: enumerate the subjects of L_s[b, end)
// that still have locally-unvisited states, mark them, and record the
// discovery for the merge.
func (w *shardWorker) part2(b, end int, d2, base uint64) error {
	var failure error
	w.r.Ls.Traverse(b, end, func(node wavelet.NodeID, leaf bool, s uint32, rb, re int, full bool) bool {
		if failure != nil {
			return false
		}
		w.stats.WaveletVisits++
		visited := w.dNode.Get(int(node)) | base
		if !leaf {
			if w.noMarks {
				return true
			}
			return d2&^visited != 0
		}
		// Per-leaf deadline probe (dense objects cover many subjects).
		if err := w.checkDeadline(); err != nil {
			failure = err
			return false
		}
		if d2&^visited == 0 {
			return true
		}
		w.markSubject(node, d2)
		w.found = append(w.found, queueItem{s, d2})
		return true
	})
	return failure
}

func (w *shardWorker) checkDeadline() error {
	w.steps++
	if w.deadline.IsZero() || w.steps%64 != 0 {
		return nil
	}
	if time.Now().After(w.deadline) {
		return ErrTimeout
	}
	return nil
}

// --- multiword (wide) fallback ---------------------------------------
//
// Expressions with more than 63 positions reuse the wideState machinery
// of the single-ring engine, but each dequeued (node, states) item is
// stepped through every shard in turn. The visited map is global, so
// this is the plain §4 traversal of the union graph; it runs
// sequentially (the multiword path has no per-shard masks to keep
// coherent, and such expressions are vanishingly rare in real logs).

func (e *ShardedEngine) newWideState(expr pathexpr.Node) *wideState {
	a := e.compile(expr).a
	return &wideState{
		eng:     glushkov.NewWideFor(a, e.set.NumPreds),
		visited: make(map[uint32]glushkov.Mask),
	}
}

func (e *ShardedEngine) wideCoopToConst(expr pathexpr.Node, o uint32, swap bool) error {
	emit := func(r uint32) bool {
		if swap {
			return e.emit(o, r)
		}
		return e.emit(r, o)
	}
	if int(o) >= e.set.NumNodes {
		return nil
	}
	w := e.newWideState(expr)
	if w.eng.A.Nullable {
		if !emit(o) {
			return errLimit
		}
	}
	w.visited[o] = w.eng.F.Clone()
	w.queue = append(w.queue, o)
	w.states = append(w.states, w.eng.F.Clone())
	return e.wideCoopBFS(w, nil, emit)
}

func (e *ShardedEngine) wideCoopRunToConst(expr pathexpr.Node, o uint32, emit func(uint32) bool) error {
	w := e.newWideState(expr)
	w.visited[o] = w.eng.F.Clone()
	w.queue = append(w.queue, o)
	w.states = append(w.states, w.eng.F.Clone())
	return e.wideCoopBFS(w, nil, emit)
}

func (e *ShardedEngine) wideCoopBothConst(expr pathexpr.Node, s, o uint32) error {
	if int(o) >= e.set.NumNodes || int(s) >= e.set.NumNodes {
		return nil
	}
	w := e.newWideState(expr)
	if w.eng.A.Nullable && s == o {
		e.emit(s, o)
		return nil
	}
	w.visited[o] = w.eng.F.Clone()
	w.queue = append(w.queue, o)
	w.states = append(w.states, w.eng.F.Clone())
	found := false
	err := e.wideCoopBFS(w, nil, func(r uint32) bool {
		if r == s {
			found = true
			e.emit(s, o)
			return false
		}
		return true
	})
	if found && errors.Is(err, errLimit) {
		err = nil
	}
	return err
}

func (e *ShardedEngine) wideCoopFullRangeSources(expr pathexpr.Node, emit func(uint32) bool) error {
	w := e.newWideState(expr)
	base := w.eng.F.Clone()
	if base.Test(0) {
		base[0] &^= 1 // keep the initial state reportable
	}
	for _, shard := range e.set.Shards {
		if shard.N == 0 {
			continue
		}
		if err := e.wideStepOn(shard, w, 0, shard.N, w.eng.F, base, emit); err != nil {
			return err
		}
	}
	return e.wideCoopBFS(w, base, emit)
}

func (e *ShardedEngine) wideCoopBFS(w *wideState, base glushkov.Mask, emit func(uint32) bool) error {
	for head := 0; head < len(w.queue); head++ {
		node, d := w.queue[head], w.states[head]
		for _, shard := range e.set.Shards {
			b, end := shard.ObjectRange(node)
			if b == end {
				continue
			}
			if err := e.wideStepOn(shard, w, b, end, d, base, emit); err != nil {
				return err
			}
		}
	}
	return nil
}

// wideStepOn steps one shard, sharing wideStepOn of wide.go (the
// wideState, and hence the visited map, spans all shards).
func (e *ShardedEngine) wideStepOn(r *ring.Ring, w *wideState, b, end int, d, base glushkov.Mask, emit func(uint32) bool) error {
	if err := e.checkDeadline(); err != nil {
		return err
	}
	return wideStepOn(r, w, b, end, d, base, &e.stats, emit)
}
