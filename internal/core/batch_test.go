package core

import (
	"context"
	"math/rand"
	"testing"

	"ringrpq/internal/datagen"
	"ringrpq/internal/enginetest"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
)

// The frontier-batched traversal must produce exactly the result set of
// the item-at-a-time descent on random graphs and expressions, for every
// endpoint shape, on both wavelet layouts, with and without fast paths.
func TestBatchingMatchesUnbatched(t *testing.T) {
	for seed := int64(100); seed < 116; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nv := 2 + rng.Intn(24)
		np := 1 + rng.Intn(5)
		ne := 1 + rng.Intn(80)
		g := enginetest.RandomGraph(seed, nv, np, ne)
		for _, layout := range []ring.Layout{ring.WaveletMatrix, ring.WaveletTree} {
			e := newEngine(g, layout)
			for trial := 0; trial < 5; trial++ {
				expr := enginetest.RandomExpr(rng, np, 1+rng.Intn(3))
				for _, q := range queriesFor(rng, g, expr) {
					want := enginetest.SortPairs(enginetest.Oracle(g, q.Subject, q.Expr, q.Object))
					batched := evalPairs(t, e, q, Options{DisableFastPaths: true})
					unbatched := evalPairs(t, e, q, Options{DisableFastPaths: true, DisableBatching: true})
					diffPairs(t, "batched vs oracle", batched, want, q)
					diffPairs(t, "unbatched vs oracle", unbatched, want, q)
				}
			}
		}
	}
}

// Negated property sets drive the per-node symbol-range filters of the
// batched part-1 descent; they must agree with the unbatched path.
func TestBatchingNegSets(t *testing.T) {
	g := enginetest.RandomGraph(7, 14, 4, 70)
	e := newEngine(g, ring.WaveletMatrix)
	rng := rand.New(rand.NewSource(7))
	for _, src := range []string{
		"!pa", "!(pa|pb)", "!^pc", "(!pa)+", "!(pa|^pb)*", "pa/!pb", "!pa|!pb",
	} {
		expr := pathexpr.MustParse(src)
		for _, q := range queriesFor(rng, g, expr) {
			want := evalPairs(t, e, q, Options{DisableBatching: true})
			got := evalPairs(t, e, q, Options{})
			diffPairs(t, "negset-batched", got, want, q)
		}
	}
}

// Batched traversal composes with the other ablation switches.
func TestBatchingWithNodeMarksDisabled(t *testing.T) {
	g := enginetest.RandomGraph(8, 16, 3, 70)
	e := newEngine(g, ring.WaveletMatrix)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 5; trial++ {
		expr := enginetest.RandomExpr(rng, 3, 2)
		for _, q := range queriesFor(rng, g, expr) {
			want := evalPairs(t, e, q, Options{DisableFastPaths: true, DisableBatching: true})
			got := evalPairs(t, e, q, Options{DisableFastPaths: true, DisableNodeMarks: true})
			diffPairs(t, "batched-nomarks", got, want, q)
		}
	}
}

// Limits must truncate the batched traversal exactly as the unbatched
// one (the result prefix differs in order but not in validity).
func TestBatchingLimit(t *testing.T) {
	g := enginetest.RandomGraph(11, 20, 3, 120)
	e := newEngine(g, ring.WaveletMatrix)
	q := Query{Subject: Variable, Expr: pathexpr.MustParse("(pa|pb)+"), Object: Variable}
	full := evalPairs(t, e, q, Options{DisableFastPaths: true})
	if len(full) < 5 {
		t.Skipf("graph too sparse (%d results)", len(full))
	}
	n := 0
	st, err := e.Eval(context.Background(), q, Options{DisableFastPaths: true, Limit: 4}, func(s, o uint32) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatalf("limited eval: %v", err)
	}
	if n != 4 || st.Results != 4 {
		t.Fatalf("limit 4 delivered %d results (stats %d)", n, st.Results)
	}
}

// The Theorem 4.1 locality guarantee must survive batching: the chain
// query's work stays linear, and the batched traversal must touch no
// more wavelet nodes than the per-item descent.
func TestBatchingWaveletVisitsNotWorse(t *testing.T) {
	g := enginetest.RandomGraph(21, 400, 4, 3000)
	e := newEngine(g, ring.WaveletMatrix)
	for _, src := range []string{"(pa|pb)+", "pa*", "(pa/pb)+"} {
		q := Query{Subject: Variable, Expr: pathexpr.MustParse(src), Object: Variable}
		bst, err := e.Eval(context.Background(), q, Options{DisableFastPaths: true}, func(s, o uint32) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		ust, err := e.Eval(context.Background(), q, Options{DisableFastPaths: true, DisableBatching: true}, func(s, o uint32) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		if bst.Results != ust.Results {
			t.Fatalf("%s: batched %d results, unbatched %d", src, bst.Results, ust.Results)
		}
		if bst.WaveletVisits > ust.WaveletVisits {
			t.Fatalf("%s: batched WaveletVisits=%d exceeds unbatched %d",
				src, bst.WaveletVisits, ust.WaveletVisits)
		}
	}
}

// pairSet must behave as a set within one epoch and forget everything
// across resets, including after enough resets to recycle pages.
func TestPairSetReuse(t *testing.T) {
	var ps pairSet
	for epoch := 0; epoch < 300; epoch++ {
		if !ps.add(1, 2) {
			t.Fatalf("epoch %d: first add(1,2) reported duplicate", epoch)
		}
		if ps.add(1, 2) {
			t.Fatalf("epoch %d: second add(1,2) reported new", epoch)
		}
		// Pairs far apart land on distinct pages; page-cache churn must
		// not lose membership.
		for i := uint32(0); i < 50; i++ {
			s, o := i*7919, i*104729
			if !ps.add(s, o) {
				t.Fatalf("epoch %d: add(%d,%d) reported duplicate", epoch, s, o)
			}
			if ps.add(s, o) {
				t.Fatalf("epoch %d: re-add(%d,%d) reported new", epoch, s, o)
			}
		}
		ps.reset()
	}
}

func TestPairSetAdjacentBits(t *testing.T) {
	var ps pairSet
	// Exhaust one page's bit positions: all distinct, all remembered.
	for o := uint32(0); o < 1<<pairPageBits; o++ {
		if !ps.add(9, o) {
			t.Fatalf("add(9,%d) reported duplicate", o)
		}
	}
	for o := uint32(0); o < 1<<pairPageBits; o++ {
		if ps.add(9, o) {
			t.Fatalf("re-add(9,%d) reported new", o)
		}
	}
}

// BenchmarkBatchedBFS compares the frontier-batched and item-at-a-time
// traversals on closure queries over a Wikidata-shaped graph (the
// skewed-degree workload the batching targets; uniform-random graphs
// produce scattered frontiers that mostly measure the per-item
// descent). `make ci` runs it in short mode as a smoke test.
func BenchmarkBatchedBFS(b *testing.B) {
	g := datagen.Generate(datagen.Config{Seed: 1, Nodes: 6000, Edges: 30000, Preds: 40})
	e := newEngine(g, ring.WaveletMatrix)
	queries := []Query{
		{Subject: Variable, Expr: pathexpr.MustParse("P1*"), Object: 7},
		{Subject: Variable, Expr: pathexpr.MustParse("(P2|P5)+"), Object: 11},
		{Subject: 3, Expr: pathexpr.MustParse("P1/P2*"), Object: Variable},
	}
	for _, mode := range []struct {
		name string
		opts Options
	}{
		{"batched", Options{DisableFastPaths: true}},
		{"unbatched", Options{DisableFastPaths: true, DisableBatching: true}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					e.Eval(context.Background(), q, mode.opts, func(s, o uint32) bool { return true })
				}
			}
		})
	}
}

// The stepper table generator must be allocation-free in steady state:
// once an expression is hot, the Glushkov automaton, the specialized
// stepper, and the per-(expr, ring) B[v] array are all memoised on the
// engine, and the memo lookup itself renders the canonical key into a
// reused buffer. allocs/op must be exactly zero — a regression here
// means every evaluation of a hot expression pays generator costs
// again. `make ci` asserts this via -benchtime with ReportAllocs.
func BenchmarkCompiledStepperSteadyState(b *testing.B) {
	g := enginetest.RandomGraph(42, 2000, 8, 8000)
	e := newEngine(g, ring.WaveletMatrix)
	e.eager = true
	exprs := []pathexpr.Node{
		pathexpr.MustParse("(pa|pb)+"),
		pathexpr.MustParse("pa/pb*"),
		pathexpr.MustParse("pa|pb|pc"),
	}
	for _, x := range exprs { // cold builds outside the timed loop
		if ca := e.compile(x); ca.st == nil || ca.bArr == nil {
			b.Fatal("warm-up did not compile a stepper")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ca := e.compile(exprs[i%len(exprs)])
		if ca.st == nil || ca.bArr == nil {
			b.Fatal("memo lost the compiled stepper")
		}
	}
}
