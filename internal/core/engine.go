// Package core implements the paper's contribution (§4): evaluating 2RPQs
// directly on the ring by traversing, backwards, only the subgraph G'_E of
// the product graph induced by the query.
//
// Each traversal step starts at a range of L_p holding the triples with
// the current object and proceeds in three parts:
//
//  1. find the distinct predicates leading into the object whose targets
//     include an active NFA state, by descending the wavelet tree of L_p
//     pruned with per-node B[v] masks (Fact 1 confines the predicate's
//     influence to B, so one mask test per node suffices);
//  2. find the distinct source subjects per predicate by descending the
//     wavelet tree of L_s pruned with per-node visited-state masks D[v],
//     which also prevents loops in the product graph;
//  3. re-interpret each subject as an object via C_o and continue.
//
// The bit-parallel Glushkov simulation advances all active NFA states at
// once, and starting v→v queries from the full L_p range advances all
// graph nodes at once — the two speedups over classical node-at-a-time
// product-graph search that the paper highlights.
package core

import (
	"context"
	"errors"
	"time"

	"ringrpq/internal/glushkov"
	"ringrpq/internal/lazy"
	"ringrpq/internal/obs"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/wavelet"
)

// Variable marks a query endpoint as unbound.
const Variable int64 = -1

// Query is a 2RPQ (s, E, o) over dictionary-encoded ids: Subject and
// Object are node ids, or Variable.
type Query struct {
	Subject int64
	Expr    pathexpr.Node
	Object  int64
}

// Options tune one evaluation.
type Options struct {
	// Limit caps the number of emitted results; 0 means unlimited.
	Limit int
	// Timeout bounds wall-clock evaluation time; 0 means none.
	Timeout time.Duration
	// DisableFastPaths forces the generic product-graph algorithm even
	// for the join-like patterns of §5 (used by the ablation benchmark).
	DisableFastPaths bool
	// DisableNodeMarks turns off the per-wavelet-node visited masks D[v]
	// (§4.2), keeping only per-subject marks (ablation).
	DisableNodeMarks bool
	// DFS switches the product-graph traversal from BFS (the paper's
	// running example) to depth-first order. Both are correct (§3.2:
	// "BFS, DFS, etc."); result order differs, the result set does not.
	// DFS implies unbatched traversal (batching is level-synchronous).
	DFS bool
	// DisableBatching reverts the level-synchronous frontier-batched
	// traversal to the item-at-a-time descent, where every (node, states)
	// frontier entry pays its own root-to-leaf wavelet descent (ablation;
	// rpqbench reports both modes side by side).
	DisableBatching bool
	// CompileEager compiles the expression into a specialized stepper on
	// first use instead of waiting for it to get hot (Subscribe and the
	// benchmarks use this).
	CompileEager bool
	// DisableCompiled forces the generic interpreted simulation — the
	// multiword fallback kept for wide (>64-state) expressions — even
	// for expressions the compilation tier could specialize. It is the
	// ablation baseline ("interpreted" in BENCH_PR7.json) and the
	// differential oracle: the fallback interprets the automaton with
	// per-step multiword masks and a visited hash map, with none of the
	// flat B[v]/D[v] wavelet-node pruning arrays or compiled steppers.
	DisableCompiled bool
	// Trace, when non-nil, records a traverse span with the evaluation's
	// Stats plus one span per BFS level (frontier size, wavelet-node
	// visits). Nil — the default — records nothing and costs one pointer
	// test per level.
	Trace *obs.Trace
}

// ErrTimeout reports that evaluation exceeded Options.Timeout.
var ErrTimeout = errors.New("core: query timeout")

// errLimit stops the traversal when the result limit is hit; it is
// internal and mapped to a nil error (truncated results are still valid).
var errLimit = errors.New("core: result limit")

// Stats counts the work of one evaluation; the Theorem 4.1 test checks
// these against the size of the induced product subgraph.
type Stats struct {
	// ProductNodes counts (node, state) pairs activated for the first
	// time, i.e. visited nodes of G'_E.
	ProductNodes int
	// ProductEdges counts backward-search steps taken (predicate leaves
	// reached in part 1), i.e. traversed edge groups of G'_E.
	ProductEdges int
	// WaveletVisits counts wavelet-tree nodes touched in parts 1 and 2.
	WaveletVisits int
	// Results counts emitted pairs.
	Results int
}

// EmitFunc receives one (subject, object) result pair. Returning false
// stops the evaluation early.
type EmitFunc func(s, o uint32) bool

// Engine evaluates queries over a ring. It owns reusable working arrays,
// so a single Engine must not be used concurrently; build one per worker.
type Engine struct {
	r   *ring.Ring
	ids glushkov.SymbolIDs

	// bNode holds the B[v] masks over the wavelet nodes of L_p (§4.1).
	bNode *lazy.MaskArray
	// dNode holds visited-state marks over the wavelet nodes of L_s:
	// leaf entries are the D[s] of §4.2 and internal entries the
	// intersection of their children, maintained bottom-up.
	dNode *lazy.MaskArray

	// subjLeaf caches LeafID(s) lookups for part 3 starts.
	lsPads []wavelet.NodeID

	// compiled memoises Glushkov compilations keyed by the canonical
	// expression string, so a long-lived Engine (a service worker)
	// re-evaluating the same expression skips automaton and
	// transition-table construction. Entries are pointers and the key is
	// rendered through keyW, keeping the steady-state lookup (and the
	// uses-counter bump) allocation-free.
	compiled map[string]*compiledAutomaton
	keyW     pathexpr.KeyWriter

	queue []queueItem

	// lpItems and lsItems are the scratch range lists of the batched
	// traversal: a whole frontier level as sorted disjoint L_p ranges,
	// and the per-step L_s ranges it maps to.
	lpItems, lsItems []wavelet.RangeMask

	// pairs dedups (s, o) result pairs across the §5 fast-path branches;
	// owned by the engine so fast-path queries allocate nothing.
	pairs pairSet

	// per-evaluation state
	stats     Stats
	trace     *obs.Trace
	deadline  time.Time
	steps     int
	emit      EmitFunc
	limit     int
	noMarks   bool
	dfs       bool
	batch     bool
	eager     bool
	noCompile bool
	failure   error

	// st is the active stepper for the current evaluation: the compiled
	// specialization when the expression is hot, otherwise the
	// interpreting glushkov.Engine itself. bArr is the compiled
	// counterpart of bNode — an immutable per-(expression, ring) B[v]
	// array built once at stepper-compile time, replacing the lazy
	// per-eval seeding and its per-visit epoch check; nil when
	// interpreting.
	st   glushkov.Stepper
	bArr []uint64

	// groupD pools the per-member visited-mask arrays of EvalGroup.
	groupD []*lazy.MaskArray
}

type queueItem struct {
	node uint32
	d    uint64
}

// NewEngine builds an evaluation engine over r. The ids function resolves
// predicate occurrences of query expressions to completed predicate ids
// (e.g. triples.Graph.PredID).
func NewEngine(r *ring.Ring, ids glushkov.SymbolIDs) *Engine {
	return &Engine{
		r:      r,
		ids:    ids,
		bNode:  lazy.NewMaskArray(r.Lp.NumNodes()),
		dNode:  lazy.NewMaskArray(r.Ls.NumNodes()),
		lsPads: r.Ls.PadNodes(),
	}
}

// WorkingSizeBytes reports the per-query working-array footprint (the
// paper's "array D uses 3.09 extra bytes per triple" accounting).
func (e *Engine) WorkingSizeBytes() int {
	return e.bNode.SizeBytes() + e.dNode.SizeBytes()
}

// FoldContext merges ctx-carried request state into opts: an unset
// Trace is filled from the context (obs.FromContext), and a context
// deadline earlier than Options.Timeout tightens it. Engines call it
// once per evaluation, so ctx costs nothing on the traversal hot path;
// cancellation between results remains the caller's job (the service's
// emit wrapper polls ctx.Err).
func FoldContext(ctx context.Context, opts Options) Options {
	if ctx == nil {
		return opts
	}
	if opts.Trace == nil {
		opts.Trace = obs.FromContext(ctx)
	}
	if d, ok := ctx.Deadline(); ok {
		rem := time.Until(d)
		if rem <= 0 {
			rem = time.Nanosecond // already expired: the first probe fires
		}
		if opts.Timeout == 0 || rem < opts.Timeout {
			opts.Timeout = rem
		}
	}
	return opts
}

// Eval evaluates q, calling emit for every result pair. Pairs are
// distinct (set semantics). It returns the work statistics and ErrTimeout
// if the timeout fired (results emitted so far are valid but incomplete).
// ctx is consulted once at entry (FoldContext): it may carry an obs.Trace
// and tighten the deadline, but is not polled during the traversal.
func (e *Engine) Eval(ctx context.Context, q Query, opts Options, emit EmitFunc) (Stats, error) {
	opts = FoldContext(ctx, opts)
	e.stats = Stats{}
	e.steps = 0
	e.failure = nil
	e.limit = opts.Limit
	e.noMarks = opts.DisableNodeMarks
	e.dfs = opts.DFS
	e.batch = !opts.DisableBatching && !opts.DFS
	e.eager = opts.CompileEager
	e.noCompile = opts.DisableCompiled
	e.trace = opts.Trace
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
	} else {
		e.deadline = time.Time{}
	}
	e.emit = func(s, o uint32) bool {
		e.stats.Results++
		if !emit(s, o) {
			return false
		}
		return e.limit == 0 || e.stats.Results < e.limit
	}

	sp := e.trace.Begin(obs.SpanTraverse)
	err := e.dispatch(q, opts)
	e.trace.EndVals(sp, int64(e.stats.ProductNodes), int64(e.stats.ProductEdges),
		int64(e.stats.WaveletVisits), int64(e.stats.Results))
	if errors.Is(err, errLimit) {
		err = nil
	}
	return e.stats, err
}

// dispatch routes the query to the §5 fast paths or the generic §4
// algorithm, depending on its shape.
func (e *Engine) dispatch(q Query, opts Options) error {
	if !opts.DisableFastPaths && q.Subject == Variable && q.Object == Variable {
		if done, err := e.tryFastPath(q.Expr); done {
			return err
		}
	}
	switch {
	case q.Object != Variable && q.Subject == Variable:
		// (x, E, o): traverse E backwards from o.
		return e.evalToConst(q.Expr, uint32(q.Object), false)
	case q.Subject != Variable && q.Object == Variable:
		// (s, E, y) ≡ (y, Ê, s): traverse Ê backwards from s (§4.4).
		return e.evalToConst(pathexpr.InverseOf(q.Expr), uint32(q.Subject), true)
	case q.Subject != Variable && q.Object != Variable:
		return e.evalBothConst(q.Expr, uint32(q.Subject), uint32(q.Object))
	default:
		return e.evalBothVar(q.Expr)
	}
}

// compiledAutomaton is one memoised Glushkov compilation; eng is nil
// when the expression exceeds the 64-state bit-parallel engine and the
// Wide fallback must be used. st and bArr are the compilation tier:
// they stay nil until the expression's use count crosses
// compileThreshold (or an eager evaluation forces them), after which
// every later evaluation runs the specialized stepper against the
// precomputed B[v] array with zero per-eval setup.
type compiledAutomaton struct {
	a    *glushkov.Automaton
	eng  *glushkov.Engine
	uses int
	st   glushkov.Stepper
	bArr []uint64
	// bArrs is the sharded engine's per-shard counterpart of bArr.
	bArrs [][]uint64
}

// maxCompiled bounds the per-engine compilation memo; on overflow the
// whole memo is dropped (rebuilding a handful of automata is cheaper
// than tracking recency).
const maxCompiled = 128

// compileThreshold is the use count past which an expression is
// compiled into a specialized stepper. The service's canonicalizing
// expr cache aligns the memo keys, so per-worker use counts mirror the
// service-level hit counters.
const compileThreshold = 2

// compile returns the memoised Glushkov compilation of expr, keyed by
// its canonical string (so structurally equal expressions share one
// entry regardless of how their ASTs were obtained). The memo is
// per-Engine by design: each worker clone pays its own cold build,
// in exchange for lock-free access on the evaluation hot path.
func (e *Engine) compile(expr pathexpr.Node) *compiledAutomaton {
	kb := e.keyW.Key(expr)
	c, ok := e.compiled[string(kb)] // no-copy lookup
	if !ok {
		a := glushkov.Build(expr, e.ids)
		eng, err := glushkov.NewEngineFor(a, e.r.NumPreds)
		if err != nil {
			eng = nil // fall back to the Wide path
		}
		c = &compiledAutomaton{a: a, eng: eng}
		if e.compiled == nil || len(e.compiled) >= maxCompiled {
			e.compiled = make(map[string]*compiledAutomaton, 16)
		}
		e.compiled[string(kb)] = c
	}
	c.uses++
	if c.eng != nil && c.st == nil && !e.noCompile && (e.eager || c.uses > compileThreshold) {
		c.st = glushkov.Compile(c.eng, e.r.NumPreds)
		c.bArr = BuildBArr(e.r.Lp, c.eng)
	}
	return c
}

// BuildBArr precomputes the B[v] masks over the wavelet nodes of lp for
// a compiled expression: the immutable equivalent of prepare's lazy
// bNode seeding, built once per (expression, ring) and shared by every
// later evaluation (the overlay union engine builds one per sub-ring).
func BuildBArr(lp wavelet.Seq, eng *glushkov.Engine) []uint64 {
	arr := make([]uint64, lp.NumNodes())
	for c, mask := range eng.B {
		for id := lp.LeafID(c); id >= 1; id = id.Parent() {
			arr[id] |= mask
		}
	}
	return arr
}

// prepare builds the bit-parallel engine for expr and installs the
// per-evaluation stepper: the compiled stepper and precomputed B[v]
// array when the expression is hot, otherwise the interpreter with the
// B[v] masks seeded onto the lazy bNode array. A nil engine with nil
// error signals the multiword fallback is needed.
func (e *Engine) prepare(expr pathexpr.Node) (*glushkov.Engine, error) {
	if e.noCompile {
		// Ablation / oracle mode: evaluate on the generic multiword
		// fallback, exactly as a too-wide expression would.
		return nil, nil
	}
	ca := e.compile(expr)
	eng := ca.eng
	if eng == nil {
		return nil, nil
	}
	if ca.st != nil {
		e.st, e.bArr = ca.st, ca.bArr
		return eng, nil
	}
	e.st, e.bArr = eng, nil
	for c, mask := range eng.B {
		for id := e.r.Lp.LeafID(c); id >= 1; id = id.Parent() {
			e.bNode.Or(int(id), mask)
		}
	}
	return eng, nil
}

// release resets the per-query working arrays in O(1).
func (e *Engine) release() {
	e.bNode.Reset()
	e.dNode.Reset()
	e.queue = e.queue[:0]
	e.pairs.reset()
	e.st = nil
	e.bArr = nil
}

// markPads pre-marks the padding subtrees of L_s as "visited with every
// state", so that the bottom-up intersection marks are not blocked by
// leaves that cannot occur.
func (e *Engine) markPads() {
	for _, id := range e.lsPads {
		e.dNode.Set(int(id), ^uint64(0))
	}
}

// evalToConst evaluates (x, E, o) for a fixed object o, emitting (s, o)
// pairs — or (o, s) when swap is set (the (s, E, y) rewriting).
func (e *Engine) evalToConst(expr pathexpr.Node, o uint32, swap bool) error {
	// The traversal reports the nodes r reached with the initial state
	// active; the result pair is (r, o) — or (o, r) under the (s, E, y)
	// rewriting, where the fixed endpoint is the subject.
	emit := func(r, _ uint32) bool {
		if swap {
			return e.emit(o, r)
		}
		return e.emit(r, o)
	}
	eng, _ := e.prepare(expr)
	if eng == nil {
		return e.wideEvalToConst(expr, o, swap)
	}
	defer e.release()
	if int(o) >= e.r.NumNodes {
		return nil
	}
	if eng.A.Nullable {
		if !emit(o, o) {
			return errLimit
		}
	}
	e.markPads()
	// Mark the start: o has been visited with all final states (§4.2).
	e.markSubject(e.r.Ls.LeafID(o), eng.F)
	e.queue = append(e.queue, queueItem{o, eng.F})
	return e.bfs(eng, 0, emit)
}

// evalBothConst evaluates (s, E, o) with both endpoints fixed, stopping
// at the first match (§4.4; this case is excluded from Theorem 4.1).
func (e *Engine) evalBothConst(expr pathexpr.Node, s, o uint32) error {
	eng, _ := e.prepare(expr)
	if eng == nil {
		return e.wideEvalBothConst(expr, s, o)
	}
	defer e.release()
	if int(o) >= e.r.NumNodes || int(s) >= e.r.NumNodes {
		return nil
	}
	if eng.A.Nullable && s == o {
		e.emit(s, o)
		return nil
	}
	found := false
	emit := func(got, _ uint32) bool {
		if got == s {
			found = true
			e.emit(s, o)
			return false // stop the traversal
		}
		return true
	}
	e.markPads()
	e.markSubject(e.r.Ls.LeafID(o), eng.F)
	e.queue = append(e.queue, queueItem{o, eng.F})
	err := e.bfs(eng, 0, emit)
	if found && errors.Is(err, errLimit) {
		err = nil
	}
	return err
}

// evalBothVar evaluates (x, E, y) (§4.4): a first traversal from the full
// L_p range finds every node that can start a matching path; a second
// per-source traversal enumerates its reachable objects. The orientation
// is chosen by predicate selectivity (§5: "we choose to start from the
// end whose predicate has the smallest cardinality").
func (e *Engine) evalBothVar(expr pathexpr.Node) error {
	// Nullable expressions relate every node to itself via the empty
	// path; emit those pairs upfront, then suppress (v,v) rediscovery.
	// The loop is O(|V|) before any traversal work, so it honours the
	// deadline too — a short Options.Timeout must be able to interrupt
	// it on large graphs.
	a := e.compile(expr).a
	if a.Nullable {
		for v := 0; v < e.r.NumNodes; v++ {
			if err := e.checkDeadline(); err != nil {
				return err
			}
			if !e.emit(uint32(v), uint32(v)) {
				return errLimit
			}
		}
	}

	fromObjects := e.startFromObjects(a)
	phase1Expr := expr
	if fromObjects {
		phase1Expr = pathexpr.InverseOf(expr)
	}

	// Phase 1: collect candidate endpoints from the full range.
	var starts []uint32
	collect := func(s, _ uint32) bool {
		starts = append(starts, s)
		return true
	}
	if err := e.fullRangeSources(phase1Expr, collect); err != nil {
		return err
	}

	// Phase 2: one constrained traversal per candidate. The automaton
	// and the B[v] masks depend only on the expression, so they are
	// built once and shared; only the visited marks reset per start.
	nullable := a.Nullable
	expr2 := expr
	if !fromObjects {
		expr2 = pathexpr.InverseOf(expr)
	}
	phase2Emit := func(s uint32) EmitFunc {
		if fromObjects {
			// s is an object candidate: the traversal reports sources.
			return func(src, _ uint32) bool {
				if nullable && src == s {
					return true // (s,s) already emitted
				}
				return e.emit(src, s)
			}
		}
		// s is a source candidate: the traversal of Ê reports objects.
		return func(o, _ uint32) bool {
			if nullable && o == s {
				return true
			}
			return e.emit(s, o)
		}
	}

	eng2, _ := e.prepare(expr2)
	if eng2 == nil {
		for _, s := range starts {
			if err := e.wideRunToConst(expr2, s, phase2Emit(s)); err != nil {
				return err
			}
		}
		return nil
	}
	defer e.release()
	for _, s := range starts {
		e.dNode.Reset()
		e.queue = e.queue[:0]
		e.markPads()
		e.markSubject(e.r.Ls.LeafID(s), eng2.F)
		e.queue = append(e.queue, queueItem{s, eng2.F})
		if err := e.bfs(eng2, 0, phase2Emit(s)); err != nil {
			return err
		}
	}
	return nil
}

// fullRangeSources finds all nodes that can start a path matching expr
// towards some node, starting the backward traversal from the full L_p
// range (the ring's range capability, §4.4).
func (e *Engine) fullRangeSources(expr pathexpr.Node, emit EmitFunc) error {
	eng, _ := e.prepare(expr)
	if eng == nil {
		return e.wideFullRangeSources(expr, emit)
	}
	defer e.release()
	e.markPads()
	// Every object conceptually starts with the final states active, so
	// states in F (minus the initial state, which carries no outgoing
	// work but must stay reportable) count as already visited everywhere.
	base := eng.F &^ eng.Init
	if e.batch {
		// Level 0 is a single full-range item; the batched step already
		// drains it into the next frontier.
		e.lpItems = append(e.lpItems[:0], wavelet.RangeMask{B: 0, E: e.r.N, Mask: eng.F})
		if err := e.stepMany(eng, e.lpItems, base, emit); err != nil {
			return err
		}
		return e.bfsBatched(eng, base, emit)
	}
	if err := e.step(eng, 0, e.r.N, eng.F, base, emit); err != nil {
		return err
	}
	return e.bfs(eng, base, emit)
}

// startFromObjects decides the phase-1 orientation of a v→v query: true
// means collect objects first (traverse Ê), false sources first
// (traverse E). The cheaper side is the one whose boundary predicates
// select fewer triples.
func (e *Engine) startFromObjects(a *glushkov.Automaton) bool {
	count := func(positions []int32) int {
		total := 0
		for _, j := range positions {
			c := a.Syms[j-1]
			if c == glushkov.NoSymbol {
				continue
			}
			total += e.r.Cp[c+1] - e.r.Cp[c]
		}
		return total
	}
	// Boundary predicates: first positions start paths (near subjects),
	// last positions end them (near objects).
	firstCard := count(a.Follow[0])
	lastCard := count(a.Last)
	// The backward traversal's initial step scans the *last* predicates;
	// prefer the orientation whose first scan is smaller.
	return firstCard < lastCard
}

// bfs drains the worklist, expanding each (node, states) item (§4 parts
// 1–3). The default is the frontier-batched level-synchronous traversal
// (one multi-range wavelet descent per level and part); Options.DFS
// switches to last-in-first-out and Options.DisableBatching to the
// item-at-a-time FIFO, both on the classic per-item descent.
func (e *Engine) bfs(eng *glushkov.Engine, base uint64, emit EmitFunc) error {
	if e.batch {
		return e.bfsBatched(eng, base, emit)
	}
	if e.dfs {
		for len(e.queue) > 0 {
			it := e.queue[len(e.queue)-1]
			e.queue = e.queue[:len(e.queue)-1]
			b, end := e.r.ObjectRange(it.node)
			if err := e.step(eng, b, end, it.d, base, emit); err != nil {
				return err
			}
		}
		return nil
	}
	for head := 0; head < len(e.queue); head++ {
		it := e.queue[head]
		b, end := e.r.ObjectRange(it.node)
		if err := e.step(eng, b, end, it.d, base, emit); err != nil {
			return err
		}
	}
	return nil
}

// step performs one backward NFA step from the L_p range [b, end) with
// active states d: part 1 over L_p, part 2 over L_s, part 3 via C_o
// (enqueue).
func (e *Engine) step(eng *glushkov.Engine, b, end int, d, base uint64, emit EmitFunc) error {
	if err := e.checkDeadline(); err != nil {
		return err
	}
	// Negated property sets contribute to the part-1 filter per node
	// direction: a class position may be reachable through any wavelet
	// node that covers symbols of its half of the completed alphabet.
	negFwd, negInv := eng.NegClassBits()
	half := e.r.NumPreds / 2
	var failure error
	e.r.Lp.Traverse(b, end, func(node wavelet.NodeID, leaf bool, p uint32, rb, re int, full bool) bool {
		if failure != nil {
			return false
		}
		e.stats.WaveletVisits++
		if !leaf {
			// Part 1 pruning: descend only towards predicates that lead
			// to an active state (Fact 1 via the aggregated B[v]).
			var bm uint64
			if e.bArr != nil {
				bm = e.bArr[node]
			} else {
				bm = e.bNode.Get(int(node))
			}
			if d&bm != 0 {
				return true
			}
			if negFwd|negInv == 0 {
				return false
			}
			lo, hi := e.r.Lp.SymRange(node)
			var cb uint64
			if lo < half {
				cb |= negFwd
			}
			if hi > half {
				cb |= negInv
			}
			return d&cb != 0
		}
		// A single frontier level can cover an unbounded number of
		// predicate leaves, so the deadline is probed per expansion here
		// too, not only per step (checkDeadline amortizes the clock read).
		if err := e.checkDeadline(); err != nil {
			failure = err
			return false
		}
		bp := e.st.PredMask(p)
		if d&bp == 0 {
			return true
		}
		e.stats.ProductEdges++
		// The NFA transition is the same for every subject below (Fact 1).
		d2 := e.st.StepBack(d & bp)
		if d2 == 0 {
			return true
		}
		// Backward search step (Eqs. 4–5): the rank range [rb, re) of p
		// plus C_p gives the L_s range of sources.
		lsB := e.r.Cp[p] + rb
		lsE := e.r.Cp[p] + re
		if err := e.part2(eng, lsB, lsE, d2, base, emit); err != nil {
			failure = err
			return false
		}
		return true
	})
	return failure
}

// part2 enumerates the distinct subjects of L_s[b, end) that still have
// unvisited states in d2, marks them, reports sources, and enqueues the
// continuation (§4.2–4.3).
func (e *Engine) part2(eng *glushkov.Engine, b, end int, d2, base uint64, emit EmitFunc) error {
	var failure error
	e.r.Ls.Traverse(b, end, func(node wavelet.NodeID, leaf bool, s uint32, rb, re int, full bool) bool {
		if failure != nil {
			return false
		}
		e.stats.WaveletVisits++
		visited := e.dNode.Get(int(node)) | base
		if !leaf {
			if e.noMarks {
				return true
			}
			// Prune subtrees all of whose subjects were already visited
			// with every state in d2.
			return d2&^visited != 0
		}
		// Dense objects make one part-2 call cover many subject leaves;
		// probe the deadline per leaf so a single huge level cannot run
		// far past it.
		if err := e.checkDeadline(); err != nil {
			failure = err
			return false
		}
		newStates := d2 &^ visited
		if newStates == 0 {
			return true
		}
		e.stats.ProductNodes++
		e.markSubject(node, d2)
		if newStates&eng.Init != 0 {
			if !emit(s, 0) {
				failure = errLimit
				return false
			}
			newStates &^= eng.Init // the initial state has no incoming work
		}
		if newStates != 0 && e.r.Co[s+1] > e.r.Co[s] {
			e.queue = append(e.queue, queueItem{s, newStates})
		}
		return true
	})
	return failure
}

// markSubject records that the subject at leaf id has been visited with
// the given states and restores the invariant that every internal mark is
// the intersection of its children (conservatively using zero for
// untouched real leaves and all-ones for padding, via markPads).
func (e *Engine) markSubject(leaf wavelet.NodeID, states uint64) {
	e.dNode.Or(int(leaf), states)
	if e.noMarks {
		return
	}
	for id := leaf.Parent(); id >= 1; id = id.Parent() {
		v := e.dNode.Get(int(2*id)) & e.dNode.Get(int(2*id+1))
		if v == e.dNode.Get(int(id)) {
			break
		}
		e.dNode.Set(int(id), v)
	}
}

func (e *Engine) checkDeadline() error {
	e.steps++
	if e.deadline.IsZero() || e.steps%64 != 0 {
		return nil
	}
	if time.Now().After(e.deadline) {
		return ErrTimeout
	}
	return nil
}
