package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// Registry aggregates metric collectors and renders them in the
// Prometheus text exposition format (version 0.0.4). Collectors are
// called on every scrape, so they should snapshot live state.
type Registry struct {
	mu         sync.Mutex
	collectors []func(*Exposition)
}

// Register adds a collector invoked per scrape.
func (r *Registry) Register(fn func(*Exposition)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// WriteTo renders one scrape of every registered collector.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	collectors := make([]func(*Exposition), len(r.collectors))
	copy(collectors, r.collectors)
	r.mu.Unlock()

	e := &Exposition{seen: make(map[string]bool)}
	for _, fn := range collectors {
		fn(e)
	}
	n, err := w.Write([]byte(e.b.String()))
	return int64(n), err
}

// ServeHTTP makes the registry a GET /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet && req.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if req.Method == http.MethodHead {
		return
	}
	r.WriteTo(w)
}

// Exposition accumulates one scrape's worth of series.
type Exposition struct {
	b    strings.Builder
	seen map[string]bool
}

func (e *Exposition) header(name, help, typ string) {
	if !e.seen[name] {
		e.seen[name] = true
		fmt.Fprintf(&e.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
}

// Counter emits a monotonically-increasing series.
func (e *Exposition) Counter(name, help string, v float64) {
	e.header(name, help, "counter")
	fmt.Fprintf(&e.b, "%s %s\n", name, formatFloat(v))
}

// Gauge emits a point-in-time series.
func (e *Exposition) Gauge(name, help string, v float64) {
	e.header(name, help, "gauge")
	fmt.Fprintf(&e.b, "%s %s\n", name, formatFloat(v))
}

// Info emits a constant-1 gauge whose labels carry string facts
// (build/version/policy style metrics).
func (e *Exposition) Info(name, help string, labels map[string]string) {
	e.header(name, help, "gauge")
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	e.b.WriteString(name)
	e.b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			e.b.WriteByte(',')
		}
		fmt.Fprintf(&e.b, "%s=%q", k, labels[k])
	}
	e.b.WriteString("} 1\n")
}

// Histogram emits a snapshot as a Prometheus histogram in seconds:
// cumulative <name>_bucket{le=...} series, _sum and _count.
func (e *Exposition) Histogram(name, help string, s HistSnapshot) {
	e.header(name, help, "histogram")
	var cum uint64
	for _, b := range s.Buckets() {
		cum += b.Count
		fmt.Fprintf(&e.b, "%s_bucket{le=%q} %d\n", name, formatFloat(float64(b.UpperNS)/1e9), cum)
	}
	fmt.Fprintf(&e.b, "%s_bucket{le=\"+Inf\"} %d\n", name, s.Count)
	fmt.Fprintf(&e.b, "%s_sum %s\n", name, formatFloat(float64(s.Sum)/1e9))
	fmt.Fprintf(&e.b, "%s_count %d\n", name, s.Count)
}

func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
