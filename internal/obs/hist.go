package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram layout: values (nanoseconds) land in log-spaced buckets
// with histSub linear sub-buckets per power of two, giving a constant
// ≤ 1/histSub relative error on recovered quantiles. Everything is
// atomics — Observe is wait-free and safe from any goroutine.
const (
	histSubBits = 4
	histSub     = 1 << histSubBits // 16 sub-buckets per octave
	// Values 0..15 get exact unit buckets (octave 0); each higher
	// octave e ∈ [histSubBits, 63] contributes histSub buckets.
	histBuckets = (64 - histSubBits + 1) * histSub
)

// histClamp is the first bucket whose upper bound saturates at
// MaxInt64 (≈ 292 years in nanoseconds); larger values all land here
// so bucket bounds stay strictly increasing below it.
var histClamp = func() int {
	for i := 0; i < histBuckets; i++ {
		if bucketUpper(i) == math.MaxInt64 {
			return i
		}
	}
	return histBuckets - 1
}()

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - 1 // e >= histSubBits
	idx := (e-histSubBits+1)*histSub + int((v>>(uint(e)-histSubBits))&(histSub-1))
	if idx > histClamp {
		idx = histClamp
	}
	return idx
}

// bucketUpper returns the largest value mapping to bucket idx,
// saturating at MaxInt64 for the topmost octaves.
func bucketUpper(idx int) int64 {
	if idx < histSub {
		return int64(idx)
	}
	octave := idx >> histSubBits // >= 1
	sub := idx & (histSub - 1)
	shift := uint(octave - 1)
	upper := (uint64(histSub+sub+1) << shift) - 1
	if shift > 63-histSubBits-1 || upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// Histogram is a lock-free log-bucketed latency histogram. The zero
// value is ready to use; a nil *Histogram ignores observations.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	v := int64(d)
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot captures a point-in-time copy. Concurrent Observes may be
// torn across fields by at most one observation — fine for reporting.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// HistSnapshot is an immutable, mergeable histogram state.
type HistSnapshot struct {
	Counts [histBuckets]uint64
	Count  uint64
	Sum    int64
	Max    int64
}

// Merge folds another snapshot into this one (shard aggregation).
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) with
// relative error bounded by the sub-bucket width. Returns 0 when
// empty; Quantile(1) returns the exact observed maximum.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return time.Duration(s.Max)
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum > rank {
			u := bucketUpper(i)
			if u > s.Max {
				u = s.Max
			}
			return time.Duration(u)
		}
	}
	return time.Duration(s.Max)
}

// Mean returns the arithmetic mean of all observations.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.Sum / int64(s.Count))
}

// Bucket is one non-empty histogram bucket with its inclusive upper
// bound, for cumulative (Prometheus-style) export.
type Bucket struct {
	UpperNS int64
	Count   uint64
}

// Buckets returns the non-empty buckets in ascending bound order.
func (s HistSnapshot) Buckets() []Bucket {
	var out []Bucket
	for i, c := range s.Counts {
		if c != 0 {
			out = append(out, Bucket{UpperNS: bucketUpper(i), Count: c})
		}
	}
	return out
}
