package obs

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

// Every value must land in a bucket whose bounds contain it, and
// bucket upper bounds must be strictly increasing.
func TestBucketBounds(t *testing.T) {
	prev := int64(-1)
	for i := 0; i <= histClamp; i++ {
		u := bucketUpper(i)
		if u <= prev {
			t.Fatalf("bucket %d upper %d not > previous %d", i, u, prev)
		}
		prev = u
	}
	for _, v := range []int64{0, 1, 15, 16, 17, 31, 32, 100, 999, 12345, 1 << 20, 1<<40 + 3, 1<<62 + 1} {
		idx := bucketOf(v)
		if u := bucketUpper(idx); v > u {
			t.Errorf("value %d above bucket %d upper %d", v, idx, u)
		}
		if idx > 0 {
			if lo := bucketUpper(idx - 1); v <= lo {
				t.Errorf("value %d at or below bucket %d lower bound %d", v, idx, lo)
			}
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(rng.ExpFloat64() * float64(5*time.Millisecond))
		h.Observe(time.Duration(vals[i]))
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	s := h.Snapshot()
	if s.Count != uint64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if got, want := int64(s.Quantile(1)), vals[len(vals)-1]; got != want {
		t.Errorf("max quantile = %d, want exact max %d", got, want)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := float64(s.Quantile(q))
		exact := float64(vals[int(q*float64(len(vals)))])
		// Log-bucketing guarantees ≤ 1/histSub relative overshoot.
		if got < exact || got > exact*(1+2.0/histSub)+1 {
			t.Errorf("q%.2f = %.0f, exact %.0f: outside error bound", q, got, exact)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Microsecond)
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 200 {
		t.Fatalf("merged count = %d, want 200", s.Count)
	}
	if got := s.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("merged max = %v, want 100ms", got)
	}
	if med := s.Quantile(0.5); med < 90*time.Microsecond || med > 2*time.Millisecond {
		t.Errorf("merged median %v outside the boundary between halves", med)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var s HistSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Error("empty snapshot should report zeros")
	}
	var h *Histogram
	h.Observe(time.Second) // nil-safe
	if h.Snapshot().Count != 0 {
		t.Error("nil histogram snapshot should be empty")
	}
}

func TestTraceNesting(t *testing.T) {
	tr := New()
	root := tr.Begin(SpanRequest)
	ev := tr.Begin(SpanEval)
	lv := tr.Begin(SpanLevel)
	tr.EndVals(lv, 7, 42)
	tr.End(ev)
	tr.Add(SpanSerialize, time.Now().Add(-time.Millisecond))
	tr.End(root)

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Parent != -1 || spans[1].Parent != 0 || spans[2].Parent != 1 {
		t.Errorf("bad parents: %d %d %d", spans[0].Parent, spans[1].Parent, spans[2].Parent)
	}
	if spans[3].Parent != 0 {
		t.Errorf("Add should parent under the open root, got %d", spans[3].Parent)
	}

	p := tr.Render()
	if len(p.Spans) != 1 || p.Spans[0].Kind != "request" {
		t.Fatalf("want a single request root, got %+v", p.Spans)
	}
	evNode := p.Spans[0].Children[0]
	if evNode.Kind != "eval" || len(evNode.Children) != 1 {
		t.Fatalf("want eval with one child, got %+v", evNode)
	}
	level := evNode.Children[0]
	if level.Attrs["frontier"] != 7 || level.Attrs["wavelet_visits"] != 42 {
		t.Errorf("level attrs = %v", level.Attrs)
	}
	if p.TotalUS <= 0 {
		t.Error("TotalUS should be positive")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := New()
	for i := 0; i < maxSpans+50; i++ {
		tr.End(tr.Begin(SpanLevel))
	}
	if got := len(tr.Spans()); got != maxSpans {
		t.Errorf("spans = %d, want cap %d", got, maxSpans)
	}
	if tr.Dropped() != 50 {
		t.Errorf("dropped = %d, want 50", tr.Dropped())
	}
}

// Disabled telemetry must be free: nil receivers and a trace-less
// context add zero allocations on the hot path.
func TestNilTelemetryZeroAllocs(t *testing.T) {
	var tr *Trace
	var h *Histogram
	var sl *SlowLog
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		idx := tr.Begin(SpanLevel)
		tr.EndVals(idx, 1, 2)
		tr.Add(SpanQueueWait, time.Time{})
		h.Observe(time.Millisecond)
		sl.Record(SlowEntry{Total: time.Hour})
		if FromContext(ctx) != nil {
			t.Fatal("unexpected trace")
		}
	})
	if allocs != 0 {
		t.Errorf("disabled telemetry allocated %.1f per run, want 0", allocs)
	}
}

func TestTraceContext(t *testing.T) {
	tr := New()
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("trace did not round-trip through context")
	}
	if NewContext(context.Background(), nil) != context.Background() {
		t.Error("attaching nil should return the context unchanged")
	}
}

func TestSlowLog(t *testing.T) {
	if NewSlowLog(0, 8, nil) != nil {
		t.Fatal("threshold 0 should disable the log")
	}
	l := NewSlowLog(10*time.Millisecond, 3, nil)
	l.Record(SlowEntry{Kind: "fast", Total: time.Millisecond})
	for i := 0; i < 5; i++ {
		l.Record(SlowEntry{Kind: "slow", Results: i, Total: time.Second})
	}
	got := l.Entries()
	if len(got) != 3 {
		t.Fatalf("entries = %d, want ring cap 3", len(got))
	}
	for i, e := range got {
		if want := 4 - i; e.Results != want {
			t.Errorf("entry %d: results = %d, want %d (newest first)", i, e.Results, want)
		}
	}
	if l.Total() != 5 {
		t.Errorf("total = %d, want 5", l.Total())
	}

	// Partially-filled ring is returned newest first too.
	l2 := NewSlowLog(time.Nanosecond, 8, nil)
	l2.Record(SlowEntry{Results: 1, Total: time.Second})
	l2.Record(SlowEntry{Results: 2, Total: time.Second})
	if e := l2.Entries(); len(e) != 2 || e[0].Results != 2 {
		t.Errorf("partial ring entries = %+v", e)
	}
}

func TestRegistryExposition(t *testing.T) {
	var r Registry
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	r.Register(func(e *Exposition) {
		e.Counter("test_requests_total", "requests", 42)
		e.Gauge("test_queue_len", "queue", 3)
		e.Info("test_build_info", "build", map[string]string{"policy": "always"})
		e.Histogram("test_latency_seconds", "latency", h.Snapshot())
	})
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		"test_requests_total 42",
		"# TYPE test_queue_len gauge",
		`test_build_info{policy="always"} 1`,
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="+Inf"} 2`,
		"test_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
