package obs

import (
	"log/slog"
	"sync"
	"time"
)

// SlowEntry is one slow-query record: what ran, where the time went,
// and how it ended.
type SlowEntry struct {
	Time      time.Time     `json:"time"`
	Kind      string        `json:"kind"` // query | count | select | batch member
	Subject   string        `json:"subject,omitempty"`
	Object    string        `json:"object,omitempty"`
	Expr      string        `json:"expr,omitempty"`
	Pattern   string        `json:"pattern,omitempty"`
	Total     time.Duration `json:"total_ns"`
	QueueWait time.Duration `json:"queue_wait_ns"`
	Eval      time.Duration `json:"eval_ns"`
	Results   int           `json:"results"`
	Truncated bool          `json:"truncated,omitempty"`
	TimedOut  bool          `json:"timed_out,omitempty"`
	Grouped   bool          `json:"grouped,omitempty"`
	Err       string        `json:"error,omitempty"`
}

// SlowLog keeps the most recent slow queries in a bounded ring and
// mirrors each one to a structured slog logger. A nil *SlowLog, or one
// with a non-positive threshold, records nothing.
type SlowLog struct {
	threshold time.Duration
	logger    *slog.Logger

	mu    sync.Mutex
	ring  []SlowEntry
	next  int
	total uint64
}

// NewSlowLog builds a slow-query log. threshold <= 0 disables it
// (returns nil); capacity <= 0 defaults to 128; logger may be nil to
// keep entries in memory only.
func NewSlowLog(threshold time.Duration, capacity int, logger *slog.Logger) *SlowLog {
	if threshold <= 0 {
		return nil
	}
	if capacity <= 0 {
		capacity = 128
	}
	return &SlowLog{
		threshold: threshold,
		logger:    logger,
		ring:      make([]SlowEntry, 0, capacity),
	}
}

// Threshold returns the gating duration (0 when disabled).
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Record stores the entry if it crosses the threshold. Safe on nil.
func (l *SlowLog) Record(e SlowEntry) {
	if l == nil || e.Total < l.threshold {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
	}
	l.next = (l.next + 1) % cap(l.ring)
	l.total++
	l.mu.Unlock()

	if l.logger != nil {
		attrs := []any{
			slog.String("kind", e.Kind),
			slog.Duration("total", e.Total),
			slog.Duration("queue_wait", e.QueueWait),
			slog.Duration("eval", e.Eval),
			slog.Int("results", e.Results),
		}
		if e.Expr != "" {
			attrs = append(attrs, slog.String("expr", e.Expr),
				slog.String("subject", e.Subject), slog.String("object", e.Object))
		}
		if e.Pattern != "" {
			attrs = append(attrs, slog.String("pattern", e.Pattern))
		}
		if e.Truncated {
			attrs = append(attrs, slog.Bool("truncated", true))
		}
		if e.TimedOut {
			attrs = append(attrs, slog.Bool("timed_out", true))
		}
		if e.Err != "" {
			attrs = append(attrs, slog.String("error", e.Err))
		}
		l.logger.Warn("slow query", attrs...)
	}
}

// Entries returns the retained entries, newest first.
func (l *SlowLog) Entries() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, 0, len(l.ring))
	if len(l.ring) < cap(l.ring) {
		// Still filling: entries are in append order, newest last.
		for i := len(l.ring) - 1; i >= 0; i-- {
			out = append(out, l.ring[i])
		}
		return out
	}
	for i := 1; i <= len(l.ring); i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// Total reports how many entries crossed the threshold over the log's
// lifetime (including ones evicted from the ring).
func (l *SlowLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}
