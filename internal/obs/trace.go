// Package obs is the zero-dependency telemetry core: per-request span
// traces, lock-cheap log-bucketed latency histograms, a bounded
// structured slow-query log, and a Prometheus-text metrics registry.
//
// Every entry point is nil-safe: a nil *Trace, *Histogram or *SlowLog
// turns the call into a no-op without allocating, so instrumented hot
// paths pay only a pointer test when telemetry is disabled.
package obs

import (
	"context"
	"sync"
	"time"
)

// SpanKind names an instrumented stage of request processing.
type SpanKind uint8

const (
	SpanRequest SpanKind = iota // whole request, root
	SpanQueueWait
	SpanResultCache
	SpanExprCache
	SpanPatternCache
	SpanCompile
	SpanPlan
	SpanEval     // one backend evaluation (2RPQ or pattern)
	SpanTraverse // one product-graph traversal inside an eval
	SpanLevel    // one BFS level of a traversal
	SpanLTJ      // leapfrog-triejoin pipeline
	SpanRPQStep  // one RPQ clause step inside a pattern pipeline
	SpanWALAppend
	SpanWALFsync
	SpanStandingNotify
	SpanSerialize
	SpanUpdate
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	SpanRequest:        "request",
	SpanQueueWait:      "queue_wait",
	SpanResultCache:    "result_cache",
	SpanExprCache:      "expr_cache",
	SpanPatternCache:   "pattern_cache",
	SpanCompile:        "compile",
	SpanPlan:           "plan",
	SpanEval:           "eval",
	SpanTraverse:       "traverse",
	SpanLevel:          "level",
	SpanLTJ:            "ltj_join",
	SpanRPQStep:        "rpq_step",
	SpanWALAppend:      "wal_append",
	SpanWALFsync:       "wal_fsync",
	SpanStandingNotify: "standing_notify",
	SpanSerialize:      "serialize",
	SpanUpdate:         "update",
}

// spanAttrNames maps each kind's value slots to attribute names in the
// rendered profile. Unlisted slots are dropped.
var spanAttrNames = [numSpanKinds][4]string{
	SpanResultCache:    {"hit"},
	SpanExprCache:      {"hit"},
	SpanPatternCache:   {"hit"},
	SpanEval:           {"results"},
	SpanTraverse:       {"product_nodes", "product_edges", "wavelet_visits", "results"},
	SpanLevel:          {"frontier", "wavelet_visits"},
	SpanLTJ:            {"rows"},
	SpanRPQStep:        {"results"},
	SpanWALAppend:      {"bytes"},
	SpanStandingNotify: {"subscriptions"},
	SpanSerialize:      {"bytes"},
	SpanUpdate:         {"adds", "dels"},
}

func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) && spanKindNames[k] != "" {
		return spanKindNames[k]
	}
	return "unknown"
}

// Span is one recorded stage: [Start, End) as offsets from the trace
// origin, a parent index (-1 for roots), and up to four typed values
// whose meaning depends on Kind.
type Span struct {
	Kind   SpanKind
	NVals  uint8
	Parent int32
	Start  time.Duration
	End    time.Duration
	Vals   [4]int64
}

// Duration is the span's elapsed time.
func (s Span) Duration() time.Duration { return s.End - s.Start }

// maxSpans bounds a trace so pathological queries (thousands of BFS
// levels or RPQ steps) cannot grow memory without bound; overflow is
// counted in Dropped instead.
const maxSpans = 2048

// Trace records the typed span tree for a single profiled request.
// It is carried through the stack via context.Context (NewContext /
// FromContext); a nil *Trace is valid everywhere and records nothing.
type Trace struct {
	t0 time.Time

	mu      sync.Mutex
	spans   []Span
	stack   []int32 // open span indices, innermost last
	dropped int
}

// New starts an empty trace whose clock origin is now.
func New() *Trace {
	return &Trace{t0: time.Now(), spans: make([]Span, 0, 64)}
}

// Begin opens a span of the given kind, parented under the innermost
// open span, and returns its index for End/EndVals. Returns -1 (a
// valid no-op handle) on a nil trace or when the span cap is reached.
func (t *Trace) Begin(kind SpanKind) int {
	if t == nil {
		return -1
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return -1
	}
	parent := int32(-1)
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	idx := len(t.spans)
	t.spans = append(t.spans, Span{Kind: kind, Parent: parent, Start: now, End: -1})
	t.stack = append(t.stack, int32(idx))
	return idx
}

// End closes the span returned by Begin. End(-1) is a no-op.
func (t *Trace) End(idx int) { t.EndVals(idx) }

// EndVals closes a span and attaches up to four kind-specific values.
func (t *Trace) EndVals(idx int, vals ...int64) {
	if t == nil || idx < 0 {
		return
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	defer t.mu.Unlock()
	if idx >= len(t.spans) {
		return
	}
	s := &t.spans[idx]
	s.End = now
	for i, v := range vals {
		if i >= len(s.Vals) {
			break
		}
		s.Vals[i] = v
		s.NVals = uint8(i + 1)
	}
	// Pop the open-span stack down past this span (it is normally the
	// top; out-of-order ends just unwind the abandoned tail).
	for n := len(t.stack); n > 0; n = len(t.stack) {
		top := t.stack[n-1]
		t.stack = t.stack[:n-1]
		if int(top) == idx {
			break
		}
	}
}

// Add records an already-elapsed span that started at the given wall
// time and ends now — used for stages measured before the trace could
// be consulted (queue wait is timed from enqueue regardless).
func (t *Trace) Add(kind SpanKind, start time.Time, vals ...int64) {
	if t == nil {
		return
	}
	end := time.Since(t.t0)
	off := start.Sub(t.t0)
	if off < 0 {
		off = 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= maxSpans {
		t.dropped++
		return
	}
	parent := int32(-1)
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	s := Span{Kind: kind, Parent: parent, Start: off, End: end}
	for i, v := range vals {
		if i >= len(s.Vals) {
			break
		}
		s.Vals[i] = v
		s.NVals = uint8(i + 1)
	}
	t.spans = append(t.spans, s)
}

// Spans returns a copy of the recorded spans in creation order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many spans were discarded at the cap.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanNode is one node of the rendered span tree ("EXPLAIN ANALYZE"
// output), JSON-shaped for the /query profile response.
type SpanNode struct {
	Kind       string           `json:"kind"`
	StartUS    float64          `json:"start_us"`
	DurationUS float64          `json:"duration_us"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []*SpanNode      `json:"children,omitempty"`
}

// Profile is the JSON payload returned for "profile": true requests.
type Profile struct {
	TotalUS      float64     `json:"total_us"`
	DroppedSpans int         `json:"dropped_spans,omitempty"`
	Spans        []*SpanNode `json:"spans"`
}

// Render materializes the span tree. Unclosed spans are clamped to the
// rendering instant.
func (t *Trace) Render() *Profile {
	if t == nil {
		return nil
	}
	now := time.Since(t.t0)
	t.mu.Lock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	dropped := t.dropped
	t.mu.Unlock()

	nodes := make([]*SpanNode, len(spans))
	p := &Profile{DroppedSpans: dropped}
	for i, s := range spans {
		end := s.End
		if end < 0 {
			end = now
		}
		n := &SpanNode{
			Kind:       s.Kind.String(),
			StartUS:    float64(s.Start) / float64(time.Microsecond),
			DurationUS: float64(end-s.Start) / float64(time.Microsecond),
		}
		names := spanAttrNames[s.Kind]
		for v := 0; v < int(s.NVals); v++ {
			if names[v] == "" {
				continue
			}
			if n.Attrs == nil {
				n.Attrs = make(map[string]int64, s.NVals)
			}
			n.Attrs[names[v]] = s.Vals[v]
		}
		nodes[i] = n
		if s.Parent >= 0 && int(s.Parent) < i {
			nodes[s.Parent].Children = append(nodes[s.Parent].Children, n)
		} else {
			p.Spans = append(p.Spans, n)
			if e := n.StartUS + n.DurationUS; e > p.TotalUS {
				p.TotalUS = e
			}
		}
	}
	return p
}

type ctxKey struct{}

// NewContext attaches a trace to a context. Attaching nil returns the
// context unchanged, so callers can thread an optional trace blindly.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext extracts the trace, or nil when the request is not
// profiled. The nil result is itself usable with every Trace method.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
