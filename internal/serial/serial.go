// Package serial provides the small binary-encoding helpers shared by
// the index serialisation code: little-endian fixed ints, uvarints, and
// checked magic headers. Formats favour simplicity: derived structures
// (rank/select directories, C arrays) are rebuilt on load rather than
// stored.
package serial

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer wraps a buffered writer with error-latching write helpers.
type Writer struct {
	w   *bufio.Writer
	err error
}

// NewWriter returns a Writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Flush flushes buffered data and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Err returns the latched error.
func (w *Writer) Err() error { return w.err }

// Magic writes a 4-byte section tag.
func (w *Writer) Magic(tag string) {
	if w.err != nil {
		return
	}
	if len(tag) != 4 {
		w.err = fmt.Errorf("serial: magic %q is not 4 bytes", tag)
		return
	}
	_, w.err = w.w.WriteString(tag)
}

// Uint64 writes a fixed 8-byte little-endian value.
func (w *Writer) Uint64(x uint64) {
	if w.err != nil {
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x)
	_, w.err = w.w.Write(buf[:])
}

// Uvarint writes a variable-length unsigned value.
func (w *Writer) Uvarint(x uint64) {
	if w.err != nil {
		return
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], x)
	_, w.err = w.w.Write(buf[:n])
}

// Int writes a non-negative int as a uvarint.
func (w *Writer) Int(x int) {
	if x < 0 {
		if w.err == nil {
			w.err = fmt.Errorf("serial: negative int %d", x)
		}
		return
	}
	w.Uvarint(uint64(x))
}

// Uint64s writes a length-prefixed word slice.
func (w *Writer) Uint64s(xs []uint64) {
	w.Int(len(xs))
	for _, x := range xs {
		w.Uint64(x)
	}
}

// Ints writes a length-prefixed int slice as uvarints.
func (w *Writer) Ints(xs []int) {
	w.Int(len(xs))
	for _, x := range xs {
		w.Int(x)
	}
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Int(len(s))
	if w.err != nil {
		return
	}
	_, w.err = w.w.WriteString(s)
}

// maxPrealloc caps slice preallocation from untrusted length prefixes:
// decoders may only reserve this much up front and must otherwise grow
// with the bytes actually read, so a corrupt length cannot force an
// allocation larger than the input itself.
const maxPrealloc = 1 << 20

// Reader wraps a buffered reader with error-latching read helpers.
type Reader struct {
	r   *bufio.Reader
	err error
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// Err returns the latched error.
func (r *Reader) Err() error { return r.err }

// Fail latches err (first failure wins), so decoders that detect
// inconsistencies beyond raw read errors poison the reader the same
// way.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Magic reads and checks a 4-byte section tag.
func (r *Reader) Magic(tag string) {
	if got := r.Tag(); r.err == nil && got != tag {
		r.err = fmt.Errorf("serial: bad magic %q, want %q", got, tag)
	}
}

// Tag reads a 4-byte section tag and returns it, for callers that
// dispatch on the tag instead of expecting a fixed one.
func (r *Reader) Tag() string {
	if r.err != nil {
		return ""
	}
	var buf [4]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		r.err = err
		return ""
	}
	return string(buf[:])
}

// Uint64 reads a fixed 8-byte value.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	var buf [8]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		r.err = err
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

// Uvarint reads a variable-length unsigned value.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	x, err := binary.ReadUvarint(r.r)
	if err != nil {
		r.err = err
		return 0
	}
	return x
}

// Int reads a non-negative int, rejecting values that overflow int
// (a corrupt length prefix must surface as an error, not as a negative
// length that panics a make() downstream).
func (r *Reader) Int() int {
	x := r.Uvarint()
	if x > math.MaxInt {
		if r.err == nil {
			r.err = fmt.Errorf("serial: int overflow %d", x)
		}
		return 0
	}
	return int(x)
}

// Uint64s reads a length-prefixed word slice.
func (r *Reader) Uint64s() []uint64 {
	n := r.Int()
	if r.err != nil || n == 0 {
		return nil
	}
	cap := n
	if cap > maxPrealloc {
		cap = maxPrealloc
	}
	out := make([]uint64, 0, cap)
	for i := 0; i < n; i++ {
		out = append(out, r.Uint64())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// Ints reads a length-prefixed int slice.
func (r *Reader) Ints() []int {
	n := r.Int()
	if r.err != nil || n == 0 {
		return nil
	}
	cap := n
	if cap > maxPrealloc {
		cap = maxPrealloc
	}
	out := make([]int, 0, cap)
	for i := 0; i < n; i++ {
		out = append(out, r.Int())
		if r.err != nil {
			return nil
		}
	}
	return out
}

// String reads a length-prefixed string. The claimed length is not
// trusted for allocation: data is read in bounded chunks, so a corrupt
// or hostile prefix can only make the reader consume (and hold) as many
// bytes as the input actually contains before erroring out.
func (r *Reader) String() string {
	n := r.Int()
	if r.err != nil {
		return ""
	}
	const maxChunk = maxPrealloc
	if n <= maxChunk {
		buf := make([]byte, n)
		if _, err := io.ReadFull(r.r, buf); err != nil {
			r.err = err
			return ""
		}
		return string(buf)
	}
	var out []byte
	chunk := make([]byte, maxChunk)
	for n > 0 {
		c := chunk
		if n < len(c) {
			c = c[:n]
		}
		if _, err := io.ReadFull(r.r, c); err != nil {
			r.err = err
			return ""
		}
		out = append(out, c...)
		n -= len(c)
	}
	return string(out)
}
