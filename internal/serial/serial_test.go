package serial

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("test")
	w.Uint64(0xdeadbeefcafef00d)
	w.Uvarint(300)
	w.Int(42)
	w.Uint64s([]uint64{1, 2, 1 << 63})
	w.Ints([]int{0, 7, 1 << 40})
	w.String("hello, ring")
	w.String("")
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(&buf)
	r.Magic("test")
	if got := r.Uint64(); got != 0xdeadbeefcafef00d {
		t.Fatalf("Uint64=%x", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("Uvarint=%d", got)
	}
	if got := r.Int(); got != 42 {
		t.Fatalf("Int=%d", got)
	}
	xs := r.Uint64s()
	if len(xs) != 3 || xs[2] != 1<<63 {
		t.Fatalf("Uint64s=%v", xs)
	}
	is := r.Ints()
	if len(is) != 3 || is[2] != 1<<40 {
		t.Fatalf("Ints=%v", is)
	}
	if got := r.String(); got != "hello, ring" {
		t.Fatalf("String=%q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty String=%q", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(strings.NewReader("nope-and-more"))
	r.Magic("want")
	if r.Err() == nil {
		t.Fatal("bad magic not detected")
	}
	// Error latches: further reads stay failed and return zero values.
	if r.Uint64() != 0 || r.Int() != 0 || r.String() != "" || r.Uint64s() != nil {
		t.Fatal("reads after error must return zero values")
	}
}

func TestWriterErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("toolong")
	if w.Err() == nil {
		t.Fatal("bad magic length not detected")
	}
	w2 := NewWriter(&buf)
	w2.Int(-1)
	if w2.Err() == nil {
		t.Fatal("negative int not detected")
	}
}

func TestTruncatedReads(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Magic("abcd")
	w.Uint64s([]uint64{1, 2, 3})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n++ {
		r := NewReader(bytes.NewReader(data[:n]))
		r.Magic("abcd")
		r.Uint64s()
		if r.Err() == nil {
			t.Fatalf("truncation to %d bytes undetected", n)
		}
	}
}

func TestHugeLengthPrefixDoesNotPreallocate(t *testing.T) {
	// A corrupt stream claiming 2^60 entries must fail on read, not OOM.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(1 << 60)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if got := r.Uint64s(); got != nil || r.Err() == nil {
		t.Fatal("huge corrupt length must error")
	}
}
