package pathexpr

import (
	"fmt"
	"strings"
)

// Parse parses a 2RPQ regular expression. The grammar, lowest precedence
// first:
//
//	expr   := concat ('|' concat)*
//	concat := unary ('/' unary)*
//	unary  := atom ('*' | '+' | '?')*
//	atom   := '^' atom | ident | '<' ... '>' | '(' expr ')'
//
// Predicates are identifiers (letters, digits, '_', ':', '.', '-', not
// starting with '-') or arbitrary IRIs wrapped in angle brackets. A '^'
// before a parenthesised group inverts the whole group, which is rewritten
// to atomic inverses immediately (§3.1).
func Parse(s string) (Node, error) {
	p := &parser{src: s}
	n, err := p.parseAlt()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pathexpr: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return n, nil
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(s string) Node {
	n, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return n
}

type parser struct {
	src string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) parseAlt() (Node, error) {
	left, err := p.parseConcat()
	if err != nil {
		return nil, err
	}
	for p.peek() == '|' {
		p.pos++
		right, err := p.parseConcat()
		if err != nil {
			return nil, err
		}
		left = Alt{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseConcat() (Node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == '/' {
		p.pos++
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = Concat{L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Node, error) {
	n, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			n = Star{X: n}
		case '+':
			p.pos++
			n = Plus{X: n}
		case '?':
			p.pos++
			n = Opt{X: n}
		default:
			return n, nil
		}
	}
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == ':' || c == '.' || c == '-'
}

func (p *parser) parseAtom() (Node, error) {
	switch c := p.peek(); {
	case c == '!':
		p.pos++
		return p.parseNegSet()
	case c == '^':
		p.pos++
		inner, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		return InverseOf(inner), nil
	case c == '(':
		p.pos++
		if p.peek() == ')' { // "()" is ε
			p.pos++
			return Eps{}, nil
		}
		inner, err := p.parseAlt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("pathexpr: missing ')' at offset %d", p.pos)
		}
		p.pos++
		return inner, nil
	case c == '<':
		p.pos++
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return nil, fmt.Errorf("pathexpr: unterminated '<' at offset %d", p.pos-1)
		}
		name := p.src[p.pos : p.pos+end]
		p.pos += end + 1
		if name == "" {
			return nil, fmt.Errorf("pathexpr: empty IRI at offset %d", p.pos)
		}
		return Sym{Name: name}, nil
	case isIdentByte(c) && c != '-':
		start := p.pos
		for p.pos < len(p.src) && isIdentByte(p.src[p.pos]) {
			p.pos++
		}
		return Sym{Name: p.src[start:p.pos]}, nil
	case c == 0:
		return nil, fmt.Errorf("pathexpr: unexpected end of expression")
	default:
		return nil, fmt.Errorf("pathexpr: unexpected %q at offset %d", c, p.pos)
	}
}

// parseNegSet parses the body of a '!' negated property set: a single
// (possibly inverse) predicate, or a parenthesised alternation of them.
// Mixed-direction sets are split per the SPARQL semantics (see NegSet).
func (p *parser) parseNegSet() (Node, error) {
	var members []Sym
	appendMember := func() error {
		inv := false
		if p.peek() == '^' {
			p.pos++
			inv = true
		}
		atom, err := p.parseAtom()
		if err != nil {
			return err
		}
		s, ok := atom.(Sym)
		if !ok || s.Inverse && inv {
			return fmt.Errorf("pathexpr: negated property sets may only contain predicates, at offset %d", p.pos)
		}
		members = append(members, Sym{Name: s.Name, Inverse: s.Inverse != inv})
		return nil
	}
	if p.peek() == '(' {
		p.pos++
		for {
			if err := appendMember(); err != nil {
				return nil, err
			}
			switch p.peek() {
			case '|':
				p.pos++
			case ')':
				p.pos++
				return newNegSet(members), nil
			default:
				return nil, fmt.Errorf("pathexpr: expected '|' or ')' in negated set at offset %d", p.pos)
			}
		}
	}
	if err := appendMember(); err != nil {
		return nil, err
	}
	return newNegSet(members), nil
}
