package pathexpr

import (
	"reflect"
	"testing"
)

func TestNegSetParse(t *testing.T) {
	n := MustParse("!a")
	ns, ok := n.(NegSet)
	if !ok || ns.Inverse || !reflect.DeepEqual(ns.Names, []string{"a"}) {
		t.Fatalf("!a parsed as %#v", n)
	}
	n = MustParse("!^a")
	ns, ok = n.(NegSet)
	if !ok || !ns.Inverse {
		t.Fatalf("!^a parsed as %#v", n)
	}
	n = MustParse("!(a|b|c)")
	ns, ok = n.(NegSet)
	if !ok || !reflect.DeepEqual(ns.Names, []string{"a", "b", "c"}) {
		t.Fatalf("!(a|b|c) parsed as %#v", n)
	}
	// Duplicates collapse, order normalises.
	n = MustParse("!(c|a|c)")
	ns = n.(NegSet)
	if !reflect.DeepEqual(ns.Names, []string{"a", "c"}) {
		t.Fatalf("normalisation: %#v", ns)
	}
}

// Mixed-direction sets split into Alt per the SPARQL 1.1 semantics.
func TestNegSetMixedSplit(t *testing.T) {
	n := MustParse("!(a|^b)")
	alt, ok := n.(Alt)
	if !ok {
		t.Fatalf("!(a|^b) parsed as %#v", n)
	}
	fwd, ok1 := alt.L.(NegSet)
	inv, ok2 := alt.R.(NegSet)
	if !ok1 || !ok2 || fwd.Inverse || !inv.Inverse {
		t.Fatalf("split wrong: %#v | %#v", alt.L, alt.R)
	}
	if !reflect.DeepEqual(fwd.Names, []string{"a"}) || !reflect.DeepEqual(inv.Names, []string{"b"}) {
		t.Fatalf("split members wrong: %v %v", fwd.Names, inv.Names)
	}
}

func TestNegSetRoundTrip(t *testing.T) {
	for _, src := range []string{"!a", "!^a", "!(a|b)", "!(a|b)*", "c/!a", "!(^a|^b)"} {
		n := MustParse(src)
		out := String(n)
		n2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, out, err)
		}
		if !reflect.DeepEqual(n, n2) {
			t.Fatalf("round trip %q -> %q changed tree", src, out)
		}
	}
}

func TestNegSetParseErrors(t *testing.T) {
	for _, src := range []string{"!", "!(", "!()", "!(a|", "!(a*)", "!(a/b)"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestNegSetMatches(t *testing.T) {
	n := MustParse("!(a|b)")
	if !Matches(n, []Sym{{Name: "c"}}) {
		t.Error("!(a|b) must match c")
	}
	if Matches(n, []Sym{{Name: "a"}}) {
		t.Error("!(a|b) must not match a")
	}
	if Matches(n, []Sym{{Name: "c", Inverse: true}}) {
		t.Error("forward set must not match inverse labels")
	}
	if Matches(n, []Sym{{Name: "c"}, {Name: "c"}}) {
		t.Error("single-edge class must not match length-2 words")
	}
}

func TestNegSetInverseOf(t *testing.T) {
	n := MustParse("!(a|b)")
	inv := InverseOf(n).(NegSet)
	if !inv.Inverse || !reflect.DeepEqual(inv.Names, []string{"a", "b"}) {
		t.Fatalf("InverseOf(!(a|b)) = %#v", inv)
	}
	if !reflect.DeepEqual(InverseOf(inv), n) {
		t.Fatal("double inverse not identity")
	}
}

func TestNegSetPatternAndCount(t *testing.T) {
	n := MustParse("!a/b*")
	if got := Pattern(false, n, true); got != "v !/* c" {
		t.Fatalf("Pattern=%q", got)
	}
	if CountSyms(MustParse("!(a|b|c)")) != 1 {
		t.Fatal("a negated set is one position")
	}
}

func TestExpandNegSets(t *testing.T) {
	n := MustParse("!(a)/d")
	expanded := ExpandNegSets(n, func(ns NegSet) []Sym {
		var out []Sym
		for _, name := range []string{"a", "b", "c"} {
			if !ns.Excludes(name) {
				out = append(out, Sym{Name: name, Inverse: ns.Inverse})
			}
		}
		return out
	})
	want := MustParse("(b|c)/d")
	if !reflect.DeepEqual(expanded, want) {
		t.Fatalf("expanded to %s, want %s", String(expanded), String(want))
	}
	if HasNegSets(expanded) {
		t.Fatal("expansion left a NegSet behind")
	}
	if !HasNegSets(n) {
		t.Fatal("HasNegSets misses the original")
	}
	// Empty expansion must produce a never-matching atom.
	none := ExpandNegSets(MustParse("!a"), func(NegSet) []Sym { return nil })
	if Matches(none, []Sym{{Name: "a"}}) || Matches(none, nil) {
		t.Fatal("empty expansion must match nothing")
	}
}
