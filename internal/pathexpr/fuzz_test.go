package pathexpr

import "testing"

// FuzzParseExpr feeds arbitrary source text to the 2RPQ expression
// parser: it must either fail with an error or produce an AST whose
// canonical rendering round-trips through the parser to the same
// canonical form. It must never panic, whatever the input.
//
// Run with: go test -run NONE -fuzz FuzzParseExpr ./internal/pathexpr
func FuzzParseExpr(f *testing.F) {
	for _, seed := range []string{
		"p",
		"^p",
		"p1/p2",
		"a|b|c",
		"(l1|l2|l5)+",
		"p*",
		"p+?",
		"((a/b)|^c)*",
		"<http://example.org/p>",
		"!p",
		"!(a|^b)",
		"()",
		"()?",
		"^(a/b)",
		"a//b",
		"(((",
		"a|",
		"!",
		"<>",
		"<unterminated",
		"^",
		"  a  /  b  ",
		"\x00\xff",
		"pé",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(src)
		if err != nil {
			return // rejecting is fine; panicking is not
		}
		canon := String(n)
		n2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, src, err)
		}
		if got := String(n2); got != canon {
			t.Fatalf("canonical form not a fixpoint: %q -> %q -> %q", src, canon, got)
		}
	})
}
