package pathexpr

import (
	"reflect"
	"testing"
)

// canon parses src and returns the canonical rendering, failing the
// test on parse errors.
func canon(t *testing.T, src string) string {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return String(n)
}

// TestCanonicalEquivalenceClasses checks the property the service's
// caches rely on: syntactic variants of one expression (whitespace,
// redundant parentheses, normalised negated sets) canonicalise to the
// same string, so they share one compiled AST and one result-cache
// key.
func TestCanonicalEquivalenceClasses(t *testing.T) {
	classes := [][]string{
		{"a/b", "(a)/b", "a/(b)", "((a))/((b))", " a / b ", "(a/b)"},
		{"a/b*", "a/(b*)", "(a)/b*", "a/((b)*)"},
		{"a|b|c", "(a|b)|c", "((a|b))|c", " a |b| c"},
		{"(a|b)*", "((a|b))*", "( a | b )*"},
		{"^a/^b", "(^a)/(^b)", "^(b/a)"},
		{"a", "(a)", "((a))", "<a>"},
		{"()", "(())"},
		{"!(a|b)", "!(b|a)", "!(a|b|a)"}, // NegSet sorts and dedups names
		{"!^a", "!(^a)", "^!a"},
		{"a??", "(a?)?", "((a)?)?"},
	}
	for _, class := range classes {
		want := canon(t, class[0])
		for _, variant := range class[1:] {
			if got := canon(t, variant); got != want {
				t.Errorf("canon(%q) = %q, want %q (variant of %q)", variant, got, want, class[0])
			}
		}
	}
}

// TestCanonicalInequality checks that canonicalisation is purely
// syntactic: semantically related but structurally different
// expressions keep distinct keys (the result cache must not merge
// them, and does not need to).
func TestCanonicalInequality(t *testing.T) {
	pairs := [][2]string{
		{"a|b", "b|a"},         // alternation is not reordered
		{"a/(b/c)", "(a/b)/c"}, // associativity is preserved
		{"a*", "a**"},
		{"a+", "a/a*"},
		{"a?", "a|()"},
		{"!(a|b)", "!(a|c)"},
		{"!a", "!^a"},
	}
	for _, p := range pairs {
		if canon(t, p[0]) == canon(t, p[1]) {
			t.Errorf("canon(%q) == canon(%q) = %q; want distinct keys", p[0], p[1], canon(t, p[0]))
		}
	}
}

// TestCanonicalRoundTripDeep checks String/Parse round-trips
// structurally: reparsing the canonical form yields a deeply equal
// AST, and printing is a fixpoint. This is the contract that lets the
// canonical string stand in for the AST as a cache key.
func TestCanonicalRoundTripDeep(t *testing.T) {
	exprs := []string{
		"a",
		"^a",
		"a/b/c",
		"a/(b/c)",
		"a|b|c",
		"a|(b|c)",
		"(a|b)/(c|d)",
		"a*/b+/c?",
		"(a/b)*",
		"(a|^b)+",
		"^(a/b*)?",
		"()",
		"()|a",
		"<http://example.org/p#1>/b",
		"<weird name>/<a/b>",
		"!(a|b)/c",
		"!^p*",
		"a/!(p|q)/b",
		"p31/p279*",
		"((l1|l2|l5)+)?",
	}
	for _, src := range exprs {
		n1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		c1 := String(n1)
		n2, err := Parse(c1)
		if err != nil {
			t.Fatalf("Parse(canon %q = %q): %v", src, c1, err)
		}
		if !reflect.DeepEqual(n1, n2) {
			t.Errorf("round-trip of %q via %q changed the AST: %#v vs %#v", src, c1, n1, n2)
		}
		if c2 := String(n2); c2 != c1 {
			t.Errorf("canonical form of %q not a fixpoint: %q -> %q", src, c1, c2)
		}
	}
}
