package pathexpr

import (
	"reflect"
	"testing"
	"testing/quick"

	"math/rand"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"a",
		"^a",
		"a/b",
		"a|b",
		"a*",
		"a+",
		"a?",
		"(a|b)*",
		"a/b*/c",
		"(a/b)|c",
		"a/(b|c)/d",
		"^a/b+",
		"(a|b|c)+",
		"a**",
		"<http://example.org/p1>/<p2>",
		"l1|l2|l5",
		"wdt:P31/wdt:P279*",
	}
	for _, src := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		out := String(n)
		n2, err := Parse(out)
		if err != nil {
			t.Fatalf("reparse of String(%q)=%q: %v", src, out, err)
		}
		if String(n2) != out {
			t.Fatalf("print/parse not a fixpoint: %q -> %q -> %q", src, out, String(n2))
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// '|' binds loosest, '/' next, postfix tightest.
	n := MustParse("a|b/c*")
	alt, ok := n.(Alt)
	if !ok {
		t.Fatalf("a|b/c* parsed as %T, want Alt at top", n)
	}
	cat, ok := alt.R.(Concat)
	if !ok {
		t.Fatalf("right of | is %T, want Concat", alt.R)
	}
	if _, ok := cat.R.(Star); !ok {
		t.Fatalf("right of / is %T, want Star", cat.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "(", ")", "a|", "a/", "*", "a)(", "(a", "^", "a b", "<p",
		"<>", "a||b", "|a",
	}
	for _, src := range bad {
		if n, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded as %v, want error", src, String(n))
		}
	}
}

func TestEpsilon(t *testing.T) {
	n := MustParse("()")
	if _, ok := n.(Eps); !ok {
		t.Fatalf("() parsed as %T, want Eps", n)
	}
	if CountSyms(n) != 0 {
		t.Error("eps has symbols")
	}
}

func TestInverseOfAtoms(t *testing.T) {
	n := MustParse("^a")
	s, ok := n.(Sym)
	if !ok || !s.Inverse || s.Name != "a" {
		t.Fatalf("^a parsed as %#v", n)
	}
	if got := InverseOf(n).(Sym); got.Inverse || got.Name != "a" {
		t.Fatalf("InverseOf(^a)=%#v, want a", got)
	}
}

func TestInverseOfGroupRewrites(t *testing.T) {
	// ^(a/b) must become ^b/^a at parse time.
	n := MustParse("^(a/b)")
	want := MustParse("^b/^a")
	if !reflect.DeepEqual(n, want) {
		t.Fatalf("^(a/b) parsed as %s, want %s", String(n), String(want))
	}
	// Double inversion is identity.
	n2 := MustParse("^(^(a/b*))")
	if !reflect.DeepEqual(n2, MustParse("a/b*")) {
		t.Fatalf("double inverse = %s", String(n2))
	}
}

func TestInverseOfInvolution(t *testing.T) {
	f := func(seed int64) bool {
		n := randomExpr(rand.New(rand.NewSource(seed)), 4)
		return reflect.DeepEqual(InverseOf(InverseOf(n)), n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCountSyms(t *testing.T) {
	cases := map[string]int{
		"a":           1,
		"a/b*/b":      3,
		"(a|b)+/c?":   3,
		"^a/^a":       2,
		"()":          0,
		"(a|b|c)*/d":  4,
		"a?/b?/c?/d?": 4,
	}
	for src, want := range cases {
		if got := CountSyms(MustParse(src)); got != want {
			t.Errorf("CountSyms(%q)=%d, want %d", src, got, want)
		}
	}
}

func TestPredicates(t *testing.T) {
	n := MustParse("a/b*/^a/a|^c")
	got := Predicates(n)
	want := []Sym{{"a", false}, {"b", false}, {"a", true}, {"c", true}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Predicates=%v, want %v", got, want)
	}
}

func TestPattern(t *testing.T) {
	cases := []struct {
		expr string
		sc   bool
		oc   bool
		want string
	}{
		{"a/b*", false, true, "v /* c"},
		{"a*", false, true, "v * c"},
		{"a+", false, true, "v + c"},
		{"a*", true, false, "c * v"},
		{"a/b*", true, false, "c /* v"},
		{"a/b", false, true, "v / c"},
		{"a*/b*", false, true, "v */* c"},
		{"a/b", false, false, "v / v"},
		{"(a|b)*", false, true, "v |* c"},
		{"a|b", false, false, "v | v"},
		{"a*/b*/c*/d*/e*", false, true, "v */*/*/*/* c"},
		{"^a", false, false, "v ^ v"},
		{"a/b?", false, true, "v /? c"},
		{"a/b+", false, true, "v /+ c"},
		{"a|b|c", false, false, "v || v"},
		{"a/^b", false, false, "v /^ v"},
	}
	for _, c := range cases {
		if got := Pattern(c.sc, MustParse(c.expr), c.oc); got != c.want {
			t.Errorf("Pattern(%v,%q,%v) = %q, want %q", c.sc, c.expr, c.oc, got, c.want)
		}
	}
}

func TestStringParens(t *testing.T) {
	// String must parenthesise exactly enough to preserve structure.
	n := Concat{L: Alt{L: Sym{Name: "a"}, R: Sym{Name: "b"}}, R: Sym{Name: "c"}}
	if got := String(n); got != "(a|b)/c" {
		t.Errorf("String=%q, want (a|b)/c", got)
	}
	n2 := Star{X: Concat{L: Sym{Name: "a"}, R: Sym{Name: "b"}}}
	if got := String(n2); got != "(a/b)*" {
		t.Errorf("String=%q, want (a/b)*", got)
	}
}

// randomExpr builds a random expression tree of bounded depth.
func randomExpr(rng *rand.Rand, depth int) Node {
	if depth == 0 || rng.Intn(3) == 0 {
		return Sym{Name: string(rune('a' + rng.Intn(4))), Inverse: rng.Intn(4) == 0}
	}
	switch rng.Intn(5) {
	case 0:
		return Concat{L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 1:
		return Alt{L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 2:
		return Star{X: randomExpr(rng, depth-1)}
	case 3:
		return Plus{X: randomExpr(rng, depth-1)}
	default:
		return Opt{X: randomExpr(rng, depth-1)}
	}
}

func TestRandomRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		n := randomExpr(rand.New(rand.NewSource(seed)), 5)
		parsed, err := Parse(String(n))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(parsed, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWhitespaceTolerated(t *testing.T) {
	a := MustParse(" a / ( b | c ) * ")
	b := MustParse("a/(b|c)*")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("whitespace changes parse: %s vs %s", String(a), String(b))
	}
}
