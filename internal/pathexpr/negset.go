package pathexpr

import (
	"sort"
	"strings"
)

// NegSet is a SPARQL-style negated property set: it matches a single
// edge whose label has the given direction (forward, or inverse when
// Inverse is set) and whose base name is not listed. Following the
// SPARQL 1.1 semantics, a mixed set !(p1|^p2) is split at parse time
// into !(p1) | !(^p2), so every NegSet is direction-homogeneous.
//
// The paper's §6 points out that the bit-parallel Glushkov simulation
// handles such symbol classes without enlarging the NFA: a NegSet is a
// single automaton position whose B-membership is computed per symbol.
type NegSet struct {
	// Inverse selects which direction of edge labels the set ranges
	// over.
	Inverse bool
	// Names lists the excluded base predicate names, sorted.
	Names []string
}

// Excludes reports whether the (name, inverse) label is excluded — i.e.
// the label has the set's direction but is listed.
func (n NegSet) Excludes(name string) bool {
	i := sort.SearchStrings(n.Names, name)
	return i < len(n.Names) && n.Names[i] == name
}

// MatchesSym reports whether a single edge label matches the set.
func (n NegSet) MatchesSym(s Sym) bool {
	return s.Inverse == n.Inverse && !n.Excludes(s.Name)
}

func (n NegSet) writeTo(sb exprWriter, prec int) {
	sb.WriteByte('!')
	if len(n.Names) == 1 {
		if n.Inverse {
			sb.WriteByte('^')
		}
		writeName(sb, n.Names[0])
		return
	}
	sb.WriteByte('(')
	for i, name := range n.Names {
		if i > 0 {
			sb.WriteByte('|')
		}
		if n.Inverse {
			sb.WriteByte('^')
		}
		writeName(sb, name)
	}
	sb.WriteByte(')')
}

func writeName(sb exprWriter, name string) {
	if identLike(name) {
		sb.WriteString(name)
	} else {
		sb.WriteByte('<')
		sb.WriteString(name)
		sb.WriteByte('>')
	}
}

func (n NegSet) pattern(sb *strings.Builder) { sb.WriteByte('!') }

// newNegSet normalises a member list into the Alt-of-NegSets form:
// members are grouped by direction, names sorted and deduplicated.
func newNegSet(members []Sym) Node {
	var fwd, inv []string
	for _, m := range members {
		if m.Inverse {
			inv = append(inv, m.Name)
		} else {
			fwd = append(fwd, m.Name)
		}
	}
	normalize := func(names []string, inverse bool) Node {
		sort.Strings(names)
		names = dedupStrings(names)
		return NegSet{Inverse: inverse, Names: names}
	}
	switch {
	case len(inv) == 0:
		return normalize(fwd, false)
	case len(fwd) == 0:
		return normalize(inv, true)
	default:
		return Alt{L: normalize(fwd, false), R: normalize(inv, true)}
	}
}

func dedupStrings(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// ExpandNegSets rewrites every negated property set into an alternation
// of the concrete predicates it matches, as supplied by expand. Systems
// without native class support (the baselines) use this to stay
// comparable; a set matching nothing becomes an unresolvable symbol, so
// it correctly never fires.
func ExpandNegSets(n Node, expand func(NegSet) []Sym) Node {
	switch x := n.(type) {
	case NegSet:
		syms := expand(x)
		if len(syms) == 0 {
			return Sym{Name: "\x00nothing"}
		}
		var out Node = syms[0]
		for _, s := range syms[1:] {
			out = Alt{L: out, R: s}
		}
		return out
	case Concat:
		return Concat{L: ExpandNegSets(x.L, expand), R: ExpandNegSets(x.R, expand)}
	case Alt:
		return Alt{L: ExpandNegSets(x.L, expand), R: ExpandNegSets(x.R, expand)}
	case Star:
		return Star{X: ExpandNegSets(x.X, expand)}
	case Plus:
		return Plus{X: ExpandNegSets(x.X, expand)}
	case Opt:
		return Opt{X: ExpandNegSets(x.X, expand)}
	default:
		return n
	}
}

// HasNegSets reports whether the expression contains a negated property
// set.
func HasNegSets(n Node) bool {
	switch x := n.(type) {
	case NegSet:
		return true
	case Concat:
		return HasNegSets(x.L) || HasNegSets(x.R)
	case Alt:
		return HasNegSets(x.L) || HasNegSets(x.R)
	case Star:
		return HasNegSets(x.X)
	case Plus:
		return HasNegSets(x.X)
	case Opt:
		return HasNegSets(x.X)
	default:
		return false
	}
}
