package pathexpr

// Matches reports whether the word (a sequence of edge labels) belongs to
// the language of n. It is a direct recursive implementation of the
// language semantics of §3.1, intended as an executable specification for
// cross-checking the automata packages; its cost can be exponential in
// the word length, so use it only on short words.
func Matches(n Node, word []Sym) bool {
	return matches(n, word)
}

func matches(n Node, w []Sym) bool {
	switch x := n.(type) {
	case Sym:
		return len(w) == 1 && w[0] == x
	case NegSet:
		return len(w) == 1 && x.MatchesSym(w[0])
	case Eps:
		return len(w) == 0
	case Concat:
		for i := 0; i <= len(w); i++ {
			if matches(x.L, w[:i]) && matches(x.R, w[i:]) {
				return true
			}
		}
		return false
	case Alt:
		return matches(x.L, w) || matches(x.R, w)
	case Star:
		if len(w) == 0 {
			return true
		}
		// Try non-empty first chunks only, to guarantee progress.
		for i := 1; i <= len(w); i++ {
			if matches(x.X, w[:i]) && matches(Star{X: x.X}, w[i:]) {
				return true
			}
		}
		return false
	case Plus:
		return matches(Concat{L: x.X, R: Star{X: x.X}}, w)
	case Opt:
		return len(w) == 0 || matches(x.X, w)
	default:
		return false
	}
}
