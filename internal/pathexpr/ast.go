// Package pathexpr parses and manipulates the regular expressions of
// two-way regular path queries (2RPQs, paper §3.1). Expressions are built
// from edge labels (predicates) and their inverses (^p), concatenation
// (E1/E2), alternation (E1|E2), Kleene closure (E*), E+ = E*/E, and
// E? = ε|E. A two-way expression is rewritten to atomic inverses at parse
// time, so the engine only ever sees symbols over Σ↔.
package pathexpr

import (
	"fmt"
	"strings"
)

// exprWriter is the sink canonical rendering writes into; satisfied by
// *strings.Builder (String) and *KeyWriter (reusable buffers).
type exprWriter interface {
	WriteByte(byte) error
	WriteString(string) (int, error)
}

// Node is an expression-tree node. Implementations: Sym, Eps, Concat,
// Alt, Star, Plus, Opt.
type Node interface {
	// writeTo appends the canonical textual form, parenthesised according
	// to prec, the binding power of the context.
	writeTo(sb exprWriter, prec int)
	// pattern appends the operator-skeleton form used by the Table 1
	// classifier (predicates erased, operators kept).
	pattern(sb *strings.Builder)
}

// Sym is a single predicate occurrence, optionally inverted.
type Sym struct {
	Name    string
	Inverse bool
}

// Eps matches the empty path.
type Eps struct{}

// Concat matches L followed by R (written L/R).
type Concat struct{ L, R Node }

// Alt matches L or R (written L|R).
type Alt struct{ L, R Node }

// Star matches zero or more repetitions of X.
type Star struct{ X Node }

// Plus matches one or more repetitions of X.
type Plus struct{ X Node }

// Opt matches X or the empty path.
type Opt struct{ X Node }

// Binding powers: alternation < concatenation < postfix.
const (
	precAlt = iota
	precConcat
	precPostfix
)

func (s Sym) writeTo(sb exprWriter, prec int) {
	if s.Inverse {
		sb.WriteByte('^')
	}
	if identLike(s.Name) {
		sb.WriteString(s.Name)
	} else {
		sb.WriteByte('<')
		sb.WriteString(s.Name)
		sb.WriteByte('>')
	}
}

// identLike reports whether name can be printed bare and reparsed.
func identLike(name string) bool {
	if name == "" || name[0] == '-' {
		return false
	}
	for i := 0; i < len(name); i++ {
		if !isIdentByte(name[i]) {
			return false
		}
	}
	return true
}

func (Eps) writeTo(sb exprWriter, prec int) { sb.WriteString("()") }

func (c Concat) writeTo(sb exprWriter, prec int) {
	if prec > precConcat {
		sb.WriteByte('(')
	}
	c.L.writeTo(sb, precConcat)
	sb.WriteByte('/')
	// The parser is left-associative, so a right-nested concat needs
	// explicit parentheses to round-trip.
	c.R.writeTo(sb, precConcat+1)
	if prec > precConcat {
		sb.WriteByte(')')
	}
}

func (a Alt) writeTo(sb exprWriter, prec int) {
	if prec > precAlt {
		sb.WriteByte('(')
	}
	a.L.writeTo(sb, precAlt)
	sb.WriteByte('|')
	a.R.writeTo(sb, precAlt+1)
	if prec > precAlt {
		sb.WriteByte(')')
	}
}

func (s Star) writeTo(sb exprWriter, prec int) {
	s.X.writeTo(sb, precPostfix+1)
	sb.WriteByte('*')
}

func (p Plus) writeTo(sb exprWriter, prec int) {
	p.X.writeTo(sb, precPostfix+1)
	sb.WriteByte('+')
}

func (o Opt) writeTo(sb exprWriter, prec int) {
	o.X.writeTo(sb, precPostfix+1)
	sb.WriteByte('?')
}

// String renders a node in the canonical syntax accepted by Parse.
func String(n Node) string {
	var sb strings.Builder
	n.writeTo(&sb, precAlt)
	return sb.String()
}

// KeyWriter renders canonical expression strings into a buffer it
// reuses across calls. Hot paths that memoise per-expression state key
// their maps by canonical form; looking up with string(w.Key(n)) does
// not copy, so a long-lived KeyWriter makes repeat lookups
// allocation-free where String would allocate every call.
type KeyWriter struct{ buf []byte }

// WriteByte implements exprWriter.
func (w *KeyWriter) WriteByte(c byte) error {
	w.buf = append(w.buf, c)
	return nil
}

// WriteString implements exprWriter.
func (w *KeyWriter) WriteString(s string) (int, error) {
	w.buf = append(w.buf, s...)
	return len(s), nil
}

// Key returns n's canonical form in w's buffer; the slice is only
// valid until the next Key call.
func (w *KeyWriter) Key(n Node) []byte {
	w.buf = w.buf[:0]
	n.writeTo(w, precAlt)
	return w.buf
}

// InverseOf returns Ê, matching exactly the reverses of the paths matched
// by n: concatenations are flipped and atoms inverted (§3.1, §4).
func InverseOf(n Node) Node {
	switch x := n.(type) {
	case Sym:
		return Sym{Name: x.Name, Inverse: !x.Inverse}
	case NegSet:
		// The reverse of "a forward edge not labelled p1..pk" is "an
		// inverse edge not labelled ^p1..^pk", and vice versa.
		return NegSet{Inverse: !x.Inverse, Names: x.Names}
	case Eps:
		return x
	case Concat:
		return Concat{L: InverseOf(x.R), R: InverseOf(x.L)}
	case Alt:
		return Alt{L: InverseOf(x.L), R: InverseOf(x.R)}
	case Star:
		return Star{X: InverseOf(x.X)}
	case Plus:
		return Plus{X: InverseOf(x.X)}
	case Opt:
		return Opt{X: InverseOf(x.X)}
	default:
		panic(fmt.Sprintf("pathexpr: unknown node %T", n))
	}
}

// CountSyms reports the number of predicate occurrences (the m of §3.3).
func CountSyms(n Node) int {
	switch x := n.(type) {
	case Sym:
		return 1
	case NegSet:
		return 1 // one automaton position, however many names it excludes
	case Eps:
		return 0
	case Concat:
		return CountSyms(x.L) + CountSyms(x.R)
	case Alt:
		return CountSyms(x.L) + CountSyms(x.R)
	case Star:
		return CountSyms(x.X)
	case Plus:
		return CountSyms(x.X)
	case Opt:
		return CountSyms(x.X)
	default:
		panic(fmt.Sprintf("pathexpr: unknown node %T", n))
	}
}

// Predicates returns the distinct predicate occurrences (name, inverse)
// in order of first appearance.
func Predicates(n Node) []Sym {
	var out []Sym
	seen := map[Sym]bool{}
	var walk func(Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case Sym:
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		case Concat:
			walk(x.L)
			walk(x.R)
		case Alt:
			walk(x.L)
			walk(x.R)
		case Star:
			walk(x.X)
		case Plus:
			walk(x.X)
		case Opt:
			walk(x.X)
		}
	}
	walk(n)
	return out
}

func (s Sym) pattern(sb *strings.Builder) {
	if s.Inverse {
		sb.WriteByte('^')
	}
}
func (Eps) pattern(sb *strings.Builder) {}
func (c Concat) pattern(sb *strings.Builder) {
	c.L.pattern(sb)
	sb.WriteByte('/')
	c.R.pattern(sb)
}
func (a Alt) pattern(sb *strings.Builder) {
	a.L.pattern(sb)
	sb.WriteByte('|')
	a.R.pattern(sb)
}
func (s Star) pattern(sb *strings.Builder) {
	s.X.pattern(sb)
	sb.WriteByte('*')
}
func (p Plus) pattern(sb *strings.Builder) {
	p.X.pattern(sb)
	sb.WriteByte('+')
}
func (o Opt) pattern(sb *strings.Builder) {
	o.X.pattern(sb)
	sb.WriteByte('?')
}

// Pattern classifies an RPQ into the notation of Table 1: subject/object
// constness ("c" or "v") around the operator skeleton of the expression,
// e.g. (x, p1/p2*, Baq) → "v /* c".
func Pattern(subjectConst bool, n Node, objectConst bool) string {
	var sb strings.Builder
	if subjectConst {
		sb.WriteString("c ")
	} else {
		sb.WriteString("v ")
	}
	n.pattern(&sb)
	if objectConst {
		sb.WriteString(" c")
	} else {
		sb.WriteString(" v")
	}
	return sb.String()
}
