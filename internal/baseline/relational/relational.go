// Package relational evaluates RPQs the way a relational engine with a
// transitive-closure operator does (paper §5: Virtuoso translates
// property paths to its relational engine). Expressions compile
// bottom-up to pair relations: atoms select per-predicate relations,
// concatenation is a hash join, alternation a union, and Kleene closures
// run semi-naive fixpoint iteration. Constant endpoints are pushed into
// the plan as seeds, the optimisation that makes Virtuoso competitive on
// c-to-v queries while unbounded v-to-v closures stay expensive.
package relational

import (
	"sort"
	"time"

	"ringrpq/internal/pathexpr"
	"ringrpq/internal/triples"
)

// Index stores per-predicate pair relations sorted by subject.
type Index struct {
	nv   int
	rels map[uint32][]pair // keyed by completed predicate id
	g    *triples.Graph
}

type pair struct{ s, o uint32 }

// New indexes the completed graph g.
func New(g *triples.Graph) *Index {
	ix := &Index{nv: g.NumNodes(), rels: map[uint32][]pair{}, g: g}
	for _, t := range g.Triples {
		ix.rels[t.P] = append(ix.rels[t.P], pair{t.S, t.O})
	}
	for p := range ix.rels {
		rel := ix.rels[p]
		sort.Slice(rel, func(i, j int) bool {
			if rel[i].s != rel[j].s {
				return rel[i].s < rel[j].s
			}
			return rel[i].o < rel[j].o
		})
	}
	return ix
}

// SizeBytes reports the index footprint.
func (ix *Index) SizeBytes() int {
	sz := 64
	for _, rel := range ix.rels {
		sz += 8*len(rel) + 48
	}
	return sz
}

// Options mirror core.Options.
type Options struct {
	Limit   int
	Timeout time.Duration
}

// ErrTimeout reports an exceeded timeout.
var ErrTimeout = errTimeout{}

type errTimeout struct{}

func (errTimeout) Error() string { return "relational: query timeout" }

// Eval evaluates the 2RPQ (subject, expr, object); endpoints are node ids
// or -1 for variables.
func (ix *Index) Eval(subject int64, expr pathexpr.Node, object int64, opts Options, emit func(s, o uint32) bool) error {
	expr = expandNegSets(expr, ix.g)
	e := &eval{ix: ix}
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
	}

	var rel map[pair]bool
	var err error
	switch {
	case subject >= 0:
		rel, err = e.seeded(expr, []uint32{uint32(subject)})
	case object >= 0:
		rel, err = e.seeded(pathexpr.InverseOf(expr), []uint32{uint32(object)})
		if err == nil {
			flipped := make(map[pair]bool, len(rel))
			for p := range rel {
				flipped[pair{p.o, p.s}] = true
			}
			rel = flipped
		}
	default:
		rel, err = e.full(expr)
	}
	if err != nil {
		return err
	}

	count := 0
	for p := range rel {
		if subject >= 0 && int64(p.s) != subject {
			continue
		}
		if object >= 0 && int64(p.o) != object {
			continue
		}
		count++
		if !emit(p.s, p.o) {
			return nil
		}
		if opts.Limit > 0 && count >= opts.Limit {
			return nil
		}
	}
	return nil
}

type eval struct {
	ix       *Index
	steps    int
	deadline time.Time
}

func (e *eval) tick(work int) error {
	e.steps += work
	if e.deadline.IsZero() {
		return nil
	}
	if e.steps > 1024 {
		e.steps = 0
		if time.Now().After(e.deadline) {
			return ErrTimeout
		}
	}
	return nil
}

// identity is the zero-length relation over all nodes.
func (e *eval) identity() map[pair]bool {
	out := make(map[pair]bool, e.ix.nv)
	for v := 0; v < e.ix.nv; v++ {
		out[pair{uint32(v), uint32(v)}] = true
	}
	return out
}

// full materialises the complete relation of expr.
func (e *eval) full(n pathexpr.Node) (map[pair]bool, error) {
	if err := e.tick(1); err != nil {
		return nil, err
	}
	switch x := n.(type) {
	case pathexpr.Sym:
		out := map[pair]bool{}
		if p, ok := e.ix.g.PredID(x.Name, x.Inverse); ok {
			for _, pr := range e.ix.rels[p] {
				out[pr] = true
			}
		}
		return out, nil
	case pathexpr.Eps:
		return e.identity(), nil
	case pathexpr.Concat:
		l, err := e.full(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.full(x.R)
		if err != nil {
			return nil, err
		}
		return e.join(l, r)
	case pathexpr.Alt:
		l, err := e.full(x.L)
		if err != nil {
			return nil, err
		}
		r, err := e.full(x.R)
		if err != nil {
			return nil, err
		}
		for p := range r {
			l[p] = true
		}
		return l, nil
	case pathexpr.Star:
		r, err := e.full(x.X)
		if err != nil {
			return nil, err
		}
		tc, err := e.transitiveClosure(r)
		if err != nil {
			return nil, err
		}
		for p := range e.identity() {
			tc[p] = true
		}
		return tc, nil
	case pathexpr.Plus:
		r, err := e.full(x.X)
		if err != nil {
			return nil, err
		}
		return e.transitiveClosure(r)
	case pathexpr.Opt:
		r, err := e.full(x.X)
		if err != nil {
			return nil, err
		}
		for p := range e.identity() {
			r[p] = true
		}
		return r, nil
	default:
		panic("relational: unknown node")
	}
}

// join hash-joins l.o = r.s.
func (e *eval) join(l, r map[pair]bool) (map[pair]bool, error) {
	byS := map[uint32][]uint32{}
	for p := range r {
		byS[p.s] = append(byS[p.s], p.o)
	}
	out := map[pair]bool{}
	for p := range l {
		if err := e.tick(1 + len(byS[p.o])); err != nil {
			return nil, err
		}
		for _, o := range byS[p.o] {
			out[pair{p.s, o}] = true
		}
	}
	return out, nil
}

// transitiveClosure is the semi-naive fixpoint: Δ₀ = R,
// Δᵢ₊₁ = (Δᵢ ⋈ R) − acc.
func (e *eval) transitiveClosure(r map[pair]bool) (map[pair]bool, error) {
	byS := map[uint32][]uint32{}
	for p := range r {
		byS[p.s] = append(byS[p.s], p.o)
	}
	acc := make(map[pair]bool, len(r))
	delta := make(map[pair]bool, len(r))
	for p := range r {
		acc[p] = true
		delta[p] = true
	}
	for len(delta) > 0 {
		next := map[pair]bool{}
		for p := range delta {
			if err := e.tick(1 + len(byS[p.o])); err != nil {
				return nil, err
			}
			for _, o := range byS[p.o] {
				np := pair{p.s, o}
				if !acc[np] {
					acc[np] = true
					next[np] = true
				}
			}
		}
		delta = next
	}
	return acc, nil
}

// seeded evaluates expr restricted to the given source nodes, pushing the
// constant down the plan.
func (e *eval) seeded(n pathexpr.Node, sources []uint32) (map[pair]bool, error) {
	if err := e.tick(len(sources)); err != nil {
		return nil, err
	}
	switch x := n.(type) {
	case pathexpr.Sym:
		out := map[pair]bool{}
		p, ok := e.ix.g.PredID(x.Name, x.Inverse)
		if !ok {
			return out, nil
		}
		rel := e.ix.rels[p]
		for _, s := range sources {
			lo := sort.Search(len(rel), func(i int) bool { return rel[i].s >= s })
			for ; lo < len(rel) && rel[lo].s == s; lo++ {
				out[rel[lo]] = true
			}
		}
		return out, nil
	case pathexpr.Eps:
		return e.seedIdentity(sources), nil
	case pathexpr.Concat:
		l, err := e.seeded(x.L, sources)
		if err != nil {
			return nil, err
		}
		mids := objectsOf(l)
		r, err := e.seeded(x.R, mids)
		if err != nil {
			return nil, err
		}
		return e.join(l, r)
	case pathexpr.Alt:
		l, err := e.seeded(x.L, sources)
		if err != nil {
			return nil, err
		}
		r, err := e.seeded(x.R, sources)
		if err != nil {
			return nil, err
		}
		for p := range r {
			l[p] = true
		}
		return l, nil
	case pathexpr.Star:
		return e.seededClosure(x.X, sources, true)
	case pathexpr.Plus:
		return e.seededClosure(x.X, sources, false)
	case pathexpr.Opt:
		r, err := e.seeded(x.X, sources)
		if err != nil {
			return nil, err
		}
		for p := range e.seedIdentity(sources) {
			r[p] = true
		}
		return r, nil
	default:
		panic("relational: unknown node")
	}
}

func (e *eval) seedIdentity(sources []uint32) map[pair]bool {
	out := make(map[pair]bool, len(sources))
	for _, s := range sources {
		if int(s) < e.ix.nv {
			out[pair{s, s}] = true
		}
	}
	return out
}

// seededClosure runs the fixpoint from the seeds only.
func (e *eval) seededClosure(x pathexpr.Node, sources []uint32, reflexive bool) (map[pair]bool, error) {
	acc := map[pair]bool{}
	delta := e.seedIdentity(sources)
	if reflexive {
		for p := range delta {
			acc[p] = true
		}
	}
	for len(delta) > 0 {
		step, err := e.seeded(x, objectsOf(delta))
		if err != nil {
			return nil, err
		}
		joined, err := e.join(delta, step)
		if err != nil {
			return nil, err
		}
		next := map[pair]bool{}
		for p := range joined {
			if !acc[p] {
				acc[p] = true
				next[p] = true
			}
		}
		delta = next
	}
	return acc, nil
}

// objectsOf collects the distinct objects of a relation.
func objectsOf(rel map[pair]bool) []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for p := range rel {
		if !seen[p.o] {
			seen[p.o] = true
			out = append(out, p.o)
		}
	}
	return out
}

// expandNegSets rewrites negated property sets into explicit
// alternations over the graph's predicates.
func expandNegSets(n pathexpr.Node, g *triples.Graph) pathexpr.Node {
	if !pathexpr.HasNegSets(n) {
		return n
	}
	return pathexpr.ExpandNegSets(n, func(ns pathexpr.NegSet) []pathexpr.Sym {
		var out []pathexpr.Sym
		for i := uint32(0); i < g.NumPreds; i++ {
			name := g.Preds.Name(i)
			if !ns.Excludes(name) {
				out = append(out, pathexpr.Sym{Name: name, Inverse: ns.Inverse})
			}
		}
		return out
	})
}
