package relational

import (
	"math/rand"
	"reflect"
	"testing"

	"ringrpq/internal/enginetest"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/triples"
)

func check(t *testing.T, g *triples.Graph, ix *Index, s int64, expr string, o int64) {
	t.Helper()
	var got []enginetest.Pair
	err := ix.Eval(s, pathexpr.MustParse(expr), o, Options{}, func(s, o uint32) bool {
		got = append(got, enginetest.Pair{S: s, O: o})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := enginetest.SortPairs(enginetest.Oracle(g, s, pathexpr.MustParse(expr), o))
	gotS := enginetest.SortPairs(got)
	if len(gotS) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(gotS, want) {
		t.Fatalf("(%d,%s,%d): got %v, want %v", s, expr, o, gotS, want)
	}
}

func TestMetroAgainstOracle(t *testing.T) {
	g := enginetest.Metro()
	ix := New(g)
	sa, _ := g.Nodes.Lookup("SA")
	baq, _ := g.Nodes.Lookup("Baq")
	for _, expr := range []string{
		"l1", "^bus", "l5+/bus", "(l1|l2|l5)+", "l1*", "l1/l2", "bus|l5", "(l1/l2)+",
	} {
		for _, ends := range [][2]int64{
			{-1, -1}, {int64(sa), -1}, {-1, int64(baq)}, {int64(sa), int64(baq)},
		} {
			check(t, g, ix, ends[0], expr, ends[1])
		}
	}
}

func TestRandomAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 300))
		g := enginetest.RandomGraph(seed+300, 10+rng.Intn(8), 3, 35+rng.Intn(30))
		ix := New(g)
		for trial := 0; trial < 4; trial++ {
			expr := pathexpr.String(enginetest.RandomExpr(rng, 3, 3))
			s := int64(rng.Intn(g.NumNodes()))
			o := int64(rng.Intn(g.NumNodes()))
			check(t, g, ix, -1, expr, -1)
			check(t, g, ix, s, expr, -1)
			check(t, g, ix, -1, expr, o)
			check(t, g, ix, s, expr, o)
		}
	}
}

// The seeded plan must agree with the full materialisation.
func TestSeededMatchesFull(t *testing.T) {
	g := enginetest.RandomGraph(11, 14, 3, 70)
	ix := New(g)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		expr := enginetest.RandomExpr(rng, 3, 3)
		s := int64(rng.Intn(g.NumNodes()))
		var viaSeed, viaFull []enginetest.Pair
		if err := ix.Eval(s, expr, -1, Options{}, func(a, b uint32) bool {
			viaSeed = append(viaSeed, enginetest.Pair{S: a, O: b})
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if err := ix.Eval(-1, expr, -1, Options{}, func(a, b uint32) bool {
			if int64(a) == s {
				viaFull = append(viaFull, enginetest.Pair{S: a, O: b})
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		a := enginetest.SortPairs(viaSeed)
		b := enginetest.SortPairs(viaFull)
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s from %d: seeded=%v full=%v", pathexpr.String(expr), s, a, b)
		}
	}
}

func TestTimeout(t *testing.T) {
	g := enginetest.RandomGraph(9, 400, 2, 8000)
	ix := New(g)
	err := ix.Eval(-1, pathexpr.MustParse("(pa|pb)*"), -1, Options{Timeout: 1},
		func(s, o uint32) bool { return true })
	if err != ErrTimeout {
		t.Fatalf("err=%v, want ErrTimeout", err)
	}
}

func TestLimit(t *testing.T) {
	g := enginetest.RandomGraph(7, 20, 2, 120)
	ix := New(g)
	count := 0
	err := ix.Eval(-1, pathexpr.MustParse("pa*"), -1, Options{Limit: 5}, func(s, o uint32) bool {
		count++
		return true
	})
	if err != nil || count != 5 {
		t.Fatalf("limit: count=%d err=%v", count, err)
	}
}

func TestSizeBytes(t *testing.T) {
	g := enginetest.Metro()
	if New(g).SizeBytes() < 8*g.Len() {
		t.Fatal("SizeBytes implausibly small")
	}
}
