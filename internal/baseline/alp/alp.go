// Package alp evaluates property paths the way the SPARQL 1.1 standard
// prescribes and Jena implements (paper §5): fixed-length sub-paths are
// evaluated as joins over predicate-sorted triple indexes, and
// arbitrary-length sub-paths (* and +) run the spec's ALP procedure — a
// BFS with a visited set per start binding. Variable-to-variable closures
// iterate ALP over every graph node, which is exactly why such queries
// time out on Jena in the paper's benchmark.
package alp

import (
	"sort"
	"time"

	"ringrpq/internal/pathexpr"
	"ringrpq/internal/triples"
)

// Index holds PSO- and POS-sorted copies of the completed triples, the
// four predicate-keyed orders of Wang et al. collapsing to two because
// the graph is completed with inverses.
type Index struct {
	nv  int
	pso []triples.Triple
	pos []triples.Triple
	g   *triples.Graph
}

// New indexes the completed graph g.
func New(g *triples.Graph) *Index {
	ix := &Index{nv: g.NumNodes(), g: g}
	ix.pso = append([]triples.Triple(nil), g.Triples...)
	sort.Slice(ix.pso, func(i, j int) bool {
		a, b := ix.pso[i], ix.pso[j]
		if a.P != b.P {
			return a.P < b.P
		}
		if a.S != b.S {
			return a.S < b.S
		}
		return a.O < b.O
	})
	ix.pos = append([]triples.Triple(nil), g.Triples...)
	sort.Slice(ix.pos, func(i, j int) bool {
		a, b := ix.pos[i], ix.pos[j]
		if a.P != b.P {
			return a.P < b.P
		}
		if a.O != b.O {
			return a.O < b.O
		}
		return a.S < b.S
	})
	return ix
}

// SizeBytes reports the index footprint.
func (ix *Index) SizeBytes() int { return 12*(len(ix.pso)+len(ix.pos)) + 64 }

// objects lists the o with (s, p, o) ∈ G.
func (ix *Index) objects(p, s uint32) []uint32 {
	lo := sort.Search(len(ix.pso), func(i int) bool {
		t := ix.pso[i]
		return t.P > p || (t.P == p && t.S >= s)
	})
	var out []uint32
	for i := lo; i < len(ix.pso) && ix.pso[i].P == p && ix.pso[i].S == s; i++ {
		out = append(out, ix.pso[i].O)
	}
	return out
}

// subjects lists the s with (s, p, o) ∈ G.
func (ix *Index) subjects(p, o uint32) []uint32 {
	lo := sort.Search(len(ix.pos), func(i int) bool {
		t := ix.pos[i]
		return t.P > p || (t.P == p && t.O >= o)
	})
	var out []uint32
	for i := lo; i < len(ix.pos) && ix.pos[i].P == p && ix.pos[i].O == o; i++ {
		out = append(out, ix.pos[i].S)
	}
	return out
}

// predPairs lists all (s, o) with predicate p.
func (ix *Index) predPairs(p uint32) []triples.Triple {
	lo := sort.Search(len(ix.pso), func(i int) bool { return ix.pso[i].P >= p })
	hi := sort.Search(len(ix.pso), func(i int) bool { return ix.pso[i].P > p })
	return ix.pso[lo:hi]
}

// Options mirror core.Options.
type Options struct {
	Limit   int
	Timeout time.Duration
}

// ErrTimeout reports an exceeded timeout.
var ErrTimeout = errTimeout{}

type errTimeout struct{}

func (errTimeout) Error() string { return "alp: query timeout" }

// Eval evaluates the 2RPQ (subject, expr, object); endpoints are node ids
// or -1 for variables. Distinct pairs are emitted (DISTINCT semantics).
func (ix *Index) Eval(subject int64, expr pathexpr.Node, object int64, opts Options, emit func(s, o uint32) bool) error {
	expr = expandNegSets(expr, ix.g)
	e := &eval{ix: ix, limit: opts.Limit, emit: emit, seen: map[[2]uint32]bool{}}
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
	}
	pairs, err := e.path(expr, subject, object)
	if err != nil {
		return err
	}
	for _, p := range pairs {
		if !e.send(p[0], p[1]) {
			return nil
		}
	}
	return nil
}

type eval struct {
	ix       *Index
	limit    int
	count    int
	steps    int
	deadline time.Time
	emit     func(s, o uint32) bool
	seen     map[[2]uint32]bool
}

func (e *eval) send(s, o uint32) bool {
	k := [2]uint32{s, o}
	if e.seen[k] {
		return true
	}
	e.seen[k] = true
	e.count++
	if !e.emit(s, o) {
		return false
	}
	return e.limit == 0 || e.count < e.limit
}

func (e *eval) tick() error {
	e.steps++
	if e.deadline.IsZero() || e.steps%1024 != 0 {
		return nil
	}
	if time.Now().After(e.deadline) {
		return ErrTimeout
	}
	return nil
}

// path evaluates expr under the given bindings, returning distinct pairs.
func (e *eval) path(n pathexpr.Node, s, o int64) ([][2]uint32, error) {
	if err := e.tick(); err != nil {
		return nil, err
	}
	switch x := n.(type) {
	case pathexpr.Sym:
		return e.atom(x, s, o)
	case pathexpr.Eps:
		return e.zeroLength(s, o), nil
	case pathexpr.Concat:
		// Evaluate the bound side first; SPARQL engines pick the more
		// selective end — we prefer a bound subject, then a bound object.
		if s >= 0 || o < 0 {
			left, err := e.path(x.L, s, -1)
			if err != nil {
				return nil, err
			}
			return e.joinRight(left, x.R, o)
		}
		right, err := e.path(x.R, -1, o)
		if err != nil {
			return nil, err
		}
		return e.joinLeft(x.L, right, s)
	case pathexpr.Alt:
		l, err := e.path(x.L, s, o)
		if err != nil {
			return nil, err
		}
		r, err := e.path(x.R, s, o)
		if err != nil {
			return nil, err
		}
		return dedup(append(l, r...)), nil
	case pathexpr.Star:
		return e.closure(x.X, s, o, true)
	case pathexpr.Plus:
		return e.closure(x.X, s, o, false)
	case pathexpr.Opt:
		ps, err := e.path(x.X, s, o)
		if err != nil {
			return nil, err
		}
		return dedup(append(ps, e.zeroLength(s, o)...)), nil
	default:
		panic("alp: unknown node")
	}
}

// zeroLength implements the spec's zero-length path semantics: every
// node relates to itself.
func (e *eval) zeroLength(s, o int64) [][2]uint32 {
	switch {
	case s >= 0 && o >= 0:
		if s == o && int(s) < e.ix.nv {
			return [][2]uint32{{uint32(s), uint32(o)}}
		}
		return nil
	case s >= 0:
		if int(s) < e.ix.nv {
			return [][2]uint32{{uint32(s), uint32(s)}}
		}
		return nil
	case o >= 0:
		if int(o) < e.ix.nv {
			return [][2]uint32{{uint32(o), uint32(o)}}
		}
		return nil
	default:
		out := make([][2]uint32, e.ix.nv)
		for v := 0; v < e.ix.nv; v++ {
			out[v] = [2]uint32{uint32(v), uint32(v)}
		}
		return out
	}
}

func (e *eval) atom(x pathexpr.Sym, s, o int64) ([][2]uint32, error) {
	p, ok := e.ix.g.PredID(x.Name, x.Inverse)
	if !ok {
		return nil, nil
	}
	switch {
	case s >= 0 && o >= 0:
		for _, obj := range e.ix.objects(p, uint32(s)) {
			if int64(obj) == o {
				return [][2]uint32{{uint32(s), uint32(o)}}, nil
			}
		}
		return nil, nil
	case s >= 0:
		var out [][2]uint32
		for _, obj := range e.ix.objects(p, uint32(s)) {
			out = append(out, [2]uint32{uint32(s), obj})
		}
		return out, nil
	case o >= 0:
		var out [][2]uint32
		for _, sub := range e.ix.subjects(p, uint32(o)) {
			out = append(out, [2]uint32{sub, uint32(o)})
		}
		return out, nil
	default:
		ts := e.ix.predPairs(p)
		out := make([][2]uint32, len(ts))
		for i, t := range ts {
			out[i] = [2]uint32{t.S, t.O}
		}
		return out, nil
	}
}

// joinRight extends (s, mid) pairs through expr towards o.
func (e *eval) joinRight(left [][2]uint32, expr pathexpr.Node, o int64) ([][2]uint32, error) {
	// Group by mid to evaluate each distinct continuation once.
	mids := map[uint32][]uint32{}
	for _, p := range left {
		mids[p[1]] = append(mids[p[1]], p[0])
	}
	var out [][2]uint32
	for mid, sources := range mids {
		rs, err := e.path(expr, int64(mid), o)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			for _, src := range sources {
				out = append(out, [2]uint32{src, r[1]})
			}
		}
	}
	return dedup(out), nil
}

// joinLeft extends expr towards a bound object side.
func (e *eval) joinLeft(expr pathexpr.Node, right [][2]uint32, s int64) ([][2]uint32, error) {
	mids := map[uint32][]uint32{}
	for _, p := range right {
		mids[p[0]] = append(mids[p[0]], p[1])
	}
	var out [][2]uint32
	for mid, objs := range mids {
		ls, err := e.path(expr, s, int64(mid))
		if err != nil {
			return nil, err
		}
		for _, l := range ls {
			for _, obj := range objs {
				out = append(out, [2]uint32{l[0], obj})
			}
		}
	}
	return dedup(out), nil
}

// closure implements the ALP procedure for X* / X+.
func (e *eval) closure(x pathexpr.Node, s, o int64, reflexive bool) ([][2]uint32, error) {
	switch {
	case s >= 0:
		reach, err := e.alpForward(x, uint32(s))
		if err != nil {
			return nil, err
		}
		var out [][2]uint32
		for _, r := range reach {
			if !reflexive && r.zero {
				continue
			}
			if o >= 0 && int64(r.node) != o {
				continue
			}
			out = append(out, [2]uint32{uint32(s), r.node})
		}
		return out, nil
	case o >= 0:
		// Evaluate backwards with the inverse of x, then flip.
		reach, err := e.alpForward(pathexpr.InverseOf(x), uint32(o))
		if err != nil {
			return nil, err
		}
		var out [][2]uint32
		for _, r := range reach {
			if !reflexive && r.zero {
				continue
			}
			out = append(out, [2]uint32{r.node, uint32(o)})
		}
		return out, nil
	default:
		// The spec's unbound case: ALP from every node (Jena behaviour).
		var out [][2]uint32
		for v := 0; v < e.ix.nv; v++ {
			ps, err := e.closure(x, int64(v), -1, reflexive)
			if err != nil {
				return nil, err
			}
			out = append(out, ps...)
		}
		return dedup(out), nil
	}
}

type reached struct {
	node uint32
	zero bool // reached only by the zero-length path
}

// alpForward is the spec's ALP: BFS over one-step X-neighbourhoods with a
// visited set.
func (e *eval) alpForward(x pathexpr.Node, start uint32) ([]reached, error) {
	if int(start) >= e.ix.nv {
		return nil, nil
	}
	visited := map[uint32]bool{start: true}
	out := []reached{{start, true}}
	queue := []uint32{start}
	for head := 0; head < len(queue); head++ {
		if err := e.tick(); err != nil {
			return nil, err
		}
		cur := queue[head]
		steps, err := e.path(x, int64(cur), -1)
		if err != nil {
			return nil, err
		}
		for _, p := range steps {
			next := p[1]
			if visited[next] {
				if next == start {
					// A non-trivial loop back to the start upgrades it
					// from zero-length-only.
					for i := range out {
						if out[i].node == start {
							out[i].zero = false
						}
					}
				}
				continue
			}
			visited[next] = true
			out = append(out, reached{next, false})
			queue = append(queue, next)
		}
	}
	return out, nil
}

func dedup(ps [][2]uint32) [][2]uint32 {
	if len(ps) < 2 {
		return ps
	}
	seen := make(map[[2]uint32]bool, len(ps))
	out := ps[:0]
	for _, p := range ps {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// expandNegSets rewrites negated property sets into explicit
// alternations over the graph's predicates.
func expandNegSets(n pathexpr.Node, g *triples.Graph) pathexpr.Node {
	if !pathexpr.HasNegSets(n) {
		return n
	}
	return pathexpr.ExpandNegSets(n, func(ns pathexpr.NegSet) []pathexpr.Sym {
		var out []pathexpr.Sym
		for i := uint32(0); i < g.NumPreds; i++ {
			name := g.Preds.Name(i)
			if !ns.Excludes(name) {
				out = append(out, pathexpr.Sym{Name: name, Inverse: ns.Inverse})
			}
		}
		return out
	})
}
