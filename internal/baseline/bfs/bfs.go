// Package bfs implements the traditional RPQ algorithm (paper §3.2): lazy
// BFS over the product of the data graph and a Thompson NFA, node by
// node. The graph is stored as in-memory forward and backward adjacency
// lists — the representation a navigational engine such as Blazegraph
// effectively touches (B+-tree SPO/OPS indexes resident in cache). This
// is the strongest time baseline and the space baseline the ring is
// compared against, and it also serves as the oracle for the ring
// engine's correctness tests.
package bfs

import (
	"sort"
	"time"

	"ringrpq/internal/glushkov"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/thompson"
	"ringrpq/internal/triples"
)

// halfEdge is one endpoint of an adjacency entry.
type halfEdge struct {
	pred uint32
	node uint32
}

// Index is the adjacency-list graph index.
type Index struct {
	nv  int
	fwd [][]halfEdge // fwd[s] sorted by (pred, node)
	bwd [][]halfEdge // bwd[o] sorted by (pred, node)
	ids glushkov.SymbolIDs
	g   *triples.Graph
	n   int
}

// New indexes the completed graph g.
func New(g *triples.Graph) *Index {
	ix := &Index{nv: g.NumNodes(), n: g.Len(), ids: symbolIDs(g), g: g}
	ix.fwd = make([][]halfEdge, ix.nv)
	ix.bwd = make([][]halfEdge, ix.nv)
	for _, t := range g.Triples {
		ix.fwd[t.S] = append(ix.fwd[t.S], halfEdge{t.P, t.O})
		ix.bwd[t.O] = append(ix.bwd[t.O], halfEdge{t.P, t.S})
	}
	for _, adj := range [][][]halfEdge{ix.fwd, ix.bwd} {
		for _, edges := range adj {
			sort.Slice(edges, func(i, j int) bool {
				if edges[i].pred != edges[j].pred {
					return edges[i].pred < edges[j].pred
				}
				return edges[i].node < edges[j].node
			})
		}
	}
	return ix
}

func symbolIDs(g *triples.Graph) glushkov.SymbolIDs {
	return func(s pathexpr.Sym) (uint32, bool) { return g.PredID(s.Name, s.Inverse) }
}

// SizeBytes reports the index footprint (both directions, as a system
// supporting 2RPQs must index).
func (ix *Index) SizeBytes() int {
	sz := 48
	for _, edges := range ix.fwd {
		sz += 24 + 8*len(edges)
	}
	for _, edges := range ix.bwd {
		sz += 24 + 8*len(edges)
	}
	return sz
}

// Options mirror core.Options.
type Options struct {
	Limit   int
	Timeout time.Duration
}

// ErrTimeout reports an exceeded timeout.
var ErrTimeout = errTimeout{}

type errTimeout struct{}

func (errTimeout) Error() string { return "bfs: query timeout" }

// Eval evaluates the 2RPQ (subject, expr, object) where endpoints are
// node ids or -1 for variables, emitting distinct pairs. Negated
// property sets are rewritten to explicit alternations (the baselines
// have no native class support).
func (ix *Index) Eval(subject int64, expr pathexpr.Node, object int64, opts Options, emit func(s, o uint32) bool) error {
	expr = expandNegSets(expr, ix.g)
	e := &eval{
		ix:    ix,
		nfa:   thompson.Build(expr, ix.ids),
		limit: opts.Limit,
		emit:  emit,
	}
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
	}
	switch {
	case subject >= 0 && object >= 0:
		return e.constConst(uint32(subject), uint32(object))
	case subject >= 0:
		return e.fromSource(uint32(subject), func(o uint32) bool {
			return e.send(uint32(subject), o)
		})
	case object >= 0:
		return e.fromObject(uint32(object))
	default:
		return e.bothVar(expr)
	}
}

type eval struct {
	ix       *Index
	nfa      *thompson.NFA
	limit    int
	count    int
	steps    int
	deadline time.Time
	emit     func(s, o uint32) bool
	stopped  bool
}

func (e *eval) send(s, o uint32) bool {
	e.count++
	if !e.emit(s, o) {
		e.stopped = true
		return false
	}
	if e.limit > 0 && e.count >= e.limit {
		e.stopped = true
		return false
	}
	return true
}

func (e *eval) tick() error {
	e.steps++
	if e.deadline.IsZero() || e.steps%1024 != 0 {
		return nil
	}
	if time.Now().After(e.deadline) {
		return ErrTimeout
	}
	return nil
}

// pgState is a product-graph node.
type pgState struct {
	node uint32
	q    int32
}

// fromSource BFSes forward from (src, initial), reporting nodes reached
// in a final state.
func (e *eval) fromSource(src uint32, report func(o uint32) bool) error {
	if int(src) >= e.ix.nv {
		return nil
	}
	if e.nfa.MatchesEmpty() {
		if !report(src) {
			return nil
		}
	}
	seen := map[pgState]bool{}
	reported := map[uint32]bool{src: e.nfa.MatchesEmpty()}
	start := pgState{src, e.nfa.Initial}
	seen[start] = true
	queue := []pgState{start}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if err := e.tick(); err != nil {
			return err
		}
		for _, t := range e.nfa.Trans[cur.q] {
			// Adjacency entries are sorted by predicate: binary search.
			edges := e.ix.fwd[cur.node]
			i := sort.Search(len(edges), func(i int) bool { return edges[i].pred >= t.Sym })
			for ; i < len(edges) && edges[i].pred == t.Sym; i++ {
				next := pgState{edges[i].node, t.To}
				if seen[next] {
					continue
				}
				seen[next] = true
				queue = append(queue, next)
				if e.nfa.Final[t.To] && !reported[next.node] {
					reported[next.node] = true
					if !report(next.node) {
						return nil
					}
				}
			}
		}
	}
	return nil
}

// fromObject BFSes backward from (obj, finals), reporting nodes that
// reach obj from the initial state.
func (e *eval) fromObject(obj uint32) error {
	if int(obj) >= e.ix.nv {
		return nil
	}
	reported := map[uint32]bool{}
	if e.nfa.MatchesEmpty() {
		reported[obj] = true
		if !e.send(obj, obj) {
			return nil
		}
	}
	seen := map[pgState]bool{}
	var queue []pgState
	for q := int32(0); q < int32(e.nfa.NumStates); q++ {
		if e.nfa.Final[q] {
			st := pgState{obj, q}
			seen[st] = true
			queue = append(queue, st)
			if q == e.nfa.Initial && !reported[obj] {
				reported[obj] = true
				if !e.send(obj, obj) {
					return nil
				}
			}
		}
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if err := e.tick(); err != nil {
			return err
		}
		for _, t := range e.nfa.Rev[cur.q] { // t.To is the *source* state
			edges := e.ix.bwd[cur.node]
			i := sort.Search(len(edges), func(i int) bool { return edges[i].pred >= t.Sym })
			for ; i < len(edges) && edges[i].pred == t.Sym; i++ {
				next := pgState{edges[i].node, t.To}
				if seen[next] {
					continue
				}
				seen[next] = true
				queue = append(queue, next)
				if next.q == e.nfa.Initial && !reported[next.node] {
					reported[next.node] = true
					if !e.send(next.node, obj) {
						return nil
					}
				}
			}
		}
	}
	return nil
}

// constConst reuses fromSource with an early exit.
func (e *eval) constConst(src, obj uint32) error {
	return e.fromSource(src, func(o uint32) bool {
		if o == obj {
			e.send(src, obj)
			return false
		}
		return true
	})
}

// bothVar runs a forward BFS from every candidate source: the subjects of
// edges whose predicate can be read first (plus, under nullability, every
// node paired with itself).
func (e *eval) bothVar(expr pathexpr.Node) error {
	if e.nfa.MatchesEmpty() {
		for v := 0; v < e.ix.nv; v++ {
			if !e.send(uint32(v), uint32(v)) {
				return nil
			}
		}
	}
	// Candidate sources: nodes with an out-edge labelled by a predicate
	// readable from the initial state.
	firstPreds := map[uint32]bool{}
	for _, t := range e.nfa.Trans[e.nfa.Initial] {
		firstPreds[t.Sym] = true
	}
	for v := 0; v < e.ix.nv; v++ {
		if e.stopped {
			return nil
		}
		hasStart := false
		for _, h := range e.ix.fwd[v] {
			if firstPreds[h.pred] {
				hasStart = true
				break
			}
		}
		if !hasStart {
			continue
		}
		src := uint32(v)
		err := e.fromSource(src, func(o uint32) bool {
			if e.nfa.MatchesEmpty() && o == src {
				return true // already emitted by the nullable sweep
			}
			return e.send(src, o)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// expandNegSets rewrites negated property sets into explicit
// alternations over the graph's predicates.
func expandNegSets(n pathexpr.Node, g *triples.Graph) pathexpr.Node {
	if !pathexpr.HasNegSets(n) {
		return n
	}
	return pathexpr.ExpandNegSets(n, func(ns pathexpr.NegSet) []pathexpr.Sym {
		var out []pathexpr.Sym
		for i := uint32(0); i < g.NumPreds; i++ {
			name := g.Preds.Name(i)
			if !ns.Excludes(name) {
				out = append(out, pathexpr.Sym{Name: name, Inverse: ns.Inverse})
			}
		}
		return out
	})
}
