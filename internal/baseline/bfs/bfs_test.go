package bfs

import (
	"math/rand"
	"reflect"
	"testing"

	"ringrpq/internal/enginetest"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/triples"
)

func collect(t *testing.T, ix *Index, s int64, expr string, o int64) []enginetest.Pair {
	t.Helper()
	var out []enginetest.Pair
	err := ix.Eval(s, pathexpr.MustParse(expr), o, Options{}, func(s, o uint32) bool {
		out = append(out, enginetest.Pair{S: s, O: o})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return enginetest.SortPairs(out)
}

func check(t *testing.T, g *triples.Graph, ix *Index, s int64, expr string, o int64) {
	t.Helper()
	got := collect(t, ix, s, expr, o)
	want := enginetest.SortPairs(enginetest.Oracle(g, s, pathexpr.MustParse(expr), o))
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("(%d,%s,%d): got %v, want %v", s, expr, o, got, want)
	}
}

func TestMetroAgainstOracle(t *testing.T) {
	g := enginetest.Metro()
	ix := New(g)
	sa, _ := g.Nodes.Lookup("SA")
	baq, _ := g.Nodes.Lookup("Baq")
	for _, expr := range []string{
		"l1", "^bus", "l5+/bus", "^bus/l5+", "(l1|l2|l5)+", "l1*", "l1/l2", "bus|l5",
	} {
		for _, ends := range [][2]int64{
			{-1, -1}, {int64(sa), -1}, {-1, int64(baq)}, {int64(sa), int64(baq)},
		} {
			check(t, g, ix, ends[0], expr, ends[1])
		}
	}
}

func TestPaperExample(t *testing.T) {
	g := enginetest.Metro()
	ix := New(g)
	baq, _ := g.Nodes.Lookup("Baq")
	got := collect(t, ix, int64(baq), "l5+/bus", -1)
	names := map[string]bool{}
	for _, p := range got {
		names[g.Nodes.Name(p.O)] = true
	}
	if !names["SA"] || !names["UCh"] || len(names) != 2 {
		t.Fatalf("targets=%v, want {SA, UCh}", names)
	}
}

func TestRandomAgainstOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		g := enginetest.RandomGraph(seed+100, 10+rng.Intn(10), 3, 40+rng.Intn(40))
		ix := New(g)
		for trial := 0; trial < 5; trial++ {
			expr := pathexpr.String(enginetest.RandomExpr(rng, 3, 3))
			s := int64(rng.Intn(g.NumNodes()))
			o := int64(rng.Intn(g.NumNodes()))
			check(t, g, ix, -1, expr, -1)
			check(t, g, ix, s, expr, -1)
			check(t, g, ix, -1, expr, o)
			check(t, g, ix, s, expr, o)
		}
	}
}

func TestLimitAndStop(t *testing.T) {
	g := enginetest.RandomGraph(7, 20, 2, 120)
	ix := New(g)
	count := 0
	err := ix.Eval(-1, pathexpr.MustParse("pa*"), -1, Options{Limit: 5}, func(s, o uint32) bool {
		count++
		return true
	})
	if err != nil || count != 5 {
		t.Fatalf("limit: count=%d err=%v", count, err)
	}
}

func TestTimeout(t *testing.T) {
	g := enginetest.RandomGraph(9, 300, 2, 6000)
	ix := New(g)
	err := ix.Eval(-1, pathexpr.MustParse("(pa|pb)*"), -1, Options{Timeout: 1}, func(s, o uint32) bool {
		return true
	})
	if err != ErrTimeout {
		t.Fatalf("err=%v, want ErrTimeout", err)
	}
}

func TestSizeBytes(t *testing.T) {
	g := enginetest.Metro()
	ix := New(g)
	if ix.SizeBytes() < 8*g.Len() {
		t.Fatalf("SizeBytes=%d implausibly small", ix.SizeBytes())
	}
}

// Negated property sets are supported via rewriting; results must match
// the oracle.
func TestNegatedSets(t *testing.T) {
	g := enginetest.Metro()
	ix := New(g)
	baq, _ := g.Nodes.Lookup("Baq")
	for _, expr := range []string{"!bus", "!(l1|l2)+", "!^l5"} {
		check(t, g, ix, -1, expr, -1)
		check(t, g, ix, -1, expr, int64(baq))
	}
}
