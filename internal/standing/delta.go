package standing

import (
	"errors"
	"sort"
	"strconv"
	"strings"

	"ringrpq/internal/core"
	"ringrpq/internal/glushkov"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/query"
)

// The Host evaluation surface speaks the engine's own types; the
// aliases keep the package's public face self-contained.
type (
	// RPQ is a dictionary-encoded 2RPQ (core.Variable marks unbound
	// endpoints).
	RPQ = core.Query
	// PatternQuery is a parsed graph pattern.
	PatternQuery = query.Query
	// SymbolIDs resolves expression symbols to completed predicate ids.
	SymbolIDs = glushkov.SymbolIDs
	// EvalOptions tunes one evaluation the Host runs for the registry.
	EvalOptions = core.Options
	// PredicateSym names one completed predicate id as an expression
	// symbol (Inverse set for the completed inverse half).
	PredicateSym = pathexpr.Sym
)

// compile parses and normalises one request into a Sub (no snapshot
// needed; the initial result is materialised later by the worker).
func (r *Registry) compile(req Request) (*Sub, error) {
	s := &Sub{
		reg:          r,
		req:          req,
		wantSnapshot: req.Snapshot,
		depth:        req.QueueDepth,
		wake:         make(chan struct{}, 1),
		activated:    make(chan struct{}),
		alphabet:     map[uint32]bool{},
	}
	if s.depth <= 0 {
		s.depth = r.cfg.QueueDepth
	}
	switch {
	case req.Pattern != "" && req.Expr != "":
		return nil, errors.New("standing: request has both an expression and a pattern")
	case req.Pattern != "":
		q, err := query.Parse(req.Pattern)
		if err != nil {
			return nil, err
		}
		s.isPattern = true
		s.pat = q
		s.vars = q.OutVars()
		for _, cl := range q.Clauses {
			if cl.PredVar != "" {
				// A variable predicate ranges over the whole alphabet.
				s.universal = true
				continue
			}
			a := glushkov.Build(cl.Path, r.host.SymbolIDs())
			if a.HasClasses() {
				s.universal = true
			}
			if a.Nullable {
				s.nullable = true
			}
			for _, c := range a.Alphabet() {
				s.alphabet[c] = true
			}
		}
		return s, nil
	case req.Expr == "":
		return nil, errors.New("standing: request needs an expression or a pattern")
	}
	node, err := pathexpr.Parse(req.Expr)
	if err != nil {
		return nil, err
	}
	subject, object := req.Subject, req.Object
	if subject == "" {
		subject = "?s"
	}
	if object == "" {
		object = "?o"
	}
	subjVar := strings.HasPrefix(subject, "?")
	objVar := strings.HasPrefix(object, "?")
	switch {
	case subjVar && objVar:
		s.expr = node
	case !subjVar && objVar:
		// Normalise to a constant evaluation object over the inverse
		// expression: x ∈ E(S) ⟺ S ∈ Ê(x).
		s.expr = pathexpr.InverseOf(node)
		s.swap = true
		s.objName = subject
	case subjVar && !objVar:
		s.expr = node
		s.objName = object
	default:
		s.expr = node
		s.subjName = subject
		s.objName = object
	}
	a := glushkov.Build(s.expr, r.host.SymbolIDs())
	s.nullable = a.Nullable
	s.universal = a.HasClasses()
	for _, c := range a.Alphabet() {
		s.alphabet[c] = true
	}
	if !s.universal && len(s.alphabet) > 0 {
		s.closure = closureExpr(a.Alphabet(), r.host.PredSym)
	}
	return s, nil
}

// closureExpr builds (c1|c2|...)* over the alphabet: the probe
// expression whose solutions from a seed are exactly the nodes an
// E-path may continue through after crossing the seed's edge.
func closureExpr(alphabet []uint32, sym func(uint32) PredicateSym) pathexpr.Node {
	var n pathexpr.Node
	for _, c := range alphabet {
		t := sym(c)
		if n == nil {
			n = t
		} else {
			n = pathexpr.Alt{L: n, R: t}
		}
	}
	return pathexpr.Star{X: n}
}

// materialize computes the subscription's initial result view against
// the activation snapshot.
func (r *Registry) materialize(s *Sub, snap Snapshot) error {
	s.numNodes = r.host.NumNodes(snap)
	if s.isPattern {
		rows, err := r.evalRows(snap, s)
		if err != nil {
			return err
		}
		s.rows = rows
		return nil
	}
	s.resolveConsts(r, s.numNodes)
	cols, err := r.evalAll(snap, s)
	if err != nil {
		return err
	}
	s.cols = cols
	return nil
}

// resolveConsts resolves constant endpoint names against the node
// dictionary, accepting only ids below the snapshot's dictionary
// length (the shared dictionary may already hold nodes from later
// batches). Reports whether anything newly resolved.
func (s *Sub) resolveConsts(r *Registry, limit int) bool {
	changed := false
	if s.objName != "" && !s.objOK {
		if id, ok := r.host.LookupNode(s.objName); ok && int(id) < limit {
			s.objID, s.objOK = id, true
			changed = true
		}
	}
	if s.subjName != "" && !s.subjOK {
		if id, ok := r.host.LookupNode(s.subjName); ok && int(id) < limit {
			s.subjID, s.subjOK = id, true
			changed = true
		}
	}
	return changed
}

// evalAll evaluates the subscription's whole query on snap, returning
// the result keyed by evaluation object ("columns").
func (r *Registry) evalAll(snap Snapshot, s *Sub) (map[uint32]map[uint32]bool, error) {
	out := map[uint32]map[uint32]bool{}
	q := RPQ{Subject: core.Variable, Object: core.Variable, Expr: s.expr}
	if s.objName != "" {
		if !s.objOK {
			return out, nil // unresolved constant: empty by definition
		}
		q.Object = int64(s.objID)
	}
	if s.subjName != "" {
		if !s.subjOK {
			return out, nil
		}
		q.Subject = int64(s.subjID)
	}
	err := r.host.EvalRPQ(snap, q, EvalOptions{Timeout: r.cfg.EvalTimeout}, func(x, y uint32) bool {
		col := out[y]
		if col == nil {
			col = map[uint32]bool{}
			out[y] = col
		}
		col[x] = true
		return true
	})
	return out, err
}

// evalColumn re-derives one column: (?x, E, y).
func (r *Registry) evalColumn(snap Snapshot, s *Sub, y uint32) (map[uint32]bool, error) {
	q := RPQ{Subject: core.Variable, Object: int64(y), Expr: s.expr}
	var col map[uint32]bool
	err := r.host.EvalRPQ(snap, q, EvalOptions{Timeout: r.cfg.EvalTimeout}, func(x, _ uint32) bool {
		if col == nil {
			col = map[uint32]bool{}
		}
		col[x] = true
		return true
	})
	return col, err
}

// pair maps a stored (eval subject, eval object) entry back to the
// subscription's original orientation.
func (s *Sub) pair(r *Registry, x, y uint32) Pair {
	if s.swap {
		return Pair{Subject: r.host.NodeName(y), Object: r.host.NodeName(x)}
	}
	return Pair{Subject: r.host.NodeName(x), Object: r.host.NodeName(y)}
}

// rpqDelta computes one 2RPQ subscription's delta for one batch.
func (r *Registry) rpqDelta(s *Sub, b *Batch, d *Delta) error {
	newNum := r.host.NumNodes(b.New)
	resolved := s.resolveConsts(r, newNum)
	touched := len(b.Adds) > 0 || len(b.Dels) > 0
	if r.cfg.ForceFull {
		// The naive baseline keeps no incremental state at all: any
		// data change triggers a full re-evaluation and diff.
		if !touched && !resolved && newNum == s.numNodes {
			r.skipped.Add(1)
			return nil
		}
		r.fullReevals.Add(1)
		err := r.fullRPQDelta(s, b.New, d)
		s.numNodes = newNum
		return err
	}
	relevant := s.universal && touched
	if !s.universal && touched {
		relevant = anyAlphabet(s.alphabet, b.Adds) || anyAlphabet(s.alphabet, b.Dels)
	}
	growth := s.nullable && newNum > s.numNodes
	if !relevant && !resolved && !(growth && s.objName == "") {
		// Growth matters to constant-endpoint subscriptions only
		// through name resolution, which `resolved` covers.
		r.skipped.Add(1)
		s.numNodes = newNum
		return nil
	}
	if s.universal {
		r.fullReevals.Add(1)
		err := r.fullRPQDelta(s, b.New, d)
		s.numNodes = newNum
		return err
	}
	if s.objName != "" {
		// Constant-column subscription: one column (or one boolean pair
		// for both-constant endpoints). Re-deriving the column costs one
		// constant-object evaluation — about the same backward-cone
		// traversal a reachability probe would pay — so an alphabet-
		// relevant batch goes straight to the recompute and diff.
		ready := s.objOK && (s.subjName == "" || s.subjOK)
		if !ready {
			s.numNodes = newNum
			return nil
		}
		r.incremental.Add(1)
		newCols, err := r.evalAll(b.New, s)
		if err != nil {
			return err
		}
		r.diffCols(s, newCols, d)
		s.cols = newCols
		s.numNodes = newNum
		return nil
	}
	// Variable-variable: discover the affected columns by closure
	// probes from the batch edges, then re-derive only those.
	cols, overflow, err := r.affectedColumns(s, b)
	if err != nil {
		return err
	}
	if overflow {
		r.fullReevals.Add(1)
		err := r.fullRPQDelta(s, b.New, d)
		s.numNodes = newNum
		return err
	}
	r.incremental.Add(1)
	if growth {
		// A nullable expression relates every node to itself via the
		// empty path: newly interned nodes gain (v, v) regardless of
		// any edge.
		for v := s.numNodes; v < newNum; v++ {
			id := uint32(v)
			col := s.cols[id]
			if col == nil {
				col = map[uint32]bool{}
				s.cols[id] = col
			}
			if !col[id] {
				col[id] = true
				d.Added = append(d.Added, s.pair(r, id, id))
			}
		}
	}
	for _, y := range cols {
		newCol, err := r.evalColumn(b.New, s, y)
		if err != nil {
			return err
		}
		old := s.cols[y]
		for x := range newCol {
			if !old[x] {
				d.Added = append(d.Added, s.pair(r, x, y))
			}
		}
		for x := range old {
			if !newCol[x] {
				d.Removed = append(d.Removed, s.pair(r, x, y))
			}
		}
		if len(newCol) == 0 {
			delete(s.cols, y)
		} else {
			s.cols[y] = newCol
		}
	}
	s.numNodes = newNum
	return nil
}

// anyAlphabet reports whether any edge carries an alphabet predicate.
func anyAlphabet(alphabet map[uint32]bool, edges []Edge) bool {
	for _, e := range edges {
		if alphabet[e.P] {
			return true
		}
	}
	return false
}

// fullRPQDelta re-evaluates the whole query and diffs against the view.
func (r *Registry) fullRPQDelta(s *Sub, snap Snapshot, d *Delta) error {
	newCols, err := r.evalAll(snap, s)
	if err != nil {
		return err
	}
	r.diffCols(s, newCols, d)
	s.cols = newCols
	return nil
}

// diffCols emits the symmetric difference between the stored view and
// newCols into d.
func (r *Registry) diffCols(s *Sub, newCols map[uint32]map[uint32]bool, d *Delta) {
	for y, newCol := range newCols {
		old := s.cols[y]
		for x := range newCol {
			if !old[x] {
				d.Added = append(d.Added, s.pair(r, x, y))
			}
		}
	}
	for y, old := range s.cols {
		newCol := newCols[y]
		for x := range old {
			if !newCol[x] {
				d.Removed = append(d.Removed, s.pair(r, x, y))
			}
		}
	}
}

// affectedColumns computes the set of evaluation objects whose columns
// a batch may have changed: the forward closure — over the expression's
// own alphabet — of added-edge targets in the new graph, united with
// that of tombstoned-edge targets in the old graph. Any created pair
// (x, y) has a new path crossing an added edge, so y is alphabet-
// reachable from that edge's target in the new graph; any retracted
// pair's old paths all crossed a tombstoned edge, so its y is
// alphabet-reachable from that edge's target in the old graph.
// overflow reports the MaxColumns cap was hit.
func (r *Registry) affectedColumns(s *Sub, b *Batch) (cols []uint32, overflow bool, err error) {
	if s.closure == nil {
		return nil, false, nil
	}
	seenAll := map[uint32]bool{}
	collect := func(snap Snapshot, edges []Edge) (bool, error) {
		// Side-local subsumption: a seed already reached by an earlier
		// probe on this side has its whole closure covered.
		side := map[uint32]bool{}
		for _, e := range edges {
			if !s.alphabet[e.P] || side[e.O] {
				continue
			}
			over := false
			q := RPQ{Subject: int64(e.O), Object: core.Variable, Expr: s.closure}
			if err := r.host.EvalRPQ(snap, q, EvalOptions{Timeout: r.cfg.EvalTimeout}, func(_, y uint32) bool {
				side[y] = true
				if !seenAll[y] {
					seenAll[y] = true
					cols = append(cols, y)
				}
				if len(cols) > r.cfg.MaxColumns {
					over = true
					return false
				}
				return true
			}); err != nil {
				return false, err
			}
			if over {
				return true, nil
			}
		}
		return false, nil
	}
	if overflow, err = collect(b.New, b.Adds); overflow || err != nil {
		return nil, overflow, err
	}
	overflow, err = collect(b.Old, b.Dels)
	if overflow || err != nil {
		return nil, overflow, err
	}
	return cols, false, nil
}

// evalRows evaluates a pattern subscription's full result table.
func (r *Registry) evalRows(snap Snapshot, s *Sub) (map[string][]string, error) {
	rows := map[string][]string{}
	err := r.host.EvalPattern(snap, s.pat, r.cfg.EvalTimeout, func(row []string) bool {
		cp := make([]string, len(row))
		copy(cp, row)
		rows[rowKey(cp)] = cp
		return true
	})
	return rows, err
}

// patternDelta maintains a pattern subscription: alphabet-gated full
// re-evaluation plus row diff (pattern joins have no per-column
// decomposition to exploit).
func (r *Registry) patternDelta(s *Sub, b *Batch, d *Delta) error {
	newNum := r.host.NumNodes(b.New)
	touched := len(b.Adds) > 0 || len(b.Dels) > 0
	// A nullable clause relates nodes to themselves, so dictionary
	// growth alone can mint rows; constant terms resolving for the
	// first time also ride on growth.
	growthSensitive := newNum > s.numNodes
	// ForceFull keeps no per-clause alphabets in play: any data change
	// re-evaluates.
	relevant := touched
	if !r.cfg.ForceFull && !s.universal && touched {
		relevant = anyAlphabet(s.alphabet, b.Adds) || anyAlphabet(s.alphabet, b.Dels)
	}
	if !relevant && !growthSensitive {
		r.skipped.Add(1)
		return nil
	}
	r.fullReevals.Add(1)
	newRows, err := r.evalRows(b.New, s)
	if err != nil {
		return err
	}
	for k, row := range newRows {
		if _, ok := s.rows[k]; !ok {
			d.AddedRows = append(d.AddedRows, row)
		}
	}
	for k, row := range s.rows {
		if _, ok := newRows[k]; !ok {
			d.RemovedRows = append(d.RemovedRows, row)
		}
	}
	s.rows = newRows
	s.numNodes = newNum
	return nil
}

// currentAsDelta renders the materialised view as one delta (the
// Snapshot-option baseline).
func (s *Sub) currentAsDelta(r *Registry, version uint64) Delta {
	d := Delta{Version: version}
	if s.isPattern {
		for _, row := range s.rows {
			d.AddedRows = append(d.AddedRows, row)
		}
	} else {
		for y, col := range s.cols {
			for x := range col {
				d.Added = append(d.Added, s.pair(r, x, y))
			}
		}
	}
	sortDelta(&d)
	return d
}

// rowKey encodes a projected row unambiguously.
func rowKey(row []string) string {
	var sb strings.Builder
	for _, v := range row {
		sb.WriteString(strconv.Itoa(len(v)))
		sb.WriteByte(':')
		sb.WriteString(v)
	}
	return sb.String()
}

// sortDelta orders a delta's additions and retractions for stable
// delivery (and deterministic tests).
func sortDelta(d *Delta) {
	sortPairs(d.Added)
	sortPairs(d.Removed)
	sortRows(d.AddedRows)
	sortRows(d.RemovedRows)
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Subject != ps[j].Subject {
			return ps[i].Subject < ps[j].Subject
		}
		return ps[i].Object < ps[j].Object
	})
}

func sortRows(rows [][]string) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}
