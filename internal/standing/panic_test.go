package standing

// Registry worker panic isolation: a panicking evaluation terminates
// only the subscription being processed (with the eviction reported via
// OnEvict for the durability layer), counts in Stats.Panics, and leaves
// the worker serving everyone else.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ringrpq/internal/pathexpr"
)

// panicHost is a minimal Host whose evaluations panic while armed.
type panicHost struct {
	arm atomic.Bool
}

func (h *panicHost) Acquire() (Snapshot, uint64)      { return struct{}{}, 0 }
func (h *panicHost) Release(Snapshot)                 {}
func (h *panicHost) NumNodes(Snapshot) int            { return 4 }
func (h *panicHost) NodeName(id uint32) string        { return fmt.Sprintf("n%d", id) }
func (h *panicHost) LookupNode(string) (uint32, bool) { return 0, true }
func (h *panicHost) SymbolIDs() SymbolIDs {
	return func(pathexpr.Sym) (uint32, bool) { return 1, true }
}
func (h *panicHost) PredSym(uint32) PredicateSym { return PredicateSym{Name: "p"} }

func (h *panicHost) EvalRPQ(_ Snapshot, _ RPQ, _ EvalOptions, _ func(subj, obj uint32) bool) error {
	if h.arm.Load() {
		panic("injected standing evaluation panic")
	}
	return nil
}

func (h *panicHost) EvalPattern(_ Snapshot, _ *PatternQuery, _ time.Duration, _ func(row []string) bool) error {
	return nil
}

func TestRegistryPanicTerminatesOnlyThatSub(t *testing.T) {
	host := &panicHost{}
	// ForceFull routes every batch through a full EvalRPQ re-evaluation
	// — the injection point.
	r := New(host, Config{ForceFull: true})
	defer r.Close()
	var evicted atomic.Uint64
	r.OnEvict = func(id uint64) { evicted.Store(id) }

	sub, err := r.Subscribe(Request{Expr: "p"})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}

	host.arm.Store(true)
	snap, _ := host.Acquire()
	r.Notify(Batch{Version: 1, Adds: []Edge{{S: 0, P: 1, O: 2}}, Old: snap, New: snap})
	r.Sync()

	if _, _, err := sub.TryNext(); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("subscription err = %v, want panic termination", err)
	}
	if st := r.Stats(); st.Panics != 1 || st.Active != 0 {
		t.Fatalf("stats = %+v, want Panics 1 and no active subs", st)
	}
	if got := evicted.Load(); got != sub.ID() {
		t.Fatalf("OnEvict got id %d, want %d", got, sub.ID())
	}

	// The worker survived: a fresh subscription activates and serves.
	host.arm.Store(false)
	sub2, err := r.Subscribe(Request{Expr: "p"})
	if err != nil {
		t.Fatalf("subscribe after panic: %v", err)
	}
	r.Notify(Batch{Version: 2, Adds: []Edge{{S: 1, P: 1, O: 2}}, Old: snap, New: snap})
	r.Sync()
	if _, _, err := sub2.TryNext(); err != nil {
		t.Fatalf("second subscription err = %v", err)
	}
}

func TestRegistryActivationPanicFailsSubscribe(t *testing.T) {
	host := &panicHost{}
	r := New(host, Config{ForceFull: true})
	defer r.Close()

	host.arm.Store(true)
	if _, err := r.Subscribe(Request{Expr: "p"}); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("subscribe during panic = %v, want activation failure", err)
	}
	if st := r.Stats(); st.Panics == 0 {
		t.Fatalf("stats = %+v, want a recorded panic", st)
	}

	host.arm.Store(false)
	if _, err := r.Subscribe(Request{Expr: "p"}); err != nil {
		t.Fatalf("subscribe after activation panic: %v", err)
	}
}
