// Package standing implements standing queries: subscriptions that
// receive incremental deltas — new and retracted result pairs or rows —
// as update batches apply to the live database.
//
// The snapshot layer (the public DB's holder) calls Registry.Notify
// under its publish lock for every applied batch, so notices arrive in
// data-version order with the pre- and post-batch snapshots pinned. A
// single worker goroutine drains the notice queue and, per
// subscription, turns each batch into a delta:
//
//   - The batch is first gated by relevance: a subscription whose
//     Glushkov alphabet shares no completed predicate with the batch
//     (and that is not sensitive to dictionary growth via a nullable
//     expression) cannot change and is skipped outright.
//   - For a relevant 2RPQ subscription the affected column set is
//     computed by seeding closure probes from the batch edges: an added
//     edge can only create result pairs whose object lies in the
//     forward closure — over the expression's own alphabet — of the
//     edge's target in the new graph, and symmetrically a tombstoned
//     edge can only retract pairs whose object lies in that closure in
//     the old graph. Only those columns are re-derived (a bounded
//     const-object evaluation each) and diffed against the materialised
//     view, yielding exact additions and retractions without a full
//     re-evaluation.
//   - Graph-pattern subscriptions and expressions with negated symbol
//     classes (whose alphabet is unbounded) fall back to an
//     alphabet-gated full re-evaluation plus diff, as does any batch
//     whose affected column set exceeds Config.MaxColumns.
//
// Delivery is decoupled from evaluation: each subscription owns a
// bounded pending queue (overflow marks the subscriber lagged rather
// than blocking the worker) and a bounded delta history that serves
// resume-from-version reconnects.
package standing

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ringrpq/internal/overlay"
)

// Edge is a completed dictionary-encoded triple, exactly as the overlay
// stores it (both directions of a data edge are materialised).
type Edge = overlay.Edge

// Snapshot is an opaque pinned database snapshot owned by the Host.
type Snapshot any

// Batch is one applied update notice: the completed edges of the batch
// and the pinned snapshots on either side of it. A version advance
// without a data change (a compaction swap) carries nil snapshots and
// no edges.
type Batch struct {
	// Version is the data version the batch produced.
	Version uint64
	// Adds and Dels are the completed requested edges (both directions
	// of every data edge), before consolidation.
	Adds, Dels []Edge
	// Old and New are the snapshots before and after the batch, pinned
	// by the notifier and released by the registry worker; nil for
	// data-free version advances.
	Old, New Snapshot
}

// Config tunes a Registry. The zero value picks the defaults.
type Config struct {
	// QueueDepth bounds each subscriber's pending delta queue; a
	// subscriber that falls further behind is marked lagged (see
	// ErrLagged). Default 64.
	QueueDepth int
	// History bounds the per-subscription delta history that serves
	// resume-from-version reconnects. Default 256.
	History int
	// MaxColumns bounds the affected-column set of one incremental
	// step; beyond it the subscription falls back to a full
	// re-evaluation diff for that batch (each affected column costs a
	// constant-object evaluation, so past a few dozen the single full
	// evaluation wins). Default 32.
	MaxColumns int
	// DetachTTL is how long a detached (disconnected but resumable)
	// subscription survives before the registry drops it. Default 2m.
	DetachTTL time.Duration
	// EvalTimeout bounds each evaluation the worker runs for one
	// (subscription, batch) step; 0 means none. A timed-out step
	// terminates the subscription rather than deliver a wrong delta.
	EvalTimeout time.Duration
	// ForceFull disables incremental maintenance: every subscription
	// re-evaluates fully on every batch (the benchmark's baseline).
	ForceFull bool
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.History <= 0 {
		c.History = 256
	}
	if c.MaxColumns <= 0 {
		c.MaxColumns = 32
	}
	if c.DetachTTL <= 0 {
		c.DetachTTL = 2 * time.Minute
	}
	return c
}

// Request registers one standing query: either a 2RPQ (Expr with
// Subject/Object endpoints, '?'-prefixed for variables, empty meaning a
// variable) or a graph pattern (Pattern, internal/query syntax).
type Request struct {
	Subject, Object string
	Expr            string
	Pattern         string
	// Snapshot asks for the current result set as the first delta.
	Snapshot bool
	// QueueDepth overrides Config.QueueDepth for this subscription.
	QueueDepth int
}

// Pair is one 2RPQ result pair in the subscription's original
// orientation.
type Pair struct {
	Subject, Object string
}

// Delta is one incremental result change, tagged with the data version
// that produced it. 2RPQ subscriptions use Added/Removed; pattern
// subscriptions use AddedRows/RemovedRows (values ordered by Vars).
type Delta struct {
	Version uint64
	Added   []Pair
	Removed []Pair

	AddedRows   [][]string
	RemovedRows [][]string
}

// Empty reports a delta with no changes.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 &&
		len(d.AddedRows) == 0 && len(d.RemovedRows) == 0
}

// Host is the evaluation surface the registry runs on. All methods are
// called from the single registry worker goroutine except Acquire,
// Release, NodeName, LookupNode, SymbolIDs and PredSym, which must be
// safe for concurrent use (they are dictionary and snapshot-holder
// reads).
type Host interface {
	// Acquire pins the current snapshot and returns it with its data
	// version; Release unpins a snapshot (also one passed in a Batch).
	Acquire() (Snapshot, uint64)
	Release(s Snapshot)
	// NumNodes is the node-dictionary length when s was published.
	NumNodes(s Snapshot) int
	// EvalRPQ evaluates a core 2RPQ (ids resolved, core.Variable for
	// unbound endpoints) against s; timeout 0 means none.
	EvalRPQ(s Snapshot, q RPQ, opts EvalOptions, emit func(subj, obj uint32) bool) error
	// EvalPattern streams the projected, deduplicated rows of q
	// against s (values ordered by q.OutVars()).
	EvalPattern(s Snapshot, q *PatternQuery, timeout time.Duration, emit func(row []string) bool) error
	// NodeName and LookupNode expose the node dictionary.
	NodeName(id uint32) string
	LookupNode(name string) (uint32, bool)
	// SymbolIDs resolves expression symbols to completed predicate
	// ids; PredSym is its inverse.
	SymbolIDs() SymbolIDs
	PredSym(c uint32) PredicateSym
}

// Subscription errors.
var (
	// ErrClosed reports an operation on a closed (or unsubscribed, or
	// registry-shutdown) subscription.
	ErrClosed = errors.New("standing: subscription closed")
	// ErrLagged reports a subscriber that overflowed its pending queue:
	// the dropped deltas remain in the history, so the subscriber
	// should resume from its last seen version.
	ErrLagged = errors.New("standing: subscriber lagged (resume from last seen version)")
	// ErrUnknownSubscription reports a resume or unsubscribe for an id
	// the registry does not hold.
	ErrUnknownSubscription = errors.New("standing: unknown subscription")
	// ErrTooOld reports a resume from a version older than the
	// subscription's retained delta history.
	ErrTooOld = errors.New("standing: resume version older than retained history")
	// ErrFutureVersion reports a resume from a version the registry has
	// not reached yet.
	ErrFutureVersion = errors.New("standing: resume version is in the future")
)

// Stats is a point-in-time snapshot of registry counters.
type Stats struct {
	// Active counts registered subscriptions (detached ones included);
	// Detached counts the resumable-but-disconnected subset; Lagged
	// counts subscribers currently marked lagged.
	Active, Detached, Lagged int
	// Version is the last data version the worker processed.
	Version uint64
	// Batches counts processed update notices. Incremental /
	// FullReevals / Skipped count per-(subscription, batch) outcomes.
	Batches, Incremental, FullReevals, Skipped int64
	// Deltas counts deltas pushed to subscribers; Overflows counts
	// deltas dropped from full pending queues (still resumable from
	// history).
	Deltas, Overflows int64
	// EvalNS accumulates worker evaluation time.
	EvalNS int64
	// Panics counts recovered worker panics (each terminates the
	// subscription it was evaluating; the worker keeps serving).
	Panics int64
}

// notice is one queue entry: a batch to diff or a subscription to
// activate (materialise its initial result against a pinned snapshot).
type notice struct {
	batch *Batch
	sub   *Sub
}

// SubRecord is one durable subscription registration — the original
// request plus its assigned id — as a write-ahead log or checkpoint
// records it.
type SubRecord struct {
	ID  uint64
	Req Request
}

// Registry owns the subscriptions of one database and the worker that
// maintains them. All methods are safe for concurrent use.
type Registry struct {
	host Host
	cfg  Config

	// OnEvict, when set, is called (outside registry locks) with the id
	// of every subscription the registry drops on its own — TTL-expired
	// detached subscriptions and subscriptions terminated by a failed or
	// panicking evaluation — so a durability layer can record the
	// eviction. Explicit Unsubscribe/Close are the caller's own actions
	// and do not trigger it. Set it before the first Subscribe.
	OnEvict func(id uint64)

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []notice
	subs       map[uint64]*Sub
	nextID     uint64
	running    bool // worker goroutine alive
	processing bool // worker inside process()
	closed     bool
	version    uint64 // last processed data version

	batches     atomic.Int64
	incremental atomic.Int64
	fullReevals atomic.Int64
	skipped     atomic.Int64
	deltas      atomic.Int64
	overflows   atomic.Int64
	evalNS      atomic.Int64
	panics      atomic.Int64
}

// New builds a registry over host. The registry runs no goroutine
// until the first subscription and stops it whenever none remain, so an
// unused registry costs nothing.
func New(host Host, cfg Config) *Registry {
	r := &Registry{host: host, cfg: cfg.withDefaults(), subs: map[uint64]*Sub{}}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// Active reports whether any subscription is registered. The snapshot
// layer checks it before pinning snapshots for a Notify, so idle
// registries add no per-batch cost.
func (r *Registry) Active() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs) > 0 && !r.closed
}

// Notify enqueues one applied batch. The caller must invoke it under
// the same lock that serialises snapshot publication, so notices arrive
// in version order; Old/New must be pinned by the caller and are
// released by the worker.
func (r *Registry) Notify(b Batch) {
	r.mu.Lock()
	if r.closed || len(r.subs) == 0 {
		r.mu.Unlock()
		r.releaseBatch(&b)
		return
	}
	r.queue = append(r.queue, notice{batch: &b})
	r.ensureWorkerLocked()
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Subscribe registers a standing query and blocks until the worker has
// materialised its initial result against a pinned snapshot (so the
// first delta is relative to a known version, returned by
// Sub.StartVersion).
func (r *Registry) Subscribe(req Request) (*Sub, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.mu.Unlock()
	s, err := r.compile(req)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.nextID++
	s.id = r.nextID
	r.subs[s.id] = s
	r.queue = append(r.queue, notice{sub: s})
	r.ensureWorkerLocked()
	r.cond.Broadcast()
	r.mu.Unlock()

	<-s.activated
	if s.actErr != nil {
		r.remove(s.id)
		return nil, s.actErr
	}
	return s, nil
}

// SnapshotSubs lists the live subscriptions in id order as durable
// records (Snapshot cleared: a recovered subscription must not replay
// its baseline). Checkpoint writers call it.
func (r *Registry) SnapshotSubs() []SubRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SubRecord, 0, len(r.subs))
	for _, s := range r.subs {
		rec := SubRecord{ID: s.id, Req: s.req}
		rec.Req.Snapshot = false
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// SubscribeRecovered re-registers a subscription under its original id
// during crash recovery, leaving it detached (its consumer is gone; a
// client resumes it by id). Registering an id the registry already
// holds is a no-op, so a subscription present in both a checkpoint and
// a surviving WAL record recovers once. It blocks until the
// subscription has materialised against the current (recovered)
// snapshot; batches replayed afterwards then rebuild its delta history,
// which is what serves post-restart resumes.
func (r *Registry) SubscribeRecovered(rec SubRecord) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if _, ok := r.subs[rec.ID]; ok {
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	req := rec.Req
	req.Snapshot = false
	s, err := r.compile(req)
	if err != nil {
		return err
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrClosed
	}
	if _, ok := r.subs[rec.ID]; ok {
		r.mu.Unlock()
		return nil
	}
	s.id = rec.ID
	if rec.ID > r.nextID {
		r.nextID = rec.ID
	}
	r.subs[s.id] = s
	r.queue = append(r.queue, notice{sub: s})
	r.ensureWorkerLocked()
	r.cond.Broadcast()
	r.mu.Unlock()

	<-s.activated
	if s.actErr != nil {
		r.remove(s.id)
		return s.actErr
	}
	s.Detach()
	return nil
}

// Resume reattaches to subscription id, replaying every delta with a
// version greater than from into its pending queue and clearing any
// lag. A subscription being resumed must have one consumer at a time.
func (r *Registry) Resume(id, from uint64) (*Sub, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	s := r.subs[id]
	cur := r.version
	r.mu.Unlock()
	if s == nil {
		return nil, ErrUnknownSubscription
	}
	// r.version lags applied batches still in the notice queue, so a
	// client resuming from a delta version it legitimately received
	// mid-batch could be rejected as "future"; bound the check with the
	// host's current data version, which every delivered delta is ≤.
	if r.host != nil {
		snap, hv := r.host.Acquire()
		r.host.Release(snap)
		if hv > cur {
			cur = hv
		}
	}
	if err := s.resume(from, cur); err != nil {
		return nil, err
	}
	return s, nil
}

// Unsubscribe removes and terminates subscription id.
func (r *Registry) Unsubscribe(id uint64) bool {
	r.mu.Lock()
	s := r.subs[id]
	r.mu.Unlock()
	if s == nil {
		return false
	}
	s.Close()
	return true
}

// remove deletes id from the table (waking the worker so it can park or
// exit) and reports whether it was present.
func (r *Registry) remove(id uint64) bool {
	r.mu.Lock()
	_, ok := r.subs[id]
	delete(r.subs, id)
	r.cond.Broadcast()
	r.mu.Unlock()
	return ok
}

// Close terminates every subscription and shuts the registry down;
// further Subscribes fail with ErrClosed. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	dropped := r.queue
	r.queue = nil
	subs := make([]*Sub, 0, len(r.subs))
	for _, s := range r.subs {
		subs = append(subs, s)
	}
	r.subs = map[uint64]*Sub{}
	r.cond.Broadcast()
	r.mu.Unlock()

	for _, n := range dropped {
		if n.batch != nil {
			r.releaseBatch(n.batch)
		}
		if n.sub != nil {
			n.sub.finishActivation(ErrClosed)
		}
	}
	for _, s := range subs {
		s.terminate(ErrClosed)
	}
}

// Sync blocks until the notice queue is drained and returns the last
// processed data version (tests and benchmarks use it to line deltas up
// with applied batches).
func (r *Registry) Sync() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for (len(r.queue) > 0 || r.processing) && !r.closed {
		r.cond.Wait()
	}
	return r.version
}

// Stats snapshots the registry counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	st := Stats{Active: len(r.subs), Version: r.version}
	subs := make([]*Sub, 0, len(r.subs))
	for _, s := range r.subs {
		subs = append(subs, s)
	}
	r.mu.Unlock()
	for _, s := range subs {
		s.mu.Lock()
		if s.detached {
			st.Detached++
		}
		if s.lagged {
			st.Lagged++
		}
		s.mu.Unlock()
	}
	st.Batches = r.batches.Load()
	st.Incremental = r.incremental.Load()
	st.FullReevals = r.fullReevals.Load()
	st.Skipped = r.skipped.Load()
	st.Deltas = r.deltas.Load()
	st.Overflows = r.overflows.Load()
	st.EvalNS = r.evalNS.Load()
	st.Panics = r.panics.Load()
	return st
}

// ensureWorkerLocked starts the worker if it is not running; callers
// hold r.mu.
func (r *Registry) ensureWorkerLocked() {
	if !r.running {
		r.running = true
		go r.run()
	}
}

// run is the worker loop: it drains the notice queue and exits when no
// subscriptions remain (restarted on demand), so an idle registry
// leaks no goroutine.
func (r *Registry) run() {
	r.mu.Lock()
	for {
		for len(r.queue) == 0 {
			if len(r.subs) == 0 || r.closed {
				r.running = false
				r.cond.Broadcast()
				r.mu.Unlock()
				return
			}
			r.cond.Wait()
		}
		n := r.queue[0]
		r.queue[0] = notice{}
		r.queue = r.queue[1:]
		r.processing = true
		r.mu.Unlock()

		r.process(n)

		r.mu.Lock()
		r.processing = false
		r.cond.Broadcast()
	}
}

// process handles one notice outside the registry lock. The recover is
// a backstop for panics outside the per-subscription steps (which have
// their own): the worker must survive any single notice.
func (r *Registry) process(n notice) {
	t0 := time.Now()
	defer func() { r.evalNS.Add(time.Since(t0).Nanoseconds()) }()
	defer func() {
		if p := recover(); p != nil {
			r.panics.Add(1)
			if n.sub != nil {
				n.sub.finishActivation(fmt.Errorf("standing: activation panicked: %v", p))
			}
		}
	}()
	if n.sub != nil {
		r.activate(n.sub)
		return
	}
	b := n.batch
	defer r.releaseBatch(b)
	r.batches.Add(1)
	for _, s := range r.liveSubs() {
		r.processSub(s, b)
	}
	r.mu.Lock()
	if b.Version > r.version {
		r.version = b.Version
	}
	r.mu.Unlock()
	r.pruneDetached()
}

// liveSubs snapshots the subscription table in id order (deterministic
// processing order; stable across runs for a given update sequence).
func (r *Registry) liveSubs() []*Sub {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Sub, 0, len(r.subs))
	for _, s := range r.subs {
		out = append(out, s)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].id > out[j].id; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// activate materialises a new subscription's initial result. A panic
// in the evaluation fails the Subscribe call instead of killing the
// worker.
func (r *Registry) activate(s *Sub) {
	defer func() {
		if p := recover(); p != nil {
			r.panics.Add(1)
			r.remove(s.id)
			s.finishActivation(fmt.Errorf("standing: activation panicked: %v", p))
		}
	}()
	snap, ver := r.host.Acquire()
	defer r.host.Release(snap)
	if err := r.materialize(s, snap); err != nil {
		s.finishActivation(err)
		return
	}
	s.since = ver
	s.startVer = ver
	s.ready = true
	r.mu.Lock()
	if ver > r.version {
		r.version = ver
	}
	r.mu.Unlock()
	s.mu.Lock()
	s.histFloor = ver
	s.mu.Unlock()
	if s.wantSnapshot {
		// The baseline delta is pushed even when empty so the
		// subscriber knows the initial state is complete.
		d := s.currentAsDelta(r, ver)
		s.push(r, d, true)
	}
	s.finishActivation(nil)
}

// processSub maintains one subscription across one batch; a failed or
// panicking evaluation terminates the subscription (a silent skip
// would deliver wrong deltas forever after), leaving the worker and
// every other subscription serving.
func (r *Registry) processSub(s *Sub, b *Batch) {
	defer func() {
		if p := recover(); p != nil {
			r.panics.Add(1)
			r.remove(s.id)
			s.terminate(fmt.Errorf("standing: subscription %d panicked at version %d: %v", s.id, b.Version, p))
			r.evict(s.id)
		}
	}()
	// A subscription whose activation notice is still queued behind
	// this batch has no materialised state yet (cols/rows are nil);
	// skip it — its activation snapshot, pinned later, already
	// includes this batch, and b.Version <= s.since then keeps any
	// re-delivery out.
	if !s.ready || s.isTerminated() || b.Version <= s.since {
		return
	}
	s.since = b.Version
	if b.New == nil {
		// A data-free version advance (compaction swap): results
		// cannot change.
		return
	}
	d := Delta{Version: b.Version}
	var err error
	if s.isPattern {
		err = r.patternDelta(s, b, &d)
	} else {
		err = r.rpqDelta(s, b, &d)
	}
	if err != nil {
		r.remove(s.id)
		s.terminate(fmt.Errorf("standing: subscription %d failed at version %d: %w", s.id, b.Version, err))
		r.evict(s.id)
		return
	}
	if !d.Empty() {
		sortDelta(&d)
		s.push(r, d, false)
	}
}

// releaseBatch unpins a batch's snapshots.
func (r *Registry) releaseBatch(b *Batch) {
	if b.Old != nil {
		r.host.Release(b.Old)
	}
	if b.New != nil {
		r.host.Release(b.New)
	}
}

// pruneDetached drops detached subscriptions past their TTL; called
// from the worker after each batch, so an idle registry prunes lazily
// (a detached subscription on a quiet database costs only its history).
func (r *Registry) pruneDetached() {
	var expired []*Sub
	now := time.Now()
	r.mu.Lock()
	for _, s := range r.subs {
		s.mu.Lock()
		if s.detached && now.Sub(s.detachedAt) > r.cfg.DetachTTL {
			expired = append(expired, s)
		}
		s.mu.Unlock()
	}
	for _, s := range expired {
		delete(r.subs, s.id)
	}
	if len(expired) > 0 {
		r.cond.Broadcast()
	}
	r.mu.Unlock()
	for _, s := range expired {
		s.terminate(ErrClosed)
		r.evict(s.id)
	}
}

// evict reports a registry-initiated drop to the durability hook.
func (r *Registry) evict(id uint64) {
	if fn := r.OnEvict; fn != nil {
		fn(id)
	}
}
