package standing

import (
	"context"
	"time"

	"ringrpq/internal/query"

	"sync"

	"ringrpq/internal/pathexpr"
)

// Sub is one standing-query subscription. Deltas are consumed with
// Next (blocking) or TryNext; a Sub expects a single consumer at a
// time (an SSE connection, a poll loop), though registration-side
// methods (Close, Detach, the registry's Resume) are safe from any
// goroutine.
type Sub struct {
	id  uint64
	reg *Registry

	// req is the original request, kept for durable re-registration
	// (SnapshotSubs / SubscribeRecovered).
	req Request

	// Compiled query — immutable after compile().
	isPattern bool
	pat       *query.Query
	vars      []string
	// expr is the path expression in evaluation orientation: constant-
	// subject subscriptions are normalised to constant-object ones over
	// the inverse expression (swap set), so the materialised view is
	// always keyed by the evaluation object ("columns").
	expr     pathexpr.Node
	swap     bool
	subjName string // eval-orientation constant subject ("" = variable)
	objName  string // eval-orientation constant object ("" = variable)
	nullable bool
	// universal marks an unbounded alphabet (negated symbol classes or
	// variable predicates): every batch is relevant and maintenance
	// falls back to re-evaluation.
	universal bool
	alphabet  map[uint32]bool
	// closure is (c1|c2|...)* over the alphabet, the probe expression
	// for affected-column discovery; nil when universal or empty.
	closure      pathexpr.Node
	wantSnapshot bool
	depth        int

	// startVer is the data version the initial result was materialised
	// against. The worker writes it once in activate() before resolving
	// the activation channel, so it is immutable by the time Subscribe
	// returns and safe to read from consumer goroutines.
	startVer uint64

	// Maintenance state, owned by the registry worker.
	ready    bool // activation processed; batch notices may apply
	since    uint64
	numNodes int
	cols     map[uint32]map[uint32]bool // eval object → set of eval subjects
	rows     map[string][]string        // row key → projected row
	objID    uint32
	objOK    bool
	subjID   uint32
	subjOK   bool

	// Delivery state.
	mu         sync.Mutex
	pending    []Delta
	history    []Delta
	histFloor  uint64 // versions > histFloor are fully replayable
	lagged     bool
	detached   bool
	detachedAt time.Time
	err        error // terminal; nil while live
	wake       chan struct{}

	activated chan struct{}
	actOnce   sync.Once
	actErr    error
}

// ID identifies the subscription for Resume and Unsubscribe.
func (s *Sub) ID() uint64 { return s.id }

// StartVersion is the data version the initial result was materialised
// against; deltas describe changes after it.
func (s *Sub) StartVersion() uint64 { return s.startVer }

// Vars lists a pattern subscription's projected variable names (the
// column order of Delta.AddedRows/RemovedRows); nil for 2RPQs.
func (s *Sub) Vars() []string { return s.vars }

// IsPattern reports a graph-pattern subscription.
func (s *Sub) IsPattern() bool { return s.isPattern }

// Next blocks for the next delta. It returns ErrLagged once the
// pending queue has overflowed and drained (resume from the last seen
// version to catch up from history), a terminal error after Close /
// Unsubscribe / registry shutdown / an evaluation failure, or the
// context's error.
func (s *Sub) Next(ctx context.Context) (Delta, error) {
	for {
		d, ok, err := s.TryNext()
		if ok || err != nil {
			return d, err
		}
		select {
		case <-s.wake:
		case <-ctx.Done():
			return Delta{}, ctx.Err()
		}
	}
}

// TryNext is the non-blocking Next: ok reports whether a delta was
// ready. err is as in Next; (zero, false, nil) means "nothing yet".
func (s *Sub) TryNext() (Delta, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) > 0 {
		d := s.pending[0]
		copy(s.pending, s.pending[1:])
		s.pending[len(s.pending)-1] = Delta{}
		s.pending = s.pending[:len(s.pending)-1]
		return d, true, nil
	}
	if s.err != nil {
		return Delta{}, false, s.err
	}
	if s.lagged {
		return Delta{}, false, ErrLagged
	}
	return Delta{}, false, nil
}

// Close unregisters the subscription and terminates it: queued deltas
// still drain, then Next returns ErrClosed. Idempotent.
func (s *Sub) Close() {
	s.reg.remove(s.id)
	s.terminate(ErrClosed)
}

// Detach marks the consumer as disconnected while keeping the
// subscription resumable: deltas keep accumulating in the history (and
// pending queue) until a Resume reattaches or Config.DetachTTL
// expires. SSE/long-poll handlers call it when the connection drops.
func (s *Sub) Detach() {
	s.mu.Lock()
	if s.err == nil {
		s.detached = true
		s.detachedAt = time.Now()
	}
	s.mu.Unlock()
}

// resume reattaches at version from (see Registry.Resume); cur bounds
// the future check — the registry's processed version or the host's
// current data version, whichever is newer.
func (s *Sub) resume(from, cur uint64) error {
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return s.err
	}
	if from > cur {
		s.mu.Unlock()
		return ErrFutureVersion
	}
	if from < s.histFloor {
		s.mu.Unlock()
		return ErrTooOld
	}
	s.detached = false
	s.lagged = false
	s.pending = s.pending[:0]
	for _, d := range s.history {
		if d.Version > from {
			s.pending = append(s.pending, d)
		}
	}
	s.mu.Unlock()
	s.signal()
	return nil
}

// push appends a delta to the history and, queue permitting, the
// pending queue; a full queue marks the subscriber lagged instead of
// blocking the worker. Once lagged, every later delta is dropped too
// until a resume clears the flag: letting newer deltas re-enter the
// queue past a dropped one would hand the consumer a stream with a
// silent gap it could never detect (the dropped deltas stay resumable
// from history). initial deltas (the Snapshot baseline) are not
// recorded in history — they precede StartVersion's cut, and a resume
// replays changes, not the baseline.
func (s *Sub) push(r *Registry, d Delta, initial bool) {
	r.deltas.Add(1)
	s.mu.Lock()
	if s.err != nil {
		s.mu.Unlock()
		return
	}
	if !initial {
		s.history = append(s.history, d)
		if len(s.history) > r.cfg.History {
			s.histFloor = s.history[0].Version
			copy(s.history, s.history[1:])
			s.history[len(s.history)-1] = Delta{}
			s.history = s.history[:len(s.history)-1]
		}
	}
	if s.lagged || len(s.pending) >= s.depth {
		s.lagged = true
		r.overflows.Add(1)
	} else {
		s.pending = append(s.pending, d)
	}
	s.mu.Unlock()
	s.signal()
}

// terminate sets the terminal error (first writer wins) and wakes the
// consumer.
func (s *Sub) terminate(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.signal()
	s.finishActivation(err)
}

func (s *Sub) isTerminated() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err != nil
}

func (s *Sub) signal() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// finishActivation resolves the Subscribe call waiting on activation.
func (s *Sub) finishActivation(err error) {
	s.actOnce.Do(func() {
		s.actErr = err
		close(s.activated)
	})
}
