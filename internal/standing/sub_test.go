package standing

import (
	"context"
	"errors"
	"testing"
	"time"
)

func newTestSub(r *Registry, depth int) *Sub {
	return &Sub{
		id: 1, reg: r, depth: depth,
		wake:      make(chan struct{}, 1),
		activated: make(chan struct{}),
	}
}

func delta(v uint64) Delta {
	return Delta{Version: v, Added: []Pair{{Subject: "a", Object: "b"}}}
}

func TestSubPushOverflowAndHistory(t *testing.T) {
	r := New(nil, Config{QueueDepth: 2, History: 3})
	s := newTestSub(r, 2)

	for v := uint64(1); v <= 4; v++ {
		s.push(r, delta(v), false)
	}
	// Queue of two: versions 1 and 2 pend, 3 and 4 overflow (lagged).
	if got := r.overflows.Load(); got != 2 {
		t.Fatalf("overflows = %d", got)
	}
	for want := uint64(1); want <= 2; want++ {
		d, ok, err := s.TryNext()
		if !ok || err != nil || d.Version != want {
			t.Fatalf("TryNext = (%v, %v, %v), want version %d", d, ok, err, want)
		}
	}
	if _, _, err := s.TryNext(); !errors.Is(err, ErrLagged) {
		t.Fatalf("after overflow: %v, want ErrLagged", err)
	}

	// History of three holds versions 2..4 (1 evicted, floor = 1).
	if err := s.resume(0, 4); !errors.Is(err, ErrTooOld) {
		t.Fatalf("resume(0): %v, want ErrTooOld", err)
	}
	if err := s.resume(5, 4); !errors.Is(err, ErrFutureVersion) {
		t.Fatalf("resume(5): %v, want ErrFutureVersion", err)
	}
	if err := s.resume(2, 4); err != nil {
		t.Fatalf("resume(2): %v", err)
	}
	for want := uint64(3); want <= 4; want++ {
		d, ok, err := s.TryNext()
		if !ok || err != nil || d.Version != want {
			t.Fatalf("replay TryNext = (%v, %v, %v), want version %d", d, ok, err, want)
		}
	}
	if _, ok, err := s.TryNext(); ok || err != nil {
		t.Fatalf("after replay: ok=%v err=%v (lag must be cleared)", ok, err)
	}
}

// TestSubPushLaggedDropsUntilResume: once the pending queue overflows,
// later deltas must not re-enter it past the dropped one — the consumer
// would see a stream with a silent gap (v2 then v4) and could never
// recover v3 by resuming from its last delivered version. Dropping
// everything until resume keeps the delivered prefix gapless.
func TestSubPushLaggedDropsUntilResume(t *testing.T) {
	r := New(nil, Config{QueueDepth: 2, History: 8})
	s := newTestSub(r, 2)

	s.push(r, delta(1), false)
	s.push(r, delta(2), false)
	s.push(r, delta(3), false) // overflows: lagged
	// Drain one slot, then push another delta: it must NOT slip into
	// the freed slot behind the dropped version 3.
	if d, ok, err := s.TryNext(); !ok || err != nil || d.Version != 1 {
		t.Fatalf("TryNext = (%v, %v, %v)", d, ok, err)
	}
	s.push(r, delta(4), false)
	if got := r.overflows.Load(); got != 2 {
		t.Fatalf("overflows = %d, want 2 (v4 must drop while lagged)", got)
	}
	if d, ok, err := s.TryNext(); !ok || err != nil || d.Version != 2 {
		t.Fatalf("TryNext = (%v, %v, %v)", d, ok, err)
	}
	if _, _, err := s.TryNext(); !errors.Is(err, ErrLagged) {
		t.Fatalf("after gap: %v, want ErrLagged (not version 4)", err)
	}

	// Resuming from the last delivered version replays 3 and 4 in
	// order: nothing was lost, only deferred to history.
	if err := s.resume(2, 4); err != nil {
		t.Fatal(err)
	}
	for want := uint64(3); want <= 4; want++ {
		d, ok, err := s.TryNext()
		if !ok || err != nil || d.Version != want {
			t.Fatalf("replay TryNext = (%v, %v, %v), want version %d", d, ok, err, want)
		}
	}
}

// TestProcessSubSkipsUnactivated: a batch notice can sit in the queue
// ahead of a new subscription's activation notice (Subscribe registers
// the sub and enqueues its activation atomically, but batches enqueued
// earlier are processed first, against the full table). processSub must
// skip the unmaterialised sub — its cols map is nil and the registry's
// host calls would dereference nil snapshots — and leave its cursor
// untouched so activation, whose snapshot already includes the batch,
// sets the baseline.
func TestProcessSubSkipsUnactivated(t *testing.T) {
	r := New(nil, Config{})
	s := newTestSub(r, 4)
	s.alphabet = map[uint32]bool{1: true}
	b := &Batch{Version: 3, Adds: []Edge{{S: 0, P: 1, O: 2}}, New: struct{}{}}
	r.processSub(s, b) // must not touch the sub (nil host would panic)
	if s.since != 0 || len(s.pending) != 0 {
		t.Fatalf("unactivated sub advanced: since=%d pending=%v", s.since, s.pending)
	}
}

func TestSubInitialDeltaSkipsHistory(t *testing.T) {
	r := New(nil, Config{})
	s := newTestSub(r, 4)
	s.push(r, delta(7), true) // snapshot baseline
	s.push(r, delta(8), false)
	if len(s.history) != 1 || s.history[0].Version != 8 {
		t.Fatalf("history = %v (baseline must not be recorded)", s.history)
	}
	// A resume from the start version replays only the change stream.
	if err := s.resume(7, 8); err != nil {
		t.Fatal(err)
	}
	d, ok, err := s.TryNext()
	if !ok || err != nil || d.Version != 8 {
		t.Fatalf("TryNext = (%v, %v, %v)", d, ok, err)
	}
}

func TestSubTerminateDrainsThenFails(t *testing.T) {
	r := New(nil, Config{})
	s := newTestSub(r, 4)
	s.push(r, delta(1), false)
	s.terminate(ErrClosed)
	d, ok, err := s.TryNext()
	if !ok || err != nil || d.Version != 1 {
		t.Fatalf("queued delta must drain first: (%v, %v, %v)", d, ok, err)
	}
	if _, _, err := s.TryNext(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after drain: %v, want ErrClosed", err)
	}
	s.push(r, delta(2), false) // ignored after termination
	if _, _, err := s.TryNext(); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after terminate leaked: %v", err)
	}
	if err := s.resume(1, 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("resume after terminate: %v", err)
	}
}

func TestSubNextContext(t *testing.T) {
	r := New(nil, Config{})
	s := newTestSub(r, 4)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := s.Next(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Next on empty sub: %v", err)
	}

	go func() {
		time.Sleep(10 * time.Millisecond)
		s.push(r, delta(3), false)
	}()
	d, err := s.Next(context.Background())
	if err != nil || d.Version != 3 {
		t.Fatalf("Next = (%v, %v)", d, err)
	}
}

func TestRegistryCloseResolvesPending(t *testing.T) {
	r := New(nil, Config{})
	s := newTestSub(r, 4)
	r.subs[s.id] = s
	r.Close()
	if _, err := s.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after registry close: %v", err)
	}
	if _, err := r.Subscribe(Request{Expr: "p"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after close: %v", err)
	}
	r.Close() // idempotent
}
