package overlay

import (
	"context"
	"errors"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/glushkov"
	"ringrpq/internal/lazy"
	"ringrpq/internal/obs"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/wavelet"
)

// Engine evaluates 2RPQs over the union graph ring ∪ adds − dels,
// implementing core.Evaluator so the snapshot layer can swap it in
// wherever a static engine is expected.
//
// The traversal is the paper's backward product-graph search (§4), with
// three departures from core.Engine:
//
//   - each step unions the in-edges of the current object across every
//     static sub-ring (one for the single-ring layout, K for a sharded
//     one — all built over global id spaces) and the overlay's sorted
//     adds, and drops tombstoned static edges;
//   - novelty is decided against one global per-node visited mask (the
//     per-ring D[v] marks only prune wavelet subtrees, exactly like the
//     sharded engine's cooperative traversal);
//   - it is item-at-a-time (no frontier batching) — the overlay is
//     bounded by the compaction threshold, and compaction restores the
//     static engine's batched speed.
//
// When the query's predicates have no overlay adds or tombstones (and
// nullability cannot surface overlay-only nodes), the whole evaluation
// is delegated to the static engine: a read-mostly workload keeps
// static-path performance even mid-update.
//
// Like core.Engine it owns working arrays and must not be used
// concurrently; build one per worker clone.
type Engine struct {
	static   core.Evaluator
	rings    []*ring.Ring
	ids      glushkov.SymbolIDs
	numPreds uint32 // completed alphabet size

	ov       *Overlay
	numNodes int // snapshot dictionary size ≥ every ring's NumNodes

	work     []*ringWork
	pairs    core.PairSet    // fast-path result dedup (see fastpath.go)
	visited  *lazy.MaskArray // global per-node visited-state masks
	queue    []item
	level    []item
	lpItems  []wavelet.RangeMask
	lsItems  []wavelet.RangeMask
	compiled map[string]*compiledExpr
	keyW     pathexpr.KeyWriter

	// per-evaluation state
	stats     core.Stats
	trace     *obs.Trace
	deadline  time.Time
	steps     int
	limit     int
	results   int
	base      uint64
	batch     bool
	eager     bool
	noCompile bool
	failure   error
	fastErr   error

	// st is the active stepper (compiled specialization when the
	// expression is hot, the interpreting engine otherwise); installed
	// by prepare alongside the per-ring bArr arrays.
	st glushkov.Stepper
}

type item struct {
	node uint32
	d    uint64
}

// ringWork holds the per-sub-ring pruning arrays (the B[v]/D[v] masks
// of §4.1–4.2, one pair per ring because wavelet node ids are
// ring-local).
type ringWork struct {
	r      *ring.Ring
	bNode  *lazy.MaskArray
	dNode  *lazy.MaskArray
	lsPads []wavelet.NodeID

	// bArr, when non-nil, is the compiled expression's precomputed
	// immutable B[v] array for this ring, replacing bNode for the
	// current evaluation.
	bArr []uint64

	// delRanks caches, per overlay version, the tombstones' leaf ranks
	// under their subjects: the batched part 2 drops fully-tombstoned
	// leaf items through the LeafMask hook (see batch.go).
	delRanks        map[uint32][]int
	delRanksVersion uint64
	delRanksValid   bool
}

type compiledExpr struct {
	a    *glushkov.Automaton
	eng  *glushkov.Engine // nil beyond 64 states
	wide *glushkov.Wide   // built lazily for the >64-state fallback

	// Compilation tier (mirrors core.compiledAutomaton): built when the
	// expression's use count crosses the threshold, bArrs per sub-ring.
	uses  int
	st    glushkov.Stepper
	bArrs [][]uint64
}

var _ core.Evaluator = (*Engine)(nil)

// errLimit mirrors core's internal limit sentinel.
var errLimit = errors.New("overlay: result limit")

// compileThreshold mirrors core's: the use count past which an
// expression gets a compiled stepper.
const compileThreshold = 2

// NewEngine builds a union evaluator. static is the snapshot's ordinary
// evaluator (single-ring or sharded engine) used for whole-query
// delegation; rings are its sub-rings over global id spaces; numPreds
// is the completed predicate count. Call SetSnapshot before Eval.
func NewEngine(static core.Evaluator, rings []*ring.Ring, ids glushkov.SymbolIDs, numPreds uint32) *Engine {
	e := &Engine{static: static, rings: rings, ids: ids, numPreds: numPreds, compiled: map[string]*compiledExpr{}}
	for _, r := range rings {
		e.work = append(e.work, &ringWork{
			r:      r,
			bNode:  lazy.NewMaskArray(r.Lp.NumNodes()),
			dNode:  lazy.NewMaskArray(r.Ls.NumNodes()),
			lsPads: r.Ls.PadNodes(),
		})
	}
	return e
}

// SetSnapshot points the engine at one overlay version and the node-id
// space of its snapshot (the dictionary length when the snapshot was
// taken, covering every overlay add).
func (e *Engine) SetSnapshot(ov *Overlay, numNodes int) {
	if e.ov != ov {
		for _, w := range e.work {
			w.delRanksValid = false
		}
	}
	e.ov = ov
	e.numNodes = numNodes
	if e.visited == nil || e.visited.Len() < numNodes {
		e.visited = lazy.NewMaskArray(numNodes)
	}
}

// staticNumNodes is the id space of the static rings (identical across
// shards by construction).
func (e *Engine) staticNumNodes() int {
	if len(e.rings) == 0 {
		return 0
	}
	return e.rings[0].NumNodes
}

// compile memoises the Glushkov compilation of expr (narrow engine
// when it fits in 64 states, wide fallback otherwise), mirroring
// core.Engine.compile.
func (e *Engine) compile(expr pathexpr.Node) *compiledExpr {
	kb := e.keyW.Key(expr)
	c, ok := e.compiled[string(kb)] // no-copy lookup
	if !ok {
		a := glushkov.Build(expr, e.ids)
		eng, err := glushkov.NewEngineFor(a, e.numPreds)
		if err != nil {
			eng = nil
		}
		c = &compiledExpr{a: a, eng: eng}
		if len(e.compiled) >= 128 {
			e.compiled = make(map[string]*compiledExpr, 16)
		}
		e.compiled[string(kb)] = c
	}
	c.uses++
	if c.eng != nil && c.st == nil && !e.noCompile && (e.eager || c.uses > compileThreshold) {
		c.st = glushkov.Compile(c.eng, e.numPreds)
		c.bArrs = make([][]uint64, len(e.work))
		for i, w := range e.work {
			c.bArrs[i] = core.BuildBArr(w.r.Lp, c.eng)
		}
	}
	return c
}

func (e *Engine) wideFor(c *compiledExpr) *glushkov.Wide {
	if c.wide == nil {
		c.wide = glushkov.NewWideFor(c.a, e.numPreds)
	}
	return c.wide
}

// canDelegate reports whether the static engine alone answers q
// exactly: no automaton predicate is touched by an overlay add or
// tombstone, symbol classes are absent (they read every predicate),
// and nullability cannot relate overlay-only nodes (ids beyond the
// static rings) to themselves.
func (e *Engine) canDelegate(a *glushkov.Automaton) bool {
	if a.HasClasses() {
		return false
	}
	if a.Nullable && e.numNodes > e.staticNumNodes() {
		return false
	}
	for _, c := range a.Syms {
		if c == glushkov.NoSymbol {
			continue
		}
		if e.ov.TouchesPred(c) {
			return false
		}
	}
	return true
}

// Eval implements core.Evaluator with core.Engine's contract: distinct
// pairs, Options.Limit/Timeout honoured, ErrTimeout with valid partial
// results. Options.DFS/DisableBatching/DisableFastPaths are accepted
// and ignored (the union traversal has one mode).
func (e *Engine) Eval(ctx context.Context, q core.Query, opts core.Options, emit core.EmitFunc) (core.Stats, error) {
	if e.ov == nil || e.ov.Empty() {
		return e.static.Eval(ctx, q, opts, emit)
	}
	opts = core.FoldContext(ctx, opts)
	e.eager = opts.CompileEager
	e.noCompile = opts.DisableCompiled
	if c := e.compile(q.Expr); e.canDelegate(c.a) {
		return e.static.Eval(ctx, q, opts, emit)
	}

	e.stats = core.Stats{}
	e.steps = 0
	e.failure = nil
	e.results = 0
	e.limit = opts.Limit
	e.base = 0
	e.batch = !opts.DisableBatching && !opts.DFS
	e.trace = opts.Trace
	if opts.Timeout > 0 {
		e.deadline = time.Now().Add(opts.Timeout)
	} else {
		e.deadline = time.Time{}
	}
	counted := func(s, o uint32) bool {
		e.stats.Results++
		e.results++
		if !emit(s, o) {
			return false
		}
		return e.limit == 0 || e.results < e.limit
	}

	sp := e.trace.Begin(obs.SpanTraverse)
	var err error
	switch {
	case q.Subject == core.Variable && q.Object == core.Variable &&
		!opts.DisableFastPaths && e.tryFastPath(q.Expr, counted):
		err = e.fastErr
	case q.Object != core.Variable && q.Subject == core.Variable:
		err = e.evalToConst(q.Expr, uint32(q.Object), false, counted)
	case q.Subject != core.Variable && q.Object == core.Variable:
		err = e.evalToConst(pathexpr.InverseOf(q.Expr), uint32(q.Subject), true, counted)
	case q.Subject != core.Variable && q.Object != core.Variable:
		err = e.evalBothConst(q.Expr, uint32(q.Subject), uint32(q.Object), counted)
	default:
		err = e.evalBothVar(q.Expr, counted)
	}
	e.trace.EndVals(sp, int64(e.stats.ProductNodes), int64(e.stats.ProductEdges),
		int64(e.stats.WaveletVisits), int64(e.stats.Results))
	if errors.Is(err, errLimit) {
		err = nil
	}
	return e.stats, err
}

// release resets every per-query working array in O(1).
func (e *Engine) release() {
	e.visited.Reset()
	for _, w := range e.work {
		w.bNode.Reset()
		w.dNode.Reset()
		w.bArr = nil
	}
	e.queue = e.queue[:0]
	e.level = e.level[:0]
	e.st = nil
}

// prepare installs the per-evaluation stepper and B[v] masks for c,
// like core.Engine.prepare + markPads: the compiled stepper and
// precomputed per-ring B[v] arrays when the expression is hot, else the
// interpreter with lazy seeding.
func (e *Engine) prepare(c *compiledExpr) {
	compiled := c.st != nil
	if compiled {
		e.st = c.st
	} else {
		e.st = c.eng
	}
	for i, w := range e.work {
		if compiled {
			w.bArr = c.bArrs[i]
		} else {
			w.bArr = nil
			for sym, mask := range c.eng.B {
				for id := w.r.Lp.LeafID(sym); id >= 1; id = id.Parent() {
					w.bNode.Or(int(id), mask)
				}
			}
		}
		for _, id := range w.lsPads {
			w.dNode.Set(int(id), ^uint64(0))
		}
	}
}

// resetMarks clears only the visited state (between the per-start
// traversals of a v→v phase 2), keeping the B masks.
func (e *Engine) resetMarks() {
	e.visited.Reset()
	for _, w := range e.work {
		w.dNode.Reset()
		for _, id := range w.lsPads {
			w.dNode.Set(int(id), ^uint64(0))
		}
	}
	e.queue = e.queue[:0]
}

// markNode records that node s was visited with states d: the global
// mask plus every sub-ring's D[v] leaf (bottom-up intersection
// maintenance as in core.Engine.markSubject).
func (e *Engine) markNode(s uint32, d uint64) {
	e.visited.Or(int(s), d)
	for _, w := range e.work {
		if int(s) >= w.r.NumNodes {
			continue
		}
		leaf := w.r.Ls.LeafID(s)
		w.dNode.Or(int(leaf), d)
		for id := leaf.Parent(); id >= 1; id = id.Parent() {
			v := w.dNode.Get(int(2*id)) & w.dNode.Get(int(2*id+1))
			if v == w.dNode.Get(int(id)) {
				break
			}
			w.dNode.Set(int(id), v)
		}
	}
}

// arrive processes reaching node s with automaton states d2: dedup
// against the global mask, report when the initial state is reached,
// and enqueue remaining work.
func (e *Engine) arrive(eng *glushkov.Engine, s uint32, d2 uint64, emit core.EmitFunc) bool {
	newStates := d2 &^ (e.visited.Get(int(s)) | e.base)
	if newStates == 0 {
		return true
	}
	e.stats.ProductNodes++
	e.markNode(s, d2)
	if newStates&eng.Init != 0 {
		if !emit(s, 0) {
			e.failure = errLimit
			return false
		}
		newStates &^= eng.Init
	}
	if newStates != 0 && e.hasInEdges(s) {
		e.queue = append(e.queue, item{s, newStates})
	}
	return true
}

// hasInEdges reports whether node s has any union in-edge: enqueueing
// sink nodes would only grow the frontier sorts.
func (e *Engine) hasInEdges(s uint32) bool {
	for _, w := range e.work {
		if int(s) < w.r.NumNodes && w.r.Co[s+1] > w.r.Co[s] {
			return true
		}
	}
	ok := true
	e.ov.InEdges(s, func(uint32, uint32) bool {
		ok = false
		return false
	})
	return !ok
}

// bfs drains the worklist: the frontier-batched level-synchronous
// expansion by default (see batch.go), the item-at-a-time FIFO under
// Options.DisableBatching/DFS (and as the differential ablation).
func (e *Engine) bfs(eng *glushkov.Engine, emit core.EmitFunc) error {
	if e.batch {
		return e.bfsBatched(eng, emit)
	}
	for head := 0; head < len(e.queue); head++ {
		it := e.queue[head]
		if err := e.expand(eng, it.node, it.d, emit); err != nil {
			return err
		}
	}
	return nil
}

// expand performs one backward step from object o with active states d.
func (e *Engine) expand(eng *glushkov.Engine, o uint32, d uint64, emit core.EmitFunc) error {
	if err := e.checkDeadline(); err != nil {
		return err
	}
	for _, w := range e.work {
		if int(o) >= w.r.NumNodes {
			continue
		}
		b, end := w.r.ObjectRange(o)
		if b == end {
			continue
		}
		if err := e.ringStep(eng, w, int64(o), b, end, d, emit); err != nil {
			return err
		}
	}
	return e.overlayStep(eng, o, d, emit)
}

// overlayStep expands the overlay adds entering o.
func (e *Engine) overlayStep(eng *glushkov.Engine, o uint32, d uint64, emit core.EmitFunc) error {
	e.ov.InEdges(o, func(p, s uint32) bool {
		// Per-edge deadline probe: one object may have many overlay adds.
		if err := e.checkDeadline(); err != nil {
			e.failure = err
			return false
		}
		bp := e.st.PredMask(p)
		if d&bp == 0 {
			return true
		}
		e.stats.ProductEdges++
		d2 := e.st.StepBack(d & bp)
		if d2 == 0 {
			return true
		}
		return e.arrive(eng, s, d2, emit)
	})
	return e.failure
}

// ringStep is part 1 of §4 over one sub-ring: find the distinct
// predicates of L_p[b, end) leading to an active state, pruned by the
// aggregated B[v] masks, then map each through backward search to its
// L_s subject range (part 2).
func (e *Engine) ringStep(eng *glushkov.Engine, w *ringWork, o int64, b, end int, d uint64, emit core.EmitFunc) error {
	negFwd, negInv := eng.NegClassBits()
	half := e.numPreds / 2
	var failure error
	w.r.Lp.Traverse(b, end, func(node wavelet.NodeID, leaf bool, p uint32, rb, re int, full bool) bool {
		if failure != nil {
			return false
		}
		e.stats.WaveletVisits++
		if !leaf {
			var bm uint64
			if w.bArr != nil {
				bm = w.bArr[node]
			} else {
				bm = w.bNode.Get(int(node))
			}
			if d&bm != 0 {
				return true
			}
			if negFwd|negInv == 0 {
				return false
			}
			lo, hi := w.r.Lp.SymRange(node)
			var cb uint64
			if lo < half {
				cb |= negFwd
			}
			if hi > half {
				cb |= negInv
			}
			return d&cb != 0
		}
		// Per-expansion deadline probe (a single step can cover many
		// predicate leaves).
		if err := e.checkDeadline(); err != nil {
			failure = err
			return false
		}
		bp := e.st.PredMask(p)
		if d&bp == 0 {
			return true
		}
		e.stats.ProductEdges++
		d2 := e.st.StepBack(d & bp)
		if d2 == 0 {
			return true
		}
		lsB := w.r.Cp[p] + rb
		lsE := w.r.Cp[p] + re
		if err := e.part2(eng, w, o, p, lsB, lsE, d2, emit); err != nil {
			failure = err
			return false
		}
		return true
	})
	return failure
}

// part2 enumerates the distinct subjects of L_s[b, end) still carrying
// unvisited states, skipping tombstoned edges. o ≥ 0 names the exact
// object of the step; o < 0 marks the full-range phase, where a
// subject survives iff its multiplicity under p exceeds its (p, s)
// tombstone count.
func (e *Engine) part2(eng *glushkov.Engine, w *ringWork, o int64, p uint32, b, end int, d2 uint64, emit core.EmitFunc) error {
	checkDels := e.ov.DelsForPred(p) > 0
	var failure error
	w.r.Ls.Traverse(b, end, func(node wavelet.NodeID, leaf bool, s uint32, rb, re int, full bool) bool {
		if failure != nil {
			return false
		}
		e.stats.WaveletVisits++
		if !leaf {
			// Prune subtrees all of whose subjects were already visited
			// with every state in d2 (conservative: per-ring marks only
			// under-approximate the global mask).
			return d2&^(w.dNode.Get(int(node))|e.base) != 0
		}
		// Per-leaf deadline probe (dense objects cover many subjects).
		if err := e.checkDeadline(); err != nil {
			failure = err
			return false
		}
		if checkDels {
			if o >= 0 {
				if e.ov.Deleted(Edge{S: s, P: p, O: uint32(o)}) {
					return true
				}
			} else if re-rb <= e.ov.DeletedPS(p, s) {
				return true
			}
		}
		if !e.arrive(eng, s, d2, emit) {
			failure = e.failure
			return false
		}
		return true
	})
	return failure
}

// evalToConst evaluates (x, E, o) for fixed o, emitting (s, o) pairs —
// or (o, s) when swap is set (the (s, E, y) rewriting of §4.4).
func (e *Engine) evalToConst(expr pathexpr.Node, o uint32, swap bool, emit core.EmitFunc) error {
	pair := func(r, _ uint32) bool {
		if swap {
			return emit(o, r)
		}
		return emit(r, o)
	}
	c := e.compile(expr)
	if c.eng == nil || e.noCompile {
		return e.wideEvalToConst(expr, o, swap, emit)
	}
	if int(o) >= e.numNodes {
		return nil
	}
	if c.a.Nullable {
		if !pair(o, o) {
			return errLimit
		}
	}
	defer e.release()
	e.prepare(c)
	e.markNode(o, c.eng.F)
	e.queue = append(e.queue, item{o, c.eng.F})
	return e.bfs(c.eng, pair)
}

// evalBothConst evaluates (s, E, o), stopping at the first match.
func (e *Engine) evalBothConst(expr pathexpr.Node, s, o uint32, emit core.EmitFunc) error {
	c := e.compile(expr)
	if c.eng == nil || e.noCompile {
		return e.wideEvalBothConst(expr, s, o, emit)
	}
	if int(o) >= e.numNodes || int(s) >= e.numNodes {
		return nil
	}
	if c.a.Nullable && s == o {
		emit(s, o)
		return nil
	}
	found := false
	probe := func(got, _ uint32) bool {
		if got == s {
			found = true
			emit(s, o)
			return false
		}
		return true
	}
	defer e.release()
	e.prepare(c)
	e.markNode(o, c.eng.F)
	e.queue = append(e.queue, item{o, c.eng.F})
	err := e.bfs(c.eng, probe)
	if found && errors.Is(err, errLimit) {
		err = nil
	}
	return err
}

// evalBothVar evaluates (x, E, y): nullable self-pairs first, then a
// full-range phase collecting candidate endpoints, then one
// constrained traversal per candidate (§4.4's two-phase strategy).
// Like core, the orientation is chosen by boundary-predicate
// cardinality: start from the end whose first backward scan selects
// fewer triples (§5), counting overlay adds alongside the rings.
func (e *Engine) evalBothVar(expr pathexpr.Node, emit core.EmitFunc) error {
	c := e.compile(expr)
	if c.eng == nil || e.noCompile {
		return e.wideEvalBothVar(expr, emit)
	}
	nullable := c.a.Nullable
	if nullable {
		for v := 0; v < e.numNodes; v++ {
			if err := e.checkDeadline(); err != nil {
				return err
			}
			if !emit(uint32(v), uint32(v)) {
				return errLimit
			}
		}
	}

	fromObjects := e.startFromObjects(c.a)
	phase1Expr := expr
	if fromObjects {
		phase1Expr = pathexpr.InverseOf(expr)
	}

	// Phase 1: every endpoint conceptually starts with the final states
	// active; collect the candidates that reach the initial state.
	var starts []uint32
	collect := func(s, _ uint32) bool {
		starts = append(starts, s)
		return true
	}
	c1 := e.compile(phase1Expr)
	eng := c1.eng
	if eng == nil {
		return e.wideEvalBothVar(expr, emit)
	}
	e.prepare(c1)
	e.base = eng.F &^ eng.Init
	err := func() error {
		for _, w := range e.work {
			if err := e.ringStep(eng, w, -1, 0, w.r.N, eng.F, collect); err != nil {
				return err
			}
		}
		if err := e.overlayFullRange(eng, collect); err != nil {
			return err
		}
		return e.bfs(eng, collect)
	}()
	e.base = 0
	if err != nil {
		e.release()
		return err
	}

	// Phase 2: one constrained traversal per candidate, in the other
	// orientation.
	e.release()
	phase2Expr := expr
	if !fromObjects {
		phase2Expr = pathexpr.InverseOf(expr)
	}
	pairFor := func(s uint32) core.EmitFunc {
		if fromObjects {
			// s is an object candidate: the traversal reports sources.
			return func(src, _ uint32) bool {
				if nullable && src == s {
					return true // (s, s) already emitted
				}
				return emit(src, s)
			}
		}
		// s is a source candidate: the traversal of Ê reports objects.
		return func(o, _ uint32) bool {
			if nullable && o == s {
				return true
			}
			return emit(s, o)
		}
	}
	c2 := e.compile(phase2Expr)
	eng2 := c2.eng
	if eng2 == nil {
		return e.wideEvalBothVar(expr, emit)
	}
	defer e.release()
	e.prepare(c2)
	for _, s := range starts {
		e.resetMarks()
		e.markNode(s, eng2.F)
		e.queue = append(e.queue, item{s, eng2.F})
		if err := e.bfs(eng2, pairFor(s)); err != nil {
			return err
		}
	}
	return nil
}

// startFromObjects decides the phase-1 orientation of a v→v query
// (§5: start from the end whose boundary predicates select fewer
// triples), counting both the static rings and the overlay adds.
func (e *Engine) startFromObjects(a *glushkov.Automaton) bool {
	count := func(positions []int32) int {
		total := 0
		for _, j := range positions {
			c := a.Syms[j-1]
			if c == glushkov.NoSymbol {
				continue
			}
			for _, w := range e.work {
				total += w.r.Cp[c+1] - w.r.Cp[c]
			}
			total += e.ov.predTouch[c] - e.ov.predDels[c]
		}
		return total
	}
	firstCard := count(a.Follow[0])
	lastCard := count(a.Last)
	return firstCard < lastCard
}

// overlayFullRange feeds every overlay add into a full-range phase-1
// step: each edge's target conceptually holds the final states.
func (e *Engine) overlayFullRange(eng *glushkov.Engine, emit core.EmitFunc) error {
	d := eng.F
	e.ov.EachAdd(func(ed Edge) bool {
		// Per-edge deadline probe: this pass scans every overlay add.
		if err := e.checkDeadline(); err != nil {
			e.failure = err
			return false
		}
		bp := e.st.PredMask(ed.P)
		if d&bp == 0 {
			return true
		}
		e.stats.ProductEdges++
		d2 := e.st.StepBack(d & bp)
		if d2 == 0 {
			return true
		}
		return e.arrive(eng, ed.S, d2, emit)
	})
	return e.failure
}

func (e *Engine) checkDeadline() error {
	e.steps++
	if e.deadline.IsZero() || e.steps%64 != 0 {
		return nil
	}
	if time.Now().After(e.deadline) {
		return core.ErrTimeout
	}
	return nil
}
