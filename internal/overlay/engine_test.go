package overlay

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/enginetest"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
)

// scenario is one randomly generated static/overlay split with a known
// merged ground truth.
type scenario struct {
	gStatic *triples.Graph // ring built from this
	gMerged *triples.Graph // oracle evaluated over this
	ov      *Overlay
	nv      int // merged node universe (≥ static nodes)
	np      int
}

type baseEdge struct{ s, p, o uint32 }

// buildScenario splits a random edge universe into a static part and a
// sequence of overlay batches (adds of the remainder plus deletions of
// static edges, applied in several rounds with some churn), interning
// identical names in identical order so ids agree across graphs.
func buildScenario(t *testing.T, seed int64, nv, np, ne, extraNodes int, shards int, layout ring.Layout) (*scenario, *Engine) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	intern := func(b *triples.Builder, n int) {
		for i := 0; i < nv; i++ {
			b.Nodes().Intern(fmt.Sprintf("n%03d", i))
		}
		for i := 0; i < np; i++ {
			b.Preds().Intern(fmt.Sprintf("p%c", 'a'+i))
		}
		for i := nv; i < n; i++ {
			b.Nodes().Intern(fmt.Sprintf("n%03d", i))
		}
	}

	// Edge universe, deduped.
	seen := map[baseEdge]bool{}
	var universe []baseEdge
	for i := 0; i < ne; i++ {
		e := baseEdge{uint32(rng.Intn(nv)), uint32(rng.Intn(np)), uint32(rng.Intn(nv))}
		if !seen[e] {
			seen[e] = true
			universe = append(universe, e)
		}
	}
	// A few edges touching the post-build node ids.
	total := nv + extraNodes
	for i := 0; i < extraNodes; i++ {
		e := baseEdge{uint32(nv + i), uint32(rng.Intn(np)), uint32(rng.Intn(total))}
		if !seen[e] {
			seen[e] = true
			universe = append(universe, e)
		}
	}

	var static, pending []baseEdge
	for _, e := range universe {
		if int(e.s) < nv && int(e.o) < nv && rng.Intn(3) > 0 {
			static = append(static, e)
		} else {
			pending = append(pending, e)
		}
	}

	sb := triples.NewBuilder()
	intern(sb, nv) // static dictionary: original nodes only
	for _, e := range static {
		sb.AddIDs(e.s, e.p, e.o)
	}
	gStatic := sb.Build()
	if gStatic.Len() == 0 {
		t.Skip("empty static graph")
	}
	// Live updates intern new node names post-build, exactly like
	// DB.Apply does.
	for i := nv; i < total; i++ {
		gStatic.Nodes.Intern(fmt.Sprintf("n%03d", i))
	}

	var rings []*ring.Ring
	var static2 core.Evaluator
	ids := func(s pathexpr.Sym) (uint32, bool) { return gStatic.PredID(s.Name, s.Inverse) }
	if shards > 1 {
		set := ring.NewShardSet(gStatic, shards, nil, layout)
		rings = set.Shards
		static2 = core.NewShardedEngine(set, ids)
	} else {
		r := ring.New(gStatic, layout)
		rings = []*ring.Ring{r}
		static2 = core.NewEngine(r, ids)
	}
	inStatic := func(e Edge) bool {
		for _, r := range rings {
			if r.Has(e.S, e.P, e.O) {
				return true
			}
		}
		return false
	}

	npc := uint32(np)
	complete := func(es []baseEdge) []Edge {
		out := make([]Edge, 0, 2*len(es))
		for _, e := range es {
			out = append(out, Edge{S: e.s, P: e.p, O: e.o}, Edge{S: e.o, P: e.p + npc, O: e.s})
		}
		return out
	}

	// Apply the pending edges in batches, deleting some static edges and
	// churning (delete-then-revive) along the way.
	ov := New()
	version := uint64(0)
	alive := map[baseEdge]bool{}
	for _, e := range static {
		alive[e] = true
	}
	for len(pending) > 0 || version == 0 {
		n := 1 + rng.Intn(4)
		if n > len(pending) {
			n = len(pending)
		}
		adds := pending[:n]
		pending = pending[n:]
		var dels []baseEdge
		for _, e := range static {
			if alive[e] && rng.Intn(8) == 0 {
				dels = append(dels, e)
			}
		}
		version++
		ov = ov.Apply(version, complete(adds), complete(dels), inStatic)
		for _, e := range adds {
			alive[e] = true
		}
		for _, e := range dels {
			alive[e] = false
		}
		// Occasionally revive a deleted edge in its own batch.
		if rng.Intn(3) == 0 {
			for _, e := range static {
				if !alive[e] {
					version++
					ov = ov.Apply(version, complete([]baseEdge{e}), nil, inStatic)
					alive[e] = true
					break
				}
			}
		}
	}

	mb := triples.NewBuilder()
	intern(mb, total) // merged dictionary: full universe
	for e, ok := range alive {
		if ok {
			mb.AddIDs(e.s, e.p, e.o)
		}
	}
	gMerged := mb.Build()

	eng := NewEngine(static2, rings, ids, gStatic.NumCompletedPreds())
	eng.SetSnapshot(ov, gStatic.NumNodes())
	return &scenario{gStatic: gStatic, gMerged: gMerged, ov: ov, nv: total, np: np}, eng
}

// runCase compares one evaluation against the oracle.
func runCase(t *testing.T, sc *scenario, eng *Engine, subject int64, expr pathexpr.Node, object int64) {
	t.Helper()
	want := enginetest.SortPairs(enginetest.Oracle(sc.gMerged, subject, expr, object))
	// Both traversal modes (frontier-batched and item-at-a-time) and
	// both stepping tiers (compiled stepper, interpreter) must match
	// the oracle.
	for _, opts := range []core.Options{
		{}, {DisableBatching: true},
		{CompileEager: true}, {DisableCompiled: true},
		{CompileEager: true, DisableBatching: true},
	} {
		var got []enginetest.Pair
		_, err := eng.Eval(context.Background(), core.Query{Subject: subject, Expr: expr, Object: object}, opts, func(s, o uint32) bool {
			got = append(got, enginetest.Pair{S: s, O: o})
			return true
		})
		if err != nil {
			t.Fatalf("Eval(%v, %s, %v): %v", subject, pathexpr.String(expr), object, err)
		}
		got = enginetest.SortPairs(got)
		if len(got) != len(want) {
			t.Fatalf("Eval(%v, %s, %v) batching=%v: %d pairs, oracle %d\n got=%v\nwant=%v",
				subject, pathexpr.String(expr), object, !opts.DisableBatching, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Eval(%v, %s, %v) batching=%v: pair %d = %v, oracle %v",
					subject, pathexpr.String(expr), object, !opts.DisableBatching, i, got[i], want[i])
			}
		}
	}
}

func testDifferential(t *testing.T, shards int) {
	for seed := int64(0); seed < 8; seed++ {
		sc, eng := buildScenario(t, 100+seed, 14, 4, 40, 2, shards, ring.WaveletMatrix)
		rng := rand.New(rand.NewSource(999 + seed))
		for q := 0; q < 30; q++ {
			expr := enginetest.RandomExpr(rng, sc.np, 1+rng.Intn(3))
			var subject, object int64 = core.Variable, core.Variable
			switch rng.Intn(4) {
			case 0:
				object = int64(rng.Intn(sc.nv))
			case 1:
				subject = int64(rng.Intn(sc.nv))
			case 2:
				subject = int64(rng.Intn(sc.nv))
				object = int64(rng.Intn(sc.nv))
			}
			runCase(t, sc, eng, subject, expr, object)
		}
	}
}

func TestUnionEngineDifferential(t *testing.T)        { testDifferential(t, 1) }
func TestUnionEngineDifferentialSharded(t *testing.T) { testDifferential(t, 3) }

// TestUnionEngineWide drives the >64-state fallback: an expression with
// 72 Glushkov positions over a small updated graph.
func TestUnionEngineWide(t *testing.T) {
	sc, eng := buildScenario(t, 7, 10, 4, 25, 1, 1, ring.WaveletMatrix)
	alt := pathexpr.Node(pathexpr.Sym{Name: "pa"})
	for _, n := range []string{"pb", "pc", "pd"} {
		alt = pathexpr.Alt{L: alt, R: pathexpr.Sym{Name: n}}
	}
	wide := pathexpr.Node(pathexpr.Opt{X: alt}) // 4 positions
	for i := 0; i < 17; i++ {                   // 72 positions total
		wide = pathexpr.Concat{L: wide, R: pathexpr.Opt{X: alt}}
	}
	runCase(t, sc, eng, core.Variable, wide, core.Variable)
	runCase(t, sc, eng, 3, wide, core.Variable)
	runCase(t, sc, eng, core.Variable, wide, 5)
	runCase(t, sc, eng, 2, wide, 9)
}

// countingEval wraps an evaluator and counts delegated calls.
type countingEval struct {
	inner core.Evaluator
	calls int
}

func (c *countingEval) Eval(ctx context.Context, q core.Query, opts core.Options, emit core.EmitFunc) (core.Stats, error) {
	c.calls++
	return c.inner.Eval(ctx, q, opts, emit)
}

// TestUnionEngineDelegates checks whole-query delegation: queries over
// predicates the overlay never touches go to the static engine;
// queries over touched predicates do not.
func TestUnionEngineDelegates(t *testing.T) {
	b := triples.NewBuilder()
	b.Add("a", "pa", "b")
	b.Add("b", "pa", "c")
	b.Add("a", "pb", "c")
	g := b.Build()
	r := ring.New(g, ring.WaveletMatrix)
	ids := func(s pathexpr.Sym) (uint32, bool) { return g.PredID(s.Name, s.Inverse) }
	counted := &countingEval{inner: core.NewEngine(r, ids)}

	// Overlay touches only pb.
	pb, _ := g.PredID("pb", false)
	ov := New().Apply(1, []Edge{{S: 1, P: pb, O: 0}, {S: 0, P: pb + g.NumPreds, O: 1}}, nil,
		func(e Edge) bool { return r.Has(e.S, e.P, e.O) })
	eng := NewEngine(counted, []*ring.Ring{r}, ids, g.NumCompletedPreds())
	eng.SetSnapshot(ov, g.NumNodes())

	drop := func(uint32, uint32) bool { return true }
	if _, err := eng.Eval(context.Background(), core.Query{Subject: core.Variable, Expr: pathexpr.MustParse("pa+"), Object: core.Variable}, core.Options{}, drop); err != nil {
		t.Fatal(err)
	}
	if counted.calls != 1 {
		t.Fatalf("query over untouched pa should delegate (calls=%d)", counted.calls)
	}
	if _, err := eng.Eval(context.Background(), core.Query{Subject: core.Variable, Expr: pathexpr.MustParse("pb/pa?"), Object: core.Variable}, core.Options{}, drop); err != nil {
		t.Fatal(err)
	}
	if counted.calls != 1 {
		t.Fatalf("query over touched pb must not delegate (calls=%d)", counted.calls)
	}
	// Nullable expressions delegate too while no new nodes exist.
	if _, err := eng.Eval(context.Background(), core.Query{Subject: core.Variable, Expr: pathexpr.MustParse("pa*"), Object: core.Variable}, core.Options{}, drop); err != nil {
		t.Fatal(err)
	}
	if counted.calls != 2 {
		t.Fatalf("nullable query over untouched pa should delegate without new nodes (calls=%d)", counted.calls)
	}
}

// TestUnionEngineLimitTimeout checks option handling parity.
func TestUnionEngineLimitTimeout(t *testing.T) {
	sc, eng := buildScenario(t, 11, 14, 4, 50, 1, 1, ring.WaveletMatrix)
	expr := pathexpr.Star{X: pathexpr.Sym{Name: "pa"}}
	n := 0
	_, err := eng.Eval(context.Background(), core.Query{Subject: core.Variable, Expr: expr, Object: core.Variable},
		core.Options{Limit: 5}, func(s, o uint32) bool { n++; return true })
	if err != nil || n != 5 {
		t.Fatalf("limit run: n=%d err=%v, want 5 results", n, err)
	}
	_ = sc
}

// A 1ns deadline on a dense overlaid graph must interrupt the union
// traversal inside its per-edge/per-leaf loops — ring descents and
// overlay merges alike — in every mode and stepping tier.
func TestUnionEngineTimeoutProbedInInnerLoops(t *testing.T) {
	_, eng := buildScenario(t, 21, 150, 2, 1800, 100, 1, ring.WaveletMatrix)
	expr := pathexpr.MustParse("(pa|pb)+")
	q := core.Query{Subject: core.Variable, Expr: expr, Object: core.Variable}
	for _, opts := range []core.Options{
		{Timeout: time.Nanosecond},
		{Timeout: time.Nanosecond, DisableBatching: true},
		{Timeout: time.Nanosecond, CompileEager: true},
		{Timeout: time.Nanosecond, DisableCompiled: true},
	} {
		start := time.Now()
		_, err := eng.Eval(context.Background(), q, opts, func(s, o uint32) bool { return true })
		elapsed := time.Since(start)
		if err != core.ErrTimeout {
			t.Fatalf("opts=%+v: err=%v, want ErrTimeout", opts, err)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("opts=%+v: 1ns deadline took %v", opts, elapsed)
		}
	}
}
