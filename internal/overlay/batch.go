package overlay

import (
	"cmp"
	"slices"
	"sort"

	"ringrpq/internal/core"
	"ringrpq/internal/glushkov"
	"ringrpq/internal/obs"
	"ringrpq/internal/wavelet"
)

// Frontier-batched union traversal: the union engine drains whole BFS
// levels like core's batched path (one multi-range wavelet descent per
// ring per level), recovering the PR-3 batching speedup that the
// item-at-a-time union loop gives up. Each level runs two passes:
//
//   - batched (per ring): core.StepLevelMany over the level's
//     coalesced L_p ranges. Tombstones are handled exactly through the
//     LeafMask hook: per ring and overlay version, each tombstone's
//     leaf rank under its subject is cached, and a part-2 leaf drops
//     the items whose occurrences of the subject are all tombstoned —
//     no per-leaf deletion probes and, crucially, no fragmentation of
//     the coalesced ranges (a punched-out position would split them
//     into thousands of single-gap pieces);
//   - overlay: the object-sorted adds entering each frontier object,
//     merged linearly against the sorted frontier.
//
// Both passes share the global visited mask and the per-ring D[v]
// marks, so the visited product subgraph is exactly the one the
// item-at-a-time union traversal explores.

// batchCutoff mirrors core's: tiny levels expand item-at-a-time.
const batchCutoff = 4

// delRanks resolves (and caches per overlay version) each tombstone's
// leaf rank under its subject in this ring's L_s: the triple (s, p, o)
// occupies exactly one position of its backward-search range, and its
// rank among the occurrences of s is Rank(s, lsB) — one rank probe per
// tombstone, once per overlay version.
func (e *Engine) delRanks(w *ringWork) map[uint32][]int {
	if w.delRanksValid && w.delRanksVersion == e.ov.version {
		return w.delRanks
	}
	m := map[uint32][]int{}
	e.ov.EachDel(func(d Edge) bool {
		r := w.r
		if int(d.O) >= r.NumNodes || d.P >= r.NumPreds {
			return true
		}
		b, end := r.ObjectRange(d.O)
		if b == end {
			return true
		}
		lsB, lsE := r.BackwardByPred(b, end, d.P)
		r0 := r.Ls.Rank(d.S, lsB)
		if r.Ls.Rank(d.S, lsE) == r0 {
			return true // not in this ring
		}
		m[d.S] = append(m[d.S], r0)
		return true
	})
	for _, rs := range m {
		sort.Ints(rs)
	}
	w.delRanks = m
	w.delRanksVersion = e.ov.version
	w.delRanksValid = true
	return m
}

// leafMaskFor builds the part-2 LeafMask hook for one ring: the OR of
// the item masks, minus items whose occurrences of the subject are all
// tombstoned. Nil when the ring has no tombstones.
func (e *Engine) leafMaskFor(w *ringWork) func(s uint32, its []wavelet.RangeMask) uint64 {
	ranks := e.delRanks(w)
	if len(ranks) == 0 {
		return nil
	}
	return func(s uint32, its []wavelet.RangeMask) uint64 {
		var all uint64
		rs, ok := ranks[s]
		if !ok {
			for _, it := range its {
				all |= it.Mask
			}
			return all
		}
		for _, it := range its {
			lo := sort.SearchInts(rs, it.B)
			hi := sort.SearchInts(rs, it.E)
			if it.E-it.B > hi-lo {
				all |= it.Mask
			}
		}
		return all
	}
}

// drainFrontier sorts and merges the queued level into e.level
// (duplicate nodes union their masks) and clears the queue.
func (e *Engine) drainFrontier() []item {
	slices.SortFunc(e.queue, func(a, b item) int { return cmp.Compare(a.node, b.node) })
	e.level = e.level[:0]
	for _, it := range e.queue {
		if n := len(e.level); n > 0 && e.level[n-1].node == it.node {
			e.level[n-1].d |= it.d
			continue
		}
		e.level = append(e.level, it)
	}
	e.queue = e.queue[:0]
	return e.level
}

// lpItemsFor converts a level into one ring's sorted disjoint L_p
// range items, coalescing adjacent equal-mask ranges.
func (e *Engine) lpItemsFor(w *ringWork, level []item) []wavelet.RangeMask {
	e.lpItems = e.lpItems[:0]
	for _, it := range level {
		if int(it.node) >= w.r.NumNodes {
			continue
		}
		b, end := w.r.ObjectRange(it.node)
		if b >= end {
			continue
		}
		if n := len(e.lpItems); n > 0 && e.lpItems[n-1].E == b && e.lpItems[n-1].Mask == it.d {
			e.lpItems[n-1].E = end
			continue
		}
		e.lpItems = append(e.lpItems, wavelet.RangeMask{B: b, E: end, Mask: it.d})
	}
	return e.lpItems
}

// batchLeaf is the batched part-2 leaf action: global dedup, marking,
// emission and next-level enqueueing (the batched arrive).
func (e *Engine) batchLeaf(eng *glushkov.Engine, s uint32, all uint64, emit core.EmitFunc) error {
	newStates := all &^ (e.visited.Get(int(s)) | e.base)
	if newStates == 0 {
		return nil
	}
	e.stats.ProductNodes++
	e.markNode(s, all)
	if newStates&eng.Init != 0 {
		if !emit(s, 0) {
			return errLimit
		}
		newStates &^= eng.Init
	}
	if newStates != 0 && e.hasInEdges(s) {
		e.queue = append(e.queue, item{s, newStates})
	}
	return nil
}

// bfsBatched drains the worklist level-synchronously with the
// two-pass expansion above.
func (e *Engine) bfsBatched(eng *glushkov.Engine, emit core.EmitFunc) error {
	for len(e.queue) > 0 {
		if err := e.checkDeadline(); err != nil {
			return err
		}
		level := e.drainFrontier()
		sp, visits0 := -1, 0
		if e.trace != nil {
			visits0 = e.stats.WaveletVisits
			sp = e.trace.Begin(obs.SpanLevel)
		}
		if len(level) < batchCutoff {
			var err error
			for _, it := range level {
				if err = e.expand(eng, it.node, it.d, emit); err != nil {
					break
				}
			}
			e.trace.EndVals(sp, int64(len(level)), int64(e.stats.WaveletVisits-visits0))
			if err != nil {
				return err
			}
			continue
		}
		// Batched expansion per ring; tombstoned triples are punched out
		// of the part-2 ranges positionally.
		for _, w := range e.work {
			items := e.lpItemsFor(w, level)
			if len(items) == 0 {
				continue
			}
			lo := core.LevelOwner{
				R: w.r, BNode: w.bNode, DNode: w.dNode, Stats: &e.stats,
				St: e.st, BArr: w.bArr,
				Check:    e.checkDeadline,
				LeafMask: e.leafMaskFor(w),
				Leaf: func(s uint32, all, fresh uint64) error {
					return e.batchLeaf(eng, s, all, emit)
				},
			}
			var err error
			e.lsItems, err = core.StepLevelMany(&lo, eng, items, e.lsItems, e.base)
			if err != nil {
				e.trace.EndVals(sp, int64(len(level)), int64(e.stats.WaveletVisits-visits0))
				return err
			}
		}
		// Overlay adds entering the frontier (both sorted by object: a
		// linear merge instead of per-node binary searches).
		err := e.overlayLevel(eng, level, emit)
		e.trace.EndVals(sp, int64(len(level)), int64(e.stats.WaveletVisits-visits0))
		if err != nil {
			return err
		}
	}
	return nil
}

// overlayLevel merges the sorted frontier with the object-sorted
// overlay adds and NFA-steps each matching edge.
func (e *Engine) overlayLevel(eng *glushkov.Engine, level []item, emit core.EmitFunc) error {
	adds := e.ov.adds
	i := 0
	for _, it := range level {
		for i < len(adds) && adds[i].O < it.node {
			i++
		}
		for j := i; j < len(adds) && adds[j].O == it.node; j++ {
			// Per-edge deadline probe: one level can touch many adds.
			if err := e.checkDeadline(); err != nil {
				return err
			}
			bp := e.st.PredMask(adds[j].P)
			if it.d&bp == 0 {
				continue
			}
			e.stats.ProductEdges++
			d2 := e.st.StepBack(it.d & bp)
			if d2 == 0 {
				continue
			}
			if !e.arrive(eng, adds[j].S, d2, emit) {
				return e.failure
			}
		}
	}
	return nil
}
