// Package overlay implements the live-update subsystem: an in-memory
// dynamic triple overlay — sorted adds plus tombstones over the static
// ring — and a union evaluator that makes queries see
//
//	ring ∪ adds − dels
//
// behind the ordinary core.Evaluator interface. The ring index of the
// paper is static by construction (three sorted sequences cannot absorb
// an insertion), so mutability is layered on top LSM-style: updates
// accumulate in the overlay, every evaluation unions them in, and a
// compactor (the snapshot layer above, see the public DB) periodically
// rebuilds the ring from ring+overlay and swaps it in atomically.
//
// An Overlay value is immutable: Apply returns a new version, so a
// query (or a whole snapshot) holding one is isolated from later
// updates for free. The overlay stays small — the compaction threshold
// bounds it — which keeps both the copy-on-apply cost and the union
// evaluation overhead bounded.
package overlay

import (
	"sort"
)

// Edge is a completed dictionary-encoded triple (both directions of a
// data edge are materialised, exactly as in the static ring).
type Edge struct {
	S, P, O uint32
}

// Batch is one applied update set, kept verbatim (completed, deduped)
// so a compactor can replay updates that arrived while it was
// rebuilding against the new ring.
type Batch struct {
	// Version is the data version this batch produced.
	Version uint64
	// Adds and Dels are the completed requested edges, before
	// consolidation against the then-current overlay and ring.
	Adds, Dels []Edge
}

// Overlay is one immutable version of the dynamic layer. The zero
// value is not meaningful; use New.
//
// Invariants: adds ∩ static = ∅ (an add of a present edge is a no-op,
// unless it revives a tombstone), dels ⊆ static (a delete of an absent
// edge is a no-op), adds ∩ dels = ∅. Both sets are sorted by (O, P, S)
// — object-major, because the engine's backward traversal asks for the
// in-edges of an object.
type Overlay struct {
	adds []Edge
	dels []Edge
	// delsPS and addsPS mirror dels/adds sorted by (P, S, O): the
	// engine's full-range phase needs "how many targets of (s, p, ·)
	// are tombstoned", and the §5-style fast paths scan adds
	// predicate-major.
	delsPS []Edge
	addsPS []Edge

	// batches is the replay log since the static snapshot was built;
	// BatchesAfter serves the compactor's residual-overlay rebuild.
	batches []Batch
	version uint64

	// predTouch counts adds+dels per completed predicate id: the union
	// engine delegates to the static engine when a query's predicates
	// are untouched. predDels counts only tombstones, letting the
	// engine skip per-edge deletion probes for predicates nothing was
	// deleted from.
	predTouch map[uint32]int
	predDels  map[uint32]int
	// maxNode is 1 + the largest node id any add mentions.
	maxNode uint32
}

// New returns an empty overlay at version 0.
func New() *Overlay {
	return &Overlay{predTouch: map[uint32]int{}, predDels: map[uint32]int{}}
}

// cmpEdge orders edges by (O, P, S).
func cmpEdge(a, b Edge) int {
	switch {
	case a.O != b.O:
		if a.O < b.O {
			return -1
		}
		return 1
	case a.P != b.P:
		if a.P < b.P {
			return -1
		}
		return 1
	case a.S != b.S:
		if a.S < b.S {
			return -1
		}
		return 1
	}
	return 0
}

func sortEdges(es []Edge) {
	sort.Slice(es, func(i, j int) bool { return cmpEdge(es[i], es[j]) < 0 })
}

// find locates e in the sorted slice.
func find(es []Edge, e Edge) bool {
	i := sort.Search(len(es), func(i int) bool { return cmpEdge(es[i], e) >= 0 })
	return i < len(es) && es[i] == e
}

// Apply returns a new overlay version with the batch folded in.
// inStatic reports membership in the static ring the overlay shadows;
// it decides whether a delete becomes a tombstone (edge in the ring)
// or cancels a pending add. Within one batch, deletes are applied
// after adds. version must exceed the current version (the snapshot
// layer allocates them monotonically).
func (o *Overlay) Apply(version uint64, adds, dels []Edge, inStatic func(Edge) bool) *Overlay {
	addSet := make(map[Edge]bool, len(o.adds)+len(adds))
	for _, e := range o.adds {
		addSet[e] = true
	}
	delSet := make(map[Edge]bool, len(o.dels)+len(dels))
	for _, e := range o.dels {
		delSet[e] = true
	}
	for _, e := range adds {
		if delSet[e] {
			// Revive a tombstoned static edge.
			delete(delSet, e)
			continue
		}
		if inStatic(e) || addSet[e] {
			continue // already visible
		}
		addSet[e] = true
	}
	for _, e := range dels {
		if addSet[e] {
			delete(addSet, e)
			continue
		}
		if inStatic(e) {
			delSet[e] = true
		}
		// Absent edge: no-op.
	}

	n := &Overlay{
		adds:      make([]Edge, 0, len(addSet)),
		dels:      make([]Edge, 0, len(delSet)),
		version:   version,
		predTouch: make(map[uint32]int, len(addSet)+len(delSet)),
		predDels:  make(map[uint32]int, len(delSet)),
	}
	for e := range addSet {
		n.adds = append(n.adds, e)
	}
	for e := range delSet {
		n.dels = append(n.dels, e)
	}
	sortEdges(n.adds)
	sortEdges(n.dels)
	n.delsPS = append([]Edge(nil), n.dels...)
	sort.Slice(n.delsPS, func(i, j int) bool { return cmpEdgePS(n.delsPS[i], n.delsPS[j]) < 0 })
	n.addsPS = append([]Edge(nil), n.adds...)
	sort.Slice(n.addsPS, func(i, j int) bool { return cmpEdgePS(n.addsPS[i], n.addsPS[j]) < 0 })
	for _, e := range n.adds {
		n.predTouch[e.P]++
		if e.S >= n.maxNode {
			n.maxNode = e.S + 1
		}
		if e.O >= n.maxNode {
			n.maxNode = e.O + 1
		}
	}
	for _, e := range n.dels {
		n.predTouch[e.P]++
		n.predDels[e.P]++
	}
	n.batches = append(append([]Batch(nil), o.batches...), Batch{
		Version: version,
		Adds:    append([]Edge(nil), adds...),
		Dels:    append([]Edge(nil), dels...),
	})
	return n
}

// Empty reports whether the overlay changes nothing.
func (o *Overlay) Empty() bool { return len(o.adds) == 0 && len(o.dels) == 0 }

// AddCount is the number of live overlay edges (completed).
func (o *Overlay) AddCount() int { return len(o.adds) }

// DelCount is the number of tombstones (completed).
func (o *Overlay) DelCount() int { return len(o.dels) }

// Weight is the consolidated overlay size the compaction threshold is
// compared against.
func (o *Overlay) Weight() int { return len(o.adds) + len(o.dels) }

// Version is the data version of the last applied batch.
func (o *Overlay) Version() uint64 { return o.version }

// MaxNode is 1 + the largest node id mentioned by an overlay add (0
// when there are none): the union engine sizes its visited arrays by
// max(ring nodes, MaxNode).
func (o *Overlay) MaxNode() uint32 { return o.maxNode }

// cmpEdgePS orders edges by (P, S, O).
func cmpEdgePS(a, b Edge) int {
	switch {
	case a.P != b.P:
		if a.P < b.P {
			return -1
		}
		return 1
	case a.S != b.S:
		if a.S < b.S {
			return -1
		}
		return 1
	case a.O != b.O:
		if a.O < b.O {
			return -1
		}
		return 1
	}
	return 0
}

// Deleted reports whether the static edge e is tombstoned.
func (o *Overlay) Deleted(e Edge) bool { return find(o.dels, e) }

// DelsForPred counts the tombstones carrying completed predicate p;
// zero lets the engine skip per-edge deletion probes entirely.
func (o *Overlay) DelsForPred(p uint32) int { return o.predDels[p] }

// AddsForPred streams the live adds with completed predicate p as
// (s, o) pairs; return false to stop.
func (o *Overlay) AddsForPred(p uint32, fn func(s, oo uint32) bool) bool {
	i := sort.Search(len(o.addsPS), func(i int) bool {
		return o.addsPS[i].P >= p
	})
	for ; i < len(o.addsPS) && o.addsPS[i].P == p; i++ {
		if !fn(o.addsPS[i].S, o.addsPS[i].O) {
			return false
		}
	}
	return true
}

// AddsForPredSubject streams the objects of live adds (s, p, ·);
// return false to stop.
func (o *Overlay) AddsForPredSubject(p, s uint32, fn func(oo uint32) bool) bool {
	i := sort.Search(len(o.addsPS), func(i int) bool {
		return cmpEdgePS(o.addsPS[i], Edge{P: p, S: s, O: 0}) >= 0
	})
	for ; i < len(o.addsPS) && o.addsPS[i].P == p && o.addsPS[i].S == s; i++ {
		if !fn(o.addsPS[i].O) {
			return false
		}
	}
	return true
}

// DeletedPS counts the tombstones with predicate p and subject s (the
// full-range step compares it with the subject's multiplicity to
// decide whether any (s, p, ·) edge survives).
func (o *Overlay) DeletedPS(p, s uint32) int {
	lo := sort.Search(len(o.delsPS), func(i int) bool {
		return cmpEdgePS(o.delsPS[i], Edge{P: p, S: s, O: 0}) >= 0
	})
	hi := lo
	for hi < len(o.delsPS) && o.delsPS[hi].P == p && o.delsPS[hi].S == s {
		hi++
	}
	return hi - lo
}

// Has reports whether e is a live overlay add.
func (o *Overlay) Has(e Edge) bool { return find(o.adds, e) }

// TouchesPred reports whether any add or tombstone carries completed
// predicate p.
func (o *Overlay) TouchesPred(p uint32) bool { return o.predTouch[p] > 0 }

// TouchedPreds returns the set of completed predicate ids the overlay
// mentions (the compactor rebuilds only their shards).
func (o *Overlay) TouchedPreds() []uint32 {
	out := make([]uint32, 0, len(o.predTouch))
	for p := range o.predTouch {
		out = append(out, p)
	}
	return out
}

// InEdges streams the overlay adds entering object o as (p, s) pairs,
// in (P, S) order; return false to stop. The engine's backward step
// unions these with the static ring's object range.
func (o *Overlay) InEdges(obj uint32, fn func(p, s uint32) bool) bool {
	i := sort.Search(len(o.adds), func(i int) bool { return o.adds[i].O >= obj })
	for ; i < len(o.adds) && o.adds[i].O == obj; i++ {
		if !fn(o.adds[i].P, o.adds[i].S) {
			return false
		}
	}
	return true
}

// EachAdd streams every live overlay add; return false to stop.
func (o *Overlay) EachAdd(fn func(Edge) bool) bool {
	for _, e := range o.adds {
		if !fn(e) {
			return false
		}
	}
	return true
}

// EachDel streams every tombstone; return false to stop.
func (o *Overlay) EachDel(fn func(Edge) bool) bool {
	for _, e := range o.dels {
		if !fn(e) {
			return false
		}
	}
	return true
}

// BatchesAfter returns the applied batches with Version > v, oldest
// first: the updates a finishing compaction must replay against the
// ring it just built.
func (o *Overlay) BatchesAfter(v uint64) []Batch {
	i := sort.Search(len(o.batches), func(i int) bool { return o.batches[i].Version > v })
	return o.batches[i:]
}

// WithBatchesAfter returns an overlay identical to o but whose replay
// log keeps only batches with Version > v (consolidated sets are
// shared structurally). The snapshot layer prunes with it: a batch is
// only ever replayed by a compaction whose base predates it, and the
// only base that can predate an already-applied batch is the one in
// flight, so everything older is dead weight.
func (o *Overlay) WithBatchesAfter(v uint64) *Overlay {
	kept := o.BatchesAfter(v)
	if len(kept) == len(o.batches) {
		return o
	}
	n := *o
	n.batches = append([]Batch(nil), kept...)
	return &n
}

// BatchCount reports the replay-log length (observability and tests).
func (o *Overlay) BatchCount() int { return len(o.batches) }

// Replay folds the given batches into a fresh overlay against a new
// static base (the compactor's residual overlay: updates that raced
// the rebuild).
func Replay(batches []Batch, inStatic func(Edge) bool) *Overlay {
	n := New()
	for _, b := range batches {
		n = n.Apply(b.Version, b.Adds, b.Dels, inStatic)
	}
	return n
}

// SizeBytes estimates the overlay footprint (consolidated sets plus
// the replay log).
func (o *Overlay) SizeBytes() int {
	sz := 64 + 12*(len(o.adds)+len(o.dels)) + 24*len(o.predTouch)
	for _, b := range o.batches {
		sz += 48 + 12*(len(b.Adds)+len(b.Dels))
	}
	return sz
}
