package overlay

import (
	"errors"

	"ringrpq/internal/core"
	"ringrpq/internal/glushkov"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
)

// This file is the union engine's fallback for expressions beyond the
// 64-state bit-parallel engine: a plain node-at-a-time backward BFS
// with multiword state masks and per-edge enumeration (no wavelet
// pruning). Such expressions are vanishingly rare in real logs, so the
// fallback optimises for correctness and simplicity, exactly like
// core's wide path.

// eachInEdge streams the union in-edges of object o as (p, s) pairs.
func (e *Engine) eachInEdge(o uint32, fn func(p, s uint32) bool) bool {
	return EachInEdge(e.rings, e.ov, o, fn)
}

// EachInEdge streams the union in-edges of object o as (p, s) pairs:
// every sub-ring's object range (tombstones dropped) followed by the
// overlay's adds. Return false to stop. Per-edge wavelet access — the
// generic enumeration behind the wide fallback and the pattern
// executor's union-mode edge scans.
func EachInEdge(rings []*ring.Ring, ov *Overlay, o uint32, fn func(p, s uint32) bool) bool {
	for _, r := range rings {
		if int(o) >= r.NumNodes {
			continue
		}
		b, end := r.ObjectRange(o)
		for i := b; i < end; i++ {
			p := r.Lp.Access(i)
			pos := r.Cp[p] + r.Lp.Rank(p, i)
			s := r.Ls.Access(pos)
			if ov.Deleted(Edge{S: s, P: p, O: o}) {
				continue
			}
			if !fn(p, s) {
				return false
			}
		}
	}
	return ov.InEdges(o, fn)
}

// wideRun drains a multiword BFS worklist. visited maps nodes to their
// accumulated state masks (base pre-folded in by the caller); reach is
// called for nodes newly reaching the initial state.
type wideRun struct {
	e       *Engine
	wd      *glushkov.Wide
	visited map[uint32]glushkov.Mask
	queue   []uint32
	pending map[uint32]glushkov.Mask // states enqueued but not expanded
	dst     glushkov.Mask
	reach   func(s uint32) bool
}

func (e *Engine) newWideRun(wd *glushkov.Wide, reach func(uint32) bool) *wideRun {
	return &wideRun{
		e:       e,
		wd:      wd,
		visited: map[uint32]glushkov.Mask{},
		pending: map[uint32]glushkov.Mask{},
		dst:     wd.NewMask(),
		reach:   reach,
	}
}

// seed marks node n visited with states d and enqueues its outgoing
// work (Init carries none).
func (r *wideRun) seed(n uint32, d glushkov.Mask) bool {
	v := r.visited[n]
	if v == nil {
		v = r.wd.NewMask()
		r.visited[n] = v
	}
	fresh := d.Clone()
	fresh.AndNot(v)
	if !fresh.Any() {
		return true
	}
	v.Or(d)
	if fresh.Test(0) {
		if !r.reach(n) {
			return false
		}
		fresh[0] &^= 1
	}
	if !fresh.Any() {
		return true
	}
	p := r.pending[n]
	if p == nil {
		r.pending[n] = fresh
		r.queue = append(r.queue, n)
	} else {
		p.Or(fresh)
	}
	return true
}

// seedStart marks the traversal's start node visited with the final
// states and enqueues its expansion, without treating the seed itself
// as having reached the initial state (parity with the narrow path's
// markNode + queue seeding).
func (r *wideRun) seedStart(n uint32) {
	r.visited[n] = r.wd.F.Clone()
	r.pending[n] = r.wd.F.Clone()
	r.queue = append(r.queue, n)
}

// drain expands the worklist to exhaustion.
func (r *wideRun) drain() error {
	for len(r.queue) > 0 {
		n := r.queue[0]
		r.queue = r.queue[1:]
		d := r.pending[n]
		delete(r.pending, n)
		if d == nil || !d.Any() {
			continue
		}
		if err := r.e.checkDeadline(); err != nil {
			return err
		}
		stopped := false
		r.e.eachInEdge(n, func(p, s uint32) bool {
			r.wd.StepRevInto(r.dst, d, p)
			if !r.dst.Any() {
				return true
			}
			r.e.stats.ProductEdges++
			if !r.seed(s, r.dst) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return errLimit
		}
	}
	return nil
}

// wideEvalToConst mirrors evalToConst beyond 64 states.
func (e *Engine) wideEvalToConst(expr pathexpr.Node, o uint32, swap bool, emit core.EmitFunc) error {
	wd := e.wideFor(e.compile(expr))
	if int(o) >= e.numNodes {
		return nil
	}
	pair := func(s uint32) bool {
		if swap {
			return emit(o, s)
		}
		return emit(s, o)
	}
	if wd.A.Nullable {
		if !pair(o) {
			return errLimit
		}
	}
	run := e.newWideRun(wd, pair)
	run.seedStart(o)
	return run.drain()
}

// wideEvalBothConst mirrors evalBothConst beyond 64 states.
func (e *Engine) wideEvalBothConst(expr pathexpr.Node, s, o uint32, emit core.EmitFunc) error {
	wd := e.wideFor(e.compile(expr))
	if int(o) >= e.numNodes || int(s) >= e.numNodes {
		return nil
	}
	if wd.A.Nullable && s == o {
		emit(s, o)
		return nil
	}
	found := false
	run := e.newWideRun(wd, func(got uint32) bool {
		if got == s {
			found = true
			emit(s, o)
			return false
		}
		return true
	})
	run.seedStart(o)
	err := run.drain()
	if found && errors.Is(err, errLimit) {
		err = nil
	}
	return err
}

// wideEvalBothVar mirrors evalBothVar beyond 64 states: nullable
// self-pairs, a multi-seeded phase collecting sources, then one
// constrained traversal of the inverse expression per source.
func (e *Engine) wideEvalBothVar(expr pathexpr.Node, emit core.EmitFunc) error {
	wd := e.wideFor(e.compile(expr))
	nullable := wd.A.Nullable
	if nullable {
		for v := 0; v < e.numNodes; v++ {
			if err := e.checkDeadline(); err != nil {
				return err
			}
			if !emit(uint32(v), uint32(v)) {
				return errLimit
			}
		}
	}

	// Phase 1: seed every node with F &^ Init pre-visited and F queued,
	// collecting sources that reach the initial state.
	var starts []uint32
	run := e.newWideRun(wd, func(s uint32) bool {
		starts = append(starts, s)
		return true
	})
	base := wd.F.Clone()
	base[0] &^= 1
	for v := 0; v < e.numNodes; v++ {
		// Seed expansion work directly (not via seed: conceptually the
		// final states are active everywhere without any node having
		// "reached" the initial state yet).
		run.visited[uint32(v)] = base.Clone()
		run.pending[uint32(v)] = wd.F.Clone()
		run.queue = append(run.queue, uint32(v))
	}
	if err := run.drain(); err != nil {
		return err
	}

	// Phase 2: enumerate objects per source via the inverse expression.
	inv := pathexpr.InverseOf(expr)
	iwd := e.wideFor(e.compile(inv))
	for _, s := range starts {
		s := s
		run2 := e.newWideRun(iwd, func(o uint32) bool {
			if nullable && o == s {
				return true
			}
			return emit(s, o)
		})
		run2.seedStart(s)
		if err := run2.drain(); err != nil {
			return err
		}
	}
	return nil
}
