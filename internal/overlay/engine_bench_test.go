package overlay

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"ringrpq/internal/core"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
)

// benchWorld builds a mid-sized graph with a given overlay fill for
// static-vs-union latency comparison (the micro version of rpqbench
// -updates).
func benchWorld(b *testing.B, fill float64) (*core.Engine, *Engine, *triples.Graph) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	const nv, np, ne = 4000, 40, 20000
	tb := triples.NewBuilder()
	for i := 0; i < nv; i++ {
		tb.Nodes().Intern(fmt.Sprintf("n%04d", i))
	}
	for i := 0; i < np; i++ {
		tb.Preds().Intern(fmt.Sprintf("p%02d", i))
	}
	for i := 0; i < ne; i++ {
		// Zipf-ish predicate skew like the datagen graphs.
		p := uint32(rng.Intn(np)*rng.Intn(np)) / uint32(np)
		tb.AddIDs(uint32(rng.Intn(nv)), p, uint32(rng.Intn(nv)))
	}
	g := tb.Build()
	r := ring.New(g, ring.WaveletMatrix)
	ids := func(s pathexpr.Sym) (uint32, bool) { return g.PredID(s.Name, s.Inverse) }
	static := core.NewEngine(r, ids)

	target := int(fill * float64(g.Len()))
	ov := New()
	var adds []Edge
	for len(adds) < target {
		s, p, o := uint32(rng.Intn(nv)), uint32(rng.Intn(np)), uint32(rng.Intn(nv))
		if r.Has(s, p, o) {
			continue
		}
		adds = append(adds, Edge{S: s, P: p, O: o}, Edge{S: o, P: p + np, O: s})
	}
	ov = ov.Apply(1, adds, nil, func(e Edge) bool { return r.Has(e.S, e.P, e.O) })

	eng := NewEngine(static, []*ring.Ring{r}, ids, g.NumCompletedPreds())
	eng.SetSnapshot(ov, g.NumNodes())
	return static, eng, g
}

func benchQueries(g *triples.Graph, n int) []core.Query {
	rng := rand.New(rand.NewSource(11))
	var out []core.Query
	mk := func(name string) pathexpr.Node { return pathexpr.MustParse(name) }
	for i := 0; i < n; i++ {
		p1 := fmt.Sprintf("p%02d", rng.Intn(40))
		p2 := fmt.Sprintf("p%02d", rng.Intn(40))
		var q core.Query
		switch i % 7 {
		case 0:
			q = core.Query{Subject: core.Variable, Expr: mk(p1 + "/" + p2 + "*"), Object: int64(rng.Intn(g.NumNodes()))}
		case 1:
			q = core.Query{Subject: core.Variable, Expr: mk(p1 + "*"), Object: int64(rng.Intn(g.NumNodes()))}
		case 2:
			q = core.Query{Subject: int64(rng.Intn(g.NumNodes())), Expr: mk(p1 + "+"), Object: core.Variable}
		case 3:
			q = core.Query{Subject: core.Variable, Expr: mk("(" + p1 + "|" + p2 + ")*"), Object: int64(rng.Intn(g.NumNodes()))}
		case 4:
			q = core.Query{Subject: core.Variable, Expr: mk(p1 + "/" + p2), Object: core.Variable}
		case 5:
			q = core.Query{Subject: core.Variable, Expr: mk(p1 + "|" + p2), Object: core.Variable}
		default:
			q = core.Query{Subject: core.Variable, Expr: mk(p1 + "+"), Object: core.Variable}
		}
		out = append(out, q)
	}
	return out
}

func runAll(b *testing.B, ev core.Evaluator, qs []core.Query) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if _, err := ev.Eval(context.Background(), q, core.Options{Limit: 100000}, func(uint32, uint32) bool { return true }); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkStaticReads(b *testing.B) {
	static, _, g := benchWorld(b, 0.10)
	qs := benchQueries(g, 50)
	runAll(b, static, qs) // warm compile
	b.ResetTimer()
	runAll(b, static, qs)
}

func BenchmarkUnionReads10(b *testing.B) {
	_, eng, g := benchWorld(b, 0.10)
	qs := benchQueries(g, 50)
	runAll(b, eng, qs)
	b.ResetTimer()
	runAll(b, eng, qs)
}
