package overlay

import (
	"testing"
)

func edge(s, p, o uint32) Edge { return Edge{S: s, P: p, O: o} }

// staticSet builds an inStatic callback from a fixed edge set.
func staticSet(es ...Edge) (map[Edge]bool, func(Edge) bool) {
	m := map[Edge]bool{}
	for _, e := range es {
		m[e] = true
	}
	return m, func(e Edge) bool { return m[e] }
}

func TestApplySemantics(t *testing.T) {
	_, inStatic := staticSet(edge(0, 0, 1), edge(1, 0, 2))
	ov := New()

	// Add a new edge plus a duplicate of a static one: only the new one
	// lands in the overlay.
	ov = ov.Apply(1, []Edge{edge(2, 0, 3), edge(0, 0, 1)}, nil, inStatic)
	if ov.AddCount() != 1 || !ov.Has(edge(2, 0, 3)) {
		t.Fatalf("adds = %d, want the single novel edge", ov.AddCount())
	}
	if ov.DelCount() != 0 || ov.Empty() {
		t.Fatalf("unexpected dels/empty state")
	}

	// Delete a static edge (tombstone), a pending add (cancelled), and
	// an absent edge (no-op).
	ov = ov.Apply(2, nil, []Edge{edge(1, 0, 2), edge(2, 0, 3), edge(9, 9, 9)}, inStatic)
	if ov.AddCount() != 0 {
		t.Fatalf("adds = %d after cancelling the pending add", ov.AddCount())
	}
	if ov.DelCount() != 1 || !ov.Deleted(edge(1, 0, 2)) {
		t.Fatalf("dels = %d, want one tombstone", ov.DelCount())
	}

	// Re-adding a tombstoned edge revives it.
	ov = ov.Apply(3, []Edge{edge(1, 0, 2)}, nil, inStatic)
	if ov.DelCount() != 0 || ov.AddCount() != 0 || !ov.Empty() {
		t.Fatalf("revival should cancel the tombstone: %d adds, %d dels", ov.AddCount(), ov.DelCount())
	}

	// Within one batch, deletes win over adds.
	ov = ov.Apply(4, []Edge{edge(5, 1, 6)}, []Edge{edge(5, 1, 6)}, inStatic)
	if ov.AddCount() != 0 || ov.DelCount() != 0 {
		t.Fatalf("same-batch add+del should cancel: %d adds, %d dels", ov.AddCount(), ov.DelCount())
	}

	if ov.Version() != 4 {
		t.Fatalf("version = %d, want 4", ov.Version())
	}
	if got := len(ov.BatchesAfter(2)); got != 2 {
		t.Fatalf("BatchesAfter(2) = %d batches, want 2", got)
	}
}

func TestInEdgesAndCounts(t *testing.T) {
	_, inStatic := staticSet(edge(0, 1, 7), edge(1, 1, 7), edge(2, 1, 7))
	ov := New()
	ov = ov.Apply(1, []Edge{edge(3, 0, 5), edge(4, 2, 5), edge(3, 2, 5)}, []Edge{edge(0, 1, 7), edge(2, 1, 7)}, inStatic)

	var got []Edge
	ov.InEdges(5, func(p, s uint32) bool {
		got = append(got, edge(s, p, 5))
		return true
	})
	if len(got) != 3 {
		t.Fatalf("InEdges(5) = %v, want 3 edges", got)
	}
	for i := 1; i < len(got); i++ {
		if cmpEdge(got[i-1], got[i]) >= 0 {
			t.Fatalf("InEdges not ordered: %v", got)
		}
	}
	if ov.DeletedPS(1, 0) != 1 || ov.DeletedPS(1, 1) != 0 || ov.DeletedPS(1, 2) != 1 {
		t.Fatalf("DeletedPS counts wrong: %d %d %d", ov.DeletedPS(1, 0), ov.DeletedPS(1, 1), ov.DeletedPS(1, 2))
	}
	if !ov.TouchesPred(0) || !ov.TouchesPred(1) || !ov.TouchesPred(2) || ov.TouchesPred(3) {
		t.Fatalf("TouchesPred wrong")
	}
	if ov.MaxNode() != 6 {
		t.Fatalf("MaxNode = %d, want 6", ov.MaxNode())
	}
}

func TestReplay(t *testing.T) {
	_, inStaticOld := staticSet(edge(0, 0, 1))
	ov := New()
	ov = ov.Apply(1, []Edge{edge(1, 0, 2)}, nil, inStaticOld)
	ov = ov.Apply(2, []Edge{edge(2, 0, 3)}, []Edge{edge(0, 0, 1)}, inStaticOld)
	ov = ov.Apply(3, nil, []Edge{edge(1, 0, 2)}, inStaticOld)

	// Compact as of version 2: the new static base holds exactly the
	// union at version 2; replaying the remaining batch against it must
	// tombstone (1,0,2) there.
	_, inStaticNew := staticSet(edge(1, 0, 2), edge(2, 0, 3))
	res := Replay(ov.BatchesAfter(2), inStaticNew)
	if res.AddCount() != 0 || res.DelCount() != 1 || !res.Deleted(edge(1, 0, 2)) {
		t.Fatalf("replayed residual wrong: %d adds, %d dels", res.AddCount(), res.DelCount())
	}
	if res.Version() != 3 {
		t.Fatalf("residual version = %d, want 3", res.Version())
	}
}
