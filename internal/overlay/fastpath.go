package overlay

import (
	"ringrpq/internal/core"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/wavelet"
)

// This file is the union engine's analogue of core's §5 fast paths for
// the frequent join-like v→v shapes: a single predicate or an
// alternation of predicates. The answer is a direct scan — static
// pred-range extraction per sub-ring (minus tombstones) unioned with
// the overlay's predicate-major adds — instead of a generic
// product-graph traversal, which matters because these shapes dominate
// real logs and produce the largest result sets.

// tryFastPath handles (x, E, y) when E flattens to symbols or is a
// two-symbol concatenation; reports whether it ran (result or error
// left in e.fastErr).
func (e *Engine) tryFastPath(expr pathexpr.Node, emit core.EmitFunc) bool {
	if x, ok := expr.(pathexpr.Concat); ok {
		l, lok := x.L.(pathexpr.Sym)
		r, rok := x.R.(pathexpr.Sym)
		if lok && rok {
			e.fastErr = e.fastConcat2(l, r, emit)
			return true
		}
		return false
	}
	syms, ok := flattenAltSyms(expr)
	if !ok {
		return false
	}
	e.fastErr = nil
	// Pair dedup across branches (two predicates may connect the same
	// pair) via the engine-owned paged bitset: zero steady-state
	// allocation, like core's §5 paths. Within one branch pairs are
	// distinct by construction — sub-rings partition the static triples
	// and overlay adds are disjoint from them — so single-symbol
	// expressions skip the probes entirely.
	e.pairs.Reset()
	dedup := len(syms) > 1
	for _, sym := range syms {
		p, found := e.ids(sym)
		if !found {
			continue // unknown predicate matches nothing
		}
		if err := e.fastSingle(p, dedup, emit); err != nil {
			e.fastErr = err
			break
		}
	}
	return true
}

// flattenAltSyms collects the leaves of an alternation tree if they
// are all plain symbols.
func flattenAltSyms(n pathexpr.Node) ([]pathexpr.Sym, bool) {
	switch x := n.(type) {
	case pathexpr.Sym:
		return []pathexpr.Sym{x}, true
	case pathexpr.Alt:
		l, lok := flattenAltSyms(x.L)
		r, rok := flattenAltSyms(x.R)
		if lok && rok {
			return append(l, r...), true
		}
	}
	return nil, false
}

// fastSingle emits every union pair (s, o) with (s, p, o) ∈ U: per
// sub-ring, the distinct subjects of L_s[C_p[p], C_p[p+1]) each
// backward-step their object range by p̂ to list their objects (§5),
// tombstones dropped; then the overlay's adds for p.
func (e *Engine) fastSingle(p uint32, dedup bool, emit core.EmitFunc) error {
	half := e.numPreds / 2
	pInv := p + half
	if p >= half {
		pInv = p - half
	}
	checkDels := e.ov.DelsForPred(p) > 0
	deliver := func(s, o uint32) error {
		if dedup && !e.pairs.Add(s, o) {
			return nil
		}
		if !emit(s, o) {
			return errLimit
		}
		return nil
	}
	for _, w := range e.work {
		r := w.r
		b, end := r.PredRange(p)
		if b == end {
			continue
		}
		var failure error
		r.Ls.Traverse(b, end, func(_ wavelet.NodeID, leaf bool, s uint32, _, _ int, _ bool) bool {
			if failure != nil {
				return false
			}
			e.stats.WaveletVisits++
			if !leaf {
				return true
			}
			if err := e.checkDeadline(); err != nil {
				failure = err
				return false
			}
			// Objects of (s, p, ·) are the subjects of the (p̂, object=s)
			// range: one backward-search step from s's object range.
			ob, oe := r.ObjectRange(s)
			lsB, lsE := r.BackwardByPred(ob, oe, pInv)
			r.Ls.Traverse(lsB, lsE, func(_ wavelet.NodeID, leaf2 bool, o uint32, _, _ int, _ bool) bool {
				if failure != nil {
					return false
				}
				e.stats.WaveletVisits++
				if !leaf2 {
					return true
				}
				if checkDels && e.ov.Deleted(Edge{S: s, P: p, O: o}) {
					return true
				}
				if err := deliver(s, o); err != nil {
					failure = err
					return false
				}
				return true
			})
			return failure == nil
		})
		if failure != nil {
			return failure
		}
	}
	var failure error
	e.ov.AddsForPred(p, func(s, o uint32) bool {
		if err := deliver(s, o); err != nil {
			failure = err
			return false
		}
		return true
	})
	return failure
}

// fastConcat2 evaluates (x, p1/p2, y) over the union graph: the middle
// nodes z are the union targets of p1 intersected with the union
// sources of p2; for each z, the sources by p1 and the objects by p2
// are materialised (static backward steps minus tombstones, plus the
// overlay's sorted adds) and cross-multiplied (§5's join-like shape).
func (e *Engine) fastConcat2(s1, s2 pathexpr.Sym, emit core.EmitFunc) error {
	p1, ok1 := e.ids(s1)
	p2, ok2 := e.ids(s2)
	if !ok1 || !ok2 {
		return nil
	}
	half := e.numPreds / 2
	inv := func(p uint32) uint32 {
		if p < half {
			return p + half
		}
		return p - half
	}
	p1Inv, p2Inv := inv(p1), inv(p2)
	del1 := e.ov.DelsForPred(p1) > 0
	del2 := e.ov.DelsForPred(p2) > 0
	e.pairs.Reset()

	var srcs, dsts []uint32
	perMiddle := func(z uint32) error {
		if err := e.checkDeadline(); err != nil {
			return err
		}
		srcs, dsts = srcs[:0], dsts[:0]
		for _, w := range e.work {
			if int(z) >= w.r.NumNodes {
				continue
			}
			ob, oe := w.r.ObjectRange(z)
			if ob == oe {
				continue
			}
			srcB, srcE := w.r.BackwardByPred(ob, oe, p1)
			if srcB < srcE {
				wavelet.RangeDistinct(w.r.Ls, srcB, srcE, func(s uint32, _, _ int) {
					if !del1 || !e.ov.Deleted(Edge{S: s, P: p1, O: z}) {
						srcs = append(srcs, s)
					}
				})
			}
			dstB, dstE := w.r.BackwardByPred(ob, oe, p2Inv)
			if dstB < dstE {
				wavelet.RangeDistinct(w.r.Ls, dstB, dstE, func(o uint32, _, _ int) {
					if !del2 || !e.ov.Deleted(Edge{S: z, P: p2, O: o}) {
						dsts = append(dsts, o)
					}
				})
			}
		}
		// Overlay in-edges of z by p1 (sources) and out-edges by p2.
		e.ov.AddsForPredSubject(p1Inv, z, func(s uint32) bool {
			srcs = append(srcs, s)
			return true
		})
		e.ov.AddsForPredSubject(p2, z, func(o uint32) bool {
			dsts = append(dsts, o)
			return true
		})
		for _, s := range srcs {
			for _, o := range dsts {
				if !e.pairs.Add(s, o) {
					continue
				}
				if !emit(s, o) {
					return errLimit
				}
			}
		}
		return nil
	}

	// Middle nodes: the static targets of p1 (the p̂1 block lives in
	// exactly one sub-ring), then overlay targets not already seen.
	zSeen := map[uint32]bool{}
	var failure error
	for _, w := range e.work {
		b, end := w.r.PredRange(p1Inv)
		if b == end {
			continue
		}
		wavelet.RangeDistinct(w.r.Ls, b, end, func(z uint32, _, _ int) {
			if failure != nil {
				return
			}
			zSeen[z] = true
			if err := perMiddle(z); err != nil {
				failure = err
			}
		})
		if failure != nil {
			return failure
		}
	}
	e.ov.AddsForPred(p1, func(_, z uint32) bool {
		if zSeen[z] {
			return true
		}
		zSeen[z] = true
		if err := perMiddle(z); err != nil {
			failure = err
			return false
		}
		return true
	})
	return failure
}
