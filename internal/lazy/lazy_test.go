package lazy

import "testing"

func TestMaskArrayBasics(t *testing.T) {
	a := NewMaskArray(10)
	if a.Len() != 10 {
		t.Fatalf("Len=%d", a.Len())
	}
	for i := 0; i < 10; i++ {
		if a.Get(i) != 0 {
			t.Fatalf("fresh Get(%d)=%d, want 0", i, a.Get(i))
		}
	}
	if got := a.Or(3, 0b101); got != 0b101 {
		t.Errorf("Or returned %b, want 101", got)
	}
	if got := a.Or(3, 0b011); got != 0b111 {
		t.Errorf("Or returned %b, want 111", got)
	}
	a.Set(4, 42)
	if a.Get(4) != 42 || a.Get(3) != 0b111 || a.Get(5) != 0 {
		t.Errorf("unexpected values: %d %d %d", a.Get(4), a.Get(3), a.Get(5))
	}
}

func TestMaskArrayReset(t *testing.T) {
	a := NewMaskArray(5)
	a.Set(0, 7)
	a.Set(4, 9)
	a.Reset()
	for i := 0; i < 5; i++ {
		if a.Get(i) != 0 {
			t.Fatalf("after Reset Get(%d)=%d", i, a.Get(i))
		}
	}
	// Values written after reset are independent of stale contents.
	if got := a.Or(0, 2); got != 2 {
		t.Errorf("Or after reset=%d, want 2", got)
	}
}

func TestMaskArrayEpochWraparound(t *testing.T) {
	a := NewMaskArray(3)
	a.epoch = ^uint32(0) // force wraparound on next Reset
	a.Set(1, 5)
	a.Reset()
	if a.epoch != 1 {
		t.Fatalf("epoch after wrap=%d, want 1", a.epoch)
	}
	for i := 0; i < 3; i++ {
		if a.Get(i) != 0 {
			t.Fatalf("after wrap Get(%d)=%d", i, a.Get(i))
		}
	}
}

func TestWideMaskArray(t *testing.T) {
	a := NewWideMaskArray(4, 3)
	if a.Len() != 4 || a.Words() != 3 {
		t.Fatalf("Len=%d Words=%d", a.Len(), a.Words())
	}
	for _, x := range a.Get(2) {
		if x != 0 {
			t.Fatal("fresh slot not zero")
		}
	}
	a.Or(2, []uint64{1, 0, 4})
	a.Or(2, []uint64{2, 8, 0})
	got := a.Get(2)
	if got[0] != 3 || got[1] != 8 || got[2] != 4 {
		t.Errorf("Get(2)=%v", got)
	}
	// Other slots untouched.
	for _, x := range a.Get(1) {
		if x != 0 {
			t.Fatal("neighbour slot dirtied")
		}
	}
	a.Reset()
	for _, x := range a.Get(2) {
		if x != 0 {
			t.Fatal("slot survives Reset")
		}
	}
}

func TestWideMaskArrayWraparound(t *testing.T) {
	a := NewWideMaskArray(2, 2)
	a.epoch = ^uint32(0)
	a.Or(0, []uint64{9, 9})
	a.Reset()
	for _, x := range a.Get(0) {
		if x != 0 {
			t.Fatal("slot survives epoch wraparound")
		}
	}
}

func BenchmarkMaskArrayOrReset(b *testing.B) {
	a := NewMaskArray(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Or(i%a.Len(), uint64(i))
		if i%1000 == 999 {
			a.Reset()
		}
	}
}
