// Package lazy provides lazily-initialised working arrays that can be
// "cleared" in O(1) between queries. The paper (§4.2, citing Navarro's
// compact lazy-initialisation structure) needs per-node visited-state masks
// D[s] over all |V| graph nodes and all wavelet-tree nodes, zeroed before
// every query; actually zeroing them would cost O(|V|) per query. We use
// the classical epoch (timestamp) technique: a slot is valid only if its
// epoch matches the current one, so Reset is a single increment.
package lazy

// MaskArray is an array of uint64 bitmasks with O(1) Reset.
type MaskArray struct {
	vals   []uint64
	epochs []uint32
	epoch  uint32
}

// NewMaskArray returns a zeroed mask array of length n.
func NewMaskArray(n int) *MaskArray {
	return &MaskArray{
		vals:   make([]uint64, n),
		epochs: make([]uint32, n),
		epoch:  1,
	}
}

// Len reports the array length.
func (a *MaskArray) Len() int { return len(a.vals) }

// Get returns the mask at i (zero if untouched since the last Reset).
func (a *MaskArray) Get(i int) uint64 {
	if a.epochs[i] != a.epoch {
		return 0
	}
	return a.vals[i]
}

// Or sets a[i] |= m and returns the new value.
func (a *MaskArray) Or(i int, m uint64) uint64 {
	if a.epochs[i] != a.epoch {
		a.epochs[i] = a.epoch
		a.vals[i] = m
		return m
	}
	a.vals[i] |= m
	return a.vals[i]
}

// Set stores m at i.
func (a *MaskArray) Set(i int, m uint64) {
	a.epochs[i] = a.epoch
	a.vals[i] = m
}

// Reset logically zeroes the whole array in O(1) (amortised: on epoch
// wraparound it pays one true O(n) clear every 2^32 resets).
func (a *MaskArray) Reset() {
	a.epoch++
	if a.epoch == 0 {
		for i := range a.epochs {
			a.epochs[i] = 0
		}
		a.epoch = 1
	}
}

// SizeBytes reports the memory footprint.
func (a *MaskArray) SizeBytes() int { return 8*len(a.vals) + 4*len(a.epochs) + 16 }

// WideMaskArray is the multiword analogue of MaskArray, used by the
// multiword Glushkov engine when an expression has more than 64 positions.
// Each slot holds w words.
type WideMaskArray struct {
	vals   []uint64 // n*w words
	epochs []uint32
	epoch  uint32
	w      int
	zero   []uint64 // scratch all-zero slot returned for untouched entries
}

// NewWideMaskArray returns a zeroed n-slot array of w-word masks.
func NewWideMaskArray(n, w int) *WideMaskArray {
	return &WideMaskArray{
		vals:   make([]uint64, n*w),
		epochs: make([]uint32, n),
		epoch:  1,
		w:      w,
		zero:   make([]uint64, w),
	}
}

// Len reports the number of slots.
func (a *WideMaskArray) Len() int { return len(a.epochs) }

// Words reports the words per slot.
func (a *WideMaskArray) Words() int { return a.w }

// Get returns a read-only view of slot i; untouched slots read as zero.
// The returned slice is invalidated by the next call into the array.
func (a *WideMaskArray) Get(i int) []uint64 {
	if a.epochs[i] != a.epoch {
		return a.zero
	}
	return a.vals[i*a.w : (i+1)*a.w]
}

// Or performs slot[i] |= m in place.
func (a *WideMaskArray) Or(i int, m []uint64) {
	slot := a.vals[i*a.w : (i+1)*a.w]
	if a.epochs[i] != a.epoch {
		a.epochs[i] = a.epoch
		copy(slot, m)
		return
	}
	for j, x := range m {
		slot[j] |= x
	}
}

// Reset logically zeroes all slots in O(1).
func (a *WideMaskArray) Reset() {
	a.epoch++
	if a.epoch == 0 {
		for i := range a.epochs {
			a.epochs[i] = 0
		}
		a.epoch = 1
	}
}

// SizeBytes reports the memory footprint.
func (a *WideMaskArray) SizeBytes() int {
	return 8*len(a.vals) + 4*len(a.epochs) + 8*len(a.zero) + 24
}
