package ring

import (
	"bytes"
	"strings"
	"testing"

	"ringrpq/internal/enginetest"
	"ringrpq/internal/serial"
	"ringrpq/internal/triples"
)

func shardRoundTrip(t *testing.T, set *ShardSet) *ShardSet {
	t.Helper()
	var buf bytes.Buffer
	w := serial.NewWriter(&buf)
	set.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeShardSet(serial.NewReader(&buf))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

func TestShardSetRoundTrip(t *testing.T) {
	g := enginetest.RandomGraph(1, 15, 4, 60)
	for _, layout := range []Layout{WaveletMatrix, WaveletTree} {
		set := NewShardSet(g, 3, nil, layout)
		got := shardRoundTrip(t, set)
		if got.K != set.K || got.N != set.N || got.NumNodes != set.NumNodes || got.NumPreds != set.NumPreds {
			t.Fatalf("layout %d: header (%d,%d,%d,%d) != (%d,%d,%d,%d)", layout,
				got.K, got.N, got.NumNodes, got.NumPreds, set.K, set.N, set.NumNodes, set.NumPreds)
		}
		for i := range set.Shards {
			a, b := set.Shards[i], got.Shards[i]
			if a.N != b.N {
				t.Fatalf("layout %d: shard %d has %d triples, want %d", layout, i, b.N, a.N)
			}
			for pos := 0; pos < a.N; pos++ {
				if a.TripleAt(pos) != b.TripleAt(pos) {
					t.Fatalf("layout %d: shard %d triple %d differs", layout, i, pos)
				}
			}
		}
	}
}

func TestShardSetRoundTripEmptyShards(t *testing.T) {
	// 1 base predicate across 5 shards: 4 shards are empty.
	g := enginetest.RandomGraph(2, 8, 1, 20)
	set := NewShardSet(g, 5, nil, WaveletMatrix)
	empty := 0
	for _, shard := range set.Shards {
		if shard.N == 0 {
			empty++
		}
	}
	if empty != 4 {
		t.Fatalf("%d empty shards, want 4", empty)
	}
	got := shardRoundTrip(t, set)
	for i, shard := range got.Shards {
		if shard.N != set.Shards[i].N {
			t.Fatalf("shard %d: %d triples, want %d", i, shard.N, set.Shards[i].N)
		}
	}
}

func TestNewShardSetClamps(t *testing.T) {
	g := enginetest.RandomGraph(3, 6, 2, 12)
	if set := NewShardSet(g, 0, nil, WaveletMatrix); set.K != 1 {
		t.Fatalf("K=0 clamped to %d, want 1", set.K)
	}
	if set := NewShardSet(g, -4, nil, WaveletMatrix); set.K != 1 {
		t.Fatalf("K=-4 clamped to %d, want 1", set.K)
	}
	if set := NewShardSet(g, MaxShards+10, nil, WaveletMatrix); set.K != MaxShards {
		t.Fatalf("huge K clamped to %d, want %d", set.K, MaxShards)
	}
}

// corrupt re-encodes a valid shard set, applies edit to the buffered
// bytes, and expects DecodeShardSet to fail cleanly.
func expectDecodeError(t *testing.T, name string, raw []byte, wantSub string) {
	t.Helper()
	_, err := DecodeShardSet(serial.NewReader(bytes.NewReader(raw)))
	if err == nil {
		t.Fatalf("%s: decode succeeded, want error containing %q", name, wantSub)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
	}
}

func encodeSet(t *testing.T, set *ShardSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := serial.NewWriter(&buf)
	set.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// wrongHomePartitioner claims the hash partitioner's name but assigns
// differently, so its encoding is internally inconsistent.
type wrongHomePartitioner struct{}

func (wrongHomePartitioner) Shard(p uint32, k int) int { return int(p+1) % k }
func (wrongHomePartitioner) Name() string              { return "hash" }

func TestDecodeShardSetRejectsCorruption(t *testing.T) {
	g := enginetest.RandomGraph(4, 10, 4, 40)
	set := NewShardSet(g, 3, nil, WaveletMatrix)
	valid := encodeSet(t, set)

	// Truncations at every prefix length must error, never panic.
	for i := 0; i < len(valid); i += 7 {
		if _, err := DecodeShardSet(serial.NewReader(bytes.NewReader(valid[:i]))); err == nil {
			t.Fatalf("truncated to %d bytes: decode succeeded", i)
		}
	}

	// Bad shard count: patch K (the uvarint right after the magic).
	bad := append([]byte(nil), valid...)
	bad[4] = 0
	expectDecodeError(t, "zero shards", bad, "shard count")

	// Unknown partitioner name.
	other := NewShardSet(g, 3, wrongNamePartitioner{}, WaveletMatrix)
	expectDecodeError(t, "unknown partitioner", encodeSet(t, other), "partitioner")

	// Predicates placed where the named partitioner would not put them.
	misplaced := NewShardSet(g, 3, wrongHomePartitioner{}, WaveletMatrix)
	expectDecodeError(t, "misplaced predicates", encodeSet(t, misplaced), "assigns it to shard")

	// Shard built over a different id space.
	small := enginetest.RandomGraph(4, 5, 4, 20)
	mixed := NewShardSet(g, 2, nil, WaveletMatrix)
	mixed.Shards[1] = New(small, WaveletMatrix)
	expectDecodeError(t, "mixed id spaces", encodeSet(t, mixed), "id spaces")
}

type wrongNamePartitioner struct{}

func (wrongNamePartitioner) Shard(p uint32, k int) int { return HashPartitioner{}.Shard(p, k) }
func (wrongNamePartitioner) Name() string              { return "no-such-partitioner" }

func TestPartitionerByName(t *testing.T) {
	p, ok := PartitionerByName("hash")
	if !ok {
		t.Fatal("hash partitioner not registered")
	}
	if p.Name() != "hash" {
		t.Fatalf("registered name %q", p.Name())
	}
	if _, ok := PartitionerByName("bogus"); ok {
		t.Fatal("bogus partitioner resolved")
	}
	// Determinism and range of the default partitioner.
	for k := 1; k <= 9; k++ {
		for pred := uint32(0); pred < 100; pred++ {
			s := p.Shard(pred, k)
			if s < 0 || s >= k {
				t.Fatalf("Shard(%d, %d) = %d out of range", pred, k, s)
			}
			if s != p.Shard(pred, k) {
				t.Fatalf("Shard(%d, %d) not deterministic", pred, k)
			}
		}
	}
}

// TestShardedTriplePartition checks that NewShardSet puts every triple
// in exactly the shard its base predicate maps to, with nothing lost.
func TestShardedTriplePartition(t *testing.T) {
	g := enginetest.RandomGraph(5, 12, 5, 50)
	set := NewShardSet(g, 4, nil, WaveletMatrix)
	seen := map[triples.Triple]bool{}
	for i, shard := range set.Shards {
		for pos := 0; pos < shard.N; pos++ {
			tr := shard.TripleAt(pos)
			if set.ShardFor(tr.P) != i {
				t.Fatalf("triple %v in shard %d, want %d", tr, i, set.ShardFor(tr.P))
			}
			if seen[tr] {
				t.Fatalf("triple %v duplicated across shards", tr)
			}
			seen[tr] = true
		}
	}
	if len(seen) != g.Len() {
		t.Fatalf("shards hold %d distinct triples, want %d", len(seen), g.Len())
	}
}
