package ring

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"ringrpq/internal/triples"
	"ringrpq/internal/wavelet"
)

// fig1Graph builds the completed Santiago graph exactly as in Fig. 3:
// bidirectional metro edges plus bus edges completed with ^bus.
func fig1Graph() *triples.Graph {
	b := triples.NewBuilder()
	add := func(s, p, o string) { b.Add(s, p, o); b.Add(o, p, s) }
	add("Baq", "l1", "UCh")
	add("UCh", "l1", "LH")
	add("LH", "l2", "SA")
	add("SA", "l5", "BA")
	add("BA", "l5", "Baq")
	b.Add("SA", "bus", "UCh")
	b.Add("SA", "bus", "BA")
	return b.Build()
}

func layouts() map[string]Layout {
	return map[string]Layout{"matrix": WaveletMatrix, "tree": WaveletTree}
}

func TestRingBasics(t *testing.T) {
	g := fig1Graph()
	for name, layout := range layouts() {
		r := New(g, layout)
		if r.N != g.Len() {
			t.Fatalf("%s: N=%d, want %d", name, r.N, g.Len())
		}
		if r.Lo.Len() != r.N || r.Ls.Len() != r.N || r.Lp.Len() != r.N {
			t.Fatalf("%s: sequence lengths differ from N", name)
		}
		if r.Cs[len(r.Cs)-1] != r.N || r.Cp[len(r.Cp)-1] != r.N || r.Co[len(r.Co)-1] != r.N {
			t.Fatalf("%s: C arrays do not end at N", name)
		}
	}
}

// Every triple must be reconstructible from its L_p position, and the LF
// cycle L_p → L_s → L_o → L_p must return to the start (§3.4 example).
func TestLFCycle(t *testing.T) {
	g := fig1Graph()
	for name, layout := range layouts() {
		r := New(g, layout)
		seen := map[triples.Triple]bool{}
		for i := 0; i < r.N; i++ {
			tr := r.TripleAt(i)
			if seen[tr] {
				t.Fatalf("%s: duplicate triple %v from position %d", name, tr, i)
			}
			seen[tr] = true
			back := r.LFo(r.LFs(r.LFp(i)))
			if back != i {
				t.Fatalf("%s: LF cycle from %d returns %d", name, i, back)
			}
		}
		for _, tr := range g.Triples {
			if !seen[tr] {
				t.Fatalf("%s: triple %v not reconstructed", name, g.String(tr))
			}
		}
	}
}

// Object ranges of L_p must contain exactly the predicates of edges into
// that object.
func TestObjectRanges(t *testing.T) {
	g := fig1Graph()
	r := New(g, WaveletMatrix)
	for o := uint32(0); int(o) < g.NumNodes(); o++ {
		b, e := r.ObjectRange(o)
		var got []uint32
		for i := b; i < e; i++ {
			got = append(got, r.Lp.Access(i))
		}
		var want []uint32
		for _, tr := range g.Triples {
			if tr.O == o {
				want = append(want, tr.P)
			}
		}
		sortU32(got)
		sortU32(want)
		if !equalU32(got, want) {
			t.Fatalf("object %s: preds %v, want %v", g.Nodes.Name(o), got, want)
		}
	}
}

// BackwardByPred must yield exactly the subjects of (s,p,o) triples.
func TestBackwardSearchStep(t *testing.T) {
	g := fig1Graph()
	for name, layout := range layouts() {
		r := New(g, layout)
		for o := uint32(0); int(o) < g.NumNodes(); o++ {
			bo, eo := r.ObjectRange(o)
			for p := uint32(0); p < g.NumCompletedPreds(); p++ {
				bp, ep := r.BackwardByPred(bo, eo, p)
				var got []uint32
				for i := bp; i < ep; i++ {
					got = append(got, r.Ls.Access(i))
				}
				var want []uint32
				for _, tr := range g.Triples {
					if tr.O == o && tr.P == p {
						want = append(want, tr.S)
					}
				}
				sortU32(got)
				sortU32(want)
				if !equalU32(got, want) {
					t.Fatalf("%s: o=%s p=%s: subjects %v, want %v",
						name, g.Nodes.Name(o), g.PredName(p), got, want)
				}
			}
		}
	}
}

// The worked example of §3.4: the triple at L_p[16] (1-based) is
// BA -l5-> Baq, with LFp(16)=10 and LFs(10)=12 (0-based: 15, 9, 11).
func TestPaperWorkedExample(t *testing.T) {
	g := fig1Graph()
	r := New(g, WaveletMatrix)
	// The paper's node numbering is SA=1 UCh=2 LH=3 BA=4 Baq=5 and
	// l1=1 l2=2 l5=3 bus=4 ^bus=5; ours follows insertion order, so we
	// locate the triple by value instead of by fixed position.
	ba, _ := g.Nodes.Lookup("BA")
	baq, _ := g.Nodes.Lookup("Baq")
	l5, _ := g.PredID("l5", false)
	found := false
	for i := 0; i < r.N; i++ {
		tr := r.TripleAt(i)
		if tr.S == ba && tr.P == l5 && tr.O == baq {
			found = true
			// The position must lie in Baq's object range.
			b, e := r.ObjectRange(baq)
			if i < b || i >= e {
				t.Fatalf("BA-l5->Baq at %d outside Baq's range [%d,%d)", i, b, e)
			}
			// The LF step must land in l5's predicate range of L_s.
			j := r.LFp(i)
			pb, pe := r.PredRange(l5)
			if j < pb || j >= pe {
				t.Fatalf("LFp(%d)=%d outside l5's range [%d,%d)", i, j, pb, pe)
			}
			if got := r.Ls.Access(j); got != ba {
				t.Fatalf("subject at LFp position = %d, want BA", got)
			}
		}
	}
	if !found {
		t.Fatal("BA -l5-> Baq not found in ring")
	}
}

// Random graphs: the ring must reconstruct exactly the input triple set,
// for both layouts.
func TestRandomGraphsReconstruct(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		b := triples.NewBuilder()
		nv, np, ne := 20+rng.Intn(30), 1+rng.Intn(5), 100+rng.Intn(200)
		for i := 0; i < ne; i++ {
			b.AddIDs(
				uint32(rng.Intn(nv)),
				uint32(rng.Intn(np)),
				uint32(rng.Intn(nv)))
		}
		// Intern node names so NumNodes covers the id space.
		for i := 0; i < nv; i++ {
			b.Nodes().Intern(string(rune('A'+i%26)) + string(rune('0'+i/26)))
		}
		for i := 0; i < np; i++ {
			b.Preds().Intern("p" + string(rune('0'+i)))
		}
		g := b.Build()
		for name, layout := range layouts() {
			r := New(g, layout)
			got := map[triples.Triple]bool{}
			for i := 0; i < r.N; i++ {
				got[r.TripleAt(i)] = true
			}
			if len(got) != g.Len() {
				t.Fatalf("seed %d %s: %d distinct triples, want %d", seed, name, len(got), g.Len())
			}
			for _, tr := range g.Triples {
				if !got[tr] {
					t.Fatalf("seed %d %s: missing %v", seed, name, tr)
				}
			}
		}
	}
}

// BackwardBySubj and BackwardByObj complete the cycle: starting from a
// subject range of L_o... they must agree with direct filtering.
func TestBackwardOtherAxes(t *testing.T) {
	g := fig1Graph()
	r := New(g, WaveletMatrix)
	// For predicate l5: its L_s range lists subjects; stepping one of
	// them backwards yields the L_o range of triples (p=l5, s).
	l5, _ := g.PredID("l5", false)
	pb, pe := r.PredRange(l5)
	subs := map[uint32]bool{}
	for i := pb; i < pe; i++ {
		subs[r.Ls.Access(i)] = true
	}
	for s := range subs {
		ob, oe := r.BackwardBySubj(pb, pe, s)
		var got []uint32
		for i := ob; i < oe; i++ {
			got = append(got, r.Lo.Access(i))
		}
		var want []uint32
		for _, tr := range g.Triples {
			if tr.P == l5 && tr.S == s {
				want = append(want, tr.O)
			}
		}
		sortU32(got)
		sortU32(want)
		if !equalU32(got, want) {
			t.Fatalf("s=%s by l5: objects %v, want %v", g.Nodes.Name(s), got, want)
		}
	}
}

// RangeDistinct over an object range of L_p enumerates the distinct
// incoming predicates — part one of the RPQ step (§4.1).
func TestDistinctPredsIntoObject(t *testing.T) {
	g := fig1Graph()
	r := New(g, WaveletMatrix)
	baq, _ := g.Nodes.Lookup("Baq")
	b, e := r.ObjectRange(baq)
	got := map[string]bool{}
	wavelet.RangeDistinct(r.Lp, b, e, func(c uint32, rb, re int) {
		got[g.PredName(c)] = true
	})
	// Edges into Baq: l1 (from UCh), l5 (from BA), plus their completion
	// inverses (unlike Fig. 3, we complete every predicate, not only bus).
	want := map[string]bool{"l1": true, "l5": true, "^l1": true, "^l5": true}
	if len(got) != len(want) {
		t.Fatalf("incoming preds of Baq = %v, want %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("missing incoming pred %s", k)
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	g := fig1Graph()
	r := New(g, WaveletMatrix)
	if r.QuerySizeBytes() >= r.SizeBytes() {
		t.Fatal("query size must exclude L_o")
	}
	if r.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func sortU32(x []uint32) { sort.Slice(x, func(i, j int) bool { return x[i] < x[j] }) }

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func benchGraph() *triples.Graph {
	rng := rand.New(rand.NewSource(1))
	tb := triples.NewBuilder()
	for i := 0; i < 5000; i++ {
		tb.Nodes().Intern(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < 50; i++ {
		tb.Preds().Intern(fmt.Sprintf("p%d", i))
	}
	for i := 0; i < 50000; i++ {
		tb.AddIDs(uint32(rng.Intn(5000)), uint32(rng.Intn(50)), uint32(rng.Intn(5000)))
	}
	return tb.Build()
}

func BenchmarkRingConstruction(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(g, WaveletMatrix)
	}
}

func BenchmarkBackwardByPred(b *testing.B) {
	g := benchGraph()
	r := New(g, WaveletMatrix)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o := uint32(i % 5000)
		bo, eo := r.ObjectRange(o)
		r.BackwardByPred(bo, eo, uint32(i%100))
	}
}
