// Package ring implements the ring index of Arroyuelo et al. (paper §3.4):
// a BWT-style representation of a set of n triples as three sequences,
//
//	L_o — the objects,    with triples sorted by (s,p,o);
//	L_s — the subjects,   with triples sorted by (p,o,s);
//	L_p — the predicates, with triples sorted by (o,s,p);
//
// each of which lists, for the sorted circular strings spo/pos/osp, the
// symbol that circularly precedes them. Together with the partitioning
// arrays C_s, C_p, C_o, LF-steps (Eq. 3) navigate from one sequence to the
// next, and backward search (Eqs. 4–5) maps a whole range at once. The
// sequences are represented as wavelet trees (or wavelet matrices, the
// paper's choice), whose range capabilities the RPQ engine exploits.
package ring

import (
	"fmt"
	"sort"

	"ringrpq/internal/triples"
	"ringrpq/internal/wavelet"
)

// Layout selects the wavelet representation of the sequences.
type Layout int

const (
	// WaveletMatrix is the paper's implementation choice (§5), best for
	// large alphabets.
	WaveletMatrix Layout = iota
	// WaveletTree is the classical pointer-shaped layout, kept for the
	// representation ablation.
	WaveletTree
)

// Ring is the immutable index. All positions are 0-based and ranges are
// half-open, so the object range of o in L_p is [Co[o], Co[o+1]).
type Ring struct {
	// N is the number of (completed) triples.
	N int
	// NumNodes is |V|: subjects and objects share the node id space.
	NumNodes int
	// NumPreds is the completed predicate count |Σ↔|.
	NumPreds uint32

	// Lo, Ls, Lp are the three BWT sequences.
	Lo, Ls, Lp wavelet.Seq

	// Cs[x] counts triples with subject < x and partitions Lo; likewise
	// Cp partitions Ls by predicate and Co partitions Lp by object.
	// Each has one trailing entry equal to N.
	Cs, Cp, Co []int
}

// New builds the ring over the completed triples of g.
func New(g *triples.Graph, layout Layout) *Ring {
	return fromTriples(g.Triples, g.NumNodes(), g.NumCompletedPreds(), layout)
}

func fromTriples(ts []triples.Triple, nv int, np uint32, layout Layout) *Ring {
	n := len(ts)
	for _, t := range ts {
		if int(t.S) >= nv || int(t.O) >= nv || t.P >= np {
			panic(fmt.Sprintf("ring: triple (%d,%d,%d) outside id space (%d nodes, %d predicates); did the builder intern all names?",
				t.S, t.P, t.O, nv, np))
		}
	}
	r := &Ring{N: n, NumNodes: nv, NumPreds: np}

	// Work on a copy: three sorts would otherwise disturb the caller.
	buf := make([]triples.Triple, n)
	copy(buf, ts)

	seq := make([]uint32, n)
	mk := func(data []uint32, sigma uint32) wavelet.Seq {
		if layout == WaveletTree {
			return wavelet.NewTree(data, sigma)
		}
		return wavelet.NewMatrix(data, sigma)
	}

	// L_o: triples sorted by (s,p,o); the cyclically preceding symbol of
	// s in "spo" is o. C_s partitions it by subject.
	sort.Slice(buf, func(i, j int) bool {
		a, b := buf[i], buf[j]
		if a.S != b.S {
			return a.S < b.S
		}
		if a.P != b.P {
			return a.P < b.P
		}
		return a.O < b.O
	})
	r.Cs = make([]int, nv+1)
	for i, t := range buf {
		seq[i] = t.O
		r.Cs[t.S+1]++
	}
	for i := 0; i < nv; i++ {
		r.Cs[i+1] += r.Cs[i]
	}
	r.Lo = mk(seq, uint32(nv))

	// L_s: triples sorted by (p,o,s). C_p partitions it by predicate.
	sort.Slice(buf, func(i, j int) bool {
		a, b := buf[i], buf[j]
		if a.P != b.P {
			return a.P < b.P
		}
		if a.O != b.O {
			return a.O < b.O
		}
		return a.S < b.S
	})
	r.Cp = make([]int, np+1)
	for i, t := range buf {
		seq[i] = t.S
		r.Cp[t.P+1]++
	}
	for i := uint32(0); i < np; i++ {
		r.Cp[i+1] += r.Cp[i]
	}
	r.Ls = mk(seq, uint32(nv))

	// L_p: triples sorted by (o,s,p). C_o partitions it by object.
	sort.Slice(buf, func(i, j int) bool {
		a, b := buf[i], buf[j]
		if a.O != b.O {
			return a.O < b.O
		}
		if a.S != b.S {
			return a.S < b.S
		}
		return a.P < b.P
	})
	r.Co = make([]int, nv+1)
	for i, t := range buf {
		seq[i] = t.P
		r.Co[t.O+1]++
	}
	for i := 0; i < nv; i++ {
		r.Co[i+1] += r.Co[i]
	}
	r.Lp = mk(seq, np)

	return r
}

// ObjectRange returns the range of L_p holding the triples with object o.
func (r *Ring) ObjectRange(o uint32) (int, int) {
	return r.Co[o], r.Co[o+1]
}

// SubjectRange returns the range of L_o holding the triples with subject s.
func (r *Ring) SubjectRange(s uint32) (int, int) {
	return r.Cs[s], r.Cs[s+1]
}

// PredRange returns the range of L_s holding the triples with predicate p.
func (r *Ring) PredRange(p uint32) (int, int) {
	return r.Cp[p], r.Cp[p+1]
}

// LFp maps position i of L_p to the position of the same triple in L_s
// (Eq. 3).
func (r *Ring) LFp(i int) int {
	p := r.Lp.Access(i)
	return r.Cp[p] + r.Lp.Rank(p, i)
}

// LFs maps position i of L_s to the position of the same triple in L_o.
func (r *Ring) LFs(i int) int {
	s := r.Ls.Access(i)
	return r.Cs[s] + r.Ls.Rank(s, i)
}

// LFo maps position i of L_o to the position of the same triple in L_p.
func (r *Ring) LFo(i int) int {
	o := r.Lo.Access(i)
	return r.Co[o] + r.Lo.Rank(o, i)
}

// TripleAt reconstructs the triple referenced by position i of L_p,
// following the LF cycle as in the worked example of §3.4.
func (r *Ring) TripleAt(i int) triples.Triple {
	p := r.Lp.Access(i)
	j := r.LFp(i)
	s := r.Ls.Access(j)
	k := r.LFs(j)
	o := r.Lo.Access(k)
	return triples.Triple{S: s, P: p, O: o}
}

// BackwardByPred maps a range [b, e) of L_p (triples sharing an object
// prefix) through predicate p, yielding the range of L_s holding the
// triples with that object prefix and predicate p (Eqs. 4–5).
func (r *Ring) BackwardByPred(b, e int, p uint32) (int, int) {
	return r.Cp[p] + r.Lp.Rank(p, b), r.Cp[p] + r.Lp.Rank(p, e)
}

// BackwardBySubj maps a range [b, e) of L_s through subject s, yielding
// the corresponding range of L_o.
func (r *Ring) BackwardBySubj(b, e int, s uint32) (int, int) {
	return r.Cs[s] + r.Ls.Rank(s, b), r.Cs[s] + r.Ls.Rank(s, e)
}

// BackwardByObj maps a range [b, e) of L_o through object o, yielding the
// corresponding range of L_p.
func (r *Ring) BackwardByObj(b, e int, o uint32) (int, int) {
	return r.Co[o] + r.Lo.Rank(o, b), r.Co[o] + r.Lo.Rank(o, e)
}

// SizeBytes reports the index footprint: the three wavelet sequences plus
// the C arrays. (The paper stores C_o as a bitvector and C_p as a plain
// array; we count plain arrays, which only overestimates our own index.)
func (r *Ring) SizeBytes() int {
	return r.Lo.SizeBytes() + r.Ls.SizeBytes() + r.Lp.SizeBytes() +
		8*(len(r.Cs)+len(r.Cp)+len(r.Co)) + 64
}

// QuerySizeBytes reports the footprint of only the structures the RPQ
// engine uses (L_s, L_p, and the C arrays), matching the paper's 16.41
// bytes/triple accounting which excludes L_o.
func (r *Ring) QuerySizeBytes() int {
	return r.Ls.SizeBytes() + r.Lp.SizeBytes() +
		8*(len(r.Cs)+len(r.Cp)+len(r.Co)) + 64
}
