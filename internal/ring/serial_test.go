package ring

import (
	"bytes"
	"testing"

	"ringrpq/internal/serial"
)

func TestRingEncodeDecode(t *testing.T) {
	g := fig1Graph()
	for name, layout := range layouts() {
		r := New(g, layout)
		var buf bytes.Buffer
		w := serial.NewWriter(&buf)
		r.Encode(w)
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := Decode(serial.NewReader(&buf))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r2.N != r.N || r2.NumNodes != r.NumNodes || r2.NumPreds != r.NumPreds {
			t.Fatalf("%s: header differs", name)
		}
		// C arrays must be rebuilt identically.
		for i := range r.Cs {
			if r.Cs[i] != r2.Cs[i] {
				t.Fatalf("%s: Cs[%d] differs", name, i)
			}
		}
		for i := range r.Co {
			if r.Co[i] != r2.Co[i] {
				t.Fatalf("%s: Co[%d] differs", name, i)
			}
		}
		for i := range r.Cp {
			if r.Cp[i] != r2.Cp[i] {
				t.Fatalf("%s: Cp[%d] differs", name, i)
			}
		}
		// Triple reconstruction must agree everywhere.
		for i := 0; i < r.N; i++ {
			if r.TripleAt(i) != r2.TripleAt(i) {
				t.Fatalf("%s: TripleAt(%d) differs", name, i)
			}
		}
	}
}

func TestRingDecodeGarbage(t *testing.T) {
	if _, err := Decode(serial.NewReader(bytes.NewReader([]byte("....")))); err == nil {
		t.Fatal("garbage accepted as ring")
	}
}
