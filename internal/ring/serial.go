package ring

import (
	"fmt"

	"ringrpq/internal/serial"
	"ringrpq/internal/wavelet"
)

// Encode writes the ring: the three wavelet sequences plus metadata.
// The C arrays are rebuilt on load from the sequences' symbol counts.
func (r *Ring) Encode(w *serial.Writer) {
	w.Magic("rng1")
	w.Int(r.N)
	w.Int(r.NumNodes)
	w.Uvarint(uint64(r.NumPreds))
	for _, seq := range []wavelet.Seq{r.Lo, r.Ls, r.Lp} {
		switch s := seq.(type) {
		case *wavelet.Matrix:
			w.Int(0)
			s.Encode(w)
		case *wavelet.Tree:
			w.Int(1)
			s.Encode(w)
		}
	}
}

// Decode reads a ring written by Encode.
func Decode(rd *serial.Reader) (*Ring, error) {
	rd.Magic("rng1")
	r := &Ring{}
	r.N = rd.Int()
	r.NumNodes = rd.Int()
	r.NumPreds = uint32(rd.Uvarint())
	if err := rd.Err(); err != nil {
		return nil, err
	}
	seqs := make([]wavelet.Seq, 3)
	for i := range seqs {
		kind := rd.Int()
		if err := rd.Err(); err != nil {
			return nil, err
		}
		var err error
		switch kind {
		case 0:
			seqs[i], err = wavelet.DecodeMatrix(rd)
		case 1:
			seqs[i], err = wavelet.DecodeTree(rd)
		default:
			return nil, fmt.Errorf("ring: unknown sequence kind %d", kind)
		}
		if err != nil {
			return nil, err
		}
		if seqs[i].Len() != r.N {
			return nil, fmt.Errorf("ring: sequence %d length %d, want %d", i, seqs[i].Len(), r.N)
		}
	}
	// The C-array rebuild below allocates O(NumNodes + NumPreds); tie
	// those header counts to the sequences' alphabets (whose own counts
	// arrays were materialised from real input bytes) so a corrupt
	// header cannot demand an unbounded allocation, and so every id the
	// engine derives from a C array is a valid wavelet symbol.
	if int64(seqs[0].Sigma()) != int64(r.NumNodes) || int64(seqs[1].Sigma()) != int64(r.NumNodes) {
		return nil, fmt.Errorf("ring: node alphabets (%d, %d) disagree with header %d",
			seqs[0].Sigma(), seqs[1].Sigma(), r.NumNodes)
	}
	if seqs[2].Sigma() != r.NumPreds {
		return nil, fmt.Errorf("ring: predicate alphabet %d disagrees with header %d", seqs[2].Sigma(), r.NumPreds)
	}
	r.Lo, r.Ls, r.Lp = seqs[0], seqs[1], seqs[2]

	// C arrays are the CountBelow prefix sums of the aligned sequences:
	// C_s partitions L_o by subject (subjects are the symbols of L_s)...
	// more directly, C_s[x] counts triples with subject < x, which is
	// the number of occurrences of symbols < x in L_s, and analogously
	// for the others.
	counts := func(seq wavelet.Seq, sigma int) []int {
		type counter interface{ CountBelow(uint32) int }
		c := seq.(counter)
		out := make([]int, sigma+1)
		for x := 0; x <= sigma; x++ {
			out[x] = c.CountBelow(uint32(x))
		}
		return out
	}
	r.Cs = counts(r.Ls, r.NumNodes)
	r.Co = counts(r.Lo, r.NumNodes)
	r.Cp = counts(r.Lp, int(r.NumPreds))
	return r, nil
}
