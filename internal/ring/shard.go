package ring

import (
	"fmt"
	"sync"

	"ringrpq/internal/serial"
	"ringrpq/internal/triples"
)

// This file implements the sharded ring: the completed triple set is
// partitioned by predicate into K independent sub-rings that can be
// built — and traversed — in parallel.
//
// The partition key is the *base* predicate: a predicate p and its
// inverse p̂ = p ± |P| always land in the same shard, because the graph
// completion materialises them as two views of the same data edge and a
// 2RPQ may read either. Every sub-ring is built over the *global* node
// and predicate id spaces (its C arrays simply have empty ranges for
// ids it does not hold), so positions, symbols and automaton masks mean
// the same thing in every shard and a traversal can hop between shards
// without translation.
//
// Correctness note: a path matching an RPQ may use edges from several
// shards, so evaluating the full query independently per shard and
// unioning the results would be wrong. The sharded engine
// (internal/core) instead routes single-shard expressions wholesale and
// runs a cooperative cross-shard traversal otherwise; the ShardSet only
// guarantees the data-level invariants above.

// MaxShards bounds the shard count accepted by builders and decoders;
// it exists to keep corrupted or hostile serialised inputs from forcing
// huge allocations.
const MaxShards = 4096

// Partitioner assigns base predicates to shards. Implementations must
// be deterministic pure functions of (pred, k): the assignment is not
// stored per-triple in the serialised container, only the partitioner's
// Name, and the decoder re-derives and verifies placement from it.
type Partitioner interface {
	// Shard maps base predicate id pred (0 ≤ pred < |P|) to a shard
	// index in [0, k).
	Shard(pred uint32, k int) int
	// Name identifies the partitioner in the serialised container; it
	// must be registered in PartitionerByName for files to load back.
	Name() string
}

// HashPartitioner is the default Partitioner: Fibonacci hashing of the
// base predicate id. It spreads predicates evenly regardless of id
// clustering and is stable across runs and platforms (a requirement of
// the on-disk format).
type HashPartitioner struct{}

// Shard implements Partitioner.
func (HashPartitioner) Shard(pred uint32, k int) int {
	return int((pred * 2654435761) % uint32(k))
}

// Name implements Partitioner.
func (HashPartitioner) Name() string { return "hash" }

// PartitionerByName resolves a serialised partitioner name.
func PartitionerByName(name string) (Partitioner, bool) {
	switch name {
	case "hash":
		return HashPartitioner{}, true
	default:
		return nil, false
	}
}

// ShardSet is a database partitioned into K sub-rings. All sub-rings
// share the global node and (completed) predicate id spaces.
type ShardSet struct {
	// K is the shard count (≥ 1).
	K int
	// Shards holds the sub-rings; Shards[i] contains exactly the
	// completed triples whose base predicate maps to shard i.
	Shards []*Ring
	// Part is the partitioner that produced (and reproduces) the
	// assignment.
	Part Partitioner

	// N is the total completed triple count; NumNodes and NumPreds are
	// the global |V| and |Σ↔| every shard was built with.
	N        int
	NumNodes int
	NumPreds uint32
}

// NewShardSet partitions the completed triples of g into k sub-rings
// and builds them in parallel. k is clamped to [1, MaxShards]; a nil
// part defaults to HashPartitioner.
func NewShardSet(g *triples.Graph, k int, part Partitioner, layout Layout) *ShardSet {
	if k < 1 {
		k = 1
	}
	if k > MaxShards {
		k = MaxShards
	}
	if part == nil {
		part = HashPartitioner{}
	}
	nv := g.NumNodes()
	np := g.NumCompletedPreds()
	s := &ShardSet{K: k, Part: part, N: g.Len(), NumNodes: nv, NumPreds: np}

	buckets := make([][]triples.Triple, k)
	for _, t := range g.Triples {
		i := s.shardOf(t.P)
		buckets[i] = append(buckets[i], t)
	}

	s.Shards = make([]*Ring, k)
	var wg sync.WaitGroup
	for i := range s.Shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Shards[i] = fromTriples(buckets[i], nv, np, layout)
		}(i)
	}
	wg.Wait()
	return s
}

// shardOf maps a completed predicate id to its shard via the base
// predicate.
func (s *ShardSet) shardOf(p uint32) int {
	half := s.NumPreds / 2
	if p >= half {
		p -= half
	}
	return s.Part.Shard(p, s.K)
}

// ShardFor returns the shard holding every triple whose (completed)
// predicate is p.
func (s *ShardSet) ShardFor(p uint32) int { return s.shardOf(p) }

// PredCount reports the number of triples with completed predicate p
// (they all live in one shard).
func (s *ShardSet) PredCount(p uint32) int {
	r := s.Shards[s.shardOf(p)]
	return r.Cp[p+1] - r.Cp[p]
}

// SizeBytes sums the sub-ring footprints.
func (s *ShardSet) SizeBytes() int {
	sz := 64
	for _, r := range s.Shards {
		sz += r.SizeBytes()
	}
	return sz
}

// QuerySizeBytes sums the query-relevant sub-ring footprints (the
// analogue of Ring.QuerySizeBytes).
func (s *ShardSet) QuerySizeBytes() int {
	sz := 64
	for _, r := range s.Shards {
		sz += r.QuerySizeBytes()
	}
	return sz
}

// Encode writes the shard container (the payload of the public rdbs1
// format): header, partitioner name, then each sub-ring.
func (s *ShardSet) Encode(w *serial.Writer) {
	w.Magic("rss1")
	w.Int(s.K)
	w.String(s.Part.Name())
	w.Int(s.N)
	w.Int(s.NumNodes)
	w.Uvarint(uint64(s.NumPreds))
	for _, r := range s.Shards {
		r.Encode(w)
	}
}

// DecodeShardSet reads a shard container written by Encode, verifying
// the invariants the sharded engine relies on: a sane shard count, a
// known partitioner, globally-consistent id spaces, triple counts that
// add up, and every predicate stored in the shard the partitioner
// assigns it to.
func DecodeShardSet(rd *serial.Reader) (*ShardSet, error) {
	rd.Magic("rss1")
	s := &ShardSet{}
	s.K = rd.Int()
	name := rd.String()
	s.N = rd.Int()
	s.NumNodes = rd.Int()
	s.NumPreds = uint32(rd.Uvarint())
	if err := rd.Err(); err != nil {
		return nil, err
	}
	if s.K < 1 || s.K > MaxShards {
		return nil, fmt.Errorf("ring: corrupt shard count %d", s.K)
	}
	part, ok := PartitionerByName(name)
	if !ok {
		return nil, fmt.Errorf("ring: unknown partitioner %q", name)
	}
	s.Part = part
	if s.NumPreds%2 != 0 {
		return nil, fmt.Errorf("ring: corrupt completed predicate count %d", s.NumPreds)
	}
	s.Shards = make([]*Ring, 0, min(s.K, 64))
	total := 0
	for i := 0; i < s.K; i++ {
		r, err := Decode(rd)
		if err != nil {
			return nil, fmt.Errorf("ring: shard %d: %w", i, err)
		}
		if r.NumNodes != s.NumNodes || r.NumPreds != s.NumPreds {
			return nil, fmt.Errorf("ring: shard %d id spaces (%d nodes, %d preds) disagree with container (%d nodes, %d preds)",
				i, r.NumNodes, r.NumPreds, s.NumNodes, s.NumPreds)
		}
		total += r.N
		s.Shards = append(s.Shards, r)
	}
	if total != s.N {
		return nil, fmt.Errorf("ring: shard triple counts sum to %d, container says %d", total, s.N)
	}
	for i, r := range s.Shards {
		for p := uint32(0); p < s.NumPreds; p++ {
			if r.Cp[p+1] > r.Cp[p] && s.shardOf(p) != i {
				return nil, fmt.Errorf("ring: predicate %d found in shard %d, partitioner %q assigns it to shard %d",
					p, i, name, s.shardOf(p))
			}
		}
	}
	return s, nil
}
