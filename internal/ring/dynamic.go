package ring

import (
	"ringrpq/internal/triples"
	"ringrpq/internal/wavelet"
)

// This file holds the ring-side building blocks of the live-update
// subsystem (internal/overlay): membership probes used to decide
// whether a delete is a tombstone, triple reconstruction used by the
// compactor to rebuild a ring from ring+overlay, and per-shard
// replacement so a sharded compaction only rebuilds the sub-rings
// whose predicates the overlay touched.

// Has reports whether the ring contains the completed triple (s, p, o).
// Ids outside the ring's spaces are simply absent. One backward-search
// step (Eqs. 4–5) plus a rank probe: O(log σ).
func (r *Ring) Has(s, p, o uint32) bool {
	if int(s) >= r.NumNodes || int(o) >= r.NumNodes || p >= r.NumPreds {
		return false
	}
	b, e := r.ObjectRange(o)
	if b == e {
		return false
	}
	lsB, lsE := r.BackwardByPred(b, e, p)
	if lsB == lsE {
		return false
	}
	return r.Ls.Rank(s, lsE) > r.Ls.Rank(s, lsB)
}

// Layout reports the wavelet representation the ring was built with
// (needed to rebuild a compatible ring during compaction of a loaded
// index, whose construction-time configuration is not stored).
func (r *Ring) Layout() Layout {
	if _, ok := r.Lo.(*wavelet.Tree); ok {
		return WaveletTree
	}
	return WaveletMatrix
}

// Triples reconstructs the ring's completed triple set by following the
// LF cycle at every position of L_p (order unspecified). O(N log σ);
// used by the compactor, which merges the result with the overlay.
func (r *Ring) Triples() []triples.Triple {
	out := make([]triples.Triple, r.N)
	for i := 0; i < r.N; i++ {
		out[i] = r.TripleAt(i)
	}
	return out
}

// FromTriples builds a ring directly over a completed triple list with
// explicit id spaces (the compactor's entry point; New remains the
// builder's, going through a Graph).
func FromTriples(ts []triples.Triple, numNodes int, numPreds uint32, layout Layout) *Ring {
	return fromTriples(ts, numNodes, numPreds, layout)
}

// ShardSetFrom assembles a ShardSet from pre-built sub-rings (all over
// the same global id spaces). The compactor uses it to swap rebuilt
// shards in next to untouched ones, which are shared structurally with
// the previous set.
func ShardSetFrom(shards []*Ring, part Partitioner, numNodes int, numPreds uint32) *ShardSet {
	if part == nil {
		part = HashPartitioner{}
	}
	s := &ShardSet{K: len(shards), Shards: shards, Part: part, NumNodes: numNodes, NumPreds: numPreds}
	for _, r := range shards {
		s.N += r.N
	}
	return s
}
