package ring

import "ringrpq/internal/wavelet"

// Selectivity provides the on-the-fly statistics sketched in §6: "by
// roughly doubling the space, we can compute in logarithmic time the
// amount of distinct predicates labeling edges towards a given range of
// objects, or distinct subjects that are sources of a given range of
// predicates" (the colored range counting of Gagie et al.).
//
// For a sequence L, let prev[i] be the position of the previous
// occurrence of L[i] (or -1). The number of distinct symbols in
// L[b, e) equals the number of positions i ∈ [b, e) with prev[i] < b —
// each distinct symbol is counted exactly once, at its first occurrence
// in the range. Storing prev in a wavelet tree answers that with one
// RangeCountBelow in O(log n). The prev trees use ⌈log n⌉ bits per
// position versus the ⌈log σ⌉ of the ring's own sequences — the
// "roughly doubling" of the paper.
type Selectivity struct {
	prevP wavelet.Seq // previous-occurrence positions of L_p
	prevS wavelet.Seq // previous-occurrence positions of L_s
}

// NewSelectivity builds the statistics structures for r; construction is
// O(n log n).
func NewSelectivity(r *Ring) *Selectivity {
	return &Selectivity{
		prevP: prevTree(r.Lp),
		prevS: prevTree(r.Ls),
	}
}

// prevTree extracts a sequence and indexes its previous-occurrence
// array; positions are stored shifted by one so that "no previous
// occurrence" is 0.
func prevTree(seq wavelet.Seq) wavelet.Seq {
	n := seq.Len()
	last := make(map[uint32]int, 1024)
	prev := make([]uint32, n)
	for i := 0; i < n; i++ {
		c := seq.Access(i)
		if j, ok := last[c]; ok {
			prev[i] = uint32(j + 1)
		}
		last[c] = i
	}
	return wavelet.NewMatrix(prev, uint32(n)+1)
}

// DistinctPreds counts the distinct predicates in L_p[b, e) — for an
// object range, the distinct labels on incoming edges — in O(log n).
func (s *Selectivity) DistinctPreds(b, e int) int {
	return countDistinct(s.prevP, b, e)
}

// DistinctSubjects counts the distinct subjects in L_s[b, e) — for a
// predicate range, the distinct sources of such edges — in O(log n).
func (s *Selectivity) DistinctSubjects(b, e int) int {
	return countDistinct(s.prevS, b, e)
}

func countDistinct(prev wavelet.Seq, b, e int) int {
	if b < 0 {
		b = 0
	}
	if e > prev.Len() {
		e = prev.Len()
	}
	if b >= e {
		return 0
	}
	type counter interface {
		RangeCountBelow(b, e int, x uint32) int
	}
	// Stored values are prev+1, so "prev < b" is "stored < b+1".
	return prev.(counter).RangeCountBelow(b, e, uint32(b)+1)
}

// SizeBytes reports the extra space of the statistics structures.
func (s *Selectivity) SizeBytes() int {
	return s.prevP.SizeBytes() + s.prevS.SizeBytes() + 16
}
