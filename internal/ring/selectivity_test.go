package ring

import (
	"math/rand"
	"testing"

	"ringrpq/internal/triples"
)

func TestSelectivityDistinctCounts(t *testing.T) {
	g := fig1Graph()
	r := New(g, WaveletMatrix)
	sel := NewSelectivity(r)
	// Per object: distinct incoming predicates, vs direct counting.
	for o := uint32(0); int(o) < g.NumNodes(); o++ {
		b, e := r.ObjectRange(o)
		want := map[uint32]bool{}
		for _, tr := range g.Triples {
			if tr.O == o {
				want[tr.P] = true
			}
		}
		if got := sel.DistinctPreds(b, e); got != len(want) {
			t.Fatalf("object %s: DistinctPreds=%d, want %d", g.Nodes.Name(o), got, len(want))
		}
	}
	// Per predicate: distinct subjects.
	for p := uint32(0); p < g.NumCompletedPreds(); p++ {
		b, e := r.PredRange(p)
		want := map[uint32]bool{}
		for _, tr := range g.Triples {
			if tr.P == p {
				want[tr.S] = true
			}
		}
		if got := sel.DistinctSubjects(b, e); got != len(want) {
			t.Fatalf("pred %s: DistinctSubjects=%d, want %d", g.PredName(p), got, len(want))
		}
	}
	// Degenerate ranges.
	if sel.DistinctPreds(3, 3) != 0 || sel.DistinctPreds(-5, 0) != 0 {
		t.Fatal("empty ranges must count zero")
	}
	if sel.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must be positive")
	}
}

func TestSelectivityRandomRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := triples.NewBuilder()
	for i := 0; i < 60; i++ {
		b.Nodes().Intern(string(rune('A'+i%26)) + string(rune('a'+i/26)))
	}
	for i := 0; i < 6; i++ {
		b.Preds().Intern("p" + string(rune('0'+i)))
	}
	for i := 0; i < 400; i++ {
		b.AddIDs(uint32(rng.Intn(60)), uint32(rng.Intn(6)), uint32(rng.Intn(60)))
	}
	g := b.Build()
	r := New(g, WaveletMatrix)
	sel := NewSelectivity(r)
	for trial := 0; trial < 50; trial++ {
		x := rng.Intn(r.N)
		y := rng.Intn(r.N)
		if x > y {
			x, y = y, x
		}
		wantP := map[uint32]bool{}
		wantS := map[uint32]bool{}
		for i := x; i < y; i++ {
			wantP[r.Lp.Access(i)] = true
			wantS[r.Ls.Access(i)] = true
		}
		if got := sel.DistinctPreds(x, y); got != len(wantP) {
			t.Fatalf("[%d,%d): DistinctPreds=%d, want %d", x, y, got, len(wantP))
		}
		if got := sel.DistinctSubjects(x, y); got != len(wantS) {
			t.Fatalf("[%d,%d): DistinctSubjects=%d, want %d", x, y, got, len(wantS))
		}
	}
	// The structure roughly doubles the index asymptotically (log n vs
	// log σ bits per position); at this toy scale constant overheads
	// dominate, so only sanity-check the order of magnitude.
	if sel.SizeBytes() < r.QuerySizeBytes()/4 || sel.SizeBytes() > 16*r.SizeBytes() {
		t.Fatalf("selectivity size %d vs ring %d out of expected band", sel.SizeBytes(), r.SizeBytes())
	}
}
