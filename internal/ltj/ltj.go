// Package ltj implements Leapfrog Triejoin over the ring — the
// worst-case-optimal multijoin algorithm the ring was originally built
// for (Arroyuelo et al., SIGMOD'21), and the integration point the RPQ
// paper's conclusion (§6) sketches for mixing RPQs into basic graph
// patterns.
//
// Each triple pattern is evaluated by walking the ring's LF cycle: a
// pattern binds its components in a rotation of (s → o → p), narrowing a
// range of one BWT sequence per step with backward search. The values
// available for the next component are exactly the distinct symbols of
// the current range, which the wavelet trees enumerate — and, crucially
// for leapfrog, seek with MinAtLeast in O(log σ). A join picks one
// global variable order and intersects, per variable, the candidate
// streams of all patterns where that variable is next.
//
// A single ring supports the three rotations of (s, o, p); patterns
// whose variables would need a different binding order are rejected
// (the SIGMOD paper adds a second, reversed ring for full generality).
package ltj

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"ringrpq/internal/ring"
)

// ErrUnsupportedOrder reports that no single-ring variable order exists
// for the given patterns (the SIGMOD paper adds a second, reversed ring
// for full generality).
var ErrUnsupportedOrder = errors.New("ltj: no single-ring variable order for these patterns")

// ErrTimeout reports that a join exceeded Options.Timeout; rows emitted
// before the deadline are valid but incomplete.
var ErrTimeout = errors.New("ltj: join timeout")

// Options tune one join evaluation (core.Options-style).
type Options struct {
	// Order fixes the global variable order instead of letting the join
	// search for one — the hook the query planner uses to impose its
	// selectivity-driven order. It must mention every variable of the
	// patterns; JoinWith returns ErrUnsupportedOrder when no rotation
	// assignment fits it.
	Order []string
	// Limit caps the number of emitted rows; 0 means unlimited.
	Limit int
	// Timeout bounds wall-clock enumeration time; 0 means none.
	// Exceeding it returns ErrTimeout.
	Timeout time.Duration
}

// Term is one position of a triple pattern: a constant symbol or a
// variable name.
type Term struct {
	// Const holds the symbol when Var is empty.
	Const uint32
	// Var names the variable; empty means constant.
	Var string
}

// C makes a constant term.
func C(v uint32) Term { return Term{Const: v} }

// V makes a variable term.
func V(name string) Term { return Term{Var: name} }

// Pattern is a triple pattern (S, P, O) over completed predicate ids and
// node ids.
type Pattern struct {
	S, P, O Term
}

// axis identifies a triple component; the ring's LF cycle visits them in
// the order s → o → p → s.
type axis int

const (
	axS axis = iota
	axO
	axP
)

// next follows the LF cycle.
func (a axis) next() axis { return (a + 1) % 3 }

func (p Pattern) term(a axis) Term {
	switch a {
	case axS:
		return p.S
	case axO:
		return p.O
	default:
		return p.P
	}
}

// Row is one join result: variable name → bound symbol.
type Row map[string]uint32

// Join evaluates the natural join of the patterns on r, calling emit for
// every result row; emit returning false stops the enumeration. It
// returns ErrUnsupportedOrder when no single-ring binding order exists.
func Join(r *ring.Ring, patterns []Pattern, emit func(Row) bool) error {
	return JoinWith(r, patterns, Options{}, emit)
}

// JoinWith is Join with evaluation options: a caller-fixed variable
// order, a row limit and a timeout. Rows emitted before a timeout are
// valid; the limit truncates silently (nil error), mirroring the RPQ
// engine's contract.
func JoinWith(r *ring.Ring, patterns []Pattern, opts Options, emit func(Row) bool) error {
	if len(patterns) == 0 {
		return nil
	}
	vars := collectVars(patterns)
	var order []string
	var rotations []axis
	if opts.Order != nil {
		if !coversVars(opts.Order, vars) {
			return fmt.Errorf("ltj: order %v does not cover the pattern variables %v", opts.Order, vars)
		}
		rots, ok := feasible(patterns, opts.Order)
		if !ok {
			return ErrUnsupportedOrder
		}
		order, rotations = opts.Order, rots
	} else {
		var ok bool
		order, rotations, ok = chooseOrder(patterns, vars)
		if !ok {
			return ErrUnsupportedOrder
		}
	}
	j := &joiner{
		r:         r,
		patterns:  patterns,
		rotations: rotations,
		order:     order,
		limit:     opts.Limit,
		states:    make([]state, len(patterns)),
		row:       Row{},
	}
	if opts.Timeout > 0 {
		j.deadline = time.Now().Add(opts.Timeout)
	}
	j.emit = func(row Row) bool {
		j.emitted++
		if !emit(row) {
			return false
		}
		return j.limit == 0 || j.emitted < j.limit
	}
	for i := range j.states {
		j.states[i] = state{step: 0, b: -1, e: -1}
	}
	// Apply leading constants before the first variable.
	saved := j.snapshot()
	if !j.applyConstants() {
		return nil
	}
	j.run(0)
	j.restore(saved)
	return j.failure
}

// coversVars reports whether order mentions every variable in vars
// (extra names in order are harmless: they simply never bind).
func coversVars(order, vars []string) bool {
	pos := map[string]bool{}
	for _, v := range order {
		pos[v] = true
	}
	for _, v := range vars {
		if !pos[v] {
			return false
		}
	}
	return true
}

// Feasible reports whether the patterns admit rotations compatible with
// the given global variable order — the planner's pre-check before
// fixing Options.Order.
func Feasible(patterns []Pattern, order []string) bool {
	_, ok := feasible(patterns, order)
	return ok
}

// Vars returns the variables of the patterns, sorted.
func Vars(patterns []Pattern) []string { return collectVars(patterns) }

// state is a pattern's position in its rotation walk: step counts bound
// components; [b, e) is the current range, with b == -1 meaning the
// pattern is still unconstrained (full range).
type state struct {
	step int
	b, e int
}

type joiner struct {
	r         *ring.Ring
	patterns  []Pattern
	rotations []axis // starting axis per pattern
	order     []string
	emit      func(Row) bool
	states    []state
	row       Row
	stopped   bool

	limit    int
	emitted  int
	deadline time.Time
	steps    int
	failure  error
}

// checkDeadline polls the wall clock every 64 leapfrog steps, mirroring
// core.Engine's cadence.
func (j *joiner) checkDeadline() bool {
	j.steps++
	if j.deadline.IsZero() || j.steps%64 != 0 {
		return true
	}
	if time.Now().After(j.deadline) {
		j.failure = ErrTimeout
		j.stopped = true
		return false
	}
	return true
}

func (j *joiner) snapshot() []state { return append([]state(nil), j.states...) }

func (j *joiner) restore(s []state) { copy(j.states, s) }

// axisAt returns pattern i's axis at rotation step k.
func (j *joiner) axisAt(i, k int) axis {
	a := j.rotations[i]
	for ; k > 0; k-- {
		a = a.next()
	}
	return a
}

// applyConstants advances every pattern through the constants at its
// current rotation position; false means some pattern's range became
// empty (no results).
func (j *joiner) applyConstants() bool {
	for i := range j.patterns {
		for j.states[i].step < 3 {
			t := j.patterns[i].term(j.axisAt(i, j.states[i].step))
			if t.Var != "" {
				break
			}
			if !j.bind(i, t.Const) {
				return false
			}
		}
	}
	return true
}

// bind narrows pattern i's range by the value of its next component,
// following the LF cycle. It reports whether the range stays nonempty.
func (j *joiner) bind(i int, v uint32) bool {
	st := &j.states[i]
	a := j.axisAt(i, st.step)
	if st.b == -1 {
		// First binding: jump straight to the component's C-array range.
		switch a {
		case axS:
			if int(v) >= j.r.NumNodes {
				return false
			}
			st.b, st.e = j.r.SubjectRange(v) // range of L_o
		case axO:
			if int(v) >= j.r.NumNodes {
				return false
			}
			st.b, st.e = j.r.ObjectRange(v) // range of L_p
		case axP:
			if v >= j.r.NumPreds {
				return false
			}
			st.b, st.e = j.r.PredRange(v) // range of L_s
		}
	} else {
		// Backward-search step: the current range's sequence holds
		// exactly the values of axis a.
		switch a {
		case axS:
			st.b, st.e = j.r.BackwardBySubj(st.b, st.e, v)
		case axO:
			st.b, st.e = j.r.BackwardByObj(st.b, st.e, v)
		case axP:
			st.b, st.e = j.r.BackwardByPred(st.b, st.e, v)
		}
	}
	st.step++
	return st.b < st.e
}

// seqFor returns the sequence whose symbols are the values of axis a.
func (j *joiner) seqFor(a axis) interface {
	MinAtLeast(b, e int, x uint32) (uint32, bool)
	Sigma() uint32
} {
	switch a {
	case axS:
		return j.r.Ls
	case axO:
		return j.r.Lo
	default:
		return j.r.Lp
	}
}

// seek returns the smallest candidate ≥ x for pattern i's next
// component.
func (j *joiner) seek(i int, x uint32) (uint32, bool) {
	st := j.states[i]
	a := j.axisAt(i, st.step)
	seq := j.seqFor(a)
	if st.b == -1 {
		// Unconstrained: every symbol is a candidate.
		if x < seq.Sigma() {
			return x, true
		}
		return 0, false
	}
	return seq.MinAtLeast(st.b, st.e, x)
}

// run binds j.order[level] by leapfrog intersection and recurses.
func (j *joiner) run(level int) {
	if j.stopped {
		return
	}
	if level == len(j.order) {
		out := Row{}
		for k, v := range j.row {
			out[k] = v
		}
		if !j.emit(out) {
			j.stopped = true
		}
		return
	}
	name := j.order[level]
	var participants []int
	for i := range j.patterns {
		if j.states[i].step < 3 && j.patterns[i].term(j.axisAt(i, j.states[i].step)).Var == name {
			participants = append(participants, i)
		}
	}
	if len(participants) == 0 {
		// Unreachable given chooseOrder's feasibility checks.
		panic("ltj: variable with no participating pattern")
	}

	// Leapfrog over the participants' sorted candidate streams.
	x := uint32(0)
	for {
		if !j.checkDeadline() {
			return
		}
		agreed := true
		for _, i := range participants {
			c, ok := j.seek(i, x)
			if !ok {
				return
			}
			if c > x {
				x = c
				agreed = false
			}
		}
		if !agreed {
			continue
		}
		// All participants can produce x: bind, recurse, backtrack. A
		// pattern may mention the variable on several components
		// (e.g. (?x, p, ?x)); bind each consecutive occurrence.
		saved := j.snapshot()
		ok := true
		for _, i := range participants {
			for ok && j.states[i].step < 3 &&
				j.patterns[i].term(j.axisAt(i, j.states[i].step)).Var == name {
				ok = j.bind(i, x)
			}
			if !ok {
				break
			}
		}
		if ok && j.applyConstants() {
			j.row[name] = x
			j.run(level + 1)
			delete(j.row, name)
			if j.stopped {
				return
			}
		}
		j.restore(saved)
		if x == ^uint32(0) {
			return
		}
		x++
	}
}

func collectVars(patterns []Pattern) []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range patterns {
		for _, t := range []Term{p.S, p.P, p.O} {
			if t.Var != "" && !seen[t.Var] {
				seen[t.Var] = true
				out = append(out, t.Var)
			}
		}
	}
	sort.Strings(out)
	return out
}

// chooseOrder searches the permutations of the variables for one where
// every pattern admits a rotation whose variables appear in permutation
// order (constants may sit anywhere in the rotation; they are applied
// as their turn comes). Variable counts in graph patterns are small, so
// exhaustive search is fine.
func chooseOrder(patterns []Pattern, vars []string) ([]string, []axis, bool) {
	perm := append([]string(nil), vars...)
	var result []string
	var rotations []axis
	var try func(k int) bool
	try = func(k int) bool {
		if k == len(perm) {
			rots, ok := feasible(patterns, perm)
			if ok {
				result = append([]string(nil), perm...)
				rotations = rots
			}
			return ok
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			if try(k + 1) {
				return true
			}
			perm[k], perm[i] = perm[i], perm[k]
		}
		return false
	}
	if !try(0) {
		return nil, nil, false
	}
	return result, rotations, true
}

// feasible checks every pattern against a variable order, returning the
// chosen rotation starts.
func feasible(patterns []Pattern, order []string) ([]axis, bool) {
	pos := map[string]int{}
	for i, v := range order {
		pos[v] = i
	}
	rots := make([]axis, len(patterns))
	for i, p := range patterns {
		found := false
		for _, start := range []axis{axS, axO, axP} {
			last := -1
			ok := true
			a := start
			for k := 0; k < 3; k++ {
				if t := p.term(a); t.Var != "" {
					if pos[t.Var] < last {
						ok = false
						break
					}
					last = pos[t.Var]
				}
				a = a.next()
			}
			if ok {
				rots[i] = start
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return rots, true
}
