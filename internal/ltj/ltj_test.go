package ltj

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"ringrpq/internal/enginetest"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
)

// naiveJoin evaluates the join by brute force over all bindings.
func naiveJoin(g *triples.Graph, patterns []Pattern) []Row {
	edgeSet := map[triples.Triple]bool{}
	for _, t := range g.Triples {
		edgeSet[t] = true
	}
	vars := collectVars(patterns)
	var out []Row
	row := Row{}
	var rec func(k int)
	rec = func(k int) {
		if k == len(vars) {
			for _, p := range patterns {
				val := func(t Term) uint32 {
					if t.Var != "" {
						return row[t.Var]
					}
					return t.Const
				}
				if !edgeSet[triples.Triple{S: val(p.S), P: val(p.P), O: val(p.O)}] {
					return
				}
			}
			cp := Row{}
			for k, v := range row {
				cp[k] = v
			}
			out = append(out, cp)
			return
		}
		for v := 0; v < g.NumNodes()+int(g.NumCompletedPreds()); v++ {
			// Variables range over nodes and predicates; out-of-domain
			// bindings simply fail the edge check.
			row[vars[k]] = uint32(v)
			rec(k + 1)
		}
		delete(row, vars[k])
	}
	rec(0)
	return out
}

func sortRows(rows []Row, vars []string) []Row {
	sort.Slice(rows, func(i, j int) bool {
		for _, v := range vars {
			if rows[i][v] != rows[j][v] {
				return rows[i][v] < rows[j][v]
			}
		}
		return false
	})
	return rows
}

func runJoin(t *testing.T, r *ring.Ring, patterns []Pattern) []Row {
	t.Helper()
	var rows []Row
	err := Join(r, patterns, func(row Row) bool {
		rows = append(rows, row)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestSinglePatternModes(t *testing.T) {
	g := enginetest.Metro()
	r := ring.New(g, ring.WaveletMatrix)
	l1, _ := g.PredID("l1", false)
	baq, _ := g.Nodes.Lookup("Baq")

	// (?x, l1, ?y): all l1 edges.
	rows := runJoin(t, r, []Pattern{{S: V("x"), P: C(l1), O: V("y")}})
	want := 0
	for _, tr := range g.Triples {
		if tr.P == l1 {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("l1 edges: %d rows, want %d", len(rows), want)
	}

	// (Baq, ?p, ?y): all edges out of Baq, any predicate.
	rows = runJoin(t, r, []Pattern{{S: C(baq), P: V("p"), O: V("y")}})
	want = 0
	for _, tr := range g.Triples {
		if tr.S == baq {
			want++
		}
	}
	if len(rows) != want {
		t.Fatalf("edges out of Baq: %d rows, want %d", len(rows), want)
	}

	// Fully constant pattern: present and absent.
	uch, _ := g.Nodes.Lookup("UCh")
	rows = runJoin(t, r, []Pattern{{S: C(baq), P: C(l1), O: C(uch)}})
	if len(rows) != 1 {
		t.Fatalf("existing edge check: %d rows, want 1", len(rows))
	}
	sa, _ := g.Nodes.Lookup("SA")
	rows = runJoin(t, r, []Pattern{{S: C(baq), P: C(l1), O: C(sa)}})
	if len(rows) != 0 {
		t.Fatalf("absent edge check: %d rows, want 0", len(rows))
	}
}

func TestTwoPatternJoin(t *testing.T) {
	g := enginetest.Metro()
	r := ring.New(g, ring.WaveletMatrix)
	l1, _ := g.PredID("l1", false)
	l2, _ := g.PredID("l2", false)
	// Paths x -l1-> y -l2-> z.
	patterns := []Pattern{
		{S: V("x"), P: C(l1), O: V("y")},
		{S: V("y"), P: C(l2), O: V("z")},
	}
	got := sortRows(runJoin(t, r, patterns), []string{"x", "y", "z"})
	want := sortRows(naiveJoin(g, patterns), []string{"x", "y", "z"})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join: got %v, want %v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("expected nonempty join (UCh -l1-> LH -l2-> SA exists)")
	}
}

func TestTriangleJoin(t *testing.T) {
	// A graph with a known triangle, joined on three patterns.
	b := triples.NewBuilder()
	b.Add("a", "p", "b")
	b.Add("b", "p", "c")
	b.Add("c", "p", "a")
	b.Add("a", "p", "d") // dead end
	g := b.Build()
	r := ring.New(g, ring.WaveletMatrix)
	p, _ := g.PredID("p", false)
	patterns := []Pattern{
		{S: V("x"), P: C(p), O: V("y")},
		{S: V("y"), P: C(p), O: V("z")},
		{S: V("z"), P: C(p), O: V("x")},
	}
	got := sortRows(runJoin(t, r, patterns), []string{"x", "y", "z"})
	want := sortRows(naiveJoin(g, patterns), []string{"x", "y", "z"})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("triangle: got %v, want %v", got, want)
	}
	if len(got) != 3 {
		t.Fatalf("triangle count=%d, want 3 rotations", len(got))
	}
}

func TestVariablePredicateJoin(t *testing.T) {
	g := enginetest.Metro()
	r := ring.New(g, ring.WaveletMatrix)
	sa, _ := g.Nodes.Lookup("SA")
	// Two edges sharing an unknown predicate: (SA, ?p, ?x), (?x, ?p, ?y).
	patterns := []Pattern{
		{S: C(sa), P: V("p"), O: V("x")},
		{S: V("x"), P: V("p"), O: V("y")},
	}
	got := sortRows(runJoin(t, r, patterns), []string{"p", "x", "y"})
	want := sortRows(naiveJoin(g, patterns), []string{"p", "x", "y"})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("var-pred join: got %v, want %v", got, want)
	}
}

func TestRepeatedVariable(t *testing.T) {
	b := triples.NewBuilder()
	b.Add("a", "p", "a") // self loop
	b.Add("a", "p", "b")
	b.Add("b", "p", "c")
	g := b.Build()
	r := ring.New(g, ring.WaveletMatrix)
	p, _ := g.PredID("p", false)
	rows := runJoin(t, r, []Pattern{{S: V("x"), P: C(p), O: V("x")}})
	if len(rows) != 1 {
		t.Fatalf("self loops: %d rows, want 1", len(rows))
	}
	a, _ := g.Nodes.Lookup("a")
	if rows[0]["x"] != a {
		t.Fatalf("self loop on %d, want %d", rows[0]["x"], a)
	}
}

func TestRandomJoinsAgainstNaive(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := enginetest.RandomGraph(seed+400, 8, 2, 25)
		r := ring.New(g, ring.WaveletMatrix)
		p0, _ := g.PredID("pa", false)
		p1, _ := g.PredID("pb", false)
		cases := [][]Pattern{
			{{S: V("x"), P: C(p0), O: V("y")}, {S: V("y"), P: C(p1), O: V("z")}},
			{{S: V("x"), P: C(p0), O: V("y")}, {S: V("x"), P: C(p1), O: V("z")}},
			{{S: V("x"), P: V("p"), O: V("y")}},
			{{S: V("x"), P: C(p0), O: V("y")}, {S: V("y"), P: C(p0), O: V("x")}},
		}
		for ci, patterns := range cases {
			vars := collectVars(patterns)
			got := sortRows(runJoin(t, r, patterns), vars)
			want := sortRows(naiveJoin(g, patterns), vars)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d case %d: got %d rows, want %d\n%v\n%v",
					seed, ci, len(got), len(want), got, want)
			}
		}
	}
}

func TestEarlyStop(t *testing.T) {
	g := enginetest.Metro()
	r := ring.New(g, ring.WaveletMatrix)
	count := 0
	err := Join(r, []Pattern{{S: V("x"), P: V("p"), O: V("y")}}, func(Row) bool {
		count++
		return count < 3
	})
	if err != nil || count != 3 {
		t.Fatalf("early stop: count=%d err=%v", count, err)
	}
}

func TestEmptyPatterns(t *testing.T) {
	g := enginetest.Metro()
	r := ring.New(g, ring.WaveletMatrix)
	if err := Join(r, nil, func(Row) bool { t.Fatal("emitted"); return false }); err != nil {
		t.Fatal(err)
	}
}

// Two patterns whose variable rotations conflict in every combination
// must be rejected (a second, reversed ring would be needed).
func TestInfeasibleOrderRejected(t *testing.T) {
	g := enginetest.Metro()
	r := ring.New(g, ring.WaveletMatrix)
	patterns := []Pattern{
		{S: V("x"), P: V("y"), O: V("z")},
		{S: V("x"), P: V("z"), O: V("y")},
	}
	err := Join(r, patterns, func(Row) bool { return true })
	if !errors.Is(err, ErrUnsupportedOrder) {
		t.Fatalf("conflicting rotations: got %v, want ErrUnsupportedOrder", err)
	}
}

func TestJoinWithLimit(t *testing.T) {
	g := enginetest.Metro()
	r := ring.New(g, ring.WaveletMatrix)
	patterns := []Pattern{{S: V("x"), P: V("p"), O: V("y")}}
	all := runJoin(t, r, patterns)
	if len(all) < 4 {
		t.Fatalf("need >= 4 rows for the limit test, have %d", len(all))
	}
	count := 0
	err := JoinWith(r, patterns, Options{Limit: 3}, func(Row) bool { count++; return true })
	if err != nil || count != 3 {
		t.Fatalf("limit: count=%d err=%v, want 3 rows and nil error", count, err)
	}
}

func TestJoinWithTimeout(t *testing.T) {
	// A large dense graph and an unselective 3-pattern join: the
	// enumeration must notice a 1ns deadline long before finishing.
	b := triples.NewBuilder()
	for i := 0; i < 40; i++ {
		for j := 0; j < 40; j++ {
			b.Add(fmt.Sprintf("n%d", i), "p", fmt.Sprintf("n%d", j))
		}
	}
	g := b.Build()
	r := ring.New(g, ring.WaveletMatrix)
	p, _ := g.PredID("p", false)
	patterns := []Pattern{
		{S: V("x"), P: C(p), O: V("y")},
		{S: V("y"), P: C(p), O: V("z")},
		{S: V("z"), P: C(p), O: V("w")},
	}
	count := 0
	err := JoinWith(r, patterns, Options{Timeout: time.Nanosecond}, func(Row) bool {
		count++
		return true
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout: got err=%v after %d rows, want ErrTimeout", err, count)
	}
	full := runJoin(t, r, patterns)
	if count >= len(full) {
		t.Fatalf("timeout did not truncate: %d rows of %d", count, len(full))
	}
}

func TestJoinWithFixedOrder(t *testing.T) {
	g := enginetest.Metro()
	r := ring.New(g, ring.WaveletMatrix)
	l1, _ := g.PredID("l1", false)
	l2, _ := g.PredID("l2", false)
	patterns := []Pattern{
		{S: V("x"), P: C(l1), O: V("y")},
		{S: V("y"), P: C(l2), O: V("z")},
	}
	want := sortRows(runJoin(t, r, patterns), []string{"x", "y", "z"})

	if !Feasible(patterns, []string{"x", "y", "z"}) {
		t.Fatal("x,y,z should be feasible")
	}
	var rows []Row
	err := JoinWith(r, patterns, Options{Order: []string{"x", "y", "z"}}, func(row Row) bool {
		rows = append(rows, row)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	got := sortRows(rows, []string{"x", "y", "z"})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fixed order: got %d rows, want %d", len(got), len(want))
	}

	// An order the rotations cannot realise is rejected with the typed
	// error; an order missing a variable is rejected outright. For the
	// all-variable pattern (?x, ?p, ?y) the three rotations admit
	// exactly x<y<p, y<p<x and p<x<y, so y<x<p fits none.
	allVar := []Pattern{{S: V("x"), P: V("p"), O: V("y")}}
	if Feasible(allVar, []string{"y", "x", "p"}) {
		t.Fatal("y,x,p should be infeasible for (?x, ?p, ?y)")
	}
	err = JoinWith(r, allVar, Options{Order: []string{"y", "x", "p"}}, func(Row) bool { return true })
	if !errors.Is(err, ErrUnsupportedOrder) {
		t.Fatalf("infeasible fixed order: got %v, want ErrUnsupportedOrder", err)
	}
	err = JoinWith(r, patterns, Options{Order: []string{"x", "y"}}, func(Row) bool { return true })
	if err == nil || errors.Is(err, ErrUnsupportedOrder) {
		t.Fatalf("incomplete order: got %v, want a coverage error", err)
	}
}
