// Package enginetest provides shared ground truth for the RPQ engines:
// a deliberately simple relational evaluator over the expression AST
// (independent of every automaton construction in this repo), plus the
// graphs used across engine test suites. Test-only.
package enginetest

import (
	"math/rand"

	"ringrpq/internal/pathexpr"
	"ringrpq/internal/triples"
)

// Pair is a result (subject, object) pair.
type Pair struct {
	S, O uint32
}

// Metro builds the completed Santiago transport graph of Figs. 1 and 3
// with the short names used throughout the paper's examples. Metro lines
// are bidirectional (both directions are data edges); the three bus edges
// are directed, reconstructed from the object ranges of Fig. 3 (each of
// SA, UCh and BA has exactly four incoming edges there, which pins the
// bus edges to SA→UCh, BA→SA and BA→UCh).
func Metro() *triples.Graph {
	b := triples.NewBuilder()
	add := func(s, p, o string) { b.Add(s, p, o); b.Add(o, p, s) }
	add("Baq", "l1", "UCh")
	add("UCh", "l1", "LH")
	add("LH", "l2", "SA")
	add("SA", "l5", "BA")
	add("BA", "l5", "Baq")
	b.Add("SA", "bus", "UCh")
	b.Add("BA", "bus", "SA")
	b.Add("BA", "bus", "UCh")
	return b.Build()
}

// RandomGraph builds a small random completed graph: nv nodes, np base
// predicates, ne edge draws (duplicates collapse).
func RandomGraph(seed int64, nv, np, ne int) *triples.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := triples.NewBuilder()
	for i := 0; i < nv; i++ {
		b.Nodes().Intern(nodeName(i))
	}
	for i := 0; i < np; i++ {
		b.Preds().Intern(predName(i))
	}
	for i := 0; i < ne; i++ {
		b.AddIDs(uint32(rng.Intn(nv)), uint32(rng.Intn(np)), uint32(rng.Intn(nv)))
	}
	return b.Build()
}

func nodeName(i int) string { return "n" + string(rune('A'+i%26)) + string(rune('0'+i/26)) }
func predName(i int) string { return "p" + string(rune('a'+i)) }

// RandomExpr builds a random path expression over the first np predicate
// names, with inverses.
func RandomExpr(rng *rand.Rand, np, depth int) pathexpr.Node {
	if depth == 0 || rng.Intn(3) == 0 {
		return pathexpr.Sym{Name: predName(rng.Intn(np)), Inverse: rng.Intn(4) == 0}
	}
	switch rng.Intn(5) {
	case 0:
		return pathexpr.Concat{L: RandomExpr(rng, np, depth-1), R: RandomExpr(rng, np, depth-1)}
	case 1:
		return pathexpr.Alt{L: RandomExpr(rng, np, depth-1), R: RandomExpr(rng, np, depth-1)}
	case 2:
		return pathexpr.Star{X: RandomExpr(rng, np, depth-1)}
	case 3:
		return pathexpr.Plus{X: RandomExpr(rng, np, depth-1)}
	default:
		return pathexpr.Opt{X: RandomExpr(rng, np, depth-1)}
	}
}

// relation is a set of pairs.
type relation map[Pair]bool

// Oracle computes the full evaluation of the 2RPQ (subject, expr, object)
// over g by relational algebra on pair sets: atoms select edges, concat
// joins, alternation unions, and closures iterate to fixpoint. Endpoints
// are node ids or -1 for variables. Zero-length paths relate every node
// to itself, matching the engines' convention. Exponential in nothing but
// graph size; use small graphs.
func Oracle(g *triples.Graph, subject int64, expr pathexpr.Node, object int64) []Pair {
	rel := eval(g, expr)
	var out []Pair
	for p := range rel {
		if subject >= 0 && int64(p.S) != subject {
			continue
		}
		if object >= 0 && int64(p.O) != object {
			continue
		}
		out = append(out, p)
	}
	return out
}

func eval(g *triples.Graph, n pathexpr.Node) relation {
	switch x := n.(type) {
	case pathexpr.Sym:
		out := relation{}
		id, ok := g.PredID(x.Name, x.Inverse)
		if !ok {
			return out
		}
		for _, t := range g.Triples {
			if t.P == id {
				out[Pair{t.S, t.O}] = true
			}
		}
		return out
	case pathexpr.NegSet:
		out := relation{}
		for _, t := range g.Triples {
			inverse := t.P >= g.NumPreds
			if inverse != x.Inverse {
				continue
			}
			base := t.P
			if inverse {
				base -= g.NumPreds
			}
			if !x.Excludes(g.Preds.Name(base)) {
				out[Pair{t.S, t.O}] = true
			}
		}
		return out
	case pathexpr.Eps:
		return identity(g)
	case pathexpr.Concat:
		return join(eval(g, x.L), eval(g, x.R))
	case pathexpr.Alt:
		l := eval(g, x.L)
		for p := range eval(g, x.R) {
			l[p] = true
		}
		return l
	case pathexpr.Star:
		return closure(g, eval(g, x.X), true)
	case pathexpr.Plus:
		return closure(g, eval(g, x.X), false)
	case pathexpr.Opt:
		out := eval(g, x.X)
		for p := range identity(g) {
			out[p] = true
		}
		return out
	default:
		panic("enginetest: unknown node")
	}
}

func identity(g *triples.Graph) relation {
	out := relation{}
	for v := 0; v < g.NumNodes(); v++ {
		out[Pair{uint32(v), uint32(v)}] = true
	}
	return out
}

func join(a, b relation) relation {
	byS := map[uint32][]uint32{}
	for p := range b {
		byS[p.S] = append(byS[p.S], p.O)
	}
	out := relation{}
	for p := range a {
		for _, o := range byS[p.O] {
			out[Pair{p.S, o}] = true
		}
	}
	return out
}

// closure computes the transitive closure of r (reflexive over all nodes
// when reflexive is set) by naive iteration to fixpoint.
func closure(g *triples.Graph, r relation, reflexive bool) relation {
	out := relation{}
	for p := range r {
		out[p] = true
	}
	for {
		next := join(out, r)
		grew := false
		for p := range next {
			if !out[p] {
				out[p] = true
				grew = true
			}
		}
		if !grew {
			break
		}
	}
	if reflexive {
		for p := range identity(g) {
			out[p] = true
		}
	}
	return out
}

// SortPairs orders pairs for stable comparison.
func SortPairs(ps []Pair) []Pair {
	out := append([]Pair(nil), ps...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && lessPair(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func lessPair(a, b Pair) bool {
	if a.S != b.S {
		return a.S < b.S
	}
	return a.O < b.O
}
