package wavelet

import (
	"fmt"
	"math/bits"

	"ringrpq/internal/bitvec"
)

// Tree is a pointer-free balanced wavelet tree (§3.5): a perfect binary
// tree over the alphabet [0, σ) whose internal nodes store bitvectors, in
// heap order. A node covering symbols [lo, hi) splits at mid = (lo+hi)/2.
type Tree struct {
	n      int
	sigma  uint32
	nodes  []*bitvec.Vector // heap-indexed; nil at leaves and absent ids
	counts []int            // counts[c] = occurrences of symbols < c
	numIDs int
}

// NewTree builds a wavelet tree over data, whose symbols must lie in
// [0, sigma). Construction is level-by-level with two n-word buffers,
// O(n log σ) time.
func NewTree(data []uint32, sigma uint32) *Tree {
	if sigma == 0 {
		sigma = 1
	}
	t := &Tree{n: len(data), sigma: sigma}
	t.counts = make([]int, sigma+1)
	for _, c := range data {
		if c >= sigma {
			panic(fmt.Sprintf("wavelet: symbol %d out of alphabet [0,%d)", c, sigma))
		}
		t.counts[c+1]++
	}
	for c := uint32(0); c < sigma; c++ {
		t.counts[c+1] += t.counts[c]
	}

	depth := 0
	for 1<<depth < int(sigma) {
		depth++
	}
	t.numIDs = 2 << depth
	t.nodes = make([]*bitvec.Vector, t.numIDs)

	type seg struct {
		id     int
		lo, hi uint32
		b, e   int
	}
	cur := make([]uint32, len(data))
	copy(cur, data)
	next := make([]uint32, len(data))
	segs := []seg{{1, 0, sigma, 0, len(data)}}
	for len(segs) > 0 {
		var nsegs []seg
		for _, s := range segs {
			if s.hi-s.lo <= 1 || s.b == s.e {
				continue
			}
			mid := (s.lo + s.hi) / 2
			bb := bitvec.NewBuilder(s.e - s.b)
			for _, c := range cur[s.b:s.e] {
				bb.Append(c >= mid)
			}
			t.nodes[s.id] = bb.Build()
			// Stable partition into the next level's buffer, children
			// occupying the parent's slot left-to-right.
			l, r := s.b, s.b+t.nodes[s.id].Zeros()
			zend := r
			for _, c := range cur[s.b:s.e] {
				if c < mid {
					next[l] = c
					l++
				} else {
					next[r] = c
					r++
				}
			}
			nsegs = append(nsegs,
				seg{2 * s.id, s.lo, mid, s.b, zend},
				seg{2*s.id + 1, mid, s.hi, zend, s.e})
		}
		cur, next = next, cur
		segs = nsegs
	}
	return t
}

// Len reports the sequence length.
func (t *Tree) Len() int { return t.n }

// Sigma reports the alphabet size.
func (t *Tree) Sigma() uint32 { return t.sigma }

// Count reports the total occurrences of c.
func (t *Tree) Count(c uint32) int {
	if c >= t.sigma {
		return 0
	}
	return t.counts[c+1] - t.counts[c]
}

// CountBelow reports the number of positions holding symbols < c,
// i.e. the classical C[c] array of backward search (Eq. 3).
func (t *Tree) CountBelow(c uint32) int {
	if c > t.sigma {
		c = t.sigma
	}
	return t.counts[c]
}

// NumNodes reports the exclusive upper bound on NodeIDs.
func (t *Tree) NumNodes() int { return t.numIDs }

// LeafID returns the heap id of the leaf representing c.
func (t *Tree) LeafID(c uint32) NodeID {
	id := 1
	lo, hi := uint32(0), t.sigma
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if c < mid {
			id, hi = 2*id, mid
		} else {
			id, lo = 2*id+1, mid
		}
	}
	return NodeID(id)
}

// Access returns the symbol at position i.
func (t *Tree) Access(i int) uint32 {
	id := 1
	lo, hi := uint32(0), t.sigma
	for hi-lo > 1 {
		bv := t.nodes[id]
		mid := (lo + hi) / 2
		if bv.Get(i) {
			i = bv.Rank1(i)
			id, lo = 2*id+1, mid
		} else {
			i = bv.Rank0(i)
			id, hi = 2*id, mid
		}
	}
	return lo
}

// Rank counts occurrences of c in [0, i).
func (t *Tree) Rank(c uint32, i int) int {
	if c >= t.sigma {
		return 0
	}
	if i > t.n {
		i = t.n
	}
	id := 1
	lo, hi := uint32(0), t.sigma
	for hi-lo > 1 && i > 0 {
		bv := t.nodes[id]
		if bv == nil {
			return 0 // empty subtree
		}
		mid := (lo + hi) / 2
		if c < mid {
			i = bv.Rank0(i)
			id, hi = 2*id, mid
		} else {
			i = bv.Rank1(i)
			id, lo = 2*id+1, mid
		}
	}
	if hi-lo > 1 {
		return 0
	}
	return i
}

// Select returns the position of the k-th (1-based) occurrence of c, or -1.
func (t *Tree) Select(c uint32, k int) int {
	if c >= t.sigma || k < 1 || k > t.Count(c) {
		return -1
	}
	// Descend to the leaf recording the path, then map the local ordinal
	// back up with select on each bitvector.
	type step struct {
		id    int
		right bool
	}
	var path [40]step
	np := 0
	id := 1
	lo, hi := uint32(0), t.sigma
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if c < mid {
			path[np] = step{id, false}
			id, hi = 2*id, mid
		} else {
			path[np] = step{id, true}
			id, lo = 2*id+1, mid
		}
		np++
	}
	pos := k // 1-based ordinal within the current node
	for j := np - 1; j >= 0; j-- {
		bv := t.nodes[path[j].id]
		if path[j].right {
			pos = bv.Select1(pos) + 1
		} else {
			pos = bv.Select0(pos) + 1
		}
	}
	return pos - 1
}

// Traverse walks the nodes covering [b, e); see Visit.
func (t *Tree) Traverse(b, e int, visit Visit) {
	if b < 0 {
		b = 0
	}
	if e > t.n {
		e = t.n
	}
	t.traverse(1, 0, t.sigma, b, e, visit)
}

func (t *Tree) traverse(id int, lo, hi uint32, b, e int, visit Visit) {
	if b >= e {
		return
	}
	if hi-lo == 1 {
		visit(NodeID(id), true, lo, b, e, b == 0 && e == t.Count(lo))
		return
	}
	bv := t.nodes[id]
	if bv == nil {
		return
	}
	if !visit(NodeID(id), false, 0, b, e, b == 0 && e == bv.Len()) {
		return
	}
	mid := (lo + hi) / 2
	lb, le := bv.Rank0(b), bv.Rank0(e)
	t.traverse(2*id, lo, mid, lb, le, visit)
	t.traverse(2*id+1, mid, hi, b-lb, e-le, visit)
}

// TraverseMany walks the nodes covering every item range in a single
// descent (see Seq.TraverseMany).
//
//ringrpq:noalloc
func (t *Tree) TraverseMany(items []RangeMask, visit VisitMany) {
	live := clampRangeMasks(items, t.n)
	if len(live) == 0 {
		return
	}
	arena := getArena(2*len(live) + 16)
	t.traverseMany(1, 0, t.sigma, live, arena, visit)
	putArena(arena)
}

//ringrpq:noalloc
func (t *Tree) traverseMany(id int, lo, hi uint32, items []RangeMask, arena *[]RangeMask, visit VisitMany) {
	if len(items) == 0 {
		return
	}
	if hi-lo == 1 {
		visit(NodeID(id), true, lo, items)
		return
	}
	bv := t.nodes[id]
	if bv == nil {
		return
	}
	k := visit(NodeID(id), false, 0, items)
	if k <= 0 {
		return
	}
	mid := (lo + hi) / 2
	base := len(*arena)
	right := splitRangeMasks(bv, 0, items[:k], arena)
	t.traverseMany(2*id, lo, mid, (*arena)[base:], arena, visit)
	*arena = (*arena)[:base]
	t.traverseMany(2*id+1, mid, hi, right, arena, visit)
}

// Intersect enumerates symbols present in both ranges (§5 fast paths).
func (t *Tree) Intersect(b1, e1, b2, e2 int, emit IntersectFunc) {
	t.intersect(1, 0, t.sigma, b1, e1, b2, e2, emit)
}

func (t *Tree) intersect(id int, lo, hi uint32, b1, e1, b2, e2 int, emit IntersectFunc) {
	if b1 >= e1 || b2 >= e2 {
		return
	}
	if hi-lo == 1 {
		emit(lo, b1, e1, b2, e2)
		return
	}
	bv := t.nodes[id]
	if bv == nil {
		return
	}
	mid := (lo + hi) / 2
	l1b, l1e := bv.Rank0(b1), bv.Rank0(e1)
	l2b, l2e := bv.Rank0(b2), bv.Rank0(e2)
	t.intersect(2*id, lo, mid, l1b, l1e, l2b, l2e, emit)
	t.intersect(2*id+1, mid, hi, b1-l1b, e1-l1e, b2-l2b, e2-l2e, emit)
}

// MinAtLeast returns the smallest symbol ≥ x occurring in [b, e).
func (t *Tree) MinAtLeast(b, e int, x uint32) (uint32, bool) {
	if b < 0 {
		b = 0
	}
	if e > t.n {
		e = t.n
	}
	return t.minAtLeast(1, 0, t.sigma, b, e, x)
}

func (t *Tree) minAtLeast(id int, lo, hi uint32, b, e int, x uint32) (uint32, bool) {
	if b >= e || hi <= x {
		return 0, false
	}
	if hi-lo == 1 {
		return lo, true
	}
	bv := t.nodes[id]
	if bv == nil {
		return 0, false
	}
	mid := (lo + hi) / 2
	lb, le := bv.Rank0(b), bv.Rank0(e)
	if x < mid {
		if c, ok := t.minAtLeast(2*id, lo, mid, lb, le, x); ok {
			return c, true
		}
	}
	return t.minAtLeast(2*id+1, mid, hi, b-lb, e-le, x)
}

// SymRange reports the symbol interval covered by a node, replaying the
// mid-point splits along the node's root path (O(depth)).
func (t *Tree) SymRange(id NodeID) (uint32, uint32) {
	if id < 1 || int(id) >= t.numIDs {
		return 0, 0
	}
	depth := bits.Len(uint(id)) - 1
	lo, hi := uint32(0), t.sigma
	for level := depth - 1; level >= 0; level-- {
		if hi-lo <= 1 {
			return 0, 0 // below a leaf: no symbols
		}
		mid := (lo + hi) / 2
		if id>>uint(level)&1 == 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, hi
}

// PadNodes returns nil: the balanced tree has exactly one leaf per
// alphabet symbol and no padding.
func (t *Tree) PadNodes() []NodeID { return nil }

// SizeBytes reports the index memory footprint.
func (t *Tree) SizeBytes() int {
	sz := 8*len(t.counts) + 8*len(t.nodes) + 48
	for _, bv := range t.nodes {
		if bv != nil {
			sz += bv.SizeBytes()
		}
	}
	return sz
}
