package wavelet

import (
	"fmt"
	"sort"

	"ringrpq/internal/bitvec"
	"ringrpq/internal/serial"
)

// Encode writes the matrix: levels and counts; zeros and bottom starts
// are derived on load.
func (m *Matrix) Encode(w *serial.Writer) {
	w.Magic("wm01")
	w.Int(m.n)
	w.Uvarint(uint64(m.sigma))
	w.Int(m.width)
	for _, lv := range m.levels {
		lv.Encode(w)
	}
	w.Ints(m.counts)
}

// DecodeMatrix reads a matrix written by Encode.
func DecodeMatrix(r *serial.Reader) (*Matrix, error) {
	r.Magic("wm01")
	m := &Matrix{}
	m.n = r.Int()
	m.sigma = uint32(r.Uvarint())
	m.width = r.Int()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if m.width < 1 || m.width > 32 {
		return nil, fmt.Errorf("wavelet: corrupt matrix width %d", m.width)
	}
	m.levels = make([]*bitvec.Vector, m.width)
	m.zeros = make([]int, m.width)
	for l := 0; l < m.width; l++ {
		m.levels[l] = bitvec.Decode(r)
		if r.Err() != nil {
			return nil, r.Err()
		}
		if m.levels[l].Len() != m.n {
			return nil, fmt.Errorf("wavelet: corrupt level %d length %d, want %d", l, m.levels[l].Len(), m.n)
		}
		m.zeros[l] = m.levels[l].Zeros()
	}
	m.counts = r.Ints()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := checkCounts(m.counts, int(m.sigma), m.n); err != nil {
		return nil, err
	}
	// Rebuild the bottom-level starts (bit-reversal order prefix sums).
	order := make([]uint32, m.sigma)
	for c := uint32(0); c < m.sigma; c++ {
		order[c] = c
	}
	sort.Slice(order, func(i, j int) bool {
		return revBits(order[i], m.width) < revBits(order[j], m.width)
	})
	m.bottomStart = make([]int, m.sigma)
	pos := 0
	for _, c := range order {
		m.bottomStart[c] = pos
		pos += m.Count(c)
	}
	return m, nil
}

// checkCounts validates a decoded symbol-count prefix-sum array: one
// entry per symbol plus a terminator, starting at zero, nondecreasing,
// and summing to the sequence length. Decoders derive allocation sizes
// and positions from these, so corrupt counts must be rejected here.
func checkCounts(counts []int, sigma, n int) error {
	if len(counts) != sigma+1 {
		return fmt.Errorf("wavelet: corrupt counts length %d for alphabet %d", len(counts), sigma)
	}
	if counts[0] != 0 || counts[sigma] != n {
		return fmt.Errorf("wavelet: corrupt counts bounds [%d, %d], want [0, %d]", counts[0], counts[sigma], n)
	}
	for c := 0; c < sigma; c++ {
		if counts[c+1] < counts[c] {
			return fmt.Errorf("wavelet: counts not nondecreasing at symbol %d", c)
		}
	}
	return nil
}

// Encode writes the tree: counts plus the node bitvectors in heap order
// (present-flag per slot).
func (t *Tree) Encode(w *serial.Writer) {
	w.Magic("wt01")
	w.Int(t.n)
	w.Uvarint(uint64(t.sigma))
	w.Int(t.numIDs)
	w.Ints(t.counts)
	present := 0
	for _, bv := range t.nodes {
		if bv != nil {
			present++
		}
	}
	w.Int(present)
	for id, bv := range t.nodes {
		if bv != nil {
			w.Int(id)
			bv.Encode(w)
		}
	}
}

// DecodeTree reads a tree written by Encode.
func DecodeTree(r *serial.Reader) (*Tree, error) {
	r.Magic("wt01")
	t := &Tree{}
	t.n = r.Int()
	t.sigma = uint32(r.Uvarint())
	t.numIDs = r.Int()
	t.counts = r.Ints()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if err := checkCounts(t.counts, int(t.sigma), t.n); err != nil {
		return nil, err
	}
	// NewTree allocates 2^(depth+1) node slots for the smallest depth
	// with 2^depth ≥ sigma, so numIDs never exceeds 4·sigma (and is at
	// least 2); anything else is corrupt — and would otherwise let a
	// few header bytes demand an arbitrarily large allocation.
	if t.numIDs < 2 || t.numIDs > 4*max(int(t.sigma), 1) {
		return nil, fmt.Errorf("wavelet: corrupt tree node count %d for alphabet %d", t.numIDs, t.sigma)
	}
	t.nodes = make([]*bitvec.Vector, t.numIDs)
	present := r.Int()
	for i := 0; i < present; i++ {
		id := r.Int()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if id < 1 || id >= t.numIDs {
			return nil, fmt.Errorf("wavelet: corrupt node id %d", id)
		}
		t.nodes[id] = bitvec.Decode(r)
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	return t, nil
}
