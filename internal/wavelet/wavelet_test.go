package wavelet

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// naiveSeq is a reference implementation over a plain slice.
type naiveSeq struct {
	data  []uint32
	sigma uint32
}

func (n naiveSeq) access(i int) uint32 { return n.data[i] }

func (n naiveSeq) rank(c uint32, i int) int {
	r := 0
	for j := 0; j < i && j < len(n.data); j++ {
		if n.data[j] == c {
			r++
		}
	}
	return r
}

func (n naiveSeq) sel(c uint32, k int) int {
	for i, x := range n.data {
		if x == c {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func (n naiveSeq) distinct(b, e int) map[uint32][2]int {
	out := map[uint32][2]int{}
	for _, c := range n.data[b:e] {
		rb := n.rank(c, b)
		re := n.rank(c, e)
		out[c] = [2]int{rb, re}
	}
	return out
}

func randSeq(n int, sigma uint32, seed int64) naiveSeq {
	rng := rand.New(rand.NewSource(seed))
	d := make([]uint32, n)
	for i := range d {
		d[i] = uint32(rng.Intn(int(sigma)))
	}
	return naiveSeq{d, sigma}
}

// both builds a Tree and a Matrix over the same data.
func both(n naiveSeq) []Seq {
	return []Seq{NewTree(n.data, n.sigma), NewMatrix(n.data, n.sigma)}
}

func TestAccessRankSelect(t *testing.T) {
	for _, sigma := range []uint32{1, 2, 3, 5, 8, 17, 100} {
		ns := randSeq(700, sigma, int64(sigma))
		for _, s := range both(ns) {
			name := reflect.TypeOf(s).String()
			if s.Len() != 700 || s.Sigma() != sigma {
				t.Fatalf("%s sigma=%d: Len/Sigma wrong", name, sigma)
			}
			for i := range ns.data {
				if got := s.Access(i); got != ns.data[i] {
					t.Fatalf("%s sigma=%d Access(%d)=%d, want %d", name, sigma, i, got, ns.data[i])
				}
			}
			for c := uint32(0); c < sigma; c++ {
				for i := 0; i <= len(ns.data); i += 31 {
					if got, want := s.Rank(c, i), ns.rank(c, i); got != want {
						t.Fatalf("%s sigma=%d Rank(%d,%d)=%d, want %d", name, sigma, c, i, got, want)
					}
				}
				cnt := ns.rank(c, len(ns.data))
				if s.Count(c) != cnt {
					t.Fatalf("%s Count(%d)=%d, want %d", name, c, s.Count(c), cnt)
				}
				for k := 1; k <= cnt; k += 3 {
					if got, want := s.Select(c, k), ns.sel(c, k); got != want {
						t.Fatalf("%s sigma=%d Select(%d,%d)=%d, want %d", name, sigma, c, k, got, want)
					}
				}
				if s.Select(c, cnt+1) != -1 || s.Select(c, 0) != -1 {
					t.Fatalf("%s Select out of range not -1", name)
				}
			}
		}
	}
}

func TestEmptySequence(t *testing.T) {
	for _, s := range both(naiveSeq{nil, 4}) {
		if s.Len() != 0 {
			t.Fatal("empty Len")
		}
		if s.Rank(2, 0) != 0 || s.Select(2, 1) != -1 || s.Count(2) != 0 {
			t.Fatal("empty ops misbehave")
		}
		called := false
		RangeDistinct(s, 0, 0, func(c uint32, rb, re int) { called = true })
		if called {
			t.Fatal("RangeDistinct on empty emitted")
		}
	}
}

func TestRangeDistinct(t *testing.T) {
	ns := randSeq(400, 9, 7)
	for _, s := range both(ns) {
		name := reflect.TypeOf(s).String()
		for _, r := range [][2]int{{0, 400}, {13, 14}, {100, 250}, {0, 1}, {399, 400}, {200, 200}} {
			want := ns.distinct(r[0], r[1])
			got := map[uint32][2]int{}
			var order []uint32
			RangeDistinct(s, r[0], r[1], func(c uint32, rb, re int) {
				got[c] = [2]int{rb, re}
				order = append(order, c)
			})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s RangeDistinct(%v)=%v, want %v", name, r, got, want)
			}
			if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] < order[j] }) {
				t.Fatalf("%s RangeDistinct order not increasing: %v", name, order)
			}
		}
	}
}

// Leaf callbacks must report occurrence-rank ranges: re-rb == count in range
// and Select(c, rb+1) lands inside [b,e).
func TestTraverseLeafRanges(t *testing.T) {
	ns := randSeq(300, 6, 21)
	for _, s := range both(ns) {
		name := reflect.TypeOf(s).String()
		b, e := 50, 220
		s.Traverse(b, e, func(node NodeID, leaf bool, sym uint32, lb, le int, full bool) bool {
			if !leaf {
				return true
			}
			if lb >= le {
				t.Fatalf("%s leaf %d empty range", name, sym)
			}
			if got := ns.rank(sym, b); got != lb {
				t.Fatalf("%s leaf %d rb=%d, want %d", name, sym, lb, got)
			}
			if got := ns.rank(sym, e); got != le {
				t.Fatalf("%s leaf %d re=%d, want %d", name, sym, le, got)
			}
			pos := s.Select(sym, lb+1)
			if pos < b || pos >= e {
				t.Fatalf("%s leaf %d first occurrence %d outside [%d,%d)", name, sym, pos, b, e)
			}
			return true
		})
	}
}

// The full flag must be exact at leaves (and, when set on an internal
// node, truthful).
func TestTraverseFullFlag(t *testing.T) {
	ns := randSeq(256, 8, 5)
	for _, s := range both(ns) {
		name := reflect.TypeOf(s).String()
		// Full range: every visited leaf must be full.
		s.Traverse(0, s.Len(), func(node NodeID, leaf bool, sym uint32, lb, le int, full bool) bool {
			if leaf && !full {
				t.Fatalf("%s leaf %d not full on whole-range traversal", name, node)
			}
			return true
		})
		// A leaf is full iff the range spans all its occurrences.
		b, e := 1, s.Len()-1
		s.Traverse(b, e, func(node NodeID, leaf bool, sym uint32, lb, le int, full bool) bool {
			if leaf {
				wantFull := lb == 0 && le == s.Count(sym)
				if full != wantFull {
					t.Fatalf("%s leaf %d full=%v, want %v", name, sym, full, wantFull)
				}
			}
			return true
		})
	}
}

// Pruning a node must suppress exactly the symbols below it.
func TestTraversePruning(t *testing.T) {
	ns := randSeq(500, 16, 3)
	for _, s := range both(ns) {
		name := reflect.TypeOf(s).String()
		// Prune every node that is an ancestor of symbols >= 8 only.
		var got []uint32
		s.Traverse(0, s.Len(), func(node NodeID, leaf bool, sym uint32, lb, le int, full bool) bool {
			if leaf {
				got = append(got, sym)
				return true
			}
			return true
		})
		all := len(got)
		got = got[:0]
		// Prune by leaf id parity of subtree: prune the root's right child.
		// Instead express the filter on symbols: keep only syms < 8 by
		// pruning nodes whose entire symbol range is >= 8, which we detect
		// via LeafID ancestry.
		high := map[NodeID]bool{}
		for c := uint32(8); c < 16; c++ {
			id := s.LeafID(c)
			for id >= 1 {
				high[id] = true
				id = id.Parent()
			}
		}
		low := map[NodeID]bool{}
		for c := uint32(0); c < 8; c++ {
			id := s.LeafID(c)
			for id >= 1 {
				low[id] = true
				id = id.Parent()
			}
		}
		s.Traverse(0, s.Len(), func(node NodeID, leaf bool, sym uint32, lb, le int, full bool) bool {
			if leaf {
				got = append(got, sym)
				return true
			}
			return low[node] // prune pure-high subtrees
		})
		for _, c := range got {
			if c >= 8 {
				t.Fatalf("%s pruned traversal leaked symbol %d", name, c)
			}
		}
		if len(got) >= all {
			t.Fatalf("%s pruning did not reduce leaves", name)
		}
	}
}

func TestLeafIDDistinctAndParented(t *testing.T) {
	ns := randSeq(100, 13, 9)
	for _, s := range both(ns) {
		seen := map[NodeID]bool{}
		for c := uint32(0); c < 13; c++ {
			id := s.LeafID(c)
			if id < 1 || int(id) >= s.NumNodes() {
				t.Fatalf("LeafID(%d)=%d outside [1,%d)", c, id, s.NumNodes())
			}
			if seen[id] {
				t.Fatalf("duplicate leaf id %d", id)
			}
			seen[id] = true
			// Walking parents must reach the root.
			steps := 0
			for v := id; v != Root; v = v.Parent() {
				steps++
				if steps > 64 {
					t.Fatalf("leaf %d does not reach root", c)
				}
			}
		}
	}
}

// Traverse must visit leaves at the ids LeafID reports.
func TestTraverseLeafIDsMatch(t *testing.T) {
	ns := randSeq(200, 10, 31)
	for _, s := range both(ns) {
		s.Traverse(0, s.Len(), func(node NodeID, leaf bool, sym uint32, lb, le int, full bool) bool {
			if leaf && node != s.LeafID(sym) {
				t.Fatalf("leaf for %d visited at id %d, LeafID says %d", sym, node, s.LeafID(sym))
			}
			return true
		})
	}
}

func TestIntersect(t *testing.T) {
	ns := randSeq(600, 12, 17)
	for _, s := range both(ns) {
		name := reflect.TypeOf(s).String()
		b1, e1, b2, e2 := 0, 300, 300, 600
		want := map[uint32]bool{}
		d1 := ns.distinct(b1, e1)
		d2 := ns.distinct(b2, e2)
		for c := range d1 {
			if _, ok := d2[c]; ok {
				want[c] = true
			}
		}
		got := map[uint32]bool{}
		s.Intersect(b1, e1, b2, e2, func(c uint32, x1b, x1e, x2b, x2e int) {
			got[c] = true
			if [2]int{x1b, x1e} != d1[c] || [2]int{x2b, x2e} != d2[c] {
				t.Fatalf("%s Intersect ranges for %d: (%d,%d,%d,%d), want %v,%v",
					name, c, x1b, x1e, x2b, x2e, d1[c], d2[c])
			}
		})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s Intersect symbols=%v, want %v", name, got, want)
		}
	}
}

func TestIntersectDisjointRanges(t *testing.T) {
	// Two ranges whose symbol sets are disjoint must emit nothing.
	data := []uint32{0, 0, 0, 1, 1, 1}
	for _, s := range []Seq{NewTree(data, 2), NewMatrix(data, 2)} {
		count := 0
		s.Intersect(0, 3, 3, 6, func(c uint32, a, b, cc, d int) { count++ })
		if count != 0 {
			t.Fatal("intersect of disjoint symbol sets emitted")
		}
	}
}

func TestMinAtLeast(t *testing.T) {
	ns := randSeq(400, 20, 23)
	for _, s := range both(ns) {
		name := reflect.TypeOf(s).String()
		for _, r := range [][2]int{{0, 400}, {17, 230}, {100, 101}} {
			for x := uint32(0); x <= 21; x++ {
				var want uint32
				found := false
				for _, c := range ns.data[r[0]:r[1]] {
					if c >= x && (!found || c < want) {
						want, found = c, true
					}
				}
				got, ok := s.MinAtLeast(r[0], r[1], x)
				if ok != found || (found && got != want) {
					t.Fatalf("%s MinAtLeast(%v, %d)=(%d,%v), want (%d,%v)",
						name, r, x, got, ok, want, found)
				}
			}
		}
	}
}

func TestTreeMatrixAgreeQuick(t *testing.T) {
	f := func(seed int64, rawN uint16, rawSigma uint8) bool {
		n := int(rawN)%500 + 1
		sigma := uint32(rawSigma)%60 + 1
		ns := randSeq(n, sigma, seed)
		tr := NewTree(ns.data, sigma)
		ma := NewMatrix(ns.data, sigma)
		for i := 0; i < n; i += 7 {
			if tr.Access(i) != ma.Access(i) {
				return false
			}
		}
		for c := uint32(0); c < sigma; c += 3 {
			if tr.Count(c) != ma.Count(c) || tr.CountBelow(c) != ma.CountBelow(c) {
				return false
			}
			for i := 0; i <= n; i += 11 {
				if tr.Rank(c, i) != ma.Rank(c, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCountBelowIsCArray(t *testing.T) {
	ns := randSeq(300, 7, 2)
	for _, s := range []interface {
		CountBelow(uint32) int
	}{NewTree(ns.data, 7), NewMatrix(ns.data, 7)} {
		acc := 0
		for c := uint32(0); c <= 7; c++ {
			if got := s.CountBelow(c); got != acc {
				t.Fatalf("CountBelow(%d)=%d, want %d", c, got, acc)
			}
			if c < 7 {
				acc += ns.rank(c, 300)
			}
		}
	}
}

func TestOutOfAlphabetPanics(t *testing.T) {
	for _, build := range []func(){
		func() { NewTree([]uint32{5}, 5) },
		func() { NewMatrix([]uint32{5}, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-alphabet symbol should panic")
				}
			}()
			build()
		}()
	}
}

func BenchmarkTreeRank(b *testing.B) {
	ns := randSeq(1<<18, 1024, 1)
	s := NewTree(ns.data, ns.sigma)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Rank(uint32(i%1024), i%s.Len())
	}
}

func BenchmarkMatrixRank(b *testing.B) {
	ns := randSeq(1<<18, 1024, 1)
	s := NewMatrix(ns.data, ns.sigma)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Rank(uint32(i%1024), i%s.Len())
	}
}

func BenchmarkTreeRangeDistinct(b *testing.B) {
	ns := randSeq(1<<18, 1024, 1)
	s := NewTree(ns.data, ns.sigma)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RangeDistinct(s, 0, 2048, func(c uint32, rb, re int) {})
	}
}

func BenchmarkMatrixRangeDistinct(b *testing.B) {
	ns := randSeq(1<<18, 1024, 1)
	s := NewMatrix(ns.data, ns.sigma)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RangeDistinct(s, 0, 2048, func(c uint32, rb, re int) {})
	}
}

// PadNodes must cover exactly the leaves in [sigma, 2^width), each once.
func TestPadNodes(t *testing.T) {
	for _, sigma := range []uint32{1, 2, 3, 5, 8, 11, 16, 100} {
		ns := randSeq(50, sigma, int64(sigma))
		m := NewMatrix(ns.data, sigma)
		pads := m.PadNodes()
		// Expand every pad node to its leaf set.
		leafBase := m.NumNodes() / 2
		covered := map[int]int{}
		var expand func(id int)
		expand = func(id int) {
			if id >= leafBase {
				covered[id-leafBase]++
				return
			}
			expand(2 * id)
			expand(2*id + 1)
		}
		for _, p := range pads {
			expand(int(p))
		}
		for sym := 0; sym < leafBase; sym++ {
			want := 0
			if sym >= int(sigma) {
				want = 1
			}
			if covered[sym] != want {
				t.Fatalf("sigma=%d: padding coverage of leaf %d = %d, want %d",
					sigma, sym, covered[sym], want)
			}
		}
		// Tree layout has no padding.
		if got := NewTree(ns.data, sigma).PadNodes(); len(got) != 0 {
			t.Fatalf("tree PadNodes=%v, want empty", got)
		}
	}
}

// SymRange must agree with the symbol coverage observed by Traverse.
func TestSymRange(t *testing.T) {
	for _, sigma := range []uint32{1, 2, 5, 8, 13, 32} {
		ns := randSeq(200, sigma, int64(sigma)+99)
		for _, s := range both(ns) {
			name := reflect.TypeOf(s).String()
			lo, hi := s.SymRange(Root)
			if lo != 0 || hi != sigma {
				t.Fatalf("%s sigma=%d: root SymRange=[%d,%d)", name, sigma, lo, hi)
			}
			for c := uint32(0); c < sigma; c++ {
				leaf := s.LeafID(c)
				lo, hi := s.SymRange(leaf)
				if lo != c || hi != c+1 {
					t.Fatalf("%s sigma=%d: leaf %d SymRange=[%d,%d)", name, sigma, c, lo, hi)
				}
				// Every ancestor must cover the leaf's symbol.
				for id := leaf.Parent(); id >= Root; id = id.Parent() {
					lo, hi := s.SymRange(id)
					if c < lo || c >= hi {
						t.Fatalf("%s: ancestor %d of leaf %d covers [%d,%d)", name, id, c, lo, hi)
					}
				}
			}
		}
	}
}

// Matrix padding nodes have empty symbol ranges.
func TestSymRangePadding(t *testing.T) {
	ns := randSeq(60, 5, 77) // width 3, padding symbols 5..7
	m := NewMatrix(ns.data, 5)
	for _, id := range m.PadNodes() {
		lo, hi := m.SymRange(id)
		if lo != hi {
			t.Fatalf("pad node %d has non-empty range [%d,%d)", id, lo, hi)
		}
	}
}

// RangeCountBelow must agree with naive counting on both layouts.
func TestRangeCountBelow(t *testing.T) {
	for _, sigma := range []uint32{1, 2, 7, 16, 33} {
		ns := randSeq(400, sigma, int64(sigma)+55)
		tr := NewTree(ns.data, sigma)
		ma := NewMatrix(ns.data, sigma)
		for _, r := range [][2]int{{0, 400}, {17, 230}, {100, 101}, {0, 1}, {50, 50}} {
			for x := uint32(0); x <= sigma+2; x++ {
				want := 0
				for _, c := range ns.data[r[0]:r[1]] {
					if c < x {
						want++
					}
				}
				if got := tr.RangeCountBelow(r[0], r[1], x); got != want {
					t.Fatalf("tree sigma=%d range=%v x=%d: %d, want %d", sigma, r, x, got, want)
				}
				if got := ma.RangeCountBelow(r[0], r[1], x); got != want {
					t.Fatalf("matrix sigma=%d range=%v x=%d: %d, want %d", sigma, r, x, got, want)
				}
			}
		}
	}
}
