package wavelet

import (
	"bytes"
	"testing"

	"ringrpq/internal/serial"
)

func TestMatrixEncodeDecode(t *testing.T) {
	ns := randSeq(700, 37, 3)
	m := NewMatrix(ns.data, ns.sigma)
	var buf bytes.Buffer
	w := serial.NewWriter(&buf)
	m.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	m2, err := DecodeMatrix(serial.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	checkSeqEqual(t, m, m2, ns)
}

func TestTreeEncodeDecode(t *testing.T) {
	ns := randSeq(700, 37, 3)
	tr := NewTree(ns.data, ns.sigma)
	var buf bytes.Buffer
	w := serial.NewWriter(&buf)
	tr.Encode(w)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr2, err := DecodeTree(serial.NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	checkSeqEqual(t, tr, tr2, ns)
}

func checkSeqEqual(t *testing.T, a, b Seq, ns naiveSeq) {
	t.Helper()
	if a.Len() != b.Len() || a.Sigma() != b.Sigma() || a.NumNodes() != b.NumNodes() {
		t.Fatal("shape differs after decode")
	}
	for i := 0; i < a.Len(); i += 7 {
		if a.Access(i) != b.Access(i) {
			t.Fatalf("Access(%d) differs", i)
		}
	}
	for c := uint32(0); c < a.Sigma(); c += 3 {
		for i := 0; i <= a.Len(); i += 97 {
			if a.Rank(c, i) != b.Rank(c, i) {
				t.Fatalf("Rank(%d,%d) differs", c, i)
			}
		}
		if cnt := a.Count(c); cnt > 0 && a.Select(c, cnt) != b.Select(c, cnt) {
			t.Fatalf("Select(%d) differs", c)
		}
	}
	// Traversal structure (leaf ranks, full flags) must survive.
	type leafInfo struct {
		sym    uint32
		rb, re int
	}
	collect := func(s Seq) []leafInfo {
		var out []leafInfo
		s.Traverse(3, s.Len()-3, func(node NodeID, leaf bool, sym uint32, rb, re int, full bool) bool {
			if leaf {
				out = append(out, leafInfo{sym, rb, re})
			}
			return true
		})
		return out
	}
	la, lb := collect(a), collect(b)
	if len(la) != len(lb) {
		t.Fatalf("leaf counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("leaf %d differs: %+v vs %+v", i, la[i], lb[i])
		}
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := DecodeMatrix(serial.NewReader(bytes.NewReader([]byte("nope")))); err == nil {
		t.Fatal("garbage accepted as matrix")
	}
	if _, err := DecodeTree(serial.NewReader(bytes.NewReader([]byte("nope")))); err == nil {
		t.Fatal("garbage accepted as tree")
	}
}
