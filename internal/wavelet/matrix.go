package wavelet

import (
	"fmt"
	"math/bits"
	"sort"

	"ringrpq/internal/bitvec"
)

// Matrix is a wavelet matrix (Claude, Navarro & Ordóñez), the alternative
// wavelet-tree layout the paper's artifact uses for its large alphabets:
// one bitvector per bit level (MSB first); at each level all zeros of the
// previous level precede all ones. Node ranges remain contiguous, so the
// same heap-ordered NodeID scheme as Tree applies with id = 2^level +
// prefix, where prefix is the symbol's high bits consumed so far.
type Matrix struct {
	n      int
	sigma  uint32
	width  int // bit levels
	levels []*bitvec.Vector
	zeros  []int // zeros[l] = number of 0-bits at level l
	counts []int // counts[c] = occurrences of symbols < c

	// bottomStart[c] is the position where c's (contiguous) occurrences
	// begin at the virtual leaf level. The bottom order is the
	// bit-reversal permutation of the symbols, so this is a prefix sum
	// of counts in that order; it lets Traverse and Intersect report
	// leaf occurrence-rank ranges without tracking node boundaries
	// (halving the rank queries per visited node).
	bottomStart []int
}

// NewMatrix builds a wavelet matrix over data with symbols in [0, sigma).
func NewMatrix(data []uint32, sigma uint32) *Matrix {
	if sigma == 0 {
		sigma = 1
	}
	width := 1
	for 1<<width < int(sigma) {
		width++
	}
	m := &Matrix{n: len(data), sigma: sigma, width: width}
	m.counts = make([]int, sigma+1)
	for _, c := range data {
		if c >= sigma {
			panic(fmt.Sprintf("wavelet: symbol %d out of alphabet [0,%d)", c, sigma))
		}
		m.counts[c+1]++
	}
	for c := uint32(0); c < sigma; c++ {
		m.counts[c+1] += m.counts[c]
	}

	m.levels = make([]*bitvec.Vector, width)
	m.zeros = make([]int, width)
	cur := make([]uint32, len(data))
	copy(cur, data)
	next := make([]uint32, len(data))
	for l := 0; l < width; l++ {
		bit := uint(width - 1 - l)
		bb := bitvec.NewBuilder(len(cur))
		for _, c := range cur {
			bb.Append(c>>bit&1 == 1)
		}
		m.levels[l] = bb.Build()
		m.zeros[l] = m.levels[l].Zeros()
		// Stable partition: zeros first, then ones.
		zi, oi := 0, m.zeros[l]
		for _, c := range cur {
			if c>>bit&1 == 0 {
				next[zi] = c
				zi++
			} else {
				next[oi] = c
				oi++
			}
		}
		cur, next = next, cur
	}

	// Bottom-level layout: symbols ordered by their width-bit reversal.
	order := make([]uint32, sigma)
	for c := uint32(0); c < sigma; c++ {
		order[c] = c
	}
	sort.Slice(order, func(i, j int) bool {
		return revBits(order[i], width) < revBits(order[j], width)
	})
	m.bottomStart = make([]int, sigma)
	pos := 0
	for _, c := range order {
		m.bottomStart[c] = pos
		pos += m.Count(c)
	}
	return m
}

// revBits reverses the low `width` bits of c.
func revBits(c uint32, width int) uint32 {
	var r uint32
	for i := 0; i < width; i++ {
		r = r<<1 | c&1
		c >>= 1
	}
	return r
}

// Len reports the sequence length.
func (m *Matrix) Len() int { return m.n }

// Sigma reports the alphabet size.
func (m *Matrix) Sigma() uint32 { return m.sigma }

// Count reports the total occurrences of c.
func (m *Matrix) Count(c uint32) int {
	if c >= m.sigma {
		return 0
	}
	return m.counts[c+1] - m.counts[c]
}

// CountBelow reports the number of positions holding symbols < c.
func (m *Matrix) CountBelow(c uint32) int {
	if c > m.sigma {
		c = m.sigma
	}
	return m.counts[c]
}

// NumNodes reports the exclusive upper bound on NodeIDs: ids live in
// [1, 2^(width+1)).
func (m *Matrix) NumNodes() int { return 2 << m.width }

// LeafID returns the heap id of the (virtual) leaf of symbol c.
func (m *Matrix) LeafID(c uint32) NodeID { return NodeID(1<<m.width | int(c)) }

// Access returns the symbol at position i.
func (m *Matrix) Access(i int) uint32 {
	var c uint32
	for l := 0; l < m.width; l++ {
		bv := m.levels[l]
		c <<= 1
		if bv.Get(i) {
			c |= 1
			i = m.zeros[l] + bv.Rank1(i)
		} else {
			i = bv.Rank0(i)
		}
	}
	return c
}

// Rank counts occurrences of c in [0, i).
func (m *Matrix) Rank(c uint32, i int) int {
	if c >= m.sigma {
		return 0
	}
	if i > m.n {
		i = m.n
	}
	b := 0
	for l := 0; l < m.width; l++ {
		bv := m.levels[l]
		if c>>(uint(m.width-1-l))&1 == 1 {
			b = m.zeros[l] + bv.Rank1(b)
			i = m.zeros[l] + bv.Rank1(i)
		} else {
			b = bv.Rank0(b)
			i = bv.Rank0(i)
		}
	}
	return i - b
}

// Select returns the position of the k-th (1-based) occurrence of c, or -1.
func (m *Matrix) Select(c uint32, k int) int {
	if c >= m.sigma || k < 1 || k > m.Count(c) {
		return -1
	}
	// Descend recording the start of c's node interval at each level,
	// then map the k-th occurrence back up with select.
	starts := make([]int, m.width+1)
	b := 0
	for l := 0; l < m.width; l++ {
		starts[l] = b
		bv := m.levels[l]
		if c>>(uint(m.width-1-l))&1 == 1 {
			b = m.zeros[l] + bv.Rank1(b)
		} else {
			b = bv.Rank0(b)
		}
	}
	pos := b + k - 1 // absolute position at the virtual leaf level
	for l := m.width - 1; l >= 0; l-- {
		bv := m.levels[l]
		if c>>(uint(m.width-1-l))&1 == 1 {
			pos = bv.Select1(pos - m.zeros[l] + 1)
		} else {
			pos = bv.Select0(pos + 1)
		}
	}
	return pos
}

// Traverse walks the nodes covering [b, e); see Visit. Leaf callbacks
// receive exact occurrence-rank ranges via the precomputed bottom-level
// starts; the full flag is exact at leaves and always false at internal
// nodes (which Seq permits).
func (m *Matrix) Traverse(b, e int, visit Visit) {
	if b < 0 {
		b = 0
	}
	if e > m.n {
		e = m.n
	}
	m.traverse(0, 0, b, e, visit)
}

func (m *Matrix) traverse(level int, prefix uint32, b, e int, visit Visit) {
	if b >= e {
		return
	}
	id := NodeID(1<<level | int(prefix))
	if level == m.width {
		if prefix < m.sigma {
			rb := b - m.bottomStart[prefix]
			re := e - m.bottomStart[prefix]
			visit(id, true, prefix, rb, re, rb == 0 && re == m.Count(prefix))
		}
		return
	}
	if !visit(id, false, 0, b, e, false) {
		return
	}
	bv := m.levels[level]
	z := m.zeros[level]
	lb, le := bv.Rank0(b), bv.Rank0(e)
	m.traverse(level+1, prefix<<1, lb, le, visit)
	m.traverse(level+1, prefix<<1|1, z+(b-lb), z+(e-le), visit)
}

// TraverseMany walks the nodes covering every item range in a single
// descent (see Seq.TraverseMany). Each level maps the surviving items
// through two rank queries per item — shared top-level nodes are visited
// once for the whole batch instead of once per item.
//
//ringrpq:noalloc
func (m *Matrix) TraverseMany(items []RangeMask, visit VisitMany) {
	live := clampRangeMasks(items, m.n)
	if len(live) == 0 {
		return
	}
	arena := getArena(2*len(live) + 16)
	m.traverseMany(0, 0, live, arena, visit)
	putArena(arena)
}

//ringrpq:noalloc
func (m *Matrix) traverseMany(level int, prefix uint32, items []RangeMask, arena *[]RangeMask, visit VisitMany) {
	if len(items) == 0 {
		return
	}
	id := NodeID(1<<level | int(prefix))
	if level == m.width {
		if prefix < m.sigma {
			s := m.bottomStart[prefix]
			for i := range items {
				items[i].B -= s
				items[i].E -= s
			}
			visit(id, true, prefix, items)
		}
		return
	}
	k := visit(id, false, 0, items)
	if k <= 0 {
		return
	}
	base := len(*arena)
	right := splitRangeMasks(m.levels[level], m.zeros[level], items[:k], arena)
	m.traverseMany(level+1, prefix<<1, (*arena)[base:], arena, visit)
	*arena = (*arena)[:base]
	m.traverseMany(level+1, prefix<<1|1, right, arena, visit)
}

// Intersect enumerates symbols present in both ranges.
func (m *Matrix) Intersect(b1, e1, b2, e2 int, emit IntersectFunc) {
	m.intersect(0, 0, b1, e1, b2, e2, emit)
}

func (m *Matrix) intersect(level int, prefix uint32, b1, e1, b2, e2 int, emit IntersectFunc) {
	if b1 >= e1 || b2 >= e2 {
		return
	}
	if level == m.width {
		if prefix < m.sigma {
			s := m.bottomStart[prefix]
			emit(prefix, b1-s, e1-s, b2-s, e2-s)
		}
		return
	}
	bv := m.levels[level]
	z := m.zeros[level]
	l1b, l1e := bv.Rank0(b1), bv.Rank0(e1)
	l2b, l2e := bv.Rank0(b2), bv.Rank0(e2)
	m.intersect(level+1, prefix<<1, l1b, l1e, l2b, l2e, emit)
	m.intersect(level+1, prefix<<1|1,
		z+(b1-l1b), z+(e1-l1e), z+(b2-l2b), z+(e2-l2e), emit)
}

// MinAtLeast returns the smallest symbol ≥ x occurring in [b, e).
func (m *Matrix) MinAtLeast(b, e int, x uint32) (uint32, bool) {
	if b < 0 {
		b = 0
	}
	if e > m.n {
		e = m.n
	}
	c, ok := m.minAtLeast(0, 0, b, e, x)
	if ok && c >= m.sigma {
		return 0, false
	}
	return c, ok
}

func (m *Matrix) minAtLeast(level int, prefix uint32, b, e int, x uint32) (uint32, bool) {
	if b >= e {
		return 0, false
	}
	if level == m.width {
		if prefix >= x {
			return prefix, true
		}
		return 0, false
	}
	rem := uint(m.width - level)
	// Subtree covers symbols [prefix<<rem, (prefix+1)<<rem); prune if all
	// of them are below x (uint64 avoids overflow at shallow levels).
	if (uint64(prefix)+1)<<rem <= uint64(x) {
		return 0, false
	}
	bv := m.levels[level]
	z := m.zeros[level]
	lb, le := bv.Rank0(b), bv.Rank0(e)
	// Left child covers symbols below prefix<<rem + 2^(rem-1).
	if uint64(x) < uint64(prefix)<<rem+1<<(rem-1) {
		if c, ok := m.minAtLeast(level+1, prefix<<1, lb, le, x); ok {
			return c, true
		}
	}
	return m.minAtLeast(level+1, prefix<<1|1, z+(b-lb), z+(e-le), x)
}

// SymRange reports the symbol interval covered by a node: a node id
// encodes (level, prefix) directly, so this is O(1).
func (m *Matrix) SymRange(id NodeID) (uint32, uint32) {
	level := bits.Len(uint(id)) - 1
	prefix := uint64(id) - 1<<uint(level)
	rem := uint(m.width - level)
	lo := prefix << rem
	hi := lo + 1<<rem
	if lo > uint64(m.sigma) {
		lo = uint64(m.sigma)
	}
	if hi > uint64(m.sigma) {
		hi = uint64(m.sigma)
	}
	return uint32(lo), uint32(hi)
}

// PadNodes returns the canonical (segment-tree style) decomposition of the
// padding leaf range [sigma, 2^width) into maximal subtrees.
func (m *Matrix) PadNodes() []NodeID {
	var out []NodeID
	lo := 1<<m.width + int(m.sigma) // leaf-level id of first padding symbol
	hi := 2 << m.width              // exclusive
	for lo < hi {
		if lo&1 == 1 {
			out = append(out, NodeID(lo))
			lo++
		}
		if hi&1 == 1 {
			hi--
			out = append(out, NodeID(hi))
		}
		lo /= 2
		hi /= 2
	}
	return out
}

// SizeBytes reports the index memory footprint.
func (m *Matrix) SizeBytes() int {
	sz := 8*len(m.counts) + 8*len(m.zeros) + 8*len(m.levels) + 8*len(m.bottomStart) + 48
	for _, bv := range m.levels {
		sz += bv.SizeBytes()
	}
	return sz
}
