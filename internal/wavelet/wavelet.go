// Package wavelet implements wavelet trees and wavelet matrices over
// integer alphabets (paper §3.5). Beyond the classical access/rank/select
// operations they support the extended capabilities the RPQ algorithm
// builds on:
//
//   - enumerating the distinct symbols of a range together with their
//     occurrence-rank ranges (one backward-search step per symbol, §4.1);
//   - externally-filtered traversals, where the caller prunes subtrees by
//     consulting per-node metadata such as the B[v] automaton masks (§4.1)
//     and the D[v] visited-state masks (§4.2), addressed by heap-ordered
//     node ids;
//   - range intersection and "smallest symbol ≥ x in range" queries used
//     by the join-like fast paths (§5) and the Leapfrog extension (§6).
//
// Both implementations satisfy Seq; the paper's artifact uses wavelet
// matrices, and the ablation benchmarks compare the two.
package wavelet

// NodeID identifies a wavelet-tree node in heap order: the root is 1 and
// the children of v are 2v and 2v+1. Leaf ids can be obtained via LeafID.
// Callers use NodeIDs to attach per-node metadata in flat arrays of size
// NumNodes().
type NodeID int

// Parent returns the heap parent of a node (the root's parent is 0).
func (id NodeID) Parent() NodeID { return id / 2 }

// Root is the NodeID of the root of every wavelet tree.
const Root NodeID = 1

// Visit is the callback of Traverse. It receives the node id, whether the
// node is a leaf, the leaf's symbol (valid only when leaf), the local
// half-open range covered within the node, and a full flag. For leaves
// the local range equals the range of occurrence ranks of the symbol,
// i.e. the range to which a backward search step by sym maps (up to the
// C-array offset), and full reports exactly whether the range spans all
// occurrences. For internal nodes the range is implementation-local and
// full is only a hint: true implies full coverage, but implementations
// may always report false. Returning false prunes the subtree.
type Visit func(node NodeID, leaf bool, sym uint32, b, e int, full bool) bool

// IntersectFunc receives a symbol present in both query ranges together
// with its occurrence-rank ranges in each.
type IntersectFunc func(c uint32, b1, e1, b2, e2 int)

// Seq is the sequence capability required by the ring and the RPQ engine.
type Seq interface {
	// Len reports the sequence length.
	Len() int
	// Sigma reports the alphabet size; symbols are in [0, Sigma).
	Sigma() uint32
	// Access returns the symbol at position i.
	Access(i int) uint32
	// Rank counts occurrences of c in the prefix [0, i).
	Rank(c uint32, i int) int
	// Select returns the position of the k-th (1-based) occurrence of c,
	// or -1 if there are fewer than k.
	Select(c uint32, k int) int
	// Count reports the total occurrences of c.
	Count(c uint32) int
	// NumNodes reports an exclusive upper bound on NodeIDs.
	NumNodes() int
	// LeafID returns the NodeID of the leaf representing c.
	LeafID(c uint32) NodeID
	// Traverse walks the nodes covering positions [b, e), consulting visit
	// for pruning (see Visit).
	Traverse(b, e int, visit Visit)
	// Intersect enumerates the symbols occurring in both [b1,e1) and
	// [b2,e2), with their occurrence-rank ranges.
	Intersect(b1, e1, b2, e2 int, emit IntersectFunc)
	// MinAtLeast returns the smallest symbol ≥ x occurring in [b, e).
	MinAtLeast(b, e int, x uint32) (uint32, bool)
	// SymRange reports the half-open symbol interval [lo, hi) a node
	// covers (clamped to the alphabet; empty for pure padding nodes).
	SymRange(id NodeID) (lo, hi uint32)
	// PadNodes returns the canonical roots of maximal subtrees that cover
	// no alphabet symbol (the wavelet matrix pads the alphabet to a power
	// of two). Callers maintaining per-node metadata keyed by NodeID can
	// pre-mark these so that bottom-up aggregation is not blocked by
	// never-visited padding leaves. Empty for layouts without padding.
	PadNodes() []NodeID
	// SizeBytes reports the index memory footprint.
	SizeBytes() int
}

// RangeDistinct enumerates the distinct symbols in [b, e) of s in
// increasing order, with their occurrence-rank ranges. This is the
// "warmup" algorithm at the end of §3.5: O(log σ) per reported symbol.
func RangeDistinct(s Seq, b, e int, emit func(c uint32, rb, re int)) {
	s.Traverse(b, e, func(node NodeID, leaf bool, sym uint32, lb, le int, full bool) bool {
		if leaf {
			emit(sym, lb, le)
		}
		return true
	})
}
