// Package wavelet implements wavelet trees and wavelet matrices over
// integer alphabets (paper §3.5). Beyond the classical access/rank/select
// operations they support the extended capabilities the RPQ algorithm
// builds on:
//
//   - enumerating the distinct symbols of a range together with their
//     occurrence-rank ranges (one backward-search step per symbol, §4.1);
//   - externally-filtered traversals, where the caller prunes subtrees by
//     consulting per-node metadata such as the B[v] automaton masks (§4.1)
//     and the D[v] visited-state masks (§4.2), addressed by heap-ordered
//     node ids;
//   - range intersection and "smallest symbol ≥ x in range" queries used
//     by the join-like fast paths (§5) and the Leapfrog extension (§6).
//
// Both implementations satisfy Seq; the paper's artifact uses wavelet
// matrices, and the ablation benchmarks compare the two.
package wavelet

import (
	"sync"

	"ringrpq/internal/bitvec"
)

// NodeID identifies a wavelet-tree node in heap order: the root is 1 and
// the children of v are 2v and 2v+1. Leaf ids can be obtained via LeafID.
// Callers use NodeIDs to attach per-node metadata in flat arrays of size
// NumNodes().
type NodeID int

// Parent returns the heap parent of a node (the root's parent is 0).
func (id NodeID) Parent() NodeID { return id / 2 }

// Root is the NodeID of the root of every wavelet tree.
const Root NodeID = 1

// Visit is the callback of Traverse. It receives the node id, whether the
// node is a leaf, the leaf's symbol (valid only when leaf), the local
// half-open range covered within the node, and a full flag. For leaves
// the local range equals the range of occurrence ranks of the symbol,
// i.e. the range to which a backward search step by sym maps (up to the
// C-array offset), and full reports exactly whether the range spans all
// occurrences. For internal nodes the range is implementation-local and
// full is only a hint: true implies full coverage, but implementations
// may always report false. Returning false prunes the subtree.
type Visit func(node NodeID, leaf bool, sym uint32, b, e int, full bool) bool

// IntersectFunc receives a symbol present in both query ranges together
// with its occurrence-rank ranges in each.
type IntersectFunc func(c uint32, b1, e1, b2, e2 int)

// RangeMask is one item of a multi-range traversal: the half-open
// position range [B, E) carrying a caller-defined 64-bit mask (the RPQ
// engine stores active-state sets in it) and an opaque Tag. The Tag
// rides along unchanged and keeps items from coalescing across tags —
// the cross-query traversal grouping stores the owning query's index in
// it so one descent can serve many queries' frontiers. Single-query
// traversals leave it zero and behave exactly as before.
type RangeMask struct {
	B, E int
	Mask uint64
	Tag  uint32
}

// VisitMany is the callback of TraverseMany. At an internal node it
// receives the items whose ranges intersect the node, mapped to
// node-local positions; the callback may compact the slice in place and
// returns the number of surviving items (a prefix) — returning 0 prunes
// the subtree. At a leaf the items hold occurrence-rank ranges of sym
// (exactly as Visit reports them) and the return value is ignored.
type VisitMany func(node NodeID, leaf bool, sym uint32, items []RangeMask) int

// pushRangeMask appends it to *arena, merging with the previous item
// when adjacent with an equal mask. Empty items are dropped. Entries at
// indices below floor belong to an enclosing traversal frame (different
// node-local coordinates) and are never merged into.
func pushRangeMask(arena *[]RangeMask, floor int, it RangeMask) {
	if it.B >= it.E {
		return
	}
	a := *arena
	if n := len(a); n > floor && a[n-1].E == it.B && a[n-1].Mask == it.Mask && a[n-1].Tag == it.Tag {
		a[n-1].E = it.E
		return
	}
	*arena = append(a, it)
}

// arenaPool recycles the left-child scratch arenas of TraverseMany
// descents. A batched BFS issues one multi-range descent per frontier
// level, and the per-call arena dominated its allocation profile; the
// pool cannot live on Matrix/Tree because those are immutable and
// shared across goroutines.
var arenaPool = sync.Pool{New: func() any {
	a := make([]RangeMask, 0, 64)
	return &a
}}

// getArena returns an empty arena with capacity for at least n items.
func getArena(n int) *[]RangeMask {
	ap := arenaPool.Get().(*[]RangeMask)
	if cap(*ap) < n {
		*ap = make([]RangeMask, 0, n)
	}
	*ap = (*ap)[:0]
	return ap
}

func putArena(ap *[]RangeMask) { arenaPool.Put(ap) }

// clampRangeMasks clamps every item to [0, n) and merges adjacent
// same-mask items in place, returning the normalised prefix (the shared
// TraverseMany prologue).
func clampRangeMasks(items []RangeMask, n int) []RangeMask {
	live := items[:0]
	for _, it := range items {
		if it.B < 0 {
			it.B = 0
		}
		if it.E > n {
			it.E = n
		}
		pushRangeMask(&live, 0, it)
	}
	return live
}

// splitRangeMasks maps the items of one wavelet node through its
// bitvector: left-child ranges are appended to *arena and right-child
// ranges compacted into items in place (offset by z, the start of the
// right child's position space — the zeros count for a matrix level,
// zero for a tree node), both coalescing adjacent same-mask ranges.
// Items that merely touch (frontier ranges with different masks) share
// a boundary, whose rank is computed once. It returns the right-child
// prefix of items.
func splitRangeMasks(bv *bitvec.Vector, z int, items []RangeMask, arena *[]RangeMask) []RangeMask {
	base := len(*arena)
	prevPos, prevRank := -1, 0
	w := 0
	for i := range items {
		it := items[i]
		lb := prevRank
		if it.B != prevPos {
			lb = bv.Rank0(it.B)
		}
		le := bv.Rank0(it.E)
		prevPos, prevRank = it.E, le
		pushRangeMask(arena, base, RangeMask{B: lb, E: le, Mask: it.Mask, Tag: it.Tag})
		rb, re := z+(it.B-lb), z+(it.E-le)
		if rb >= re {
			continue
		}
		if w > 0 && items[w-1].E == rb && items[w-1].Mask == it.Mask && items[w-1].Tag == it.Tag {
			items[w-1].E = re
			continue
		}
		items[w] = RangeMask{B: rb, E: re, Mask: it.Mask, Tag: it.Tag}
		w++
	}
	return items[:w]
}

// Seq is the sequence capability required by the ring and the RPQ engine.
type Seq interface {
	// Len reports the sequence length.
	Len() int
	// Sigma reports the alphabet size; symbols are in [0, Sigma).
	Sigma() uint32
	// Access returns the symbol at position i.
	Access(i int) uint32
	// Rank counts occurrences of c in the prefix [0, i).
	Rank(c uint32, i int) int
	// Select returns the position of the k-th (1-based) occurrence of c,
	// or -1 if there are fewer than k.
	Select(c uint32, k int) int
	// Count reports the total occurrences of c.
	Count(c uint32) int
	// NumNodes reports an exclusive upper bound on NodeIDs.
	NumNodes() int
	// LeafID returns the NodeID of the leaf representing c.
	LeafID(c uint32) NodeID
	// Traverse walks the nodes covering positions [b, e), consulting visit
	// for pruning (see Visit).
	Traverse(b, e int, visit Visit)
	// TraverseMany walks the nodes covering every item range in one
	// root-to-leaf descent, splitting the item list at each node instead
	// of re-descending from the root per item and coalescing adjacent
	// ranges that carry the same mask (the frontier-batched §4
	// traversal). Items must be sorted by B; they should be disjoint
	// for the coalescing to apply, but overlapping items are handled
	// (each behaves as an independent Traverse). The slice is mutated
	// and owned by the traversal until it returns.
	TraverseMany(items []RangeMask, visit VisitMany)
	// Intersect enumerates the symbols occurring in both [b1,e1) and
	// [b2,e2), with their occurrence-rank ranges.
	Intersect(b1, e1, b2, e2 int, emit IntersectFunc)
	// MinAtLeast returns the smallest symbol ≥ x occurring in [b, e).
	MinAtLeast(b, e int, x uint32) (uint32, bool)
	// SymRange reports the half-open symbol interval [lo, hi) a node
	// covers (clamped to the alphabet; empty for pure padding nodes).
	SymRange(id NodeID) (lo, hi uint32)
	// PadNodes returns the canonical roots of maximal subtrees that cover
	// no alphabet symbol (the wavelet matrix pads the alphabet to a power
	// of two). Callers maintaining per-node metadata keyed by NodeID can
	// pre-mark these so that bottom-up aggregation is not blocked by
	// never-visited padding leaves. Empty for layouts without padding.
	PadNodes() []NodeID
	// SizeBytes reports the index memory footprint.
	SizeBytes() int
}

// RangeDistinct enumerates the distinct symbols in [b, e) of s in
// increasing order, with their occurrence-rank ranges. This is the
// "warmup" algorithm at the end of §3.5: O(log σ) per reported symbol.
func RangeDistinct(s Seq, b, e int, emit func(c uint32, rb, re int)) {
	s.Traverse(b, e, func(node NodeID, leaf bool, sym uint32, lb, le int, full bool) bool {
		if leaf {
			emit(sym, lb, le)
		}
		return true
	})
}
