package wavelet

// RangeCountBelow counts the positions of [b, e) holding symbols < x,
// in O(log σ): the dominance counting primitive behind the colored
// range counting of §6 (Gagie et al.), where the ring's selectivity
// statistics reduce distinct-counting to exactly this query over an
// array of previous-occurrence positions.

// RangeCountBelow on Tree.
func (t *Tree) RangeCountBelow(b, e int, x uint32) int {
	if b < 0 {
		b = 0
	}
	if e > t.n {
		e = t.n
	}
	return t.rangeCountBelow(1, 0, t.sigma, b, e, x)
}

func (t *Tree) rangeCountBelow(id int, lo, hi uint32, b, e int, x uint32) int {
	if b >= e || x <= lo {
		return 0
	}
	if hi <= x {
		return e - b
	}
	if hi-lo == 1 {
		return 0 // lo < x already handled by hi <= x; here lo >= x
	}
	bv := t.nodes[id]
	if bv == nil {
		return 0
	}
	mid := (lo + hi) / 2
	lb, le := bv.Rank0(b), bv.Rank0(e)
	n := t.rangeCountBelow(2*id, lo, mid, lb, le, x)
	if x > mid {
		n += t.rangeCountBelow(2*id+1, mid, hi, b-lb, e-le, x)
	}
	return n
}

// RangeCountBelow on Matrix.
func (m *Matrix) RangeCountBelow(b, e int, x uint32) int {
	if b < 0 {
		b = 0
	}
	if e > m.n {
		e = m.n
	}
	if b >= e || x == 0 {
		return 0
	}
	if uint64(x) >= 1<<uint(m.width) {
		return e - b
	}
	count := 0
	for l := 0; l < m.width; l++ {
		bv := m.levels[l]
		lb, le := bv.Rank0(b), bv.Rank0(e)
		if x>>(uint(m.width-1-l))&1 == 1 {
			// Symbols with a 0-bit here are below x: count and follow
			// the 1-side.
			count += le - lb
			z := m.zeros[l]
			b, e = z+(b-lb), z+(e-le)
		} else {
			b, e = lb, le
		}
		if b >= e {
			break
		}
	}
	return count
}
