package wavelet

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// leafHit records one leaf observation attributable to a single input
// item: (leaf symbol, occurrence-rank range, mask).
type leafHit struct {
	sym    uint32
	rb, re int
	mask   uint64
}

// referenceLeaves runs one classic Traverse per item and collects leaf
// hits — the unbatched ground truth TraverseMany must reproduce (up to
// coalescing of adjacent ranges with equal masks).
func referenceLeaves(s Seq, items []RangeMask) []leafHit {
	var out []leafHit
	for _, it := range items {
		mask := it.Mask
		s.Traverse(it.B, it.E, func(node NodeID, leaf bool, sym uint32, b, e int, full bool) bool {
			if leaf {
				out = append(out, leafHit{sym, b, e, mask})
			}
			return true
		})
	}
	return out
}

// batchedLeaves runs one TraverseMany over all items and collects leaf
// hits; the input slice is copied first because TraverseMany mutates it.
func batchedLeaves(s Seq, items []RangeMask) []leafHit {
	scratch := append([]RangeMask(nil), items...)
	var out []leafHit
	s.TraverseMany(scratch, func(node NodeID, leaf bool, sym uint32, its []RangeMask) int {
		if leaf {
			for _, it := range its {
				out = append(out, leafHit{sym, it.B, it.E, it.Mask})
			}
		}
		return len(its)
	})
	return out
}

// normalizeHits merges per-symbol, per-mask hits into a canonical sorted
// set of covered occurrence positions, so coalesced and uncoalesced
// reports compare equal.
func normalizeHits(hits []leafHit) map[uint64][]int {
	cover := map[uint64]map[int]bool{}
	for _, h := range hits {
		key := uint64(h.sym)<<32 | h.mask&0xffffffff // masks in tests fit 32 bits
		if cover[key] == nil {
			cover[key] = map[int]bool{}
		}
		for i := h.rb; i < h.re; i++ {
			cover[key][i] = true
		}
	}
	out := map[uint64][]int{}
	for key, set := range cover {
		var ps []int
		for p := range set {
			ps = append(ps, p)
		}
		sort.Ints(ps)
		out[key] = ps
	}
	return out
}

func seqsOver(data []uint32, sigma uint32) map[string]Seq {
	return map[string]Seq{
		"matrix": NewMatrix(data, sigma),
		"tree":   NewTree(data, sigma),
	}
}

// randomDisjointItems draws sorted disjoint ranges over [0, n) with
// random small masks.
func randomDisjointItems(rng *rand.Rand, n, count int) []RangeMask {
	if n == 0 {
		return nil
	}
	var cuts []int
	for i := 0; i < 2*count; i++ {
		cuts = append(cuts, rng.Intn(n+1))
	}
	sort.Ints(cuts)
	var items []RangeMask
	for i := 0; i+1 < len(cuts); i += 2 {
		if cuts[i] < cuts[i+1] {
			items = append(items, RangeMask{B: cuts[i], E: cuts[i+1], Mask: 1 << uint(rng.Intn(8))})
		}
	}
	return items
}

// TraverseMany over random disjoint sorted items must see exactly the
// leaves the per-item Traverse sees, with identical occurrence coverage
// per (symbol, mask).
func TestTraverseManyMatchesTraverse(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		sigma := uint32(1 + rng.Intn(37))
		data := make([]uint32, n)
		for i := range data {
			data[i] = uint32(rng.Intn(int(sigma)))
		}
		items := randomDisjointItems(rng, n, 1+rng.Intn(8))
		for name, s := range seqsOver(data, sigma) {
			want := normalizeHits(referenceLeaves(s, items))
			got := normalizeHits(batchedLeaves(s, items))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d %s: batched leaves differ\n got: %v\nwant: %v", seed, name, got, want)
			}
		}
	}
}

// Overlapping items are allowed: each behaves as an independent
// traversal (no coalescing across them is required, but coverage per
// (symbol, mask) must match).
func TestTraverseManyOverlappingItems(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	n, sigma := 200, uint32(17)
	data := make([]uint32, n)
	for i := range data {
		data[i] = uint32(rng.Intn(int(sigma)))
	}
	items := []RangeMask{
		{B: 0, E: 150, Mask: 1},
		{B: 10, E: 60, Mask: 2},
		{B: 10, E: 60, Mask: 2}, // exact duplicate
		{B: 50, E: 200, Mask: 1},
	}
	for name, s := range seqsOver(data, sigma) {
		want := normalizeHits(referenceLeaves(s, items))
		got := normalizeHits(batchedLeaves(s, items))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: overlapping items differ\n got: %v\nwant: %v", name, got, want)
		}
	}
}

// Empty item lists, empty ranges and out-of-bounds ranges must be
// tolerated (clamped or dropped) without visiting anything spurious.
func TestTraverseManyEmptyAndClamped(t *testing.T) {
	data := []uint32{3, 1, 4, 1, 5, 9, 2, 6}
	for name, s := range seqsOver(data, 10) {
		s.TraverseMany(nil, func(NodeID, bool, uint32, []RangeMask) int {
			t.Fatalf("%s: visit called on empty item list", name)
			return 0
		})
		s.TraverseMany([]RangeMask{{B: 3, E: 3, Mask: 1}, {B: 5, E: 4, Mask: 1}},
			func(NodeID, bool, uint32, []RangeMask) int {
				t.Fatalf("%s: visit called on empty ranges", name)
				return 0
			})
		// Clamped: [-5, 3) and [6, 99) must behave as [0, 3) and [6, 8).
		got := normalizeHits(batchedLeaves(s, []RangeMask{{B: -5, E: 3, Mask: 1}, {B: 6, E: 99, Mask: 2}}))
		want := normalizeHits(referenceLeaves(s, []RangeMask{{B: 0, E: 3, Mask: 1}, {B: 6, E: 8, Mask: 2}}))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: clamping differs\n got: %v\nwant: %v", name, got, want)
		}
	}
}

// Adjacent same-mask items must coalesce: a run of unit ranges covering
// [0, n) with one shared mask must behave as the full-range traversal
// and visit each internal node exactly once.
func TestTraverseManyCoalescing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, sigma := 128, uint32(16)
	data := make([]uint32, n)
	for i := range data {
		data[i] = uint32(rng.Intn(int(sigma)))
	}
	for name, s := range seqsOver(data, sigma) {
		var items []RangeMask
		for i := 0; i < n; i++ {
			items = append(items, RangeMask{B: i, E: i + 1, Mask: 42})
		}
		visitsBatched := 0
		s.TraverseMany(items, func(node NodeID, leaf bool, sym uint32, its []RangeMask) int {
			visitsBatched++
			if len(its) != 1 {
				t.Fatalf("%s: node %d sees %d items, want 1 coalesced", name, node, len(its))
			}
			return len(its)
		})
		visitsFull := 0
		s.Traverse(0, n, func(NodeID, bool, uint32, int, int, bool) bool {
			visitsFull++
			return true
		})
		if visitsBatched != visitsFull {
			t.Fatalf("%s: %d batched visits, want the %d of one full-range Traverse",
				name, visitsBatched, visitsFull)
		}
	}
}

// Pruning: returning 0 from an internal node must suppress the whole
// subtree; pruning by mask must drop exactly the pruned items' leaves.
func TestTraverseManyPruning(t *testing.T) {
	data := make([]uint32, 64)
	for i := range data {
		data[i] = uint32(i % 8)
	}
	for name, s := range seqsOver(data, 8) {
		// Prune everything at the root: no leaves.
		leaves := 0
		s.TraverseMany([]RangeMask{{B: 0, E: 64, Mask: 1}},
			func(node NodeID, leaf bool, sym uint32, its []RangeMask) int {
				if leaf {
					leaves++
					return 0
				}
				return 0
			})
		if leaves != 0 {
			t.Fatalf("%s: root pruning leaked %d leaves", name, leaves)
		}
		// Drop one of two masks at internal nodes: only the kept mask's
		// leaves survive.
		s.TraverseMany([]RangeMask{{B: 0, E: 32, Mask: 1}, {B: 32, E: 64, Mask: 2}},
			func(node NodeID, leaf bool, sym uint32, its []RangeMask) int {
				if leaf {
					for _, it := range its {
						if it.Mask != 1 {
							t.Fatalf("%s: pruned mask %d reached leaf %d", name, it.Mask, sym)
						}
					}
					return 0
				}
				k := 0
				for _, it := range its {
					if it.Mask == 1 {
						its[k] = it
						k++
					}
				}
				return k
			})
	}
}

func BenchmarkTraverseMany(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, sigma := 1<<16, uint32(128)
	data := make([]uint32, n)
	for i := range data {
		data[i] = uint32(rng.Intn(int(sigma)))
	}
	m := NewMatrix(data, sigma)
	// A frontier-shaped workload: 1024 short disjoint ranges.
	var base []RangeMask
	for i := 0; i < 1024; i++ {
		b0 := i * (n / 1024)
		base = append(base, RangeMask{B: b0, E: b0 + 8, Mask: 1 << uint(i%8)})
	}
	nop := func(node NodeID, leaf bool, sym uint32, its []RangeMask) int { return len(its) }
	b.Run("batched", func(b *testing.B) {
		scratch := make([]RangeMask, len(base))
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			m.TraverseMany(scratch, nop)
		}
	})
	b.Run("per-item", func(b *testing.B) {
		nop1 := func(NodeID, bool, uint32, int, int, bool) bool { return true }
		for i := 0; i < b.N; i++ {
			for _, it := range base {
				m.Traverse(it.B, it.E, nop1)
			}
		}
	})
}
