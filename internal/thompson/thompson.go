// Package thompson implements the classical Thompson construction of an
// NFA from a regular expression, followed by ε-transition removal — the
// automaton the traditional product-graph RPQ algorithm uses (paper §3.2).
// The BFS baseline evaluates RPQs with it; the ring engine uses the
// Glushkov construction instead (§3.3), and tests cross-check the two.
package thompson

import (
	"fmt"
	"sort"

	"ringrpq/internal/glushkov"
	"ringrpq/internal/pathexpr"
)

// Edge is a labelled transition.
type Edge struct {
	Sym uint32
	To  int32
}

// NFA is an ε-free automaton over symbol ids.
type NFA struct {
	// NumStates is the state count; states are 0..NumStates-1.
	NumStates int
	// Initial is the start state.
	Initial int32
	// Final marks accepting states.
	Final []bool
	// Trans[q] lists the outgoing transitions of q, sorted by (Sym, To).
	Trans [][]Edge
	// Rev[q] lists the incoming transitions of q as (Sym, From) pairs,
	// for backward traversals.
	Rev [][]Edge
}

// Build constructs the Thompson NFA of n, resolves predicate occurrences
// via ids (unresolvable ones become never-matching transitions), removes
// ε-transitions, and returns the result.
func Build(n pathexpr.Node, ids glushkov.SymbolIDs) *NFA {
	c := &constructor{ids: ids}
	frag := c.walk(n)
	nStates := c.next

	// ε-closure per state.
	closure := make([][]int32, nStates)
	for q := int32(0); q < int32(nStates); q++ {
		seen := make(map[int32]bool)
		stack := []int32{q}
		seen[q] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, t := range c.eps[x] {
				if !seen[t] {
					seen[t] = true
					stack = append(stack, t)
				}
			}
		}
		cl := make([]int32, 0, len(seen))
		for x := range seen {
			cl = append(cl, x)
		}
		sort.Slice(cl, func(i, j int) bool { return cl[i] < cl[j] })
		closure[q] = cl
	}

	nfa := &NFA{
		NumStates: nStates,
		Initial:   frag.start,
		Final:     make([]bool, nStates),
		Trans:     make([][]Edge, nStates),
		Rev:       make([][]Edge, nStates),
	}
	// A state accepts if its closure reaches the fragment's accept state.
	for q := 0; q < nStates; q++ {
		for _, x := range closure[q] {
			if x == frag.accept {
				nfa.Final[q] = true
			}
		}
	}
	// q --c--> r in the ε-free NFA iff some x ∈ closure(q) has x --c--> r.
	for q := 0; q < nStates; q++ {
		set := map[Edge]bool{}
		for _, x := range closure[q] {
			for _, t := range c.sym[x] {
				if t.Sym != glushkov.NoSymbol {
					set[t] = true
				}
			}
		}
		edges := make([]Edge, 0, len(set))
		for t := range set {
			edges = append(edges, t)
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Sym != edges[j].Sym {
				return edges[i].Sym < edges[j].Sym
			}
			return edges[i].To < edges[j].To
		})
		nfa.Trans[q] = edges
		for _, t := range edges {
			nfa.Rev[t.To] = append(nfa.Rev[t.To], Edge{t.Sym, int32(q)})
		}
	}
	for q := range nfa.Rev {
		edges := nfa.Rev[q]
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Sym != edges[j].Sym {
				return edges[i].Sym < edges[j].Sym
			}
			return edges[i].To < edges[j].To
		})
	}
	return nfa
}

type frag struct {
	start, accept int32
}

type constructor struct {
	ids  glushkov.SymbolIDs
	next int
	eps  [][]int32
	sym  [][]Edge
}

func (c *constructor) state() int32 {
	c.eps = append(c.eps, nil)
	c.sym = append(c.sym, nil)
	c.next++
	return int32(c.next - 1)
}

func (c *constructor) epsEdge(from, to int32) {
	c.eps[from] = append(c.eps[from], to)
}

func (c *constructor) symEdge(from int32, s uint32, to int32) {
	c.sym[from] = append(c.sym[from], Edge{s, to})
}

// walk builds the classical two-state-per-operator fragments.
func (c *constructor) walk(n pathexpr.Node) frag {
	switch x := n.(type) {
	case pathexpr.Sym:
		s, a := c.state(), c.state()
		id, ok := c.ids(x)
		if !ok {
			id = glushkov.NoSymbol
		}
		c.symEdge(s, id, a)
		return frag{s, a}
	case pathexpr.Eps:
		s, a := c.state(), c.state()
		c.epsEdge(s, a)
		return frag{s, a}
	case pathexpr.Concat:
		f1 := c.walk(x.L)
		f2 := c.walk(x.R)
		c.epsEdge(f1.accept, f2.start)
		return frag{f1.start, f2.accept}
	case pathexpr.Alt:
		f1 := c.walk(x.L)
		f2 := c.walk(x.R)
		s, a := c.state(), c.state()
		c.epsEdge(s, f1.start)
		c.epsEdge(s, f2.start)
		c.epsEdge(f1.accept, a)
		c.epsEdge(f2.accept, a)
		return frag{s, a}
	case pathexpr.Star:
		f := c.walk(x.X)
		s, a := c.state(), c.state()
		c.epsEdge(s, f.start)
		c.epsEdge(s, a)
		c.epsEdge(f.accept, f.start)
		c.epsEdge(f.accept, a)
		return frag{s, a}
	case pathexpr.Plus:
		f := c.walk(x.X)
		s, a := c.state(), c.state()
		c.epsEdge(s, f.start)
		c.epsEdge(f.accept, f.start)
		c.epsEdge(f.accept, a)
		return frag{s, a}
	case pathexpr.Opt:
		f := c.walk(x.X)
		s, a := c.state(), c.state()
		c.epsEdge(s, f.start)
		c.epsEdge(s, a)
		c.epsEdge(f.accept, a)
		return frag{s, a}
	default:
		panic(fmt.Sprintf("thompson: unknown node %T", n))
	}
}

// Match simulates the NFA on a word (for tests).
func (n *NFA) Match(word []uint32) bool {
	cur := map[int32]bool{n.Initial: true}
	for _, c := range word {
		next := map[int32]bool{}
		for q := range cur {
			for _, t := range n.Trans[q] {
				if t.Sym == c {
					next[t.To] = true
				}
			}
		}
		if len(next) == 0 {
			return false
		}
		cur = next
	}
	for q := range cur {
		if n.Final[q] {
			return true
		}
	}
	return false
}

// MatchesEmpty reports whether the automaton accepts the empty word.
func (n *NFA) MatchesEmpty() bool { return n.Final[n.Initial] }
