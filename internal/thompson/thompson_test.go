package thompson

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringrpq/internal/glushkov"
	"ringrpq/internal/pathexpr"
)

func testIDs(s pathexpr.Sym) (uint32, bool) {
	if len(s.Name) != 1 || s.Name[0] < 'a' || s.Name[0] > 'h' {
		return 0, false
	}
	id := uint32(s.Name[0]-'a') * 2
	if s.Inverse {
		id++
	}
	return id, true
}

func toWord(syms []pathexpr.Sym) []uint32 {
	w := make([]uint32, len(syms))
	for i, s := range syms {
		w[i], _ = testIDs(s)
	}
	return w
}

func randomExpr(rng *rand.Rand, depth int) pathexpr.Node {
	if depth == 0 || rng.Intn(3) == 0 {
		return pathexpr.Sym{Name: string(rune('a' + rng.Intn(3))), Inverse: rng.Intn(5) == 0}
	}
	switch rng.Intn(5) {
	case 0:
		return pathexpr.Concat{L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 1:
		return pathexpr.Alt{L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 2:
		return pathexpr.Star{X: randomExpr(rng, depth-1)}
	case 3:
		return pathexpr.Plus{X: randomExpr(rng, depth-1)}
	default:
		return pathexpr.Opt{X: randomExpr(rng, depth-1)}
	}
}

func randomWord(rng *rand.Rand, maxLen int) []pathexpr.Sym {
	w := make([]pathexpr.Sym, rng.Intn(maxLen+1))
	for i := range w {
		w[i] = pathexpr.Sym{Name: string(rune('a' + rng.Intn(3))), Inverse: rng.Intn(5) == 0}
	}
	return w
}

func TestNoEpsilonTransitionsRemain(t *testing.T) {
	// After removal, every transition consumes a concrete symbol; we
	// check by construction: Trans only holds Edge values with real syms.
	n := Build(pathexpr.MustParse("(a|b)*/c?"), testIDs)
	for q, edges := range n.Trans {
		for _, e := range edges {
			if e.Sym == glushkov.NoSymbol {
				t.Fatalf("state %d has a NoSymbol edge", q)
			}
		}
	}
}

func TestMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		expr := randomExpr(rng, 4)
		nfa := Build(expr, testIDs)
		for i := 0; i < 20; i++ {
			w := randomWord(rng, 6)
			if nfa.Match(toWord(w)) != pathexpr.Matches(expr, w) {
				t.Logf("expr=%s word=%v", pathexpr.String(expr), w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAgreesWithGlushkov(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		expr := randomExpr(rng, 4)
		nfa := Build(expr, testIDs)
		a := glushkov.Build(expr, testIDs)
		ge, err := glushkov.NewEngine(a)
		if err != nil {
			return true
		}
		if nfa.MatchesEmpty() != a.Nullable {
			return false
		}
		for i := 0; i < 15; i++ {
			w := toWord(randomWord(rng, 6))
			if nfa.Match(w) != ge.MatchFwd(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestRevMirrorsTrans(t *testing.T) {
	n := Build(pathexpr.MustParse("a/(b|c)+/a?"), testIDs)
	fwd := map[[3]int32]bool{}
	for q, edges := range n.Trans {
		for _, e := range edges {
			fwd[[3]int32{int32(q), int32(e.Sym), e.To}] = true
		}
	}
	count := 0
	for q, edges := range n.Rev {
		for _, e := range edges {
			if !fwd[[3]int32{e.To, int32(e.Sym), int32(q)}] {
				t.Fatalf("Rev edge %v of %d has no forward mirror", e, q)
			}
			count++
		}
	}
	if count != len(fwd) {
		t.Fatalf("Rev has %d edges, Trans has %d", count, len(fwd))
	}
}

func TestUnknownPredicate(t *testing.T) {
	nfa := Build(pathexpr.MustParse("a|z"), testIDs)
	idA, _ := testIDs(pathexpr.Sym{Name: "a"})
	if !nfa.Match([]uint32{idA}) {
		t.Fatal("a|z must accept a")
	}
	nfa2 := Build(pathexpr.MustParse("z"), testIDs)
	if nfa2.Match([]uint32{idA}) || nfa2.MatchesEmpty() {
		t.Fatal("z alone must accept nothing")
	}
}
