package service

import (
	"reflect"
	"runtime"
	"strings"
	"unicode"

	"ringrpq/internal/obs"
)

// Metrics exposure: every field of the Stats snapshot (including the
// nested standing-query, WAL and latency blocks) is mirrored as a
// Prometheus series under the ringrpq_ prefix by a reflection walk, so
// a counter added to Stats automatically appears on /metrics — and
// `make lint-metrics` (TestMetricsCoverage) fails the build if the
// mapping ever develops a gap. String fields become labels on a
// per-block *_info metric; bools become 0/1 gauges.

// gaugeMetrics lists the snapshot fields that are point-in-time values
// rather than monotonically-increasing counters.
var gaugeMetrics = map[string]bool{
	"workers":                     true,
	"queue_cap":                   true,
	"queue_len":                   true,
	"inflight":                    true,
	"expr_entries":                true,
	"pattern_entries":             true,
	"result_entries":              true,
	"result_bytes":                true,
	"standing_active":             true,
	"standing_detached":           true,
	"standing_version":            true,
	"wal_enabled":                 true,
	"wal_wedged":                  true,
	"wal_segments":                true,
	"wal_size_bytes":              true,
	"wal_last_checkpoint_version": true,
}

func isGauge(name string) bool {
	return gaugeMetrics[name] ||
		strings.HasPrefix(name, "latency_") ||
		strings.HasPrefix(name, "eval_latency_")
}

// registerMetrics installs the service's scrape collector: the full
// Stats snapshot plus the two latency histograms and a build-info
// series.
func (s *Service) registerMetrics() {
	s.metrics.Register(func(e *obs.Exposition) {
		e.Info("ringrpq_build_info", "Build facts of the serving binary.",
			map[string]string{
				"go_version": runtime.Version(),
				"goos":       runtime.GOOS,
				"goarch":     runtime.GOARCH,
			})
		exportStruct(e, reflect.ValueOf(s.Stats()), "")
		e.Histogram("ringrpq_request_duration_seconds",
			"End-to-end request latency, enqueue to answer (cache hits excluded).",
			s.latE2E.Snapshot())
		e.Histogram("ringrpq_eval_duration_seconds",
			"Backend evaluation latency (queue wait excluded).",
			s.latEval.Snapshot())
	})
}

// Metrics returns the service's Prometheus registry; it is itself a
// GET /metrics http.Handler.
func (s *Service) Metrics() *obs.Registry { return &s.metrics }

// exportStruct emits one series per leaf field of v. Numeric fields
// become ringrpq_<snake path> counters or gauges, bools become 0/1
// gauges, and string fields are gathered into one constant-1
// ringrpq_<block>_info series labelled with their values.
func exportStruct(e *obs.Exposition, v reflect.Value, prefix string) {
	t := v.Type()
	var labels map[string]string
	for i := 0; i < t.NumField(); i++ {
		f, fv := t.Field(i), v.Field(i)
		name := prefix + snake(f.Name)
		help := "Mirror of service Stats field " + f.Name + "."
		switch fv.Kind() {
		case reflect.Struct:
			exportStruct(e, fv, name+"_")
		case reflect.String:
			if labels == nil {
				labels = make(map[string]string)
			}
			labels[snake(f.Name)] = fv.String()
		case reflect.Bool:
			var val float64
			if fv.Bool() {
				val = 1
			}
			e.Gauge("ringrpq_"+name, help, val)
		case reflect.Float32, reflect.Float64:
			emitNumber(e, name, help, fv.Float())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			emitNumber(e, name, help, float64(fv.Uint()))
		default:
			emitNumber(e, name, help, float64(fv.Int()))
		}
	}
	if len(labels) > 0 {
		block := "ringrpq_" + strings.TrimSuffix(prefix, "_") + "_info"
		e.Info(block, "String facts of the "+strings.TrimSuffix(prefix, "_")+" block.", labels)
	}
}

func emitNumber(e *obs.Exposition, name, help string, v float64) {
	if isGauge(name) {
		e.Gauge("ringrpq_"+name, help, v)
	} else {
		e.Counter("ringrpq_"+name, help, v)
	}
}

// snake converts a Go field name to snake_case, keeping acronym runs
// together: QueueWaitNS → queue_wait_ns, P50MS → p50_ms, WAL → wal.
func snake(name string) string {
	rs := []rune(name)
	var b strings.Builder
	for i, r := range rs {
		if unicode.IsUpper(r) {
			boundary := i > 0 && (!unicode.IsUpper(rs[i-1]) ||
				(i+1 < len(rs) && unicode.IsLower(rs[i+1])))
			if boundary {
				b.WriteByte('_')
			}
			r = unicode.ToLower(r)
		}
		b.WriteRune(r)
	}
	return b.String()
}
