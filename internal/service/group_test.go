package service

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ringrpq/internal/pathexpr"
)

// groupFake wraps fake with a GroupBackend implementation that records
// batch sizes and evaluates members sequentially on the inner fake.
type groupFake struct {
	f      *fake
	shared *groupShared
}

type groupShared struct {
	mu      sync.Mutex
	batches []int
}

func (g *groupFake) Clone() Backend {
	return &groupFake{f: g.f.Clone().(*fake), shared: g.shared}
}

func (g *groupFake) Eval(_ context.Context, subject string, expr pathexpr.Node, object string, limit int, timeout time.Duration, emit func(Solution) bool) error {
	return g.f.Eval(context.Background(), subject, expr, object, limit, timeout, emit)
}

func (g *groupFake) EvalGroup(reqs []GroupRequest) []error {
	g.shared.mu.Lock()
	g.shared.batches = append(g.shared.batches, len(reqs))
	g.shared.mu.Unlock()
	errs := make([]error, len(reqs))
	for i, r := range reqs {
		errs[i] = g.f.Eval(context.Background(), r.Subject, r.Expr, r.Object, r.Limit, r.Timeout, r.Emit)
	}
	return errs
}

// With GroupTraversals on and jobs backed up behind a busy worker, the
// queued 2RPQ jobs must be drained into one EvalGroup call and every
// client must still get its own correct result.
func TestServiceGroupsQueuedJobs(t *testing.T) {
	gate := make(chan struct{})
	inner := newFake(3)
	inner.shared.gate = gate
	gf := &groupFake{f: inner, shared: &groupShared{}}
	s := newTestService(t, gf, Config{
		Workers: 1, QueueDepth: 16,
		GroupTraversals:    true,
		ResultCacheEntries: -1,
	})

	var wg sync.WaitGroup
	results := make([]Result, 5)
	// First job occupies the lone worker (blocked on the gate)...
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = s.Count(context.Background(), Request{Subject: "s0", Expr: "p", Object: "?o"})
	}()
	waitUntil(t, func() bool { return s.Stats().Inflight == 1 })
	// ...while four more back up in the queue.
	for i := 1; i < 5; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = s.Count(context.Background(), Request{
				Subject: fmt.Sprintf("s%d", i), Expr: "p", Object: "?o",
			})
		}()
	}
	waitUntil(t, func() bool { return s.Stats().QueueLen == 4 })
	close(gate)
	wg.Wait()

	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if res.N != 3 {
			t.Fatalf("job %d: count=%d, want 3", i, res.N)
		}
	}
	st := s.Stats()
	if st.Grouped != 4 {
		t.Fatalf("Stats.Grouped=%d, want 4 (batches: %v)", st.Grouped, gf.shared.batches)
	}
	gf.shared.mu.Lock()
	defer gf.shared.mu.Unlock()
	if len(gf.shared.batches) != 1 || gf.shared.batches[0] != 4 {
		t.Fatalf("EvalGroup batches = %v, want [4]", gf.shared.batches)
	}
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// Identical queued jobs must coalesce onto one evaluation: the grouping
// worker runs the query once and fans its Result out to every waiter.
func TestServiceGroupDedupsIdenticalJobs(t *testing.T) {
	gate := make(chan struct{})
	inner := newFake(3)
	inner.shared.gate = gate
	gf := &groupFake{f: inner, shared: &groupShared{}}
	s := newTestService(t, gf, Config{
		Workers: 1, QueueDepth: 16,
		GroupTraversals:    true,
		ResultCacheEntries: -1,
	})

	var wg sync.WaitGroup
	results := make([]Result, 6)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0] = s.Count(context.Background(), Request{Subject: "s0", Expr: "p", Object: "?o"})
	}()
	waitUntil(t, func() bool { return s.Stats().Inflight == 1 })
	// Four identical jobs and one distinct job back up behind the gate.
	for i := 1; i < 6; i++ {
		i := i
		subject := "dup"
		if i == 5 {
			subject = "other"
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = s.Count(context.Background(), Request{Subject: subject, Expr: "p", Object: "?o"})
		}()
	}
	waitUntil(t, func() bool { return s.Stats().QueueLen == 5 })
	close(gate)
	wg.Wait()

	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
		if res.N != 3 {
			t.Fatalf("job %d: count=%d, want 3", i, res.N)
		}
	}
	st := s.Stats()
	if st.Deduped != 3 {
		t.Fatalf("Stats.Deduped=%d, want 3", st.Deduped)
	}
	if st.Grouped != 5 {
		t.Fatalf("Stats.Grouped=%d, want 5", st.Grouped)
	}
	gf.shared.mu.Lock()
	defer gf.shared.mu.Unlock()
	// The drained batch held 5 jobs but only 2 distinct evaluations.
	if len(gf.shared.batches) != 1 || gf.shared.batches[0] != 2 {
		t.Fatalf("EvalGroup batches = %v, want [2]", gf.shared.batches)
	}
}
