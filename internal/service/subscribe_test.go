package service

import (
	"net/url"
	"strings"
	"testing"
	"time"
)

func TestDecodeSubscribeRequest(t *testing.T) {
	cases := []struct {
		name  string
		query string
		ok    bool
		check func(t *testing.T, q SubscribeQuery)
	}{
		{"expr defaults", "expr=p%2B", true, func(t *testing.T, q SubscribeQuery) {
			if q.Mode != "sse" || q.Resume || q.Req.Expr != "p+" || q.Wait != defaultPollWait {
				t.Fatalf("q = %+v", q)
			}
		}},
		{"full rpq", "expr=p/q&subject=a&object=%3Fo&snapshot=true&queue=8&mode=poll&wait=5s", true, func(t *testing.T, q SubscribeQuery) {
			if q.Req.Subject != "a" || q.Req.Object != "?o" || !q.Req.Snapshot || q.Req.QueueDepth != 8 || q.Wait != 5*time.Second {
				t.Fatalf("q = %+v", q)
			}
		}},
		{"pattern", "pattern=%3Fx+p+%3Fy&mode=poll", true, func(t *testing.T, q SubscribeQuery) {
			if q.Req.Pattern != "?x p ?y" || q.Mode != "poll" {
				t.Fatalf("q = %+v", q)
			}
		}},
		{"resume", "id=7&from=42", true, func(t *testing.T, q SubscribeQuery) {
			if !q.Resume || q.ID != 7 || q.From != 42 {
				t.Fatalf("q = %+v", q)
			}
		}},
		{"wait capped", "expr=p&mode=poll&wait=1h", true, func(t *testing.T, q SubscribeQuery) {
			if q.Wait != maxPollWait {
				t.Fatalf("wait = %v", q.Wait)
			}
		}},
		{"missing both", "", false, nil},
		{"both expr and pattern", "expr=p&pattern=%3Fx+p+%3Fy", false, nil},
		{"pattern with subject", "pattern=%3Fx+p+%3Fy&subject=a", false, nil},
		{"resume without from", "id=7", false, nil},
		{"from without id", "expr=p&from=3", false, nil},
		{"resume with expr", "id=7&from=1&expr=p", false, nil},
		{"bad mode", "expr=p&mode=websocket", false, nil},
		{"bad id", "id=x&from=1", false, nil},
		{"bad from", "id=1&from=x", false, nil},
		{"bad snapshot", "expr=p&snapshot=maybe", false, nil},
		{"bad queue", "expr=p&queue=-1", false, nil},
		{"zero queue", "expr=p&queue=0", false, nil},
		{"bad wait", "expr=p&wait=fast", false, nil},
		{"negative wait", "expr=p&wait=-1s", false, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			vals, err := url.ParseQuery(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			q, err := DecodeSubscribeRequest(vals)
			if tc.ok && err != nil {
				t.Fatalf("DecodeSubscribeRequest(%q): %v", tc.query, err)
			}
			if !tc.ok && err == nil {
				t.Fatalf("DecodeSubscribeRequest(%q) = %+v, want error", tc.query, q)
			}
			if tc.check != nil && err == nil {
				tc.check(t, q)
			}
		})
	}
}

// FuzzDecodeSubscribeRequest hardens the subscribe-payload decoder: no
// panic on arbitrary query strings, and every accepted request
// satisfies the decoder's invariants.
func FuzzDecodeSubscribeRequest(f *testing.F) {
	seeds := []string{
		"expr=p%2B",
		"expr=p/q&subject=a&object=%3Fo&snapshot=true&queue=8&mode=poll&wait=5s",
		"pattern=%3Fx+p+%3Fy",
		"id=7&from=42&mode=poll",
		"expr=p&pattern=q",
		"id=&from=",
		"mode=sse&wait=0s",
		"expr=%00%ff&queue=99999999999999999999",
		"snapshot=TRUE&expr=p",
		"from=1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		vals, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		q, err := DecodeSubscribeRequest(vals)
		if err != nil {
			if msg := err.Error(); strings.Contains(msg, "\x00") {
				// Error strings flow into HTTP bodies; keep them sane.
				t.Skip()
			}
			return
		}
		if q.Mode != "sse" && q.Mode != "poll" {
			t.Fatalf("accepted mode %q", q.Mode)
		}
		if q.Wait <= 0 || q.Wait > maxPollWait {
			t.Fatalf("accepted wait %v", q.Wait)
		}
		if q.Resume {
			if q.Req.Expr != "" || q.Req.Pattern != "" {
				t.Fatalf("resume with a registration: %+v", q)
			}
		} else {
			if (q.Req.Expr == "") == (q.Req.Pattern == "") {
				t.Fatalf("accepted request without exactly one of expr/pattern: %+v", q)
			}
			if q.Req.Pattern != "" && (q.Req.Subject != "" || q.Req.Object != "") {
				t.Fatalf("accepted pattern with endpoints: %+v", q)
			}
			if q.Req.QueueDepth < 0 {
				t.Fatalf("accepted negative queue depth: %+v", q)
			}
		}
	})
}
