package service

import "container/list"

// lruCache is a mutex-free LRU map bounded by entry count and by an
// approximate byte total; callers provide the cost of each value when
// inserting. Synchronisation is the caller's job (the Service wraps it
// in its own mutex so hit/miss accounting stays atomic with the
// lookup).
type lruCache struct {
	maxEntries int
	maxBytes   int64

	bytes     int64
	evictions int64
	order     *list.List // front = most recent
	entries   map[string]*list.Element
}

type lruEntry struct {
	key   string
	value any
	cost  int64
}

// newLRUCache builds a cache holding at most maxEntries values and
// maxBytes of accounted cost. Either bound may be 0, disabling the
// cache entirely (every Add is a no-op).
func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		entries:    make(map[string]*list.Element),
	}
}

func (c *lruCache) enabled() bool { return c.maxEntries > 0 && c.maxBytes > 0 }

// Get returns the cached value and marks it most recently used.
func (c *lruCache) Get(key string) (any, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// Add inserts or replaces key. Values costing more than the whole
// cache are not stored.
func (c *lruCache) Add(key string, value any, cost int64) {
	if !c.enabled() || cost > c.maxBytes {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*lruEntry)
		c.bytes += cost - e.cost
		e.value, e.cost = value, cost
		c.order.MoveToFront(el)
	} else {
		c.entries[key] = c.order.PushFront(&lruEntry{key: key, value: value, cost: cost})
		c.bytes += cost
	}
	for c.order.Len() > c.maxEntries || c.bytes > c.maxBytes {
		c.evictOldest()
	}
}

func (c *lruCache) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	e := el.Value.(*lruEntry)
	c.order.Remove(el)
	delete(c.entries, e.key)
	c.bytes -= e.cost
	c.evictions++
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int { return c.order.Len() }

// Bytes reports the accounted cost of the cached entries.
func (c *lruCache) Bytes() int64 { return c.bytes }

// Evictions reports how many entries were evicted over the cache's
// lifetime.
func (c *lruCache) Evictions() int64 { return c.evictions }
