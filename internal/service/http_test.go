package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, b Backend, cfg Config, hcfg HandlerConfig) *httptest.Server {
	t.Helper()
	s := New(b, cfg)
	t.Cleanup(func() { s.Close() })
	srv := httptest.NewServer(NewHandler(s, hcfg))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPQuery(t *testing.T) {
	srv := newTestServer(t, newFake(2), Config{Workers: 1}, HandlerConfig{})

	resp, body := postJSON(t, srv.URL+"/query", `{"subject":"?x","expr":"a/b*","object":"?y"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out ResultJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Count != 2 || len(out.Solutions) != 2 || out.Error != "" {
		t.Fatalf("bad response: %s", body)
	}
	if out.Solutions[0].Object != "a/b*" {
		t.Fatalf("solution: %+v", out.Solutions[0])
	}

	// Second identical call is a cache hit.
	_, body = postJSON(t, srv.URL+"/query", `{"subject":"?x","expr":"a/b*","object":"?y"}`)
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Cached {
		t.Fatalf("want cached: %s", body)
	}

	// Count mode omits solutions.
	_, body = postJSON(t, srv.URL+"/query", `{"expr":"a","count":true}`)
	var cnt ResultJSON
	if err := json.Unmarshal(body, &cnt); err != nil {
		t.Fatal(err)
	}
	if cnt.Count != 2 || cnt.Solutions != nil {
		t.Fatalf("count mode: %s", body)
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	srv := newTestServer(t, newFake(1), Config{Workers: 1}, HandlerConfig{MaxBodyBytes: 1024})
	bigExpr := strings.Repeat("a", 2048)
	for _, tc := range []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{}`, http.StatusBadRequest},                                    // missing expr
		{`{"expr":"((("}`, http.StatusBadRequest},                        // parse error
		{`{"expr":"a","timeout":"soon"}`, http.StatusBadRequest},         // bad duration
		{`{"queries":[{"expr":"a"},{}]}`, http.StatusBadRequest},         // batch item invalid
		{`{"queries":[]}`, http.StatusBadRequest},                        // empty batch
		{`{"expr":"a","limit":-1}`, http.StatusBadRequest},               // negative limit
		{`{"expr":"a","timeout":"-5s"}`, http.StatusBadRequest},          // negative timeout
		{`{"expr":"a","timeout":"0s"}`, http.StatusBadRequest},           // zero timeout
		{`{"expr":"` + bigExpr + `"}`, http.StatusRequestEntityTooLarge}, // oversized body
	} {
		url := srv.URL + "/query"
		if strings.Contains(tc.body, "queries") {
			url = srv.URL + "/batch"
		}
		resp, body := postJSON(t, url, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s → %d (want %d): %s", tc.body, resp.StatusCode, tc.want, body)
		}
	}
}

func TestHTTPBatch(t *testing.T) {
	srv := newTestServer(t, newFake(1), Config{Workers: 2}, HandlerConfig{})
	resp, body := postJSON(t, srv.URL+"/batch",
		`{"queries":[{"expr":"a"},{"expr":"b","count":true}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []ResultJSON `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Results[0].Count != 1 || out.Results[1].Solutions != nil {
		t.Fatalf("batch response: %s", body)
	}
}

func TestHTTPTimeout(t *testing.T) {
	f := newFake(1)
	f.shared.delay = 50 * time.Millisecond
	srv := newTestServer(t, f, Config{Workers: 1}, HandlerConfig{})
	resp, body := postJSON(t, srv.URL+"/query", `{"expr":"a","timeout":"1ms"}`)
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("timeouts should return partial results with 206: %d %s", resp.StatusCode, body)
	}
	var out ResultJSON
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Truncated || !out.TimedOut {
		t.Fatalf("want truncated (and the timed_out alias): %s", body)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	srv := newTestServer(t, newFake(1), Config{Workers: 3},
		HandlerConfig{Info: func() any { return map[string]int{"nodes": 42} }})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Service Stats          `json:"service"`
		Index   map[string]int `json:"index"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Service.Workers != 3 || out.Index["nodes"] != 42 {
		t.Fatalf("stats: %+v", out)
	}

	// Wrong methods 404 under the method-qualified mux patterns.
	resp, err = http.Get(srv.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /query should not be served")
	}
}
