package service

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// This file is the HTTP face of live updates: POST /update accepts one
// batch either as a JSON document ({"add": [...], "del": [...]}) or as
// a bulk NDJSON stream (Content-Type application/x-ndjson, one
// {"op":"add"|"del","s":...,"p":...,"o":...} per line) and applies it
// atomically through Service.Update.

// maxNDJSONLine bounds one NDJSON line; the whole body is already
// bounded by HandlerConfig.MaxBodyBytes.
const maxNDJSONLine = 1 << 20

// DecodeNDJSONUpdates parses a bulk NDJSON update stream into add and
// delete triples. Lines hold one UpdateTripleJSON each: op "add"
// (default when absent) or "del"; blank lines are skipped. Errors
// carry the 1-based line number. Exported for reuse by cmd/rpq and as
// a fuzz target.
func DecodeNDJSONUpdates(r io.Reader) (adds, dels []UpdateTriple, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), maxNDJSONLine)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var t UpdateTripleJSON
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&t); err != nil {
			return nil, nil, fmt.Errorf("update line %d: %w", lineNo, err)
		}
		// One JSON value per line, nothing trailing.
		if dec.More() {
			return nil, nil, fmt.Errorf("update line %d: trailing data after triple", lineNo)
		}
		if t.S == "" || t.P == "" || t.O == "" {
			return nil, nil, fmt.Errorf("update line %d: s, p and o must all be non-empty", lineNo)
		}
		switch t.Op {
		case "", "add":
			adds = append(adds, UpdateTriple{S: t.S, P: t.P, O: t.O})
		case "del":
			dels = append(dels, UpdateTriple{S: t.S, P: t.P, O: t.O})
		default:
			return nil, nil, fmt.Errorf("update line %d: unknown op %q (want add or del)", lineNo, t.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("update line %d: %w", lineNo+1, err)
	}
	return adds, dels, nil
}

// update handles POST /update.
func (h *handler) update(w http.ResponseWriter, r *http.Request) {
	var adds, dels []UpdateTriple
	if strings.Contains(r.Header.Get("Content-Type"), "ndjson") {
		r.Body = http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes)
		var err error
		adds, dels, err = DecodeNDJSONUpdates(r.Body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, err)
			} else {
				writeError(w, http.StatusBadRequest, err)
			}
			return
		}
	} else {
		var u UpdateJSON
		if err := h.decodeBody(w, r, &u); err != nil {
			return
		}
		conv := func(ts []UpdateTripleJSON, kind string) ([]UpdateTriple, error) {
			out := make([]UpdateTriple, 0, len(ts))
			for i, t := range ts {
				if t.S == "" || t.P == "" || t.O == "" {
					return nil, fmt.Errorf("%s[%d]: s, p and o must all be non-empty", kind, i)
				}
				out = append(out, UpdateTriple{S: t.S, P: t.P, O: t.O})
			}
			return out, nil
		}
		var err error
		if adds, err = conv(u.Add, "add"); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if dels, err = conv(u.Del, "del"); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if len(adds) == 0 && len(dels) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty update"))
		return
	}

	start := time.Now()
	res, err := h.s.Update(r.Context(), adds, dels)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, UpdateResultJSON{
		Added:        len(adds),
		Deleted:      len(dels),
		OverlayEdges: res.OverlayEdges,
		Tombstones:   res.Tombstones,
		Epoch:        res.Epoch,
		Version:      res.Version,
		Compacting:   res.Compacting,
		ElapsedMS:    float64(time.Since(start).Microseconds()) / 1e3,
	})
}
