package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestMetricsCoverage is the lint-metrics check: every leaf field of
// the Stats snapshot must surface on /metrics — numeric and bool fields
// as a ringrpq_* series, string fields as a label on the enclosing
// block's *_info series. A field added to Stats (or its nested blocks)
// without a matching series fails here, which `make lint-metrics` runs
// in CI.
func TestMetricsCoverage(t *testing.T) {
	svc := newTestService(t, newFake(2), Config{Workers: 2})
	if res := svc.Query(context.Background(), Request{Subject: "a", Expr: "p", Object: "?o"}); res.Err != nil {
		t.Fatalf("query: %v", res.Err)
	}

	rec := httptest.NewRecorder()
	svc.Metrics().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()

	var missing []string
	var walk func(rt reflect.Type, prefix string)
	walk = func(rt reflect.Type, prefix string) {
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			name := prefix + snake(f.Name)
			switch f.Type.Kind() {
			case reflect.Struct:
				walk(f.Type, name+"_")
			case reflect.String:
				info := "ringrpq_" + strings.TrimSuffix(prefix, "_") + "_info"
				if !infoHasLabel(body, info, snake(f.Name)) {
					missing = append(missing, f.Name+" (expected label "+snake(f.Name)+" on "+info+")")
				}
			default:
				if !hasSeries(body, "ringrpq_"+name) {
					missing = append(missing, "ringrpq_"+name)
				}
			}
		}
	}
	walk(reflect.TypeOf(Stats{}), "")
	if len(missing) > 0 {
		t.Fatalf("Stats fields without a /metrics series:\n  %s", strings.Join(missing, "\n  "))
	}

	for _, h := range []string{"ringrpq_request_duration_seconds", "ringrpq_eval_duration_seconds"} {
		if !hasSeries(body, h+"_count") || !strings.Contains(body, h+`_bucket{le="+Inf"}`) {
			t.Errorf("missing histogram %s", h)
		}
	}
}

// hasSeries reports whether the exposition contains a sample line for
// the exact metric name (not a prefix of a longer name).
func hasSeries(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name) {
			rest := line[len(name):]
			if strings.HasPrefix(rest, " ") || strings.HasPrefix(rest, "{") {
				return true
			}
		}
	}
	return false
}

// infoHasLabel reports whether the info series carries the label key.
func infoHasLabel(body, name, label string) bool {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+"{") && strings.Contains(line, label+"=") {
			return true
		}
	}
	return false
}

// TestMetricsExpositionFormat holds every line of the scrape to the
// Prometheus text format: comments, or `name[{labels}] value`.
func TestMetricsExpositionFormat(t *testing.T) {
	svc := newTestService(t, newFake(1), Config{Workers: 1})
	svc.Query(context.Background(), Request{Subject: "a", Expr: "p", Object: "?o"})

	rec := httptest.NewRecorder()
	svc.Metrics().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q lacks exposition version", ct)
	}

	sample := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9].*$|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? \+Inf$`)
	for i, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "# HELP") || strings.HasPrefix(line, "# TYPE") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("line %d not valid exposition: %q", i+1, line)
		}
	}
}

// TestStatsStringCoversAllFields pins the satellite contract that
// Stats.String renders every field, however deeply nested — counters
// added since PR 1 (and any added later) cannot silently vanish from
// the human-readable summary.
func TestStatsStringCoversAllFields(t *testing.T) {
	svc := newTestService(t, newFake(1), Config{Workers: 1})
	svc.Query(context.Background(), Request{Subject: "a", Expr: "p", Object: "?o"})
	rendered := svc.Stats().String()

	var missing []string
	var walk func(rt reflect.Type, prefix string)
	walk = func(rt reflect.Type, prefix string) {
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			name := prefix + snake(f.Name)
			if f.Type.Kind() == reflect.Struct {
				walk(f.Type, name+".")
				continue
			}
			if !strings.Contains(rendered, name+"=") {
				missing = append(missing, name)
			}
		}
	}
	walk(reflect.TypeOf(Stats{}), "")
	if len(missing) > 0 {
		t.Fatalf("Stats.String() omits fields: %v\nrendered: %s", missing, rendered)
	}
}

// TestLatencyHistogramsInStats verifies the bugfix satellite: after
// evaluations, /stats carries non-zero end-to-end and evaluation-only
// latency summaries.
func TestLatencyHistogramsInStats(t *testing.T) {
	f := newFake(1)
	f.shared.delay = 2 * time.Millisecond
	svc := newTestService(t, f, Config{Workers: 1})
	for i := 0; i < 4; i++ {
		if res := svc.Query(context.Background(), Request{Subject: "a", Expr: "p", Object: "?o", Count: i%2 == 0}); res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
	}
	st := svc.Stats()
	if st.Latency.Count == 0 || st.EvalLatency.Count == 0 {
		t.Fatalf("latency histograms unpopulated: %+v / %+v", st.Latency, st.EvalLatency)
	}
	if st.Latency.P50MS <= 0 || st.Latency.P99MS < st.Latency.P50MS {
		t.Errorf("implausible e2e quantiles: %+v", st.Latency)
	}
	if st.EvalLatency.MaxMS <= 0 {
		t.Errorf("eval max not recorded: %+v", st.EvalLatency)
	}
	if st.Latency.MaxMS < st.EvalLatency.MaxMS/2 {
		t.Errorf("e2e max %v implausibly below eval max %v", st.Latency.MaxMS, st.EvalLatency.MaxMS)
	}
}

// TestSlowQueryLog exercises the threshold-gated slow-query ring
// through the service and its debug endpoint.
func TestSlowQueryLog(t *testing.T) {
	f := newFake(1)
	f.shared.delay = time.Millisecond
	svc := newTestService(t, f, Config{Workers: 1, SlowQueryThreshold: time.Nanosecond, SlowLogCapacity: 4})
	for i := 0; i < 6; i++ {
		svc.Query(context.Background(), Request{Subject: "a", Expr: "p", Object: "?o", Limit: i + 1})
	}
	if got := svc.Stats().SlowQueries; got < 6 {
		t.Fatalf("SlowQueries = %d, want >= 6", got)
	}
	entries := svc.SlowLog().Entries()
	if len(entries) != 4 {
		t.Fatalf("ring retained %d entries, want capacity 4", len(entries))
	}
	for _, e := range entries {
		if e.Kind != "query" || e.Expr != "p" || e.Total <= 0 {
			t.Errorf("bad slow entry: %+v", e)
		}
	}

	h := NewHandler(svc, HandlerConfig{})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowlog", nil))
	var out struct {
		Enabled bool             `json:"enabled"`
		Total   uint64           `json:"total"`
		Entries []map[string]any `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("slowlog decode: %v", err)
	}
	if !out.Enabled || out.Total < 6 || len(out.Entries) != 4 {
		t.Fatalf("slowlog payload: enabled=%v total=%d entries=%d", out.Enabled, out.Total, len(out.Entries))
	}
}

// TestReadyzClosed: /readyz flips to 503 once the service closes while
// /healthz stays a liveness-only 200.
func TestReadyzClosed(t *testing.T) {
	svc := New(newFake(1), Config{Workers: 1})
	h := NewHandler(svc, HandlerConfig{})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("/readyz before close = %d", rec.Code)
	}

	svc.Close()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("/readyz after close = %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "closed") {
		t.Errorf("/readyz 503 lacks reason: %s", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("/healthz after close = %d, want 200 (liveness only)", rec.Code)
	}
}

// TestSnake pins the acronym-aware name mangling the exporter and
// Stats.String share.
func TestSnake(t *testing.T) {
	cases := map[string]string{
		"Workers":               "workers",
		"QueueWaitNS":           "queue_wait_ns",
		"P50MS":                 "p50_ms",
		"MeanMS":                "mean_ms",
		"WAL":                   "wal",
		"ReplayLogBatches":      "replay_log_batches",
		"LastCheckpointVersion": "last_checkpoint_version",
	}
	for in, want := range cases {
		if got := snake(in); got != want {
			t.Errorf("snake(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestProfileSpans drives a profiled request through the HTTP handler
// and checks the rendered span tree: a single request root, the
// expected child kinds properly nested, and child durations that sum
// to no more than the root's.
func TestProfileSpans(t *testing.T) {
	f := newFake(2)
	f.shared.delay = time.Millisecond
	svc := newTestService(t, f, Config{Workers: 1})
	h := NewHandler(svc, HandlerConfig{})

	body := strings.NewReader(`{"subject":"a","expr":"p","object":"?o","profile":true}`)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/query", body)
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("POST /query = %d: %s", rec.Code, rec.Body.String())
	}
	var out ResultJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.Profile == nil {
		t.Fatal("profile:true returned no profile")
	}
	if len(out.Profile.Spans) != 1 || out.Profile.Spans[0].Kind != "request" {
		t.Fatalf("want a single request root span, got %+v", out.Profile.Spans)
	}
	root := out.Profile.Spans[0]

	kinds := map[string]int{}
	var sum float64
	for _, c := range root.Children {
		kinds[c.Kind]++
		sum += c.DurationUS
		if c.StartUS < root.StartUS-1 || c.StartUS+c.DurationUS > root.StartUS+root.DurationUS+1 {
			t.Errorf("child %s [%f, %f] outside root [%f, %f]", c.Kind,
				c.StartUS, c.StartUS+c.DurationUS, root.StartUS, root.StartUS+root.DurationUS)
		}
	}
	for _, want := range []string{"compile", "result_cache", "queue_wait", "eval", "serialize"} {
		if kinds[want] == 0 {
			t.Errorf("missing %s span under root (have %v)", want, kinds)
		}
	}
	if sum > root.DurationUS*1.01+50 {
		t.Errorf("children durations (%.0fus) exceed root total (%.0fus)", sum, root.DurationUS)
	}
	if sum > out.Profile.TotalUS*1.01+50 {
		t.Errorf("children durations (%.0fus) exceed reported total (%.0fus)", sum, out.Profile.TotalUS)
	}

	// An eval span records the solution count; queue_wait precedes eval.
	var evalStart, waitStart float64 = -1, -1
	for _, c := range root.Children {
		switch c.Kind {
		case "eval":
			evalStart = c.StartUS
			if c.Attrs["results"] != 2 {
				t.Errorf("eval span results = %d, want 2", c.Attrs["results"])
			}
		case "queue_wait":
			waitStart = c.StartUS
		}
	}
	if waitStart > evalStart {
		t.Errorf("queue_wait (%.0f) starts after eval (%.0f)", waitStart, evalStart)
	}

	// A second identical profiled request hits the result cache and
	// still returns a profile showing the hit.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/query",
		strings.NewReader(`{"subject":"a","expr":"p","object":"?o","profile":true}`))
	h.ServeHTTP(rec, req)
	var cached ResultJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &cached); err != nil {
		t.Fatalf("decode cached: %v", err)
	}
	if !cached.Cached {
		t.Fatal("second identical query not served from cache")
	}
	if cached.Profile == nil || len(cached.Profile.Spans) != 1 {
		t.Fatalf("cached response lost its profile: %+v", cached.Profile)
	}
	var sawHit bool
	for _, c := range cached.Profile.Spans[0].Children {
		if c.Kind == "result_cache" && c.Attrs["hit"] == 1 {
			sawHit = true
		}
	}
	if !sawHit {
		t.Errorf("cached profile lacks result_cache hit span: %+v", cached.Profile.Spans[0].Children)
	}
}

// TestProfileBatchItems: profiled /batch items each carry their own
// span tree rooted at a service-created request span.
func TestProfileBatchItems(t *testing.T) {
	svc := newTestService(t, newFake(1), Config{Workers: 2, ResultCacheEntries: -1})
	h := NewHandler(svc, HandlerConfig{})
	body := `{"queries":[
		{"subject":"a","expr":"p","object":"?o","profile":true},
		{"subject":"b","expr":"q","object":"?o"}]}`
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/batch", strings.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("POST /batch = %d: %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Results []ResultJSON `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out.Results) != 2 {
		t.Fatalf("got %d results", len(out.Results))
	}
	if out.Results[0].Profile == nil {
		t.Error("profiled batch item lacks profile")
	} else if out.Results[0].Profile.Spans[0].Kind != "request" {
		t.Errorf("batch item profile root = %q", out.Results[0].Profile.Spans[0].Kind)
	}
	if out.Results[1].Profile != nil {
		t.Error("unprofiled batch item unexpectedly has a profile")
	}
}
