package service

// Standing-query support: subscriptions registered through the service
// are tracked so Close terminates them deterministically (SSE and
// long-poll handlers unblock instead of leaking), and the GET/DELETE
// /subscribe endpoints expose them over HTTP with resume-from-version
// semantics.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ringrpq/internal/standing"
)

// StandingStats describes the subscription subsystem for service
// stats: registry counters plus the overlay replay-log depth.
type StandingStats struct {
	// Active counts registered subscriptions; Detached the
	// resumable-but-disconnected subset; Lagged the subscribers whose
	// pending queues overflowed.
	Active, Detached, Lagged int
	// ReplayLogBatches is the overlay replay log's depth.
	ReplayLogBatches int
	// Version is the last data version the registry processed.
	Version uint64
	// Batches counts processed update notices; Incremental /
	// FullReevals / Skipped count per-(subscription, batch) outcomes;
	// Deltas counts pushed deltas; Overflows counts deltas dropped from
	// full pending queues (still resumable from history).
	Batches, Incremental, FullReevals, Skipped int64
	Deltas, Overflows                          int64
}

// StandingBackend is optionally implemented by backends that support
// standing queries (incremental delta subscriptions). All methods must
// be safe for concurrent use.
type StandingBackend interface {
	Subscribe(req standing.Request) (*standing.Sub, error)
	ResumeSubscription(id, from uint64) (*standing.Sub, error)
	Unsubscribe(id uint64) bool
	StandingStats() StandingStats
}

// errNoStanding reports a subscription against a backend that does not
// implement StandingBackend.
var errNoStanding = errors.New("service: backend does not support standing queries")

// Subscribe registers a standing query through the backend and tracks
// the subscription so Close terminates it.
func (s *Service) Subscribe(req standing.Request) (*standing.Sub, error) {
	sb, ok := s.src.(StandingBackend)
	if !ok {
		return nil, errNoStanding
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	sub, err := sb.Subscribe(req)
	if err != nil {
		return nil, err
	}
	if err := s.track(sub); err != nil {
		return nil, err
	}
	return sub, nil
}

// ResumeSubscription reattaches to a subscription, replaying retained
// deltas newer than from (see standing.Registry.Resume).
func (s *Service) ResumeSubscription(id, from uint64) (*standing.Sub, error) {
	sb, ok := s.src.(StandingBackend)
	if !ok {
		return nil, errNoStanding
	}
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	sub, err := sb.ResumeSubscription(id, from)
	if err != nil {
		return nil, err
	}
	if err := s.track(sub); err != nil {
		return nil, err
	}
	return sub, nil
}

// Unsubscribe removes and terminates a subscription by id.
func (s *Service) Unsubscribe(id uint64) bool {
	sb, ok := s.src.(StandingBackend)
	if !ok {
		return false
	}
	s.untrack(id)
	return sb.Unsubscribe(id)
}

// track records a live subscription for Close; if Close already ran
// (or runs concurrently), the subscription is terminated here instead
// of leaking past shutdown.
func (s *Service) track(sub *standing.Sub) error {
	s.subsMu.Lock()
	if s.subsClosed {
		s.subsMu.Unlock()
		sub.Close()
		return ErrClosed
	}
	if s.subs == nil {
		s.subs = map[uint64]*standing.Sub{}
	}
	s.subs[sub.ID()] = sub
	s.subsMu.Unlock()
	return nil
}

func (s *Service) untrack(id uint64) {
	s.subsMu.Lock()
	delete(s.subs, id)
	s.subsMu.Unlock()
}

// CloseSubscriptions terminates every tracked subscription without
// stopping the worker pool: blocked Next calls (and the SSE/long-poll
// handlers driving them) unblock with a terminal error, and later
// Subscribe calls fail closed. It is the first step of a graceful
// HTTP shutdown — the long-lived /subscribe streams must end before
// http.Server.Shutdown can drain its connections. Idempotent; Close
// runs it too, as its final step.
func (s *Service) CloseSubscriptions() { s.closeSubscriptions() }

func (s *Service) closeSubscriptions() {
	s.subsMu.Lock()
	s.subsClosed = true
	subs := s.subs
	s.subs = nil
	s.subsMu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

// standingStats reads the backend's subscription counters (zero when
// unsupported).
func (s *Service) standingStats() StandingStats {
	if sb, ok := s.src.(StandingBackend); ok {
		return sb.StandingStats()
	}
	return StandingStats{}
}

// SubscribeQuery is one decoded GET /subscribe request: either a new
// subscription (Req) or a resume (Resume with ID/From).
type SubscribeQuery struct {
	// Req is the registration for new subscriptions (ignored on
	// resume).
	Req standing.Request
	// Mode is "sse" (default) or "poll".
	Mode string
	// Resume marks a reconnect: ID names the subscription and From the
	// last version the client saw.
	Resume   bool
	ID, From uint64
	// Wait bounds one long-poll round (poll mode only).
	Wait time.Duration
}

// Subscribe endpoint bounds: one poll round waits at most maxPollWait
// (default defaultPollWait), one poll response carries at most
// maxPollDeltas deltas, and SSE connections heartbeat every
// sseHeartbeat of silence.
const (
	defaultPollWait = 30 * time.Second
	maxPollWait     = 5 * time.Minute
	maxPollDeltas   = 64
	sseHeartbeat    = 15 * time.Second
)

// DecodeSubscribeRequest validates and decodes GET /subscribe query
// parameters:
//
//	expr, subject, object  a 2RPQ standing query
//	pattern                a graph-pattern standing query
//	snapshot=true          deliver the current result set first
//	queue=N                per-subscription pending-queue override
//	id=N&from=V            resume subscription N after version V
//	mode=sse|poll          delivery transport (default sse)
//	wait=30s               one long-poll round's bound (poll mode)
func DecodeSubscribeRequest(vals url.Values) (SubscribeQuery, error) {
	var q SubscribeQuery
	q.Mode = vals.Get("mode")
	switch q.Mode {
	case "":
		q.Mode = "sse"
	case "sse", "poll":
	default:
		return q, fmt.Errorf("bad mode %q (want sse or poll)", q.Mode)
	}
	q.Wait = defaultPollWait
	if w := vals.Get("wait"); w != "" {
		d, err := time.ParseDuration(w)
		if err != nil {
			return q, fmt.Errorf("bad wait: %w", err)
		}
		if d <= 0 {
			return q, errors.New("wait must be positive")
		}
		if d > maxPollWait {
			d = maxPollWait
		}
		q.Wait = d
	}

	expr, pattern := vals.Get("expr"), vals.Get("pattern")
	if id := vals.Get("id"); id != "" {
		n, err := strconv.ParseUint(id, 10, 64)
		if err != nil {
			return q, fmt.Errorf("bad id: %w", err)
		}
		from := vals.Get("from")
		if from == "" {
			return q, errors.New("resume needs from=<last seen version>")
		}
		v, err := strconv.ParseUint(from, 10, 64)
		if err != nil {
			return q, fmt.Errorf("bad from: %w", err)
		}
		if expr != "" || pattern != "" {
			return q, errors.New("resume takes no expr or pattern")
		}
		q.Resume, q.ID, q.From = true, n, v
		return q, nil
	}
	if vals.Get("from") != "" {
		return q, errors.New("from needs id=<subscription>")
	}

	switch {
	case expr == "" && pattern == "":
		return q, errors.New("missing expr or pattern")
	case expr != "" && pattern != "":
		return q, errors.New("expr and pattern are mutually exclusive")
	case pattern != "" && (vals.Get("subject") != "" || vals.Get("object") != ""):
		return q, errors.New("pattern subscriptions take no subject or object")
	}
	q.Req = standing.Request{
		Subject: vals.Get("subject"),
		Object:  vals.Get("object"),
		Expr:    expr,
		Pattern: pattern,
	}
	if snap := vals.Get("snapshot"); snap != "" {
		b, err := strconv.ParseBool(snap)
		if err != nil {
			return q, fmt.Errorf("bad snapshot: %w", err)
		}
		q.Req.Snapshot = b
	}
	if qd := vals.Get("queue"); qd != "" {
		n, err := strconv.Atoi(qd)
		if err != nil || n <= 0 {
			return q, errors.New("queue must be a positive integer")
		}
		q.Req.QueueDepth = n
	}
	return q, nil
}

// DeltaJSON is the wire form of one standing.Delta (SSE delta events
// and items of poll responses).
type DeltaJSON struct {
	Version     uint64         `json:"version"`
	Added       []SolutionJSON `json:"added,omitempty"`
	Removed     []SolutionJSON `json:"removed,omitempty"`
	AddedRows   [][]string     `json:"added_rows,omitempty"`
	RemovedRows [][]string     `json:"removed_rows,omitempty"`
}

func toDeltaJSON(d standing.Delta) DeltaJSON {
	out := DeltaJSON{
		Version:     d.Version,
		AddedRows:   d.AddedRows,
		RemovedRows: d.RemovedRows,
	}
	conv := func(ps []standing.Pair) []SolutionJSON {
		if len(ps) == 0 {
			return nil
		}
		sols := make([]SolutionJSON, len(ps))
		for i, p := range ps {
			sols[i] = SolutionJSON{Subject: p.Subject, Object: p.Object}
		}
		return sols
	}
	out.Added = conv(d.Added)
	out.Removed = conv(d.Removed)
	return out
}

// SubscribeResultJSON is the wire form of one long-poll round. Version
// is the resume cursor: pass it back as from= on the next poll (or an
// SSE reconnect).
type SubscribeResultJSON struct {
	ID      uint64      `json:"id"`
	Version uint64      `json:"version"`
	Vars    []string    `json:"vars,omitempty"`
	Deltas  []DeltaJSON `json:"deltas,omitempty"`
	// Lagged reports dropped deltas: resume from the last version this
	// client actually processed to replay them from history.
	Lagged bool `json:"lagged,omitempty"`
	// Closed reports a terminated subscription (unsubscribed, expired
	// or server shutdown); Error carries the cause.
	Closed bool   `json:"closed,omitempty"`
	Error  string `json:"error,omitempty"`
}

// subscribeStatus maps subscription failures to HTTP statuses.
func subscribeStatus(err error) int {
	switch {
	case errors.Is(err, standing.ErrUnknownSubscription):
		return http.StatusNotFound
	case errors.Is(err, standing.ErrTooOld):
		return http.StatusGone
	case errors.Is(err, standing.ErrFutureVersion):
		return http.StatusConflict
	case errors.Is(err, errNoStanding):
		return http.StatusNotImplemented
	case errors.Is(err, standing.ErrClosed), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}

// subscribe serves GET /subscribe: register (or resume) a standing
// query and stream its deltas over SSE or return them in long-poll
// rounds.
func (h *handler) subscribe(w http.ResponseWriter, r *http.Request) {
	sq, err := DecodeSubscribeRequest(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var sub *standing.Sub
	cursor := sq.From
	if sq.Resume {
		sub, err = h.s.ResumeSubscription(sq.ID, sq.From)
	} else {
		sub, err = h.s.Subscribe(sq.Req)
		if err == nil {
			cursor = sub.StartVersion()
		}
	}
	if err != nil {
		writeError(w, subscribeStatus(err), err)
		return
	}
	if sq.Mode == "poll" {
		h.pollSubscription(w, r, sub, cursor, sq.Wait)
		return
	}
	h.sseSubscription(w, r, sub, cursor)
}

// unsubscribe serves DELETE /subscribe?id=N.
func (h *handler) unsubscribe(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.URL.Query().Get("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	if !h.s.Unsubscribe(id) {
		writeError(w, http.StatusNotFound, standing.ErrUnknownSubscription)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "unsubscribed": true})
}

// pollSubscription runs one long-poll round: wait up to the round's
// bound for a delta, drain whatever else is ready, detach (the
// subscription keeps accumulating for the next poll) and respond.
func (h *handler) pollSubscription(w http.ResponseWriter, r *http.Request, sub *standing.Sub, cursor uint64, wait time.Duration) {
	// A poll round may legitimately outwait the server's WriteTimeout;
	// push the write deadline past this round's bound (best-effort —
	// recorders and servers without deadline support just decline).
	http.NewResponseController(w).SetWriteDeadline(time.Now().Add(wait + 30*time.Second)) //nolint:errcheck
	out := SubscribeResultJSON{ID: sub.ID(), Version: cursor, Vars: sub.Vars()}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	d, err := sub.Next(ctx)
	cancel()
	switch {
	case err == nil:
		out.Deltas = append(out.Deltas, toDeltaJSON(d))
		out.Version = d.Version
		for len(out.Deltas) < maxPollDeltas {
			d, ok, derr := sub.TryNext()
			if !ok {
				if errors.Is(derr, standing.ErrLagged) {
					out.Lagged = true
				}
				break
			}
			out.Deltas = append(out.Deltas, toDeltaJSON(d))
			out.Version = d.Version
		}
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		// An empty round: the client polls again from the same cursor.
	case errors.Is(err, standing.ErrLagged):
		out.Lagged = true
	default:
		out.Closed = true
		out.Error = err.Error()
		h.s.untrack(sub.ID())
		writeJSON(w, http.StatusOK, out)
		return
	}
	sub.Detach()
	writeJSON(w, http.StatusOK, out)
}

// sseSubscription streams deltas as server-sent events until the
// client disconnects (the subscription detaches, resumable via
// id/from) or the subscription terminates (a final closed event).
// Quiet periods are bridged with comment heartbeats so dead
// connections are detected.
func (h *handler) sseSubscription(w http.ResponseWriter, r *http.Request, sub *standing.Sub, cursor uint64) {
	if _, ok := w.(http.Flusher); !ok {
		sub.Detach()
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	rc := http.NewResponseController(w)
	// The stream deliberately outlives any server-wide WriteTimeout;
	// dead peers are detected per frame by send below instead.
	rc.SetWriteDeadline(time.Time{}) //nolint:errcheck
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	// send writes one SSE frame and flushes it, reporting failure: an
	// aborted client surfaces as a write (or flush) error long before
	// the request context fires, and a heartbeat-quiet stream with a
	// dead peer would otherwise buffer events forever. Callers must
	// stop streaming on failure.
	send := func(format string, args ...any) bool {
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	ready, _ := json.Marshal(SubscribeResultJSON{ID: sub.ID(), Version: cursor, Vars: sub.Vars()})
	if !send("event: ready\ndata: %s\n\n", ready) {
		sub.Detach()
		return
	}
	for {
		hb, cancel := context.WithTimeout(r.Context(), sseHeartbeat)
		d, err := sub.Next(hb)
		cancel()
		switch {
		case err == nil:
			data, _ := json.Marshal(toDeltaJSON(d))
			if !send("id: %d\nevent: delta\ndata: %s\n\n", d.Version, data) {
				// Broken pipe: tear down promptly, resumable via id/from.
				sub.Detach()
				return
			}
		case r.Context().Err() != nil:
			// Client gone: keep the subscription resumable.
			sub.Detach()
			return
		case errors.Is(err, context.DeadlineExceeded):
			if !send(": keep-alive\n\n") {
				sub.Detach()
				return
			}
		case errors.Is(err, standing.ErrLagged):
			// The client should reconnect with from=<last event id> to
			// replay the dropped deltas from history. Best-effort write:
			// the subscription detaches either way.
			send("event: lagged\ndata: {\"resume\":true}\n\n")
			sub.Detach()
			return
		default:
			msg, _ := json.Marshal(SubscribeResultJSON{ID: sub.ID(), Closed: true, Error: err.Error()})
			send("event: closed\ndata: %s\n\n", msg)
			h.s.untrack(sub.ID())
			return
		}
	}
}
