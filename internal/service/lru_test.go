package service

import "testing"

func TestLRUEntryBound(t *testing.T) {
	c := newLRUCache(2, 1<<20)
	c.Add("a", 1, 1)
	c.Add("b", 2, 1)
	c.Add("c", 3, 1) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted")
	}
	if v, ok := c.Get("b"); !ok || v.(int) != 2 {
		t.Fatal("b lost")
	}
	if c.Len() != 2 || c.Evictions() != 1 {
		t.Fatalf("len=%d evictions=%d", c.Len(), c.Evictions())
	}
}

func TestLRURecency(t *testing.T) {
	c := newLRUCache(2, 1<<20)
	c.Add("a", 1, 1)
	c.Add("b", 2, 1)
	c.Get("a")       // a becomes most recent
	c.Add("c", 3, 1) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived")
	}
}

func TestLRUByteBound(t *testing.T) {
	c := newLRUCache(100, 10)
	c.Add("a", 1, 6)
	c.Add("b", 2, 6) // 12 > 10: evicts a
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by the byte bound")
	}
	if c.Bytes() != 6 {
		t.Fatalf("bytes = %d, want 6", c.Bytes())
	}
	// Oversized values are refused outright.
	c.Add("huge", 3, 11)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("oversized value stored")
	}
}

func TestLRUReplace(t *testing.T) {
	c := newLRUCache(10, 100)
	c.Add("a", 1, 10)
	c.Add("a", 2, 20)
	if v, _ := c.Get("a"); v.(int) != 2 {
		t.Fatal("replace lost the new value")
	}
	if c.Bytes() != 20 || c.Len() != 1 {
		t.Fatalf("bytes=%d len=%d after replace", c.Bytes(), c.Len())
	}
}

func TestLRUDisabled(t *testing.T) {
	for _, c := range []*lruCache{newLRUCache(0, 100), newLRUCache(100, 0)} {
		c.Add("a", 1, 1)
		if _, ok := c.Get("a"); ok || c.enabled() {
			t.Fatal("disabled cache stored a value")
		}
	}
}

func TestExprCacheSharing(t *testing.T) {
	c := newExprCache(64)
	aCanon, aNode, err := c.Compile("a/b*")
	if err != nil {
		t.Fatal(err)
	}
	bCanon, bNode, err := c.Compile(" (a) / (b*) ")
	if err != nil {
		t.Fatal(err)
	}
	if aCanon != bCanon {
		t.Fatalf("canon mismatch: %q vs %q", aCanon, bCanon)
	}
	if aNode != bNode {
		t.Fatal("syntactic variants should share one AST")
	}
	// Adopting the canonical entry for a new spelling IS a cache hit —
	// the parse was cheap, the shared AST (and everything downstream
	// keyed to it) was reused.
	hits, misses := c.Counters()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1 (canonical adoption counts as a hit)", hits, misses)
	}
	// The raw text is now a key too.
	if _, _, err := c.Compile("a/b*"); err != nil {
		t.Fatal(err)
	}
	if hits, _ := c.Counters(); hits != 2 {
		t.Fatalf("hits=%d, want 2", hits)
	}
	// A third spelling of the same expression: hit again, still one miss.
	if _, _, err := c.Compile("((a))/((b)*)"); err != nil {
		t.Fatal(err)
	}
	if hits, misses := c.Counters(); hits != 3 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 3/1", hits, misses)
	}
	// Parse failures count as misses.
	if _, _, err := c.Compile("(("); err == nil {
		t.Fatal("want parse error")
	}
	if _, misses := c.Counters(); misses != 2 {
		t.Fatalf("misses=%d, want 2", misses)
	}
}

func TestPatternCacheSharing(t *testing.T) {
	c := newPatternCache(64)
	aCanon, aQuery, err := c.Compile("?x a/b* ?y . ?y c ?z")
	if err != nil {
		t.Fatal(err)
	}
	bCanon, bQuery, err := c.Compile("  ?x (a)/(b*) ?y .  ?y c ?z  ")
	if err != nil {
		t.Fatal(err)
	}
	if aCanon != bCanon {
		t.Fatalf("canon mismatch: %q vs %q", aCanon, bCanon)
	}
	if aQuery != bQuery {
		t.Fatal("syntactic variants should share one parsed query")
	}
	if _, _, err := c.Compile("?x ((bad ?y"); err == nil {
		t.Fatal("want parse error")
	}
}
