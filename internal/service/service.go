// Package service turns the single-threaded ring RPQ engine into a
// concurrent query service. The ring index is immutable after
// construction, so it can be shared lock-free by any number of
// evaluation engines; what each engine owns privately is a set of
// working arrays (core.Engine). The service multiplexes requests over a
// fixed pool of such engines:
//
//	clients → bounded queue → N workers (one Backend clone each) → shared index
//
// On top of the pool sit two caches that exploit the same immutability:
// a compiled-query cache that canonicalises path expressions and reuses
// parsed ASTs across requests, and an LRU result cache bounded by entry
// count and bytes. Requests carry per-call limits and deadlines, batches
// fan out across the pool, and Close drains the queue for a graceful
// shutdown. This queue → workers → immutable-index seam is where later
// sharding and replication layers plug in.
package service

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/obs"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/query"
	"ringrpq/internal/standing"
)

// Solution is one result mapping of a query (mirrored by the public
// ringrpq.Solution alias).
type Solution struct {
	// Subject and Object name the path's endpoints.
	Subject, Object string
}

// Backend evaluates one query at a time over an immutable index. A
// Backend is not safe for concurrent use; the pool calls Clone once per
// worker and then confines each clone to its goroutine.
type Backend interface {
	// Clone returns an independent evaluator over the same index.
	Clone() Backend
	// Eval evaluates (subject, expr, object), streaming solutions to
	// emit until exhaustion or until emit returns false. Endpoints
	// beginning with '?' are variables. A limit of 0 means unlimited; a
	// timeout of 0 means none; exceeding the timeout returns
	// core.ErrTimeout with the solutions emitted so far still valid.
	// ctx carries request-scoped telemetry (an obs.Trace for profiled
	// requests); cancellation is handled by the service's emit wrapper,
	// so backends need not watch ctx.Done themselves.
	Eval(ctx context.Context, subject string, expr pathexpr.Node, object string, limit int, timeout time.Duration, emit func(Solution) bool) error
}

// PatternBackend is optionally implemented by backends that can
// evaluate graph patterns (Request.Pattern). EvalPattern streams the
// projected, deduplicated result rows of q (values ordered by
// q.OutVars()); limit caps rows and timeout mirrors Eval's contract.
// Requests with Pattern set fail against backends without it.
type PatternBackend interface {
	EvalPattern(ctx context.Context, q *query.Query, limit int, timeout time.Duration, emit func(row []string) bool) error
}

// UpdateTriple is one update triple in string form.
type UpdateTriple struct {
	S, P, O string
}

// UpdateResult reports the index state after an update batch.
type UpdateResult struct {
	// OverlayEdges/Tombstones are the pending completed overlay sizes.
	OverlayEdges, Tombstones int
	// Epoch counts snapshot swaps; Version counts data changes.
	Epoch, Version uint64
	// Compacting reports a background compaction in flight.
	Compacting bool
}

// Updater is optionally implemented by backends whose index accepts
// live updates (Service.Update, POST /update). Apply must be safe for
// concurrent use — it goes to the shared snapshot holder, not through
// the worker pool.
type Updater interface {
	ApplyUpdates(ctx context.Context, adds, dels []UpdateTriple) (UpdateResult, error)
}

// Versioned is optionally implemented by backends whose data can
// change (live updates). DataVersion must advance on every visible
// change — applies and compaction swaps — and be safe for concurrent
// use. The result cache keys its entries to it, so results computed
// against superseded data are never replayed.
type Versioned interface {
	DataVersion() uint64
}

// errNoPatterns reports a pattern request against a backend that does
// not implement PatternBackend.
var errNoPatterns = errors.New("service: backend does not support graph patterns")

// errNoUpdates reports an update against a backend that does not
// implement Updater.
var errNoUpdates = errors.New("service: backend does not support live updates")

// Config tunes a Service. The zero value picks sensible defaults;
// negative cache sizes disable the corresponding cache.
type Config struct {
	// Workers is the pool size (engines evaluating concurrently).
	// Default: GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of requests waiting for a worker;
	// submissions beyond it block until a slot frees or the caller's
	// context fires. Default: 4×Workers.
	QueueDepth int
	// DefaultTimeout applies to requests that carry neither their own
	// timeout nor a context deadline. Default: none.
	DefaultTimeout time.Duration
	// ExprCacheEntries bounds the compiled-expression cache (raw and
	// canonical keys). Default 1024; negative disables.
	ExprCacheEntries int
	// ResultCacheEntries bounds the result cache by entry count.
	// Default 4096; negative disables.
	ResultCacheEntries int
	// ResultCacheBytes bounds the result cache by approximate bytes.
	// Default 64 MiB; negative disables.
	ResultCacheBytes int64
	// GroupTraversals lets workers batch queued 2RPQ jobs into shared
	// traversals when the backend implements GroupBackend (see
	// group.go). Off by default.
	GroupTraversals bool
	// GroupMax caps the jobs one shared traversal serves (the state
	// masks of up to GroupMax queries ride one wavelet descent).
	// Default 8.
	GroupMax int
	// SlowQueryThreshold enables the slow-query log: requests whose
	// end-to-end time (queue wait included) reaches it are recorded in
	// a bounded in-memory ring (GET /debug/slowlog) and mirrored to the
	// default slog logger. 0 disables.
	SlowQueryThreshold time.Duration
	// SlowLogCapacity bounds the retained slow-query entries.
	// Default 128.
	SlowLogCapacity int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.ExprCacheEntries == 0 {
		c.ExprCacheEntries = 1024
	}
	if c.ResultCacheEntries == 0 {
		c.ResultCacheEntries = 4096
	}
	if c.ResultCacheBytes == 0 {
		c.ResultCacheBytes = 64 << 20
	}
	if c.GroupMax <= 0 {
		c.GroupMax = 8
	}
	return c
}

// Request is one query submission: a 2RPQ (Subject/Expr/Object) or,
// when Pattern is set, a graph-pattern query.
type Request struct {
	// Subject and Object are endpoint names; a '?' prefix marks a
	// variable (as in ringrpq.DB.Query).
	Subject, Object string
	// Expr is the path expression source text.
	Expr string
	// Pattern, when non-empty, makes this a graph-pattern request
	// (internal/query syntax); Subject/Expr/Object are ignored and the
	// result arrives as Vars/Rows instead of Solutions. Pattern
	// requests cannot be streamed through QueryFunc.
	Pattern string
	// Limit caps the number of solutions (pattern requests: distinct
	// projected rows); 0 or negative means unlimited.
	Limit int
	// Timeout bounds evaluation; 0 or negative defers to the context
	// deadline and the service's DefaultTimeout.
	Timeout time.Duration
	// Count asks for the solution count only; Result.Solutions (or
	// Rows) stays nil.
	Count bool
	// Profile asks for a per-stage span trace of this request's
	// processing (queue wait, cache probes, compile, evaluation with
	// per-level traversal detail) in Result.Trace — an EXPLAIN ANALYZE
	// for the ring. Profiled requests still read the result cache (the
	// trace then shows the hit) but are excluded from cross-query
	// coalescing so the trace describes exactly one evaluation.
	Profile bool
}

// Result is the outcome of one Request.
type Result struct {
	// Solutions holds the result set (nil for Count and pattern
	// requests). Shared with the result cache: callers must not modify
	// it.
	Solutions []Solution
	// Vars and Rows hold a pattern request's projected result table
	// (Rows nil for Count requests); shared with the result cache like
	// Solutions.
	Vars []string
	Rows [][]string
	// N is the solution count (also set for non-Count requests).
	N int
	// Cached reports a result-cache hit.
	Cached bool
	// Err is nil on success; core.ErrTimeout flags a truncated result
	// (Solutions/N still hold what was found in time).
	Err error
	// Trace is the span trace of a profiled request (Request.Profile or
	// an obs.Trace attached to the submission context); nil otherwise.
	// Render it with Trace.Render. Never shared with the result cache.
	Trace *obs.Trace
}

// ErrClosed reports a submission to a Service after Close.
var ErrClosed = errors.New("service: closed")

// ErrInternal reports an evaluation that panicked on its worker. The
// worker recovers — one bad query must not take down the pool — and
// replaces its backend clone, whose private working state the panic
// may have corrupted.
var ErrInternal = errors.New("service: internal error")

// Stats is a point-in-time snapshot of the service counters.
type Stats struct {
	// Workers and QueueCap echo the configuration; QueueLen is the
	// number of requests currently waiting.
	Workers, QueueCap, QueueLen int
	// Requests counts submissions (batch items count individually);
	// Batches counts Batch calls.
	Requests, Batches int64
	// Inflight is the number of requests being evaluated right now.
	Inflight int64
	// Completed counts requests that finished evaluation (hits are not
	// evaluated and counted under Hits instead).
	Completed int64
	// Grouped counts requests evaluated through shared traversals
	// (groups of ≥2; solo evaluations are not counted).
	Grouped int64
	// Deduped counts requests that shared another identical in-flight
	// request's evaluation instead of running their own (the grouping
	// worker coalesces identical queued jobs; each coalesced set runs
	// once, and Deduped counts the set members beyond the first).
	Deduped int64
	// Hits and Misses count result-cache outcomes of cacheable
	// requests.
	Hits, Misses int64
	// Timeouts counts evaluations cut short by a deadline; Cancelled
	// counts requests abandoned by a deadline-less context (client
	// disconnects); Errors counts evaluations failing otherwise (bad
	// expressions included); Rejected counts submissions whose context
	// fired while the queue was full.
	Timeouts, Cancelled, Errors, Rejected int64
	// Panics counts evaluations that panicked on a worker (recovered;
	// the request failed with ErrInternal and the worker re-cloned its
	// backend).
	Panics int64
	// Updates counts applied update batches; QueueWaitNS accumulates
	// the time evaluated requests spent queued — wait that counts
	// against their deadlines, which are anchored at submission.
	Updates     int64
	QueueWaitNS int64
	// ExprHits/ExprMisses/ExprEntries describe the compiled-expression
	// cache.
	ExprHits, ExprMisses int64
	ExprEntries          int
	// PatternHits/PatternMisses/PatternEntries describe the compiled
	// graph-pattern cache.
	PatternHits, PatternMisses int64
	PatternEntries             int
	// ResultEntries/ResultBytes/ResultEvictions describe the result
	// cache.
	ResultEntries   int
	ResultBytes     int64
	ResultEvictions int64
	// SlowQueries counts requests that crossed the slow-query threshold
	// (0 when the slow-query log is disabled).
	SlowQueries int64
	// Latency summarizes end-to-end request durations (queue wait +
	// evaluation, measured at the worker) and EvalLatency the
	// evaluation-only portion; both come from lock-free log-bucketed
	// histograms, so p50/p95/p99 are available without a Prometheus
	// scrape.
	Latency     LatencySummary
	EvalLatency LatencySummary
	// Standing describes the standing-query subsystem (zero when the
	// backend has no subscription support).
	Standing StandingStats
	// WAL describes the durability layer (Enabled false when the backend
	// has no write-ahead log).
	WAL WALStats
}

// LatencySummary condenses one latency histogram for /stats.
type LatencySummary struct {
	Count  int64
	P50MS  float64
	P90MS  float64
	P95MS  float64
	P99MS  float64
	MaxMS  float64
	MeanMS float64
}

func summarize(s obs.HistSnapshot) LatencySummary {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return LatencySummary{
		Count:  int64(s.Count),
		P50MS:  ms(s.Quantile(0.50)),
		P90MS:  ms(s.Quantile(0.90)),
		P95MS:  ms(s.Quantile(0.95)),
		P99MS:  ms(s.Quantile(0.99)),
		MaxMS:  ms(time.Duration(s.Max)),
		MeanMS: ms(s.Mean()),
	}
}

// WALStats mirrors the backend's durability counters for Stats (see
// ringrpq.WALStats).
type WALStats struct {
	Enabled               bool
	Dir                   string
	FsyncPolicy           string
	Appended              int64
	AppendedBytes         int64
	Fsyncs                int64
	Replayed              int64
	TornBytes             int64
	Segments              int
	SizeBytes             int64
	Checkpoints           int64
	CheckpointErrors      int64
	LastCheckpointVersion uint64
	Wedged                bool
	WedgeReason           string
}

// WALStatser is optionally implemented by backends with a write-ahead
// log; must be safe for concurrent use.
type WALStatser interface {
	WALStats() WALStats
}

// Service is the concurrent query front-end over an immutable index.
// All methods are safe for concurrent use.
type Service struct {
	cfg   Config
	queue chan *job

	// src is the backend the service was built over: updates and data
	// versions go to it directly (both are safe for concurrent use by
	// contract), never through the worker clones.
	src Backend

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	wg     sync.WaitGroup

	exprs    *canonCache[pathexpr.Node]
	patterns *canonCache[*query.Query]

	// subs tracks standing-query subscriptions registered through this
	// service, so Close terminates them (see subscribe.go).
	subsMu     sync.Mutex
	subs       map[uint64]*standing.Sub
	subsClosed bool

	resMu   sync.Mutex
	results *lruCache

	// slow is the bounded slow-query ring (nil when disabled); latE2E
	// and latEval are the end-to-end and evaluation-only latency
	// histograms, fed at the workers. metrics renders all of it (plus
	// every Stats field) as Prometheus text for GET /metrics.
	slow    *obs.SlowLog
	latE2E  obs.Histogram
	latEval obs.Histogram
	metrics obs.Registry

	requests  atomic.Int64
	updates   atomic.Int64
	queueWait atomic.Int64
	batches   atomic.Int64
	inflight  atomic.Int64
	completed atomic.Int64
	grouped   atomic.Int64
	deduped   atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	timeouts  atomic.Int64
	cancelled atomic.Int64
	errs      atomic.Int64
	rejected  atomic.Int64
	panics    atomic.Int64
}

type job struct {
	ctx     context.Context
	req     Request
	node    pathexpr.Node // 2RPQ requests
	pattern *query.Query  // pattern requests
	key     string        // result-cache key; "" = uncacheable
	canon   string        // canonicalised expression (dedup identity)
	version uint64        // data version observed at submission
	// deadline is the request's evaluation deadline, anchored at
	// submission: queue wait counts against the budget, so a request
	// that waited out its timeout evaluates to an immediate (empty,
	// truncated) result instead of getting a fresh budget. Zero means
	// unbounded.
	deadline time.Time
	enqueued time.Time
	stream   func(Solution) bool
	done     chan Result

	// trace is non-nil for profiled jobs; root is the index of the
	// service-created request span (-1 when the caller owns the root,
	// e.g. the HTTP handler, which closes it after serialization).
	trace *obs.Trace
	root  int
	// wait and evalDur are filled at the worker for the latency
	// histograms and the slow-query log.
	wait    time.Duration
	evalDur time.Duration
	grouped bool
}

// cachedResult is one result-cache entry, pinned to the data version
// it was computed against.
type cachedResult struct {
	res     Result
	version uint64
}

// New starts a Service over backend. The backend itself is only used as
// a clone source; the caller may keep using it single-threadedly.
func New(backend Backend, cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		src:      backend,
		queue:    make(chan *job, cfg.QueueDepth),
		exprs:    newExprCache(cfg.ExprCacheEntries),
		patterns: newPatternCache(cfg.ExprCacheEntries),
		results:  newLRUCache(cfg.ResultCacheEntries, cfg.ResultCacheBytes),
		slow:     obs.NewSlowLog(cfg.SlowQueryThreshold, cfg.SlowLogCapacity, slog.Default()),
	}
	s.registerMetrics()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(backend.Clone())
	}
	return s
}

// Query evaluates one request and returns its materialised result set.
func (s *Service) Query(ctx context.Context, req Request) Result {
	req.Count = false
	return s.do(ctx, req, nil)
}

// Count evaluates one request returning only the solution count.
func (s *Service) Count(ctx context.Context, req Request) Result {
	req.Count = true
	return s.do(ctx, req, nil)
}

// Select evaluates one graph-pattern request (req.Pattern) through the
// pool, returning the projected result table in Result.Vars/Rows.
func (s *Service) Select(ctx context.Context, req Request) Result {
	if req.Pattern == "" {
		return Result{Err: errors.New("service: Select needs a Pattern")}
	}
	return s.do(ctx, req, nil)
}

// QueryFunc streams solutions to emit, which runs on a worker goroutine
// and may return false to stop early. Streamed requests bypass the
// result cache. QueryFunc returns only after emit can no longer be
// called.
func (s *Service) QueryFunc(ctx context.Context, req Request, emit func(Solution) bool) error {
	if emit == nil {
		return errors.New("service: nil emit")
	}
	req.Count = false
	return s.do(ctx, req, emit).Err
}

// Batch evaluates requests concurrently across the pool and returns one
// Result per request, in order. Cache hits return without queueing; the
// rest share the pool with every other client.
func (s *Service) Batch(ctx context.Context, reqs []Request) []Result {
	s.batches.Add(1)
	out := make([]Result, len(reqs))
	waiting := make([]chan Result, len(reqs))
	for i, req := range reqs {
		res, ch := s.submit(ctx, req, nil)
		if ch == nil {
			out[i] = res
		} else {
			waiting[i] = ch
		}
	}
	for i, ch := range waiting {
		if ch != nil {
			out[i] = <-ch
		}
	}
	return out
}

// do runs one request to completion.
func (s *Service) do(ctx context.Context, req Request, stream func(Solution) bool) Result {
	res, ch := s.submit(ctx, req, stream)
	if ch == nil {
		return res
	}
	// The worker always sends exactly one Result, even after Close
	// (the queue is drained, not dropped), so this cannot leak. Waiting
	// out the worker also guarantees a streamed emit is never called
	// after QueryFunc returns.
	return <-ch
}

// submit resolves the request against the caches and either returns a
// finished Result (ch == nil) or enqueues a job whose Result will
// arrive on ch.
func (s *Service) submit(ctx context.Context, req Request, stream func(Solution) bool) (Result, chan Result) {
	s.requests.Add(1)
	// Fail fast after Close even for requests the result cache could
	// serve, so post-Close behavior is uniform (always ErrClosed).
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return Result{Err: ErrClosed}, nil
	}
	// Normalise before the cache key is formed: a negative limit would
	// otherwise reach the engine as "stop after the first solution"
	// and be cached as a complete result.
	if req.Limit < 0 {
		req.Limit = 0
	}
	if req.Timeout < 0 {
		req.Timeout = 0
	}
	// A profiled request records into the trace attached to ctx (the
	// HTTP handler's, which owns the root span) or, absent one, into a
	// fresh trace whose root span the worker closes.
	tr := obs.FromContext(ctx)
	root := -1
	if tr == nil && req.Profile {
		tr = obs.New()
		root = tr.Begin(obs.SpanRequest)
		ctx = obs.NewContext(ctx, tr)
	}
	var (
		node  pathexpr.Node
		pat   *query.Query
		canon string
		err   error
	)
	if req.Pattern != "" {
		if stream != nil {
			return Result{Err: errors.New("service: pattern requests cannot be streamed")}, nil
		}
		csp := tr.Begin(obs.SpanCompile)
		canon, pat, err = s.patterns.Compile(req.Pattern)
		tr.End(csp)
	} else {
		csp := tr.Begin(obs.SpanCompile)
		canon, node, err = s.exprs.Compile(req.Expr)
		tr.End(csp)
	}
	if err != nil {
		s.errs.Add(1)
		return Result{Err: err}, nil
	}

	version := s.dataVersion()
	var key string
	if stream == nil && s.results.enabled() {
		key = cacheKey(req, canon)
		rsp := tr.Begin(obs.SpanResultCache)
		s.resMu.Lock()
		v, ok := s.results.Get(key)
		s.resMu.Unlock()
		if ok {
			if e := v.(cachedResult); e.version == version {
				tr.EndVals(rsp, 1)
				tr.End(root)
				s.hits.Add(1)
				res := e.res
				res.Cached = true
				res.Trace = tr
				return res, nil
			}
			// Computed against superseded data: a live update or a
			// compaction swap invalidated it.
			ok = false
		}
		tr.EndVals(rsp, 0)
		if !ok {
			s.misses.Add(1)
		}
	}

	j := &job{ctx: ctx, req: req, node: node, pattern: pat, key: key, canon: canon, version: version, stream: stream, done: make(chan Result, 1), trace: tr, root: root}
	// Anchor the evaluation deadline now: time spent queued counts
	// against the request's budget (the context-deadline clamp is kept).
	t := req.Timeout
	if t <= 0 {
		t = s.cfg.DefaultTimeout
	}
	if t > 0 {
		j.deadline = time.Now().Add(t)
	}
	if dl, ok := ctx.Deadline(); ok && (j.deadline.IsZero() || dl.Before(j.deadline)) {
		j.deadline = dl
	}
	j.enqueued = time.Now()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Result{Err: ErrClosed}, nil
	}
	//lint:ignore locksend the closed-check and enqueue must be atomic vs Close (which takes the write lock); the ctx case bounds the wait
	select {
	case s.queue <- j:
		s.mu.RUnlock()
		return Result{}, j.done
	case <-ctx.Done():
		s.mu.RUnlock()
		s.rejected.Add(1)
		return Result{Err: ctx.Err()}, nil
	}
}

// cacheKey identifies a request by its canonicalised expression and
// every parameter that can change the result set. Components are
// length-prefixed so endpoint names containing any byte (including
// the separator) cannot make distinct requests collide.
func cacheKey(req Request, canon string) string {
	mode := "q"
	if req.Pattern != "" {
		mode = "s"
	}
	if req.Count {
		mode += "c"
	}
	var sb strings.Builder
	sb.WriteString(mode)
	parts := [...]string{req.Subject, canon, req.Object}
	if req.Pattern != "" {
		parts = [...]string{"", canon, ""}
	}
	for _, part := range parts {
		sb.WriteString(strconv.Itoa(len(part)))
		sb.WriteByte(':')
		sb.WriteString(part)
	}
	sb.WriteByte('|')
	sb.WriteString(strconv.Itoa(req.Limit))
	return sb.String()
}

// worker owns one Backend clone and drains the queue until Close.
// With GroupTraversals on and a grouping-capable backend, each pickup
// drains the compatible jobs already queued behind it into one shared
// traversal (group.go).
func (s *Service) worker(b Backend) {
	defer s.wg.Done()
	_, groupCapable := b.(GroupBackend)
	grouping := groupCapable && s.cfg.GroupTraversals
	for j := range s.queue {
		if b == nil {
			// The previous job panicked mid-evaluation; its clone's
			// private working state is suspect, so start a fresh one.
			b = s.src.Clone()
		}
		if grouping {
			if batch := s.drainBatch(j); len(batch) > 1 {
				if !s.runGroupedSafe(b.(GroupBackend), b, batch) {
					b = nil
				}
				continue
			}
		}
		res, ok := s.runSafe(b, j)
		if !ok {
			b = nil
		}
		s.finish(j, &res)
		j.done <- res
	}
}

// finish stamps end-to-end telemetry for one answered job: the latency
// histograms, the slow-query log, and the job's trace (closing the
// service-owned root span and attaching the trace to the result so the
// caller can render it). Cache hits never reach here — submit answers
// them directly.
func (s *Service) finish(j *job, res *Result) {
	total := time.Since(j.enqueued)
	s.latE2E.Observe(total)
	if j.evalDur > 0 {
		s.latEval.Observe(j.evalDur)
	}
	if s.slow != nil && total >= s.slow.Threshold() {
		s.recordSlow(j, res, total)
	}
	if j.trace != nil {
		j.trace.End(j.root)
		res.Trace = j.trace
	}
}

// recordSlow files one slow-query log entry for an answered job.
func (s *Service) recordSlow(j *job, res *Result, total time.Duration) {
	timedOut := errors.Is(res.Err, core.ErrTimeout)
	e := obs.SlowEntry{
		Time:      time.Now(),
		Subject:   j.req.Subject,
		Object:    j.req.Object,
		Expr:      j.req.Expr,
		Pattern:   j.req.Pattern,
		Total:     total,
		QueueWait: j.wait,
		Eval:      j.evalDur,
		Results:   res.N,
		Truncated: timedOut,
		TimedOut:  timedOut,
		Grouped:   j.grouped,
	}
	switch {
	case j.req.Pattern != "":
		e.Kind = "select"
	case j.req.Count:
		e.Kind = "count"
	default:
		e.Kind = "query"
	}
	if res.Err != nil {
		e.Err = res.Err.Error()
	}
	s.slow.Record(e)
}

// runSafe evaluates one job, converting a panic into an ErrInternal
// result; ok is false when the worker's clone must be replaced.
func (s *Service) runSafe(b Backend, j *job) (res Result, ok bool) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.errs.Add(1)
			res = Result{Err: fmt.Errorf("%w: %v", ErrInternal, p)}
			ok = false
		}
	}()
	return s.run(b, j), true
}

// runGroupedSafe is runGrouped behind a recover: on a panic every batch
// member that has not been answered yet receives an ErrInternal result
// (each done channel holds one buffered Result at most, so a member
// answered before the panic is skipped by the non-blocking send).
func (s *Service) runGroupedSafe(gb GroupBackend, b Backend, batch []*job) (ok bool) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			res := Result{Err: fmt.Errorf("%w: %v", ErrInternal, p)}
			for _, j := range batch {
				select {
				case j.done <- res:
					s.errs.Add(1)
				default:
				}
			}
			ok = false
		}
	}()
	s.runGrouped(gb, b, batch)
	return true
}

// run evaluates one job on worker backend b.
func (s *Service) run(b Backend, j *job) Result {
	if err := j.ctx.Err(); err != nil {
		s.countCtxErr(err)
		return Result{Err: err}
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer s.completed.Add(1)
	j.wait = time.Since(j.enqueued)
	s.queueWait.Add(j.wait.Nanoseconds())
	j.trace.Add(obs.SpanQueueWait, j.enqueued)

	var timeout time.Duration
	if !j.deadline.IsZero() {
		timeout = time.Until(j.deadline)
		if timeout <= 0 {
			// The queue wait consumed the whole budget: an empty
			// truncated result, exactly as if evaluation had started
			// and timed out immediately.
			s.timeouts.Add(1)
			return Result{Err: core.ErrTimeout}
		}
	}
	if j.pattern != nil {
		return s.runPattern(b, j, timeout)
	}

	var (
		sols    []Solution
		n       int
		stopped error
	)
	emit := func(sol Solution) bool {
		n++
		if j.stream != nil {
			if !j.stream(sol) {
				stopped = errStopped
				return false
			}
		} else if !j.req.Count {
			sols = append(sols, sol)
		}
		// Best-effort cancellation between solutions; the deadline
		// clamp above handles contexts with deadlines even when the
		// traversal emits nothing for a while.
		if n%1024 == 0 && j.ctx.Err() != nil {
			stopped = j.ctx.Err()
			return false
		}
		return true
	}
	esp, evalStart := j.trace.Begin(obs.SpanEval), time.Now()
	err := b.Eval(j.ctx, j.req.Subject, j.node, j.req.Object, j.req.Limit, timeout, emit)
	j.evalDur = time.Since(evalStart)
	j.trace.EndVals(esp, int64(n))
	res := Result{Solutions: sols, N: n, Err: err}
	switch {
	case stopped == errStopped:
		// The caller's emit stopped the stream: a success.
		res.Err = nil
	case stopped != nil:
		s.countCtxErr(stopped)
		res.Err = stopped
	case errors.Is(err, core.ErrTimeout):
		s.timeouts.Add(1)
	case err != nil:
		s.errs.Add(1)
	default:
		s.store(j, res)
	}
	return res
}

// runPattern evaluates one graph-pattern job on worker backend b.
func (s *Service) runPattern(b Backend, j *job, timeout time.Duration) Result {
	pb, ok := b.(PatternBackend)
	if !ok {
		s.errs.Add(1)
		return Result{Err: errNoPatterns}
	}
	var (
		rows    [][]string
		n       int
		stopped error
	)
	emit := func(row []string) bool {
		n++
		if !j.req.Count {
			rows = append(rows, row)
		}
		if n%1024 == 0 && j.ctx.Err() != nil {
			stopped = j.ctx.Err()
			return false
		}
		return true
	}
	esp, evalStart := j.trace.Begin(obs.SpanEval), time.Now()
	err := pb.EvalPattern(j.ctx, j.pattern, j.req.Limit, timeout, emit)
	j.evalDur = time.Since(evalStart)
	j.trace.EndVals(esp, int64(n))
	res := Result{Vars: j.pattern.OutVars(), Rows: rows, N: n, Err: err}
	switch {
	case stopped != nil:
		s.countCtxErr(stopped)
		res.Err = stopped
	case errors.Is(err, core.ErrTimeout):
		s.timeouts.Add(1)
	case err != nil:
		s.errs.Add(1)
	default:
		s.storePattern(j, res)
	}
	return res
}

// storePattern records a complete pattern result in the result cache.
func (s *Service) storePattern(j *job, res Result) {
	if j.key == "" {
		return
	}
	cost := int64(64)
	for _, v := range res.Vars {
		cost += int64(len(v)) + 16
	}
	for _, row := range res.Rows {
		cost += 24
		for _, v := range row {
			cost += int64(len(v)) + 16
		}
	}
	s.resMu.Lock()
	s.results.Add(j.key, cachedResult{res: res, version: j.version}, cost)
	s.resMu.Unlock()
}

// errStopped marks an early stop requested by a streaming callback.
var errStopped = errors.New("service: stream stopped")

// countCtxErr attributes a context failure to the right counter: a
// fired deadline is a timeout, a deadline-less cancellation (client
// disconnect) is not.
func (s *Service) countCtxErr(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.timeouts.Add(1)
	} else {
		s.cancelled.Add(1)
	}
}

// store records a complete result in the result cache.
func (s *Service) store(j *job, res Result) {
	if j.key == "" {
		return
	}
	cost := int64(64)
	for _, sol := range res.Solutions {
		cost += int64(len(sol.Subject)+len(sol.Object)) + 32
	}
	s.resMu.Lock()
	s.results.Add(j.key, cachedResult{res: res, version: j.version}, cost)
	s.resMu.Unlock()
}

// dataVersion reads the backend's current data version (0 for static
// backends).
func (s *Service) dataVersion() uint64 {
	if v, ok := s.src.(Versioned); ok {
		return v.DataVersion()
	}
	return 0
}

// Update applies one live-update batch (adds then dels) through the
// backend's snapshot holder. It does not occupy a worker: updates and
// queries proceed concurrently, and queries started before the update
// finish on the snapshot they pinned. Fails with an error when the
// backend has no live-update support.
func (s *Service) Update(ctx context.Context, adds, dels []UpdateTriple) (UpdateResult, error) {
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return UpdateResult{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return UpdateResult{}, err
	}
	u, ok := s.src.(Updater)
	if !ok {
		return UpdateResult{}, errNoUpdates
	}
	res, err := u.ApplyUpdates(ctx, adds, dels)
	if err == nil {
		s.updates.Add(1)
	}
	return res, err
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	exprHits, exprMisses := s.exprs.Counters()
	patHits, patMisses := s.patterns.Counters()
	s.resMu.Lock()
	rEntries, rBytes, rEvict := s.results.Len(), s.results.Bytes(), s.results.Evictions()
	s.resMu.Unlock()
	return Stats{
		Workers:         s.cfg.Workers,
		QueueCap:        s.cfg.QueueDepth,
		QueueLen:        len(s.queue),
		Requests:        s.requests.Load(),
		Batches:         s.batches.Load(),
		Inflight:        s.inflight.Load(),
		Completed:       s.completed.Load(),
		Grouped:         s.grouped.Load(),
		Deduped:         s.deduped.Load(),
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		Timeouts:        s.timeouts.Load(),
		Cancelled:       s.cancelled.Load(),
		Errors:          s.errs.Load(),
		Rejected:        s.rejected.Load(),
		Panics:          s.panics.Load(),
		Updates:         s.updates.Load(),
		QueueWaitNS:     s.queueWait.Load(),
		ExprHits:        exprHits,
		ExprMisses:      exprMisses,
		ExprEntries:     s.exprs.Len(),
		PatternHits:     patHits,
		PatternMisses:   patMisses,
		PatternEntries:  s.patterns.Len(),
		ResultEntries:   rEntries,
		ResultBytes:     rBytes,
		ResultEvictions: rEvict,
		Standing:        s.standingStats(),
		WAL:             s.walStats(),
		SlowQueries:     int64(s.slow.Total()),
		Latency:         summarize(s.latE2E.Snapshot()),
		EvalLatency:     summarize(s.latEval.Snapshot()),
	}
}

// walStats reads the backend's durability counters (zero when it has no
// write-ahead log).
func (s *Service) walStats() WALStats {
	if ws, ok := s.src.(WALStatser); ok {
		return ws.WALStats()
	}
	return WALStats{}
}

// String renders the complete stats snapshot as name=value pairs. The
// reflection walk includes every field — nested Standing/WAL/latency
// blocks under dotted prefixes — so a counter added to Stats can never
// be silently missing here (service_test asserts each field renders).
func (st Stats) String() string {
	var b strings.Builder
	b.WriteString("service{")
	writeStatsFields(&b, reflect.ValueOf(st), "")
	b.WriteString("}")
	return b.String()
}

// writeStatsFields appends one `prefix.name=value` pair per exported
// field of v, recursing into nested structs.
func writeStatsFields(b *strings.Builder, v reflect.Value, prefix string) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f, fv := t.Field(i), v.Field(i)
		name := prefix + snake(f.Name)
		if fv.Kind() == reflect.Struct {
			writeStatsFields(b, fv, name+".")
			continue
		}
		if b.Len() > len("service{") {
			b.WriteByte(' ')
		}
		switch fv.Kind() {
		case reflect.Float64:
			fmt.Fprintf(b, "%s=%.3f", name, fv.Float())
		case reflect.String:
			fmt.Fprintf(b, "%s=%q", name, fv.String())
		default:
			fmt.Fprintf(b, "%s=%v", name, fv.Interface())
		}
	}
}

// SlowLog returns the service's slow-query log, nil when disabled
// (Config.SlowQueryThreshold unset).
func (s *Service) SlowLog() *obs.SlowLog { return s.slow }

// Closed reports whether Close has begun; the readiness endpoint uses
// it to fail fast during shutdown.
func (s *Service) Closed() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.closed
}

// Close stops accepting requests, drains the queue (queued jobs still
// run to completion), waits for the workers to exit and terminates
// every tracked standing-query subscription — blocked SSE/long-poll
// consumers unblock with a terminal error rather than leak. Close is
// idempotent.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.closeSubscriptions()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	s.closeSubscriptions()
	return nil
}
