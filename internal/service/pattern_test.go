package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ringrpq/internal/pathexpr"
	"ringrpq/internal/query"
)

// patternFake implements Backend + PatternBackend: every pattern
// evaluation emits `rows` fixed rows and counts invocations on the
// shared struct.
type patternFake struct {
	shared *patternFakeShared
}

type patternFakeShared struct {
	evals atomic.Int64
	rows  int
}

func newPatternFake(rows int) *patternFake {
	return &patternFake{shared: &patternFakeShared{rows: rows}}
}

func (f *patternFake) Clone() Backend { return &patternFake{shared: f.shared} }

func (f *patternFake) Eval(_ context.Context, subject string, expr pathexpr.Node, object string, limit int, timeout time.Duration, emit func(Solution) bool) error {
	return nil
}

func (f *patternFake) EvalPattern(_ context.Context, q *query.Query, limit int, timeout time.Duration, emit func([]string) bool) error {
	f.shared.evals.Add(1)
	vars := q.OutVars()
	for i := 0; i < f.shared.rows; i++ {
		if limit > 0 && i >= limit {
			break
		}
		row := make([]string, len(vars))
		for j := range row {
			row[j] = "v"
		}
		if !emit(row) {
			break
		}
	}
	return nil
}

func TestServicePatternRequests(t *testing.T) {
	f := newPatternFake(3)
	s := New(f, Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	res := s.Select(ctx, Request{Pattern: "?x p ?y . ?y q+ ?z"})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Vars) != 3 || res.N != 3 || len(res.Rows) != 3 {
		t.Fatalf("vars=%v n=%d rows=%d", res.Vars, res.N, len(res.Rows))
	}

	// A syntactic variant of the same pattern canonicalises to the same
	// cache entry and hits the result cache without re-evaluating.
	before := f.shared.evals.Load()
	res2 := s.Select(ctx, Request{Pattern: "  ?x   p ?y .   ?y q+ ?z  "})
	if res2.Err != nil || !res2.Cached {
		t.Fatalf("variant should hit the result cache: cached=%v err=%v", res2.Cached, res2.Err)
	}
	if f.shared.evals.Load() != before {
		t.Fatal("cache hit re-evaluated the pattern")
	}

	// Count mode returns N only.
	resC := s.Count(ctx, Request{Pattern: "?a p ?b"})
	if resC.Err != nil || resC.N != 3 || resC.Rows != nil {
		t.Fatalf("count: %+v", resC)
	}

	// Limits flow through to the backend.
	resL := s.Select(ctx, Request{Pattern: "?a q ?b", Limit: 2})
	if resL.Err != nil || resL.N != 2 {
		t.Fatalf("limit: %+v", resL)
	}

	// Parse errors are per-request failures.
	if res := s.Select(ctx, Request{Pattern: "?x ((bad ?y"}); res.Err == nil {
		t.Fatal("bad pattern accepted")
	}
	// Select without a pattern is rejected.
	if res := s.Select(ctx, Request{Expr: "p"}); res.Err == nil {
		t.Fatal("Select without Pattern accepted")
	}
	// Pattern requests cannot be streamed.
	err := s.QueryFunc(ctx, Request{Pattern: "?x p ?y"}, func(Solution) bool { return true })
	if err == nil {
		t.Fatal("streamed pattern request accepted")
	}

	st := s.Stats()
	if st.PatternMisses == 0 || st.PatternEntries == 0 {
		t.Fatalf("pattern cache counters not wired: %+v", st)
	}
}

func TestServicePatternUnsupportedBackend(t *testing.T) {
	s := New(newFake(1), Config{Workers: 1})
	defer s.Close()
	res := s.Select(context.Background(), Request{Pattern: "?x p ?y"})
	if !errors.Is(res.Err, errNoPatterns) {
		t.Fatalf("got %v, want errNoPatterns", res.Err)
	}
}

func TestHTTPSelectEndpoint(t *testing.T) {
	s := New(newPatternFake(2), Config{Workers: 1})
	defer s.Close()
	h := NewHandler(s, HandlerConfig{DefaultLimit: 100})

	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest("POST", "/select", strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	w := post(`{"query": "SELECT ?x ?z WHERE { ?x p ?y . ?y q+ ?z }"}`)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var out SelectResultJSON
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Vars) != 2 || out.Count != 2 || len(out.Rows) != 2 {
		t.Fatalf("response: %+v", out)
	}

	for _, body := range []string{
		`{}`,
		`{"query": "?x ((bad ?y"}`,
		`{"query": "?x p ?y", "limit": -1}`,
		`{"query": "?x p ?y", "timeout": "-1s"}`,
		`not json`,
	} {
		if w := post(body); w.Code != 400 {
			t.Fatalf("%s: status %d, want 400", body, w.Code)
		}
	}
}
