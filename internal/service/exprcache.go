package service

import (
	"sync"

	"ringrpq/internal/pathexpr"
	"ringrpq/internal/query"
)

// canonCache canonicalises and memoises parsed queries (path
// expressions or graph patterns). Two levels of keys point at the same
// entry: the raw source text (so a repeated request skips the parser
// entirely) and the canonical form (so syntactic variants share one
// parsed value and one result-cache key). Parsed values are immutable,
// so sharing them across concurrent evaluations is safe.
type canonCache[T any] struct {
	// parse compiles one source text into its canonical form and
	// parsed value.
	parse func(src string) (canon string, val T, err error)

	mu     sync.Mutex
	lru    *lruCache
	hits   int64
	misses int64
}

// canonEntry is one cached compilation.
type canonEntry[T any] struct {
	canon string
	val   T
}

// exprCost is the flat per-entry cost used for the compile caches'
// byte bound; entries are tiny, so the caches are bounded by count
// with a nominal per-entry size.
const exprCost = 1

func newCanonCache[T any](maxEntries int, parse func(string) (string, T, error)) *canonCache[T] {
	return &canonCache[T]{parse: parse, lru: newLRUCache(maxEntries, int64(maxEntries))}
}

// Compile returns the canonical form and parsed value of src, parsing
// it at most once per cache lifetime.
func (c *canonCache[T]) Compile(src string) (string, T, error) {
	c.mu.Lock()
	if v, ok := c.lru.Get(src); ok {
		c.hits++
		c.mu.Unlock()
		e := v.(canonEntry[T])
		return e.canon, e.val, nil
	}
	c.mu.Unlock()

	// Parse outside the lock; a racing request for the same source
	// parses redundantly but harmlessly.
	canon, val, err := c.parse(src)
	if err != nil {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
		var zero T
		return "", zero, err
	}
	e := canonEntry[T]{canon: canon, val: val}

	c.mu.Lock()
	defer c.mu.Unlock()
	// If the canonical form is already cached, adopt its value so
	// syntactic variants share one parsed representation. Adoption is a
	// hit: the compiled value was already resident, only the raw
	// spelling was new. (Hotness consumers key off hits, so counting
	// adoptions as misses would undercount genuinely hot expressions
	// reached through syntactic variants or racing first requests.)
	if v, ok := c.lru.Get(e.canon); ok {
		e = v.(canonEntry[T])
		c.hits++
	} else {
		c.lru.Add(e.canon, e, exprCost)
		c.misses++
	}
	if src != e.canon {
		c.lru.Add(src, e, exprCost)
	}
	return e.canon, e.val, nil
}

// Len reports the number of cached keys (raw and canonical).
func (c *canonCache[T]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Counters reports lifetime hits and misses.
func (c *canonCache[T]) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// newExprCache builds the path-expression cache (canonical form:
// pathexpr.String of the AST; Parse(canon) yields an equivalent AST,
// round-trip tested in pathexpr).
func newExprCache(maxEntries int) *canonCache[pathexpr.Node] {
	return newCanonCache(maxEntries, func(src string) (string, pathexpr.Node, error) {
		node, err := pathexpr.Parse(src)
		if err != nil {
			return "", nil, err
		}
		return pathexpr.String(node), node, nil
	})
}

// newPatternCache builds the graph-pattern cache (canonical form:
// query.Query.String, a parse fixed point by FuzzParseQuery).
func newPatternCache(maxEntries int) *canonCache[*query.Query] {
	return newCanonCache(maxEntries, func(src string) (string, *query.Query, error) {
		q, err := query.Parse(src)
		if err != nil {
			return "", nil, err
		}
		return q.String(), q, nil
	})
}
