package service

import (
	"sync"

	"ringrpq/internal/pathexpr"
)

// compiledExpr is one canonicalised path expression: the parsed AST
// plus its canonical rendering, which identifies the expression across
// syntactic variants (whitespace, redundant parentheses) and serves as
// the result-cache key component.
type compiledExpr struct {
	// Canon is pathexpr.String of the AST; Parse(Canon) yields an
	// equivalent AST (round-trip tested in pathexpr).
	Canon string
	// Node is the parsed AST, shared across requests. ASTs are
	// immutable after parsing, so concurrent evaluation over the same
	// Node is safe.
	Node pathexpr.Node
}

// exprCache canonicalises and memoises parsed path expressions. Two
// levels of keys point at the same entry: the raw source text (so a
// repeated request skips the parser entirely) and the canonical form
// (so syntactic variants share one AST and one result-cache key).
type exprCache struct {
	mu     sync.Mutex
	lru    *lruCache
	hits   int64
	misses int64
}

// exprCost is the flat per-entry cost used for the expression cache's
// byte bound; entries are tiny, so the cache is bounded by count with a
// nominal per-entry size.
const exprCost = 1

func newExprCache(maxEntries int) *exprCache {
	return &exprCache{lru: newLRUCache(maxEntries, int64(maxEntries))}
}

// Compile returns the canonicalised expression for src, parsing it at
// most once per cache lifetime.
func (c *exprCache) Compile(src string) (compiledExpr, error) {
	c.mu.Lock()
	if v, ok := c.lru.Get(src); ok {
		c.hits++
		c.mu.Unlock()
		return v.(compiledExpr), nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock; a racing request for the same expression
	// parses redundantly but harmlessly.
	node, err := pathexpr.Parse(src)
	if err != nil {
		return compiledExpr{}, err
	}
	ce := compiledExpr{Canon: pathexpr.String(node), Node: node}

	c.mu.Lock()
	defer c.mu.Unlock()
	// If the canonical form is already cached, adopt its AST so
	// syntactic variants share one Node value.
	if v, ok := c.lru.Get(ce.Canon); ok {
		ce = v.(compiledExpr)
	} else {
		c.lru.Add(ce.Canon, ce, exprCost)
	}
	if src != ce.Canon {
		c.lru.Add(src, ce, exprCost)
	}
	return ce, nil
}

// Len reports the number of cached keys (raw and canonical).
func (c *exprCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Counters reports lifetime hits and misses.
func (c *exprCache) Counters() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
