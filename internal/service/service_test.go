package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/pathexpr"
)

// fakeShared is the "index" shared by fake backend clones: counters
// plus knobs controlling solution counts, latency and blocking.
type fakeShared struct {
	evals     atomic.Int64
	active    atomic.Int64
	maxActive atomic.Int64
	solutions int           // solutions per query
	delay     time.Duration // evaluation latency
	gate      chan struct{} // when non-nil, Eval blocks until closed
}

// fake is one backend clone. It panics on concurrent use, which the
// race stress tests would surface as a pool confinement bug.
type fake struct {
	shared *fakeShared
	busy   atomic.Bool
}

func newFake(solutions int) *fake {
	return &fake{shared: &fakeShared{solutions: solutions}}
}

func (f *fake) Clone() Backend { return &fake{shared: f.shared} }

func (f *fake) Eval(_ context.Context, subject string, expr pathexpr.Node, object string, limit int, timeout time.Duration, emit func(Solution) bool) error {
	if f.busy.Swap(true) {
		panic("fake backend used concurrently")
	}
	defer f.busy.Store(false)
	sh := f.shared
	sh.evals.Add(1)
	a := sh.active.Add(1)
	defer sh.active.Add(-1)
	for {
		m := sh.maxActive.Load()
		if a <= m || sh.maxActive.CompareAndSwap(m, a) {
			break
		}
	}
	if sh.gate != nil {
		<-sh.gate
	}
	if sh.delay > 0 {
		if timeout > 0 && sh.delay > timeout {
			time.Sleep(timeout)
			return core.ErrTimeout
		}
		time.Sleep(sh.delay)
	}
	n := sh.solutions
	if limit > 0 && limit < n {
		n = limit
	}
	canon := pathexpr.String(expr)
	for i := 0; i < n; i++ {
		if !emit(Solution{Subject: fmt.Sprintf("%s#%d", subject, i), Object: canon}) {
			break
		}
	}
	return nil
}

func newTestService(t *testing.T, b Backend, cfg Config) *Service {
	t.Helper()
	s := New(b, cfg)
	t.Cleanup(func() { s.Close() })
	return s
}

func TestQueryAndCount(t *testing.T) {
	f := newFake(3)
	s := newTestService(t, f, Config{Workers: 2})
	ctx := context.Background()

	res := s.Query(ctx, Request{Subject: "?x", Expr: "a/b*", Object: "?y"})
	if res.Err != nil {
		t.Fatalf("Query: %v", res.Err)
	}
	if res.N != 3 || len(res.Solutions) != 3 {
		t.Fatalf("got %d solutions (N=%d), want 3", len(res.Solutions), res.N)
	}
	if res.Solutions[0].Object != "a/b*" {
		t.Fatalf("solution carries %q, want canonical expr", res.Solutions[0].Object)
	}

	cnt := s.Count(ctx, Request{Subject: "?x", Expr: "c", Object: "?y"})
	if cnt.Err != nil || cnt.N != 3 || cnt.Solutions != nil {
		t.Fatalf("Count: N=%d sols=%v err=%v", cnt.N, cnt.Solutions, cnt.Err)
	}

	st := s.Stats()
	if st.Requests != 2 || st.Completed != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestParseErrors(t *testing.T) {
	s := newTestService(t, newFake(1), Config{Workers: 1})
	res := s.Query(context.Background(), Request{Expr: "(((a"})
	if res.Err == nil {
		t.Fatal("want parse error")
	}
	if got := s.Stats().Errors; got != 1 {
		t.Fatalf("Errors = %d, want 1", got)
	}
	if got := s.Stats().Completed; got != 0 {
		t.Fatalf("parse failures must not reach workers; Completed = %d", got)
	}
}

func TestResultCache(t *testing.T) {
	f := newFake(2)
	s := newTestService(t, f, Config{Workers: 1})
	ctx := context.Background()
	req := Request{Subject: "?x", Expr: "a/b", Object: "?y"}

	first := s.Query(ctx, req)
	second := s.Query(ctx, req)
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags: first=%v second=%v", first.Cached, second.Cached)
	}
	if f.shared.evals.Load() != 1 {
		t.Fatalf("evals = %d, want 1", f.shared.evals.Load())
	}
	if len(second.Solutions) != 2 {
		t.Fatalf("cached result lost solutions: %v", second.Solutions)
	}

	// Syntactic variants canonicalise to the same key.
	variant := s.Query(ctx, Request{Subject: "?x", Expr: " (a) / b ", Object: "?y"})
	if !variant.Cached || f.shared.evals.Load() != 1 {
		t.Fatalf("variant missed the cache (evals=%d)", f.shared.evals.Load())
	}

	// A different limit is a different result set.
	limited := s.Query(ctx, Request{Subject: "?x", Expr: "a/b", Object: "?y", Limit: 1})
	if limited.Cached || limited.N != 1 || f.shared.evals.Load() != 2 {
		t.Fatalf("limit variant: cached=%v N=%d evals=%d", limited.Cached, limited.N, f.shared.evals.Load())
	}

	// Count and Query results live under distinct keys.
	cnt := s.Count(ctx, req)
	if cnt.Cached || cnt.N != 2 || f.shared.evals.Load() != 3 {
		t.Fatalf("count variant: cached=%v N=%d evals=%d", cnt.Cached, cnt.N, f.shared.evals.Load())
	}

	st := s.Stats()
	if st.Hits != 2 || st.Misses != 3 {
		t.Fatalf("hit/miss accounting: %+v", st)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	f := newFake(1)
	s := newTestService(t, f, Config{Workers: 1, ResultCacheEntries: -1, ResultCacheBytes: -1})
	ctx := context.Background()
	req := Request{Subject: "?x", Expr: "a", Object: "?y"}
	s.Query(ctx, req)
	res := s.Query(ctx, req)
	if res.Cached || f.shared.evals.Load() != 2 {
		t.Fatalf("disabled cache still served a hit (evals=%d)", f.shared.evals.Load())
	}
}

func TestQueryFuncStreams(t *testing.T) {
	f := newFake(5)
	s := newTestService(t, f, Config{Workers: 1})
	ctx := context.Background()

	var got []Solution
	err := s.QueryFunc(ctx, Request{Subject: "?x", Expr: "a", Object: "?y"}, func(sol Solution) bool {
		got = append(got, sol)
		return true
	})
	if err != nil || len(got) != 5 {
		t.Fatalf("stream: err=%v n=%d", err, len(got))
	}

	// Early stop is a success, and streamed results are never cached.
	n := 0
	err = s.QueryFunc(ctx, Request{Subject: "?x", Expr: "a", Object: "?y"}, func(Solution) bool {
		n++
		return false
	})
	if err != nil || n != 1 {
		t.Fatalf("early stop: err=%v n=%d", err, n)
	}
	res := s.Query(ctx, Request{Subject: "?x", Expr: "a", Object: "?y"})
	if res.Cached {
		t.Fatal("streamed evaluation leaked into the result cache")
	}
}

func TestTimeouts(t *testing.T) {
	f := newFake(1)
	f.shared.delay = 50 * time.Millisecond
	s := newTestService(t, f, Config{Workers: 1})
	ctx := context.Background()
	req := Request{Subject: "?x", Expr: "a", Object: "?y", Timeout: 5 * time.Millisecond}

	res := s.Query(ctx, req)
	if !errors.Is(res.Err, core.ErrTimeout) {
		t.Fatalf("want timeout, got %v", res.Err)
	}
	if s.Stats().Timeouts != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
	// Timed-out (partial) results must not be cached.
	res = s.Query(ctx, req)
	if res.Cached {
		t.Fatal("partial result was cached")
	}
}

func TestDefaultTimeout(t *testing.T) {
	f := newFake(1)
	f.shared.delay = 50 * time.Millisecond
	s := newTestService(t, f, Config{Workers: 1, DefaultTimeout: 5 * time.Millisecond})
	res := s.Query(context.Background(), Request{Subject: "?x", Expr: "a", Object: "?y"})
	if !errors.Is(res.Err, core.ErrTimeout) {
		t.Fatalf("default timeout not applied: %v", res.Err)
	}
}

func TestContextDeadline(t *testing.T) {
	f := newFake(1)
	f.shared.delay = 100 * time.Millisecond
	s := newTestService(t, f, Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	res := s.Query(ctx, Request{Subject: "?x", Expr: "a", Object: "?y"})
	if !errors.Is(res.Err, core.ErrTimeout) && !errors.Is(res.Err, context.DeadlineExceeded) {
		t.Fatalf("context deadline ignored: %v", res.Err)
	}
}

func TestQueueBackpressure(t *testing.T) {
	f := newFake(1)
	f.shared.gate = make(chan struct{})
	s := newTestService(t, f, Config{Workers: 1, QueueDepth: 1})
	ctx := context.Background()

	// Occupy the worker and fill the queue.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Query(ctx, Request{Subject: fmt.Sprintf("?x%d", i), Expr: "a", Object: "?y"})
		}(i)
	}
	waitFor(t, func() bool { return s.Stats().Inflight == 1 && s.Stats().QueueLen == 1 })

	// A submission with an already-expired context is rejected instead
	// of blocking forever.
	expired, cancel := context.WithCancel(ctx)
	cancel()
	res := s.Query(expired, Request{Subject: "?z", Expr: "a", Object: "?y"})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", res.Err)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}

	close(f.shared.gate)
	wg.Wait()
}

func TestParallelEvaluation(t *testing.T) {
	f := newFake(1)
	f.shared.gate = make(chan struct{})
	s := newTestService(t, f, Config{Workers: 4, ResultCacheEntries: -1})
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.Query(ctx, Request{Subject: fmt.Sprintf("?x%d", i), Expr: "a", Object: "?y"})
		}(i)
	}
	waitFor(t, func() bool { return f.shared.active.Load() == 4 })
	close(f.shared.gate)
	wg.Wait()
	if got := f.shared.maxActive.Load(); got != 4 {
		t.Fatalf("max concurrent evaluations = %d, want 4", got)
	}
}

func TestBatch(t *testing.T) {
	f := newFake(2)
	s := newTestService(t, f, Config{Workers: 2, QueueDepth: 2})
	ctx := context.Background()

	reqs := []Request{
		{Subject: "?a", Expr: "p1", Object: "?b"},
		{Subject: "?a", Expr: "(((", Object: "?b"}, // parse error
		{Subject: "?a", Expr: "p2*", Object: "?b", Count: true},
		{Subject: "?a", Expr: "p1", Object: "?b"}, // duplicate of [0]
	}
	out := s.Batch(ctx, reqs)
	if len(out) != 4 {
		t.Fatalf("got %d results", len(out))
	}
	if out[0].Err != nil || out[0].N != 2 {
		t.Fatalf("batch[0]: %+v", out[0])
	}
	if out[1].Err == nil {
		t.Fatal("batch[1]: want parse error")
	}
	if out[2].Err != nil || out[2].N != 2 || out[2].Solutions != nil {
		t.Fatalf("batch[2]: %+v", out[2])
	}
	if out[3].Err != nil || out[3].N != 2 {
		t.Fatalf("batch[3]: %+v", out[3])
	}
	// The duplicate may or may not hit the cache depending on
	// scheduling; batches on a fresh service must evaluate at most 3.
	if evals := f.shared.evals.Load(); evals > 3 {
		t.Fatalf("evals = %d, want ≤ 3", evals)
	}
	if s.Stats().Batches != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestCloseGraceful(t *testing.T) {
	f := newFake(1)
	f.shared.gate = make(chan struct{})
	s := New(f, Config{Workers: 1, QueueDepth: 4})
	ctx := context.Background()

	// One running, two queued.
	results := make(chan Result, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			results <- s.Query(ctx, Request{Subject: fmt.Sprintf("?x%d", i), Expr: "a", Object: "?y"})
		}(i)
	}
	waitFor(t, func() bool { return s.Stats().Inflight == 1 && s.Stats().QueueLen == 2 })

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	// Close must wait for queued work.
	select {
	case <-closed:
		t.Fatal("Close returned with jobs still queued")
	case <-time.After(20 * time.Millisecond):
	}

	close(f.shared.gate)
	<-closed
	for i := 0; i < 3; i++ {
		if res := <-results; res.Err != nil {
			t.Fatalf("queued job dropped at shutdown: %v", res.Err)
		}
	}

	// After Close: fail fast, idempotent.
	if res := s.Query(ctx, Request{Expr: "a"}); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", res.Err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestClosedBeatsCache(t *testing.T) {
	f := newFake(1)
	s := New(f, Config{Workers: 1})
	ctx := context.Background()
	req := Request{Subject: "?x", Expr: "a", Object: "?y"}
	if res := s.Query(ctx, req); res.Err != nil {
		t.Fatal(res.Err)
	}
	s.Close()
	// Even a request the result cache could serve fails fast after
	// Close, keeping post-Close behavior uniform.
	if res := s.Query(ctx, req); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("cached result served after Close: %+v", res)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
