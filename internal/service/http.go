package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/obs"
)

// HandlerConfig tunes the HTTP front-end.
type HandlerConfig struct {
	// DefaultLimit caps solutions for requests that do not set their
	// own limit; 0 means unlimited.
	DefaultLimit int
	// MaxBatch bounds the number of queries in one /batch call.
	// Default 1024.
	MaxBatch int
	// MaxBodyBytes bounds request body sizes before decoding.
	// Default 8 MiB.
	MaxBodyBytes int64
	// Info, when set, is rendered under "index" in /stats responses
	// (e.g. database statistics).
	Info func() any
}

// QueryJSON is the wire form of a Request (POST /query, items of POST
// /batch). Timeout is a Go duration string such as "250ms" or "2s".
// An absent limit applies the server's default; an explicit 0 asks
// for unlimited results.
type QueryJSON struct {
	Subject string `json:"subject"`
	Expr    string `json:"expr"`
	Object  string `json:"object"`
	Limit   *int   `json:"limit,omitempty"`
	Timeout string `json:"timeout,omitempty"`
	Count   bool   `json:"count,omitempty"`
	// Profile asks for a span trace of this request's evaluation,
	// returned under "profile" in the response.
	Profile bool `json:"profile,omitempty"`
}

// SolutionJSON is the wire form of a Solution.
type SolutionJSON struct {
	Subject string `json:"subject"`
	Object  string `json:"object"`
}

// ResultJSON is the wire form of a Result.
type ResultJSON struct {
	Solutions []SolutionJSON `json:"solutions,omitempty"`
	Count     int            `json:"count"`
	Cached    bool           `json:"cached,omitempty"`
	// Truncated reports a partial result: the evaluation hit its
	// deadline and the solutions are what was found in time. Truncated
	// responses are served with 206 Partial Content (batch items keep
	// the whole-batch 200) and are never stored in — or replayed from —
	// the result cache.
	Truncated bool `json:"truncated,omitempty"`
	// TimedOut is kept as an alias of Truncated for older clients.
	TimedOut bool `json:"timed_out,omitempty"`
	// LimitReached reports that the result filled the request's (or
	// the server's default) solution cap: the count may be truncated.
	LimitReached bool   `json:"limit_reached,omitempty"`
	Error        string `json:"error,omitempty"`
	// ElapsedMS is per-query wall time; batch responses report only
	// the whole-batch elapsed_ms at the top level (individual timings
	// are not observable from the fan-out) and omit this field.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Profile is the rendered span trace of a profiled request
	// (QueryJSON.Profile); absent otherwise.
	Profile *obs.Profile `json:"profile,omitempty"`
}

// BatchJSON is the wire form of a POST /batch body.
type BatchJSON struct {
	Queries []QueryJSON `json:"queries"`
}

// SelectJSON is the wire form of a POST /select body: a graph-pattern
// query mixing triple patterns and RPQ clauses.
type SelectJSON struct {
	Query   string `json:"query"`
	Limit   *int   `json:"limit,omitempty"`
	Timeout string `json:"timeout,omitempty"`
	Count   bool   `json:"count,omitempty"`
	// Profile asks for a span trace of this request's evaluation.
	Profile bool `json:"profile,omitempty"`
}

// SelectResultJSON is the wire form of a /select response: the
// projected variable names and one row of values per solution.
// Failures (parse errors, cross-shard patterns) are reported as
// non-200 {"error": ...} responses; only timeouts reach a 200 body,
// flagged with timed_out.
type SelectResultJSON struct {
	Vars         []string     `json:"vars"`
	Rows         [][]string   `json:"rows,omitempty"`
	Count        int          `json:"count"`
	Cached       bool         `json:"cached,omitempty"`
	Truncated    bool         `json:"truncated,omitempty"`
	TimedOut     bool         `json:"timed_out,omitempty"`
	LimitReached bool         `json:"limit_reached,omitempty"`
	ElapsedMS    float64      `json:"elapsed_ms,omitempty"`
	Profile      *obs.Profile `json:"profile,omitempty"`
}

// UpdateTripleJSON is the wire form of one update triple.
type UpdateTripleJSON struct {
	S string `json:"s"`
	P string `json:"p"`
	O string `json:"o"`
	// Op selects "add" (default) or "del"; only meaningful in NDJSON
	// streams, where each line stands alone.
	Op string `json:"op,omitempty"`
}

// UpdateJSON is the wire form of a POST /update body (JSON mode).
type UpdateJSON struct {
	Add []UpdateTripleJSON `json:"add,omitempty"`
	Del []UpdateTripleJSON `json:"del,omitempty"`
}

// UpdateResultJSON is the wire form of a POST /update response.
type UpdateResultJSON struct {
	Added        int     `json:"added"`
	Deleted      int     `json:"deleted"`
	OverlayEdges int     `json:"overlay_edges"`
	Tombstones   int     `json:"tombstones"`
	Epoch        uint64  `json:"epoch"`
	Version      uint64  `json:"version"`
	Compacting   bool    `json:"compacting,omitempty"`
	ElapsedMS    float64 `json:"elapsed_ms,omitempty"`
}

// NewHandler mounts the service's HTTP API:
//
//	POST /query   evaluate one 2RPQ         (QueryJSON → ResultJSON)
//	POST /select  evaluate a graph pattern  (SelectJSON → SelectResultJSON)
//	POST /batch   evaluate many queries     (BatchJSON → {"results": [...]})
//	GET  /subscribe  standing-query deltas  (SSE or long-poll; see
//	                 DecodeSubscribeRequest)
//	DELETE /subscribe?id=N  terminate a subscription
//	GET  /stats   service + index counters
//	GET  /healthz liveness probe (always 200 while the process serves)
//	GET  /readyz  readiness probe (503 once closed or the WAL wedges)
//	GET  /metrics Prometheus text exposition of every service counter
//	GET  /debug/slowlog  recent slow queries (JSON, newest first)
func NewHandler(s *Service, cfg HandlerConfig) http.Handler {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	h := &handler{s: s, cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", h.query)
	mux.HandleFunc("POST /select", h.selectPattern)
	mux.HandleFunc("POST /batch", h.batch)
	mux.HandleFunc("POST /update", h.update)
	mux.HandleFunc("GET /subscribe", h.subscribe)
	mux.HandleFunc("DELETE /subscribe", h.unsubscribe)
	mux.HandleFunc("GET /stats", h.stats)
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /readyz", h.readyz)
	mux.Handle("GET /metrics", s.Metrics())
	mux.HandleFunc("GET /debug/slowlog", h.slowlog)
	return mux
}

type handler struct {
	s   *Service
	cfg HandlerConfig
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// toRequest validates and converts one wire query.
func (h *handler) toRequest(q QueryJSON) (Request, error) {
	if q.Expr == "" {
		return Request{}, errors.New("missing expr")
	}
	req := Request{
		Subject: q.Subject, Expr: q.Expr, Object: q.Object,
		Count: q.Count, Limit: h.cfg.DefaultLimit, Profile: q.Profile,
	}
	if q.Limit != nil {
		if *q.Limit < 0 {
			return Request{}, errors.New("limit must be non-negative")
		}
		req.Limit = *q.Limit // explicit 0 = unlimited
	}
	if req.Subject == "" {
		req.Subject = "?s"
	}
	if req.Object == "" {
		req.Object = "?o"
	}
	if q.Timeout != "" {
		d, err := time.ParseDuration(q.Timeout)
		if err != nil {
			return Request{}, fmt.Errorf("bad timeout: %w", err)
		}
		// A non-positive timeout would disable the server's default
		// bound and pin a worker indefinitely.
		if d <= 0 {
			return Request{}, errors.New("timeout must be positive")
		}
		req.Timeout = d
	}
	return req, nil
}

func toJSON(req Request, res Result, elapsed time.Duration) ResultJSON {
	out := ResultJSON{
		Count:     res.N,
		Cached:    res.Cached,
		ElapsedMS: float64(elapsed.Microseconds()) / 1e3,
		// The engine stops silently at the cap, so "filled the cap"
		// is the only truncation signal available.
		LimitReached: req.Limit > 0 && res.N >= req.Limit,
	}
	if len(res.Solutions) > 0 {
		out.Solutions = make([]SolutionJSON, len(res.Solutions))
		for i, s := range res.Solutions {
			out.Solutions[i] = SolutionJSON{Subject: s.Subject, Object: s.Object}
		}
	}
	switch {
	case errors.Is(res.Err, core.ErrTimeout):
		out.Truncated = true
		out.TimedOut = true
	case res.Err != nil:
		out.Error = res.Err.Error()
	}
	return out
}

// resultStatus picks the HTTP status of a successful evaluation:
// truncated (deadline-cut) results are distinguishable from complete
// ones without parsing the body.
func resultStatus(err error) int {
	if errors.Is(err, core.ErrTimeout) {
		return http.StatusPartialContent
	}
	return http.StatusOK
}

// toPatternRequest validates and converts one wire pattern query.
func (h *handler) toPatternRequest(q SelectJSON) (Request, error) {
	if q.Query == "" {
		return Request{}, errors.New("missing query")
	}
	req := Request{Pattern: q.Query, Count: q.Count, Limit: h.cfg.DefaultLimit, Profile: q.Profile}
	if q.Limit != nil {
		if *q.Limit < 0 {
			return Request{}, errors.New("limit must be non-negative")
		}
		req.Limit = *q.Limit
	}
	if q.Timeout != "" {
		d, err := time.ParseDuration(q.Timeout)
		if err != nil {
			return Request{}, fmt.Errorf("bad timeout: %w", err)
		}
		if d <= 0 {
			return Request{}, errors.New("timeout must be positive")
		}
		req.Timeout = d
	}
	return req, nil
}

func (h *handler) selectPattern(w http.ResponseWriter, r *http.Request) {
	var q SelectJSON
	if err := h.decodeBody(w, r, &q); err != nil {
		return
	}
	req, err := h.toPatternRequest(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	ctx, tr, root := h.traceFor(r, req)
	res := h.s.Select(ctx, req)
	if status, ok := failureStatus(res.Err); ok {
		writeError(w, status, res.Err)
		return
	}
	out := SelectResultJSON{
		Vars:         res.Vars,
		Rows:         res.Rows,
		Count:        res.N,
		Cached:       res.Cached,
		ElapsedMS:    float64(time.Since(start).Microseconds()) / 1e3,
		LimitReached: req.Limit > 0 && res.N >= req.Limit,
	}
	if errors.Is(res.Err, core.ErrTimeout) {
		out.Truncated = true
		out.TimedOut = true
	}
	if tr != nil {
		out.Profile = h.renderProfile(tr, root, out)
	}
	writeJSON(w, resultStatus(res.Err), out)
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	var q QueryJSON
	if err := h.decodeBody(w, r, &q); err != nil {
		return
	}
	req, err := h.toRequest(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	ctx, tr, root := h.traceFor(r, req)
	res := h.s.do(ctx, req, nil)
	if status, ok := failureStatus(res.Err); ok {
		writeError(w, status, res.Err)
		return
	}
	out := toJSON(req, res, time.Since(start))
	if tr != nil {
		out.Profile = h.renderProfile(tr, root, out)
	}
	writeJSON(w, resultStatus(res.Err), out)
}

// traceFor opens the root request span of a profiled request and
// attaches the trace to the submission context; (ctx, nil, -1) when
// the request is not profiled.
func (h *handler) traceFor(r *http.Request, req Request) (context.Context, *obs.Trace, int) {
	if !req.Profile {
		return r.Context(), nil, -1
	}
	tr := obs.New()
	root := tr.Begin(obs.SpanRequest)
	return obs.NewContext(r.Context(), tr), tr, root
}

// renderProfile times a dry-run serialization of the response payload
// (the real encode happens after the trace is sealed, so a span can
// only observe a stand-in of identical size), closes the root span and
// renders the trace.
func (h *handler) renderProfile(tr *obs.Trace, root int, payload any) *obs.Profile {
	ssp := tr.Begin(obs.SpanSerialize)
	buf, err := json.Marshal(payload)
	if err != nil {
		tr.End(ssp)
	} else {
		tr.EndVals(ssp, int64(len(buf)))
	}
	tr.End(root)
	return tr.Render()
}

// decodeBody decodes a size-bounded JSON request body, writing the
// error response (413 for oversized bodies, 400 otherwise) itself.
func (h *handler) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, h.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, err)
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		}
		return err
	}
	return nil
}

func (h *handler) batch(w http.ResponseWriter, r *http.Request) {
	var b BatchJSON
	if err := h.decodeBody(w, r, &b); err != nil {
		return
	}
	if len(b.Queries) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(b.Queries) > h.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds the %d-query cap", len(b.Queries), h.cfg.MaxBatch))
		return
	}
	reqs := make([]Request, len(b.Queries))
	for i, q := range b.Queries {
		req, err := h.toRequest(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
		reqs[i] = req
	}
	start := time.Now()
	results := h.s.Batch(r.Context(), reqs)
	elapsed := time.Since(start)
	out := make([]ResultJSON, len(results))
	for i, res := range results {
		out[i] = toJSON(reqs[i], res, 0)
		// Profiled batch items carry their own service-created trace
		// (submit opens the root span, the worker closes it).
		if res.Trace != nil {
			out[i].Profile = res.Trace.Render()
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"results":    out,
		"elapsed_ms": float64(elapsed.Microseconds()) / 1e3,
	})
}

// failureStatus maps submission-level failures to HTTP statuses;
// evaluation timeouts are not failures (the partial result is
// returned with timed_out set).
func failureStatus(err error) (int, bool) {
	switch {
	case err == nil, errors.Is(err, core.ErrTimeout):
		return 0, false
	case errors.Is(err, ErrInternal):
		return http.StatusInternalServerError, true
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, true
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, true
	default:
		return http.StatusBadRequest, true
	}
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	out := map[string]any{"service": h.s.Stats()}
	if h.cfg.Info != nil {
		out["index"] = h.cfg.Info()
	}
	writeJSON(w, http.StatusOK, out)
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyz distinguishes "alive" from "able to serve": it fails once the
// service is closed (draining for shutdown) or the write-ahead log has
// wedged (appends are being refused, so updates would be lost).
func (h *handler) readyz(w http.ResponseWriter, r *http.Request) {
	if h.s.Closed() {
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "unavailable", "reason": "service closed"})
		return
	}
	if ws := h.s.walStats(); ws.Wedged {
		reason := "write-ahead log wedged"
		if ws.WedgeReason != "" {
			reason += ": " + ws.WedgeReason
		}
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "unavailable", "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// slowlog dumps the retained slow-query entries, newest first.
func (h *handler) slowlog(w http.ResponseWriter, r *http.Request) {
	sl := h.s.SlowLog()
	if sl == nil {
		writeJSON(w, http.StatusOK, map[string]any{
			"enabled": false, "entries": []obs.SlowEntry{},
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":   true,
		"threshold": sl.Threshold().String(),
		"total":     sl.Total(),
		"entries":   sl.Entries(),
	})
}
