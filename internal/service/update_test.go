package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/pathexpr"
)

// TestQueueWaitCountsAgainstDeadline pins the satellite-2 contract: a
// request's deadline is anchored at submission, so time spent queued
// behind a saturated pool consumes its budget instead of granting a
// fresh one when a worker finally picks it up.
func TestQueueWaitCountsAgainstDeadline(t *testing.T) {
	f := newFake(1)
	f.shared.gate = make(chan struct{})
	s := newTestService(t, f, Config{Workers: 1})
	ctx := context.Background()

	first := make(chan Result, 1)
	go func() { first <- s.Query(ctx, Request{Expr: "a"}) }()
	// Let the only worker pick up and block on the first request, then
	// queue a second with a 30ms budget and hold the worker well past it.
	time.Sleep(30 * time.Millisecond)
	second := make(chan Result, 1)
	go func() { second <- s.Query(ctx, Request{Expr: "b", Timeout: 30 * time.Millisecond}) }()
	time.Sleep(120 * time.Millisecond)
	close(f.shared.gate)

	if res := <-first; res.Err != nil {
		t.Fatalf("first request failed: %v", res.Err)
	}
	res := <-second
	if !errors.Is(res.Err, core.ErrTimeout) {
		t.Fatalf("queued-out request: err = %v, want ErrTimeout", res.Err)
	}
	if res.N != 0 {
		t.Fatalf("queued-out request evaluated %d solutions, want none", res.N)
	}
	if evals := f.shared.evals.Load(); evals != 1 {
		t.Fatalf("backend evaluated %d times; the expired request should never reach it", evals)
	}
	st := s.Stats()
	if st.Timeouts == 0 {
		t.Fatalf("stats should count the queue-wait timeout: %+v", st)
	}
	if st.QueueWaitNS <= 0 {
		t.Fatalf("stats should accumulate queue wait, got %d", st.QueueWaitNS)
	}
}

// partialFake emits two solutions and times out when given less than
// 50ms of budget, and completes five solutions otherwise — the shape
// that would poison a cache that stored truncated results.
type partialFake struct{ evals atomic.Int64 }

func (f *partialFake) Clone() Backend { return f }

func (f *partialFake) Eval(_ context.Context, subject string, expr pathexpr.Node, object string, limit int, timeout time.Duration, emit func(Solution) bool) error {
	f.evals.Add(1)
	n := 5
	var fail error
	if timeout > 0 && timeout < 50*time.Millisecond {
		n, fail = 2, core.ErrTimeout
	}
	for i := 0; i < n; i++ {
		if !emit(Solution{Subject: fmt.Sprintf("s%d", i), Object: "o"}) {
			break
		}
	}
	return fail
}

// TestTruncatedResultsNeverCached pins the satellite-3 cache contract
// that makes cacheKey's non-inclusion of Timeout safe: truncated
// results are never stored, so a later request with any timeout either
// recomputes or is served a complete result.
func TestTruncatedResultsNeverCached(t *testing.T) {
	f := &partialFake{}
	s := newTestService(t, f, Config{Workers: 1})
	ctx := context.Background()
	req := func(d time.Duration) Request { return Request{Expr: "a", Timeout: d} }

	r1 := s.Query(ctx, req(time.Millisecond))
	if !errors.Is(r1.Err, core.ErrTimeout) || r1.N != 2 {
		t.Fatalf("truncated run: n=%d err=%v, want 2 partial solutions + ErrTimeout", r1.N, r1.Err)
	}
	if st := s.Stats(); st.ResultEntries != 0 {
		t.Fatalf("truncated result was cached: %d entries", st.ResultEntries)
	}

	// Same cache key, longer budget: must recompute, not replay the
	// truncated result.
	r2 := s.Query(ctx, req(time.Second))
	if r2.Err != nil || r2.N != 5 || r2.Cached {
		t.Fatalf("complete run: n=%d cached=%v err=%v, want 5 fresh solutions", r2.N, r2.Cached, r2.Err)
	}

	// A third timeout value hits the cache — and gets the complete
	// result, which is why Timeout can stay out of the key.
	r3 := s.Query(ctx, req(2*time.Second))
	if !r3.Cached || r3.N != 5 {
		t.Fatalf("cached run: n=%d cached=%v, want the complete cached result", r3.N, r3.Cached)
	}
	if evals := f.evals.Load(); evals != 2 {
		t.Fatalf("backend evaluated %d times, want 2 (truncated + complete)", evals)
	}
}

// versionedFake flips its answer when bumped, exposing stale cache
// replays.
type versionedFake struct {
	version atomic.Uint64
	marker  atomic.Int64
}

func (f *versionedFake) Clone() Backend      { return f }
func (f *versionedFake) DataVersion() uint64 { return f.version.Load() }

func (f *versionedFake) Eval(_ context.Context, subject string, expr pathexpr.Node, object string, limit int, timeout time.Duration, emit func(Solution) bool) error {
	emit(Solution{Subject: fmt.Sprintf("m%d", f.marker.Load()), Object: "o"})
	return nil
}

func (f *versionedFake) ApplyUpdates(_ context.Context, adds, dels []UpdateTriple) (UpdateResult, error) {
	f.marker.Add(int64(len(adds) + len(dels)))
	v := f.version.Add(1)
	return UpdateResult{Version: v}, nil
}

// TestUpdateInvalidatesResultCache checks the data-version pinning: an
// update makes every older cache entry unservable without flushing the
// cache wholesale.
func TestUpdateInvalidatesResultCache(t *testing.T) {
	f := &versionedFake{}
	s := newTestService(t, f, Config{Workers: 1})
	ctx := context.Background()

	r1 := s.Query(ctx, Request{Expr: "a"})
	if r1.Err != nil || r1.Solutions[0].Subject != "m0" {
		t.Fatalf("first run: %+v", r1)
	}
	if r2 := s.Query(ctx, Request{Expr: "a"}); !r2.Cached {
		t.Fatalf("second run should hit the cache: %+v", r2)
	}

	if _, err := s.Update(ctx, []UpdateTriple{{S: "x", P: "p", O: "y"}}, nil); err != nil {
		t.Fatal(err)
	}
	r3 := s.Query(ctx, Request{Expr: "a"})
	if r3.Cached || r3.Solutions[0].Subject != "m1" {
		t.Fatalf("post-update run must recompute: %+v", r3)
	}
	if st := s.Stats(); st.Updates != 1 {
		t.Fatalf("stats.Updates = %d, want 1", st.Updates)
	}
}

// TestUpdateUnsupportedBackend checks the typed failure for static
// backends.
func TestUpdateUnsupportedBackend(t *testing.T) {
	s := newTestService(t, newFake(1), Config{Workers: 1})
	if _, err := s.Update(context.Background(), []UpdateTriple{{S: "a", P: "b", O: "c"}}, nil); err == nil {
		t.Fatal("update against a static backend should fail")
	}
}

func TestDecodeNDJSONUpdates(t *testing.T) {
	in := `
{"s":"a","p":"knows","o":"b"}
{"op":"add","s":"b","p":"knows","o":"c"}

{"op":"del","s":"a","p":"knows","o":"b"}
`
	adds, dels, err := DecodeNDJSONUpdates(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(adds) != 2 || len(dels) != 1 || adds[1].O != "c" || dels[0].S != "a" {
		t.Fatalf("decoded adds=%v dels=%v", adds, dels)
	}

	for _, bad := range []string{
		`{"s":"a","p":"b"}`,                          // missing o
		`{"op":"zap","s":"a","p":"b","o":"c"}`,       // unknown op
		`{"s":"a","p":"b","o":"c"} {"s":"x"}`,        // trailing data
		`{"s":"a","p":"b","o":"c","bogus":true}`,     // unknown field
		"{\"s\":\"a\",\"p\":\"b\",\"o\":\"c\"}\n{?}", // malformed line
	} {
		if _, _, err := DecodeNDJSONUpdates(strings.NewReader(bad)); err == nil {
			t.Fatalf("input %q should fail", bad)
		}
	}
}

// FuzzDecodeNDJSONUpdates hardens the bulk decoder: it must never
// panic, and every accepted triple must be fully populated.
func FuzzDecodeNDJSONUpdates(f *testing.F) {
	f.Add(`{"s":"a","p":"b","o":"c"}`)
	f.Add("{\"op\":\"del\",\"s\":\"a\",\"p\":\"b\",\"o\":\"c\"}\n{\"s\":\"x\",\"p\":\"y\",\"o\":\"z\"}")
	f.Add(`{"s":"","p":"b","o":"c"}`)
	f.Add("not json at all")
	f.Fuzz(func(t *testing.T, in string) {
		adds, dels, err := DecodeNDJSONUpdates(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, tr := range append(adds, dels...) {
			if tr.S == "" || tr.P == "" || tr.O == "" {
				t.Fatalf("accepted incomplete triple %+v from %q", tr, in)
			}
		}
	})
}

// upHTTPFake adapts versionedFake for the HTTP /update tests.
func TestHTTPUpdate(t *testing.T) {
	f := &versionedFake{}
	srv := newTestServer(t, f, Config{Workers: 1}, HandlerConfig{})

	resp, body := postJSON(t, srv.URL+"/update", `{"add":[{"s":"a","p":"knows","o":"b"}],"del":[{"s":"x","p":"knows","o":"y"}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %d %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"added":1`) || !strings.Contains(string(body), `"deleted":1`) {
		t.Fatalf("update response: %s", body)
	}

	// Bulk NDJSON.
	req, _ := http.NewRequest("POST", srv.URL+"/update",
		strings.NewReader("{\"s\":\"a\",\"p\":\"knows\",\"o\":\"c\"}\n{\"op\":\"del\",\"s\":\"a\",\"p\":\"knows\",\"o\":\"b\"}"))
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("ndjson update: %d", resp2.StatusCode)
	}

	// Malformed bodies are 400s.
	for _, bad := range []string{`{}`, `{"add":[{"s":"a"}]}`, `{"add":`} {
		if resp, _ := postJSON(t, srv.URL+"/update", bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad update %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
