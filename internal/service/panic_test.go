package service

// Worker panic isolation: a panicking evaluation must fail only its own
// request (ErrInternal, HTTP 500), leave the pool serving, and be
// visible in Stats.Panics.

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ringrpq/internal/pathexpr"
)

// panicFake panics on subject "boom", blocks on the gate for subject
// "block", and otherwise emits one solution.
type panicFake struct {
	shared  *fakeShared
	entered chan struct{} // closed once a "block" evaluation has started
}

func (f *panicFake) Clone() Backend { return f }

func (f *panicFake) Eval(_ context.Context, subject string, expr pathexpr.Node, object string, limit int, timeout time.Duration, emit func(Solution) bool) error {
	switch subject {
	case "boom":
		panic("kaboom: injected evaluation panic")
	case "block":
		select {
		case <-f.entered:
		default:
			close(f.entered)
		}
		<-f.shared.gate
	}
	emit(Solution{Subject: subject, Object: "ok"})
	return nil
}

func TestWorkerPanicIsolated(t *testing.T) {
	f := &panicFake{shared: &fakeShared{}, entered: make(chan struct{})}
	s := newTestService(t, f, Config{Workers: 1, ResultCacheEntries: -1})
	ctx := context.Background()

	res := s.Query(ctx, Request{Subject: "boom", Expr: "a", Object: "?y"})
	if !errors.Is(res.Err, ErrInternal) {
		t.Fatalf("panicking query err = %v, want ErrInternal", res.Err)
	}
	if !strings.Contains(res.Err.Error(), "kaboom") {
		t.Fatalf("panic value lost from error: %v", res.Err)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}

	// The single worker must have survived (fresh clone) and keep
	// serving.
	res = s.Query(ctx, Request{Subject: "fine", Expr: "a", Object: "?y"})
	if res.Err != nil || len(res.Solutions) != 1 {
		t.Fatalf("query after panic = %+v", res)
	}
}

// groupPanicFake routes everything through EvalGroup: a batch holding a
// "boom" subject panics mid-drain, a "block" batch parks on the gate.
type groupPanicFake struct {
	panicFake
}

func (g *groupPanicFake) Clone() Backend { return g }

func (g *groupPanicFake) EvalGroup(reqs []GroupRequest) []error {
	for _, r := range reqs {
		if r.Subject == "boom" {
			panic("kaboom: injected group panic")
		}
	}
	for _, r := range reqs {
		if err := g.Eval(context.Background(), r.Subject, r.Expr, r.Object, r.Limit, r.Timeout, r.Emit); err != nil {
			return make([]error, len(reqs))
		}
	}
	return make([]error, len(reqs))
}

func TestGroupedPanicFailsWholeBatch(t *testing.T) {
	f := &groupPanicFake{panicFake{
		shared:  &fakeShared{gate: make(chan struct{})},
		entered: make(chan struct{}),
	}}
	s := newTestService(t, f, Config{
		Workers: 1, QueueDepth: 8,
		GroupTraversals: true, ResultCacheEntries: -1,
	})
	ctx := context.Background()

	// Park the lone worker so the next jobs pile up in the queue and
	// drain as one batch.
	blocked := make(chan Result, 1)
	go func() { blocked <- s.Query(ctx, Request{Subject: "block", Expr: "a", Object: "?y"}) }()
	<-f.entered

	results := make(chan Result, 2)
	go func() { results <- s.Query(ctx, Request{Subject: "boom", Expr: "a", Object: "?y"}) }()
	go func() { results <- s.Query(ctx, Request{Subject: "boom2", Expr: "b", Object: "?y"}) }()
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueLen < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	close(f.shared.gate)
	if r := <-blocked; r.Err != nil {
		t.Fatalf("blocked query err = %v", r.Err)
	}
	// Both queued jobs were drained into the panicking batch: each must
	// fail with ErrInternal, none may hang.
	for i := 0; i < 2; i++ {
		select {
		case r := <-results:
			if !errors.Is(r.Err, ErrInternal) {
				t.Fatalf("batched query err = %v, want ErrInternal", r.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("batched query never completed after group panic")
		}
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}
	// The worker is still alive.
	if r := s.Query(ctx, Request{Subject: "fine", Expr: "a", Object: "?y"}); r.Err != nil {
		t.Fatalf("query after group panic: %v", r.Err)
	}
}

func TestPanicMapsToHTTP500(t *testing.T) {
	f := &panicFake{shared: &fakeShared{}, entered: make(chan struct{})}
	s := newTestService(t, f, Config{Workers: 1, ResultCacheEntries: -1})
	h := NewHandler(s, HandlerConfig{})

	body := `{"subject":"boom","expr":"a","object":"?y"}`
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (body %s)", rec.Code, rec.Body)
	}
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out.Error == "" {
		t.Fatalf("error body = %q (%v)", rec.Body, err)
	}

	// And the service still answers.
	req = httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(`{"subject":"fine","expr":"a","object":"?y"}`))
	req.Header.Set("Content-Type", "application/json")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status after panic = %d (body %s)", rec.Code, rec.Body)
	}
}
