package service

import (
	"errors"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/obs"
	"ringrpq/internal/pathexpr"
)

// Cross-query shared traversals (Config.GroupTraversals): when a worker
// picks up a job and more 2RPQ jobs are already queued, evaluating them
// one at a time repeats the same top-of-wavelet-tree descents once per
// query. A grouping worker instead drains up to GroupMax compatible
// jobs and hands them to the backend's EvalGroup in one call, which
// merges their product-graph frontiers into one multi-range descent per
// BFS level (core.TraversalGroup). Grouping changes throughput, not
// results: each member's solutions, limit, timeout and error are its
// own, exactly as if it had run solo.

// GroupRequest is one member of a grouped evaluation: the resolved
// 2RPQ plus its per-member limit, timeout and emit callback.
type GroupRequest struct {
	// Subject and Object are endpoint names; a '?' prefix marks a
	// variable (as in Backend.Eval).
	Subject, Object string
	Expr            pathexpr.Node
	Limit           int
	Timeout         time.Duration
	Emit            func(Solution) bool
}

// GroupBackend is optionally implemented by backends that can evaluate
// several 2RPQs in one shared traversal over a single index snapshot.
// EvalGroup returns one error per request, aligned by index; members
// the backend cannot group must still be evaluated (solo) within the
// call. Like Eval, EvalGroup confines itself to the clone's private
// working state — the pool never calls it concurrently on one clone.
type GroupBackend interface {
	EvalGroup(reqs []GroupRequest) []error
}

// drainBatch opportunistically grabs up to GroupMax-1 more queued jobs
// behind first, without blocking: grouping only ever batches work that
// is already waiting, so an idle service adds no latency.
func (s *Service) drainBatch(first *job) []*job {
	batch := []*job{first}
	for len(batch) < s.cfg.GroupMax {
		select {
		case j, ok := <-s.queue:
			if !ok {
				return batch // closed and drained
			}
			batch = append(batch, j)
		default:
			return batch
		}
	}
	return batch
}

// groupJobState accumulates one grouped job's streaming outcome. dups
// are identical in-flight jobs (same endpoints, canonical expression,
// count mode and limit) coalesced onto this one: the evaluation runs
// once and its Result fans out to every member of the set.
type groupJobState struct {
	j       *job
	dups    []*job
	timeout time.Duration
	sols    []Solution
	n       int
	stopped error
}

// runGrouped evaluates a drained batch: 2RPQ jobs that pass preflight
// are coalesced by identity (identical queued queries share one
// evaluation — the cache-miss thundering herd runs once) and the
// distinct survivors go through one EvalGroup call; pattern jobs run
// solo on the same worker. Every job receives exactly one Result on
// its done channel.
func (s *Service) runGrouped(gb GroupBackend, b Backend, batch []*job) {
	var members []*groupJobState
	seen := make(map[string]*groupJobState, len(batch))
	for _, j := range batch {
		if j.pattern != nil {
			res := s.run(b, j)
			s.finish(j, &res)
			j.done <- res
			continue
		}
		// Preflight mirrors run(): context first, then the deadline
		// anchored at submission (queue wait counts against the budget).
		if err := j.ctx.Err(); err != nil {
			s.countCtxErr(err)
			res := Result{Err: err}
			s.finish(j, &res)
			j.done <- res
			continue
		}
		var timeout time.Duration
		if !j.deadline.IsZero() {
			timeout = time.Until(j.deadline)
			if timeout <= 0 {
				j.wait = time.Since(j.enqueued)
				s.queueWait.Add(j.wait.Nanoseconds())
				s.timeouts.Add(1)
				s.completed.Add(1)
				res := Result{Err: core.ErrTimeout}
				s.finish(j, &res)
				j.done <- res
				continue
			}
		}
		// Streamed jobs keep their own evaluation (their emit callback
		// is their identity), and so do profiled jobs (their trace must
		// describe exactly one evaluation); everything else coalesces
		// via the result cache key, which covers endpoints, canonical
		// expression, count mode and limit. The set evaluates under the
		// most generous member deadline: a shorter-deadline duplicate
		// can only receive its full result sooner than it would alone.
		if j.stream == nil && j.trace == nil {
			key := cacheKey(j.req, j.canon)
			if p, ok := seen[key]; ok {
				p.dups = append(p.dups, j)
				if timeout == 0 || (p.timeout != 0 && timeout > p.timeout) {
					p.timeout = timeout
				}
				continue
			}
			st := &groupJobState{j: j, timeout: timeout}
			seen[key] = st
			members = append(members, st)
			continue
		}
		members = append(members, &groupJobState{j: j, timeout: timeout})
	}
	if len(members) == 0 {
		return
	}
	if len(members) == 1 && len(members[0].dups) == 0 {
		// Nothing to share; keep run()'s exact code path (run stamps
		// the queue wait and eval telemetry itself).
		j := members[0].j
		res := s.run(b, j)
		s.finish(j, &res)
		j.done <- res
		return
	}

	reqs := make([]GroupRequest, len(members))
	jobs := 0
	for i, st := range members {
		st := st
		jobs += 1 + len(st.dups)
		reqs[i] = GroupRequest{
			Subject: st.j.req.Subject,
			Object:  st.j.req.Object,
			Expr:    st.j.node,
			Limit:   st.j.req.Limit,
			Timeout: st.timeout,
			Emit: func(sol Solution) bool {
				st.n++
				if st.j.stream != nil {
					if !st.j.stream(sol) {
						st.stopped = errStopped
						return false
					}
				} else if !st.j.req.Count {
					st.sols = append(st.sols, sol)
				}
				if st.n%1024 == 0 && st.j.ctx.Err() != nil {
					st.stopped = st.j.ctx.Err()
					return false
				}
				return true
			},
		}
	}

	// Evaluation starts now: stamp every member's (and duplicate's)
	// queue wait and open the shared-eval telemetry window.
	for _, st := range members {
		st.j.wait = time.Since(st.j.enqueued)
		s.queueWait.Add(st.j.wait.Nanoseconds())
		st.j.trace.Add(obs.SpanQueueWait, st.j.enqueued)
		st.j.grouped = true
		for _, d := range st.dups {
			d.wait = time.Since(d.enqueued)
			s.queueWait.Add(d.wait.Nanoseconds())
			d.grouped = true
		}
	}

	s.inflight.Add(int64(jobs))
	if len(members) >= 2 {
		s.grouped.Add(int64(jobs))
	} else {
		s.grouped.Add(int64(1 + len(members[0].dups)))
	}
	evalStart := time.Now()
	errs := func() []error {
		// Deferred so a panicking evaluation (recovered in
		// runGroupedSafe) cannot leak the inflight count.
		defer s.inflight.Add(int64(-jobs))
		return gb.EvalGroup(reqs)
	}()
	evalDur := time.Since(evalStart)

	for i, st := range members {
		var err error
		if i < len(errs) {
			err = errs[i]
		}
		res := Result{Solutions: st.sols, N: st.n, Err: err}
		switch {
		case st.stopped == errStopped:
			res.Err = nil
		case st.stopped != nil:
			s.countCtxErr(st.stopped)
			res.Err = st.stopped
		case errors.Is(err, core.ErrTimeout):
			s.timeouts.Add(int64(1 + len(st.dups)))
		case err != nil:
			s.errs.Add(int64(1 + len(st.dups)))
		default:
			s.store(st.j, res)
		}
		s.completed.Add(int64(1 + len(st.dups)))
		s.deduped.Add(int64(len(st.dups)))
		st.j.evalDur = evalDur
		st.j.trace.Add(obs.SpanEval, evalStart, int64(st.n))
		s.finish(st.j, &res)
		st.j.done <- res
		for _, d := range st.dups {
			// Each duplicate gets its own telemetry finish on a copy
			// (duplicates are never profiled — profiled jobs are not
			// coalesced — so the copy carries no trace).
			dres := res
			dres.Trace = nil
			d.evalDur = evalDur
			s.finish(d, &dres)
			d.done <- dres
		}
	}
}
