// Package datagen generates synthetic knowledge graphs with the
// statistical shape of the paper's Wikidata benchmark (§5): a heavily
// Zipf-skewed predicate distribution (Wikidata's 5,419 predicates range
// from hundreds of millions of uses to a handful), hub-heavy node degrees
// (preferential-attachment style), and node/predicate counts far larger
// than the predicate alphabet. The real dump (958M edges) is substituted
// by a seeded generator scaled to available memory; DESIGN.md discusses
// why the evaluation's shape is preserved.
package datagen

import (
	"fmt"
	"math/rand"

	"ringrpq/internal/triples"
)

// Config controls the generator. Zero values select the defaults noted
// on each field.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// Nodes is the node-id space |V| (default 10000).
	Nodes int
	// Edges is the number of edge draws before deduplication
	// (default 5*Nodes).
	Edges int
	// Preds is the base predicate count |P| (default 50).
	Preds int
	// PredSkew is the Zipf exponent of predicate popularity
	// (default 1.4; Wikidata's usage distribution is comparably steep).
	PredSkew float64
	// NodeSkew is the Zipf exponent of node endpoint popularity
	// (default 1.1, producing hub nodes as in real knowledge graphs).
	NodeSkew float64
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 10000
	}
	if c.Edges == 0 {
		c.Edges = 5 * c.Nodes
	}
	if c.Preds == 0 {
		c.Preds = 50
	}
	if c.PredSkew == 0 {
		c.PredSkew = 1.4
	}
	if c.NodeSkew == 0 {
		c.NodeSkew = 1.1
	}
	return c
}

// Generate builds a completed graph per the configuration. Node names
// follow Wikidata conventions (Q42), predicates likewise (P31).
func Generate(cfg Config) *triples.Graph {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	predZipf := rand.NewZipf(rng, cfg.PredSkew, 1, uint64(cfg.Preds-1))
	nodeZipf := rand.NewZipf(rng, cfg.NodeSkew, 1, uint64(cfg.Nodes-1))

	b := triples.NewBuilder()
	for i := 0; i < cfg.Nodes; i++ {
		b.Nodes().Intern(NodeName(i))
	}
	for i := 0; i < cfg.Preds; i++ {
		b.Preds().Intern(PredName(i))
	}

	// A Zipf draw gives the popularity *rank*; permuting ranks to ids
	// decouples popularity from the id order so range-based structures
	// are not accidentally favoured.
	nodePerm := rng.Perm(cfg.Nodes)
	predPerm := rng.Perm(cfg.Preds)

	for i := 0; i < cfg.Edges; i++ {
		s := uint32(nodePerm[nodeZipf.Uint64()])
		o := uint32(nodePerm[nodeZipf.Uint64()])
		p := uint32(predPerm[predZipf.Uint64()])
		b.AddIDs(s, p, o)
	}
	return b.Build()
}

// NodeName renders the Wikidata-style name of node i.
func NodeName(i int) string { return fmt.Sprintf("Q%d", i+1) }

// PredName renders the Wikidata-style name of predicate i.
func PredName(i int) string { return fmt.Sprintf("P%d", i+1) }
