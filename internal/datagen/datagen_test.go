package datagen

import (
	"testing"

	"ringrpq/internal/triples"
)

func TestDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, Nodes: 500, Edges: 2000, Preds: 10})
	b := Generate(Config{Seed: 7, Nodes: 500, Edges: 2000, Preds: 10})
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Triples {
		if a.Triples[i] != b.Triples[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
	c := Generate(Config{Seed: 8, Nodes: 500, Edges: 2000, Preds: 10})
	if c.Len() == a.Len() {
		same := true
		for i := range a.Triples {
			if a.Triples[i] != c.Triples[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Nodes == 0 || cfg.Edges == 0 || cfg.Preds == 0 || cfg.PredSkew == 0 {
		t.Fatal("defaults not applied")
	}
}

func TestSkewShape(t *testing.T) {
	g := Generate(Config{Seed: 1, Nodes: 2000, Edges: 20000, Preds: 20})
	// Predicate usage must be skewed: the most frequent base predicate
	// should exceed the least frequent by a large factor.
	counts := make([]int, g.NumPreds)
	for _, tr := range g.Triples {
		if tr.P < g.NumPreds {
			counts[tr.P]++
		}
	}
	max, min := 0, 1<<30
	used := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c > 0 {
			used++
			if c < min {
				min = c
			}
		}
	}
	if used < 5 {
		t.Fatalf("only %d predicates used", used)
	}
	if max < 8*min {
		t.Fatalf("predicate distribution not skewed: max=%d min=%d", max, min)
	}
	// Node degrees must have hubs.
	deg := map[uint32]int{}
	for _, tr := range g.Triples {
		deg[tr.S]++
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 20 {
		t.Fatalf("no hub nodes: max degree %d", maxDeg)
	}
}

func TestCompletedAndNamed(t *testing.T) {
	g := Generate(Config{Seed: 3, Nodes: 100, Edges: 400, Preds: 5})
	if g.NumCompletedPreds() != 10 {
		t.Fatalf("completed preds=%d, want 10", g.NumCompletedPreds())
	}
	set := map[triples.Triple]bool{}
	for _, tr := range g.Triples {
		set[tr] = true
	}
	for _, tr := range g.Triples {
		if !set[triples.Triple{S: tr.O, P: g.Inverse(tr.P), O: tr.S}] {
			t.Fatal("missing inverse edge")
		}
	}
	if _, ok := g.Nodes.Lookup("Q1"); !ok {
		t.Fatal("node naming scheme broken")
	}
	if _, ok := g.Preds.Lookup("P1"); !ok {
		t.Fatal("predicate naming scheme broken")
	}
}
