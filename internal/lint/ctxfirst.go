package lint

import (
	"go/ast"
	"go/types"
)

// ctxIfaceNames are the service/engine seam interfaces whose
// implementations carry request-scoped state (trace, deadline) and so
// must accept a context first.
var ctxIfaceNames = map[string]bool{
	"Backend":        true,
	"PatternBackend": true,
	"Updater":        true,
	"Evaluator":      true,
}

// ctxMethodNames are the methods those interfaces are recognized by —
// an interface only counts as a seam interface if it declares at least
// one of them.
var ctxMethodNames = map[string]bool{
	"Eval":         true,
	"EvalPattern":  true,
	"ApplyUpdates": true,
}

// CtxFirst enforces the ctx-first calling convention established in
// PR 9: the seam interfaces (Backend, PatternBackend, Updater,
// core.Evaluator) declare context.Context as the first parameter of
// their request methods, and exported methods of their implementations
// never take a context anywhere but first.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "seam interfaces and their implementations take context.Context as the first parameter",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) {
	// Pass 1: interface declarations in this package. A seam interface
	// must declare ctx first on every recognized request method.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			it, ok := ts.Type.(*ast.InterfaceType)
			if !ok || !ctxIfaceNames[ts.Name.Name] {
				return true
			}
			if !declaresCtxMethod(p, it) {
				return true
			}
			for _, field := range it.Methods.List {
				ft, ok := field.Type.(*ast.FuncType)
				if !ok || len(field.Names) == 0 {
					continue
				}
				name := field.Names[0].Name
				if !ctxMethodNames[name] {
					continue
				}
				if !firstParamIsCtx(p, ft) {
					p.Reportf(field.Pos(), "interface method %s.%s must take context.Context as its first parameter", ts.Name.Name, name)
				}
			}
			return true
		})
	}

	// Pass 2: implementations. Collect seam interface types visible
	// here (this package plus its imports), then check exported
	// methods of local types that implement one.
	ifaces := seamInterfaces(p.Pkg)
	if len(ifaces) == 0 {
		return
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			recv := obj.Type().(*types.Signature).Recv()
			if recv == nil || !implementsAny(recv.Type(), ifaces) {
				continue
			}
			sig := obj.Type().(*types.Signature)
			params := sig.Params()
			for i := 0; i < params.Len(); i++ {
				if isContextContext(params.At(i).Type()) {
					if i != 0 {
						p.Reportf(fd.Name.Pos(), "method %s on a seam-interface implementation takes context.Context as parameter %d; it must come first", fd.Name.Name, i+1)
					}
					break
				}
			}
		}
	}
}

// declaresCtxMethod reports whether the interface literal declares at
// least one recognized request method.
func declaresCtxMethod(p *Pass, it *ast.InterfaceType) bool {
	for _, field := range it.Methods.List {
		for _, name := range field.Names {
			if ctxMethodNames[name.Name] {
				return true
			}
		}
	}
	return false
}

func firstParamIsCtx(p *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	first := ft.Params.List[0]
	tv, ok := p.Info.Types[first.Type]
	if !ok {
		return false
	}
	return isContextContext(tv.Type)
}

// seamInterfaces finds interface types named like a seam interface and
// declaring a recognized method, in pkg and its direct imports.
func seamInterfaces(pkg *types.Package) []*types.Interface {
	var out []*types.Interface
	scan := func(p *types.Package) {
		scope := p.Scope()
		for _, name := range scope.Names() {
			if !ctxIfaceNames[name] {
				continue
			}
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			it, ok := tn.Type().Underlying().(*types.Interface)
			if !ok {
				continue
			}
			for i := 0; i < it.NumMethods(); i++ {
				if ctxMethodNames[it.Method(i).Name()] {
					out = append(out, it)
					break
				}
			}
		}
	}
	scan(pkg)
	for _, imp := range pkg.Imports() {
		scan(imp)
	}
	return out
}

func implementsAny(t types.Type, ifaces []*types.Interface) bool {
	for _, it := range ifaces {
		if types.Implements(t, it) {
			return true
		}
		if _, isPtr := t.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(t), it) {
				return true
			}
		}
	}
	return false
}
