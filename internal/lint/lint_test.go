package lint

import (
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// moduleRoot locates the repo root so testdata packages can import
// real repo packages (internal/obs, internal/wal, ...) through the
// toolchain's export data.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	return strings.TrimSpace(string(out))
}

var (
	exportsOnce sync.Once
	exportsMap  map[string]string
	exportsErr  error
)

// repoExports builds (once) the import path → export data map for the
// whole module and its dependency closure.
func repoExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		exportsMap, exportsErr = listExports(moduleRoot(t), "./...")
	})
	if exportsErr != nil {
		t.Fatalf("listing exports: %v", exportsErr)
	}
	return exportsMap
}

// wantRE matches one `// want "rx" "rx"...` comment.
var (
	wantRE  = regexp.MustCompile(`//\s*want\s+(.*)$`)
	quoteRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// runGolden type-checks one testdata package under the given import
// path, runs a single analyzer over it, and matches the surviving
// diagnostics against // want comments line by line.
func runGolden(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	exports := repoExports(t)

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	cp, err := checkPackage(fset, imp, importPath, dir, goFiles)
	if err != nil {
		t.Fatalf("typechecking testdata: %v", err)
	}

	var wants []*expectation
	for _, name := range goFiles {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			qs := quoteRE.FindAllStringSubmatch(m[1], -1)
			if len(qs) == 0 {
				t.Fatalf("%s:%d: malformed want comment", path, i+1)
			}
			for _, q := range qs {
				rx, err := regexp.Compile(q[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, rx: rx})
			}
		}
	}

	diags := Run([]*Analyzer{a}, []*CheckedPackage{cp})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.line != d.Pos.Line || filepath.Base(w.file) != filepath.Base(d.Pos.Filename) {
				continue
			}
			if w.rx.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}
}

func goldenDir(t *testing.T, name string) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata", "src", name)
}

func TestCtxFirstGolden(t *testing.T) {
	runGolden(t, CtxFirst, goldenDir(t, "ctxfirst"), "test/ctxfirst")
}

func TestSpanEndGolden(t *testing.T) {
	runGolden(t, SpanEnd, goldenDir(t, "spanend"), "test/spanend")
}

func TestDeadlineLoopGolden(t *testing.T) {
	// The analyzer only fires in the traversal hot packages, so the
	// testdata package is checked under a hot-package import path.
	runGolden(t, DeadlineLoop, goldenDir(t, "deadlineloop"), "test/internal/ltj")
}

func TestDeadlineLoopSkipsColdPackages(t *testing.T) {
	// The same package under a non-hot path must produce nothing.
	exports := repoExports(t)
	dir := goldenDir(t, "deadlineloop")
	fset := token.NewFileSet()
	cp, err := checkPackage(fset, ExportImporter(fset, exports), "test/coldpkg", dir, []string{"a.go"})
	if err != nil {
		t.Fatal(err)
	}
	if diags := Run([]*Analyzer{DeadlineLoop}, []*CheckedPackage{cp}); len(diags) != 0 {
		t.Fatalf("deadlineloop fired outside hot packages: %v", diags)
	}
}

func TestLockSendGolden(t *testing.T) {
	runGolden(t, LockSend, goldenDir(t, "locksend"), "test/locksend")
}

func TestWalErrGolden(t *testing.T) {
	runGolden(t, WalErr, goldenDir(t, "walerr"), "test/walerr")
}

func TestNoAllocGolden(t *testing.T) {
	runGolden(t, NoAlloc, goldenDir(t, "noalloc"), "test/noalloc")
}

// TestMalformedIgnoreDirective checks that a reason-less //lint:ignore
// suppresses nothing and is itself reported.
func TestMalformedIgnoreDirective(t *testing.T) {
	exports := repoExports(t)
	dir := goldenDir(t, "badignore")
	fset := token.NewFileSet()
	cp, err := checkPackage(fset, ExportImporter(fset, exports), "test/badignore", dir, []string{"a.go"})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Analyzer{WalErr}, []*CheckedPackage{cp})
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (malformed directive + unsuppressed walerr), got %d: %v", len(diags), diags)
	}
	var sawMalformed, sawWalerr bool
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			sawMalformed = strings.Contains(d.Message, "malformed")
		case "walerr":
			sawWalerr = true
		}
	}
	if !sawMalformed || !sawWalerr {
		t.Fatalf("missing expected diagnostics: %v", diags)
	}
}

// TestRepoClean is the e2e guard: the full analyzer suite over the
// whole repository must come back clean, i.e. `rpqlint ./...` exits 0.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	pkgs, err := Load(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("loading repo: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags := Run(All(), pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("rpqlint found %d violation(s) on the tree; fix them or suppress with //lint:ignore <analyzer> <reason>", len(diags))
	}
}

// TestDiagnosticFormat pins the output contract other tooling greps
// for: file:line: analyzer: message.
func TestDiagnosticFormat(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x/y.go", Line: 7},
		Analyzer: "walerr",
		Message:  "boom",
	}
	if got, want := d.String(), "x/y.go:7: walerr: boom"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}
