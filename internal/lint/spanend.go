package lint

import (
	"go/ast"
	"go/token"
)

// SpanEnd enforces the obs span discipline from PR 9: a span handle
// obtained from Trace.Begin must be closed with End/EndVals in the
// same function, and not leak past an early return unless the End is
// deferred. Handles that escape the function — returned, stored into a
// struct/slice/map, or passed to another call — are assumed to be
// closed by their new owner and are skipped (the service layer's job
// structs carry root spans this way).
//
// The check is intra-procedural and lexical: an early return between
// Begin and the first non-deferred End is flagged even if some path
// analysis could prove it unreachable. Use defer, or suppress with a
// written justification.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc:  "obs span Begin calls are paired with End/EndVals on all paths",
	Run:  runSpanEnd,
}

func runSpanEnd(p *Pass) {
	funcDecls(p.Files, func(node ast.Node, body *ast.BlockStmt) {
		checkSpansIn(p, node, body)
	})
}

type spanUse struct {
	beginPos token.Pos
	name     string
	ends     []token.Pos // non-deferred End/EndVals call positions
	deferred bool        // at least one deferred End/EndVals
	escapes  bool
}

// checkSpansIn analyzes one function body. Nested function literals
// are skipped here; funcDecls visits them independently.
func checkSpansIn(p *Pass, fn ast.Node, body *ast.BlockStmt) {
	spans := map[string]*spanUse{} // local handle name → use

	inspectShallow(fn, body, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// idx := tr.Begin(kind) — a new local span handle.
			if len(st.Rhs) != 1 || len(st.Lhs) != 1 {
				return
			}
			call, ok := st.Rhs[0].(*ast.CallExpr)
			if !ok || !isObsCall(p, call, "Begin") {
				return
			}
			id, ok := st.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				p.Reportf(call.Pos(), "span handle from Begin is discarded; store it and call End/EndVals")
				return
			}
			spans[id.Name] = &spanUse{beginPos: call.Pos(), name: id.Name}
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				if isObsCall(p, call, "Begin") {
					p.Reportf(call.Pos(), "span handle from Begin is discarded; store it and call End/EndVals")
					return
				}
				recordEnd(p, spans, call, false)
			}
		case *ast.DeferStmt:
			if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
				// defer func() { tr.End(idx) }() — treat Ends inside
				// the deferred literal as deferred Ends.
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if c, ok := n.(*ast.CallExpr); ok {
						recordEnd(p, spans, c, true)
					}
					return true
				})
			} else {
				recordEnd(p, spans, st.Call, true)
			}
		case *ast.CallExpr:
			// A handle passed to any call other than End/EndVals
			// escapes to the callee.
			if isObsCall(p, st, "End") || isObsCall(p, st, "EndVals") {
				return
			}
			for _, arg := range st.Args {
				markEscape(spans, arg)
			}
		case *ast.ReturnStmt:
			for _, r := range st.Results {
				markEscape(spans, r)
			}
		case *ast.CompositeLit:
			for _, el := range st.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					markEscape(spans, kv.Value)
				} else {
					markEscape(spans, el)
				}
			}
		case *ast.SendStmt:
			markEscape(spans, st.Value)
		}
	})

	// A handle captured by a (non-deferred) closure is owned by that
	// closure's lifetime — treat it as escaping.
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if su := spans[id.Name]; su != nil {
					su.escapes = true
				}
			}
			return true
		})
		return false
	})

	for _, su := range spans {
		if su.escapes || su.deferred {
			continue
		}
		if len(su.ends) == 0 {
			p.Reportf(su.beginPos, "span %s is begun but never ended in this function", su.name)
			continue
		}
		firstEnd := su.ends[0]
		for _, e := range su.ends[1:] {
			if e < firstEnd {
				firstEnd = e
			}
		}
		// An early return lexically between Begin and the first End
		// leaks the span on that path.
		inspectShallow(fn, body, func(n ast.Node) {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return
			}
			if ret.Pos() > su.beginPos && ret.Pos() < firstEnd {
				p.Reportf(ret.Pos(), "return leaks span %s begun earlier; End it before returning or use defer", su.name)
			}
		})
	}
}

// recordEnd notes an End/EndVals call on a tracked handle. Assignment
// via st.X handled by caller.
func recordEnd(p *Pass, spans map[string]*spanUse, call *ast.CallExpr, deferred bool) {
	if !isObsCall(p, call, "End") && !isObsCall(p, call, "EndVals") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	if su := spans[id.Name]; su != nil {
		if deferred {
			su.deferred = true
		} else {
			su.ends = append(su.ends, call.Pos())
		}
	}
}

// markEscape marks a tracked handle as escaping if expr is that bare
// identifier.
func markEscape(spans map[string]*spanUse, expr ast.Expr) {
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if su := spans[id.Name]; su != nil {
			su.escapes = true
		}
	}
}

// isObsCall reports whether call invokes a method with the given name
// whose receiver type is declared in internal/obs.
func isObsCall(p *Pass, call *ast.CallExpr, name string) bool {
	if calleeName(call) != name {
		return false
	}
	f := calleeFunc(p.Info, call)
	return f != nil && hasPathSuffix(pkgPathOf(f), "internal/obs")
}

// inspectShallow walks the statements of body without descending into
// nested function literals (they are analyzed as their own functions).
func inspectShallow(fn ast.Node, body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		visit(n)
		return true
	})
}
