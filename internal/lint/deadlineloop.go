package lint

import (
	"go/ast"
)

// deadlineLoopPkgs are the traversal hot packages (by import-path
// suffix) where unbounded loops over descent primitives must carry a
// deadline probe. glushkov is deliberately excluded: steppers are
// straight-line per-step kernels and the probes live in their callers.
var deadlineLoopPkgs = []string{
	"internal/core",
	"internal/overlay",
	"internal/ltj",
}

// descendPrimitives are the step/descend kernel entry points: a loop
// that (transitively, within the package) calls one of these walks the
// product graph and can run for an unbounded number of iterations.
var descendPrimitives = map[string]bool{
	"StepBack":     true,
	"PredMask":     true,
	"TraverseMany": true,
	"Descend":      true,
	"Step":         true,
}

// deadlineProbes are the recognized probe spellings: the engines'
// amortized checkDeadline methods and the field-stored probe hooks
// (check/Check) they install into LTJ and overlay state.
var deadlineProbes = map[string]bool{
	"checkDeadline": true,
	"CheckDeadline": true,
	"check":         true,
	"Check":         true,
	"probe":         true,
}

// DeadlineLoop enforces the PR 7 deadline discipline: in the traversal
// and join hot packages, any loop that reaches a step/descend
// primitive must also reach a deadline probe — in the loop body, or at
// least somewhere in the innermost enclosing function (the engines'
// probes are amortized with steps%64 clock reads, so one probe call
// site per leaf callback satisfies the budget discipline). Reachability
// is a same-package call-graph fixpoint; cross-package calls other
// than the primitives themselves are not expanded.
var DeadlineLoop = &Analyzer{
	Name: "deadlineloop",
	Doc:  "traversal loops in hot packages contain a deadline/ctx probe",
	Run:  runDeadlineLoop,
}

func runDeadlineLoop(p *Pass) {
	target := false
	for _, suffix := range deadlineLoopPkgs {
		if hasPathSuffix(p.Pkg.Path(), suffix) {
			target = true
			break
		}
	}
	if !target {
		return
	}

	// Same-package call-graph fixpoint: which local functions reach a
	// primitive, and which reach a probe.
	reachPrim := map[string]bool{}
	reachProbe := map[string]bool{}
	bodies := map[string]*ast.BlockStmt{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				bodies[fd.Name.Name] = fd.Body
			}
		}
	}
	directPrim := func(call *ast.CallExpr) bool { return descendPrimitives[calleeName(call)] }
	directProbe := func(call *ast.CallExpr) bool { return deadlineProbes[calleeName(call)] }
	for changed := true; changed; {
		changed = false
		for name, body := range bodies {
			if reachPrim[name] && reachProbe[name] {
				continue
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeName(call)
				if !reachPrim[name] && (directPrim(call) || reachPrim[callee]) {
					reachPrim[name] = true
					changed = true
				}
				if !reachProbe[name] && (directProbe(call) || reachProbe[callee]) {
					reachProbe[name] = true
					changed = true
				}
				return true
			})
		}
	}

	// Check every loop: if its body reaches a primitive, a probe must
	// be reachable from the loop body or from the innermost enclosing
	// function body.
	reaches := func(n ast.Node) (prim, probe bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeName(call)
			if directPrim(call) || reachPrim[callee] {
				prim = true
			}
			if directProbe(call) || reachProbe[callee] {
				probe = true
			}
			return true
		})
		return prim, probe
	}
	funcDecls(p.Files, func(node ast.Node, body *ast.BlockStmt) {
		_, fnProbe := reaches(body)
		inspectShallow(node, body, func(n ast.Node) {
			var lbody *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				lbody = loop.Body
			case *ast.RangeStmt:
				lbody = loop.Body
			default:
				return
			}
			prim, probe := reaches(lbody)
			if prim && !probe && !fnProbe {
				p.Reportf(n.Pos(), "loop calls step/descend primitives without a deadline probe; call checkDeadline (or a probe-bearing helper) in the loop body")
			}
		})
	})
}
