package lint

import (
	"go/ast"
)

// walErrNames are durability call sites recognized by name in addition
// to anything from internal/wal: fsync, directory sync, and atomic
// rename are exactly the operations whose failures latch the WAL wedge
// or break crash-atomicity, so their errors are never droppable.
var walErrNames = map[string]bool{
	"Sync":    true,
	"SyncDir": true,
	"Rename":  true,
	"Fsync":   true,
}

// WalErr enforces the PR 8 durability discipline: error results from
// internal/wal calls and from fsync/rename/dirsync call sites must not
// be discarded — not as a bare expression statement, not via the blank
// identifier, not behind go/defer. A sync failure that is dropped on
// the floor silently un-latches the crash-safety story the WAL exists
// to provide.
//
// Close is deliberately out of scope: error-path cleanup closes and
// deferred closes of read-only files are idiomatic discards, and
// happy-path durability is enforced through the Sync/SyncDir/Rename
// sites this analyzer does check.
var WalErr = &Analyzer{
	Name: "walerr",
	Doc:  "no discarded error results from internal/wal and fsync/rename/dirsync call sites",
	Run:  runWalErr,
}

func runWalErr(p *Pass) {
	check := func(call *ast.CallExpr, how string) {
		if !isWalCall(p, call) || !resultsIncludeError(p.Info, call) {
			return
		}
		p.Reportf(call.Pos(), "error from %s is discarded%s; WAL/fsync/rename errors must be handled", calleeName(call), how)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					check(call, "")
				}
			case *ast.GoStmt:
				check(st.Call, " (go statement)")
			case *ast.DeferStmt:
				check(st.Call, " (deferred)")
			case *ast.AssignStmt:
				// _ = f() / v, _ = f(): flag when every error result
				// position is assigned to blank. With one RHS call and
				// any blank LHS we approximate: blank anywhere + call
				// has error → check which position. Keep it simple and
				// strict: a call whose error lands in `_` is a discard.
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := st.Rhs[0].(*ast.CallExpr)
				if !ok || !isWalCall(p, call) || !resultsIncludeError(p.Info, call) {
					return true
				}
				if errAssignedToBlank(p, st, call) {
					p.Reportf(call.Pos(), "error from %s is assigned to _; WAL/fsync/rename errors must be handled", calleeName(call))
				}
			}
			return true
		})
	}
}

// errAssignedToBlank reports whether the error result of call is bound
// to the blank identifier in st.
func errAssignedToBlank(p *Pass, st *ast.AssignStmt, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return false
	}
	results := fn.Signature().Results()
	if results.Len() != len(st.Lhs) {
		// Single-value context or count mismatch: fall back to "any
		// blank LHS" when the call's sole result is the error.
		if results.Len() == 1 && len(st.Lhs) == 1 {
			id, ok := st.Lhs[0].(*ast.Ident)
			return ok && id.Name == "_"
		}
		return false
	}
	for i := 0; i < results.Len(); i++ {
		if !isErrorType(results.At(i).Type()) {
			continue
		}
		if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			return true
		}
	}
	return false
}

// isWalCall reports whether the call targets internal/wal or a
// recognized fsync/rename/dirsync name. Close is exempt (see the
// analyzer doc).
func isWalCall(p *Pass, call *ast.CallExpr) bool {
	name := calleeName(call)
	if walErrNames[name] {
		return true
	}
	if name == "Close" {
		return false
	}
	f := calleeFunc(p.Info, call)
	return f != nil && hasPathSuffix(pkgPathOf(f), "internal/wal")
}
