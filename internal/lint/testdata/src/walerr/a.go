// Package walerrdata exercises the walerr analyzer, against both the
// real internal/wal package and name-matched fsync/rename sites.
package walerrdata

import "ringrpq/internal/wal"

type file struct{}

func (file) Sync() error                 { return nil }
func (file) Rename(a, b string) error    { return nil }
func (file) SyncDir(dir string) error    { return nil }
func (file) Close() error                { return nil }
func (file) Write(b []byte) (int, error) { return len(b), nil }

// dropsWalError discards an error from an internal/wal method.
func dropsWalError(l *wal.Log) {
	l.Sync(l.LastLSN()) // want "error from Sync is discarded"
}

// dropsTruncate discards through a statement call.
func dropsTruncate(l *wal.Log) {
	l.TruncateBefore(7) // want "error from TruncateBefore is discarded"
}

// blankWalError launders the error through the blank identifier.
func blankWalError(l *wal.Log, payload []byte) {
	_, _ = l.Append(1, payload) // want "assigned to _"
}

// handled is the correct form.
func handled(l *wal.Log) error {
	return l.Sync(l.LastLSN())
}

// dropsFsync hits the name-matched sites on a non-wal type.
func dropsFsync(f file, dir string) {
	f.Sync()           // want "error from Sync is discarded"
	f.SyncDir(dir)     // want "error from SyncDir is discarded"
	f.Rename(dir, dir) // want "error from Rename is discarded"
}

// deferredSync drops the error behind defer.
func deferredSync(f file) {
	defer f.Sync() // want "deferred"
}

// closeIsExempt: Close discards are idiomatic cleanup and out of
// scope.
func closeIsExempt(f file) {
	f.Close()
}

// writeNotMatched: Write is not a durability call site by name, and
// file is not from internal/wal.
func writeNotMatched(f file, b []byte) {
	f.Write(b)
}

// suppressed documents a deliberate best-effort sync.
func suppressed(l *wal.Log) {
	//lint:ignore walerr best-effort background sync; failures latch inside Sync and surface on the next Append
	l.Sync(l.LastLSN())
}
