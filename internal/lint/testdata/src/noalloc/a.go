// Package noallocdata exercises the noalloc analyzer.
package noallocdata

type pair struct{ s, o uint32 }

type sink interface{ accept(v any) }

// hot is annotated and clean: value struct literals, array literals,
// shifts and slicing allocate nothing.
//
//ringrpq:noalloc
func hot(xs []uint64, x uint64) uint64 {
	var tmp [4]uint64
	p := pair{s: uint32(x), o: uint32(x >> 32)}
	tmp[0] = uint64(p.s)
	for _, v := range xs[:min(len(xs), 4)] {
		tmp[1] |= v
	}
	return tmp[0] | tmp[1]
}

// makes allocates via make.
//
//ringrpq:noalloc
func makes(n int) []uint64 {
	return make([]uint64, n) // want "make in //ringrpq:noalloc function makes"
}

// appends grows a slice.
//
//ringrpq:noalloc
func appends(xs []uint64, x uint64) []uint64 {
	return append(xs, x) // want "append in"
}

// boxes converts a concrete value to an interface at a call boundary.
//
//ringrpq:noalloc
func boxes(s sink, v uint64) {
	s.accept(v) // want "interface boxing at call argument"
}

// closes captures a variable in a closure.
//
//ringrpq:noalloc
func closes(x uint64) func() uint64 {
	return func() uint64 { return x } // want "closure"
}

// concats builds a string.
//
//ringrpq:noalloc
func concats(a, b string) string {
	return a + b // want "string concatenation"
}

// converts copies between string and []byte.
//
//ringrpq:noalloc
func converts(b []byte) string {
	return string(b) // want "conversion"
}

// ptrLit heap-allocates a composite literal.
//
//ringrpq:noalloc
func ptrLit() *pair {
	return &pair{} // want "pointer composite literal"
}

// sliceLit allocates backing storage.
//
//ringrpq:noalloc
func sliceLit() []uint64 {
	return []uint64{1, 2} // want "slice composite literal"
}

// unannotated may allocate freely.
func unannotated(n int) []uint64 {
	return append(make([]uint64, 0, n), 1)
}

// suppressed keeps the annotation but documents one cold construct.
//
//ringrpq:noalloc
func suppressed(n int) []uint64 {
	//lint:ignore noalloc first-touch growth only; steady state reuses the returned buffer
	return make([]uint64, n)
}
