// Package locksenddata exercises the locksend analyzer.
package locksenddata

import "sync"

type hub struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	stop chan struct{}
}

// sendWhileLocked is the core violation: a send that can block while
// every other writer queues behind h.mu.
func (h *hub) sendWhileLocked(v int) {
	h.mu.Lock()
	h.ch <- v // want "channel send while holding h.mu"
	h.mu.Unlock()
}

// sendAfterUnlock releases first: fine.
func (h *hub) sendAfterUnlock(v int) {
	h.mu.Lock()
	h.mu.Unlock()
	h.ch <- v
}

// deferredUnlockSend holds to function end via defer, so the send is
// still under the lock.
func (h *hub) deferredUnlockSend(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ch <- v // want "channel send while holding h.mu"
}

// nonBlockingSignal is the Sub.signal pattern: select with default
// cannot block, so it is allowed under the lock.
func (h *hub) nonBlockingSignal(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	select {
	case h.ch <- v:
	default:
	}
}

// blockingSelect has no default: flagged.
func (h *hub) blockingSelect(v int) {
	h.rw.RLock()
	defer h.rw.RUnlock()
	select { // want "blocking select while holding h.rw"
	case h.ch <- v:
	case <-h.stop:
	}
}

// branchLocal: the lock taken and released inside the branch does not
// leak to the send after it.
func (h *hub) branchLocal(v int, cond bool) {
	if cond {
		h.mu.Lock()
		h.mu.Unlock()
	}
	h.ch <- v
}

// unlockInBranchThenSend releases inside the branch before sending:
// fine within that branch.
func (h *hub) unlockInBranchThenSend(v int, cond bool) {
	h.mu.Lock()
	if cond {
		h.mu.Unlock()
		h.ch <- v
		return
	}
	h.mu.Unlock()
}

// goroutineBody starts fresh: the literal runs with no inherited lock.
func (h *hub) goroutineBody(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	go func() {
		h.ch <- v
	}()
}

// suppressed documents why this send is safe under the lock.
func (h *hub) suppressed(v int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	//lint:ignore locksend h.ch is buffered to the subscriber count and drained by the owner of h.mu
	h.ch <- v
}
