// Package badignoredata checks that a //lint:ignore directive without
// a reason suppresses nothing and is itself reported.
package badignoredata

type file struct{}

func (file) Sync() error { return nil }

func dropsWithBadDirective(f file) {
	//lint:ignore walerr
	f.Sync()
}
