// Package ctxfirstdata exercises the ctxfirst analyzer.
package ctxfirstdata

import "context"

// Evaluator is a seam interface whose Eval lacks a leading context.
type Evaluator interface {
	Eval(q int, emit func(uint32, uint32) bool) error // want "must take context.Context as its first parameter"
}

// Backend is a correct seam interface: ctx comes first.
type Backend interface {
	Eval(ctx context.Context, q int) error
}

// Updater is a suppressed violation: the directive names the analyzer
// and gives a reason, so nothing is reported.
type Updater interface {
	//lint:ignore ctxfirst frozen wire-compat shim; new code uses Backend
	ApplyUpdates(adds []int) error
}

// NotASeam shares a method name but not a seam name: ignored.
type NotASeam interface {
	Eval(q int) error
}

// GoodImpl implements Backend with ctx first everywhere.
type GoodImpl struct{}

func (GoodImpl) Eval(ctx context.Context, q int) error { return nil }

// BadImpl implements Backend but misplaces ctx on another exported
// method.
type BadImpl struct{}

func (BadImpl) Eval(ctx context.Context, q int) error { return nil }

func (BadImpl) Describe(name string, ctx context.Context) {} // want "must come first"

// unexported helpers with trailing ctx on non-implementations are not
// the analyzer's business.
type plain struct{}

func (plain) run(name string, ctx context.Context) { _ = ctx }
