// Package spanenddata exercises the spanend analyzer against the real
// obs.Trace API.
package spanenddata

import "ringrpq/internal/obs"

// leaky begins a span and returns without ever ending it.
func leaky(tr *obs.Trace) {
	idx := tr.Begin(obs.SpanEval) // want "begun but never ended"
	_ = idx
}

// earlyReturn ends the span on the fall-through path only: the
// conditional return leaks it.
func earlyReturn(tr *obs.Trace, fail bool) error {
	idx := tr.Begin(obs.SpanEval)
	if fail {
		return errFail // want "return leaks span idx"
	}
	tr.End(idx)
	return nil
}

// deferred is the canonical correct form: End on every path via defer.
func deferred(tr *obs.Trace) {
	idx := tr.Begin(obs.SpanEval)
	defer tr.End(idx)
	work()
}

// deferredLit ends inside a deferred closure; also fine.
func deferredLit(tr *obs.Trace) {
	idx := tr.Begin(obs.SpanEval)
	defer func() { tr.EndVals(idx, 1) }()
	work()
}

// straightLine ends before any return; fine without defer.
func straightLine(tr *obs.Trace) {
	idx := tr.Begin(obs.SpanEval)
	work()
	tr.EndVals(idx, 2)
}

// escapes hands the handle to a struct; ownership moves with it.
type job struct{ root int }

func escapes(tr *obs.Trace) *job {
	root := tr.Begin(obs.SpanEval)
	return &job{root: root}
}

// discarded drops the handle on the floor.
func discarded(tr *obs.Trace) {
	tr.Begin(obs.SpanEval) // want "span handle from Begin is discarded"
}

// suppressed leaks deliberately, with a documented reason.
func suppressed(tr *obs.Trace) {
	//lint:ignore spanend span intentionally left open for the process lifetime in this fixture
	idx := tr.Begin(obs.SpanEval)
	_ = idx
}

var errFail = errSentinel{}

type errSentinel struct{}

func (errSentinel) Error() string { return "fail" }

func work() {}
