// Package deadlineloopdata exercises the deadlineloop analyzer. The
// golden test checks it under a hot-package import path (test/internal/ltj);
// a second test re-checks it under a cold path and expects silence.
package deadlineloopdata

type stepper struct{ mask uint64 }

// StepBack and PredMask spell the descend-primitive names the analyzer
// recognizes.
func (s *stepper) StepBack(x uint64) uint64       { return x >> 1 & s.mask }
func (s *stepper) PredMask(c uint32) uint64       { return uint64(c) }
func (s *stepper) checkDeadline() error           { return nil }
func (s *stepper) helperWithProbe() error         { return s.checkDeadline() }
func (s *stepper) helperWithPrim(x uint64) uint64 { return s.StepBack(x) }

// unprobed walks the product graph with no deadline probe anywhere in
// the function.
func unprobed(s *stepper, frontier []uint64) uint64 {
	var acc uint64
	for _, x := range frontier { // want "without a deadline probe"
		acc |= s.StepBack(x) & s.PredMask(uint32(x))
	}
	return acc
}

// probedInLoop checks the deadline inside the loop body: fine.
func probedInLoop(s *stepper, frontier []uint64) uint64 {
	var acc uint64
	for _, x := range frontier {
		if err := s.checkDeadline(); err != nil {
			return acc
		}
		acc |= s.StepBack(x)
	}
	return acc
}

// probedInFunction probes once per callback invocation; the analyzer
// accepts a probe anywhere in the innermost enclosing function
// (engine probes are amortized).
func probedInFunction(s *stepper, frontier []uint64) uint64 {
	var acc uint64
	if err := s.checkDeadline(); err != nil {
		return 0
	}
	for _, x := range frontier {
		acc |= s.StepBack(x)
	}
	return acc
}

// transitive reaches a primitive through a same-package helper: still
// flagged without a probe.
func transitive(s *stepper, frontier []uint64) uint64 {
	var acc uint64
	for _, x := range frontier { // want "without a deadline probe"
		acc |= s.helperWithPrim(x)
	}
	return acc
}

// transitiveProbe reaches a probe through a same-package helper: fine.
func transitiveProbe(s *stepper, frontier []uint64) uint64 {
	var acc uint64
	for _, x := range frontier {
		if err := s.helperWithProbe(); err != nil {
			return acc
		}
		acc |= s.StepBack(x)
	}
	return acc
}

// plainLoop touches no primitives; never flagged.
func plainLoop(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// suppressed documents why this bounded loop needs no probe.
func suppressed(s *stepper, eight [8]uint64) uint64 {
	var acc uint64
	//lint:ignore deadlineloop fixed 8-iteration unrolled kernel, bounded by construction
	for _, x := range eight {
		acc |= s.StepBack(x)
	}
	return acc
}
