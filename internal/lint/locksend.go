package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSend enforces the publish-lock / standing-notify discipline from
// PR 6/8: while a sync.Mutex or sync.RWMutex acquired in the current
// function is held, the function must not perform a channel send or a
// blocking select — a full subscriber queue would stall every writer
// behind the lock. Deliver after Unlock, or use a non-blocking select
// with a default case (the Sub.signal pattern).
//
// The analysis is intra-procedural and lexical: locks are tracked per
// receiver expression ("h.mu"), branch bodies see a copy of the held
// set, deferred Unlocks hold to function end, and function literals
// start with an empty set (they run later, under their own rules).
var LockSend = &Analyzer{
	Name: "locksend",
	Doc:  "no channel send or blocking select while holding a mutex acquired in the same function",
	Run:  runLockSend,
}

func runLockSend(p *Pass) {
	funcDecls(p.Files, func(node ast.Node, body *ast.BlockStmt) {
		checkLockSend(p, body, map[string]bool{})
	})
}

// checkLockSend walks one block with the given held-lock set. Nested
// blocks (branches, loops) get a copy so their Lock/Unlock effects
// stay local to the branch.
func checkLockSend(p *Pass, block *ast.BlockStmt, held map[string]bool) {
	for _, stmt := range block.List {
		walkLockSendStmt(p, stmt, held)
	}
}

func walkLockSendStmt(p *Pass, stmt ast.Stmt, held map[string]bool) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			applyLockCall(p, call, held, false)
		}
	case *ast.DeferStmt:
		applyLockCall(p, st.Call, held, true)
	case *ast.SendStmt:
		reportIfHeld(p, st.Pos(), held, "channel send")
	case *ast.SelectStmt:
		blocking := true
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				blocking = false // default case present
			}
		}
		if blocking {
			reportIfHeld(p, st.Pos(), held, "blocking select")
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				sub := copyHeld(held)
				for _, s := range cc.Body {
					walkLockSendStmt(p, s, sub)
				}
			}
		}
	case *ast.BlockStmt:
		checkLockSend(p, st, copyHeld(held))
	case *ast.IfStmt:
		if st.Init != nil {
			walkLockSendStmt(p, st.Init, held)
		}
		checkLockSend(p, st.Body, copyHeld(held))
		if st.Else != nil {
			walkLockSendStmt(p, st.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if st.Init != nil {
			walkLockSendStmt(p, st.Init, held)
		}
		checkLockSend(p, st.Body, copyHeld(held))
	case *ast.RangeStmt:
		checkLockSend(p, st.Body, copyHeld(held))
	case *ast.SwitchStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				for _, s := range cc.Body {
					walkLockSendStmt(p, s, sub)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				sub := copyHeld(held)
				for _, s := range cc.Body {
					walkLockSendStmt(p, s, sub)
				}
			}
		}
	case *ast.LabeledStmt:
		walkLockSendStmt(p, st.Stmt, held)
	case *ast.GoStmt:
		// The goroutine body runs concurrently with its own empty
		// held set; the `go` statement itself does not block.
	}
}

func reportIfHeld(p *Pass, pos token.Pos, held map[string]bool, what string) {
	if len(held) == 0 {
		return
	}
	lock := ""
	for k := range held {
		if lock == "" || k < lock {
			lock = k
		}
	}
	p.Reportf(pos, "%s while holding %s; deliver after Unlock or use a select with a default case", what, lock)
}

// applyLockCall updates the held set for Lock/Unlock calls on
// sync.Mutex / sync.RWMutex values.
func applyLockCall(p *Pass, call *ast.CallExpr, held map[string]bool, deferred bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return
	}
	if !isSyncMutexRecv(p, sel.X) {
		return
	}
	key := types.ExprString(sel.X)
	switch method {
	case "Lock", "RLock":
		if !deferred {
			held[key] = true
		}
	case "Unlock", "RUnlock":
		if deferred {
			// defer x.Unlock(): held until function end — keep held.
			return
		}
		delete(held, key)
	}
}

// isSyncMutexRecv reports whether expr's type is sync.Mutex or
// sync.RWMutex (possibly via pointer).
func isSyncMutexRecv(p *Pass, expr ast.Expr) bool {
	tv, ok := p.Info.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if pkgPathOf(obj) != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
