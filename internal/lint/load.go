package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A CheckedPackage is one fully type-checked target package.
type CheckedPackage struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves the given package patterns (relative to dir, usually
// the module root) with `go list -export -json -deps`, then re-parses
// and type-checks every non-dependency match from source. Imports —
// including stdlib and other in-module packages — are satisfied from
// the compiler's export data, so no source outside the target set is
// parsed and no third-party loader is needed.
func Load(dir string, patterns ...string) ([]*CheckedPackage, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var targets []listPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var out []*CheckedPackage
	for _, t := range targets {
		cp, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, cp)
	}
	return out, nil
}

// goList runs `go list -e -export -json -deps` and decodes the
// package stream.
func goList(dir string, patterns ...string) ([]listPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var out []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		out = append(out, p)
	}
	return out, nil
}

// listExports returns the import path → export data map for the
// pattern's dependency closure.
func listExports(dir string, patterns ...string) (map[string]string, error) {
	pkgs, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// ExportImporter returns a types.Importer that resolves import paths
// through the given map of import path → gc export-data file (as
// produced by `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*CheckedPackage, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &CheckedPackage{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}
