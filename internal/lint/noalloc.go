package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noallocDirective marks a function as allocation-free; the analyzer
// is the static complement of the 0 allocs/op benchmark guard on
// BenchmarkCompiledStepperSteadyState.
const noallocDirective = "//ringrpq:noalloc"

// NoAlloc checks functions annotated //ringrpq:noalloc for constructs
// that allocate: make/new, append, pointer and map/slice composite
// literals, closures, string concatenation, string<->[]byte
// conversions, and concrete-to-interface boxing at call, return, and
// assignment boundaries. The check is per-function (callees are not
// expanded): annotate the whole hot path, and split cold slow paths
// into unannotated helpers.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "functions annotated //ringrpq:noalloc contain no allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasNoallocDirective(fd) {
				continue
			}
			checkNoAlloc(p, fd)
		}
	}
}

func hasNoallocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), noallocDirective) {
			return true
		}
	}
	return false
}

func checkNoAlloc(p *Pass, fd *ast.FuncDecl) {
	report := func(pos token.Pos, what string) {
		p.Reportf(pos, "%s in //ringrpq:noalloc function %s", what, fd.Name.Name)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			switch {
			case isBuiltin(p.Info, e, "make"):
				report(e.Pos(), "make")
			case isBuiltin(p.Info, e, "new"):
				report(e.Pos(), "new")
			case isBuiltin(p.Info, e, "append"):
				report(e.Pos(), "append")
			case isStringByteConversion(p, e):
				report(e.Pos(), "string<->[]byte conversion")
			default:
				checkCallBoxing(p, e, report)
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(e.Pos(), "pointer composite literal")
				}
			}
		case *ast.CompositeLit:
			tv, ok := p.Info.Types[e]
			if !ok {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				report(e.Pos(), "slice composite literal")
			case *types.Map:
				report(e.Pos(), "map composite literal")
			}
		case *ast.FuncLit:
			report(e.Pos(), "closure")
			return false
		case *ast.BinaryExpr:
			if e.Op == token.ADD && isStringExpr(p, e.X) && isStringExpr(p, e.Y) {
				report(e.Pos(), "string concatenation")
			}
		case *ast.AssignStmt:
			for i := range e.Lhs {
				if i >= len(e.Rhs) {
					break
				}
				checkBoxing(p, e.Lhs[i], e.Rhs[i], report)
			}
		case *ast.ReturnStmt:
			checkReturnBoxing(p, fd, e, report)
		case *ast.GoStmt:
			report(e.Pos(), "go statement")
		}
		return true
	})
}

// isStringByteConversion detects string([]byte) and []byte(string)
// conversions, both of which copy.
func isStringByteConversion(p *Pass, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	dst := tv.Type.Underlying()
	argTV, ok := p.Info.Types[call.Args[0]]
	if !ok {
		return false
	}
	src := argTV.Type.Underlying()
	return (isStringType(dst) && isByteSlice(src)) || (isByteSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isStringExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && isStringType(tv.Type.Underlying())
}

// checkCallBoxing flags concrete values passed to interface-typed
// parameters (including variadic ...any), which box on the heap.
func checkCallBoxing(p *Pass, call *ast.CallExpr, report func(token.Pos, string)) {
	fn := calleeFunc(p.Info, call)
	if fn == nil {
		return
	}
	sig := fn.Signature()
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			continue
		}
		if boxesToInterface(p, pt, arg) {
			report(arg.Pos(), "interface boxing at call argument")
		}
	}
}

func checkBoxing(p *Pass, lhs, rhs ast.Expr, report func(token.Pos, string)) {
	ltv, ok := p.Info.Types[lhs]
	if !ok {
		return
	}
	if boxesToInterface(p, ltv.Type, rhs) {
		report(rhs.Pos(), "interface boxing at assignment")
	}
}

func checkReturnBoxing(p *Pass, fd *ast.FuncDecl, ret *ast.ReturnStmt, report func(token.Pos, string)) {
	obj, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Signature().Results()
	if results.Len() != len(ret.Results) {
		return
	}
	for i, r := range ret.Results {
		if boxesToInterface(p, results.At(i).Type(), r) {
			report(r.Pos(), "interface boxing at return")
		}
	}
}

// boxesToInterface reports whether assigning expr to a destination of
// type dst converts a concrete non-nil value to an interface.
func boxesToInterface(p *Pass, dst types.Type, expr ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := p.Info.Types[expr]
	if !ok {
		return false
	}
	if tv.IsNil() {
		return false
	}
	if _, ok := tv.Type.Underlying().(*types.Interface); ok {
		return false // interface-to-interface, no box
	}
	return true
}
