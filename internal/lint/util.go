package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for builtins, conversions, and calls through plain function
// values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fn].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
		}
		if f, ok := info.Uses[fn.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// calleeName returns the bare name a call is spelled with: the
// selector for method calls and field-stored func values, the
// identifier otherwise. Empty for anonymous callees.
func calleeName(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isBuiltin reports whether a call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// pkgPathOf returns the import path of the package an object belongs
// to, or "" for builtins and universe objects.
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// hasPathSuffix reports whether an import path is exactly suffix or
// ends in "/"+suffix.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isContextContext reports whether t is context.Context.
func isContextContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && pkgPathOf(obj) == "context"
}

// resultsIncludeError reports whether the call's result tuple contains
// an error value.
func resultsIncludeError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}

// funcDecls yields every function body in the package — declarations
// and function literals — invoking fn with the enclosing node and the
// body. Function literals are visited as independent functions.
func funcDecls(files []*ast.File, fn func(node ast.Node, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					fn(d, d.Body)
				}
			case *ast.FuncLit:
				fn(d, d.Body)
			}
			return true
		})
	}
}
