// Package lint is a zero-dependency static-analysis framework for the
// ringrpq repository. It loads packages via `go list -export -json`
// (so type-checking uses the toolchain's own export data and needs no
// third-party loader), runs a fixed suite of repo-specific analyzers,
// and reports diagnostics as `file:line: analyzer: message`.
//
// Diagnostics can be suppressed with a written justification:
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line immediately above it. The
// reason is mandatory — a directive without one suppresses nothing and
// is itself reported, so every suppression in the tree documents why
// the invariant does not apply at that site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer checks one repository invariant over a type-checked
// package. Analyzers are purely intra-package (plus whatever their
// imports expose through export data) and must be side-effect free.
type Analyzer struct {
	Name string // short lowercase identifier, used in output and //lint:ignore
	Doc  string // one-line description of the invariant
	Run  func(p *Pass)
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical
// `file:line: analyzer: message` form. File paths are made relative to
// dir when possible so CI output is stable across checkouts.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Relativize rewrites the diagnostic's file path relative to dir.
func (d Diagnostic) Relativize(dir string) Diagnostic {
	if rel, err := filepath.Rel(dir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// Run executes every analyzer over every package and returns the
// surviving diagnostics, sorted by position. Suppressed diagnostics
// are dropped; malformed or unused //lint:ignore directives are
// reported as diagnostics of the pseudo-analyzer "lint".
func Run(analyzers []*Analyzer, pkgs []*CheckedPackage) []Diagnostic {
	var all []Diagnostic
	var directives []*ignoreDirective
	for _, cp := range pkgs {
		directives = append(directives, collectIgnores(cp)...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     cp.Fset,
				Files:    cp.Files,
				Pkg:      cp.Pkg,
				Info:     cp.Info,
				diags:    &all,
			}
			a.Run(pass)
		}
	}

	byKey := make(map[string][]*ignoreDirective)
	for _, d := range directives {
		if d.analyzer == "" || d.reason == "" {
			all = append(all, Diagnostic{
				Pos:      token.Position{Filename: d.file, Line: d.line},
				Analyzer: "lint",
				Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer> <reason>",
			})
			continue
		}
		// A directive suppresses matching diagnostics on its own line
		// and on the line below (the usual "comment above the
		// statement" placement).
		for _, line := range []int{d.line, d.line + 1} {
			byKey[fmt.Sprintf("%s:%d:%s", d.file, line, d.analyzer)] = append(
				byKey[fmt.Sprintf("%s:%d:%s", d.file, line, d.analyzer)], d)
		}
	}

	kept := all[:0]
	for _, d := range all {
		key := fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.Analyzer)
		if ds := byKey[key]; len(ds) > 0 {
			for _, dir := range ds {
				dir.used = true
			}
			continue
		}
		kept = append(kept, d)
	}

	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// collectIgnores parses //lint:ignore directives out of a package's
// comments.
func collectIgnores(cp *CheckedPackage) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range cp.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:ignore"))
				pos := cp.Fset.Position(c.Pos())
				d := &ignoreDirective{file: pos.Filename, line: pos.Line, pos: c.Pos()}
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					d.analyzer = rest[:i]
					d.reason = strings.TrimSpace(rest[i+1:])
				} else {
					d.analyzer = rest
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFirst,
		SpanEnd,
		DeadlineLoop,
		LockSend,
		WalErr,
		NoAlloc,
	}
}
