package glushkov

// Stepper is the compiled hot-path interface for the reverse
// product-graph traversal (§4): PredMask(c) returns B[c] with class
// positions folded in (Engine.BFor), StepBack(x) applies the reverse
// transition T'[x] (Engine.Trev, Eq. 2). An Engine is itself a Stepper
// (the interpreter); Compile specializes a hot automaton into a
// branch-lighter form — a dense predicate→mask table plus either a flat
// single-lookup reverse table or an unrolled shift for recognizable
// shapes (single predicate, alternation of predicates, k-step
// concatenation), generalizing the §5 fast paths.
//
// Steppers are immutable after Compile and safe for concurrent use.
type Stepper interface {
	// PredMask returns the positions readable by predicate c (B[c],
	// classes folded in).
	PredMask(c uint32) uint64
	// StepBack returns the states reaching some state of x in one step
	// (T'[x]).
	StepBack(x uint64) uint64
	// Kind names the specialization for reports ("interp", "table",
	// "table-chunked", "single", "chain", "alt").
	Kind() string
}

// PredMask implements Stepper on the interpreter (alias of BFor).
//
//ringrpq:noalloc
func (e *Engine) PredMask(c uint32) uint64 { return e.BFor(c) }

// StepBack implements Stepper on the interpreter (alias of Trev).
//
//ringrpq:noalloc
func (e *Engine) StepBack(x uint64) uint64 { return e.Trev(x) }

// Kind implements Stepper on the interpreter.
func (e *Engine) Kind() string { return "interp" }

// maxDenseAlphabet bounds the dense predicate table; alphabets beyond
// it fall back to the interpreter's sparse map (never hit in practice:
// the table costs 8 bytes per completed predicate id).
const maxDenseAlphabet = 1 << 22

// predTable is the dense predicate→position-mask table shared by all
// compiled steppers: one bounds check and one load per leaf instead of
// a map probe plus the class fold.
type predTable []uint64

//ringrpq:noalloc
func (b predTable) PredMask(c uint32) uint64 {
	if int(c) < len(b) {
		return b[c]
	}
	return 0
}

// tableStepper is the general ≤64-state form with a single-chunk
// reverse table: StepBack is one load.
type tableStepper struct {
	predTable
	trev []uint64
	mask uint64
}

//ringrpq:noalloc
func (t *tableStepper) StepBack(x uint64) uint64 { return t.trev[x&t.mask] }
func (t *tableStepper) Kind() string             { return "table" }

// chunkedStepper is the general form when the reverse table is split
// into d-bit subtables (m+1 > fullTableBits).
type chunkedStepper struct {
	predTable
	trev [][]uint64
	d    uint
}

//ringrpq:noalloc
func (t *chunkedStepper) StepBack(x uint64) uint64 {
	var r uint64
	mask := uint64(1)<<t.d - 1
	for k := range t.trev {
		r |= t.trev[k][x>>(uint(k)*t.d)&mask]
	}
	return r
}
func (t *chunkedStepper) Kind() string { return "table-chunked" }

// chainStepper handles pure concatenations of predicates (a/b/c …):
// position i follows exactly position i+1, so T'[x] is a shift. m == 1
// is the single-predicate case.
type chainStepper struct {
	predTable
	mask uint64 // (1<<m)-1: states 0..m-1, the only ones with successors
	m    int
}

//ringrpq:noalloc
func (c *chainStepper) StepBack(x uint64) uint64 { return x >> 1 & c.mask }
func (c *chainStepper) Kind() string {
	if c.m == 1 {
		return "single"
	}
	return "chain"
}

// altStepper handles alternations of predicates (a|b|c …): every
// position is first and final, so T'[x] is the initial state iff x
// holds any position.
type altStepper struct {
	predTable
}

//ringrpq:noalloc
func (a *altStepper) StepBack(x uint64) uint64 {
	if x&^1 != 0 {
		return 1
	}
	return 0
}
func (a *altStepper) Kind() string { return "alt" }

// Compile specializes e into a Stepper for an alphabet of numPreds
// completed predicate ids. The result folds class positions into the
// dense predicate table and picks the cheapest StepBack form the
// automaton's follow structure admits. Compile allocates; callers memo
// the result per expression so the steady state is allocation-free.
func Compile(e *Engine, numPreds uint32) Stepper {
	size := numPreds
	for c := range e.B {
		if c >= size {
			size = c + 1
		}
	}
	if size > maxDenseAlphabet {
		return e
	}
	b := make(predTable, size)
	for c := range b {
		b[c] = e.BFor(uint32(c))
	}

	m := e.A.M
	if e.negFwd|e.negInv == 0 && m >= 1 {
		chain := e.followMask[m] == 0
		for i := 0; chain && i < m; i++ {
			chain = e.followMask[i] == 1<<uint(i+1)
		}
		if chain {
			return &chainStepper{predTable: b, mask: 1<<uint(m) - 1, m: m}
		}
		if m >= 2 {
			allPos := (uint64(1)<<uint(m+1) - 1) &^ 1
			alt := e.followMask[0] == allPos
			for i := 1; alt && i <= m; i++ {
				alt = e.followMask[i] == 0
			}
			if alt {
				return &altStepper{predTable: b}
			}
		}
	}

	if len(e.trev) == 1 {
		return &tableStepper{predTable: b, trev: e.trev[0], mask: 1<<uint(e.d) - 1}
	}
	return &chunkedStepper{predTable: b, trev: e.trev, d: uint(e.d)}
}
