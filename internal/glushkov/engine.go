package glushkov

import "fmt"

// MaxEngineStates is the largest automaton (m+1 states) the uint64 Engine
// supports; use Wide beyond it.
const MaxEngineStates = 64

// fullTableBits is the threshold below which a single full transition
// table (2^(m+1) entries) is used instead of split subtables, as in the
// paper's implementation (§5 uses 16-bit cells).
const fullTableBits = 16

// Engine is the bit-parallel simulator of an Automaton with at most 64
// states. State sets are uint64 masks with bit 0 = the initial state and
// bit j = position j. It is immutable after construction and safe for
// concurrent use.
type Engine struct {
	A *Automaton

	// B maps each symbol to the mask of positions it labels (the paper's
	// B[c] table, sparse because queries mention few predicates).
	B map[uint32]uint64
	// F is the mask of final states (last positions, plus the initial
	// state when the language is nullable).
	F uint64
	// Init is the mask holding only the initial state.
	Init uint64

	nbits int // m+1
	d     int // subtable width in bits

	// Symbol-class (negated property set) support: numCompleted is the
	// completed alphabet size (0 when the automaton has no classes);
	// negFwd/negInv mark class positions per direction, and negExcl[c]
	// marks the class positions whose exclusion list contains c.
	numCompleted uint32
	negFwd       uint64
	negInv       uint64
	negExcl      map[uint32]uint64

	// followMask[i] = mask of Follow[i].
	followMask []uint64

	// tfwd[k][x] = union of followMask[i] over states i whose bit lies in
	// chunk k and is set in x; T[X] = OR_k tfwd[k][chunk_k(X)] (Eq. 1).
	tfwd [][]uint64
	// trev[k][x] = mask of states i with followMask[i] ∩ chunk_k-bits(x)
	// nonempty; T'[X] = OR_k trev[k][chunk_k(X)] (Eq. 2).
	trev [][]uint64
}

// NewEngine builds an Engine with the default table decomposition: one
// full table when m+1 ≤ 16, 8-bit subtables otherwise. Automata with
// symbol classes need NewEngineFor, which knows the alphabet size.
func NewEngine(a *Automaton) (*Engine, error) {
	return NewEngineFor(a, 0)
}

// NewEngineFor is NewEngine for an alphabet of numCompleted completed
// predicate ids, enabling symbol classes (negated property sets).
func NewEngineFor(a *Automaton, numCompleted uint32) (*Engine, error) {
	d := 8
	if a.M+1 <= fullTableBits {
		d = a.M + 1
	}
	return NewEngineSplitFor(a, d, numCompleted)
}

// NewEngineSplit builds an Engine whose transition tables are split into
// d-bit subtables (1 ≤ d ≤ 16); space O((m/d)·2^d) words, step time
// O(m/d). Exposed for the table-width ablation benchmark.
func NewEngineSplit(a *Automaton, d int) (*Engine, error) {
	return NewEngineSplitFor(a, d, 0)
}

// NewEngineSplitFor combines NewEngineSplit and NewEngineFor.
func NewEngineSplitFor(a *Automaton, d int, numCompleted uint32) (*Engine, error) {
	if a.M+1 > MaxEngineStates {
		return nil, fmt.Errorf("glushkov: %d states exceed the %d-state engine; use Wide", a.M+1, MaxEngineStates)
	}
	if d < 1 || d > 16 {
		return nil, fmt.Errorf("glushkov: invalid subtable width %d", d)
	}
	if a.HasClasses() && numCompleted == 0 {
		return nil, fmt.Errorf("glushkov: automaton has symbol classes; use NewEngineFor with the alphabet size")
	}
	e := &Engine{A: a, Init: 1, nbits: a.M + 1, d: d, numCompleted: numCompleted}
	e.negExcl = map[uint32]uint64{}
	for j, cl := range a.Classes {
		if cl == nil {
			continue
		}
		bit := uint64(1) << uint(j+1)
		if cl.Inverse {
			e.negInv |= bit
		} else {
			e.negFwd |= bit
		}
		for _, c := range cl.Excl {
			e.negExcl[c] |= bit
		}
	}

	e.followMask = make([]uint64, a.M+1)
	for i, fs := range a.Follow {
		var m uint64
		for _, j := range fs {
			m |= 1 << uint(j)
		}
		e.followMask[i] = m
	}

	e.B = make(map[uint32]uint64, a.M)
	for j, c := range a.Syms {
		if c != NoSymbol {
			e.B[c] |= 1 << uint(j+1)
		}
	}

	for _, j := range a.Last {
		e.F |= 1 << uint(j)
	}
	if a.Nullable {
		e.F |= e.Init
	}

	nchunks := (e.nbits + d - 1) / d
	e.tfwd = make([][]uint64, nchunks)
	e.trev = make([][]uint64, nchunks)
	for k := 0; k < nchunks; k++ {
		size := 1 << uint(d)
		fwd := make([]uint64, size)
		rev := make([]uint64, size)
		base := k * d
		// Build by dynamic programming on set bits: t[x] = t[x without
		// lowest bit] | t[lowest bit only].
		for i := 0; i < d && base+i < e.nbits; i++ {
			fwd[1<<uint(i)] = e.followMask[base+i]
			var r uint64
			probe := uint64(1) << uint(base+i)
			for s := 0; s <= a.M; s++ {
				if e.followMask[s]&probe != 0 {
					r |= 1 << uint(s)
				}
			}
			rev[1<<uint(i)] = r
		}
		for x := 1; x < size; x++ {
			low := x & -x
			if x != low {
				fwd[x] = fwd[x^low] | fwd[low]
				rev[x] = rev[x^low] | rev[low]
			}
		}
		e.tfwd[k] = fwd
		e.trev[k] = rev
	}
	return e, nil
}

// chunkMask extracts chunk k of X as a subtable index.
func (e *Engine) chunk(x uint64, k int) int {
	return int(x >> uint(k*e.d) & (1<<uint(e.d) - 1))
}

// T applies the forward reachability table: the states reachable in one
// step from any state in X, by any symbol.
func (e *Engine) T(x uint64) uint64 {
	var r uint64
	for k := range e.tfwd {
		r |= e.tfwd[k][e.chunk(x, k)]
	}
	return r
}

// Trev applies the reverse table: the states that reach some state of X
// in one step.
func (e *Engine) Trev(x uint64) uint64 {
	var r uint64
	for k := range e.trev {
		r |= e.trev[k][e.chunk(x, k)]
	}
	return r
}

// BFor returns B[c]: the positions readable by symbol c, including
// class positions whose class contains c (zero when the automaton never
// reads c).
func (e *Engine) BFor(c uint32) uint64 {
	b := e.B[c]
	if e.negFwd|e.negInv != 0 && c < e.numCompleted {
		if c < e.numCompleted/2 {
			b |= e.negFwd &^ e.negExcl[c]
		} else {
			b |= e.negInv &^ e.negExcl[c]
		}
	}
	return b
}

// NegClassBits returns the class-position masks per direction (forward,
// inverse); callers that maintain per-range filters (the §4.1 wavelet
// descent) use these as the conservative contribution of classes.
func (e *Engine) NegClassBits() (fwd, inv uint64) { return e.negFwd, e.negInv }

// StepFwd advances the active-state set D by reading symbol c
// (Eq. 1: D ← T[D] & B[c]).
func (e *Engine) StepFwd(d uint64, c uint32) uint64 {
	return e.T(d) & e.BFor(c)
}

// StepRev retreats D by symbol c for right-to-left scanning
// (Eq. 2: D ← T'[D & B[c]]).
func (e *Engine) StepRev(d uint64, c uint32) uint64 {
	return e.Trev(d & e.BFor(c))
}

// AcceptsFwd reports whether a forward simulation currently accepts.
func (e *Engine) AcceptsFwd(d uint64) bool { return d&e.F != 0 }

// AcceptsRev reports whether a reverse simulation has reached the initial
// state, i.e. the whole word read (backwards) is in the language.
func (e *Engine) AcceptsRev(d uint64) bool { return d&e.Init != 0 }

// MatchFwd simulates the word left to right and reports acceptance.
func (e *Engine) MatchFwd(word []uint32) bool {
	d := e.Init
	for _, c := range word {
		d = e.StepFwd(d, c)
		if d == 0 {
			return false
		}
	}
	return e.AcceptsFwd(d)
}

// MatchRev simulates the word right to left and reports acceptance;
// equivalent to MatchFwd by construction.
func (e *Engine) MatchRev(word []uint32) bool {
	d := e.F
	for i := len(word) - 1; i >= 0; i-- {
		d = e.StepRev(d, word[i])
		if d == 0 {
			return false
		}
	}
	return e.AcceptsRev(d)
}

// SizeBytes reports the table memory of the engine (the working-space
// term O(2^m + |P|) of §4).
func (e *Engine) SizeBytes() int {
	sz := 8*len(e.followMask) + 16*len(e.B) + 64
	for k := range e.tfwd {
		sz += 8 * (len(e.tfwd[k]) + len(e.trev[k]))
	}
	return sz
}
