package glushkov

// Mask is a multiword state set for automata beyond 64 states. Bit i of
// the mask (bit i%64 of word i/64) is state i.
type Mask []uint64

// NewMask returns an all-zero mask with capacity for nbits states.
func NewMask(nbits int) Mask { return make(Mask, (nbits+63)/64) }

// Test reports bit i.
func (m Mask) Test(i int) bool { return m[i/64]&(1<<uint(i%64)) != 0 }

// Set sets bit i.
func (m Mask) Set(i int) { m[i/64] |= 1 << uint(i%64) }

// Any reports whether any bit is set.
func (m Mask) Any() bool {
	for _, w := range m {
		if w != 0 {
			return true
		}
	}
	return false
}

// Zero clears all bits.
func (m Mask) Zero() {
	for i := range m {
		m[i] = 0
	}
}

// CopyFrom overwrites m with src.
func (m Mask) CopyFrom(src Mask) { copy(m, src) }

// Or sets m |= x.
func (m Mask) Or(x Mask) {
	for i, w := range x {
		m[i] |= w
	}
}

// AndNot sets m &= ^x.
func (m Mask) AndNot(x Mask) {
	for i, w := range x {
		m[i] &^= w
	}
}

// Intersects reports whether m ∩ x is nonempty.
func (m Mask) Intersects(x Mask) bool {
	for i, w := range x {
		if m[i]&w != 0 {
			return true
		}
	}
	return false
}

// SubsetOf reports whether m ⊆ x.
func (m Mask) SubsetOf(x Mask) bool {
	for i, w := range m {
		if w&^x[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports mask equality.
func (m Mask) Equal(x Mask) bool {
	for i, w := range m {
		if w != x[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy.
func (m Mask) Clone() Mask {
	out := make(Mask, len(m))
	copy(out, m)
	return out
}

// wideChunkBits is the fixed subtable width of the Wide engine. Eight
// bits keeps chunks word-aligned (64/8) so chunk extraction never
// straddles words.
const wideChunkBits = 8

// Wide is the multiword bit-parallel simulator for automata with more
// than 64 states (the general case of §3.3, where all costs gain a factor
// O(m/w)). Transition tables are split into 8-bit subtables of multiword
// entries. Step methods write into caller-provided destination masks to
// stay allocation-free; destinations must not alias sources.
type Wide struct {
	A     *Automaton
	B     map[uint32]Mask
	F     Mask
	Init  Mask
	nbits int
	words int

	tfwd [][]Mask // [chunk][256] → follow union
	trev [][]Mask // [chunk][256] → reverse reachability

	// Class support (see Engine): direction masks of class positions,
	// per-symbol exclusion masks, and a scratch buffer for resolved
	// B-masks (Wide is not concurrency-safe).
	numCompleted uint32
	negFwd       Mask
	negInv       Mask
	negExcl      map[uint32]Mask
	bScratch     Mask
}

// NewWide builds the multiword engine; it works for any m. Automata with
// symbol classes need NewWideFor.
func NewWide(a *Automaton) *Wide { return NewWideFor(a, 0) }

// NewWideFor is NewWide for an alphabet of numCompleted completed ids,
// enabling symbol classes.
func NewWideFor(a *Automaton, numCompleted uint32) *Wide {
	nbits := a.M + 1
	w := &Wide{A: a, nbits: nbits, words: (nbits + 63) / 64, numCompleted: numCompleted}
	w.negFwd = NewMask(nbits)
	w.negInv = NewMask(nbits)
	w.negExcl = map[uint32]Mask{}
	w.bScratch = NewMask(nbits)
	for j, cl := range a.Classes {
		if cl == nil {
			continue
		}
		dir := w.negFwd
		if cl.Inverse {
			dir = w.negInv
		}
		dir.Set(j + 1)
		for _, c := range cl.Excl {
			if w.negExcl[c] == nil {
				w.negExcl[c] = NewMask(nbits)
			}
			w.negExcl[c].Set(j + 1)
		}
	}
	w.Init = NewMask(nbits)
	w.Init.Set(0)
	w.F = NewMask(nbits)
	for _, j := range a.Last {
		w.F.Set(int(j))
	}
	if a.Nullable {
		w.F.Set(0)
	}
	w.B = make(map[uint32]Mask, a.M)
	for j, c := range a.Syms {
		if c == NoSymbol {
			continue
		}
		if w.B[c] == nil {
			w.B[c] = NewMask(nbits)
		}
		w.B[c].Set(j + 1)
	}

	follow := make([]Mask, nbits)
	for i, fs := range a.Follow {
		follow[i] = NewMask(nbits)
		for _, j := range fs {
			follow[i].Set(int(j))
		}
	}

	nchunks := (nbits + wideChunkBits - 1) / wideChunkBits
	w.tfwd = make([][]Mask, nchunks)
	w.trev = make([][]Mask, nchunks)
	for k := 0; k < nchunks; k++ {
		fwd := make([]Mask, 256)
		rev := make([]Mask, 256)
		fwd[0] = NewMask(nbits)
		rev[0] = NewMask(nbits)
		base := k * wideChunkBits
		for i := 0; i < wideChunkBits && base+i < nbits; i++ {
			fwd[1<<uint(i)] = follow[base+i].Clone()
			r := NewMask(nbits)
			for s := 0; s < nbits; s++ {
				if follow[s].Test(base + i) {
					r.Set(s)
				}
			}
			rev[1<<uint(i)] = r
		}
		for x := 1; x < 256; x++ {
			low := x & -x
			if x == low {
				if fwd[x] == nil { // bit beyond nbits
					fwd[x] = NewMask(nbits)
					rev[x] = NewMask(nbits)
				}
				continue
			}
			f := fwd[x^low].Clone()
			f.Or(fwd[low])
			fwd[x] = f
			r := rev[x^low].Clone()
			r.Or(rev[low])
			rev[x] = r
		}
		w.tfwd[k] = fwd
		w.trev[k] = rev
	}
	return w
}

// Words reports the number of 64-bit words per mask.
func (w *Wide) Words() int { return w.words }

// NewMask returns a zero mask sized for this engine.
func (w *Wide) NewMask() Mask { return NewMask(w.nbits) }

// BFor returns the positions readable by symbol c (including class
// positions), or nil when there are none. The returned mask may be a
// scratch buffer invalidated by the next call.
func (w *Wide) BFor(c uint32) Mask {
	if !w.negFwd.Any() && !w.negInv.Any() {
		return w.B[c]
	}
	if c >= w.numCompleted {
		return w.B[c]
	}
	w.bScratch.Zero()
	if b, ok := w.B[c]; ok {
		w.bScratch.CopyFrom(b)
	}
	dir := w.negFwd
	if c >= w.numCompleted/2 {
		dir = w.negInv
	}
	w.bScratch.Or(dir)
	if excl, ok := w.negExcl[c]; ok {
		w.bScratch.AndNot(excl)
	}
	if !w.bScratch.Any() {
		return nil
	}
	return w.bScratch
}

// NegClassBits reports whether any class position exists per direction.
func (w *Wide) NegClassBits() (fwd, inv bool) { return w.negFwd.Any(), w.negInv.Any() }

// chunkOf extracts 8-bit chunk k of x.
func chunkOf(x Mask, k int) int {
	return int(x[k/8] >> uint(k%8*8) & 0xff)
}

// TInto sets dst = T[x]: states reachable in one step from x.
func (w *Wide) TInto(dst, x Mask) {
	dst.Zero()
	for k := range w.tfwd {
		dst.Or(w.tfwd[k][chunkOf(x, k)])
	}
}

// StepFwdInto sets dst = T[d] & B[c] (Eq. 1). dst must not alias d.
func (w *Wide) StepFwdInto(dst, d Mask, c uint32) {
	b := w.BFor(c)
	if b == nil {
		dst.Zero()
		return
	}
	w.TInto(dst, d)
	for i, bw := range b {
		dst[i] &= bw
	}
}

// StepRevInto sets dst = T'[d & B[c]] (Eq. 2). dst must not alias d or
// the BFor scratch.
func (w *Wide) StepRevInto(dst, d Mask, c uint32) {
	b := w.BFor(c)
	if b == nil {
		dst.Zero()
		return
	}
	dst.Zero()
	for k := range w.trev {
		x := int((d[k/8] & b[k/8]) >> uint(k%8*8) & 0xff)
		dst.Or(w.trev[k][x])
	}
}

// AcceptsFwd reports whether d contains a final state.
func (w *Wide) AcceptsFwd(d Mask) bool { return d.Intersects(w.F) }

// AcceptsRev reports whether d contains the initial state.
func (w *Wide) AcceptsRev(d Mask) bool { return d.Test(0) }

// MatchFwd simulates the word left to right.
func (w *Wide) MatchFwd(word []uint32) bool {
	d := w.Init.Clone()
	tmp := w.NewMask()
	for _, c := range word {
		w.StepFwdInto(tmp, d, c)
		d, tmp = tmp, d
		if !d.Any() {
			return false
		}
	}
	return w.AcceptsFwd(d)
}

// MatchRev simulates the word right to left.
func (w *Wide) MatchRev(word []uint32) bool {
	d := w.F.Clone()
	tmp := w.NewMask()
	for i := len(word) - 1; i >= 0; i-- {
		w.StepRevInto(tmp, d, word[i])
		d, tmp = tmp, d
		if !d.Any() {
			return false
		}
	}
	return w.AcceptsRev(d)
}
