package glushkov

import (
	"math/rand"
	"strings"
	"testing"

	"ringrpq/internal/pathexpr"
)

func mustEngineFor(t *testing.T, expr string, numCompleted uint32) *Engine {
	t.Helper()
	a := Build(pathexpr.MustParse(expr), testIDs)
	e, err := NewEngineFor(a, numCompleted)
	if err != nil {
		t.Fatalf("NewEngineFor(%q): %v", expr, err)
	}
	return e
}

// Compile must recognize the follow-structure shapes and pick the
// matching specialization.
func TestCompileKinds(t *testing.T) {
	// 9 two-way alternations concatenated: 19 states, beyond the single
	// full-table threshold, forcing the chunked reverse table.
	wide := strings.TrimSuffix(strings.Repeat("(a|b)/", 9), "/")
	cases := []struct {
		expr string
		kind string
	}{
		{"a", "single"},
		{"^a", "single"},
		{"a/b/c", "chain"},
		{"a/^b/c/d", "chain"},
		{"a|b", "alt"},
		{"a|b|c|^d", "alt"},
		{"a/b*/b", "table"},
		{"(a|b)+", "table"},
		{"a?", "single"}, // nullability lives in F, not the follow sets
		{wide, "table-chunked"},
	}
	for _, tc := range cases {
		e := mustEngine(t, tc.expr)
		st := Compile(e, 16)
		if st.Kind() != tc.kind {
			t.Errorf("Compile(%q).Kind() = %q, want %q", tc.expr, st.Kind(), tc.kind)
		}
	}

	// Symbol classes put conservative bits in B; the unrolled shapes
	// (chain/alt) must not claim automata with class positions.
	for _, expr := range []string{"!(a)", "!(a)/b", "!a|b"} {
		e := mustEngineFor(t, expr, 16)
		st := Compile(e, 16)
		if k := st.Kind(); k == "single" || k == "chain" || k == "alt" {
			t.Errorf("Compile(%q).Kind() = %q; class automata must use table forms", expr, k)
		}
	}

	// An absurd alphabet overflows the dense table budget: Compile
	// declines and hands back the interpreter.
	e := mustEngine(t, "a/b")
	if st := Compile(e, maxDenseAlphabet+1); st.Kind() != "interp" {
		t.Errorf("oversized alphabet: Kind() = %q, want interp", st.Kind())
	}
}

// Every compiled stepper must agree with the interpreter on PredMask
// and StepBack over the whole state space (exhaustively for small
// automata, sampled for the chunked one).
func TestCompiledStepperMatchesInterpreter(t *testing.T) {
	wide := strings.TrimSuffix(strings.Repeat("(a|b)/", 9), "/")
	exprs := []string{
		"a", "^a", "a/b/c", "a|b|c", "a/b*/b", "(a|b)+", "(a|b*)/c?",
		"a?", "(a/b)*|c", "!(a)", "!(a|b)/c", "!^a|b", "!(a)*", wide,
	}
	rng := rand.New(rand.NewSource(7))
	for _, expr := range exprs {
		e := mustEngineFor(t, expr, 16)
		st := Compile(e, 16)
		for c := uint32(0); c < 20; c++ {
			if got, want := st.PredMask(c), e.BFor(c); got != want {
				t.Errorf("%q (%s): PredMask(%d) = %b, want %b", expr, st.Kind(), c, got, want)
			}
		}
		nbits := uint(e.A.M + 1)
		if nbits <= 16 {
			for x := uint64(0); x < 1<<nbits; x++ {
				if got, want := st.StepBack(x), e.Trev(x); got != want {
					t.Fatalf("%q (%s): StepBack(%b) = %b, want %b", expr, st.Kind(), x, got, want)
				}
			}
		} else {
			for i := 0; i < 4096; i++ {
				x := rng.Uint64() & (1<<nbits - 1)
				if got, want := st.StepBack(x), e.Trev(x); got != want {
					t.Fatalf("%q (%s): StepBack(%b) = %b, want %b", expr, st.Kind(), x, got, want)
				}
			}
		}
	}
}
