package glushkov

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringrpq/internal/pathexpr"
)

// testIDs maps predicate names a..h (and inverses) to stable ids.
func testIDs(s pathexpr.Sym) (uint32, bool) {
	if len(s.Name) != 1 || s.Name[0] < 'a' || s.Name[0] > 'h' {
		return 0, false
	}
	id := uint32(s.Name[0]-'a') * 2
	if s.Inverse {
		id++
	}
	return id, true
}

func sym(name string) pathexpr.Sym { return pathexpr.Sym{Name: name} }

func toWord(syms []pathexpr.Sym) []uint32 {
	w := make([]uint32, len(syms))
	for i, s := range syms {
		id, ok := testIDs(s)
		if !ok {
			id = NoSymbol - 1 // unknown but concrete symbol
		}
		w[i] = id
	}
	return w
}

func mustEngine(t *testing.T, expr string) *Engine {
	t.Helper()
	a := Build(pathexpr.MustParse(expr), testIDs)
	e, err := NewEngine(a)
	if err != nil {
		t.Fatalf("NewEngine(%q): %v", expr, err)
	}
	return e
}

func TestPaperFig2(t *testing.T) {
	// The automaton of a/b*/b (Fig. 2): 4 states, final = position 3.
	a := Build(pathexpr.MustParse("a/b*/b"), testIDs)
	if a.M != 3 {
		t.Fatalf("M=%d, want 3", a.M)
	}
	if a.Nullable {
		t.Fatal("a/b*/b must not be nullable")
	}
	e, err := NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	idA, _ := testIDs(sym("a"))
	idB, _ := testIDs(sym("b"))
	// B[a] marks position 1 only; B[b] marks positions 2 and 3
	// (the paper's 0100 and 0011 with its high-bit-first layout).
	if e.B[idA] != 1<<1 {
		t.Errorf("B[a]=%b, want %b", e.B[idA], 1<<1)
	}
	if e.B[idB] != 1<<2|1<<3 {
		t.Errorf("B[b]=%b", e.B[idB])
	}
	if e.F != 1<<3 {
		t.Errorf("F=%b, want position 3 final", e.F)
	}
	// Replay the worked simulation of S = abba.
	d := e.Init
	d = e.StepFwd(d, idA) // activates position 1
	if d != 1<<1 {
		t.Fatalf("after a: D=%b", d)
	}
	d = e.StepFwd(d, idB) // activates 2 and 3; accepting
	if d != 1<<2|1<<3 || !e.AcceptsFwd(d) {
		t.Fatalf("after ab: D=%b accept=%v", d, e.AcceptsFwd(d))
	}
	d = e.StepFwd(d, idB)
	if d != 1<<2|1<<3 || !e.AcceptsFwd(d) {
		t.Fatalf("after abb: D=%b", d)
	}
	d = e.StepFwd(d, idA)
	if d != 0 {
		t.Fatalf("after abba: D=%b, want 0", d)
	}
}

func TestPaperFig5Reverse(t *testing.T) {
	// ^bus/l5*/l5 reverse-simulated, as the RPQ engine uses it (§4).
	ids := func(s pathexpr.Sym) (uint32, bool) {
		switch {
		case s.Name == "bus" && s.Inverse:
			return 10, true
		case s.Name == "l5" && !s.Inverse:
			return 11, true
		}
		return 0, false
	}
	a := Build(pathexpr.MustParse("^bus/l5*/l5"), ids)
	e, err := NewEngine(a)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse reading of the word ^bus·l5 (a path BA -l5-> Baq read
	// backwards from Baq): start at F, read l5 then ^bus, reach initial.
	d := e.F
	d = e.StepRev(d, 11)
	if d == 0 {
		t.Fatal("no states after reading l5 in reverse")
	}
	if e.AcceptsRev(d) {
		t.Fatal("must not accept before reading ^bus")
	}
	d = e.StepRev(d, 10)
	if !e.AcceptsRev(d) {
		t.Fatal("must accept after ^bus·l5 read in reverse")
	}
}

func TestEmptyWordAcceptance(t *testing.T) {
	for expr, want := range map[string]bool{
		"a*":      true,
		"a+":      false,
		"a?":      true,
		"a":       false,
		"()":      true,
		"a*/b*":   true,
		"a/b?":    false,
		"(a|b?)+": true,
	} {
		e := mustEngine(t, expr)
		if got := e.MatchFwd(nil); got != want {
			t.Errorf("%q accepts empty = %v, want %v", expr, got, want)
		}
		if got := e.MatchRev(nil); got != want {
			t.Errorf("%q rev accepts empty = %v, want %v", expr, got, want)
		}
	}
}

// randomExprStr builds a random expression over a small alphabet.
func randomExpr(rng *rand.Rand, depth int) pathexpr.Node {
	if depth == 0 || rng.Intn(3) == 0 {
		return pathexpr.Sym{Name: string(rune('a' + rng.Intn(3))), Inverse: rng.Intn(5) == 0}
	}
	switch rng.Intn(5) {
	case 0:
		return pathexpr.Concat{L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 1:
		return pathexpr.Alt{L: randomExpr(rng, depth-1), R: randomExpr(rng, depth-1)}
	case 2:
		return pathexpr.Star{X: randomExpr(rng, depth-1)}
	case 3:
		return pathexpr.Plus{X: randomExpr(rng, depth-1)}
	default:
		return pathexpr.Opt{X: randomExpr(rng, depth-1)}
	}
}

func randomWord(rng *rand.Rand, maxLen int) []pathexpr.Sym {
	w := make([]pathexpr.Sym, rng.Intn(maxLen+1))
	for i := range w {
		w[i] = pathexpr.Sym{Name: string(rune('a' + rng.Intn(3))), Inverse: rng.Intn(5) == 0}
	}
	return w
}

// The engine must agree with the executable specification pathexpr.Matches
// on random expressions and words, forward and reverse.
func TestEngineMatchesSpec(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomExpr(rng, 4)
		a := Build(n, testIDs)
		e, err := NewEngine(a)
		if err != nil {
			return true // too many positions for the 64-bit engine
		}
		for i := 0; i < 20; i++ {
			w := randomWord(rng, 6)
			want := pathexpr.Matches(n, w)
			word := toWord(w)
			if e.MatchFwd(word) != want || e.MatchRev(word) != want {
				t.Logf("expr=%s word=%v want=%v fwd=%v rev=%v",
					pathexpr.String(n), w, want, e.MatchFwd(word), e.MatchRev(word))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// All split widths must implement the same transition function.
func TestSplitWidthsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := randomExpr(rng, 5)
		a := Build(n, testIDs)
		if a.M+1 > MaxEngineStates {
			continue
		}
		ref, err := NewEngineSplit(a, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []int{2, 3, 8, 13, 16} {
			e, err := NewEngineSplit(a, d)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				x := rng.Uint64() & (1<<uint(a.M+1) - 1)
				if e.T(x) != ref.T(x) {
					t.Fatalf("d=%d T(%b)=%b, want %b (expr %s)", d, x, e.T(x), ref.T(x), pathexpr.String(n))
				}
				if e.Trev(x) != ref.Trev(x) {
					t.Fatalf("d=%d Trev mismatch (expr %s)", d, pathexpr.String(n))
				}
			}
		}
	}
}

// The Wide engine must agree with the uint64 engine.
func TestWideAgreesWithEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := randomExpr(rng, 4)
		a := Build(n, testIDs)
		e, err := NewEngine(a)
		if err != nil {
			continue
		}
		w := NewWide(a)
		for i := 0; i < 15; i++ {
			word := toWord(randomWord(rng, 7))
			if e.MatchFwd(word) != w.MatchFwd(word) {
				t.Fatalf("wide fwd disagrees on %s", pathexpr.String(n))
			}
			if e.MatchRev(word) != w.MatchRev(word) {
				t.Fatalf("wide rev disagrees on %s", pathexpr.String(n))
			}
		}
	}
}

// A large expression must exceed the 64-bit engine and work on Wide.
func TestWideLargeExpression(t *testing.T) {
	// (a/b)^40 then a* — 81 positions.
	expr := "a"
	for i := 0; i < 40; i++ {
		expr += "/b/a"
	}
	n := pathexpr.MustParse(expr)
	a := Build(n, testIDs)
	if a.M != 81 {
		t.Fatalf("M=%d, want 81", a.M)
	}
	if _, err := NewEngine(a); err == nil {
		t.Fatal("64-bit engine must refuse 82 states")
	}
	w := NewWide(a)
	var word []uint32
	idA, _ := testIDs(sym("a"))
	idB, _ := testIDs(sym("b"))
	word = append(word, idA)
	for i := 0; i < 40; i++ {
		word = append(word, idB, idA)
	}
	if !w.MatchFwd(word) || !w.MatchRev(word) {
		t.Fatal("wide engine rejects the defining word")
	}
	if w.MatchFwd(word[:len(word)-1]) {
		t.Fatal("wide engine accepts a strict prefix")
	}
}

func TestUnknownPredicateNeverMatches(t *testing.T) {
	// 'z' is unknown to testIDs: a/z can never match, a|z behaves as a.
	e := mustEngine(t, "a|z")
	idA, _ := testIDs(sym("a"))
	if !e.MatchFwd([]uint32{idA}) {
		t.Fatal("a|z must accept a")
	}
	e2 := mustEngine(t, "a/z")
	if e2.MatchFwd([]uint32{idA, NoSymbol}) {
		t.Fatal("NoSymbol transitions must never fire")
	}
}

func TestAlphabet(t *testing.T) {
	a := Build(pathexpr.MustParse("a/b*/b|^a"), testIDs)
	got := a.Alphabet()
	if len(got) != 3 { // a, b, ^a
		t.Fatalf("Alphabet=%v, want 3 distinct", got)
	}
}

func TestFollowSetsOfStar(t *testing.T) {
	// In (a|b)*, every position follows every position and the start.
	a := Build(pathexpr.MustParse("(a|b)*"), testIDs)
	for i := 0; i <= 2; i++ {
		if len(a.Follow[i]) != 2 {
			t.Fatalf("Follow[%d]=%v, want both positions", i, a.Follow[i])
		}
	}
	if !a.Nullable {
		t.Fatal("(a|b)* must be nullable")
	}
}

func TestInverseEngineDuality(t *testing.T) {
	// w ∈ L(E) iff reverse-invert(w) ∈ L(Ê) — the rewriting the RPQ
	// engine relies on for (s, E, y) queries (§4.4).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomExpr(rng, 4)
		inv := pathexpr.InverseOf(n)
		a1 := Build(n, testIDs)
		a2 := Build(inv, testIDs)
		e1, err1 := NewEngine(a1)
		e2, err2 := NewEngine(a2)
		if err1 != nil || err2 != nil {
			return true
		}
		for i := 0; i < 10; i++ {
			w := randomWord(rng, 5)
			rw := make([]pathexpr.Sym, len(w))
			for j, s := range w {
				rw[len(w)-1-j] = pathexpr.Sym{Name: s.Name, Inverse: !s.Inverse}
			}
			if e1.MatchFwd(toWord(w)) != e2.MatchFwd(toWord(rw)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkStepFwd(b *testing.B) {
	e := &Engine{}
	a := Build(pathexpr.MustParse("a/(b|c)*/a/b+/c?"), testIDs)
	e, _ = NewEngine(a)
	idB, _ := testIDs(sym("b"))
	d := e.Init
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = e.StepFwd(d|e.Init, idB)
	}
}

func BenchmarkStepRevSplit8(b *testing.B) {
	expr := "a"
	for i := 0; i < 20; i++ {
		expr += "/(b|c)"
	}
	a := Build(pathexpr.MustParse(expr), testIDs)
	e, _ := NewEngineSplit(a, 8)
	idB, _ := testIDs(sym("b"))
	d := e.F
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d = e.StepRev(d|e.F, idB)
	}
}

// Symbol classes: the engine with classes must agree with the spec
// matcher under a completed-alphabet encoding.
func TestNegClassEngine(t *testing.T) {
	// Completed alphabet of 3 base predicates: ids 0,2,4 forward would
	// not be contiguous; use the standard layout instead: base ids 0..2,
	// inverses 3..5.
	const numCompleted = 6
	ids := func(s pathexpr.Sym) (uint32, bool) {
		var base uint32
		switch s.Name {
		case "a":
			base = 0
		case "b":
			base = 1
		case "c":
			base = 2
		default:
			return 0, false
		}
		if s.Inverse {
			base += 3
		}
		return base, true
	}
	exprs := []string{"!a", "!(a|b)", "!^c", "!a/b", "(!b)+", "a|!(a|b|c)"}
	words := [][]pathexpr.Sym{
		{{Name: "a"}}, {{Name: "b"}}, {{Name: "c"}},
		{{Name: "a", Inverse: true}}, {{Name: "c", Inverse: true}},
		{{Name: "a"}, {Name: "b"}}, {{Name: "c"}, {Name: "c"}}, nil,
	}
	for _, es := range exprs {
		n := pathexpr.MustParse(es)
		a := Build(n, ids)
		if _, err := NewEngine(a); a.HasClasses() && err == nil {
			t.Fatalf("%s: NewEngine must refuse classes without alphabet size", es)
		}
		e, err := NewEngineFor(a, numCompleted)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWideFor(a, numCompleted)
		for _, word := range words {
			enc := make([]uint32, len(word))
			for i, s := range word {
				enc[i], _ = ids(s)
			}
			want := pathexpr.Matches(n, word)
			if e.MatchFwd(enc) != want || e.MatchRev(enc) != want {
				t.Fatalf("%s on %v: engine=%v/%v want %v", es, word, e.MatchFwd(enc), e.MatchRev(enc), want)
			}
			if w.MatchFwd(enc) != want || w.MatchRev(enc) != want {
				t.Fatalf("%s on %v: wide disagrees with spec", es, word)
			}
		}
	}
}

func TestClassMatches(t *testing.T) {
	cl := &Class{Inverse: false, Excl: []uint32{1, 2}}
	if cl.Matches(1, 6) || cl.Matches(2, 6) {
		t.Error("excluded ids must not match")
	}
	if !cl.Matches(0, 6) {
		t.Error("non-excluded forward id must match")
	}
	if cl.Matches(4, 6) {
		t.Error("inverse-direction id must not match a forward class")
	}
}
