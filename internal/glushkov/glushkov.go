// Package glushkov builds the Glushkov position automaton of a 2RPQ
// regular expression and simulates it bit-parallelly (paper §3.3).
//
// The Glushkov NFA of an expression with m symbol occurrences has exactly
// m+1 states (the initial state 0 plus one per occurrence), no
// ε-transitions, and — crucially for the RPQ algorithm — all transitions
// into a state carry that state's label. Fact 1 of the paper follows: the
// states reached from a set X by symbol c are T[X] & B[c], where T depends
// only on X and B only on c. This lets the ring's wavelet trees filter
// candidate predicates with B alone (§4.1) while the automaton step is a
// single table lookup.
//
// Engine simulates automata with at most 64 states (m ≤ 63) using uint64
// state sets and vertically-split transition tables (the paper's d-bit
// subtable decomposition, default d=8, full table when m+1 ≤ 16). Wide
// handles arbitrary m with multiword masks, reproducing the O(m/w)
// slowdown of the general case instead of failing.
package glushkov

import (
	"fmt"

	"ringrpq/internal/pathexpr"
)

// NoSymbol is the label assigned to positions whose predicate does not
// occur in the graph; no data symbol ever equals it, so such transitions
// never fire.
const NoSymbol = ^uint32(0)

// Class is a symbol class labelling one automaton position: it matches
// every symbol of one direction of the completed alphabet except the
// excluded ids (negated property sets, §6). Directions follow the
// completion convention: ids below half the alphabet are forward.
type Class struct {
	// Inverse selects the inverse half of the alphabet.
	Inverse bool
	// Excl lists the excluded completed ids, sorted.
	Excl []uint32
}

// Matches reports whether completed id c (from an alphabet of
// numCompleted ids) belongs to the class.
func (cl *Class) Matches(c, numCompleted uint32) bool {
	if (c >= numCompleted/2) != cl.Inverse {
		return false
	}
	for _, x := range cl.Excl {
		if x == c {
			return false
		}
		if x > c {
			break
		}
	}
	return true
}

// Automaton is the position automaton: states 0..M where 0 is initial.
type Automaton struct {
	// M is the number of positions (symbol occurrences).
	M int
	// Nullable reports whether the language contains the empty word.
	Nullable bool
	// Syms[j-1] is the symbol labelling position j (all transitions into
	// state j carry this label); NoSymbol for class positions.
	Syms []uint32
	// Classes[j-1] is non-nil when position j is labelled by a symbol
	// class rather than a single symbol.
	Classes []*Class
	// Follow[i] lists the positions that may follow state i; Follow[0]
	// is the first set.
	Follow [][]int32
	// Last lists the positions that may end a word.
	Last []int32
}

// HasClasses reports whether any position carries a symbol class.
func (a *Automaton) HasClasses() bool {
	for _, c := range a.Classes {
		if c != nil {
			return true
		}
	}
	return false
}

// SymbolIDs maps a parsed predicate occurrence to its integer symbol.
// The boolean reports whether the predicate exists at all; unknown
// predicates become NoSymbol positions.
type SymbolIDs func(s pathexpr.Sym) (uint32, bool)

// Build constructs the Glushkov automaton of n, labelling positions via
// ids. Construction is the classical first/last/follow recursion, O(m²)
// worst case.
func Build(n pathexpr.Node, ids SymbolIDs) *Automaton {
	b := &builder{ids: ids}
	f, l, nullable := b.walk(n, ids)
	return &Automaton{
		M:        len(b.syms),
		Nullable: nullable,
		Syms:     b.syms,
		Classes:  b.classes,
		Follow:   append([][]int32{f}, b.follow...),
		Last:     l,
	}
}

type builder struct {
	ids     SymbolIDs
	syms    []uint32
	classes []*Class
	follow  [][]int32 // follow[j-1] = follow set of position j
}

// walk returns (first, last, nullable) of the subtree.
func (b *builder) walk(n pathexpr.Node, ids SymbolIDs) ([]int32, []int32, bool) {
	switch x := n.(type) {
	case pathexpr.Sym:
		id, ok := ids(x)
		if !ok {
			id = NoSymbol
		}
		b.syms = append(b.syms, id)
		b.classes = append(b.classes, nil)
		b.follow = append(b.follow, nil)
		p := int32(len(b.syms))
		return []int32{p}, []int32{p}, false
	case pathexpr.NegSet:
		cl := &Class{Inverse: x.Inverse}
		for _, name := range x.Names {
			// Resolve each excluded name in the set's direction; names
			// absent from the graph exclude no actual edge.
			if id, ok := ids(pathexpr.Sym{Name: name, Inverse: x.Inverse}); ok {
				cl.Excl = append(cl.Excl, id)
			}
		}
		sortU32(cl.Excl)
		b.syms = append(b.syms, NoSymbol)
		b.classes = append(b.classes, cl)
		b.follow = append(b.follow, nil)
		p := int32(len(b.syms))
		return []int32{p}, []int32{p}, false
	case pathexpr.Eps:
		return nil, nil, true
	case pathexpr.Concat:
		f1, l1, n1 := b.walk(x.L, ids)
		f2, l2, n2 := b.walk(x.R, ids)
		for _, i := range l1 {
			b.follow[i-1] = union(b.follow[i-1], f2)
		}
		f := f1
		if n1 {
			f = union(f1, f2)
		}
		l := l2
		if n2 {
			l = union(l2, l1)
		}
		return f, l, n1 && n2
	case pathexpr.Alt:
		f1, l1, n1 := b.walk(x.L, ids)
		f2, l2, n2 := b.walk(x.R, ids)
		return union(f1, f2), union(l1, l2), n1 || n2
	case pathexpr.Star:
		f, l, _ := b.walk(x.X, ids)
		for _, i := range l {
			b.follow[i-1] = union(b.follow[i-1], f)
		}
		return f, l, true
	case pathexpr.Plus:
		f, l, nullable := b.walk(x.X, ids)
		for _, i := range l {
			b.follow[i-1] = union(b.follow[i-1], f)
		}
		return f, l, nullable
	case pathexpr.Opt:
		f, l, _ := b.walk(x.X, ids)
		return f, l, true
	default:
		panic(fmt.Sprintf("glushkov: unknown node %T", n))
	}
}

// union merges two sorted position lists without duplicates.
func union(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// sortU32 sorts a small id slice in place.
func sortU32(xs []uint32) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Alphabet returns the distinct non-NoSymbol labels used by the automaton.
func (a *Automaton) Alphabet() []uint32 {
	seen := map[uint32]bool{}
	var out []uint32
	for _, c := range a.Syms {
		if c != NoSymbol && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}
