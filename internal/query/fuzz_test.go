package query

import (
	"strings"
	"testing"
)

// FuzzParseQuery fuzzes the graph-pattern parser: it must never panic,
// and on accepted inputs the canonical rendering must reparse to the
// same canonical form (the fixed point the service's pattern cache
// keys on).
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"?x p ?y",
		"?x ?p ?y",
		"?x <advisor>/<advisor>* ?y . ?y country Q30",
		"SELECT ?x ?y WHERE { ?x advisor+ ?y . ?y country Q30 }",
		"select ?x where { ?x p ?y }",
		"SELECT ?x WHERE { ?x p ?y",
		"?x (a|^b)+/c? ?y .",
		"?x !(a|^b) ?y",
		"a ^p* <b.c>",
		"?x p ?y . . ?y q ?z",
		"?x p ?y }",
		"{ ?x p ?y }",
		"select where { }",
		"?x ((a) ?y",
		"?? ?p ?y",
		"<> p ?y",
		"?x () ?y",
		". . .",
		"x y",
		"?x p ?y . ?y ?x ?z",
		"SELECT ?x ?x WHERE { ?x p ?y }",
		"\t?x\n p \n?y\t.\n?y q ?z",
		"?x p/ ?y",
		"?x <a<b> ?y",
		"?x (.) ?y",
		"?x <.> ?y . ?y .. ?z",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if len(q.Clauses) == 0 {
			t.Fatalf("Parse(%q) accepted an empty pattern", src)
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("canonical form %q (of %q) does not reparse: %v", s1, src, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("canonical form is not a fixed point: %q → %q (from %q)", s1, s2, src)
		}
		// Structural invariants survive the round trip.
		if len(q2.Clauses) != len(q.Clauses) || len(q2.Select) != len(q.Select) {
			t.Fatalf("round trip changed shape: %q", src)
		}
		if strings.Join(q2.OutVars(), ",") != strings.Join(q.OutVars(), ",") {
			t.Fatalf("round trip changed projection: %q", src)
		}
	})
}
