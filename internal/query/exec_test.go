package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
)

// orgGraph is the organisational graph of examples/joins.
func orgGraph() *triples.Graph {
	b := triples.NewBuilder()
	b.Add("ana", "manages", "bo")
	b.Add("bo", "manages", "cleo")
	b.Add("bo", "manages", "dmitri")
	b.Add("ana", "manages", "erin")
	b.Add("cleo", "assigned", "apollo")
	b.Add("dmitri", "assigned", "zephyr")
	b.Add("erin", "assigned", "apollo")
	b.Add("apollo", "status", "active")
	b.Add("zephyr", "status", "archived")
	return b.Build()
}

func runPattern(t *testing.T, x *Exec, src string, opts Options) []Binding {
	t.Helper()
	var out []Binding
	if err := x.Run(MustParse(src), opts, func(b Binding) bool {
		out = append(out, b)
		return true
	}); err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return out
}

// renderBindings sorts bindings into canonical strings for comparison.
func renderBindings(bs []Binding) []string {
	var out []string
	for _, b := range bs {
		var keys []string
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, k+"="+b[k])
		}
		out = append(out, strings.Join(parts, ","))
	}
	sort.Strings(out)
	return out
}

func TestExecMixedBGPAndRPQ(t *testing.T) {
	g := orgGraph()
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)
	// Managers with a (transitive) report on an active project.
	got := renderBindings(runPattern(t,
		x, "SELECT ?m ?proj WHERE { ?m manages+ ?e . ?e assigned ?proj . ?proj status active }", Options{}))
	// ana reaches bo, cleo, dmitri, erin; bo reaches cleo, dmitri.
	// cleo/erin → apollo (active), dmitri → zephyr (archived).
	want := []string{
		"e=cleo,m=ana,proj=apollo",
		"e=cleo,m=bo,proj=apollo",
		"e=erin,m=ana,proj=apollo",
	}
	if !eqStrings(got, want) {
		t.Fatalf("got %v\nwant %v", got, want)
	}
}

func TestExecPureBGP(t *testing.T) {
	g := orgGraph()
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)
	got := renderBindings(runPattern(t, x, "?e assigned ?p . ?p status active", Options{}))
	want := []string{"e=cleo,p=apollo", "e=erin,p=apollo"}
	if !eqStrings(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestExecPureRPQ(t *testing.T) {
	g := orgGraph()
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)
	got := renderBindings(runPattern(t, x, "ana manages/manages ?e", Options{}))
	want := []string{"e=cleo", "e=dmitri"}
	if !eqStrings(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestExecVariablePredicate(t *testing.T) {
	g := orgGraph()
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)
	got := renderBindings(runPattern(t, x, "apollo ?p ?o", Options{}))
	// Completed graph: apollo -status-> active and apollo -^assigned-> cleo/erin.
	want := []string{"o=active,p=status", "o=cleo,p=^assigned", "o=erin,p=^assigned"}
	if !eqStrings(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestExecConstantsAndEmpty(t *testing.T) {
	g := orgGraph()
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)
	// All-constant truths emit one empty binding.
	if got := runPattern(t, x, "ana manages bo . apollo status active", Options{}); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("all-const true: %v", got)
	}
	if got := runPattern(t, x, "ana manages cleo", Options{}); len(got) != 0 {
		t.Fatalf("all-const false: %v", got)
	}
	// Unknown constants anywhere make the pattern provably empty.
	for _, src := range []string{
		"nosuch manages ?x",
		"?x nosuchpred ?y",
		"?x manages+ nosuch . ?x manages ?y",
	} {
		if got := runPattern(t, x, src, Options{}); len(got) != 0 {
			t.Fatalf("%q: expected empty, got %v", src, got)
		}
	}
	// An unknown predicate inside a path expression is not fatal: other
	// branches may still match.
	got := renderBindings(runPattern(t, x, "ana (nosuchpred|manages) ?x", Options{}))
	want := []string{"x=bo", "x=erin"}
	if !eqStrings(got, want) {
		t.Fatalf("alt with unknown branch: got %v want %v", got, want)
	}
}

func TestExecSameVarBothEnds(t *testing.T) {
	b := triples.NewBuilder()
	b.Add("a", "p", "a")
	b.Add("a", "p", "b")
	b.Add("b", "p", "c")
	b.Add("c", "q", "c")
	g := b.Build()
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)
	got := renderBindings(runPattern(t, x, "?x p ?x", Options{}))
	if !eqStrings(got, []string{"x=a"}) {
		t.Fatalf("triple self-loop: %v", got)
	}
	got = renderBindings(runPattern(t, x, "?x p/p ?x", Options{}))
	if !eqStrings(got, []string{"x=a"}) {
		t.Fatalf("rpq self-pairs: %v", got)
	}
}

func TestExecLimitAndTimeout(t *testing.T) {
	g := orgGraph()
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)
	got := runPattern(t, x, "?m manages* ?e", Options{Limit: 3})
	if len(got) != 3 {
		t.Fatalf("limit: %d bindings", len(got))
	}

	// A dense graph where the pipeline has real work per row, so a
	// 1ns deadline fires inside evaluation.
	b := triples.NewBuilder()
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			b.Add(fmt.Sprintf("n%d", i), "p", fmt.Sprintf("n%d", j))
		}
	}
	dense := b.Build()
	xd := NewExec(dense, ring.New(dense, ring.WaveletMatrix), nil)
	err := xd.Run(MustParse("?x p ?y . ?y p+ ?z"), Options{Timeout: time.Nanosecond}, func(Binding) bool { return true })
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("timeout: got %v", err)
	}
}

func TestExecShardedRoutingAndCrossShard(t *testing.T) {
	g := orgGraph()
	single := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)

	// With one predicate per shard (K large), multi-predicate patterns
	// span shards; single-predicate ones route wholesale.
	set := ring.NewShardSet(g, 3, perPredPartitioner{}, ring.WaveletMatrix)
	sharded := NewExecSharded(g, set, nil)

	srcOne := "?m manages+ ?e . ?m manages ?e2"
	if got, want := renderBindings(runPattern(t, sharded, srcOne, Options{})),
		renderBindings(runPattern(t, single, srcOne, Options{})); !eqStrings(got, want) {
		t.Fatalf("single-shard routed pattern: got %v want %v", got, want)
	}

	for _, src := range []string{
		"?m manages ?e . ?e assigned ?p", // two predicates, two shards
		"?x ?p ?y",                       // variable predicate
		"?x !(manages) ?y",               // negated property set
	} {
		err := sharded.Run(MustParse(src), Options{}, func(Binding) bool { return true })
		if !errors.Is(err, ErrCrossShard) {
			t.Fatalf("%q: got %v, want ErrCrossShard", src, err)
		}
	}

	// K=1 sharded layouts route everything.
	set1 := ring.NewShardSet(g, 1, nil, ring.WaveletMatrix)
	x1 := NewExecSharded(g, set1, nil)
	src := "?m manages ?e . ?e assigned ?p"
	if got, want := renderBindings(runPattern(t, x1, src, Options{})),
		renderBindings(runPattern(t, single, src, Options{})); !eqStrings(got, want) {
		t.Fatalf("K=1: got %v want %v", got, want)
	}
}

// perPredPartitioner sends every base predicate to its own shard (mod k),
// maximising cross-shard patterns for the routing tests.
type perPredPartitioner struct{}

func (perPredPartitioner) Shard(pred uint32, k int) int { return int(pred) % k }
func (perPredPartitioner) Name() string                 { return "hash" } // reuse a registered name; test-only

func TestPlanSelectivityOrder(t *testing.T) {
	// rare: 1 edge; common: many edges. The planner must bind the
	// variable constrained by the rare predicate first.
	b := triples.NewBuilder()
	b.Add("s0", "rare", "t0")
	for i := 0; i < 40; i++ {
		b.Add(fmt.Sprintf("a%d", i), "common", fmt.Sprintf("b%d", i%7))
	}
	// Connect the two relations so the pattern below joins them.
	b.Add("t0", "common", "b0")
	g := b.Build()
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)

	q := MustParse("?x rare ?y . ?y common ?z")
	pl, err := x.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Order) != 3 {
		t.Fatalf("order = %v", pl.Order)
	}
	if pl.Order[len(pl.Order)-1] == "x" || pl.Order[len(pl.Order)-1] == "y" {
		t.Fatalf("unselective ?z should come last, got order %v (estimates %v)", pl.Order, pl.VarEst)
	}
	if pl.VarEst["x"] >= pl.VarEst["z"] {
		t.Fatalf("est(x)=%v should be below est(z)=%v", pl.VarEst["x"], pl.VarEst["z"])
	}

	// RPQ boundary estimates point the right way: "fan" has 30 distinct
	// sources and a single target, so an RPQ clause's object end must
	// look cheap and its subject end expensive (regression for the
	// double-inversion where est(object) counted sources).
	bf := triples.NewBuilder()
	for i := 0; i < 30; i++ {
		bf.Add(fmt.Sprintf("s%d", i), "fan", "sink")
	}
	gf := bf.Build()
	xf := NewExec(gf, ring.New(gf, ring.WaveletMatrix), nil)
	plf, err := xf.Plan(MustParse("?a fan/fan? ?b"))
	if err != nil {
		t.Fatal(err)
	}
	if plf.VarEst["b"] >= 5 || plf.VarEst["a"] < 20 {
		t.Fatalf("fan estimates inverted: est(a)=%v est(b)=%v", plf.VarEst["a"], plf.VarEst["b"])
	}

	// RPQ scheduling: with both endpoints coverable by the BGP, the path
	// clause becomes a pure existence check (cost 0).
	q2 := MustParse("?x rare ?y . ?y common ?z . ?x common* ?z")
	pl2, err := x.Plan(q2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl2.Steps) != 1 || pl2.Steps[0].Est != 0 {
		t.Fatalf("existence step expected: %+v", pl2.Steps)
	}
}

func TestExecDistinctBindings(t *testing.T) {
	// Two distinct paths between the same endpoints must yield one
	// binding (set semantics end to end).
	b := triples.NewBuilder()
	b.Add("a", "p", "m1")
	b.Add("a", "p", "m2")
	b.Add("m1", "p", "z")
	b.Add("m2", "p", "z")
	g := b.Build()
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)
	got := renderBindings(runPattern(t, x, "a p/p ?z", Options{}))
	if !eqStrings(got, []string{"z=z"}) {
		t.Fatalf("distinct: %v", got)
	}
}
