package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"ringrpq/internal/datagen"
	"ringrpq/internal/enginetest"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
	"ringrpq/internal/workload"
)

// This file is the property-based differential harness of the pattern
// executor: random graphs × random patterns, the pipelined LTJ+RPQ
// executor against a naive materialise-and-nested-loop-join oracle, on
// both the single-ring and the sharded layout. The oracle shares no
// code with the executor: triple patterns scan the completed triple
// list and RPQ clauses use enginetest.Oracle's relational-algebra
// evaluator.

// oracleRelation materialises one clause as a list of partial bindings
// (variable → rendered name).
func oracleRelation(g *triples.Graph, c Clause) []Binding {
	var out []Binding
	nodeID := func(t Term) (uint32, bool) {
		id, ok := g.Nodes.Lookup(t.Name)
		return id, ok
	}
	if c.IsTriple() {
		var predID uint32
		hasPred := false
		if sym, ok := c.TripleSym(); ok {
			predID, hasPred = g.PredID(sym.Name, sym.Inverse)
			if !hasPred {
				return nil
			}
		}
		var sConst, oConst uint32
		if !c.S.IsVar() {
			var ok bool
			if sConst, ok = nodeID(c.S); !ok {
				return nil
			}
		}
		if !c.O.IsVar() {
			var ok bool
			if oConst, ok = nodeID(c.O); !ok {
				return nil
			}
		}
		for _, t := range g.Triples {
			if hasPred && t.P != predID {
				continue
			}
			if !c.S.IsVar() && t.S != sConst {
				continue
			}
			if !c.O.IsVar() && t.O != oConst {
				continue
			}
			if c.S.IsVar() && c.O.IsVar() && c.S.Var == c.O.Var && t.S != t.O {
				continue
			}
			b := Binding{}
			if c.S.IsVar() {
				b[c.S.Var] = g.Nodes.Name(t.S)
			}
			if c.O.IsVar() {
				b[c.O.Var] = g.Nodes.Name(t.O)
			}
			if c.PredVar != "" {
				b[c.PredVar] = g.PredName(t.P)
			}
			out = append(out, b)
		}
		return dedupeBindings(out)
	}

	// RPQ clause via the relational-algebra oracle.
	sub, obj := int64(-1), int64(-1)
	if !c.S.IsVar() {
		id, ok := nodeID(c.S)
		if !ok {
			return nil
		}
		sub = int64(id)
	}
	if !c.O.IsVar() {
		id, ok := nodeID(c.O)
		if !ok {
			return nil
		}
		obj = int64(id)
	}
	for _, p := range enginetest.Oracle(g, sub, c.Path, obj) {
		if c.S.IsVar() && c.O.IsVar() && c.S.Var == c.O.Var && p.S != p.O {
			continue
		}
		b := Binding{}
		if c.S.IsVar() {
			b[c.S.Var] = g.Nodes.Name(p.S)
		}
		if c.O.IsVar() {
			b[c.O.Var] = g.Nodes.Name(p.O)
		}
		out = append(out, b)
	}
	return dedupeBindings(out)
}

func dedupeBindings(bs []Binding) []Binding {
	seen := map[string]bool{}
	var out []Binding
	for _, b := range bs {
		k := bindingKey(b)
		if !seen[k] {
			seen[k] = true
			out = append(out, b)
		}
	}
	return out
}

func bindingKey(b Binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&sb, "%d:%s=%d:%s;", len(k), k, len(b[k]), b[k])
	}
	return sb.String()
}

// oracleEval joins the clause relations by nested loops. The budget
// bounds merge attempts so pathological cross products are skipped
// rather than stalling the harness; false means the budget ran out.
func oracleEval(g *triples.Graph, q *Query, budget int) ([]Binding, bool) {
	results := []Binding{{}}
	for _, c := range q.Clauses {
		rel := oracleRelation(g, c)
		var next []Binding
		for _, acc := range results {
			budget -= len(rel)
			if budget < 0 {
				return nil, false
			}
			for _, ext := range rel {
				merged, ok := mergeBindings(acc, ext)
				if ok {
					next = append(next, merged)
				}
			}
		}
		results = next
		if len(results) == 0 {
			break
		}
	}
	return dedupeBindings(results), true
}

func mergeBindings(a, b Binding) (Binding, bool) {
	out := make(Binding, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		if prev, ok := out[k]; ok && prev != v {
			return nil, false
		}
		out[k] = v
	}
	return out, true
}

func sortedKeys(bs []Binding) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = bindingKey(b)
	}
	sort.Strings(out)
	return out
}

// handPatterns are grammar/shape corner cases run against every random
// graph on top of the generated workload; $a/$b are the graph's first
// two predicates, $n its first node.
var handPatterns = []string{
	"?x $a ?x",                   // triple self-loop
	"?x $a* ?x",                  // closure self-pairs
	"?x ?p ?y",                   // variable predicate
	"?x $a ?y . ?y ?p ?z",        // var predicate joined to a triple
	"?x $a/$b? ?y . ?y $b+ ?z",   // RPQ chained to RPQ
	"?x $a ?y . ?z $b ?w",        // disconnected product
	"?x ($a|^$b)+ ?y . ?y $a ?z", // inverse inside closure
	"?x $a ?y . ?x $b* ?y",       // RPQ as pure existence filter
	"?x () ?y",                   // ε path clause
	"$n $a* ?y",                  // constant-subject closure
	"?x $a $n . ?x $b ?y",        // constant object in the BGP
}

// instantiate fills the $a/$b/$n placeholders for a graph.
func instantiate(src string) string {
	src = strings.ReplaceAll(src, "$a", datagen.PredName(0))
	src = strings.ReplaceAll(src, "$b", datagen.PredName(1))
	return strings.ReplaceAll(src, "$n", datagen.NodeName(0))
}

func TestDifferentialExecutorVsOracle(t *testing.T) {
	const graphs = 12
	var mu sync.Mutex
	casesRun := 0
	rpqByClass := map[string]int{}
	for seed := int64(0); seed < graphs; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("graph%d", seed), func(t *testing.T) {
			t.Parallel()
			g := datagen.Generate(datagen.Config{
				Seed:  seed + 100,
				Nodes: 12 + int(seed)*3,
				Edges: 30 + int(seed)*8,
				Preds: 3 + int(seed%4),
			})
			r := ring.New(g, ring.WaveletMatrix)
			set := ring.NewShardSet(g, 2+int(seed%3), nil, ring.WaveletMatrix)
			single := NewExec(g, r, nil)
			sharded := NewExecSharded(g, set, nil)

			gen := workload.GeneratePatterns(g, workload.PatternConfig{Seed: seed, Total: 30})
			var texts []string
			rpqClass := map[string]string{}
			for _, pq := range gen {
				texts = append(texts, pq.Text)
				if pq.HasRPQ {
					rpqClass[pq.Text] = pq.Class
				}
			}
			for _, src := range handPatterns {
				texts = append(texts, instantiate(src))
			}

			for _, src := range texts {
				q, err := Parse(src)
				if err != nil {
					t.Fatalf("parse %q: %v", src, err)
				}
				// Patterns whose nested-loop join explodes are skipped:
				// they validate nothing the bounded cases don't, and
				// enumerating millions of rows stalls the harness.
				oracle, ok := oracleEval(g, q, 200_000)
				if !ok {
					continue
				}
				want := sortedKeys(oracle)

				var got []Binding
				if err := single.Run(q, Options{}, func(b Binding) bool {
					got = append(got, b)
					return true
				}); err != nil {
					t.Fatalf("executor %q: %v", src, err)
				}
				if gotKeys := sortedKeys(got); !eqStrings(gotKeys, want) {
					t.Fatalf("pattern %q: executor %d rows, oracle %d rows\n got: %v\nwant: %v",
						src, len(gotKeys), len(want), gotKeys, want)
				}
				// Executor results are distinct by contract.
				if d := dedupeBindings(got); len(d) != len(got) {
					t.Fatalf("pattern %q: executor emitted duplicates", src)
				}

				var gotSharded []Binding
				err = sharded.Run(q, Options{}, func(b Binding) bool {
					gotSharded = append(gotSharded, b)
					return true
				})
				switch {
				case errors.Is(err, ErrCrossShard):
					// Legitimate for multi-shard patterns; the single-ring
					// result above already validated the case.
				case err != nil:
					t.Fatalf("sharded executor %q: %v", src, err)
				default:
					if gotKeys := sortedKeys(gotSharded); !eqStrings(gotKeys, want) {
						t.Fatalf("pattern %q: sharded executor diverges from oracle", src)
					}
				}
				mu.Lock()
				casesRun++
				if class, ok := rpqClass[src]; ok {
					rpqByClass[class]++
				}
				mu.Unlock()
			}
		})
	}
	t.Cleanup(func() {
		if casesRun < 200 {
			t.Errorf("differential harness ran %d cases, want >= 200", casesRun)
		}
		for _, class := range []string{"star", "path", "hybrid"} {
			if rpqByClass[class] == 0 {
				t.Errorf("no RPQ-bearing %s pattern was exercised", class)
			}
		}
	})
}
