// Package query implements the graph-pattern subsystem the paper's
// conclusion (§6) sketches: multi-clause basic graph patterns mixed with
// regular path queries, evaluated over the ring with the worst-case-
// optimal Leapfrog Triejoin (internal/ltj) for the BGP core and the
// ring's RPQ engine (internal/core) for path clauses.
//
// A pattern is a SPARQL-ish conjunction of clauses:
//
//	?x <advisor>/<advisor>* ?y . ?y country Q30
//
// Each clause is "subject path object". Subjects and objects are
// variables (?name) or node constants (bare tokens or <IRI>). The middle
// is a variable predicate (?p), a plain predicate (p or ^p) — making the
// clause a triple pattern joined by LTJ — or any richer path expression
// (internal/pathexpr syntax), making it an RPQ clause evaluated on the
// product graph with bindings flowing into its endpoints. Clauses are
// separated by standalone "." tokens. An optional projection wraps the
// clause list:
//
//	SELECT ?x ?y WHERE { ?x advisor+ ?y . ?y country Q30 }
//
// The planner (plan.go) orders variables and clauses by selectivity
// estimates from the ring's C-arrays and internal/ring/selectivity.go;
// the executor (exec.go) pipelines LTJ rows through bound-endpoint RPQ
// evaluation.
package query

import (
	"fmt"
	"strings"

	"ringrpq/internal/pathexpr"
)

// Term is a clause endpoint: a variable or a node constant.
type Term struct {
	// Var is the variable name (without '?'); empty means constant.
	Var string
	// Name is the constant node name when Var is empty.
	Name string
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// Clause is one conjunct of a graph pattern, in exactly one of three
// forms: a variable-predicate triple pattern (PredVar set), a
// constant-predicate triple pattern (Path is a plain pathexpr.Sym), or
// an RPQ clause (any other Path).
type Clause struct {
	S, O Term
	// PredVar names a variable predicate; empty for the other forms.
	PredVar string
	// Path is the parsed path expression (nil when PredVar is set).
	Path pathexpr.Node
}

// TripleSym returns the constant predicate when the clause is a
// constant-predicate triple pattern.
func (c Clause) TripleSym() (pathexpr.Sym, bool) {
	if c.PredVar != "" || c.Path == nil {
		return pathexpr.Sym{}, false
	}
	s, ok := c.Path.(pathexpr.Sym)
	return s, ok
}

// IsTriple reports whether the clause is a triple pattern (variable or
// constant predicate) rather than an RPQ clause.
func (c Clause) IsTriple() bool {
	if c.PredVar != "" {
		return true
	}
	_, ok := c.TripleSym()
	return ok
}

// Query is a parsed graph pattern.
type Query struct {
	// Select lists the projected variable names (without '?'); nil
	// means all variables.
	Select []string
	// Clauses are the pattern's conjuncts.
	Clauses []Clause
}

// Parse parses a graph-pattern query. See the package comment for the
// grammar; tokens are whitespace-separated and ".", "{", "}" must stand
// alone.
func Parse(src string) (*Query, error) {
	toks := strings.Fields(src)
	if len(toks) == 0 {
		return nil, fmt.Errorf("query: empty pattern")
	}
	q := &Query{}
	i := 0
	braced := false
	if strings.EqualFold(toks[i], "select") {
		i++
		for i < len(toks) && strings.HasPrefix(toks[i], "?") {
			t, err := parseTerm(toks[i])
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, t.Var)
			i++
		}
		if len(q.Select) == 0 {
			return nil, fmt.Errorf("query: SELECT needs at least one ?variable")
		}
		if i >= len(toks) || !strings.EqualFold(toks[i], "where") {
			return nil, fmt.Errorf("query: expected WHERE after the SELECT variables")
		}
		i++
		if i >= len(toks) || toks[i] != "{" {
			return nil, fmt.Errorf("query: expected '{' after WHERE")
		}
		i++
		braced = true
	}

	var clause []string
	flush := func() error {
		if len(clause) == 0 {
			return nil
		}
		c, err := parseClause(clause)
		if err != nil {
			return err
		}
		q.Clauses = append(q.Clauses, c)
		clause = clause[:0]
		return nil
	}
	for ; i < len(toks); i++ {
		switch toks[i] {
		case ".":
			if len(clause) == 0 {
				return nil, fmt.Errorf("query: empty clause before '.'")
			}
			if err := flush(); err != nil {
				return nil, err
			}
		case "{":
			return nil, fmt.Errorf("query: unexpected '{'")
		case "}":
			if !braced {
				return nil, fmt.Errorf("query: unexpected '}'")
			}
			if err := flush(); err != nil {
				return nil, err
			}
			if i != len(toks)-1 {
				return nil, fmt.Errorf("query: trailing tokens after '}'")
			}
			braced = false
		default:
			clause = append(clause, toks[i])
		}
	}
	if braced {
		return nil, fmt.Errorf("query: missing '}'")
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(q.Clauses) == 0 {
		return nil, fmt.Errorf("query: pattern has no clauses")
	}
	return q, q.validate()
}

// MustParse is Parse that panics on error; for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// parseClause parses one "subject path object" token group.
func parseClause(toks []string) (Clause, error) {
	if len(toks) < 3 {
		return Clause{}, fmt.Errorf("query: clause %q needs subject, path and object", strings.Join(toks, " "))
	}
	s, err := parseTerm(toks[0])
	if err != nil {
		return Clause{}, err
	}
	o, err := parseTerm(toks[len(toks)-1])
	if err != nil {
		return Clause{}, err
	}
	c := Clause{S: s, O: o}
	mid := toks[1 : len(toks)-1]
	if len(mid) == 1 && strings.HasPrefix(mid[0], "?") {
		p, err := parseTerm(mid[0])
		if err != nil {
			return Clause{}, err
		}
		c.PredVar = p.Var
		return c, nil
	}
	node, err := pathexpr.Parse(strings.Join(mid, " "))
	if err != nil {
		return Clause{}, fmt.Errorf("query: clause %q: %w", strings.Join(toks, " "), err)
	}
	c.Path = node
	return c, nil
}

// parseTerm parses one endpoint or predicate-variable token.
func parseTerm(tok string) (Term, error) {
	switch {
	case strings.HasPrefix(tok, "?"):
		name := tok[1:]
		if name == "" {
			return Term{}, fmt.Errorf("query: bare '?' is not a variable")
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_') {
				return Term{}, fmt.Errorf("query: variable %q may use only letters, digits and '_'", tok)
			}
		}
		return Term{Var: name}, nil
	case strings.HasPrefix(tok, "<"):
		if len(tok) < 3 || !strings.HasSuffix(tok, ">") {
			return Term{}, fmt.Errorf("query: malformed IRI token %q", tok)
		}
		name := tok[1 : len(tok)-1]
		if strings.ContainsAny(name, "<>") {
			return Term{}, fmt.Errorf("query: malformed IRI token %q", tok)
		}
		return Term{Name: name}, nil
	case strings.ContainsAny(tok, "<>"):
		return Term{}, fmt.Errorf("query: constant %q must be wrapped in angle brackets", tok)
	default:
		return Term{Name: tok}, nil
	}
}

// validate rejects patterns whose variables mix namespaces: a variable
// may bind nodes (endpoint positions) or predicates (predicate
// position), never both, because the two id spaces are disjoint.
func (q *Query) validate() error {
	kind := map[string]string{}
	note := func(name, k string) error {
		if name == "" {
			return nil
		}
		if prev, ok := kind[name]; ok && prev != k {
			return fmt.Errorf("query: variable ?%s is used both as a %s and as a %s", name, prev, k)
		}
		kind[name] = k
		return nil
	}
	for _, c := range q.Clauses {
		if err := note(c.S.Var, "node"); err != nil {
			return err
		}
		if err := note(c.O.Var, "node"); err != nil {
			return err
		}
		if err := note(c.PredVar, "predicate"); err != nil {
			return err
		}
	}
	seen := map[string]bool{}
	for _, v := range q.Select {
		if _, ok := kind[v]; !ok {
			return fmt.Errorf("query: SELECT variable ?%s does not occur in the pattern", v)
		}
		if seen[v] {
			return fmt.Errorf("query: SELECT variable ?%s listed twice", v)
		}
		seen[v] = true
	}
	return nil
}

// Vars returns all variables in order of first appearance (subject,
// predicate, object per clause).
func (q *Query) Vars() []string {
	var out []string
	seen := map[string]bool{}
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	for _, c := range q.Clauses {
		add(c.S.Var)
		add(c.PredVar)
		add(c.O.Var)
	}
	return out
}

// OutVars returns the projected variables: the SELECT list when
// present, all variables in appearance order otherwise.
func (q *Query) OutVars() []string {
	if q.Select != nil {
		return q.Select
	}
	return q.Vars()
}

// PredVars returns the set of variables bound in predicate position.
func (q *Query) PredVars() map[string]bool {
	out := map[string]bool{}
	for _, c := range q.Clauses {
		if c.PredVar != "" {
			out[c.PredVar] = true
		}
	}
	return out
}

// String renders the query in the canonical syntax accepted by Parse
// (path expressions in pathexpr.String form), the form the service's
// pattern cache keys on.
func (q *Query) String() string {
	var sb strings.Builder
	if q.Select != nil {
		sb.WriteString("SELECT")
		for _, v := range q.Select {
			sb.WriteString(" ?")
			sb.WriteString(v)
		}
		sb.WriteString(" WHERE { ")
	}
	for i, c := range q.Clauses {
		if i > 0 {
			sb.WriteString(" . ")
		}
		sb.WriteString(termString(c.S))
		sb.WriteByte(' ')
		if c.PredVar != "" {
			sb.WriteByte('?')
			sb.WriteString(c.PredVar)
		} else {
			mid := pathexpr.String(c.Path)
			// A predicate literally named "." would render as the
			// clause-separator token; brackets keep it reparseable.
			if mid == "." {
				mid = "<.>"
			}
			sb.WriteString(mid)
		}
		sb.WriteByte(' ')
		sb.WriteString(termString(c.O))
	}
	if q.Select != nil {
		sb.WriteString(" }")
	}
	return sb.String()
}

// termString renders a term so it reparses: bare when safe, bracketed
// otherwise.
func termString(t Term) string {
	if t.IsVar() {
		return "?" + t.Var
	}
	if bareSafe(t.Name) {
		return t.Name
	}
	return "<" + t.Name + ">"
}

// bareSafe reports whether a constant name can be printed without
// brackets and reparsed as the same single token.
func bareSafe(name string) bool {
	switch name {
	case "", ".", "{", "}":
		return false
	}
	if name[0] == '?' || name[0] == '<' {
		return false
	}
	if strings.ContainsAny(name, "<> \t\n\r") {
		return false
	}
	// SELECT/WHERE at clause starts could be swallowed by the wrapper
	// grammar only in first position; brackets keep them unambiguous.
	if strings.EqualFold(name, "select") || strings.EqualFold(name, "where") {
		return false
	}
	return true
}
