package query

import (
	"strings"
	"testing"

	"ringrpq/internal/pathexpr"
)

func TestParseBasicPattern(t *testing.T) {
	q, err := Parse("?x <advisor>/<advisor>* ?y . ?y country Q30")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Clauses) != 2 || q.Select != nil {
		t.Fatalf("got %d clauses, select=%v", len(q.Clauses), q.Select)
	}
	c0 := q.Clauses[0]
	if c0.S.Var != "x" || c0.O.Var != "y" || c0.IsTriple() {
		t.Fatalf("clause 0 misparsed: %+v", c0)
	}
	if got := pathexpr.String(c0.Path); got != "<advisor>/<advisor>*" && got != "advisor/advisor*" {
		t.Fatalf("clause 0 path = %q", got)
	}
	c1 := q.Clauses[1]
	sym, ok := c1.TripleSym()
	if !ok || sym.Name != "country" || sym.Inverse {
		t.Fatalf("clause 1 should be a const-predicate triple: %+v", c1)
	}
	if c1.O.IsVar() || c1.O.Name != "Q30" {
		t.Fatalf("clause 1 object: %+v", c1.O)
	}
}

func TestParseSelectWrapper(t *testing.T) {
	q, err := Parse("SELECT ?m ?p WHERE { ?m manages+ ?e . ?e assigned ?p . ?p status active }")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 || q.Select[0] != "m" || q.Select[1] != "p" {
		t.Fatalf("select = %v", q.Select)
	}
	if len(q.Clauses) != 3 {
		t.Fatalf("%d clauses", len(q.Clauses))
	}
	if got, want := q.OutVars(), []string{"m", "p"}; !eqStrings(got, want) {
		t.Fatalf("OutVars = %v, want %v", got, want)
	}
}

func TestParseForms(t *testing.T) {
	good := []string{
		"?x p ?y",
		"?x ?p ?y",
		"?x ^p ?y",
		"a p b",
		"?x (a|b)+ ?y",
		"?x ( a | b )+ ?y", // path tokens re-joined across spaces
		"?x !(a|^b) ?y",
		"?x a/b? ?y . ?y c ?z .", // trailing dot
		"select ?x where { ?x p ?y }",
	}
	for _, src := range good {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
	bad := []string{
		"",
		"?x p",
		"?x",
		". ?x p ?y",
		"?x p ?y . .",
		"?x p ?y }",
		"select where { ?x p ?y }",
		"select ?z where { ?x p ?y }", // ?z not in pattern
		"select ?x ?x where { ?x p ?y }",
		"select ?x { ?x p ?y }", // missing WHERE
		"select ?x where ?x p ?y",
		"select ?x where { ?x p ?y",
		"?x p ?y . ?y ?x ?z", // ?x both node and predicate
		"?x ((a) ?y",         // bad path expression
		"?? p ?y",
		"a<b p ?y",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", src)
		}
	}
}

func TestParseVariablePredicate(t *testing.T) {
	q := MustParse("?x ?p ?y")
	c := q.Clauses[0]
	if c.PredVar != "p" || !c.IsTriple() || c.Path != nil {
		t.Fatalf("var-pred clause: %+v", c)
	}
	if !q.PredVars()["p"] || q.PredVars()["x"] {
		t.Fatalf("PredVars = %v", q.PredVars())
	}
	if got, want := q.Vars(), []string{"x", "p", "y"}; !eqStrings(got, want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"?x advisor/advisor* ?y . ?y country Q30",
		"SELECT ?m ?p WHERE { ?m manages+ ?e . ?e assigned ?p }",
		"?x ?p ?y",
		"<node?mark> p ?y",
		"?x !(a|^b)/c ?y",
		"a ^p* <b.c>",
		"?x (.) ?y",  // a predicate literally named "." must re-bracket
		"?x <.>* ?z", // ...also under operators? no: "." only alone is special
	}
	for _, src := range srcs {
		q := MustParse(src)
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", s1, src, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("String not a fixed point: %q → %q", s1, s2)
		}
	}
}

func eqStrings(a, b []string) bool {
	return strings.Join(a, "\x00") == strings.Join(b, "\x00")
}
