package query

import (
	"sync"

	"ringrpq/internal/ring"
)

// SelCache lazily builds and shares the §6 selectivity structures
// (internal/ring/selectivity.go) per ring. Construction is O(n log n)
// and roughly doubles the index footprint, so it happens once on the
// first pattern query and the result is shared: the cache is safe for
// concurrent use and one instance is meant to be passed to every Exec
// over the same database (e.g. across service worker clones).
type SelCache struct {
	mu sync.Mutex
	m  map[*ring.Ring]*ring.Selectivity
}

// NewSelCache returns an empty cache.
func NewSelCache() *SelCache {
	return &SelCache{m: map[*ring.Ring]*ring.Selectivity{}}
}

// For returns the selectivity structures of r, building them on first
// use. Concurrent first calls for the same ring may build redundantly;
// one result wins and the rest are dropped (builds are pure).
func (c *SelCache) For(r *ring.Ring) *ring.Selectivity {
	c.mu.Lock()
	s, ok := c.m[r]
	c.mu.Unlock()
	if ok {
		return s
	}
	s = ring.NewSelectivity(r)
	c.mu.Lock()
	if prev, ok := c.m[r]; ok {
		s = prev
	} else {
		c.m[r] = s
	}
	c.mu.Unlock()
	return s
}

// Retain drops every cached entry whose ring is not in keep: after a
// compaction swap, superseded rings' statistics are unreachable
// garbage (structurally shared shards keep theirs).
func (c *SelCache) Retain(keep []*ring.Ring) {
	live := make(map[*ring.Ring]bool, len(keep))
	for _, r := range keep {
		live[r] = true
	}
	c.mu.Lock()
	for r := range c.m {
		if !live[r] {
			delete(c.m, r)
		}
	}
	c.mu.Unlock()
}
