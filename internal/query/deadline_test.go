package query

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ringrpq/internal/enginetest"
	"ringrpq/internal/ring"
)

// slowPlanPattern is an 8-variable chain: the planner's exhaustive
// order search visits 8! = 40320 permutations with a feasibility check
// each — exactly the "slow plan" a pre-fix Run would execute entirely
// off the clock before starting its deadline.
func slowPlanPattern() *Query {
	clauses := []string{}
	vars := []string{"?a", "?b", "?c", "?d", "?e", "?f", "?g", "?h"}
	for i := 0; i+1 < len(vars); i++ {
		clauses = append(clauses, vars[i]+" pa "+vars[i+1])
	}
	return MustParse(strings.Join(clauses, " . "))
}

// TestRunDeadlineCoversPlanning pins the bugfix: one absolute deadline
// captured at Run entry governs planning, LTJ and the RPQ steps, so a
// pattern cannot run materially past 1× its budget even when planning
// itself is the slow part.
func TestRunDeadlineCoversPlanning(t *testing.T) {
	g := enginetest.RandomGraph(3, 30, 3, 120)
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)

	// A nanosecond budget expires before the permutation search can
	// finish; the whole call must come back almost immediately with
	// ErrTimeout rather than completing planning first.
	start := time.Now()
	err := x.Run(slowPlanPattern(), Options{Timeout: time.Nanosecond}, func(Binding) bool { return true })
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("nanosecond budget: err = %v, want ErrTimeout", err)
	}
	if elapsed > 500*time.Millisecond {
		t.Fatalf("nanosecond budget ran for %v; planning escaped the deadline", elapsed)
	}

	// The timed-out attempt must not poison the plan memo: a generous
	// budget on the same executor plans afresh and completes.
	if err := x.Run(slowPlanPattern(), Options{Timeout: time.Minute}, func(Binding) bool { return true }); err != nil {
		t.Fatalf("generous budget after timeout: %v", err)
	}
}

// TestRunDeadlineSharedWithLTJ checks the second half of the bugfix:
// the LTJ stage receives the *remaining* budget, not a fresh copy of
// the full timeout (two independently-started budgets could run a
// pattern to ~2× its allowance).
func TestRunDeadlineSharedWithLTJ(t *testing.T) {
	g := enginetest.RandomGraph(4, 40, 3, 200)
	x := NewExec(g, ring.New(g, ring.WaveletMatrix), nil)
	q := MustParse("?a pa ?b . ?b pb ?c . ?c pa+ ?d")

	// Warm the plan memo so the next run's planning is free, then
	// exhaust the budget before the join starts: Run must report
	// ErrTimeout without granting LTJ a fresh timeout.
	if err := x.Run(q, Options{}, func(Binding) bool { return true }); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	start := time.Now()
	err := x.Run(q, Options{Timeout: time.Nanosecond}, func(Binding) bool {
		time.Sleep(time.Millisecond) // any emitted row only slows the clock further
		return true
	})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("exhausted budget: err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("exhausted budget ran for %v", elapsed)
	}
}
