package query

import (
	"sort"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/ltj"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
)

// ErrUnsupportedOrder re-exports the LTJ error for callers that only
// import this package.
var ErrUnsupportedOrder = ltj.ErrUnsupportedOrder

// Plan is the selectivity-ordered execution strategy for one pattern:
// the BGP core as LTJ patterns under a fixed variable order, and the
// RPQ clauses as a scheduled sequence of bound-endpoint path steps.
type Plan struct {
	// Triples is the BGP core, resolved to completed ids.
	Triples []ltj.Pattern
	// Order is the LTJ variable order (BGP variables only; nil when the
	// variable count exceeds the exhaustive-search budget and LTJ should
	// search itself).
	Order []string
	// Steps are the RPQ clauses in execution order.
	Steps []PathStep
	// Empty marks a pattern with a constant absent from the graph: the
	// result set is empty without any evaluation.
	Empty bool
	// VarEst records the planner's per-variable candidate-set estimates
	// (for tests and explain output).
	VarEst map[string]float64
}

// PathStep is one scheduled RPQ clause — or, in the union-mode
// all-steps plan, any clause, including triple patterns.
type PathStep struct {
	// Expr is the clause's path expression (nil when PredVar is set).
	Expr pathexpr.Node
	// PredVar names a variable predicate: the step enumerates union
	// edges instead of running the RPQ engine (all-steps plans only).
	PredVar string
	// SVar/OVar name variable endpoints ("" = constant endpoint).
	SVar, OVar string
	// SID/OID are constant endpoint ids (core.Variable for variables).
	SID, OID int64
	// Est is the planner's cost estimate for the step at schedule time.
	Est float64
}

// maxExhaustiveVars bounds the planner's permutation search; beyond it
// LTJ's own first-feasible search is used (8! = 40320 candidates).
const maxExhaustiveVars = 8

// planner carries the inputs of one planning pass.
type planner struct {
	g        *triples.Graph
	r        *ring.Ring
	sel      *ring.Selectivity // may be nil: C-array estimates only
	deadline time.Time         // absolute query deadline; zero = none
}

// plan resolves and orders q. A nil error with Empty set means the
// query provably has no results. With allSteps set, every clause —
// triple patterns included — is scheduled as a pipelined step (union
// mode: LTJ reads only the static ring, so it is bypassed). Planning
// honours the deadline: a pathological permutation search returns
// ErrTimeout instead of running off the clock.
func (p *planner) plan(q *Query, allSteps bool) (*Plan, error) {
	pl := &Plan{VarEst: map[string]float64{}}
	var paths []Clause
	for _, c := range q.Clauses {
		if !allSteps && c.IsTriple() {
			pat, ok := p.resolveTriple(c)
			if !ok {
				pl.Empty = true
				return pl, nil
			}
			pl.Triples = append(pl.Triples, pat)
		} else {
			paths = append(paths, c)
		}
	}

	// Per-variable candidate-set estimates over all clauses.
	est := p.estimates(q)
	pl.VarEst = est

	// LTJ variable order: among the feasible permutations, prefer the
	// one that binds the most selective variables first.
	if len(pl.Triples) > 0 {
		bgpVars := ltj.Vars(pl.Triples)
		if len(bgpVars) <= maxExhaustiveVars {
			order, ok, err := bestFeasibleOrder(pl.Triples, bgpVars, est, p.deadline)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, ltj.ErrUnsupportedOrder
			}
			pl.Order = order
		}
		// else: leave Order nil; LTJ searches for a feasible order.
	}

	// RPQ schedule: greedily run clauses whose endpoints are already
	// bound (existence checks first, then the cheapest expansion);
	// disconnected clauses last.
	bound := map[string]bool{}
	for _, pat := range pl.Triples {
		for _, t := range []ltj.Term{pat.S, pat.P, pat.O} {
			if t.Var != "" {
				bound[t.Var] = true
			}
		}
	}
	remaining := append([]Clause(nil), paths...)
	for len(remaining) > 0 {
		best, bestCost := -1, 0.0
		for i, c := range remaining {
			cost, ok := p.stepCost(c, bound, est)
			if !ok {
				continue
			}
			if best == -1 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		if best == -1 {
			// No clause touches the bound set: a disconnected component.
			// Pick the cheapest full scan and continue from there.
			for i, c := range remaining {
				cost := p.scanCost(c, est)
				if best == -1 || cost < bestCost {
					best, bestCost = i, cost
				}
			}
		}
		c := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		step, ok := p.resolveStep(c, bestCost)
		if !ok {
			pl.Empty = true
			return pl, nil
		}
		pl.Steps = append(pl.Steps, step)
		if c.S.IsVar() {
			bound[c.S.Var] = true
		}
		if c.O.IsVar() {
			bound[c.O.Var] = true
		}
		if c.PredVar != "" {
			bound[c.PredVar] = true
		}
	}
	return pl, nil
}

// resolveTriple maps a triple-pattern clause to LTJ terms; false means
// a constant is absent from the graph (empty result).
func (p *planner) resolveTriple(c Clause) (ltj.Pattern, bool) {
	var pat ltj.Pattern
	var ok bool
	if pat.S, ok = p.resolveNodeTerm(c.S); !ok {
		return pat, false
	}
	if pat.O, ok = p.resolveNodeTerm(c.O); !ok {
		return pat, false
	}
	if c.PredVar != "" {
		pat.P = ltj.V(c.PredVar)
		return pat, true
	}
	sym, _ := c.TripleSym()
	id, found := p.g.PredID(sym.Name, sym.Inverse)
	if !found {
		return pat, false
	}
	pat.P = ltj.C(id)
	return pat, true
}

func (p *planner) resolveNodeTerm(t Term) (ltj.Term, bool) {
	if t.IsVar() {
		return ltj.V(t.Var), true
	}
	id, ok := p.g.Nodes.Lookup(t.Name)
	if !ok {
		return ltj.Term{}, false
	}
	return ltj.C(id), true
}

// resolveStep maps an RPQ clause — or, in all-steps plans, any clause
// — to a PathStep; false means a constant endpoint is absent from the
// graph.
func (p *planner) resolveStep(c Clause, cost float64) (PathStep, bool) {
	step := PathStep{Expr: c.Path, PredVar: c.PredVar, SID: core.Variable, OID: core.Variable, Est: cost}
	if c.S.IsVar() {
		step.SVar = c.S.Var
	} else {
		id, ok := p.g.Nodes.Lookup(c.S.Name)
		if !ok {
			return step, false
		}
		step.SID = int64(id)
	}
	if c.O.IsVar() {
		step.OVar = c.O.Var
	} else {
		id, ok := p.g.Nodes.Lookup(c.O.Name)
		if !ok {
			return step, false
		}
		step.OID = int64(id)
	}
	return step, true
}

// stepCost scores running clause c now, given the bound variables:
// 0 for a pure existence check, the unbound side's expansion estimate
// otherwise; false when no endpoint is bound or constant yet.
func (p *planner) stepCost(c Clause, bound map[string]bool, est map[string]float64) (float64, bool) {
	sBound := !c.S.IsVar() || bound[c.S.Var]
	oBound := !c.O.IsVar() || bound[c.O.Var]
	switch {
	case sBound && oBound:
		return 0, true
	case sBound:
		return est[c.O.Var], true
	case oBound:
		return est[c.S.Var], true
	default:
		return 0, false
	}
}

// scanCost scores a full unbound evaluation of clause c.
func (p *planner) scanCost(c Clause, est map[string]float64) float64 {
	cost := float64(p.r.N)
	if c.S.IsVar() {
		if e, ok := est[c.S.Var]; ok && e < cost {
			cost = e
		}
	}
	if c.O.IsVar() {
		if e, ok := est[c.O.Var]; ok && e < cost {
			cost = e
		}
	}
	return cost * 2 // disfavour full scans over bound expansions
}

// bestFeasibleOrder searches the permutations of vars for the feasible
// order minimising the position-weighted estimates — the most selective
// variables first. Iteration order is deterministic. The deadline is
// probed every few hundred candidates: the search is exponential in the
// variable count and must stay inside the query's budget.
func bestFeasibleOrder(patterns []ltj.Pattern, vars []string, est map[string]float64, deadline time.Time) ([]string, bool, error) {
	sort.Strings(vars)
	perm := append([]string(nil), vars...)
	best := []string{}
	found := false
	bestCost := 0.0
	tried := 0
	var timedOut error
	score := func(order []string) float64 {
		cost, w := 0.0, 1.0
		for i := len(order) - 1; i >= 0; i-- {
			cost += est[order[i]] * w
			w *= 4
		}
		return cost
	}
	var rec func(k int)
	rec = func(k int) {
		if timedOut != nil {
			return
		}
		if k == len(perm) {
			tried++
			if !deadline.IsZero() && tried%512 == 0 && time.Now().After(deadline) {
				timedOut = core.ErrTimeout
				return
			}
			if !ltj.Feasible(patterns, perm) {
				return
			}
			if c := score(perm); !found || c < bestCost {
				best = append(best[:0], perm...)
				found = true
				bestCost = c
			}
			return
		}
		for i := k; i < len(perm); i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if timedOut != nil {
		return nil, false, timedOut
	}
	return best, found, nil
}

// estimates computes a per-variable candidate-set size: the minimum,
// over the clauses mentioning the variable, of how many distinct values
// that clause alone admits. Distinct-counting uses the §6 selectivity
// structures when available and C-array range sizes otherwise.
func (p *planner) estimates(q *Query) map[string]float64 {
	est := map[string]float64{}
	note := func(v string, e float64) {
		if v == "" {
			return
		}
		if cur, ok := est[v]; !ok || e < cur {
			est[v] = e
		}
	}
	n := float64(p.r.N)
	for _, c := range q.Clauses {
		if c.PredVar != "" {
			note(c.PredVar, float64(p.r.NumPreds))
			note(c.S.Var, n)
			note(c.O.Var, n)
			continue
		}
		if sym, ok := c.TripleSym(); ok {
			id, found := p.g.PredID(sym.Name, sym.Inverse)
			if !found {
				note(c.S.Var, 0)
				note(c.O.Var, 0)
				continue
			}
			note(c.S.Var, float64(p.distinctSubjects(id)))
			note(c.O.Var, float64(p.distinctObjects(id)))
			continue
		}
		// RPQ clause: a matching path leaves the subject on one of the
		// expression's first predicates and enters the object on one of
		// its last; nullable expressions admit every node. The object
		// end uses the reversed expression, whose first syms are
		// already inverted — their distinct sources are exactly the
		// distinct targets of the original boundary predicates.
		if nullable(c.Path) {
			note(c.S.Var, float64(p.r.NumNodes))
			note(c.O.Var, float64(p.r.NumNodes))
			continue
		}
		note(c.S.Var, p.boundaryEstimate(firstSyms(c.Path)))
		note(c.O.Var, p.boundaryEstimate(firstSyms(pathexpr.InverseOf(c.Path))))
	}
	return est
}

// boundaryEstimate sums the distinct-source counts of the boundary
// predicates. A nil sym list (a negated property set on the boundary)
// is unknown and estimates the full triple count.
func (p *planner) boundaryEstimate(syms []pathexpr.Sym) float64 {
	if syms == nil {
		return float64(p.r.N)
	}
	total := 0.0
	for _, s := range syms {
		id, ok := p.g.PredID(s.Name, s.Inverse)
		if !ok {
			continue // unknown predicate: matches nothing
		}
		total += float64(p.distinctSubjects(id))
	}
	if max := float64(p.r.N); total > max {
		return max
	}
	return total
}

// distinctSubjects counts distinct sources of predicate id.
func (p *planner) distinctSubjects(id uint32) int {
	b, e := p.r.PredRange(id)
	if p.sel == nil {
		return e - b
	}
	return p.sel.DistinctSubjects(b, e)
}

// distinctObjects counts distinct targets of predicate id — the
// distinct sources of its inverse in the completed graph.
func (p *planner) distinctObjects(id uint32) int {
	return p.distinctSubjects(p.g.Inverse(id))
}

// nullable reports whether the expression matches the empty path.
func nullable(n pathexpr.Node) bool {
	switch x := n.(type) {
	case pathexpr.Sym, pathexpr.NegSet:
		return false
	case pathexpr.Eps:
		return true
	case pathexpr.Concat:
		return nullable(x.L) && nullable(x.R)
	case pathexpr.Alt:
		return nullable(x.L) || nullable(x.R)
	case pathexpr.Star, pathexpr.Opt:
		return true
	case pathexpr.Plus:
		return nullable(x.X)
	default:
		return false
	}
}

// firstSyms returns the predicate occurrences that can start a matching
// path, or nil when a negated property set makes the boundary unknown.
func firstSyms(n pathexpr.Node) []pathexpr.Sym {
	switch x := n.(type) {
	case pathexpr.Sym:
		return []pathexpr.Sym{x}
	case pathexpr.NegSet:
		return nil
	case pathexpr.Eps:
		return []pathexpr.Sym{}
	case pathexpr.Concat:
		l := firstSyms(x.L)
		if l == nil {
			return nil
		}
		if !nullable(x.L) {
			return l
		}
		r := firstSyms(x.R)
		if r == nil {
			return nil
		}
		return append(append([]pathexpr.Sym{}, l...), r...)
	case pathexpr.Alt:
		l, r := firstSyms(x.L), firstSyms(x.R)
		if l == nil || r == nil {
			return nil
		}
		return append(append([]pathexpr.Sym{}, l...), r...)
	case pathexpr.Star:
		return firstSyms(x.X)
	case pathexpr.Plus:
		return firstSyms(x.X)
	case pathexpr.Opt:
		return firstSyms(x.X)
	default:
		return nil
	}
}
