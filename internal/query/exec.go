package query

import (
	"context"
	"errors"
	"time"

	"ringrpq/internal/core"
	"ringrpq/internal/ltj"
	"ringrpq/internal/obs"
	"ringrpq/internal/overlay"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
)

// ErrCrossShard reports a pattern whose clauses span several sub-rings
// of a sharded index: every matching path of every clause must live in
// one shard for the join to be routed wholesale, and cross-shard joins
// are not yet supported (the RPQ-only cooperative traversal does not
// extend to LTJ's rotation walks).
var ErrCrossShard = errors.New("query: graph pattern spans multiple shards (cross-shard joins are not yet supported)")

// ErrTimeout re-exports the engine's timeout error: bindings emitted
// before the deadline are valid but incomplete.
var ErrTimeout = core.ErrTimeout

// Options tune one pattern evaluation.
type Options struct {
	// Limit caps the number of emitted bindings; 0 means unlimited.
	Limit int
	// Timeout bounds wall-clock evaluation time; 0 means none.
	// Exceeding it returns ErrTimeout. The budget is one absolute
	// deadline captured at entry covering planning, the LTJ core and
	// every RPQ step — a pattern never runs materially past 1× it.
	Timeout time.Duration
	// Trace, when non-nil, records plan / ltj_join / rpq_step spans
	// (and, nested below them, the engines' traverse and level spans).
	Trace *obs.Trace
}

// Binding is one result row: variable name (without '?') to the bound
// node name — or, for predicate-position variables, the completed
// predicate name ('^'-prefixed for inverses).
type Binding map[string]string

// Exec evaluates graph patterns over one database layout. Like
// core.Engine it owns working state and must not be used concurrently;
// build one per worker (the SelCache may be shared across them).
type Exec struct {
	g   *triples.Graph
	r   *ring.Ring     // single-ring layout (nil when sharded)
	set *ring.ShardSet // sharded layout (nil when single-ring)
	sel *SelCache

	// ov, when non-nil and non-empty, switches execution to the
	// overlay-aware union mode: every clause (triple patterns included)
	// becomes a pipelined step over union evaluators, so patterns see
	// ring ∪ adds − dels. numNodes is the owning snapshot's node-id
	// space.
	ov       *overlay.Overlay
	numNodes int

	engines  map[engineKey]*core.Engine
	uengines map[engineKey]*overlay.Engine
	// plans memoises planning by canonical query text and routed ring
	// (dirtyPlans holds the all-steps union-mode variants): the
	// planner's permutation search and estimate lookups depend only on
	// the immutable static index, so a long-lived Exec (a service
	// worker) re-running a pattern pays planning once.
	plans      map[planKey]*Plan
	dirtyPlans map[planKey]*Plan
}

// planKey identifies one memoised plan.
type planKey struct {
	canon string
	r     *ring.Ring
}

// maxPlans bounds the per-Exec plan memo; on overflow the whole memo
// is dropped (replanning a handful of patterns is cheaper than
// tracking recency), mirroring core's compilation memo.
const maxPlans = 128

// engineKey identifies one engine slot: the routed ring and the RPQ
// pipeline depth (nested path steps each need their own working
// arrays).
type engineKey struct {
	r     *ring.Ring
	depth int
}

// NewExec builds a pattern executor over a single ring. A nil sel
// builds a private selectivity cache.
func NewExec(g *triples.Graph, r *ring.Ring, sel *SelCache) *Exec {
	if sel == nil {
		sel = NewSelCache()
	}
	return &Exec{g: g, r: r, sel: sel, engines: map[engineKey]*core.Engine{}}
}

// NewExecSharded builds a pattern executor over a shard set.
func NewExecSharded(g *triples.Graph, set *ring.ShardSet, sel *SelCache) *Exec {
	if sel == nil {
		sel = NewSelCache()
	}
	return &Exec{g: g, set: set, sel: sel, engines: map[engineKey]*core.Engine{}}
}

// SetOverlay points the executor at a snapshot's overlay (nil or empty
// restores the plain static path). Call before Run, under the same
// one-caller discipline as Run itself.
func (x *Exec) SetOverlay(ov *overlay.Overlay, numNodes int) {
	x.ov = ov
	x.numNodes = numNodes
}

// dirty reports whether union-mode execution is on.
func (x *Exec) dirty() bool { return x.ov != nil && !x.ov.Empty() }

// ids resolves predicate occurrences against the graph dictionaries.
func (x *Exec) ids(s pathexpr.Sym) (uint32, bool) {
	return x.g.PredID(s.Name, s.Inverse)
}

// allRings lists the layout's sub-rings.
func (x *Exec) allRings() []*ring.Ring {
	if x.set != nil {
		return x.set.Shards
	}
	return []*ring.Ring{x.r}
}

// engineFor returns the static engine for one (ring, pipeline depth)
// slot, building it on first use.
func (x *Exec) engineFor(r *ring.Ring, depth int) *core.Engine {
	key := engineKey{r, depth}
	if e, ok := x.engines[key]; ok {
		return e
	}
	e := core.NewEngine(r, x.ids)
	x.engines[key] = e
	return e
}

// evaluatorFor returns the evaluator a step at the given depth should
// use: the routed ring's static engine, or — in union mode — an
// overlay engine over every sub-ring that delegates to it when the
// step's predicates are untouched.
func (x *Exec) evaluatorFor(r *ring.Ring, depth int) core.Evaluator {
	static := x.engineFor(r, depth)
	if !x.dirty() {
		return static
	}
	key := engineKey{r, depth}
	ue, ok := x.uengines[key]
	if !ok {
		if x.uengines == nil {
			x.uengines = map[engineKey]*overlay.Engine{}
		}
		ue = overlay.NewEngine(static, x.allRings(), x.ids, x.g.NumCompletedPreds())
		x.uengines[key] = ue
	}
	ue.SetSnapshot(x.ov, x.numNodes)
	return ue
}

// route picks the ring the whole pattern runs on. For the single-ring
// layout that is trivially the ring; for a sharded layout every
// predicate any clause can touch must map to one shard (variable
// predicates and negated property sets span shards by construction).
func (x *Exec) route(q *Query) (*ring.Ring, error) {
	if x.set == nil {
		return x.r, nil
	}
	if x.set.K == 1 {
		return x.set.Shards[0], nil
	}
	shard := -1
	assign := func(k int) error {
		if shard == -1 {
			shard = k
		} else if shard != k {
			return ErrCrossShard
		}
		return nil
	}
	for _, c := range q.Clauses {
		if c.PredVar != "" {
			// A variable predicate ranges over every completed
			// predicate, hence over every shard.
			return nil, ErrCrossShard
		}
		if pathexpr.HasNegSets(c.Path) {
			return nil, ErrCrossShard
		}
		for _, s := range pathexpr.Predicates(c.Path) {
			id, ok := x.ids(s)
			if !ok {
				continue // matches nothing; no shard constraint
			}
			if err := assign(x.set.ShardFor(id)); err != nil {
				return nil, err
			}
		}
	}
	if shard == -1 {
		shard = 0 // no known predicate: any shard answers (empty/ε cases)
	}
	return x.set.Shards[shard], nil
}

// Plan resolves and plans q without executing it (explain output and
// planner tests).
func (x *Exec) Plan(q *Query) (*Plan, error) {
	r, err := x.route(q)
	if err != nil {
		return nil, err
	}
	return x.planFor(q, r, time.Time{}, x.dirty())
}

// planFor returns the memoised plan of q on ring r, planning on first
// use under the given absolute deadline (zero = none). allSteps plans
// every clause as a pipelined step (union mode bypasses LTJ, which
// reads only the static ring).
func (x *Exec) planFor(q *Query, r *ring.Ring, deadline time.Time, allSteps bool) (*Plan, error) {
	memo := &x.plans
	if allSteps {
		memo = &x.dirtyPlans
	}
	key := planKey{canon: q.String(), r: r}
	if pl, ok := (*memo)[key]; ok {
		return pl, nil
	}
	p := &planner{g: x.g, r: r, sel: x.sel.For(r), deadline: deadline}
	pl, err := p.plan(q, allSteps)
	if err != nil {
		return nil, err
	}
	if *memo == nil || len(*memo) >= maxPlans {
		*memo = make(map[planKey]*Plan, 16)
	}
	(*memo)[key] = pl
	return pl, nil
}

// Run evaluates q, calling emit for every result binding. Bindings are
// distinct; emit may return false to stop early. The map passed to emit
// is freshly allocated per call and may be retained. Exceeding
// Options.Timeout returns ErrTimeout with the bindings emitted so far
// still valid; Options.Limit truncates silently.
func (x *Exec) Run(q *Query, opts Options, emit func(Binding) bool) error {
	// One absolute deadline captured at entry governs routing,
	// planning, LTJ and every RPQ step: planning runs on the clock.
	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	r, err := x.route(q)
	if err != nil {
		return err
	}
	psp := opts.Trace.Begin(obs.SpanPlan)
	pl, err := x.planFor(q, r, deadline, x.dirty())
	opts.Trace.End(psp)
	if err != nil {
		return err
	}
	if pl.Empty {
		return nil
	}
	rt := &run{
		x: x, r: r, plan: pl, emit: emit,
		limit:    opts.Limit,
		row:      map[string]uint32{},
		predVars: q.PredVars(),
		deadline: deadline,
		trace:    opts.Trace,
	}

	if len(pl.Triples) > 0 {
		rem, ok := rt.remaining()
		if !ok {
			return ErrTimeout
		}
		lopts := ltj.Options{Order: pl.Order, Timeout: rem}
		jsp, rows := rt.trace.Begin(obs.SpanLTJ), int64(0)
		err := ltj.JoinWith(r, pl.Triples, lopts, func(row ltj.Row) bool {
			rows++
			for k, v := range row {
				rt.row[k] = v
			}
			cont := rt.steps(0)
			for k := range row {
				delete(rt.row, k)
			}
			return cont
		})
		rt.trace.EndVals(jsp, rows)
		if errors.Is(err, ltj.ErrTimeout) {
			return ErrTimeout
		}
		if err != nil {
			return err
		}
		return rt.failure
	}
	rt.steps(0)
	return rt.failure
}

// run is the per-evaluation state of one pattern execution.
type run struct {
	x        *Exec
	r        *ring.Ring
	plan     *Plan
	emit     func(Binding) bool
	limit    int
	emitted  int
	row      map[string]uint32
	predVars map[string]bool
	deadline time.Time
	ticks    int
	failure  error
	trace    *obs.Trace
}

// remaining converts the deadline into a per-call engine timeout; false
// means the deadline already passed.
func (rt *run) remaining() (time.Duration, bool) {
	if rt.deadline.IsZero() {
		return 0, true
	}
	rem := time.Until(rt.deadline)
	if rem <= 0 {
		rt.failure = ErrTimeout
		return 0, false
	}
	return rem, true
}

// tick is a cheap amortised deadline probe for the executor's own
// loops (the union-mode edge enumerations).
func (rt *run) tick() bool {
	rt.ticks++
	if rt.deadline.IsZero() || rt.ticks%256 != 0 {
		return true
	}
	if time.Now().After(rt.deadline) {
		rt.failure = ErrTimeout
		return false
	}
	return true
}

// steps runs the RPQ pipeline from step i under the current row,
// emitting completed bindings at the end; false stops the whole
// enumeration (failure, limit, or the caller's emit).
func (rt *run) steps(i int) bool {
	if rt.failure != nil {
		return false
	}
	if i == len(rt.plan.Steps) {
		return rt.emitRow()
	}
	s := rt.plan.Steps[i]
	if s.PredVar != "" {
		return rt.predVarStep(i, s)
	}
	sid, sBound := rt.resolve(s.SVar, s.SID)
	oid, oBound := rt.resolve(s.OVar, s.OID)
	rem, ok := rt.remaining()
	if !ok {
		return false
	}
	eng := rt.x.evaluatorFor(rt.r, i)
	copts := core.Options{Timeout: rem, Trace: rt.trace}

	cq := core.Query{Subject: core.Variable, Object: core.Variable, Expr: s.Expr}
	if sBound {
		cq.Subject = sid
	}
	if oBound {
		cq.Object = oid
	}

	ssp := rt.trace.Begin(obs.SpanRPQStep)
	cont := true
	var err error
	switch {
	case sBound && oBound:
		found := false
		_, err = eng.Eval(context.Background(), cq, core.Options{Timeout: rem, Limit: 1, Trace: rt.trace}, func(uint32, uint32) bool {
			found = true
			return false
		})
		if err == nil && found {
			cont = rt.steps(i + 1)
		}
	case !sBound && !oBound && s.SVar == s.OVar && s.SVar != "":
		// Same unbound variable on both ends: only v→v loops bind it.
		_, err = eng.Eval(context.Background(), cq, copts, func(a, b uint32) bool {
			if a != b {
				return true
			}
			rt.row[s.SVar] = a
			cont = rt.steps(i + 1)
			delete(rt.row, s.SVar)
			return cont
		})
	default:
		_, err = eng.Eval(context.Background(), cq, copts, func(a, b uint32) bool {
			if !sBound && s.SVar != "" {
				rt.row[s.SVar] = a
			}
			if !oBound && s.OVar != "" {
				rt.row[s.OVar] = b
			}
			cont = rt.steps(i + 1)
			if !sBound && s.SVar != "" {
				delete(rt.row, s.SVar)
			}
			if !oBound && s.OVar != "" {
				delete(rt.row, s.OVar)
			}
			return cont
		})
	}
	rt.trace.End(ssp)
	if err != nil {
		if errors.Is(err, core.ErrTimeout) {
			rt.failure = ErrTimeout
		} else {
			rt.failure = err
		}
		return false
	}
	return cont
}

// predVarStep executes a variable-predicate triple pattern in union
// mode by enumerating matching union edges directly (the static path
// joins these through LTJ instead, which union mode bypasses).
func (rt *run) predVarStep(i int, st PathStep) bool {
	sid, sBound := rt.resolve(st.SVar, st.SID)
	oid, oBound := rt.resolve(st.OVar, st.OID)
	pid := int64(core.Variable)
	if v, ok := rt.row[st.PredVar]; ok {
		pid = int64(v)
	}
	if !sBound {
		sid = core.Variable
	}
	if !oBound {
		oid = core.Variable
	}
	cont := true
	rt.x.eachUnionEdge(sid, pid, oid, func(es, ep, eo uint32) bool {
		if !rt.tick() {
			return false
		}
		// Bind the step's variables against the edge, rejecting
		// inconsistent repeats (e.g. ?x ?x ?x) and unwinding after the
		// recursive continuation.
		okRow := true
		var added []string
		try := func(name string, v uint32) {
			if !okRow || name == "" {
				return
			}
			if cur, bound := rt.row[name]; bound {
				if cur != v {
					okRow = false
				}
				return
			}
			rt.row[name] = v
			added = append(added, name)
		}
		try(st.SVar, es)
		try(st.PredVar, ep)
		try(st.OVar, eo)
		if okRow {
			cont = rt.steps(i + 1)
		}
		for _, n := range added {
			delete(rt.row, n)
		}
		return cont
	})
	return cont && rt.failure == nil
}

// eachUnionEdge streams the union edges matching the given constraints
// (core.Variable wildcards), distinct by construction: the static
// sub-rings partition the static triples, overlay adds are disjoint
// from them, and tombstoned edges are dropped.
func (x *Exec) eachUnionEdge(sid, pid, oid int64, fn func(s, p, o uint32) bool) {
	half := x.g.NumPreds
	inv := func(p uint32) uint32 {
		if p < half {
			return p + half
		}
		return p - half
	}
	rings, ov := x.allRings(), x.ov
	inOf := func(o uint32, f func(p, s uint32) bool) bool {
		return overlay.EachInEdge(rings, ov, o, f)
	}
	filter := func(s, p, o uint32) bool {
		if sid != core.Variable && int64(s) != sid {
			return true
		}
		if pid != core.Variable && int64(p) != pid {
			return true
		}
		if oid != core.Variable && int64(o) != oid {
			return true
		}
		return fn(s, p, o)
	}
	switch {
	case oid != core.Variable:
		if oid >= 0 && int(oid) < x.numNodes {
			inOf(uint32(oid), func(p, s uint32) bool { return filter(s, p, uint32(oid)) })
		}
	case sid != core.Variable:
		// Out-edges of s are the inverses of its in-edges in the
		// completed graph: (s, p, o) ⟺ (o, p̂, s).
		if sid >= 0 && int(sid) < x.numNodes {
			inOf(uint32(sid), func(q, o uint32) bool { return filter(uint32(sid), inv(q), o) })
		}
	default:
		for o := 0; o < x.numNodes; o++ {
			if !inOf(uint32(o), func(p, s uint32) bool { return filter(s, p, uint32(o)) }) {
				return
			}
		}
	}
}

// resolve returns the id a step endpoint is fixed to, if any: a
// constant, or a variable already bound by LTJ or an earlier step.
func (rt *run) resolve(v string, constID int64) (int64, bool) {
	if v == "" {
		if constID == core.Variable {
			return core.Variable, false
		}
		return constID, true
	}
	if id, ok := rt.row[v]; ok {
		return int64(id), true
	}
	return core.Variable, false
}

// emitRow renders the current row as a Binding and delivers it.
func (rt *run) emitRow() bool {
	b := make(Binding, len(rt.row))
	for k, v := range rt.row {
		if rt.predVars[k] {
			b[k] = rt.x.g.PredName(v)
		} else {
			b[k] = rt.x.g.Nodes.Name(v)
		}
	}
	rt.emitted++
	if !rt.emit(b) {
		return false
	}
	return rt.limit == 0 || rt.emitted < rt.limit
}
