package query

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"ringrpq/internal/overlay"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
)

// Union-mode (overlay-aware) pattern execution must agree with plain
// static execution over the merged graph: the dirty path trades LTJ
// for all-steps pipelining, so this differential covers triple
// patterns, RPQ clauses and variable predicates on both layouts.

type dirtyWorld struct {
	xDirty  *Exec // static ring + overlay
	xMerged *Exec // merged graph, plain path (ground truth)
}

func buildDirtyWorld(t *testing.T, seed int64, shards int) *dirtyWorld {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nv, np = 12, 3
	intern := func(b *triples.Builder) {
		for i := 0; i < nv; i++ {
			b.Nodes().Intern(fmt.Sprintf("n%02d", i))
		}
		for i := 0; i < np; i++ {
			b.Preds().Intern(fmt.Sprintf("p%c", 'a'+i))
		}
	}
	type be struct{ s, p, o uint32 }
	seen := map[be]bool{}
	var universe []be
	for i := 0; i < 50; i++ {
		e := be{uint32(rng.Intn(nv)), uint32(rng.Intn(np)), uint32(rng.Intn(nv))}
		if !seen[e] {
			seen[e] = true
			universe = append(universe, e)
		}
	}
	var static, added []be
	for _, e := range universe {
		if rng.Intn(3) > 0 {
			static = append(static, e)
		} else {
			added = append(added, e)
		}
	}
	deleted := static[:len(static)/5]
	kept := static[len(static)/5:]

	sb := triples.NewBuilder()
	intern(sb)
	for _, e := range static {
		sb.AddIDs(e.s, e.p, e.o)
	}
	gStatic := sb.Build()

	mb := triples.NewBuilder()
	intern(mb)
	for _, e := range kept {
		mb.AddIDs(e.s, e.p, e.o)
	}
	for _, e := range added {
		mb.AddIDs(e.s, e.p, e.o)
	}
	gMerged := mb.Build()

	complete := func(es []be) []overlay.Edge {
		out := make([]overlay.Edge, 0, 2*len(es))
		for _, e := range es {
			out = append(out,
				overlay.Edge{S: e.s, P: e.p, O: e.o},
				overlay.Edge{S: e.o, P: e.p + np, O: e.s})
		}
		return out
	}

	w := &dirtyWorld{}
	if shards > 1 {
		setS := ring.NewShardSet(gStatic, shards, nil, ring.WaveletMatrix)
		setM := ring.NewShardSet(gMerged, shards, nil, ring.WaveletMatrix)
		inStatic := func(e overlay.Edge) bool {
			return setS.Shards[setS.ShardFor(e.P)].Has(e.S, e.P, e.O)
		}
		ov := overlay.New().Apply(1, complete(added), complete(deleted), inStatic)
		w.xDirty = NewExecSharded(gStatic, setS, nil)
		w.xDirty.SetOverlay(ov, gStatic.NumNodes())
		w.xMerged = NewExecSharded(gMerged, setM, nil)
	} else {
		rS := ring.New(gStatic, ring.WaveletMatrix)
		rM := ring.New(gMerged, ring.WaveletMatrix)
		inStatic := func(e overlay.Edge) bool { return rS.Has(e.S, e.P, e.O) }
		ov := overlay.New().Apply(1, complete(added), complete(deleted), inStatic)
		w.xDirty = NewExec(gStatic, rS, nil)
		w.xDirty.SetOverlay(ov, gStatic.NumNodes())
		w.xMerged = NewExec(gMerged, rM, nil)
	}
	return w
}

func rowsOf(t *testing.T, x *Exec, src string) []string {
	t.Helper()
	q := MustParse(src)
	vars := q.OutVars()
	var out []string
	err := x.Run(q, Options{}, func(b Binding) bool {
		parts := make([]string, len(vars))
		for i, v := range vars {
			parts[i] = b[v]
		}
		out = append(out, strings.Join(parts, "|"))
		return true
	})
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	sort.Strings(out)
	return out
}

func testDirtyPatterns(t *testing.T, shards int) {
	patterns := []string{
		"?x pa ?y",
		"?x pa ?y . ?y pb ?z",
		"?x pa/pb* ?y",
		"?x pa ?y . ?y pb+ ?z . ?z pc ?w",
		"?x ?p ?y",
		"?x ?p ?y . ?y pa ?z",
		"?x ?p ?x",
		"SELECT ?x WHERE { ?x pa ?y . ?y ^pa ?x }",
		"n03 pa* ?y",
		"?x pb ?x",
	}
	for seed := int64(0); seed < 5; seed++ {
		w := buildDirtyWorld(t, 500+seed, shards)
		for _, src := range patterns {
			got := rowsOf(t, w.xDirty, src)
			want := rowsOf(t, w.xMerged, src)
			if len(got) != len(want) {
				t.Fatalf("seed %d %q: %d rows vs merged %d\n got=%v\nwant=%v", seed, src, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d %q: row %d = %q, merged %q", seed, src, i, got[i], want[i])
				}
			}
		}
	}
}

func TestDirtyPatternDifferential(t *testing.T) { testDirtyPatterns(t, 1) }

func TestDirtyPatternDifferentialSharded(t *testing.T) {
	// Sharded + variable predicates is rejected as cross-shard on the
	// static path too, so restrict to the routable subset.
	for seed := int64(0); seed < 5; seed++ {
		w := buildDirtyWorld(t, 700+seed, 3)
		for _, src := range []string{"?x pa ?y", "?x pa ?y . ?y pa ?z", "?x pa+ ?y", "n05 pa* ?y"} {
			got := rowsOf(t, w.xDirty, src)
			want := rowsOf(t, w.xMerged, src)
			if strings.Join(got, ";") != strings.Join(want, ";") {
				t.Fatalf("seed %d %q:\n got=%v\nwant=%v", seed, src, got, want)
			}
		}
	}
}
