package intvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWidthFor(t *testing.T) {
	cases := []struct {
		max  uint64
		want uint
	}{
		{0, 1}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{1<<63 - 1, 63}, {1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := WidthFor(c.max); got != c.want {
			t.Errorf("WidthFor(%d)=%d, want %d", c.max, got, c.want)
		}
	}
}

func TestSetGetAllWidths(t *testing.T) {
	for width := uint(1); width <= 64; width++ {
		rng := rand.New(rand.NewSource(int64(width)))
		n := 200
		v := New(n, width)
		want := make([]uint64, n)
		var mask uint64
		if width == 64 {
			mask = ^uint64(0)
		} else {
			mask = 1<<width - 1
		}
		for i := 0; i < n; i++ {
			want[i] = rng.Uint64() & mask
			v.Set(i, want[i])
		}
		for i := 0; i < n; i++ {
			if got := v.Get(i); got != want[i] {
				t.Fatalf("width=%d Get(%d)=%d, want %d", width, i, got, want[i])
			}
		}
	}
}

func TestOverwrite(t *testing.T) {
	v := New(100, 7)
	for i := 0; i < 100; i++ {
		v.Set(i, uint64(i))
	}
	// Overwrite a middle run and check neighbours untouched.
	for i := 40; i < 60; i++ {
		v.Set(i, 127)
	}
	for i := 0; i < 100; i++ {
		want := uint64(i)
		if i >= 40 && i < 60 {
			want = 127
		}
		if v.Get(i) != want {
			t.Fatalf("Get(%d)=%d, want %d", i, v.Get(i), want)
		}
	}
}

func TestTruncation(t *testing.T) {
	v := New(4, 3)
	v.Set(1, 0xff)
	if v.Get(1) != 7 {
		t.Errorf("Get(1)=%d, want 7 (truncated)", v.Get(1))
	}
	if v.Get(0) != 0 || v.Get(2) != 0 {
		t.Errorf("neighbours clobbered: %d %d", v.Get(0), v.Get(2))
	}
}

func TestFromSlice(t *testing.T) {
	vals := []uint64{5, 0, 1023, 42, 7}
	v := FromSlice(vals)
	if v.Width() != 10 {
		t.Errorf("Width=%d, want 10", v.Width())
	}
	for i, want := range vals {
		if v.Get(i) != want {
			t.Errorf("Get(%d)=%d, want %d", i, v.Get(i), want)
		}
	}
}

func TestInvalidWidthPanics(t *testing.T) {
	for _, w := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(_, %d) should panic", w)
				}
			}()
			New(1, w)
		}()
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		v := FromSlice(vals)
		for i, want := range vals {
			if v.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGet(b *testing.B) {
	v := New(1<<16, 17)
	for i := 0; i < v.Len(); i++ {
		v.Set(i, uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Get(i % v.Len())
	}
}
