// Package intvec provides fixed-width packed integer vectors: n values of
// w bits each stored contiguously in ⌈nw/64⌉ words. The ring stores its
// packed triple components and the wavelet matrix stores its intermediate
// level sequences this way, matching the paper's "packed form" accounting
// (⌈log|S|⌉+⌈log|P|⌉+⌈log|O|⌉ bits per triple).
package intvec

import (
	"fmt"
	"math/bits"
)

// Vector is a mutable fixed-width packed integer vector.
type Vector struct {
	words []uint64
	n     int
	width uint
	mask  uint64
}

// New returns a vector of n zero values of the given bit width (1..64).
func New(n int, width uint) *Vector {
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("intvec: invalid width %d", width))
	}
	nw := (n*int(width) + 63) / 64
	var mask uint64
	if width == 64 {
		mask = ^uint64(0)
	} else {
		mask = 1<<width - 1
	}
	return &Vector{words: make([]uint64, nw+1), n: n, width: width, mask: mask}
}

// WidthFor reports the number of bits needed to store values in [0, max].
func WidthFor(max uint64) uint {
	if max == 0 {
		return 1
	}
	return uint(bits.Len64(max))
}

// FromSlice packs the given values using the minimal width for their maximum.
func FromSlice(vals []uint64) *Vector {
	var max uint64
	for _, x := range vals {
		if x > max {
			max = x
		}
	}
	v := New(len(vals), WidthFor(max))
	for i, x := range vals {
		v.Set(i, x)
	}
	return v
}

// Len reports the number of values.
func (v *Vector) Len() int { return v.n }

// Width reports the per-value bit width.
func (v *Vector) Width() uint { return v.width }

// Get returns value i.
func (v *Vector) Get(i int) uint64 {
	bit := uint(i) * v.width
	wi, off := bit/64, bit%64
	w := v.words[wi] >> off
	if off+v.width > 64 {
		w |= v.words[wi+1] << (64 - off)
	}
	return w & v.mask
}

// Set stores x (truncated to the width) at position i.
func (v *Vector) Set(i int, x uint64) {
	x &= v.mask
	bit := uint(i) * v.width
	wi, off := bit/64, bit%64
	v.words[wi] = v.words[wi]&^(v.mask<<off) | x<<off
	if off+v.width > 64 {
		rem := 64 - off
		v.words[wi+1] = v.words[wi+1]&^(v.mask>>rem) | x>>rem
	}
}

// SizeBytes reports the memory footprint.
func (v *Vector) SizeBytes() int { return 8*len(v.words) + 24 }
