package bitvec

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// naive is a reference implementation over a bool slice.
type naive []bool

func (nv naive) rank1(i int) int {
	r := 0
	for j := 0; j < i && j < len(nv); j++ {
		if nv[j] {
			r++
		}
	}
	return r
}

func (nv naive) select1(k int) int {
	for i, b := range nv {
		if b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func (nv naive) select0(k int) int {
	for i, b := range nv {
		if !b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func randomBits(n int, p float64, seed int64) []bool {
	rng := rand.New(rand.NewSource(seed))
	bs := make([]bool, n)
	for i := range bs {
		bs[i] = rng.Float64() < p
	}
	return bs
}

func TestEmpty(t *testing.T) {
	v := FromBools(nil)
	if v.Len() != 0 || v.Ones() != 0 || v.Zeros() != 0 {
		t.Fatalf("empty vector: len=%d ones=%d zeros=%d", v.Len(), v.Ones(), v.Zeros())
	}
	if got := v.Rank1(0); got != 0 {
		t.Errorf("Rank1(0)=%d, want 0", got)
	}
	if got := v.Select1(1); got != -1 {
		t.Errorf("Select1(1)=%d, want -1", got)
	}
	if got := v.Select0(1); got != -1 {
		t.Errorf("Select0(1)=%d, want -1", got)
	}
}

func TestSingleBits(t *testing.T) {
	v1 := FromBools([]bool{true})
	if v1.Rank1(1) != 1 || v1.Select1(1) != 0 || v1.Get(0) != true {
		t.Errorf("one-bit vector misbehaves")
	}
	v0 := FromBools([]bool{false})
	if v0.Rank1(1) != 0 || v0.Select0(1) != 0 || v0.Get(0) != false {
		t.Errorf("zero-bit vector misbehaves")
	}
}

func TestGetMatchesInput(t *testing.T) {
	bs := randomBits(3000, 0.3, 1)
	v := FromBools(bs)
	for i, want := range bs {
		if v.Get(i) != want {
			t.Fatalf("Get(%d)=%v, want %v", i, v.Get(i), want)
		}
	}
}

func TestRankAgainstNaive(t *testing.T) {
	for _, p := range []float64{0.0, 0.01, 0.5, 0.99, 1.0} {
		bs := randomBits(4097, p, int64(p*100)+7)
		v := FromBools(bs)
		nv := naive(bs)
		for i := 0; i <= len(bs); i++ {
			if got, want := v.Rank1(i), nv.rank1(i); got != want {
				t.Fatalf("p=%v Rank1(%d)=%d, want %d", p, i, got, want)
			}
			if got, want := v.Rank0(i), i-nv.rank1(i); got != want {
				t.Fatalf("p=%v Rank0(%d)=%d, want %d", p, i, got, want)
			}
		}
	}
}

func TestSelectAgainstNaive(t *testing.T) {
	for _, p := range []float64{0.01, 0.5, 0.99} {
		bs := randomBits(5000, p, int64(p*1000)+13)
		v := FromBools(bs)
		nv := naive(bs)
		for k := 1; k <= v.Ones(); k++ {
			if got, want := v.Select1(k), nv.select1(k); got != want {
				t.Fatalf("p=%v Select1(%d)=%d, want %d", p, k, got, want)
			}
		}
		for k := 1; k <= v.Zeros(); k++ {
			if got, want := v.Select0(k), nv.select0(k); got != want {
				t.Fatalf("p=%v Select0(%d)=%d, want %d", p, k, got, want)
			}
		}
	}
}

func TestSelectOutOfRange(t *testing.T) {
	v := FromBools(randomBits(100, 0.5, 3))
	if v.Select1(0) != -1 || v.Select1(v.Ones()+1) != -1 {
		t.Error("Select1 out-of-range should be -1")
	}
	if v.Select0(0) != -1 || v.Select0(v.Zeros()+1) != -1 {
		t.Error("Select0 out-of-range should be -1")
	}
}

// Rank and Select are inverse: Rank1(Select1(k)) == k-1 and the bit is set.
func TestRankSelectInverse(t *testing.T) {
	f := func(seed int64, raw uint16) bool {
		n := int(raw)%2000 + 1
		bs := randomBits(n, 0.4, seed)
		v := FromBools(bs)
		for k := 1; k <= v.Ones(); k += 7 {
			pos := v.Select1(k)
			if pos < 0 || !v.Get(pos) || v.Rank1(pos) != k-1 {
				return false
			}
		}
		for k := 1; k <= v.Zeros(); k += 7 {
			pos := v.Select0(k)
			if pos < 0 || v.Get(pos) || v.Rank0(pos) != k-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Rank is monotone and increments exactly on set bits.
func TestRankMonotone(t *testing.T) {
	f := func(seed int64) bool {
		bs := randomBits(1500, 0.5, seed)
		v := FromBools(bs)
		for i := 0; i < v.Len(); i++ {
			d := v.Rank1(i+1) - v.Rank1(i)
			if (d != 1) == v.Get(i) { // d must be 1 iff bit set
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBuilderSet(t *testing.T) {
	b := NewBuilder(10)
	b.AppendN(false, 10)
	b.Set(3)
	b.Set(9)
	v := b.Build()
	if !v.Get(3) || !v.Get(9) || v.Ones() != 2 {
		t.Errorf("builder Set failed: ones=%d", v.Ones())
	}
}

func TestBuilderSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Set out of range should panic")
		}
	}()
	b := NewBuilder(4)
	b.Append(false)
	b.Set(1)
}

func TestLargeDense(t *testing.T) {
	// Cross several superblocks and select samples.
	n := superBits*5 + 17
	bs := make([]bool, n)
	for i := range bs {
		bs[i] = i%3 == 0
	}
	v := FromBools(bs)
	nv := naive(bs)
	for i := 0; i <= n; i += 97 {
		if v.Rank1(i) != nv.rank1(i) {
			t.Fatalf("Rank1(%d) mismatch", i)
		}
	}
	for k := 1; k <= v.Ones(); k += 43 {
		if v.Select1(k) != nv.select1(k) {
			t.Fatalf("Select1(%d) mismatch", k)
		}
	}
	for k := 1; k <= v.Zeros(); k += 43 {
		if v.Select0(k) != nv.select0(k) {
			t.Fatalf("Select0(%d) mismatch", k)
		}
	}
}

func TestAllOnesAllZeros(t *testing.T) {
	n := 1025
	ones := make([]bool, n)
	for i := range ones {
		ones[i] = true
	}
	v := FromBools(ones)
	for k := 1; k <= n; k += 13 {
		if v.Select1(k) != k-1 {
			t.Fatalf("all-ones Select1(%d)=%d", k, v.Select1(k))
		}
	}
	zeros := make([]bool, n)
	v = FromBools(zeros)
	for k := 1; k <= n; k += 13 {
		if v.Select0(k) != k-1 {
			t.Fatalf("all-zeros Select0(%d)=%d", k, v.Select0(k))
		}
	}
}

func TestSizeBytesPositive(t *testing.T) {
	v := FromBools(randomBits(10000, 0.5, 11))
	if v.SizeBytes() < 10000/8 {
		t.Errorf("SizeBytes=%d implausibly small", v.SizeBytes())
	}
}

func BenchmarkRank1(b *testing.B) {
	v := FromBools(randomBits(1<<20, 0.5, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Rank1(i % v.Len())
	}
}

func BenchmarkSelect1(b *testing.B) {
	v := FromBools(randomBits(1<<20, 0.5, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Select1(i%v.Ones() + 1)
	}
}

// selectInWordLoop is the original O(k) clear-lowest-bit implementation,
// kept as the reference for the branchless broadword version.
func selectInWordLoop(w uint64, k int) int {
	for i := 0; i < k-1; i++ {
		w &= w - 1 // clear lowest set bit
	}
	return bits.TrailingZeros64(w)
}

// The broadword selectInWord must agree with the loop version on every
// valid (word, rank) input shape: random words, sparse and dense words,
// single bits at every position, and all-ones.
func TestSelectInWordMatchesLoop(t *testing.T) {
	check := func(w uint64) {
		t.Helper()
		n := bits.OnesCount64(w)
		for k := 1; k <= n; k++ {
			if got, want := selectInWord(w, k), selectInWordLoop(w, k); got != want {
				t.Fatalf("selectInWord(%#x, %d) = %d, want %d", w, k, got, want)
			}
		}
	}
	for i := 0; i < 64; i++ {
		check(1 << uint(i))          // single bit
		check(^uint64(0) >> uint(i)) // dense suffix
		check(^uint64(0) << uint(i)) // dense prefix
	}
	check(^uint64(0))
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		w := rng.Uint64()
		switch i % 3 {
		case 1:
			w &= rng.Uint64() & rng.Uint64() // sparse
		case 2:
			w |= rng.Uint64() | rng.Uint64() // dense
		}
		if w != 0 {
			check(w)
		}
	}
}

var sinkSelect int

func BenchmarkSelectInWord(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	words := make([]uint64, 1024)
	ranks := make([]int, 1024)
	for i := range words {
		for words[i] == 0 {
			words[i] = rng.Uint64()
		}
		ranks[i] = 1 + rng.Intn(bits.OnesCount64(words[i]))
	}
	b.Run("broadword", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := i % len(words)
			sinkSelect = selectInWord(words[j], ranks[j])
		}
	})
	b.Run("loop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := i % len(words)
			sinkSelect = selectInWordLoop(words[j], ranks[j])
		}
	})
}
