package bitvec

import "ringrpq/internal/serial"

// Encode writes the vector's bits; the rank/select directories are
// rebuilt on load.
func (v *Vector) Encode(w *serial.Writer) {
	w.Magic("bv01")
	w.Int(v.n)
	w.Uint64s(v.words)
}

// Decode reads a vector written by Encode.
func Decode(r *serial.Reader) *Vector {
	r.Magic("bv01")
	n := r.Int()
	words := r.Uint64s()
	if r.Err() != nil {
		return nil
	}
	v := &Vector{words: words, n: n}
	v.buildRank()
	v.buildSelect()
	return v
}
