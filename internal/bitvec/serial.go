package bitvec

import (
	"fmt"

	"ringrpq/internal/serial"
)

// Encode writes the vector's bits; the rank/select directories are
// rebuilt on load.
func (v *Vector) Encode(w *serial.Writer) {
	w.Magic("bv01")
	w.Int(v.n)
	w.Uint64s(v.words)
}

// Decode reads a vector written by Encode. The claimed bit count must
// be consistent with the stored words (with zeroed padding bits), so
// the rank/select directories — whose sizes derive from it — stay
// bounded by the input actually read.
func Decode(r *serial.Reader) *Vector {
	r.Magic("bv01")
	n := r.Int()
	words := r.Uint64s()
	if r.Err() != nil {
		return nil
	}
	if len(words) != (n+63)/64 {
		r.Fail(fmt.Errorf("bitvec: %d words for %d bits", len(words), n))
		return nil
	}
	if n%64 != 0 && len(words) > 0 && words[len(words)-1]>>(uint(n%64)) != 0 {
		r.Fail(fmt.Errorf("bitvec: nonzero padding bits beyond length %d", n))
		return nil
	}
	v := &Vector{words: words, n: n}
	v.buildRank()
	v.buildSelect()
	return v
}
