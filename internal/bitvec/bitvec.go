// Package bitvec provides plain bitvectors with constant-time rank and
// near-constant-time select, the building blocks of the wavelet trees used
// by the ring index (paper §3.5). The rank directory follows the classic
// two-level scheme of Clark and Munro: absolute counts every superblock
// plus popcounts per 64-bit word, for o(n) extra bits in practice.
package bitvec

import (
	"fmt"
	"math/bits"
)

// wordsPerSuper is the number of 64-bit words per rank superblock.
// 8 words = 512 bits per superblock, giving 64 bits of directory per
// 512 bits of data (12.5% overhead) and at most 7 popcounts per rank.
const wordsPerSuper = 8

const superBits = wordsPerSuper * 64

// selectSample controls the sampling rate of the select directory:
// one sampled position per selectSample one-bits.
const selectSample = 512

// Builder accumulates bits before freezing them into a Vector.
// The zero value is an empty builder ready for use.
type Builder struct {
	words []uint64
	n     int
}

// NewBuilder returns a builder with capacity for n bits preallocated.
func NewBuilder(n int) *Builder {
	return &Builder{words: make([]uint64, 0, (n+63)/64)}
}

// Append adds a single bit.
func (b *Builder) Append(bit bool) {
	if b.n%64 == 0 {
		b.words = append(b.words, 0)
	}
	if bit {
		b.words[b.n/64] |= 1 << uint(b.n%64)
	}
	b.n++
}

// AppendN adds n copies of bit.
func (b *Builder) AppendN(bit bool, n int) {
	for i := 0; i < n; i++ {
		b.Append(bit)
	}
}

// Len reports the number of bits appended so far.
func (b *Builder) Len() int { return b.n }

// Set sets bit i (which must already have been appended) to 1.
func (b *Builder) Set(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitvec: Set(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i/64] |= 1 << uint(i%64)
}

// Build freezes the builder into an immutable Vector with rank/select
// support. The builder must not be used afterwards.
func (b *Builder) Build() *Vector {
	v := &Vector{words: b.words, n: b.n}
	v.buildRank()
	v.buildSelect()
	return v
}

// FromBools builds a Vector directly from a bool slice; convenient in tests.
func FromBools(bs []bool) *Vector {
	b := NewBuilder(len(bs))
	for _, x := range bs {
		b.Append(x)
	}
	return b.Build()
}

// Vector is an immutable bitvector supporting O(1) Rank and
// O(log superblocks)-bounded Select. Build once, query concurrently.
type Vector struct {
	words []uint64
	n     int

	// super[i] = number of one-bits strictly before superblock i.
	super []uint64
	ones  int

	// sel1[k] = index of the superblock containing the (k*selectSample+1)-th
	// one-bit; narrows the binary search for Select1. sel0 likewise for zeros.
	sel1 []uint32
	sel0 []uint32
}

func (v *Vector) buildRank() {
	nSuper := (len(v.words) + wordsPerSuper - 1) / wordsPerSuper
	v.super = make([]uint64, nSuper+1)
	var acc uint64
	for i, w := range v.words {
		if i%wordsPerSuper == 0 {
			v.super[i/wordsPerSuper] = acc
		}
		acc += uint64(bits.OnesCount64(w))
	}
	v.super[nSuper] = acc
	v.ones = int(acc)
}

// buildSelect records, for every selectSample-th one-bit (and zero-bit),
// the superblock containing it; Select then binary-searches only between
// consecutive samples.
func (v *Vector) buildSelect() {
	v.sel1 = make([]uint32, 0, v.ones/selectSample+1)
	v.sel0 = make([]uint32, 0, (v.n-v.ones)/selectSample+1)
	nSuper := len(v.super) - 1
	next1, next0 := 1, 1
	for sb := 0; sb < nSuper; sb++ {
		onesEnd := int(v.super[sb+1])
		bitsEnd := (sb + 1) * superBits
		if bitsEnd > v.n {
			bitsEnd = v.n
		}
		zerosEnd := bitsEnd - onesEnd
		for next1 <= onesEnd {
			v.sel1 = append(v.sel1, uint32(sb))
			next1 += selectSample
		}
		for next0 <= zerosEnd {
			v.sel0 = append(v.sel0, uint32(sb))
			next0 += selectSample
		}
	}
}

// Len reports the number of bits.
func (v *Vector) Len() int { return v.n }

// Ones reports the total number of one-bits.
func (v *Vector) Ones() int { return v.ones }

// Zeros reports the total number of zero-bits.
func (v *Vector) Zeros() int { return v.n - v.ones }

// Get reports bit i.
func (v *Vector) Get(i int) bool {
	return v.words[i/64]&(1<<uint(i%64)) != 0
}

// Rank1 reports the number of one-bits in the prefix [0, i).
// i may equal Len().
func (v *Vector) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= v.n {
		return v.ones
	}
	wi := i / 64
	r := int(v.super[wi/wordsPerSuper])
	for j := wi - wi%wordsPerSuper; j < wi; j++ {
		r += bits.OnesCount64(v.words[j])
	}
	r += bits.OnesCount64(v.words[wi] & (1<<uint(i%64) - 1))
	return r
}

// Rank0 reports the number of zero-bits in the prefix [0, i).
func (v *Vector) Rank0(i int) int {
	if i <= 0 {
		return 0
	}
	if i >= v.n {
		return v.n - v.ones
	}
	return i - v.Rank1(i)
}

// Select1 reports the position of the k-th one-bit (k is 1-based),
// or -1 if there are fewer than k one-bits.
func (v *Vector) Select1(k int) int {
	if k <= 0 || k > v.ones {
		return -1
	}
	// Narrow to a superblock range using the sampled directory, then
	// binary-search superblocks, then scan at most wordsPerSuper words.
	lo, hi := 0, len(v.super)-1 // superblock index range [lo, hi)
	if s := (k - 1) / selectSample; s < len(v.sel1) {
		lo = int(v.sel1[s])
		if s+1 < len(v.sel1) {
			hi = int(v.sel1[s+1]) + 1
		}
	}
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if int(v.super[mid]) < k {
			lo = mid
		} else {
			hi = mid
		}
	}
	rem := k - int(v.super[lo])
	wStart := lo * wordsPerSuper
	for j := wStart; j < len(v.words); j++ {
		c := bits.OnesCount64(v.words[j])
		if rem <= c {
			return j*64 + selectInWord(v.words[j], rem)
		}
		rem -= c
	}
	return -1
}

// Select0 reports the position of the k-th zero-bit (1-based), or -1.
func (v *Vector) Select0(k int) int {
	if k <= 0 || k > v.n-v.ones {
		return -1
	}
	lo, hi := 0, len(v.super)-1
	if s := (k - 1) / selectSample; s < len(v.sel0) {
		lo = int(v.sel0[s])
		if s+1 < len(v.sel0) {
			hi = int(v.sel0[s+1]) + 1
		}
	}
	zerosBefore := func(sb int) int { return sb*superBits - int(v.super[sb]) }
	for lo < hi-1 {
		mid := (lo + hi) / 2
		if zerosBefore(mid) < k {
			lo = mid
		} else {
			hi = mid
		}
	}
	rem := k - zerosBefore(lo)
	for j := lo * wordsPerSuper; j < len(v.words); j++ {
		w := ^v.words[j]
		if j == len(v.words)-1 && v.n%64 != 0 {
			w &= 1<<uint(v.n%64) - 1
		}
		c := bits.OnesCount64(w)
		if rem <= c {
			return j*64 + selectInWord(w, rem)
		}
		rem -= c
	}
	return -1
}

// Broadword select constants: l8 replicates a byte across the word, h8
// marks every byte's high bit (Vigna, "Broadword implementation of
// rank/select queries").
const (
	l8 = 0x0101010101010101
	h8 = 0x8080808080808080
)

// selectInByte[r<<8|b] is the position of the (r+1)-th set bit of the
// byte b (2 KiB, shared by all vectors).
var selectInByte = buildSelectInByte()

func buildSelectInByte() [8 * 256]uint8 {
	var t [8 * 256]uint8
	for b := 0; b < 256; b++ {
		r := 0
		for i := 0; i < 8; i++ {
			if b&(1<<i) != 0 {
				t[r<<8|b] = uint8(i)
				r++
			}
		}
	}
	return t
}

// selectInWord returns the position (0-63) of the k-th (1-based) set bit
// of w, which must have at least k set bits. It is constant-time and
// branchless: a SWAR popcount accumulates per-byte prefix sums, a
// parallel unsigned byte compare against k skips whole bytes, and an
// 8-bit lookup finishes inside the target byte.
func selectInWord(w uint64, k int) int {
	s := w - w>>1&0x5555555555555555
	s = s&0x3333333333333333 + s>>2&0x3333333333333333
	s = (s + s>>4) & 0x0f0f0f0f0f0f0f0f
	byteSums := s * l8  // byte i holds popcount of bytes 0..i (≤ 64)
	kk := uint64(k - 1) // 0-based rank, ≤ 63
	// Byte i of the subtraction keeps its high bit iff byteSums_i ≤ kk
	// (both operands fit 7 bits, so no borrows cross bytes): those are
	// exactly the bytes wholly before the target bit.
	place := uint(bits.OnesCount64(((kk*l8|h8)-byteSums)&h8)) * 8
	byteRank := kk - (byteSums<<8>>place)&0xff // rank within the target byte
	return int(place) + int(selectInByte[byteRank<<8|w>>place&0xff])
}

// SizeBytes reports the memory footprint of the vector including
// rank/select directories.
func (v *Vector) SizeBytes() int {
	return 8*len(v.words) + 8*len(v.super) + 4*len(v.sel1) + 4*len(v.sel0) + 32
}
