package ringrpq

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ringrpq/internal/service"
)

func TestSubscribeBasic(t *testing.T) {
	b := NewBuilder()
	b.Add("a", "p", "b")
	b.Add("b", "p", "c")
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	sub, err := db.Subscribe(SubscribeRequest{Expr: "p+", Snapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	d, ok, err := sub.TryNext()
	if err != nil || !ok {
		t.Fatalf("baseline delta: ok=%v err=%v", ok, err)
	}
	if len(d.Added) != 3 { // (a,b) (a,c) (b,c)
		t.Fatalf("baseline added = %v", d.Added)
	}

	if _, err := db.Apply([]Triple{{"c", "p", "d"}}, nil); err != nil {
		t.Fatal(err)
	}
	db.SyncStanding()
	d, ok, err = sub.TryNext()
	if err != nil || !ok {
		t.Fatalf("delta after add: ok=%v err=%v", ok, err)
	}
	want := []Pair{
		{Subject: "a", Object: "d"},
		{Subject: "b", Object: "d"},
		{Subject: "c", Object: "d"},
	}
	sort.Slice(d.Added, func(i, j int) bool { return d.Added[i].Subject < d.Added[j].Subject })
	if len(d.Added) != 3 || len(d.Removed) != 0 {
		t.Fatalf("delta after add = %+v", d)
	}
	for i, p := range want {
		if d.Added[i] != p {
			t.Fatalf("delta after add = %v, want %v", d.Added, want)
		}
	}

	if _, err := db.Apply(nil, []Triple{{"b", "p", "c"}}); err != nil {
		t.Fatal(err)
	}
	db.SyncStanding()
	d, ok, err = sub.TryNext()
	if err != nil || !ok {
		t.Fatalf("delta after del: ok=%v err=%v", ok, err)
	}
	if len(d.Added) != 0 || len(d.Removed) != 4 {
		// removed: (a,c) (a,d) (b,c) (b,d)
		t.Fatalf("delta after del = %+v", d)
	}

	st := db.StandingStats()
	if st.Active != 1 || st.Deltas != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

// buildLineDB builds a small database with a p-labeled chain.
func buildLineDB(t *testing.T, n int) *DB {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		b.Add(fmt.Sprintf("v%d", i), "p", fmt.Sprintf("v%d", i+1))
	}
	db, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestSubscribeStartVersionStable: StartVersion is the activation cut
// and must not drift as the worker's batch cursor advances — the HTTP
// subscribe handler hands it out as the initial resume cursor, and a
// cursor that jumps ahead with processed batches would skip the queued
// deltas on reconnect.
func TestSubscribeStartVersionStable(t *testing.T) {
	db := buildLineDB(t, 3)
	sub, err := db.Subscribe(SubscribeRequest{Expr: "p"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	start := sub.StartVersion()

	for i := 0; i < 3; i++ {
		if _, err := db.Apply([]Triple{{fmt.Sprintf("s%d", i), "p", "t"}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	db.SyncStanding()
	if got := sub.StartVersion(); got != start {
		t.Fatalf("StartVersion drifted to %d, want %d", got, start)
	}
	for {
		d, ok, err := sub.TryNext()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if d.Version <= start {
			t.Fatalf("delta version %d <= StartVersion %d", d.Version, start)
		}
	}
}

// TestResumeAtDataVersionBeforeSync: a client that received a delta for
// version N can reconnect before the registry worker has drained the
// notice queue, so the future-version check must be bounded by the
// host's current data version, not just the worker's processed version.
func TestResumeAtDataVersionBeforeSync(t *testing.T) {
	db := buildLineDB(t, 3)
	sub, err := db.Subscribe(SubscribeRequest{Expr: "p"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	for i := 0; i < 4; i++ {
		if _, err := db.Apply([]Triple{{fmt.Sprintf("r%d", i), "p", "t"}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Deliberately no SyncStanding: the registry may lag DataVersion.
	if _, err := db.ResumeSubscription(sub.ID(), db.DataVersion()); err != nil {
		t.Fatalf("resume at current data version: %v", err)
	}
}

func TestSubscribeLagAndResume(t *testing.T) {
	db := buildLineDB(t, 3)
	db.SetStandingConfig(StandingConfig{History: 4})
	sub, err := db.Subscribe(SubscribeRequest{Expr: "p", QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	start := sub.StartVersion()

	// Four non-empty deltas against a queue of two: versions start+1,
	// start+2 queue, start+3 and start+4 overflow into history.
	for i := 0; i < 4; i++ {
		if _, err := db.Apply([]Triple{{fmt.Sprintf("a%d", i), "p", "b"}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	db.SyncStanding()

	var last uint64
	for i := 0; i < 2; i++ {
		d, ok, err := sub.TryNext()
		if !ok || err != nil {
			t.Fatalf("drain %d: ok=%v err=%v", i, ok, err)
		}
		last = d.Version
	}
	if _, _, err := sub.TryNext(); !errors.Is(err, ErrSubscriberLagged) {
		t.Fatalf("after overflow: err=%v, want ErrSubscriberLagged", err)
	}
	st := db.StandingStats()
	if st.Lagged != 1 || st.Overflows != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// Resume from the last seen version replays the dropped deltas.
	if _, err := db.ResumeSubscription(sub.ID(), last); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got := 0
	for {
		d, ok, err := sub.TryNext()
		if err != nil {
			t.Fatalf("after resume: %v", err)
		}
		if !ok {
			break
		}
		if d.Version <= last {
			t.Fatalf("replayed stale version %d <= %d", d.Version, last)
		}
		got++
	}
	if got != 2 {
		t.Fatalf("replayed %d deltas, want 2", got)
	}

	// Edge cases: future version, too-old version, unknown id.
	if _, err := db.ResumeSubscription(sub.ID(), start+99); !errors.Is(err, ErrResumeFuture) {
		t.Fatalf("future resume: %v", err)
	}
	for i := 0; i < 5; i++ { // push the history floor past start
		if _, err := db.Apply([]Triple{{fmt.Sprintf("c%d", i), "p", "b"}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	db.SyncStanding()
	if _, err := db.ResumeSubscription(sub.ID(), start); !errors.Is(err, ErrResumeTooOld) {
		t.Fatalf("too-old resume: %v", err)
	}
	if _, err := db.ResumeSubscription(999, start); !errors.Is(err, ErrUnknownSubscription) {
		t.Fatalf("unknown resume: %v", err)
	}

	sub.Close()
	if _, _, err := sub.TryNext(); err == nil {
		// Queued replays drain first; after that the terminal error
		// surfaces.
		for {
			_, ok, err := sub.TryNext()
			if err != nil {
				break
			}
			if !ok {
				t.Fatal("closed subscription returned no terminal error")
			}
		}
	}
	if db.Unsubscribe(sub.ID()) {
		t.Fatal("Unsubscribe found a closed subscription")
	}
}

func TestSubscribeUnknownPredicateAndCompaction(t *testing.T) {
	db := buildLineDB(t, 4)
	sub, err := db.Subscribe(SubscribeRequest{Expr: "p+"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// A compaction swap advances the version without data changes: no
	// delta, but the registry's cursor must move.
	if _, err := db.Apply([]Triple{{"x", "p", "y"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	ver := db.SyncStanding()
	if ver != db.DataVersion() {
		t.Fatalf("registry at version %d, data at %d", ver, db.DataVersion())
	}
	if _, err := db.ResumeSubscription(sub.ID(), ver); err != nil {
		t.Fatalf("resume at swap version: %v", err)
	}
}

// TestServiceSubscribeCloseStress closes the service while subscribers
// block in Next and updates are in flight: every consumer must unblock
// deterministically (no goroutine leaks), and late subscribes must
// fail closed.
func TestServiceSubscribeCloseStress(t *testing.T) {
	db := buildLineDB(t, 8)
	svc := NewService(db, ServiceConfig{Workers: 4})

	const subscribers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < subscribers; i++ {
		sub, err := svc.Subscribe(SubscribeRequest{Expr: "p+", Snapshot: i%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// StartVersion is read from consumer goroutines while
				// the worker applies batches; it must be race-free.
				_ = sub.StartVersion()
				_, err := sub.Next(context.Background())
				if err != nil {
					if errors.Is(err, ErrSubscriberLagged) {
						if _, rerr := svc.ResumeSubscription(sub.ID(), 0); rerr != nil {
							return
						}
						continue
					}
					return
				}
			}
		}()
	}
	for u := 0; u < 2; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				adds := []Triple{{fmt.Sprintf("u%d_%d", u, i), "p", "v0"}}
				if _, err := svc.Update(context.Background(), adds, nil); err != nil {
					return
				}
			}
		}(u)
	}

	time.Sleep(30 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	close(stop)

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("subscribers or updaters still blocked 10s after Close")
	}
	if _, err := svc.Subscribe(SubscribeRequest{Expr: "p"}); err == nil {
		t.Fatal("Subscribe succeeded after Close")
	}
}

// TestServiceCloseSubscriptions checks the shutdown-sequencing surface:
// CloseSubscriptions unblocks consumers and fails later subscribes
// closed while the worker pool keeps answering queries — the state a
// graceful HTTP shutdown needs between ending /subscribe streams and
// draining the last request-scoped connections.
func TestServiceCloseSubscriptions(t *testing.T) {
	db := buildLineDB(t, 4)
	svc := NewService(db, ServiceConfig{Workers: 2})
	defer svc.Close()

	sub, err := svc.Subscribe(SubscribeRequest{Expr: "p+"})
	if err != nil {
		t.Fatal(err)
	}
	unblocked := make(chan error, 1)
	go func() {
		_, err := sub.Next(context.Background())
		unblocked <- err
	}()

	svc.CloseSubscriptions()
	select {
	case err := <-unblocked:
		if !errors.Is(err, ErrSubscriptionClosed) {
			t.Fatalf("Next after CloseSubscriptions: %v, want ErrSubscriptionClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Next still blocked 5s after CloseSubscriptions")
	}
	if _, err := svc.Subscribe(SubscribeRequest{Expr: "p"}); err == nil {
		t.Fatal("Subscribe succeeded after CloseSubscriptions")
	}

	// The pool is untouched: queries still run.
	sols, err := svc.Query(context.Background(), "v0", "p+", "?y", WithLimit(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 4 {
		t.Fatalf("query after CloseSubscriptions: %d solutions, want 4", len(sols))
	}
}

func TestSubscribeHTTPLongPoll(t *testing.T) {
	db := buildLineDB(t, 3)
	svc := NewService(db, ServiceConfig{Workers: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler(HandlerConfig{}))
	defer srv.Close()

	get := func(url string) service.SubscribeResultJSON {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		var out service.SubscribeResultJSON
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	// Register with the current result as the first delta.
	first := get(srv.URL + "/subscribe?expr=p%2B&mode=poll&snapshot=true&wait=2s")
	if first.ID == 0 || len(first.Deltas) != 1 || len(first.Deltas[0].Added) != 6 {
		t.Fatalf("first poll = %+v", first)
	}

	// Apply an update, then poll again with the returned cursor.
	if _, err := svc.Update(context.Background(), []Triple{{"v3", "p", "v4"}}, nil); err != nil {
		t.Fatal(err)
	}
	db.SyncStanding()
	next := get(fmt.Sprintf("%s/subscribe?id=%d&from=%d&mode=poll&wait=2s", srv.URL, first.ID, first.Version))
	if len(next.Deltas) != 1 || len(next.Deltas[0].Added) == 0 {
		t.Fatalf("second poll = %+v", next)
	}

	// Bad resumes map to distinct statuses.
	for _, tc := range []struct {
		url  string
		code int
	}{
		{fmt.Sprintf("%s/subscribe?id=%d&from=%d&mode=poll", srv.URL, first.ID, next.Version+50), http.StatusConflict},
		{fmt.Sprintf("%s/subscribe?id=999&from=0&mode=poll", srv.URL), http.StatusNotFound},
		{srv.URL + "/subscribe?mode=poll", http.StatusBadRequest},
	} {
		resp, err := http.Get(tc.url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("GET %s: status %d, want %d", tc.url, resp.StatusCode, tc.code)
		}
	}

	// DELETE terminates the subscription; a later resume 404s/410s.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/subscribe?id=%d", srv.URL, first.ID), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/subscribe?id=%d&from=%d&mode=poll", srv.URL, first.ID, next.Version))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("resume after DELETE: status %d", resp.StatusCode)
	}
}

func TestSubscribeHTTPSSE(t *testing.T) {
	db := buildLineDB(t, 3)
	svc := NewService(db, ServiceConfig{Workers: 2})
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler(HandlerConfig{}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/subscribe?expr=p&snapshot=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	type event struct{ name, data string }
	events := make(chan event, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		var cur event
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				cur.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.name != "":
				events <- cur
				cur = event{}
			}
		}
		close(events)
	}()
	wait := func(name string) event {
		t.Helper()
		for {
			select {
			case ev, ok := <-events:
				if !ok {
					t.Fatalf("stream ended waiting for %q", name)
				}
				if ev.name == name {
					return ev
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("no %q event within 5s", name)
			}
		}
	}

	ready := wait("ready")
	var rd service.SubscribeResultJSON
	if err := json.Unmarshal([]byte(ready.data), &rd); err != nil {
		t.Fatal(err)
	}
	if rd.ID == 0 {
		t.Fatalf("ready = %+v", rd)
	}
	base := wait("delta") // the snapshot baseline
	var d0 service.DeltaJSON
	if err := json.Unmarshal([]byte(base.data), &d0); err != nil {
		t.Fatal(err)
	}
	if len(d0.Added) != 3 {
		t.Fatalf("baseline delta = %+v", d0)
	}

	if _, err := svc.Update(context.Background(), []Triple{{"x", "p", "y"}}, nil); err != nil {
		t.Fatal(err)
	}
	ev := wait("delta")
	var d1 service.DeltaJSON
	if err := json.Unmarshal([]byte(ev.data), &d1); err != nil {
		t.Fatal(err)
	}
	if len(d1.Added) != 1 || d1.Added[0].Subject != "x" {
		t.Fatalf("delta = %+v", d1)
	}
}
