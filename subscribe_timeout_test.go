package ringrpq

// The server-wide write timeout (slowloris protection in rpqd) must not
// kill /subscribe: the SSE handler clears its connection's write
// deadline and the poll handler extends it past the wait window, so
// streams and long polls outlive http.Server.WriteTimeout.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestSubscribeOutlivesServerWriteTimeout(t *testing.T) {
	db := buildLineDB(t, 3)
	svc := NewService(db, ServiceConfig{Workers: 2})
	defer svc.Close()
	ts := httptest.NewUnstartedServer(svc.Handler(HandlerConfig{}))
	ts.Config.WriteTimeout = 250 * time.Millisecond
	ts.Start()
	defer ts.Close()

	t.Run("sse", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/subscribe?expr=p")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		// A watchdog unblocks the reads if the stream wedges.
		watchdog := time.AfterFunc(10*time.Second, func() { resp.Body.Close() })
		defer watchdog.Stop()
		r := bufio.NewReader(resp.Body)
		waitEvent := func(name string) {
			t.Helper()
			for {
				line, err := r.ReadString('\n')
				if err != nil {
					t.Fatalf("stream died waiting for %q: %v", name, err)
				}
				if strings.TrimSpace(line) == "event: "+name {
					return
				}
			}
		}
		waitEvent("ready")

		// Idle well past the server's write deadline, then update: the
		// delta must still arrive on the same connection.
		time.Sleep(3 * ts.Config.WriteTimeout)
		if _, err := db.Apply([]Triple{{"x0", "p", "x1"}}, nil); err != nil {
			t.Fatal(err)
		}
		waitEvent("delta")
	})

	t.Run("poll", func(t *testing.T) {
		resp, err := http.Get(ts.URL + "/subscribe?expr=p&mode=poll&wait=50ms")
		if err != nil {
			t.Fatal(err)
		}
		var sub struct {
			ID      uint64 `json:"id"`
			Version uint64 `json:"version"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()

		// An empty poll round holds the connection for the full wait —
		// four times the server's write deadline — and must still
		// answer 200.
		wait := 4 * ts.Config.WriteTimeout
		start := time.Now()
		resp, err = http.Get(fmt.Sprintf("%s/subscribe?id=%d&from=%d&mode=poll&wait=%s", ts.URL, sub.ID, sub.Version, wait))
		if err != nil {
			t.Fatalf("long poll: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("long poll status = %d", resp.StatusCode)
		}
		if elapsed := time.Since(start); elapsed < wait-100*time.Millisecond {
			t.Fatalf("poll returned after %v, want ~%v (empty round)", elapsed, wait)
		}
	})
}
