// Joins demonstrates the §6 integration the paper sketches: the same
// ring data structure answers both worst-case-optimal multijoins
// (Leapfrog Triejoin, the ring's original purpose) and regular path
// queries, so basic graph patterns and RPQs can be mixed over one index
// with no extra space.
//
// The query answered here, over a small organisational graph:
//
//	SELECT ?mgr ?proj WHERE {
//	  ?mgr  manages+  ?eng .      # RPQ: any management chain
//	  ?eng  assigned  ?proj .     # join: engineer's project
//	  ?proj status    active .    # join: only active projects
//	}
package main

import (
	"fmt"
	"log"
	"sort"

	"ringrpq/internal/core"
	"ringrpq/internal/ltj"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/ring"
	"ringrpq/internal/triples"
)

func main() {
	b := triples.NewBuilder()
	b.Add("ana", "manages", "bo")
	b.Add("bo", "manages", "cleo")
	b.Add("bo", "manages", "dmitri")
	b.Add("ana", "manages", "erin")
	b.Add("cleo", "assigned", "apollo")
	b.Add("dmitri", "assigned", "zephyr")
	b.Add("erin", "assigned", "apollo")
	b.Add("apollo", "status", "active")
	b.Add("zephyr", "status", "archived")
	g := b.Build()
	r := ring.New(g, ring.WaveletMatrix)

	// Step 1 — the RPQ part on the ring: all (manager, engineer) pairs
	// connected by manages+.
	engine := core.NewEngine(r, func(s pathexpr.Sym) (uint32, bool) {
		return g.PredID(s.Name, s.Inverse)
	})
	type pair struct{ mgr, eng uint32 }
	var chains []pair
	_, err := engine.Eval(core.Query{
		Subject: core.Variable,
		Expr:    pathexpr.MustParse("manages+"),
		Object:  core.Variable,
	}, core.Options{}, func(s, o uint32) bool {
		chains = append(chains, pair{s, o})
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manages+ pairs: %d\n", len(chains))

	// Step 2 — the join part on the same ring: for each engineer, the
	// active projects, via Leapfrog Triejoin on the two triple patterns.
	assigned, _ := g.PredID("assigned", false)
	status, _ := g.PredID("status", false)
	active, _ := g.Nodes.Lookup("active")

	type result struct{ mgr, proj string }
	seen := map[result]bool{}
	var results []result
	for _, c := range chains {
		err := ltj.Join(r, []ltj.Pattern{
			{S: ltj.C(c.eng), P: ltj.C(assigned), O: ltj.V("proj")},
			{S: ltj.V("proj"), P: ltj.C(status), O: ltj.C(active)},
		}, func(row ltj.Row) bool {
			res := result{g.Nodes.Name(c.mgr), g.Nodes.Name(row["proj"])}
			if !seen[res] {
				seen[res] = true
				results = append(results, res)
			}
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].mgr != results[j].mgr {
			return results[i].mgr < results[j].mgr
		}
		return results[i].proj < results[j].proj
	})
	fmt.Println("\nmanagers with reports on active projects:")
	for _, r := range results {
		fmt.Printf("  %-8s -> %s\n", r.mgr, r.proj)
	}

	// Bonus: a pure triangle-style multijoin showing leapfrog over three
	// patterns with a shared variable.
	fmt.Println("\nengineer / project / state rows (3-pattern join):")
	err = ltj.Join(r, []ltj.Pattern{
		{S: ltj.V("eng"), P: ltj.C(assigned), O: ltj.V("proj")},
		{S: ltj.V("proj"), P: ltj.C(status), O: ltj.V("state")},
	}, func(row ltj.Row) bool {
		fmt.Printf("  %-8s %-8s %s\n",
			g.Nodes.Name(row["eng"]), g.Nodes.Name(row["proj"]), g.Nodes.Name(row["state"]))
		return true
	})
	if err != nil {
		log.Fatal(err)
	}
}
