// Joins demonstrates the §6 integration the paper sketches: the same
// ring data structure answers both worst-case-optimal multijoins
// (Leapfrog Triejoin, the ring's original purpose) and regular path
// queries, so basic graph patterns and RPQs mix over one index with no
// extra space — now through the public graph-pattern API.
//
// The query answered here, over a small organisational graph:
//
//	SELECT ?mgr ?proj WHERE {
//	  ?mgr  manages+  ?eng .      # RPQ clause: any management chain
//	  ?eng  assigned  ?proj .     # triple pattern: engineer's project
//	  ?proj status    active      # triple pattern: only active projects
//	}
//
// The planner orders the triple patterns by selectivity for the
// leapfrog join and pipelines the manages+ clause as bound-endpoint
// RPQ evaluation; bindings flow into the path clause's endpoints and
// its results feed back as join streams.
package main

import (
	"fmt"
	"log"

	"ringrpq"
)

func main() {
	b := ringrpq.NewBuilder()
	b.Add("ana", "manages", "bo")
	b.Add("bo", "manages", "cleo")
	b.Add("bo", "manages", "dmitri")
	b.Add("ana", "manages", "erin")
	b.Add("cleo", "assigned", "apollo")
	b.Add("dmitri", "assigned", "zephyr")
	b.Add("erin", "assigned", "apollo")
	b.Add("apollo", "status", "active")
	b.Add("zephyr", "status", "archived")
	db, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// A mixed BGP+RPQ pattern with projection.
	vars, rows, err := db.Select(`
		SELECT ?mgr ?proj WHERE {
			?mgr manages+ ?eng .
			?eng assigned ?proj .
			?proj status active
		}`)
	if err != nil {
		log.Fatal(err)
	}
	ringrpq.SortRows(rows)
	fmt.Printf("managers with reports on active projects (%v):\n", vars)
	for _, row := range rows {
		fmt.Printf("  %-8s -> %s\n", row[0], row[1])
	}

	// Full bindings, no projection: every variable of the pattern.
	fmt.Println("\nengineer / project / state rows (pure triple-pattern join):")
	bindings, err := db.QueryPattern("?eng assigned ?proj . ?proj status ?state")
	if err != nil {
		log.Fatal(err)
	}
	for _, bd := range bindings {
		fmt.Printf("  %-8s %-8s %s\n", bd["eng"], bd["proj"], bd["state"])
	}

	// The planner's decisions are inspectable: the leapfrog variable
	// order and how many path clauses were scheduled.
	order, steps, err := db.ExplainPattern(
		"?mgr manages+ ?eng . ?eng assigned ?proj . ?proj status active")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan: leapfrog order %v, %d pipelined RPQ step(s)\n", order, steps)
}
