// Transport reproduces the paper's running example: the Santiago metro
// graph of Fig. 1 and the worked queries of §1 and §4, including the
// (Baq, l5+/bus, y) query whose backward evaluation Figs. 5–7 trace.
package main

import (
	"fmt"
	"log"
	"time"

	"ringrpq"
)

func main() {
	b := ringrpq.NewBuilder()
	// Metro lines run both ways; buses are directed. The graph matches
	// Fig. 3's completion (16 edges before adding our own inverses).
	add := func(s, p, o string) { b.Add(s, p, o); b.Add(o, p, s) }
	add("Baquedano", "l1", "UCh")
	add("UCh", "l1", "LosHeroes")
	add("LosHeroes", "l2", "SantaAna")
	add("SantaAna", "l5", "BellasArtes")
	add("BellasArtes", "l5", "Baquedano")
	b.Add("SantaAna", "bus", "UCh")
	b.Add("BellasArtes", "bus", "SantaAna")
	b.Add("BellasArtes", "bus", "UCh")

	db, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(db)

	run := func(s, expr, o string) {
		start := time.Now()
		sols, err := db.Query(s, expr, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n(%s, %s, %s)  —  %d solutions in %v\n", s, expr, o, len(sols), time.Since(start))
		for _, sol := range sols {
			fmt.Printf("  %s .. %s\n", sol.Subject, sol.Object)
		}
	}

	// §1: pairs of stations connected by metro.
	run("?x", "(l1|l2|l5)+", "?y")

	// §1: stations reachable from Baquedano by metro.
	run("Baquedano", "(l1|l2|l5)+", "?y")

	// §4's worked example: take line 5 from Baquedano, then one bus.
	// Figs. 5–7 trace its backward evaluation; the answers are Santa Ana
	// and Universidad de Chile.
	run("Baquedano", "l5+/bus", "?y")

	// The same query with a fixed target is a boolean check.
	run("Baquedano", "l5+/bus", "SantaAna")

	// Two-way expressions: where can a bus from Bellas Artes be caught
	// leaving from, walking edges backwards.
	run("?x", "^bus", "BellasArtes")
}
