// Quickstart: build a small graph, index it with the ring, and run the
// three flavours of regular path query (fixed source, fixed target, both
// variable).
package main

import (
	"fmt"
	"log"

	"ringrpq"
)

func main() {
	b := ringrpq.NewBuilder()

	// A tiny social/knowledge graph.
	b.Add("alice", "knows", "bob")
	b.Add("bob", "knows", "carol")
	b.Add("carol", "knows", "dave")
	b.Add("dave", "worksAt", "acme")
	b.Add("carol", "worksAt", "initech")
	b.Add("alice", "manages", "bob")
	b.Add("bob", "manages", "carol")

	db, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(db)

	// Everyone transitively known by alice.
	sols, err := db.Query("alice", "knows+", "?person")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalice --knows+--> ?person:")
	for _, s := range sols {
		fmt.Printf("  %s\n", s.Object)
	}

	// Who works at a company somebody alice knows works at? Inverse
	// steps (^worksAt) walk edges backwards.
	sols, err = db.Query("alice", "knows+/worksAt/^worksAt", "?colleague")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalice --knows+/worksAt/^worksAt--> ?colleague:")
	for _, s := range sols {
		fmt.Printf("  %s\n", s.Object)
	}

	// All management chains of any length, as (boss, report) pairs.
	sols, err = db.Query("?boss", "manages+", "?report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n?boss --manages+--> ?report:")
	for _, s := range sols {
		fmt.Printf("  %s -> %s\n", s.Subject, s.Object)
	}

	// A fixed-pair (boolean) query.
	n, err := db.Count("alice", "(knows|manages)+", "dave")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nalice connected to dave: %v\n", n > 0)
}
