// Wikidata runs a scaled-down version of the paper's §5 benchmark
// through the public API: a synthetic knowledge graph with Wikidata's
// statistical shape, queried with the Table 1 pattern mix (dominated by
// the transitive patterns real users write, like P31/P279* —
// "instance of / subclass of*").
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"ringrpq"
	"ringrpq/internal/datagen"
	"ringrpq/internal/pathexpr"
	"ringrpq/internal/workload"
)

func main() {
	// Generate a Wikidata-shaped graph and load it through the public
	// builder (as an external user would from a dump file).
	g := datagen.Generate(datagen.Config{Seed: 11, Nodes: 5000, Edges: 25000, Preds: 40})
	b := ringrpq.NewBuilder()
	for _, t := range g.Triples {
		if t.P < g.NumPreds { // original edges only; Build re-completes
			b.Add(g.Nodes.Name(t.S), g.Preds.Name(t.P), g.Nodes.Name(t.O))
		}
	}
	db, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(db)

	// The classic Wikidata query shape: all instances of a class,
	// transitively ("?x P31/P279* C").
	instances, err := db.Query("?x", "P1/P2*", datagen.NodeName(0),
		ringrpq.WithLimit(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst %d bindings of (?x, P1/P2*, %s):\n", len(instances), datagen.NodeName(0))
	for _, s := range instances {
		fmt.Printf("  %s\n", s.Subject)
	}

	// Run a Table 1 pattern mix and report per-pattern timing.
	qs := workload.Generate(g, workload.Config{Seed: 12, Total: 120})
	type agg struct {
		n     int
		total time.Duration
		res   int
	}
	byPattern := map[string]*agg{}
	for _, q := range qs {
		s, o := q.Subject, q.Object
		if s == "" {
			s = "?x"
		}
		if o == "" {
			o = "?y"
		}
		start := time.Now()
		n, err := db.Count(s, pathexpr.String(q.Expr), o,
			ringrpq.WithTimeout(5*time.Second), ringrpq.WithLimit(100000))
		if err != nil && err != ringrpq.ErrTimeout {
			log.Fatalf("%s: %v", q, err)
		}
		a := byPattern[q.Pattern]
		if a == nil {
			a = &agg{}
			byPattern[q.Pattern] = a
		}
		a.n++
		a.total += time.Since(start)
		a.res += n
	}

	fmt.Printf("\n%-16s %8s %12s %12s\n", "pattern", "queries", "avg time", "results")
	patterns := make([]string, 0, len(byPattern))
	for p := range byPattern {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	for _, p := range patterns {
		a := byPattern[p]
		fmt.Printf("%-16s %8d %12v %12d\n", p, a.n, a.total/time.Duration(a.n), a.res)
	}
}
